// Priority-cache microbenchmark: Table II RWP with SDSRP, cache off vs
// on, reporting steps/sec for the measured window and the speedup. The
// contact-rich steady state (after warm-up) is where priority evaluation
// dominates the step cost, so that is what the window measures.
//
//   ./micro_priority_cache [warm_s] [measure_s] [out.json]
//
// Writes a small JSON report (default BENCH_priority_cache.json) so CI
// can archive the numbers as an artifact.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/fig_common.hpp"
#include "src/config/scenario.hpp"

namespace {

struct RunResult {
  double steps_per_sec = 0.0;
  double wall_s = 0.0;
  std::size_t delivered = 0;
  std::size_t drops = 0;
  std::uint64_t digest = 0;
};

RunResult run_one(double warm_s, double measure_s, bool cached,
                  double refresh_s) {
  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.world.duration = warm_s + measure_s;
  sc.world.priority_cache = cached;
  sc.world.priority_refresh_s = refresh_s;
  auto world = dtn::build_world(sc);
  world->run_until(warm_s);
  const auto t0 = std::chrono::steady_clock::now();
  world->run_until(warm_s + measure_s);
  const auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  const double steps = measure_s / sc.world.step;
  r.steps_per_sec = r.wall_s > 0.0 ? steps / r.wall_s : 0.0;
  r.delivered = world->stats().delivered;
  r.drops = world->stats().drops;
  r.digest = world->digest();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double warm_s = argc > 1 ? std::strtod(argv[1], nullptr) : 6000.0;
  const double measure_s = argc > 2 ? std::strtod(argv[2], nullptr) : 6000.0;
  const std::string out_path =
      argc > 3 ? argv[3] : "BENCH_priority_cache.json";

  std::cout << "Table II RWP + SDSRP, warm " << warm_s << " s, measure "
            << measure_s << " s\n";
  const RunResult off = run_one(warm_s, measure_s, false, 0.0);
  std::cout << "  cache off: " << off.steps_per_sec << " steps/s ("
            << off.wall_s << " s wall, delivered " << off.delivered << ")\n";
  const RunResult on =
      run_one(warm_s, measure_s, true, dtn::WorldConfig{}.priority_refresh_s);
  std::cout << "  cache on : " << on.steps_per_sec << " steps/s ("
            << on.wall_s << " s wall, delivered " << on.delivered << ")\n";
  // Exactness check at refresh 0: same decisions as the uncached run.
  const RunResult exact = run_one(warm_s, measure_s, true, 0.0);
  const bool digests_match = exact.digest == off.digest;

  const double speedup =
      off.steps_per_sec > 0.0 ? on.steps_per_sec / off.steps_per_sec : 0.0;
  std::cout << "  speedup  : " << speedup << "x\n"
            << "  refresh=0 digest match: "
            << (digests_match ? "yes" : "NO") << "\n";

  std::ofstream out(out_path);
  out << "{\n"
      << dtn::bench::bench_env_json_fields()
      << "  \"scenario\": \"rwp-paper\",\n"
      << "  \"policy\": \"sdsrp\",\n"
      << "  \"warm_s\": " << warm_s << ",\n"
      << "  \"measure_s\": " << measure_s << ",\n"
      << "  \"uncached_steps_per_sec\": " << off.steps_per_sec << ",\n"
      << "  \"cached_steps_per_sec\": " << on.steps_per_sec << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"uncached_delivered\": " << off.delivered << ",\n"
      << "  \"cached_delivered\": " << on.delivered << ",\n"
      << "  \"refresh0_digest_matches_uncached\": "
      << (digests_match ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
