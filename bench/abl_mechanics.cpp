// Ablation of the mechanics the paper under-specifies (DESIGN.md §4):
// each variant flips exactly one knob away from the repository default,
// at tight (2.5 MB) and loose (5 MB) buffers, under SDSRP. A FIFO row is
// printed for reference.
//
//   default = Eq.15 anchored at last spray, naive-mean λ estimator,
//             admission handshake on, Algorithm-1 newcomer rejection on,
//             post-split newcomer rating, drop-based receive rejection on.
//
//   ./abl_mechanics [replicas]
#include <functional>
#include <iostream>
#include <vector>

#include "src/report/sweep.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;

  struct Variant {
    const char* label;
    std::function<void(dtn::Scenario&)> apply;
  };
  const std::vector<Variant> variants = {
      {"fifo (reference)",
       [](dtn::Scenario& sc) { sc.policy = "fifo"; }},
      {"sdsrp (defaults)", [](dtn::Scenario&) {}},
      {"sdsrp: anchor Eq.15 at now",
       [](dtn::Scenario& sc) { sc.sdsrp_anchor_last_spray = false; }},
      {"sdsrp: censored-MLE lambda",
       [](dtn::Scenario& sc) {
         sc.estimator.imt_mode = dtn::sdsrp::ImtEstimatorMode::kCensoredMle;
       }},
      {"sdsrp: no admission handshake",
       [](dtn::Scenario& sc) { sc.precheck_admission = false; }},
      {"sdsrp: always-make-room (no newcomer test)",
       [](dtn::Scenario& sc) { sc.sdsrp_reject_newcomer = false; }},
      {"sdsrp: rate newcomer pre-split",
       [](dtn::Scenario& sc) { sc.presplit_admission_view = true; }},
      {"sdsrp: accept re-receipt after drop",
       [](dtn::Scenario& sc) { sc.sdsrp_reject_dropped = false; }},
      {"sdsrp-oracle (true m,n)",
       [](dtn::Scenario& sc) { sc.policy = "sdsrp-oracle"; }},
  };

  dtn::Table t({"variant", "buffer_MB", "delivery", "hops", "overhead"});
  for (double mb : {2.5, 5.0}) {
    for (const Variant& v : variants) {
      dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
      sc.policy = "sdsrp";
      sc.buffer_capacity = dtn::units::megabytes(mb);
      v.apply(sc);
      const auto m = dtn::run_replicated(sc, replicas);
      t.add_row({std::string(v.label), mb, m.delivery_ratio.mean(),
                 m.avg_hopcount.mean(), m.overhead_ratio.mean()});
    }
  }
  t.set_precision(3);
  t.print(std::cout);
  return 0;
}
