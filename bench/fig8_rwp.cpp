// Reproduces the paper's Fig. 8 (a)-(i): delivery ratio, average
// hopcounts, and overhead ratio as functions of initial copies, buffer
// size, and message generation rate under the random-waypoint mobility
// pattern (Table II parameters).
//
//   ./fig8_rwp [replicas] [threads] [csv_dir]
#include <iostream>

#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;
  const std::size_t threads =
      argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 0;
  if (argc > 3) dtn::bench::csv_dir() = argv[3];
  dtn::ThreadPool pool(threads);

  const dtn::Scenario base = dtn::Scenario::random_waypoint_paper();
  std::cout << "Fig. 8 reproduction (random-waypoint, " << replicas
            << " replicas/point, " << pool.size() << " threads)\n";

  using namespace dtn::bench;
  const auto a =
      run_panel(base, "copies", copies_sweep(), set_copies, replicas, &pool);
  print_panel_group(std::cout, "Fig8(a)", "Fig8(b)", "Fig8(c)", a);

  const auto d = run_panel(base, "buffer_MB", buffer_sweep_mb(),
                           set_buffer_mb, replicas, &pool);
  print_panel_group(std::cout, "Fig8(d)", "Fig8(e)", "Fig8(f)", d);

  const auto g = run_panel(base, "interval_lo_s", genrate_sweep_lo(),
                           set_genrate_lo, replicas, &pool);
  print_panel_group(std::cout, "Fig8(g)", "Fig8(h)", "Fig8(i)", g);
  return 0;
}
