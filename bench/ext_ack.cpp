// Extension experiment: the acknowledgment/immunization mechanism the
// paper deliberately leaves out ("Neither an immunization strategy nor an
// acknowledgment mechanism is utilized"). With ACK gossip on, delivered
// messages are purged network-wide, freeing buffer space — this bench
// quantifies how much of the buffer-management problem an ACK scheme
// solves on its own, and how much headroom remains for SDSRP.
//
//   ./ext_ack [replicas]
#include <iostream>

#include "src/report/sweep.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;

  dtn::Table t({"policy", "ack_gossip", "delivery", "hops", "overhead",
                "latency_s"});
  for (const char* policy : {"fifo", "ttl-ratio", "copies-ratio", "sdsrp"}) {
    for (bool ack : {false, true}) {
      dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
      sc.policy = policy;
      sc.world.ack_gossip = ack;
      const auto m = dtn::run_replicated(sc, replicas);
      t.add_row({std::string(policy), std::string(ack ? "on" : "off"),
                 m.delivery_ratio.mean(), m.avg_hopcount.mean(),
                 m.overhead_ratio.mean(), m.avg_latency.mean()});
    }
  }
  t.set_precision(3);
  t.print(std::cout);
  return 0;
}
