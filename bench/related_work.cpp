// Related-work experiment (paper Section II): positions SDSRP-on-
// Spray-and-Wait against the routing/buffer combinations the paper
// discusses — Epidemic with and without GBSD (Krifa et al.), PRoPHET,
// Spray-and-Focus, First Contact and Direct Delivery — on the Table II
// scenario.
//
//   ./related_work [replicas]
#include <iostream>

#include "src/report/sweep.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;

  struct Combo {
    const char* label;
    const char* router;
    const char* policy;
  };
  const Combo combos[] = {
      {"SprayAndWait + FIFO", "spray-and-wait", "fifo"},
      {"SprayAndWait + SDSRP", "spray-and-wait", "sdsrp"},
      {"Epidemic + FIFO", "epidemic", "fifo"},
      {"Epidemic + GBSD", "epidemic", "gbsd"},
      {"PRoPHET + FIFO", "prophet", "fifo"},
      {"SprayAndFocus + FIFO", "spray-and-focus", "fifo"},
      {"FirstContact + FIFO", "first-contact", "fifo"},
      {"DirectDelivery", "direct-delivery", "fifo"},
  };

  std::cout << "Related-work comparison on the Table II scenario ("
            << replicas << " replicas)\n";
  dtn::Table t({"combination", "delivery", "hops", "overhead", "latency_s"});
  for (const Combo& c : combos) {
    dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
    sc.router = c.router;
    sc.policy = c.policy;
    const auto m = dtn::run_replicated(sc, replicas);
    t.add_row({std::string(c.label), m.delivery_ratio.mean(),
               m.avg_hopcount.mean(), m.overhead_ratio.mean(),
               m.avg_latency.mean()});
  }
  t.set_precision(3);
  t.print(std::cout);
  return 0;
}
