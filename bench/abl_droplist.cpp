// Ablation: convergence of the dropped-list gossip (paper Fig. 5).
//
// Runs the Table II scenario with SDSRP and tracks, at checkpoints, how
// much of the global drop knowledge a node has: for each buffered copy,
// d̂_i (drops visible in the node's gossiped records) versus the true
// drop count from the registry. Also reports how many peer records the
// average node carries.
//
//   ./abl_droplist [seed]
#include <cstdlib>
#include <iostream>

#include "src/config/scenario.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.policy = "sdsrp";
  sc.seed = seed;

  auto world = dtn::build_world(sc);
  dtn::Table t({"t_s", "copies", "mean d_hat", "mean true drops",
                "coverage", "records/node"});
  for (double checkpoint = 3000.0; checkpoint <= sc.world.duration + 1.0;
       checkpoint += 3000.0) {
    world->run_until(checkpoint);
    dtn::RunningStats d_hat, d_true, records;
    for (dtn::NodeId id = 0; id < world->node_count(); ++id) {
      const dtn::Node& node = world->node(id);
      records.add(static_cast<double>(node.dropped_list().known_records()));
      for (const auto& msg : node.buffer().messages()) {
        d_hat.add(node.dropped_list().count_drops(msg.id));
        d_true.add(world->registry().drops(msg.id));
      }
    }
    const double coverage =
        d_true.mean() > 0.0 ? d_hat.mean() / d_true.mean() : 1.0;
    t.add_row({checkpoint, static_cast<std::int64_t>(d_hat.count()),
               d_hat.mean(), d_true.mean(), coverage, records.mean()});
  }
  t.set_precision(2);
  t.print(std::cout);
  std::cout << "\ncoverage = gossiped d_hat / true drops for the same "
               "messages (1.0 = full knowledge).\n"
            << "Note d_hat counts *nodes* that dropped; true drops counts "
               "drop *events* — re-drops by\nthe same node are prevented "
               "by the dropped-list receive rejection, so the two agree\n"
               "as gossip converges.\n";
  return 0;
}
