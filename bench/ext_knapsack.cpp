// Extension experiment: knapsack-density eviction (the authors' EWSN'15
// strategy, paper ref [11]) vs plain SDSRP, under homogeneous (paper)
// and heterogeneous message sizes. With uniform sizes the two must
// coincide; with mixed sizes the density rule should spend buffer bytes
// more effectively.
//
//   ./ext_knapsack [replicas]
#include <iostream>

#include "src/report/sweep.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;

  dtn::Table t({"sizes", "policy", "delivery", "hops", "overhead"});
  for (bool mixed : {false, true}) {
    for (const char* policy : {"fifo", "sdsrp", "knapsack-sdsrp"}) {
      dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
      sc.policy = policy;
      if (mixed) {
        sc.traffic.size = dtn::units::kilobytes(100);
        sc.traffic.size_max = dtn::units::kilobytes(900);  // mean ≈ 0.5 MB
      }
      const auto m = dtn::run_replicated(sc, replicas);
      t.add_row({std::string(mixed ? "0.1-0.9MB" : "0.5MB"),
                 std::string(policy), m.delivery_ratio.mean(),
                 m.avg_hopcount.mean(), m.overhead_ratio.mean()});
    }
  }
  t.set_precision(3);
  t.print(std::cout);
  return 0;
}
