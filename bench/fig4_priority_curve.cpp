// Reproduces the paper's Fig. 4: the priority U_i as a function of
// P(R_i), for the idealized closed form (Eq. 11) and the Taylor
// approximations of Eq. 13 with increasing term counts. The curve rises
// to its peak at P(R) = 1 - 1/e and falls afterwards; the partial sums
// approach the ideal curve from below as k grows.
//
//   ./fig4_priority_curve [points]
#include <cstdlib>
#include <iostream>

#include "src/sdsrp/priority_model.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const int points =
      argc > 1 ? static_cast<int>(std::strtol(argv[1], nullptr, 10)) : 21;

  const double p_t = 0.0;     // fresh message, nobody has seen it
  const double n_hold = 1.0;  // single holder

  std::cout << "Fig. 4 reproduction: U_i vs P(R_i)  (P_T = " << p_t
            << ", n_i = " << n_hold << ")\n";
  std::cout << "peak expected at P(R) = 1 - 1/e = "
            << dtn::sdsrp::peak_prob_remaining() << "\n\n";

  dtn::Table t({"P(R)", "idealization", "k=1", "k=2", "k=5", "k=10",
                "k=50"});
  for (int i = 0; i < points; ++i) {
    const double pr =
        0.999 * static_cast<double>(i) / static_cast<double>(points - 1);
    t.add_row({pr, dtn::sdsrp::priority_eq11(p_t, pr, n_hold),
               dtn::sdsrp::priority_taylor(p_t, pr, n_hold, 1),
               dtn::sdsrp::priority_taylor(p_t, pr, n_hold, 2),
               dtn::sdsrp::priority_taylor(p_t, pr, n_hold, 5),
               dtn::sdsrp::priority_taylor(p_t, pr, n_hold, 10),
               dtn::sdsrp::priority_taylor(p_t, pr, n_hold, 50)});
  }
  t.set_precision(4);
  t.print(std::cout);

  // Locate the empirical peak of the ideal curve on a fine grid.
  double best_pr = 0.0, best_u = -1.0;
  for (int i = 0; i < 100000; ++i) {
    const double pr = 0.99999 * i / 99999.0;
    const double u = dtn::sdsrp::priority_eq11(p_t, pr, n_hold);
    if (u > best_u) {
      best_u = u;
      best_pr = pr;
    }
  }
  std::cout << "empirical peak at P(R) = " << best_pr << " (expected "
            << dtn::sdsrp::peak_prob_remaining() << ")\n";
  return 0;
}
