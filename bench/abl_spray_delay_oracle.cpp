// Validation: binary Spray-and-Wait delivery delay against the Diana &
// Lochin stochastic model (src/sdsrp/spray_wait_delay_model).
//
// For each (N, L) configuration the Table II world runs with
// unconstrained buffers and a traffic window that leaves every message a
// full observation horizon (exact right censoring). The pooled
// creation→delivery delays form an empirical CDF that is compared —
// KS distance, quantiles, censored means — against the analytical F(t)
// parameterized by the copy budget and the *observed* pairwise meeting
// rate. The same harness is gated with tolerances in
// tests/test_delay_oracle; this binary prints the full comparison table
// (EXPERIMENTS.md §"Delay-CDF oracle").
//
//   ./abl_spray_delay_oracle [seeds]
#include <iostream>

#include "src/report/delay_oracle.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const std::size_t seeds =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 4;

  std::vector<dtn::SprayDelayOracleConfig> configs(3);
  configs[0].n_nodes = 80;
  configs[0].copies = 4;
  configs[1].n_nodes = 80;
  configs[1].copies = 16;
  configs[1].area_width = 4500.0;
  configs[1].area_height = 3400.0;
  configs[1].create_window_s = 3000.0;
  configs[1].horizon_s = 9000.0;
  configs[2].n_nodes = 50;
  configs[2].copies = 8;
  configs[2].area_width = 2700.0;
  configs[2].area_height = 2040.0;
  configs[2].create_window_s = 2500.0;
  configs[2].horizon_s = 6000.0;

  std::cout << "Binary Spray-and-Wait delay CDF vs the Diana-Lochin model, "
            << seeds << " seeds per config\n\n";

  dtn::Table t({"N", "L", "lambda e-6/s", "samples", "delivered%", "KS",
                "p50 sim", "p50 model", "p90 sim", "p90 model",
                "mean sim", "mean model"});
  for (auto cfg : configs) {
    cfg.seeds = seeds;
    const dtn::SprayDelayOracleResult r = dtn::run_spray_delay_oracle(cfg);
    t.add_row({static_cast<std::int64_t>(cfg.n_nodes),
               static_cast<std::int64_t>(cfg.copies), r.lambda * 1e6,
               static_cast<std::int64_t>(r.samples),
               100.0 * r.delivered_fraction(), r.ks, r.p50_sim, r.p50_model,
               r.p90_sim, r.p90_model, r.mean_sim, r.mean_model});
  }
  t.set_precision(4);
  t.print(std::cout);
  std::cout << "\nQuantiles/means are censored at the horizon "
               "(E[min(T, horizon)]); KS is taken over [0, horizon].\n";
  return 0;
}
