// Extension experiment: availability sweep. The paper evaluates buffer
// management on always-on nodes; this bench degrades the fleet — a
// growing fraction of nodes cycles through outages (plus a fixed rate of
// interference-killed transfers and degradation windows) — and measures
// how the four policies' delivery/overhead respond. "avail" is the
// measured fleet availability 1 - downtime / (N * duration).
//
//   ./ext_faults [replicas]
#include <iostream>

#include "src/report/sweep.hpp"
#include "src/util/table.hpp"

namespace {

dtn::Scenario faulty_point(const char* policy, double churn_fraction,
                           std::uint64_t seed) {
  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.policy = policy;
  sc.seed = seed;
  sc.fault.enabled = churn_fraction > 0.0;
  sc.fault.churn_fraction = churn_fraction;
  sc.fault.mean_up_s = 2700.0;   // ~45 min up
  sc.fault.mean_down_s = 900.0;  // ~15 min down: 75% availability if churning
  sc.fault.reboot_purge = false;
  sc.fault.link_abort_rate_per_hour = 12.0;
  sc.fault.degrade_rate_per_hour = 2.0;
  sc.fault.degrade_duration_s = 600.0;
  sc.fault.degrade_range_factor = 0.6;
  sc.fault.degrade_bitrate_factor = 0.5;
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;

  dtn::Table t({"churn", "policy", "avail", "delivery", "overhead",
                "latency_s", "faulted_aborts"});
  for (const double churn : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (const char* policy : {"fifo", "ttl-ratio", "copies-ratio",
                               "sdsrp"}) {
      dtn::RunningStats avail, delivery, overhead, latency, aborts;
      for (std::size_t r = 0; r < replicas; ++r) {
        const dtn::Scenario sc = faulty_point(policy, churn, 1 + r);
        dtn::SimStats stats;
        const dtn::MetricPoint m = dtn::run_scenario(sc, &stats);
        avail.add(1.0 - stats.downtime_s / (static_cast<double>(sc.n_nodes) *
                                            sc.world.duration));
        delivery.add(m.delivery_ratio);
        overhead.add(m.overhead_ratio);
        latency.add(m.avg_latency);
        aborts.add(static_cast<double>(stats.faulted_aborts));
      }
      t.add_row({churn, std::string(policy), avail.mean(), delivery.mean(),
                 overhead.mean(), latency.mean(), aborts.mean()});
    }
  }
  t.set_precision(3);
  t.print(std::cout);
  return 0;
}
