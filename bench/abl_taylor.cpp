// Ablation: the Eq. 13 Taylor approximation — end-to-end metric impact
// and approximation error versus term count k (the paper argues
// "computation overhead is also saved through this method"; the
// micro-benchmark micro_kernel measures the per-evaluation cost).
//
//   ./abl_taylor [replicas]
#include <cmath>
#include <iostream>

#include "src/report/sweep.hpp"
#include "src/sdsrp/priority_model.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;

  // Pointwise approximation error against the closed form, averaged over
  // a P(R) grid (PT = 0, n = 1; the error scales identically for others).
  dtn::Table err({"k", "max_abs_error", "mean_abs_error"});
  for (std::size_t k : {1u, 2u, 3u, 5u, 10u, 20u, 50u}) {
    double worst = 0.0, sum = 0.0;
    const int grid = 999;
    for (int i = 1; i <= grid; ++i) {
      const double pr = static_cast<double>(i) / (grid + 1);
      const double exact = dtn::sdsrp::priority_eq11(0.0, pr, 1.0);
      const double approx = dtn::sdsrp::priority_taylor(0.0, pr, 1.0, k);
      const double e = std::abs(exact - approx);
      worst = std::max(worst, e);
      sum += e;
    }
    err.add_row({static_cast<std::int64_t>(k), worst, sum / grid});
  }
  err.set_precision(6);
  std::cout << "Eq. 13 approximation error vs closed form:\n";
  err.print(std::cout);

  // End-to-end: does a truncated priority change the paper's metrics?
  dtn::Table end({"taylor_terms", "delivery", "hops", "overhead"});
  for (std::size_t k : {0u, 1u, 2u, 5u, 20u}) {  // 0 = closed form
    dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
    sc.policy = "sdsrp";
    sc.sdsrp_taylor_terms = k;
    const auto m = dtn::run_replicated(sc, replicas);
    end.add_row({static_cast<std::int64_t>(k), m.delivery_ratio.mean(),
                 m.avg_hopcount.mean(), m.overhead_ratio.mean()});
  }
  end.set_precision(3);
  std::cout << "\nEnd-to-end metrics by Taylor term count (0 = Eq. 10):\n";
  end.print(std::cout);
  return 0;
}
