// Reproduces the paper's Fig. 9 (a)-(i): the same three sweeps as Fig. 8
// under the taxi-fleet mobility substitute for the EPFL San Francisco
// trace (Table III parameters; see DESIGN.md §4 for the substitution).
//
//   ./fig9_taxi [replicas] [threads] [csv_dir]
#include <iostream>

#include "bench/fig_common.hpp"

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;
  const std::size_t threads =
      argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 0;
  if (argc > 3) dtn::bench::csv_dir() = argv[3];
  dtn::ThreadPool pool(threads);

  const dtn::Scenario base = dtn::Scenario::taxi_paper();
  std::cout << "Fig. 9 reproduction (taxi-fleet EPFL substitute, "
            << replicas << " replicas/point, " << pool.size()
            << " threads)\n";

  using namespace dtn::bench;
  const auto a =
      run_panel(base, "copies", copies_sweep(), set_copies, replicas, &pool);
  print_panel_group(std::cout, "Fig9(a)", "Fig9(b)", "Fig9(c)", a);

  const auto d = run_panel(base, "buffer_MB", buffer_sweep_mb(),
                           set_buffer_mb, replicas, &pool);
  print_panel_group(std::cout, "Fig9(d)", "Fig9(e)", "Fig9(f)", d);

  const auto g = run_panel(base, "interval_lo_s", genrate_sweep_lo(),
                           set_genrate_lo, replicas, &pool);
  print_panel_group(std::cout, "Fig9(g)", "Fig9(h)", "Fig9(i)", g);
  return 0;
}
