// Validation: the simulator's contact process against the epidemic ODE
// model of Zhang et al. (paper ref [13]).
//
// Setup: Table II world with effectively infinite buffers and Epidemic
// routing; a single message is injected at t=0 and its infection count
// n_i(t) (from the global registry) is tracked. Theory predicts the
// logistic I(t) with λ taken from the *observed* contact census.
// Agreement here means the kernel's mobility + contact + transfer
// pipeline reproduces the stochastic model the paper's own analysis
// assumes. The harness itself lives in src/report/delay_oracle so the
// toleranced ctest (tests/test_delay_oracle) gates the same numbers this
// binary prints.
//
//   ./abl_ode_validation [seeds]
#include <iostream>

#include "src/report/delay_oracle.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  dtn::EpidemicOdeOracleConfig cfg;
  if (argc > 1) cfg.seeds = static_cast<std::size_t>(std::stoul(argv[1]));

  const dtn::EpidemicOdeOracleResult r = dtn::run_epidemic_ode_oracle(cfg);

  std::cout << "Epidemic spreading vs the ODE model (ref [13]), "
            << cfg.seeds << " seeds\n"
            << "naive observed E(I) = " << r.naive_ei
            << " s (length-biased); population-MLE lambda = " << r.lambda
            << " /s (E(I) = " << 1.0 / r.lambda << " s)\n\n";

  dtn::Table t({"t_s", "simulated I(t)", "±", "ODE I(t)", "ratio"});
  for (const auto& p : r.points) {
    t.add_row({p.t, p.sim_mean, p.sim_ci95, p.ode, p.ratio()});
  }
  t.set_precision(2);
  t.print(std::cout);
  std::cout
      << "\nThe simulated sweep matches the logistic SI dynamics in shape\n"
         "and timescale (saturation within a few E(I_min)); mid-phase\n"
         "ratios dip below 1 because real contacts have finite duration\n"
         "and serial half-duplex transfers, which the mass-action ODE\n"
         "idealizes away.\n";
  return 0;
}
