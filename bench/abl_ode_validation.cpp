// Validation: the simulator's contact process against the epidemic ODE
// model of Zhang et al. (paper ref [13]).
//
// Setup: Table II world with effectively infinite buffers and Epidemic
// routing; a single message is injected at t=0 and its infection count
// n_i(t) (from the global registry) is tracked. Theory predicts the
// logistic I(t) with λ taken from the *observed* intermeeting fit
// (Fig. 3). Agreement here means the kernel's mobility + contact +
// transfer pipeline reproduces the stochastic model the paper's own
// analysis assumes.
//
//   ./abl_ode_validation [seeds]
#include <iostream>

#include "src/config/scenario.hpp"
#include "src/report/observers.hpp"
#include "src/sdsrp/epidemic_ode.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const std::size_t seeds =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 5;

  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.router = "epidemic";
  sc.policy = "fifo";
  sc.buffer_capacity = 1'000'000'000;        // no buffer constraint
  sc.traffic.interval_min = 1e9;             // no background traffic
  sc.traffic.interval_max = 1.1e9;
  sc.world.collect_intermeeting = true;

  const std::vector<double> checkpoints = {250,  500,  750,  1000, 1500,
                                           2000, 3000, 4000, 6000, 9000};
  std::vector<dtn::RunningStats> measured(checkpoints.size());
  dtn::RunningStats observed_ei;
  double total_contacts = 0.0;

  for (std::size_t s = 0; s < seeds; ++s) {
    dtn::Scenario run = sc;
    run.seed = sc.seed + s;
    auto world = dtn::build_world(run);
    dtn::ContactReport contacts;
    world->add_observer(&contacts);

    dtn::Message m;
    m.id = 1;
    m.source = 0;
    m.destination = 1;
    m.size = 1000;  // tiny: transfer time negligible, as the ODE assumes
    m.created = 0.0;
    m.ttl = 1e9;
    m.copies = 1;
    m.initial_copies = 1;
    if (!world->inject_message(m)) return 1;

    for (std::size_t k = 0; k < checkpoints.size(); ++k) {
      world->run_until(checkpoints[k]);
      measured[k].add(world->registry().n_holding(1));
    }
    world->run_until(sc.world.duration);  // full horizon for the λ census
    for (double x : world->intermeeting_samples()) observed_ei.add(x);
    total_contacts += static_cast<double>(contacts.total_contacts());
  }

  // Population MLE of the pairwise meeting rate: meetings per pair-second
  // of exposure. Unlike the naive mean of *completed* gaps (length-biased
  // low — see DESIGN.md §4), this matches the rate the ODE is driven by.
  const double pairs = static_cast<double>(sc.n_nodes) *
                       static_cast<double>(sc.n_nodes - 1) / 2.0;
  const double lambda =
      total_contacts / static_cast<double>(seeds) /
      (pairs * sc.world.duration);
  std::cout << "Epidemic spreading vs the ODE model (ref [13]), " << seeds
            << " seeds\n"
            << "naive observed E(I) = " << observed_ei.mean()
            << " s (length-biased); population-MLE lambda = " << lambda
            << " /s (E(I) = " << 1.0 / lambda << " s)\n\n";

  dtn::Table t({"t_s", "simulated I(t)", "±", "ODE I(t)", "ratio"});
  for (std::size_t k = 0; k < checkpoints.size(); ++k) {
    const double ode = dtn::sdsrp::epidemic_infected(
        static_cast<double>(sc.n_nodes), lambda, 1.0, checkpoints[k]);
    const double sim = measured[k].mean();
    t.add_row({checkpoints[k], sim, measured[k].ci95_half_width(), ode,
               ode > 0 ? sim / ode : 0.0});
  }
  t.set_precision(2);
  t.print(std::cout);
  std::cout
      << "\nThe simulated sweep matches the logistic SI dynamics in shape\n"
         "and timescale (saturation within a few E(I_min)); mid-phase\n"
         "ratios dip below 1 because real contacts have finite duration\n"
         "and serial half-duplex transfers, which the mass-action ODE\n"
         "idealizes away.\n";
  return 0;
}
