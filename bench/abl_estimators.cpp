// Ablation: accuracy of SDSRP's distributed estimators against the
// simulator's ground truth (the "centralized control channel" the paper
// says is impractical — Section III-C).
//
// Runs the Table II scenario with the SDSRP policy and, at fixed sim-time
// checkpoints, compares for every buffered copy:
//   m̂_i (Eq. 15 spray tree)        vs  true m_i (registry)
//   n̂_i (Eq. 14 with gossiped d̂)  vs  true n_i (registry)
// and each node's Ê(I) against the population's observed mean.
//
//   ./abl_estimators [seed]
#include <cstdlib>
#include <iostream>

#include "src/buffer/sdsrp_policy.hpp"
#include "src/config/scenario.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.policy = "sdsrp";
  sc.seed = seed;
  sc.world.collect_intermeeting = true;

  auto world = dtn::build_world(sc);
  const dtn::SdsrpPolicy probe;

  dtn::Table t({"t_s", "msgs", "mean|m_hat-m|", "mean m", "mean|n_hat-n|",
                "mean n", "E(I)_node_mean", "E(I)_observed"});
  for (double checkpoint = 3000.0; checkpoint <= sc.world.duration + 1.0;
       checkpoint += 3000.0) {
    world->run_until(checkpoint);

    dtn::RunningStats m_err, n_err, m_true, n_true, node_ei;
    for (dtn::NodeId id = 0; id < world->node_count(); ++id) {
      const dtn::Node& node = world->node(id);
      node_ei.add(node.intermeeting().mean_intermeeting(world->now()));
      const dtn::PolicyContext ctx = world->ctx_for(node);
      for (const auto& msg : node.buffer().messages()) {
        const auto est = probe.estimates(msg, ctx);
        const double m = world->registry().m_seen(msg.id);
        const double n = world->registry().n_holding(msg.id);
        m_err.add(std::abs(est.m_seen - m));
        n_err.add(std::abs(est.n_holding - n));
        m_true.add(m);
        n_true.add(n);
      }
    }
    dtn::RunningStats observed;
    for (double x : world->intermeeting_samples()) observed.add(x);
    t.add_row({checkpoint, static_cast<std::int64_t>(m_err.count()),
               m_err.mean(), m_true.mean(), n_err.mean(), n_true.mean(),
               node_ei.mean(), observed.empty() ? 0.0 : observed.mean()});
  }
  t.set_precision(2);
  t.print(std::cout);
  std::cout << "\nInterpretation: |m_hat-m| relative to mean m gauges the\n"
               "Eq. 15 spray-tree estimator; |n_hat-n| additionally folds\n"
               "in the gossiped dropped-list (Fig. 5).\n";
  return 0;
}
