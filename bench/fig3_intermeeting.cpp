// Reproduces the paper's Fig. 3: the distribution of pairwise
// intermeeting times under (a) random-waypoint and (b) the taxi-fleet
// EPFL substitute, with the exponential fit the paper's analysis
// assumes (intermeeting times "tail off exponentially").
//
// Prints, per scenario: sample count, observed E(I), the fitted rate λ,
// the R² of the log-CCDF linearity check, and the binned empirical vs
// fitted density table.
//
//   ./fig3_intermeeting [duration_s] [seed]
#include <cstdlib>
#include <iostream>

#include "src/config/scenario.hpp"
#include "src/report/reports.hpp"

namespace {

void run_panel(const char* fig, dtn::Scenario sc, double duration,
               std::uint64_t seed) {
  sc.world.duration = duration;
  sc.world.collect_intermeeting = true;
  sc.seed = seed;
  // Mobility only: a light traffic load keeps the run fast; contacts are
  // what this experiment measures.
  sc.traffic.interval_min = 1000.0;
  sc.traffic.interval_max = 1100.0;

  auto world = dtn::build_world(sc);
  world->run();

  const auto& samples = world->intermeeting_samples();
  std::cout << "\n== " << fig << ": intermeeting distribution, "
            << sc.mobility << " (" << sc.n_nodes << " nodes, " << duration
            << " s) ==\n";
  if (samples.size() < 10) {
    std::cout << "too few samples (" << samples.size() << ")\n";
    return;
  }
  const auto rep = dtn::intermeeting_report(samples, 24);
  std::cout << "samples = " << rep.fit.samples
            << ", observed E(I) = " << rep.fit.mean << " s, lambda = "
            << rep.fit.lambda << " /s, log-CCDF R^2 = " << rep.fit.r_squared
            << "\n";
  rep.table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const double duration = argc > 1 ? std::strtod(argv[1], nullptr) : 18000.0;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  run_panel("Fig3(a)", dtn::Scenario::random_waypoint_paper(), duration,
            seed);
  run_panel("Fig3(b)", dtn::Scenario::taxi_paper(), duration, seed);
  return 0;
}
