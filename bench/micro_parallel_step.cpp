// Intra-step parallelism microbenchmark: Table II RWP at growing fleet
// sizes, serial step loop (Parallel.threads = 0) vs the task-graph step
// (DESIGN.md §16) at 2/4/8 workers, for FIFO and SDSRP. The parallel
// mode is decision-identical by construction, so every (N, policy,
// threads) cell also compares its end-of-run digest against the serial
// baseline — `parallel_digest_matches_serial` in the JSON is the AND
// over every cell and is gated by CI. `hardware_threads` records the
// measurement box: throughput numbers are only meaningful relative to
// it, so on a single-hardware-thread container the speedup verdict is
// reported as "skipped" (digest checks still run and still gate).
//
// Each cell also carries a per-phase wall-time breakdown from the
// World's in-band phase profiler (WorldConfig.profile_phases): the
// serial path splits into mobility/contacts/events/ttl/prewarm/
// transfers, the graph path into dispatch (one task-graph run covering
// everything up to transfers) + transfers. The stamps are taken inside
// the measured run; they add a few steady_clock reads per step to both
// sides, slightly *more* to the serial one (six stamps vs two), so
// reported speedups are marginally conservative.
//
//   ./micro_parallel_step [warm_s] [measure_s] [out.json]
//
// Writes a JSON report (default BENCH_parallel_step.json); the committed
// copy at the repo root is produced with the default full horizons.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/fig_common.hpp"
#include "src/config/scenario.hpp"

namespace {

struct RunResult {
  double steps_per_sec = 0.0;
  double wall_s = 0.0;
  std::size_t delivered = 0;
  std::uint64_t digest = 0;
  dtn::PhaseProfile phases;  ///< measured window only (warmup subtracted)
};

dtn::PhaseProfile profile_delta(const dtn::PhaseProfile& a,
                                const dtn::PhaseProfile& b) {
  dtn::PhaseProfile d;
  d.mobility_s = b.mobility_s - a.mobility_s;
  d.contacts_s = b.contacts_s - a.contacts_s;
  d.events_s = b.events_s - a.events_s;
  d.ttl_s = b.ttl_s - a.ttl_s;
  d.prewarm_s = b.prewarm_s - a.prewarm_s;
  d.transfers_s = b.transfers_s - a.transfers_s;
  d.dispatch_s = b.dispatch_s - a.dispatch_s;
  d.steps = b.steps - a.steps;
  return d;
}

RunResult run_one(std::size_t nodes, const std::string& policy,
                  std::size_t threads, double warm_s, double measure_s) {
  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.n_nodes = nodes;
  sc.policy = policy;
  sc.world.threads = threads;
  sc.world.duration = warm_s + measure_s;
  sc.world.profile_phases = true;
  auto world = dtn::build_world(sc);
  world->run_until(warm_s);
  const dtn::PhaseProfile warm = world->phase_profile();
  const auto t0 = std::chrono::steady_clock::now();
  world->run_until(warm_s + measure_s);
  const auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  const double steps = measure_s / sc.world.step;
  r.steps_per_sec = r.wall_s > 0.0 ? steps / r.wall_s : 0.0;
  r.delivered = world->stats().delivered;
  r.digest = world->digest();
  r.phases = profile_delta(warm, world->phase_profile());
  return r;
}

std::string phases_json(const dtn::PhaseProfile& p, bool graph_path) {
  std::string s = "{";
  if (graph_path) {
    s += "\"dispatch_s\": " + std::to_string(p.dispatch_s) + ", ";
  } else {
    s += "\"mobility_s\": " + std::to_string(p.mobility_s) +
         ", \"contacts_s\": " + std::to_string(p.contacts_s) +
         ", \"events_s\": " + std::to_string(p.events_s) +
         ", \"ttl_s\": " + std::to_string(p.ttl_s) +
         ", \"prewarm_s\": " + std::to_string(p.prewarm_s) + ", ";
  }
  s += "\"transfers_s\": " + std::to_string(p.transfers_s) +
       ", \"stepped\": " + std::to_string(p.steps) + "}";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const double warm_s = argc > 1 ? std::strtod(argv[1], nullptr) : 300.0;
  const double measure_s = argc > 2 ? std::strtod(argv[2], nullptr) : 1500.0;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_parallel_step.json";

  const std::vector<std::size_t> fleet_sizes{126, 500, 2000};
  const std::vector<std::string> policies{"fifo", "sdsrp"};
  const std::vector<std::size_t> thread_counts{2, 4, 8};
  const unsigned hw = std::thread::hardware_concurrency();
  // One hardware thread cannot run helper lanes concurrently: wall-clock
  // speedup is physically unobservable there, so the verdict is skipped
  // (not failed). Digest equivalence is machine-independent and always
  // checked.
  const bool speedup_meaningful = hw >= 2;

  std::cout << "Table II RWP parallel step, warm " << warm_s << " s, measure "
            << measure_s << " s, hardware threads " << hw
            << (speedup_meaningful ? "" : " (speedup verdicts skipped)")
            << "\n";

  bool all_digests_match = true;
  std::string rows;
  for (const std::size_t n : fleet_sizes) {
    for (const std::string& policy : policies) {
      const RunResult serial = run_one(n, policy, 0, warm_s, measure_s);
      std::cout << "  N=" << n << " " << policy << ": serial "
                << serial.steps_per_sec << " steps/s\n";
      for (const std::size_t threads : thread_counts) {
        const RunResult par = run_one(n, policy, threads, warm_s, measure_s);
        const bool match = par.digest == serial.digest;
        all_digests_match = all_digests_match && match;
        const double speedup = serial.steps_per_sec > 0.0
                                   ? par.steps_per_sec / serial.steps_per_sec
                                   : 0.0;
        std::cout << "    threads=" << threads << ": "
                  << par.steps_per_sec << " steps/s, speedup ";
        if (speedup_meaningful) {
          std::cout << speedup << "x";
        } else {
          std::cout << "(skipped: 1 hardware thread)";
        }
        std::cout << ", digest " << (match ? "match" : "MISMATCH") << "\n";
        if (!rows.empty()) rows += ",\n";
        rows += "    {\"nodes\": " + std::to_string(n) + ", \"policy\": \"" +
                policy + "\", \"threads\": " + std::to_string(threads) +
                ", \"serial_steps_per_sec\": " +
                std::to_string(serial.steps_per_sec) +
                ", \"parallel_steps_per_sec\": " +
                std::to_string(par.steps_per_sec) +
                ", \"speedup\": " + std::to_string(speedup) +
                ", \"speedup_verdict\": \"" +
                (speedup_meaningful ? "measured" : "skipped") +
                "\", \"delivered\": " + std::to_string(par.delivered) +
                ", \"digest_match\": " + (match ? "true" : "false") +
                ",\n     \"serial_phases\": " +
                phases_json(serial.phases, /*graph_path=*/false) +
                ",\n     \"parallel_phases\": " +
                phases_json(par.phases, /*graph_path=*/true) + "}";
      }
    }
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"scenario\": \"rwp-paper\",\n"
      << "  \"warm_s\": " << warm_s << ",\n"
      << "  \"measure_s\": " << measure_s << ",\n"
      << "  \"speedup_verdicts\": \""
      << (speedup_meaningful ? "measured" : "skipped") << "\",\n"
      << dtn::bench::bench_env_json_fields()
      << "  \"results\": [\n"
      << rows << "\n"
      << "  ],\n"
      << "  \"parallel_digest_matches_serial\": "
      << (all_digests_match ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return all_digests_match ? 0 : 1;
}
