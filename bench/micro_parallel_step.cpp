// Intra-step parallelism microbenchmark: Table II RWP at growing fleet
// sizes, serial step loop (Parallel.threads = 0) vs the sharded phases
// (DESIGN.md §11) at 2/4/8 workers, for FIFO and SDSRP. The parallel
// mode is decision-identical by construction, so every (N, policy,
// threads) cell also compares its end-of-run digest against the serial
// baseline — `parallel_digest_matches_serial` in the JSON is the AND
// over every cell and is gated by CI. `hardware_threads` records the
// measurement box: throughput numbers are only meaningful relative to
// it (a 1-core container cannot show wall-clock speedups).
//
//   ./micro_parallel_step [warm_s] [measure_s] [out.json]
//
// Writes a JSON report (default BENCH_parallel_step.json); the committed
// copy at the repo root is produced with the default full horizons.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/fig_common.hpp"
#include "src/config/scenario.hpp"

namespace {

struct RunResult {
  double steps_per_sec = 0.0;
  double wall_s = 0.0;
  std::size_t delivered = 0;
  std::uint64_t digest = 0;
};

RunResult run_one(std::size_t nodes, const std::string& policy,
                  std::size_t threads, double warm_s, double measure_s) {
  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.n_nodes = nodes;
  sc.policy = policy;
  sc.world.threads = threads;
  sc.world.duration = warm_s + measure_s;
  auto world = dtn::build_world(sc);
  world->run_until(warm_s);
  const auto t0 = std::chrono::steady_clock::now();
  world->run_until(warm_s + measure_s);
  const auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  const double steps = measure_s / sc.world.step;
  r.steps_per_sec = r.wall_s > 0.0 ? steps / r.wall_s : 0.0;
  r.delivered = world->stats().delivered;
  r.digest = world->digest();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double warm_s = argc > 1 ? std::strtod(argv[1], nullptr) : 300.0;
  const double measure_s = argc > 2 ? std::strtod(argv[2], nullptr) : 1500.0;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_parallel_step.json";

  const std::vector<std::size_t> fleet_sizes{126, 500, 2000};
  const std::vector<std::string> policies{"fifo", "sdsrp"};
  const std::vector<std::size_t> thread_counts{2, 4, 8};
  const unsigned hw = std::thread::hardware_concurrency();

  std::cout << "Table II RWP parallel step, warm " << warm_s << " s, measure "
            << measure_s << " s, hardware threads " << hw << "\n";

  bool all_digests_match = true;
  std::string rows;
  for (const std::size_t n : fleet_sizes) {
    for (const std::string& policy : policies) {
      const RunResult serial = run_one(n, policy, 0, warm_s, measure_s);
      std::cout << "  N=" << n << " " << policy << ": serial "
                << serial.steps_per_sec << " steps/s\n";
      for (const std::size_t threads : thread_counts) {
        const RunResult par = run_one(n, policy, threads, warm_s, measure_s);
        const bool match = par.digest == serial.digest;
        all_digests_match = all_digests_match && match;
        const double speedup = serial.steps_per_sec > 0.0
                                   ? par.steps_per_sec / serial.steps_per_sec
                                   : 0.0;
        std::cout << "    threads=" << threads << ": "
                  << par.steps_per_sec << " steps/s, speedup " << speedup
                  << "x, digest " << (match ? "match" : "MISMATCH") << "\n";
        if (!rows.empty()) rows += ",\n";
        rows += "    {\"nodes\": " + std::to_string(n) + ", \"policy\": \"" +
                policy + "\", \"threads\": " + std::to_string(threads) +
                ", \"serial_steps_per_sec\": " +
                std::to_string(serial.steps_per_sec) +
                ", \"parallel_steps_per_sec\": " +
                std::to_string(par.steps_per_sec) +
                ", \"speedup\": " + std::to_string(speedup) +
                ", \"delivered\": " + std::to_string(par.delivered) +
                ", \"digest_match\": " + (match ? "true" : "false") + "}";
      }
    }
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"scenario\": \"rwp-paper\",\n"
      << "  \"warm_s\": " << warm_s << ",\n"
      << "  \"measure_s\": " << measure_s << ",\n"
      << dtn::bench::bench_env_json_fields()
      << "  \"results\": [\n"
      << rows << "\n"
      << "  ],\n"
      << "  \"parallel_digest_matches_serial\": "
      << (all_digests_match ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return all_digests_match ? 0 : 1;
}
