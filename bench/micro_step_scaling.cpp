// Step-loop scaling microbenchmark: Table II RWP at growing fleet sizes,
// legacy scan-based step loop vs the event-driven core (expiry/ETA heaps
// + kinetic contact skipping), for FIFO and SDSRP. The two paths are
// decision-identical by construction, so each (N, policy) cell also
// compares end-of-run digests — `event_digest_matches_legacy` in the
// JSON is the AND over every cell and is gated by CI.
//
//   ./micro_step_scaling [warm_s] [measure_s] [out.json]
//
// Writes a JSON report (default BENCH_step_scaling.json); the committed
// copy at the repo root is produced with the default full horizons.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/fig_common.hpp"
#include "src/config/scenario.hpp"

namespace {

struct RunResult {
  double steps_per_sec = 0.0;
  double wall_s = 0.0;
  std::size_t delivered = 0;
  std::uint64_t digest = 0;
};

RunResult run_one(std::size_t nodes, const std::string& policy, bool legacy,
                  double warm_s, double measure_s) {
  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.n_nodes = nodes;
  sc.policy = policy;
  sc.world.legacy_step = legacy;
  sc.world.duration = warm_s + measure_s;
  auto world = dtn::build_world(sc);
  world->run_until(warm_s);
  const auto t0 = std::chrono::steady_clock::now();
  world->run_until(warm_s + measure_s);
  const auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  const double steps = measure_s / sc.world.step;
  r.steps_per_sec = r.wall_s > 0.0 ? steps / r.wall_s : 0.0;
  r.delivered = world->stats().delivered;
  r.digest = world->digest();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double warm_s = argc > 1 ? std::strtod(argv[1], nullptr) : 300.0;
  const double measure_s = argc > 2 ? std::strtod(argv[2], nullptr) : 1500.0;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_step_scaling.json";

  const std::vector<std::size_t> fleet_sizes{126, 500, 2000};
  const std::vector<std::string> policies{"fifo", "sdsrp"};

  std::cout << "Table II RWP step scaling, warm " << warm_s << " s, measure "
            << measure_s << " s\n";

  bool all_digests_match = true;
  std::string rows;
  for (const std::size_t n : fleet_sizes) {
    for (const std::string& policy : policies) {
      const RunResult legacy = run_one(n, policy, true, warm_s, measure_s);
      const RunResult event = run_one(n, policy, false, warm_s, measure_s);
      const bool match = legacy.digest == event.digest;
      all_digests_match = all_digests_match && match;
      const double speedup = legacy.steps_per_sec > 0.0
                                 ? event.steps_per_sec / legacy.steps_per_sec
                                 : 0.0;
      std::cout << "  N=" << n << " " << policy << ": legacy "
                << legacy.steps_per_sec << " steps/s, event "
                << event.steps_per_sec << " steps/s, speedup " << speedup
                << "x, digest " << (match ? "match" : "MISMATCH") << "\n";
      if (!rows.empty()) rows += ",\n";
      rows += "    {\"nodes\": " + std::to_string(n) + ", \"policy\": \"" +
              policy + "\", \"legacy_steps_per_sec\": " +
              std::to_string(legacy.steps_per_sec) +
              ", \"event_steps_per_sec\": " +
              std::to_string(event.steps_per_sec) +
              ", \"speedup\": " + std::to_string(speedup) +
              ", \"delivered\": " + std::to_string(event.delivered) +
              ", \"digest_match\": " + (match ? "true" : "false") + "}";
    }
  }

  std::ofstream out(out_path);
  out << "{\n"
      << dtn::bench::bench_env_json_fields()
      << "  \"scenario\": \"rwp-paper\",\n"
      << "  \"warm_s\": " << warm_s << ",\n"
      << "  \"measure_s\": " << measure_s << ",\n"
      << "  \"results\": [\n"
      << rows << "\n"
      << "  ],\n"
      << "  \"event_digest_matches_legacy\": "
      << (all_digests_match ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return all_digests_match ? 0 : 1;
}
