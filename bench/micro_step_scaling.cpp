// Step-loop scaling microbenchmark: Table II RWP at growing fleet sizes,
// legacy scan-based step loop vs the event-driven core (expiry/ETA heaps
// + kinetic contact skipping), for FIFO and SDSRP. The two paths are
// decision-identical by construction, so each (N, policy) cell also
// compares end-of-run digests — `event_digest_matches_legacy` in the
// JSON is the AND over every cell and is gated by CI.
//
// Two row families:
//   * paper rows (126/500/2000 nodes): the Table II scenario as-is, both
//     paths timed over the full horizon;
//   * large-N rows (10k/100k nodes): the same scenario at constant node
//     density (area scaled with N) exercising the data-oriented core —
//     SoA hot state, arena-pooled messages, hierarchical grid
//     (DESIGN.md §14). The legacy path's O(N·messages) scans make full
//     horizons impractical there, so the digest gate runs both paths
//     over a short window and only the event path is timed in full.
//
//   ./micro_step_scaling [warm_s] [measure_s] [out.json] [threads]
//
// `threads` (or the DTN_THREADS environment variable; the positional
// argument wins) sets Parallel.threads for the event-path runs — the
// legacy path is the serial baseline by definition and always runs with
// 0. Thread count never changes results (DESIGN.md §16), so the digest
// gate is unaffected; the JSON records the value used.
//
// Writes a JSON report (default BENCH_step_scaling.json); the committed
// copy at the repo root is produced with the default full horizons.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/fig_common.hpp"
#include "src/config/scenario.hpp"

namespace {

struct RunResult {
  double steps_per_sec = 0.0;
  double wall_s = 0.0;
  std::size_t delivered = 0;
  std::uint64_t digest = 0;
};

dtn::Scenario scaled_scenario(std::size_t nodes, const std::string& policy,
                              bool legacy) {
  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  if (nodes > sc.n_nodes) {
    // Constant density: grow the area with the fleet so contact rates per
    // node (and thus per-step work per node) match the paper scenario.
    const double scale = std::sqrt(static_cast<double>(nodes) /
                                   static_cast<double>(sc.n_nodes));
    sc.rwp.area = dtn::Rect::sized(sc.rwp.area.width() * scale,
                                   sc.rwp.area.height() * scale);
  }
  sc.n_nodes = nodes;
  sc.policy = policy;
  sc.world.legacy_step = legacy;
  return sc;
}

RunResult run_one(std::size_t nodes, const std::string& policy, bool legacy,
                  double warm_s, double measure_s, std::size_t threads) {
  dtn::Scenario sc = scaled_scenario(nodes, policy, legacy);
  sc.world.duration = warm_s + measure_s;
  // The legacy baseline stays serial; `threads` applies to the event path.
  sc.world.threads = legacy ? 0 : threads;
  auto world = dtn::build_world(sc);
  world->run_until(warm_s);
  const auto t0 = std::chrono::steady_clock::now();
  world->run_until(warm_s + measure_s);
  const auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  const double steps = measure_s / sc.world.step;
  r.steps_per_sec = r.wall_s > 0.0 ? steps / r.wall_s : 0.0;
  r.delivered = world->stats().delivered;
  r.digest = world->digest();
  return r;
}

std::string row_json(std::size_t n, const std::string& policy,
                     const char* mode, double legacy_sps, double event_sps,
                     std::size_t delivered, bool match) {
  const double speedup = legacy_sps > 0.0 ? event_sps / legacy_sps : 0.0;
  return "    {\"nodes\": " + std::to_string(n) + ", \"policy\": \"" +
         policy + "\", \"mode\": \"" + mode +
         "\", \"legacy_steps_per_sec\": " + std::to_string(legacy_sps) +
         ", \"event_steps_per_sec\": " + std::to_string(event_sps) +
         ", \"speedup\": " + std::to_string(speedup) +
         ", \"delivered\": " + std::to_string(delivered) +
         ", \"digest_match\": " + (match ? "true" : "false") + "}";
}

}  // namespace

int main(int argc, char** argv) {
  const double warm_s = argc > 1 ? std::strtod(argv[1], nullptr) : 300.0;
  const double measure_s = argc > 2 ? std::strtod(argv[2], nullptr) : 1500.0;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_step_scaling.json";
  std::size_t threads = 0;
  if (const char* env = std::getenv("DTN_THREADS")) {
    threads = std::strtoul(env, nullptr, 10);
  }
  if (argc > 4) threads = std::strtoul(argv[4], nullptr, 10);

  const std::vector<std::size_t> fleet_sizes{126, 500, 2000};
  const std::vector<std::string> policies{"fifo", "sdsrp"};

  std::cout << "Table II RWP step scaling, warm " << warm_s << " s, measure "
            << measure_s << " s, event-path threads " << threads << "\n";

  bool all_digests_match = true;
  std::string rows;
  for (const std::size_t n : fleet_sizes) {
    for (const std::string& policy : policies) {
      const RunResult legacy =
          run_one(n, policy, true, warm_s, measure_s, threads);
      const RunResult event =
          run_one(n, policy, false, warm_s, measure_s, threads);
      const bool match = legacy.digest == event.digest;
      all_digests_match = all_digests_match && match;
      std::cout << "  N=" << n << " " << policy << ": legacy "
                << legacy.steps_per_sec << " steps/s, event "
                << event.steps_per_sec << " steps/s, speedup "
                << (legacy.steps_per_sec > 0.0
                        ? event.steps_per_sec / legacy.steps_per_sec
                        : 0.0)
                << "x, digest " << (match ? "match" : "MISMATCH") << "\n";
      if (!rows.empty()) rows += ",\n";
      rows += row_json(n, policy, "paper", legacy.steps_per_sec,
                       event.steps_per_sec, event.delivered, match);
    }
  }

  // Large-N constant-density rows. The digest gate compares both paths
  // over a window the legacy path can afford; the event path is then
  // timed over the (longer) measure horizon on its own.
  struct LargeRow {
    std::size_t nodes;
    double gate_s;     ///< digest-gate window (both paths)
    double warm_s;
    double measure_s;  ///< event-path timing window
  };
  const std::vector<LargeRow> large{
      {10'000, std::min(measure_s, 120.0), std::min(warm_s, 60.0),
       std::min(measure_s, 300.0)},
      {100'000, std::min(measure_s, 30.0), std::min(warm_s, 20.0),
       std::min(measure_s, 120.0)},
  };
  for (const LargeRow& lr : large) {
    const std::string policy = "fifo";
    const RunResult legacy_gate =
        run_one(lr.nodes, policy, true, 0.0, lr.gate_s, threads);
    const RunResult event_gate =
        run_one(lr.nodes, policy, false, 0.0, lr.gate_s, threads);
    const bool match = legacy_gate.digest == event_gate.digest;
    all_digests_match = all_digests_match && match;
    const RunResult event =
        run_one(lr.nodes, policy, false, lr.warm_s, lr.measure_s, threads);
    std::cout << "  N=" << lr.nodes << " " << policy
              << " (constant density): event " << event.steps_per_sec
              << " steps/s, gate window " << lr.gate_s << " s digest "
              << (match ? "match" : "MISMATCH") << "\n";
    rows += ",\n" + row_json(lr.nodes, policy, "large-n-constant-density",
                             0.0, event.steps_per_sec, event.delivered,
                             match);
  }

  std::ofstream out(out_path);
  out << "{\n"
      << dtn::bench::bench_env_json_fields()
      << "  \"scenario\": \"rwp-paper\",\n"
      << "  \"warm_s\": " << warm_s << ",\n"
      << "  \"measure_s\": " << measure_s << ",\n"
      << "  \"event_path_threads\": " << threads << ",\n"
      << "  \"results\": [\n"
      << rows << "\n"
      << "  ],\n"
      << "  \"event_digest_matches_legacy\": "
      << (all_digests_match ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return all_digests_match ? 0 : 1;
}
