// Micro-benchmarks (google-benchmark) for the simulator's hot kernels:
// spatial-grid contact detection, priority evaluation (closed form vs
// Taylor), buffer admission, dropped-list merge, and a full
// world-step at paper scale.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/buffer/fifo.hpp"
#include "src/buffer/sdsrp_policy.hpp"
#include "src/config/scenario.hpp"
#include "src/geo/spatial_grid.hpp"
#include "src/mobility/stationary.hpp"
#include "src/routing/spray_and_wait.hpp"
#include "src/sdsrp/dropped_list.hpp"
#include "src/sdsrp/priority_model.hpp"
#include "src/util/rng.hpp"

namespace {

void BM_SpatialGridRebuildAndPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dtn::Rng rng(7);
  std::vector<dtn::Vec2> pos;
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back({rng.uniform(0, 4500), rng.uniform(0, 3400)});
  }
  dtn::SpatialGrid grid(100.0);
  std::size_t pairs = 0;
  for (auto _ : state) {
    grid.rebuild(pos);
    grid.for_each_pair_within(
        100.0, [&pairs](std::size_t, std::size_t) { ++pairs; });
  }
  benchmark::DoNotOptimize(pairs);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SpatialGridRebuildAndPairs)->Arg(100)->Arg(200)->Arg(1000);

void BM_PriorityEq10(benchmark::State& state) {
  dtn::sdsrp::PriorityInputs in;
  in.n_nodes = 100;
  in.lambda = 1.0 / 5500.0;
  in.copies = 8;
  in.remaining_ttl = 9000;
  in.m_seen = 5;
  in.n_holding = 4;
  double acc = 0;
  for (auto _ : state) {
    in.remaining_ttl += 1.0;  // defeat constant folding
    acc += dtn::sdsrp::priority_eq10(in);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_PriorityEq10);

void BM_PriorityTaylor(benchmark::State& state) {
  const auto terms = static_cast<std::size_t>(state.range(0));
  double pr = 0.3, acc = 0;
  for (auto _ : state) {
    pr = pr < 0.9 ? pr + 1e-6 : 0.3;
    acc += dtn::sdsrp::priority_taylor(0.1, pr, 3.0, terms);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_PriorityTaylor)->Arg(1)->Arg(5)->Arg(20)->Arg(50);

void BM_BufferAdmissionFifo(benchmark::State& state) {
  const dtn::SprayAndWaitRouter router;
  const dtn::FifoPolicy policy;
  dtn::MessageArena arena;
  dtn::Node node(0, std::make_unique<dtn::StationaryModel>(dtn::Vec2{}),
                 2'500'000, &router, &policy, arena);
  dtn::PolicyContext ctx;
  ctx.n_nodes = 100;
  ctx.node = &node;
  dtn::MessageId next = 1;
  for (auto _ : state) {
    dtn::Message m;
    m.id = next++;
    m.source = 0;
    m.destination = 1;
    m.size = 500'000;
    m.created = ctx.now;
    m.ttl = 18000;
    m.received = ctx.now;
    ctx.now += 1.0;
    benchmark::DoNotOptimize(node.admit(std::move(m), ctx).admitted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BufferAdmissionFifo);

void BM_DroppedListMerge(benchmark::State& state) {
  const auto records = static_cast<std::size_t>(state.range(0));
  dtn::sdsrp::DroppedList target(0);
  dtn::sdsrp::DroppedList source(1);
  for (std::size_t n = 1; n <= records; ++n) {
    dtn::sdsrp::DroppedList node(n);
    for (std::uint64_t m = 0; m < 8; ++m) {
      node.record_local_drop(n * 100 + m, static_cast<double>(n));
    }
    source.merge_from(node);
  }
  for (auto _ : state) {
    target.merge_from(source);
    benchmark::DoNotOptimize(target.known_records());
  }
}
BENCHMARK(BM_DroppedListMerge)->Arg(10)->Arg(100);

void BM_WorldStepPaperScale(benchmark::State& state) {
  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.policy = state.range(0) == 0 ? "fifo" : "sdsrp";
  auto world = dtn::build_world(sc);
  world->run_until(2000.0);  // warm: populated buffers, live contacts
  for (auto _ : state) {
    world->step();
  }
  state.SetLabel(sc.policy);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorldStepPaperScale)->Arg(0)->Arg(1);

}  // namespace
