// Shared driver for the paper's Fig. 8 / Fig. 9 panel grids: three sweeps
// (initial copies, buffer size, message generation interval) x four buffer
// policies x three metrics, printed as one table per panel row.
#pragma once

#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/report/sweep.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

namespace dtn::bench {

inline const std::vector<std::pair<std::string, std::string>>& policies() {
  static const std::vector<std::pair<std::string, std::string>> kPolicies = {
      {"SprayAndWait", "fifo"},
      {"SprayAndWait-O", "ttl-ratio"},
      {"SprayAndWait-C", "copies-ratio"},
      {"SDSRP", "sdsrp"},
  };
  return kPolicies;
}

/// Uniform environment stamp for every BENCH_*.json emitter: hardware
/// thread count, source revision, and build type, so archived bench
/// reports are comparable across machines and build configurations.
/// Returns ready-to-splice `"key": value,` lines (one per field).
inline std::string bench_env_json_fields(const std::string& indent = "  ") {
#ifdef DTN_GIT_DESCRIBE
  const std::string git = DTN_GIT_DESCRIBE;
#else
  const std::string git = "unknown";
#endif
#ifdef DTN_BUILD_TYPE
  const std::string build = DTN_BUILD_TYPE;
#else
  const std::string build = "unknown";
#endif
  return indent + "\"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n" +
         indent + "\"git_describe\": \"" + git + "\",\n" +
         indent + "\"build_type\": \"" + build + "\",\n";
}

/// Paper sweep values (Tables II & III).
inline std::vector<double> copies_sweep() {
  return {16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64};
}
inline std::vector<double> buffer_sweep_mb() {
  return {2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0};
}
/// Generation-interval lower bounds; each interval is [lo, lo+5] s.
inline std::vector<double> genrate_sweep_lo() {
  return {10, 15, 20, 25, 30, 35, 40, 45};
}

struct PanelRow {
  std::string x_label;
  std::vector<double> xs;
  /// metric_series[policy][x] for each of the three paper metrics.
  std::vector<std::vector<double>> delivery, hops, overhead;
};

/// Applies one sweep knob to a copy of the base scenario.
using Mutator = void (*)(Scenario&, double);

inline PanelRow run_panel(const Scenario& base, const std::string& x_label,
                          const std::vector<double>& xs, Mutator mutate,
                          std::size_t replicas, ThreadPool* pool) {
  PanelRow row;
  row.x_label = x_label;
  row.xs = xs;
  for (const auto& [label, policy] : policies()) {
    std::vector<SweepPoint> points;
    points.reserve(xs.size());
    for (double x : xs) {
      SweepPoint p;
      p.x = x;
      p.scenario = base;
      p.scenario.policy = policy;
      mutate(p.scenario, x);
      points.push_back(std::move(p));
    }
    const auto results = run_sweep(points, replicas, pool);
    std::vector<double> d, h, o;
    for (const auto& r : results) {
      d.push_back(r.delivery_ratio.mean());
      h.push_back(r.avg_hopcount.mean());
      o.push_back(r.overhead_ratio.mean());
    }
    row.delivery.push_back(std::move(d));
    row.hops.push_back(std::move(h));
    row.overhead.push_back(std::move(o));
  }
  return row;
}

/// When nonempty, every panel is additionally saved to
/// `<csv_dir>/<fig>.csv` (set from the bench binaries' third argument).
inline std::string& csv_dir() {
  static std::string dir;
  return dir;
}

inline void print_panel(std::ostream& os, const std::string& fig,
                        const PanelRow& row, const std::string& metric_name,
                        const std::vector<std::vector<double>>& series) {
  os << "\n== " << fig << ": " << metric_name << " vs " << row.x_label
     << " ==\n";
  std::vector<std::string> cols{row.x_label};
  for (const auto& [label, _] : policies()) cols.push_back(label);
  Table t(cols);
  for (std::size_t i = 0; i < row.xs.size(); ++i) {
    std::vector<Cell> cells{row.xs[i]};
    for (const auto& s : series) cells.emplace_back(s[i]);
    t.add_row(std::move(cells));
  }
  t.set_precision(3);
  t.print(os);
  if (!csv_dir().empty()) {
    const std::string path = csv_dir() + "/" + fig + ".csv";
    if (!t.save_csv(path)) os << "(could not write " << path << ")\n";
  }
}

inline void print_panel_group(std::ostream& os, const std::string& fig_a,
                              const std::string& fig_b,
                              const std::string& fig_c, const PanelRow& row) {
  print_panel(os, fig_a, row, "delivery ratio", row.delivery);
  print_panel(os, fig_b, row, "average hopcounts", row.hops);
  print_panel(os, fig_c, row, "overhead ratio", row.overhead);
}

// Sweep mutators.
inline void set_copies(Scenario& sc, double x) {
  sc.traffic.initial_copies = static_cast<int>(x);
}
inline void set_buffer_mb(Scenario& sc, double x) {
  sc.buffer_capacity = units::megabytes(x);
}
inline void set_genrate_lo(Scenario& sc, double x) {
  sc.traffic.interval_min = x;
  sc.traffic.interval_max = x + 5.0;
}

}  // namespace dtn::bench
