// Extension experiment: mobility sensitivity. Runs the four buffer
// policies at Table II parameters under every bundled mobility family
// (the paper's Section III-A argues the intermeeting-exponentiality
// assumption across random-walk/waypoint/direction; this measures how
// the policy ordering itself depends on mobility).
//
//   ./ext_mobility [replicas]
#include <iostream>

#include "src/report/sweep.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;

  dtn::Table t({"mobility", "policy", "delivery", "hops", "overhead"});
  for (const char* mobility :
       {"random-waypoint", "random-walk", "random-direction",
        "manhattan-grid", "taxi-fleet"}) {
    for (const char* policy : {"fifo", "ttl-ratio", "copies-ratio",
                               "sdsrp"}) {
      dtn::Scenario sc = std::string(mobility) == "taxi-fleet"
                             ? dtn::Scenario::taxi_paper()
                             : dtn::Scenario::random_waypoint_paper();
      sc.mobility = mobility;
      sc.policy = policy;
      const auto m = dtn::run_replicated(sc, replicas);
      t.add_row({std::string(mobility), std::string(policy),
                 m.delivery_ratio.mean(), m.avg_hopcount.mean(),
                 m.overhead_ratio.mean()});
    }
  }
  t.set_precision(3);
  t.print(std::cout);
  return 0;
}
