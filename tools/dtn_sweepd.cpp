// dtn_sweepd — fleet-scale sweep daemon (DESIGN.md §12).
//
// Subcommands:
//   gen-table2  write a Table II buffer-size sweep manifest
//   run         coordinate a sharded sweep across worker processes
//   worker      (internal) wire-protocol worker on stdin/stdout
//   print       render a results.bin as a metrics table
//
// Quickstart:
//   dtn_sweepd gen-table2 --out manifest.txt --replicas 4
//   dtn_sweepd run --manifest manifest.txt --dir sweep --workers 4
//       [--status-port 8080]
//   dtn_sweepd print --manifest manifest.txt --results sweep/results.bin
//
// The merged sweep/results.bin is byte-identical for any --workers value,
// any scheduling interleaving, and any number of worker crashes — `cmp`
// between runs is the supported equivalence check (CI does exactly that
// while SIGKILLing a worker mid-sweep).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/orch/coordinator.hpp"
#include "src/orch/manifest.hpp"
#include "src/orch/shard_store.hpp"
#include "src/orch/worker.hpp"
#include "src/util/error.hpp"
#include "src/util/settings.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

namespace {

using dtn::orch::CoordinatorOptions;
using dtn::orch::SweepManifest;
using dtn::orch::WorkerOptions;

/// Per-run Parallel.threads override for worker runs: `--sim-threads N`
/// wins, else the DTN_THREADS environment variable, else -1 (keep the
/// manifest scenario's setting). Results are thread-count-invariant, so
/// this only tunes per-box wall clock.
int sim_threads_override(const std::string& flag_value, bool has_flag) {
  if (has_flag) {
    return static_cast<int>(std::strtol(flag_value.c_str(), nullptr, 10));
  }
  if (const char* env = std::getenv("DTN_THREADS")) {
    return static_cast<int>(std::strtol(env, nullptr, 10));
  }
  return -1;
}

/// `--key value` pairs plus bare `--flag` switches after the subcommand.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      DTN_REQUIRE(key.rfind("--", 0) == 0, "expected --option, got " + key);
      key.erase(0, 2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }
  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  std::string require(const std::string& key) const {
    DTN_REQUIRE(has(key), "missing required --" + key);
    return values_.at(key);
  }
  double get_double(const std::string& key, double dflt) const {
    return has(key) ? std::strtod(values_.at(key).c_str(), nullptr) : dflt;
  }
  std::size_t get_size(const std::string& key, std::size_t dflt) const {
    return has(key) ? static_cast<std::size_t>(
                          std::strtoull(values_.at(key).c_str(), nullptr, 10))
                    : dflt;
  }

 private:
  std::map<std::string, std::string> values_;
};

std::string self_exe() {
  char buf[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  DTN_REQUIRE(n > 0, "cannot resolve /proc/self/exe");
  buf[n] = '\0';
  return buf;
}

int cmd_gen_table2(const Args& args) {
  const std::string out = args.require("out");
  SweepManifest m;
  m.name = args.get("name", "table2-buffer");
  m.replicas = args.get_size("replicas", 4);
  m.shard_size = args.get_size("shard-size", 4);
  const std::vector<double> buffers_mb = dtn::Settings::parse(
      "v = " + args.get("buffers", "2,2.5,3,3.5,4,4.5,5"))
                                             .get_double_list("v");
  for (double mb : buffers_mb) {
    dtn::SweepPoint p;
    p.x = mb;
    p.scenario = dtn::Scenario::random_waypoint_paper();
    p.scenario.policy = args.get("policy", "sdsrp");
    p.scenario.buffer_capacity = dtn::units::megabytes(mb);
    if (args.has("nodes")) p.scenario.n_nodes = args.get_size("nodes", 0);
    if (args.has("duration"))
      p.scenario.world.duration = args.get_double("duration", 0.0);
    m.points.push_back(std::move(p));
  }
  m.save(out);
  std::cout << "wrote " << out << ": " << m.points.size() << " points x "
            << m.replicas << " replicas = " << m.total_runs() << " runs in "
            << m.shard_count() << " shards\n";
  return 0;
}

/// A histogram quantile as a table cell: saturated estimates (the rank
/// fell into overflow, so the value is only a lower bound at the
/// histogram ceiling) print as ">=<value>" instead of masquerading as a
/// measurement.
dtn::Cell quantile_cell(const dtn::Histogram& h, double q) {
  const auto est = h.quantile_checked(q);
  if (!est.saturated) return est.value;
  std::ostringstream os;
  os << ">=" << est.value;
  return os.str();
}

void print_results(const SweepManifest& m,
                   const std::vector<dtn::ReplicatedMetrics>& aggs) {
  dtn::Table t({"x", "delivery", "±ci95", "hops", "overhead", "latency",
                "lat p50", "lat p95", "lat ovf", "runs"});
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    const auto& a = aggs[i];
    t.add_row({m.points[i].x, a.delivery_ratio.mean(),
               a.delivery_ratio.ci95_half_width(), a.avg_hopcount.mean(),
               a.overhead_ratio.mean(), a.avg_latency.mean(),
               quantile_cell(a.latency_hist, 0.5),
               quantile_cell(a.latency_hist, 0.95),
               a.latency_overflow_fraction(),
               static_cast<std::int64_t>(a.delivery_ratio.count())});
  }
  t.set_precision(4);
  t.print(std::cout);
}

int cmd_run(const Args& args) {
  const SweepManifest m = SweepManifest::load(args.require("manifest"));
  const std::string dir = args.require("dir");

  CoordinatorOptions opts;
  opts.workers = args.get_size("workers", 2);
  opts.lease_ttl_s = args.get_double("lease-ttl-s", 60.0);
  opts.progress_interval_s = args.get_double("progress-interval-s", 1.0);
  opts.keep_files = args.has("keep-files");
  opts.status_port =
      args.has("status-port")
          ? static_cast<int>(args.get_size("status-port", 0))
          : -1;
  opts.max_wall_s = args.get_double("max-wall-s", 0.0);
  opts.chaos_kill_after_shards = args.get_size("chaos-kill-after", 0);
  opts.log = &std::cerr;

  opts.worker_argv = {self_exe(),
                      "worker",
                      "--manifest",
                      dtn::orch::manifest_path(dir),
                      "--dir",
                      dir,
                      "--ckpt-interval-s",
                      args.get("ckpt-interval-s", "600")};
  if (opts.keep_files) opts.worker_argv.push_back("--keep-files");
  // Forward an explicit flag to workers; a DTN_THREADS environment
  // variable reaches the subprocesses on its own.
  if (args.has("sim-threads")) {
    opts.worker_argv.push_back("--sim-threads");
    opts.worker_argv.push_back(args.get("sim-threads", ""));
  }

  const auto outcome = dtn::orch::run_coordinator(m, dir, opts);
  std::cout << "sweep \"" << m.name << "\": " << outcome.shards_total
            << " shards (" << outcome.shards_resumed << " resumed, "
            << outcome.shards_reassigned << " reassigned, "
            << outcome.workers_lost << " worker(s) lost)\n"
            << "results: " << dtn::orch::results_path(dir) << "\n";
  print_results(m, outcome.aggregates);
  return 0;
}

int cmd_worker(const Args& args) {
  const SweepManifest m = SweepManifest::load(args.require("manifest"));
  WorkerOptions opts;
  opts.ckpt_interval_s = args.get_double("ckpt-interval-s", 600.0);
  opts.keep_run_files = args.has("keep-files");
  opts.sim_threads =
      sim_threads_override(args.get("sim-threads", ""), args.has("sim-threads"));
  return dtn::orch::run_worker_loop(std::cin, std::cout, m,
                                    args.require("dir"), opts);
}

int cmd_print(const Args& args) {
  const SweepManifest m = SweepManifest::load(args.require("manifest"));
  const auto aggs = dtn::orch::read_results_file(args.require("results"));
  DTN_REQUIRE(aggs.size() == m.points.size(),
              "results/manifest point count mismatch");
  print_results(m, aggs);
  return 0;
}

int usage() {
  std::cerr
      << "usage: dtn_sweepd <command> [options]\n"
      << "  gen-table2 --out F [--replicas R] [--buffers MBs] [--nodes N]\n"
      << "             [--duration S] [--policy P] [--shard-size K]\n"
      << "  run        --manifest F --dir D [--workers W] [--status-port P]\n"
      << "             [--ckpt-interval-s S] [--lease-ttl-s S] [--keep-files]\n"
      << "             [--max-wall-s S] [--chaos-kill-after K]\n"
      << "             [--sim-threads T]   (or DTN_THREADS env; per-run\n"
      << "                                  Parallel.threads override)\n"
      << "  worker     --manifest F --dir D [--ckpt-interval-s S]\n"
      << "             [--sim-threads T]\n"
      << "  print      --manifest F --results F\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (cmd == "gen-table2") return cmd_gen_table2(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "worker") return cmd_worker(args);
    if (cmd == "print") return cmd_print(args);
  } catch (const std::exception& e) {
    std::cerr << "dtn_sweepd: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
