// Fault-injection walkthrough: run the Table II scenario (scaled down)
// with node churn, link aborts and radio degradation; sample the fleet's
// availability over time; then prove the determinism contract — a
// checkpoint taken mid-outage resumes bit-identically to the
// uninterrupted run.
//
// Usage: fault_probe [checkpoint-path]
#include <cstdio>

#include "src/config/scenario.hpp"
#include "src/snapshot/checkpoint.hpp"

namespace {

dtn::Scenario faulty_scenario() {
  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.name = "fault-probe";
  sc.n_nodes = 40;
  sc.world.duration = 6000.0;
  sc.rwp.area = dtn::Rect::sized(2000.0, 1500.0);
  sc.traffic.ttl = 3000.0;
  sc.traffic.initial_copies = 8;
  sc.fault.enabled = true;
  sc.fault.churn_fraction = 0.5;
  sc.fault.mean_up_s = 900.0;
  sc.fault.mean_down_s = 300.0;
  sc.fault.reboot_purge = false;
  sc.fault.link_abort_rate_per_hour = 30.0;
  sc.fault.degrade_rate_per_hour = 4.0;
  sc.fault.degrade_duration_s = 300.0;
  sc.fault.degrade_range_factor = 0.6;
  sc.fault.degrade_bitrate_factor = 0.5;
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "fault_probe_demo.ckpt";
  const dtn::Scenario sc = faulty_scenario();

  // One uninterrupted run, sampling fleet availability as it goes.
  auto cold = dtn::build_world(sc);
  std::printf("t(s)   down  degraded  aborts(faulted)  downtime(s)\n");
  for (double t = 600.0; t <= sc.world.duration; t += 600.0) {
    cold->run_until(t);
    const dtn::FaultPlan* plan = cold->faults();
    std::printf("%5.0f  %4zu  %8zu  %15zu  %11.0f\n", cold->now(),
                plan->down_count(), plan->degraded_count(),
                cold->stats().faulted_aborts, cold->stats().downtime_s);
  }
  const std::uint64_t cold_digest = cold->digest();
  std::printf("delivered %zu / created %zu; drops %zu; "
              "transfers started %zu = completed %zu + aborted %zu\n",
              cold->stats().delivered, cold->stats().created,
              cold->stats().drops, cold->stats().transfers_started,
              cold->stats().transfers_completed,
              cold->stats().transfers_aborted);

  // Interrupted run: checkpoint at T/2 — deliberately while part of the
  // fleet is down — and resume in a fresh World.
  {
    auto world = dtn::build_world(sc);
    world->run_until(sc.world.duration / 2.0);
    std::printf("checkpoint at t=%.0f with %zu node(s) down\n", world->now(),
                world->faults()->down_count());
    dtn::snapshot::save_checkpoint(path, sc, *world);
  }
  auto restored = dtn::snapshot::restore_checkpoint(path);
  restored.world->run();
  const std::uint64_t warm_digest = restored.world->digest();

  std::printf("uninterrupted digest: %016llx\n",
              static_cast<unsigned long long>(cold_digest));
  std::printf("mid-outage resumed:   %016llx\n",
              static_cast<unsigned long long>(warm_digest));
  std::printf(warm_digest == cold_digest ? "states identical\n"
                                         : "STATES DIVERGED\n");
  std::remove(path.c_str());
  return warm_digest == cold_digest ? 0 : 1;
}
