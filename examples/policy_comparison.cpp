// Policy comparison: runs the paper's four buffer-management strategies
// (FIFO "Spray and Wait", Spray and Wait-O, Spray and Wait-C, SDSRP) on
// the same scenario, replicated over seeds, and prints the three paper
// metrics with 95% confidence half-widths.
//
//   ./policy_comparison [rwp|taxi] [replicas]
#include <iostream>
#include <string>
#include <vector>

#include "src/report/sweep.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "rwp";
  const std::size_t replicas =
      argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 5;

  dtn::Scenario base = which == "taxi"
                           ? dtn::Scenario::taxi_paper()
                           : dtn::Scenario::random_waypoint_paper();

  const std::vector<std::pair<std::string, std::string>> policies = {
      {"Spray and Wait (FIFO)", "fifo"},
      {"Spray and Wait-O", "ttl-ratio"},
      {"Spray and Wait-C", "copies-ratio"},
      {"SDSRP", "sdsrp"},
  };

  std::cout << "Scenario " << base.name << ", " << replicas
            << " replicas per policy\n";

  dtn::Table t({"policy", "delivery", "±", "hops", "±", "overhead", "±"});
  for (const auto& [label, name] : policies) {
    dtn::Scenario sc = base;
    sc.policy = name;
    const auto m = dtn::run_replicated(sc, replicas);
    t.add_row({label, m.delivery_ratio.mean(),
               m.delivery_ratio.ci95_half_width(), m.avg_hopcount.mean(),
               m.avg_hopcount.ci95_half_width(), m.overhead_ratio.mean(),
               m.overhead_ratio.ci95_half_width()});
  }
  t.set_precision(3);
  t.print(std::cout);
  return 0;
}
