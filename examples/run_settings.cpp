// CLI scenario runner: loads a ONE-style settings file (see scenarios/),
// applies optional key=value overrides from the command line, runs the
// simulation, prints the stats table and (optionally) writes reports.
//
//   ./run_settings <settings-file> [key=value ...]
//
// Recognized extra keys:
//   Report.deliveredCsv = <path>   write the per-delivery log as CSV
//   Report.occupancyCsv = <path>   write the buffer-occupancy series
//   Report.contactsCsv  = <path>   write the contact summary
#include <iostream>
#include <string>

#include "src/config/scenario.hpp"
#include "src/report/observers.hpp"
#include "src/report/reports.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: run_settings <settings-file> [key=value ...]\n";
    return 2;
  }
  dtn::Settings settings;
  try {
    settings = dtn::Settings::load(argv[1]);
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        std::cerr << "override must be key=value: " << arg << "\n";
        return 2;
      }
      settings.set(arg.substr(0, eq), arg.substr(eq + 1));
    }

    const dtn::Scenario sc = dtn::Scenario::from_settings(settings);
    auto world = dtn::build_world(sc);

    dtn::DeliveredMessagesReport delivered;
    dtn::BufferOccupancyReport occupancy;
    dtn::ContactReport contacts;
    world->add_observer(&delivered);
    world->add_observer(&occupancy);
    world->add_observer(&contacts);

    std::cout << "Running scenario '" << sc.name << "' (" << sc.n_nodes
              << " nodes, router=" << sc.router << ", policy=" << sc.policy
              << ", seed=" << sc.seed << ")\n";
    world->run();
    dtn::message_stats_table(sc.name, world->stats()).print(std::cout);

    const std::string delivered_csv =
        settings.get_string_or("Report.deliveredCsv", "");
    if (!delivered_csv.empty() &&
        !delivered.to_table().save_csv(delivered_csv)) {
      std::cerr << "could not write " << delivered_csv << "\n";
      return 1;
    }
    const std::string occupancy_csv =
        settings.get_string_or("Report.occupancyCsv", "");
    if (!occupancy_csv.empty() &&
        !occupancy.to_table().save_csv(occupancy_csv)) {
      std::cerr << "could not write " << occupancy_csv << "\n";
      return 1;
    }
    const std::string contacts_csv =
        settings.get_string_or("Report.contactsCsv", "");
    if (!contacts_csv.empty() && !contacts.to_table().save_csv(contacts_csv)) {
      std::cerr << "could not write " << contacts_csv << "\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
