// Drives a replicated mini-sweep through the orchestrator API in-process:
// build a manifest, execute its shards over thread-pool lanes (no fork),
// and read back the canonically merged aggregates. The same shard files
// and merge path back the multi-process dtn_sweepd daemon, so the
// results.bin written here is byte-identical to a daemon run of the same
// manifest with any worker count.
//
// Build & run:
//   cmake --build build --target sweep_service && ./build/examples/sweep_service
#include <cstdio>
#include <iostream>

#include "src/orch/manifest.hpp"
#include "src/orch/shard_store.hpp"
#include "src/orch/worker.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

int main() {
  using namespace dtn;

  // A miniature Table II slice: SDSRP delivery metrics as the shared
  // buffer grows, 2 seeds per point, small enough to finish in seconds.
  orch::SweepManifest manifest;
  manifest.name = "table2-mini";
  manifest.replicas = 2;
  manifest.shard_size = 2;  // 2 runs per shard -> 4 shards for 8 runs
  for (double mb : {2.0, 3.0, 4.0, 5.0}) {
    SweepPoint p;
    p.x = mb;
    p.scenario = Scenario::random_waypoint_paper();
    p.scenario.policy = "sdsrp";
    p.scenario.buffer_capacity = units::megabytes(mb);
    p.scenario.n_nodes = 40;           // shrunk from the paper's 100
    p.scenario.world.duration = 1800;  // and from 12 h of simulated time
    manifest.points.push_back(p);
  }

  const std::string dir = "sweep_service_out";
  std::cout << "running \"" << manifest.name << "\": " << manifest.total_runs()
            << " runs in " << manifest.shard_count() << " shards over 2 lanes\n";

  orch::InProcessOptions opts;
  opts.lanes = 2;
  const auto aggregates = orch::run_sweep_inprocess(manifest, dir, opts);

  Table t({"buffer MB", "delivery", "±ci95", "overhead", "latency s",
           "lat p95 s"});
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    const auto& a = aggregates[i];
    t.add_row({manifest.points[i].x, a.delivery_ratio.mean(),
               a.delivery_ratio.ci95_half_width(), a.overhead_ratio.mean(),
               a.avg_latency.mean(), a.latency_hist.quantile(0.95)});
  }
  t.print(std::cout);

  std::cout << "merged results: " << orch::results_path(dir)
            << " (byte-identical to any dtn_sweepd run of this manifest)\n";
  return 0;
}
