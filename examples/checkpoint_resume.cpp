// Checkpoint/restore demo: run the paper's Table II scenario (scaled
// down), snapshot it halfway, restore into a fresh process-independent
// World and show that the resumed run is bit-for-bit the uninterrupted
// one — same state digest, same metrics.
//
// Usage: checkpoint_resume [checkpoint-path]
#include <cstdio>

#include "src/config/scenario.hpp"
#include "src/snapshot/checkpoint.hpp"

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "checkpoint_resume_demo.ckpt";

  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.n_nodes = 40;
  sc.world.duration = 6000.0;
  sc.rwp.area = dtn::Rect::sized(2000.0, 1500.0);
  sc.traffic.ttl = 3000.0;
  sc.traffic.initial_copies = 8;

  const double half = sc.world.duration / 2.0;

  // Reference: one uninterrupted run.
  auto cold = dtn::build_world(sc);
  cold->run();
  const std::uint64_t cold_digest = cold->digest();

  // Interrupted run: stop at T/2, checkpoint to disk, drop the world.
  {
    auto world = dtn::build_world(sc);
    world->run_until(half);
    dtn::snapshot::save_checkpoint(path, sc, *world);
    std::printf("saved %s at t=%.0f s (digest %016llx)\n", path.c_str(),
                world->now(),
                static_cast<unsigned long long>(world->digest()));
  }

  // Resume: the checkpoint is self-describing — no scenario needed.
  auto restored = dtn::snapshot::restore_checkpoint(path);
  std::printf("restored '%s' at t=%.0f s (digest %016llx)\n",
              restored.scenario.name.c_str(), restored.world->now(),
              static_cast<unsigned long long>(restored.world->digest()));
  restored.world->run();

  const std::uint64_t warm_digest = restored.world->digest();
  std::printf("uninterrupted digest: %016llx\n",
              static_cast<unsigned long long>(cold_digest));
  std::printf("resumed digest:       %016llx\n",
              static_cast<unsigned long long>(warm_digest));
  std::printf("delivered: cold=%zu resumed=%zu\n", cold->stats().delivered,
              restored.world->stats().delivered);
  std::printf(warm_digest == cold_digest ? "states identical\n"
                                         : "STATES DIVERGED\n");
  std::remove(path.c_str());
  return warm_digest == cold_digest ? 0 : 1;
}
