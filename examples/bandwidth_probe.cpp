// Probe: how the link-speed interpretation (paper text "250 Kbps" vs the
// ONE simulator's 250 kB/s convention) changes the policy comparison.
//   ./bandwidth_probe [replicas]
#include <iostream>

#include "src/report/sweep.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;
  dtn::Table t({"bandwidth", "buffer_MB", "policy", "delivery", "hops",
                "overhead"});
  for (double bw : {dtn::units::kbps(250), 250.0 * 1000.0}) {
    for (double mb : {2.5, 5.0}) {
      for (const char* policy :
           {"fifo", "ttl-ratio", "copies-ratio", "sdsrp"}) {
        dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
        sc.world.bandwidth = bw;
        sc.buffer_capacity = dtn::units::megabytes(mb);
        sc.policy = policy;
        const auto m = dtn::run_replicated(sc, replicas);
        t.add_row({bw, mb, std::string(policy), m.delivery_ratio.mean(),
                   m.avg_hopcount.mean(), m.overhead_ratio.mean()});
      }
    }
  }
  t.set_precision(3);
  t.print(std::cout);
  return 0;
}
