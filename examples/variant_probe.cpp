// Probe: SDSRP mechanical variants (pre-split admission view x estimator
// mode) against the FIFO baseline at tight and loose buffers.
//   ./variant_probe [replicas]
#include <iostream>

#include "src/report/sweep.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;
  dtn::Table t({"policy", "buffer_MB", "presplit", "imt_mode", "delivery",
                "hops", "overhead"});
  for (double mb : {2.5, 5.0}) {
    for (const char* policy : {"fifo", "sdsrp"}) {
      for (bool presplit : {false, true}) {
        for (bool mle : {false, true}) {
          if (std::string(policy) == "fifo" && (presplit || mle)) continue;
          dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
          sc.policy = policy;
          sc.buffer_capacity = dtn::units::megabytes(mb);
          sc.presplit_admission_view = presplit;
          sc.estimator.imt_mode = mle
              ? dtn::sdsrp::ImtEstimatorMode::kCensoredMle
              : dtn::sdsrp::ImtEstimatorMode::kNaiveMean;
          const auto m = dtn::run_replicated(sc, replicas);
          t.add_row({std::string(policy), mb,
                     std::string(presplit ? "yes" : "no"),
                     std::string(mle ? "mle" : "naive"),
                     m.delivery_ratio.mean(), m.avg_hopcount.mean(),
                     m.overhead_ratio.mean()});
        }
      }
    }
  }
  t.set_precision(3);
  t.print(std::cout);
  return 0;
}
