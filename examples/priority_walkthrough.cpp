// Walkthrough of the paper's Fig. 2 motivating example: two messages
// M_i and M_j coexist in a buffer — M_i with the larger copy budget and
// remaining TTL — yet which one deserves the next transmission slot
// flips as both age. Priority is not a monotone function of (C_i, R_i).
//
// Under the actual Eq. 10 utility the flip is a consequence of the
// Fig. 4 hump: a message's marginal utility peaks where P(R) = 1 − 1/e.
// M_i starts *past* the peak (delivery near-certain, marginal copy worth
// little) and decays toward it, so U(M_i) rises for a while; M_j starts
// near the peak and overshoots toward expiry, so U(M_j) collapses.
// (Note: the paper's prose assigns the early top rank to M_i; its own
// Fig. 4 analysis — priority *decreases* beyond the peak — gives the
// ordering printed here.)
//
//   ./priority_walkthrough
#include <iostream>

#include "src/sdsrp/priority_model.hpp"
#include "src/util/table.hpp"

int main() {
  using dtn::sdsrp::PriorityInputs;

  std::cout << "Paper Fig. 2 walkthrough: U(M_i) vs U(M_j) as both age.\n"
            << "M_i: C=16, TTL=12000s    M_j: C=4, TTL=6000s\n"
            << "lambda = 1/30000 /s, N = 100, n_i = n_j = 2, m = 4\n\n";

  dtn::Table t({"elapsed_s", "R_i", "R_j", "P(R_i)", "P(R_j)", "U(M_i)",
                "U(M_j)", "higher"});
  for (double elapsed = 0.0; elapsed <= 5500.0; elapsed += 500.0) {
    PriorityInputs mi;
    mi.n_nodes = 100;
    mi.lambda = 1.0 / 30000.0;
    mi.copies = 16;
    mi.remaining_ttl = 12000.0 - elapsed;
    mi.m_seen = 4.0;
    mi.n_holding = 2.0;
    PriorityInputs mj = mi;
    mj.copies = 4;
    mj.remaining_ttl = 6000.0 - elapsed;
    const double ui = dtn::sdsrp::priority_eq10(mi);
    const double uj = dtn::sdsrp::priority_eq10(mj);
    t.add_row({elapsed, mi.remaining_ttl, mj.remaining_ttl,
               dtn::sdsrp::prob_deliver_in_remaining(mi),
               dtn::sdsrp::prob_deliver_in_remaining(mj), ui, uj,
               std::string(ui > uj ? "M_i" : "M_j")});
  }
  t.set_precision(5);
  t.print(std::cout);
  std::cout << "\nThe 'higher' column flips mid-life: the scheduling/drop\n"
               "order cannot be derived from C_i or R_i alone — the core\n"
               "argument for the paper's non-heuristic priority.\n";
  return 0;
}
