// Intermeeting analysis: verifies the modeling assumption behind SDSRP's
// priority (paper Section III-B / Fig. 3) across all four bundled
// mobility models: intermeeting times should tail off exponentially for
// random-waypoint / walk / direction, with the taxi fleet close but
// heavier-tailed.
//
//   ./intermeeting_analysis [duration_s]
#include <cstdlib>
#include <iostream>

#include "src/config/scenario.hpp"
#include "src/report/reports.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const double duration = argc > 1 ? std::strtod(argv[1], nullptr) : 18000.0;

  dtn::Table summary(
      {"mobility", "samples", "E(I)_s", "lambda", "logCCDF_R2"});
  for (const char* mobility : {"random-waypoint", "random-walk",
                               "random-direction", "manhattan-grid",
                               "taxi-fleet"}) {
    dtn::Scenario sc = std::string(mobility) == "taxi-fleet"
                           ? dtn::Scenario::taxi_paper()
                           : dtn::Scenario::random_waypoint_paper();
    sc.mobility = mobility;
    sc.world.duration = duration;
    sc.world.collect_intermeeting = true;
    sc.traffic.interval_min = 2000.0;  // traffic is irrelevant here
    sc.traffic.interval_max = 2100.0;

    auto world = dtn::build_world(sc);
    world->run();
    const auto& samples = world->intermeeting_samples();
    if (samples.size() < 10) {
      std::cout << mobility << ": too few samples\n";
      continue;
    }
    const auto fit = dtn::fit_exponential(samples);
    summary.add_row({std::string(mobility),
                     static_cast<std::int64_t>(fit.samples), fit.mean,
                     fit.lambda, fit.r_squared});
  }
  summary.set_precision(6);
  summary.print(std::cout);
  std::cout << "\nR^2 near 1.0 = the log-CCDF is linear = exponential "
               "tail (the paper's Fig. 3 claim).\n";
  return 0;
}
