// Diagnostic: run the Table II scenario with SDSRP and dump the internal
// state the policy actually computes from — observed intermeeting times,
// per-node λ estimates, and the priority components of every message in a
// sample node's buffer. Useful for understanding (and debugging) why the
// policy ranks messages the way it does.
//
//   ./sdsrp_inspect [seed] [duration_s]
#include <cstdlib>
#include <iostream>

#include "src/buffer/sdsrp_policy.hpp"
#include "src/config/scenario.hpp"
#include "src/report/reports.hpp"
#include "src/util/stats.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const double duration = argc > 2 ? std::strtod(argv[2], nullptr) : 18000.0;

  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.policy = "sdsrp";
  sc.seed = seed;
  sc.world.duration = duration;
  sc.world.collect_intermeeting = true;

  auto world = dtn::build_world(sc);
  world->run();

  const auto& samples = world->intermeeting_samples();
  std::cout << "world pairwise intermeeting samples: " << samples.size()
            << "\n";
  if (!samples.empty()) {
    dtn::RunningStats s;
    for (double x : samples) s.add(x);
    std::cout << "  observed E(I) = " << s.mean() << " s  (min " << s.min()
              << ", max " << s.max() << ")\n";
    const auto fit = dtn::fit_exponential(samples);
    std::cout << "  exponential fit lambda = " << fit.lambda
              << "  R^2(logCCDF) = " << fit.r_squared << "\n";
  }

  dtn::RunningStats node_means, node_samples;
  for (dtn::NodeId id = 0; id < world->node_count(); ++id) {
    const auto& e = world->node(id).intermeeting();
    node_means.add(e.mean_intermeeting(world->now()));
    node_samples.add(static_cast<double>(e.samples()));
  }
  std::cout << "per-node estimator: mean E(I) = " << node_means.mean()
            << " s (min " << node_means.min() << ", max " << node_means.max()
            << "), avg samples/node = " << node_samples.mean() << "\n";

  const dtn::Node& n0 = world->node(0);
  const dtn::SdsrpPolicy policy;
  const dtn::PolicyContext ctx = world->ctx_for(n0);
  std::cout << "\nnode 0 buffer at t=" << world->now() << " ("
            << n0.buffer().count() << " messages, occupancy "
            << n0.buffer().occupancy() << "):\n";
  std::cout << "  id     C_i  R_i      m_hat  n_hat  d_hat  U\n";
  for (const auto& m : n0.buffer().messages()) {
    const auto est = policy.estimates(m, ctx);
    std::cout << "  " << m.id << "\t" << m.copies << "  "
              << m.remaining_ttl(ctx.now) << "  " << est.m_seen << "  "
              << est.n_holding << "  " << est.d_dropped << "  "
              << policy.priority(m, ctx) << "\n";
  }

  dtn::message_stats_table("sdsrp", world->stats()).print(std::cout);
  return 0;
}
