// Probe: Algorithm-1 newcomer-rejection vs GBSD-style always-make-room
// in SDSRP, across buffer sizes, vs the three baselines.
//   ./newcomer_probe [replicas]
#include <iostream>

#include "src/report/sweep.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;
  dtn::Table t({"variant", "buffer_MB", "delivery", "hops", "overhead"});
  for (double mb : {2.0, 2.5, 3.5, 5.0}) {
    for (const char* variant :
         {"fifo", "ttl-ratio", "copies-ratio", "sdsrp-reject",
          "sdsrp-makeroom"}) {
      dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
      sc.buffer_capacity = dtn::units::megabytes(mb);
      const std::string v(variant);
      if (v == "sdsrp-reject") {
        sc.policy = "sdsrp";
        sc.sdsrp_reject_newcomer = true;
      } else if (v == "sdsrp-makeroom") {
        sc.policy = "sdsrp";
        sc.sdsrp_reject_newcomer = false;
      } else {
        sc.policy = v;
      }
      const auto m = dtn::run_replicated(sc, replicas);
      t.add_row({v, mb, m.delivery_ratio.mean(), m.avg_hopcount.mean(),
                 m.overhead_ratio.mean()});
    }
  }
  t.set_precision(3);
  t.print(std::cout);
  return 0;
}
