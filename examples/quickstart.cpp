// Quickstart: build the paper's Table II scenario (random-waypoint,
// 100 nodes, Spray-and-Wait with the SDSRP buffer policy), run it, and
// print the headline metrics.
//
//   ./quickstart [policy] [seed]
//     policy: fifo | ttl-ratio | copies-ratio | sdsrp (default sdsrp)
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/config/scenario.hpp"
#include "src/report/reports.hpp"

int main(int argc, char** argv) {
  const std::string policy = argc > 1 ? argv[1] : "sdsrp";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  dtn::Scenario sc = dtn::Scenario::random_waypoint_paper();
  sc.policy = policy;
  sc.seed = seed;

  std::cout << "Scenario: " << sc.name << "  (" << sc.n_nodes
            << " nodes, policy=" << sc.policy << ", router=" << sc.router
            << ", seed=" << sc.seed << ")\n";
  std::cout << "Simulating " << sc.world.duration << " s...\n";

  auto world = dtn::build_world(sc);
  world->run();

  dtn::message_stats_table(sc.policy, world->stats()).print(std::cout);
  return 0;
}
