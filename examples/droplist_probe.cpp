// Probe: cost/benefit of the dropped-list receive-rejection rule for
// SDSRP, on both scenarios.
//   ./droplist_probe [replicas]
#include <iostream>

#include "src/report/sweep.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const std::size_t replicas =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;
  dtn::Table t({"scenario", "reject_dropped", "delivery", "hops",
                "overhead"});
  for (const char* which : {"rwp", "taxi"}) {
    for (bool reject : {true, false}) {
      dtn::Scenario sc = std::string(which) == "taxi"
                             ? dtn::Scenario::taxi_paper()
                             : dtn::Scenario::random_waypoint_paper();
      sc.policy = "sdsrp";
      sc.sdsrp_reject_dropped = reject;
      const auto m = dtn::run_replicated(sc, replicas);
      t.add_row({std::string(which), std::string(reject ? "yes" : "no"),
                 m.delivery_ratio.mean(), m.avg_hopcount.mean(),
                 m.overhead_ratio.mean()});
    }
  }
  t.set_precision(3);
  t.print(std::cout);
  return 0;
}
