// Tests for the report observers and the kernel's event hook wiring.
#include <gtest/gtest.h>

#include <memory>

#include "src/buffer/fifo.hpp"
#include "src/config/scenario.hpp"
#include "src/mobility/stationary.hpp"
#include "src/report/observers.hpp"
#include "src/routing/spray_and_wait.hpp"

namespace dtn {
namespace {

Message msg(MessageId id, NodeId src, NodeId dst, int copies = 4) {
  Message m;
  m.id = id;
  m.source = src;
  m.destination = dst;
  m.size = 100;
  m.created = 0.0;
  m.ttl = 500.0;
  m.copies = copies;
  m.initial_copies = copies;
  return m;
}

std::unique_ptr<World> two_node_world() {
  WorldConfig cfg;
  cfg.step = 1.0;
  cfg.duration = 100.0;
  cfg.range = 10.0;
  cfg.bandwidth = 100.0;  // 1 s per message
  auto w = std::make_unique<World>(cfg);
  w->set_router(std::make_unique<SprayAndWaitRouter>());
  w->set_policy(std::make_unique<FifoPolicy>());
  w->add_node(std::make_unique<StationaryModel>(Vec2{0, 0}), 10000);
  w->add_node(std::make_unique<StationaryModel>(Vec2{5, 0}), 10000);
  return w;
}

TEST(Observers, DeliveredMessagesReportRecordsRow) {
  auto w = two_node_world();
  DeliveredMessagesReport report;
  w->add_observer(&report);
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1)));
  w->run_until(5.0);
  ASSERT_EQ(report.rows().size(), 1u);
  const auto& r = report.rows()[0];
  EXPECT_EQ(r.id, 1u);
  EXPECT_EQ(r.source, 0u);
  EXPECT_EQ(r.destination, 1u);
  EXPECT_EQ(r.last_hop, 0u);
  EXPECT_EQ(r.hops, 1);
  EXPECT_GT(r.delivered_at, r.created);
  EXPECT_EQ(report.to_table().rows(), 1u);
  EXPECT_GT(report.latency_quantile(0.5), 0.0);
}

TEST(Observers, EventLogCapturesLifecycle) {
  auto w = two_node_world();
  EventLog log;
  w->add_observer(&log);
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1)));
  w->run_until(5.0);
  EXPECT_EQ(log.count_kind("CREATE"), 1u);
  EXPECT_EQ(log.count_kind("UP"), 1u);
  EXPECT_EQ(log.count_kind("SEND"), 1u);
  EXPECT_EQ(log.count_kind("RECV"), 1u);
  EXPECT_EQ(log.count_kind("DELIVER"), 1u);
  EXPECT_EQ(log.count_kind("DOWN"), 0u);
}

TEST(Observers, ContactReportTracksDurationsAndGaps) {
  // Scripted flapping link: use a stationary pair and a teleporting node.
  WorldConfig cfg;
  cfg.step = 1.0;
  cfg.duration = 100.0;
  cfg.range = 10.0;
  cfg.bandwidth = 100.0;
  World w(cfg);
  w.set_router(std::make_unique<SprayAndWaitRouter>());
  w.set_policy(std::make_unique<FifoPolicy>());
  w.add_node(std::make_unique<StationaryModel>(Vec2{0, 0}), 10000);
  const NodeId b =
      w.add_node(std::make_unique<StationaryModel>(Vec2{5, 0}), 10000);
  ContactReport report;
  w.add_observer(&report);

  auto* mover = dynamic_cast<StationaryModel*>(&w.node(b).mobility());
  ASSERT_NE(mover, nullptr);
  w.run_until(3.0);  // contact up
  EXPECT_EQ(report.total_contacts(), 1u);
  mover->move_to({100, 0});
  w.run_until(10.0);  // down
  ASSERT_EQ(report.contact_durations().size(), 1u);
  mover->move_to({5, 0});
  w.run_until(15.0);  // up again -> one intermeeting gap
  EXPECT_EQ(report.total_contacts(), 2u);
  ASSERT_EQ(report.intermeeting_times().size(), 1u);
  EXPECT_GT(report.intermeeting_times()[0], 0.0);
  EXPECT_GE(report.to_table().rows(), 6u);
}

TEST(Observers, BufferOccupancySamplesAtInterval) {
  auto w = two_node_world();
  BufferOccupancyReport report(10.0);
  w->add_observer(&report);
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1)));
  w->run_until(50.0);
  ASSERT_GE(report.samples().size(), 4u);
  for (const auto& s : report.samples()) {
    EXPECT_GE(s.max, s.mean);
    EXPECT_GE(s.mean, 0.0);
    EXPECT_LE(s.max, 1.0);
  }
  EXPECT_EQ(report.to_table().rows(), report.samples().size());
}

TEST(Observers, DropAndExpireHooksFire) {
  WorldConfig cfg;
  cfg.step = 1.0;
  cfg.duration = 600.0;
  cfg.range = 10.0;
  cfg.bandwidth = 100.0;
  World w(cfg);
  w.set_router(std::make_unique<SprayAndWaitRouter>());
  w.set_policy(std::make_unique<FifoPolicy>());
  // Out of range: nothing transfers; TTL must expire message 1.
  w.add_node(std::make_unique<StationaryModel>(Vec2{0, 0}), 250);
  w.add_node(std::make_unique<StationaryModel>(Vec2{500, 0}), 250);
  EventLog log;
  w.add_observer(&log);
  ASSERT_TRUE(w.inject_message(msg(1, 0, 1)));
  ASSERT_TRUE(w.inject_message(msg(2, 0, 1)));
  // Third message overflows the 2-slot buffer -> FIFO drop of message 1.
  ASSERT_TRUE(w.inject_message(msg(3, 0, 1)));
  EXPECT_EQ(log.count_kind("DROP"), 1u);
  w.run_until(600.0);
  EXPECT_EQ(log.count_kind("EXPIRE"), 2u);  // messages 2 and 3 at TTL 500
}

TEST(Observers, MultipleObserversFireInOrder) {
  auto w = two_node_world();
  EventLog first, second;
  w->add_observer(&first);
  w->add_observer(&second);
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1)));
  w->run_until(5.0);
  EXPECT_EQ(first.lines().size(), second.lines().size());
  EXPECT_GT(first.lines().size(), 0u);
}

TEST(Observers, NullObserverRejected) {
  auto w = two_node_world();
  EXPECT_THROW(w->add_observer(nullptr), PreconditionError);
}

TEST(Observers, WorkAtScenarioScale) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 20;
  sc.world.duration = 2000.0;
  sc.rwp.area = Rect::sized(1000.0, 800.0);
  sc.traffic.ttl = 1500.0;
  auto world = build_world(sc);
  DeliveredMessagesReport delivered;
  ContactReport contacts;
  world->add_observer(&delivered);
  world->add_observer(&contacts);
  world->run();
  EXPECT_EQ(delivered.rows().size(), world->stats().delivered);
  EXPECT_GT(contacts.total_contacts(), 0u);
}

}  // namespace
}  // namespace dtn
