// Unit tests for the traffic source.
#include <gtest/gtest.h>

#include <set>

#include "src/core/message_generator.hpp"
#include "src/util/error.hpp"

namespace dtn {
namespace {

MessageGenConfig base_cfg() {
  MessageGenConfig cfg;
  cfg.interval_min = 10.0;
  cfg.interval_max = 10.0;  // deterministic spacing
  cfg.size = 1000;
  cfg.ttl = 500.0;
  cfg.initial_copies = 8;
  return cfg;
}

TEST(MessageGenerator, DeterministicSpacing) {
  MessageGenerator gen(base_cfg(), 10, Rng(1));
  const auto batch = gen.poll(100.0);
  EXPECT_EQ(batch.size(), 10u);  // t = 10, 20, ..., 100
  for (std::size_t i = 1; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i].created - batch[i - 1].created, 10.0);
  }
}

TEST(MessageGenerator, PollIsIncremental) {
  MessageGenerator gen(base_cfg(), 10, Rng(1));
  EXPECT_EQ(gen.poll(35.0).size(), 3u);
  EXPECT_EQ(gen.poll(35.0).size(), 0u);  // nothing new
  EXPECT_EQ(gen.poll(60.0).size(), 3u);  // t = 40, 50, 60 due at 60
}

TEST(MessageGenerator, IdsAreUniqueAndSequential) {
  MessageGenerator gen(base_cfg(), 10, Rng(2));
  std::set<MessageId> ids;
  for (const Message& m : gen.poll(1000.0)) {
    EXPECT_TRUE(ids.insert(m.id).second);
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(MessageGenerator, SourceNeverEqualsDestination) {
  MessageGenConfig cfg = base_cfg();
  MessageGenerator gen(cfg, 3, Rng(3));  // small N stresses the remap
  for (const Message& m : gen.poll(5000.0)) {
    EXPECT_NE(m.source, m.destination);
    EXPECT_LT(m.source, 3u);
    EXPECT_LT(m.destination, 3u);
  }
}

TEST(MessageGenerator, SourcesAndDestsCoverAllNodes) {
  MessageGenerator gen(base_cfg(), 5, Rng(4));
  std::set<NodeId> sources, dests;
  for (const Message& m : gen.poll(20000.0)) {
    sources.insert(m.source);
    dests.insert(m.destination);
  }
  EXPECT_EQ(sources.size(), 5u);
  EXPECT_EQ(dests.size(), 5u);
}

TEST(MessageGenerator, CopiesTtlAndSizePopulated) {
  MessageGenerator gen(base_cfg(), 10, Rng(5));
  const auto batch = gen.poll(10.0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].size, 1000);
  EXPECT_EQ(batch[0].copies, 8);
  EXPECT_EQ(batch[0].initial_copies, 8);
  EXPECT_DOUBLE_EQ(batch[0].ttl, 500.0);
  EXPECT_DOUBLE_EQ(batch[0].received, batch[0].created);
}

TEST(MessageGenerator, VariableSizesStayInRange) {
  MessageGenConfig cfg = base_cfg();
  cfg.size = 100;
  cfg.size_max = 400;
  MessageGenerator gen(cfg, 10, Rng(6));
  bool below_max = false, above_min = false;
  for (const Message& m : gen.poll(10000.0)) {
    EXPECT_GE(m.size, 100);
    EXPECT_LE(m.size, 400);
    if (m.size < 400) below_max = true;
    if (m.size > 100) above_min = true;
  }
  EXPECT_TRUE(below_max);
  EXPECT_TRUE(above_min);
}

TEST(MessageGenerator, StopTimeRespected) {
  MessageGenConfig cfg = base_cfg();
  cfg.stop = 45.0;
  MessageGenerator gen(cfg, 10, Rng(7));
  EXPECT_EQ(gen.poll(1000.0).size(), 4u);  // t = 10, 20, 30, 40
}

TEST(MessageGenerator, RejectsBadConfig) {
  MessageGenConfig cfg = base_cfg();
  cfg.interval_min = 0.0;
  EXPECT_THROW(MessageGenerator(cfg, 10, Rng(1)), PreconditionError);
  cfg = base_cfg();
  cfg.initial_copies = 0;
  EXPECT_THROW(MessageGenerator(cfg, 10, Rng(1)), PreconditionError);
  EXPECT_THROW(MessageGenerator(base_cfg(), 1, Rng(1)), PreconditionError);
}

}  // namespace
}  // namespace dtn
