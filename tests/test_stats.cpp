// Unit tests for streaming statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace dtn {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(4);
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0, 1));
  for (int i = 0; i < 10000; ++i) large.add(rng.normal(0, 1));
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
  EXPECT_NEAR(large.ci95_half_width(), 1.96 / std::sqrt(10000.0), 0.005);
}

TEST(Summarize, CopiesAllFields) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  const StatSummary sum = summarize(s);
  EXPECT_EQ(sum.count, 3u);
  EXPECT_DOUBLE_EQ(sum.mean, 2.0);
  EXPECT_DOUBLE_EQ(sum.min, 1.0);
  EXPECT_DOUBLE_EQ(sum.max, 3.0);
  EXPECT_DOUBLE_EQ(sum.stddev, 1.0);
}

TEST(Quantile, BasicPercentiles) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.5);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), PreconditionError);
  EXPECT_THROW(quantile({1.0}, 1.5), PreconditionError);
}

}  // namespace
}  // namespace dtn
