// Tests for Node admission control — the paper's Algorithm 1 drop logic.
#include <gtest/gtest.h>

#include <memory>

#include "src/buffer/fifo.hpp"
#include "src/buffer/simple_policies.hpp"
#include "src/core/node.hpp"
#include "src/mobility/stationary.hpp"
#include "src/routing/spray_and_wait.hpp"

namespace dtn {
namespace {

Message msg(MessageId id, std::int64_t size, SimTime created = 0.0,
            double ttl = 1000.0, int copies = 4) {
  Message m;
  m.id = id;
  m.source = 0;
  m.destination = 9;
  m.size = size;
  m.created = created;
  m.ttl = ttl;
  m.initial_copies = copies;
  m.copies = copies;
  m.received = created;
  return m;
}

class NodeAdmissionTest : public ::testing::Test {
 protected:
  NodeAdmissionTest()
      : router_(std::make_unique<SprayAndWaitRouter>()),
        fifo_(std::make_unique<FifoPolicy>()),
        ttl_(std::make_unique<TtlRatioPolicy>()) {}

  Node make_node(const BufferPolicy* policy, std::int64_t capacity) {
    return Node(0, std::make_unique<StationaryModel>(Vec2{0, 0}), capacity,
                router_.get(), policy, arena_);
  }

  PolicyContext ctx(const Node& n, SimTime now) {
    PolicyContext c;
    c.now = now;
    c.n_nodes = 10;
    c.node = &n;
    return c;
  }

  MessageArena arena_;
  std::unique_ptr<SprayAndWaitRouter> router_;
  std::unique_ptr<FifoPolicy> fifo_;
  std::unique_ptr<TtlRatioPolicy> ttl_;
};

TEST_F(NodeAdmissionTest, AdmitsWhenSpaceAvailable) {
  Node n = make_node(fifo_.get(), 1000);
  auto res = n.admit(msg(1, 400), ctx(n, 0));
  EXPECT_TRUE(res.admitted);
  EXPECT_TRUE(res.evicted.empty());
  EXPECT_TRUE(n.buffer().has(1));
}

TEST_F(NodeAdmissionTest, RejectsMessageLargerThanCapacity) {
  Node n = make_node(fifo_.get(), 1000);
  auto res = n.admit(msg(1, 1500), ctx(n, 0));
  EXPECT_FALSE(res.admitted);
  EXPECT_TRUE(n.buffer().empty());
}

TEST_F(NodeAdmissionTest, FifoEvictsOldestOnOverflow) {
  Node n = make_node(fifo_.get(), 1000);
  Message a = msg(1, 500);
  a.received = 10.0;
  Message b = msg(2, 500);
  b.received = 20.0;
  EXPECT_TRUE(n.admit(a, ctx(n, 0)).admitted);
  EXPECT_TRUE(n.admit(b, ctx(n, 0)).admitted);

  auto res = n.admit(msg(3, 500), ctx(n, 30));
  EXPECT_TRUE(res.admitted);
  ASSERT_EQ(res.evicted.size(), 1u);
  EXPECT_EQ(res.evicted[0].id, 1u);  // oldest arrival evicted
  EXPECT_TRUE(n.buffer().has(2));
  EXPECT_TRUE(n.buffer().has(3));
}

TEST_F(NodeAdmissionTest, EvictsMultipleSmallForOneLarge) {
  Node n = make_node(fifo_.get(), 1000);
  n.admit(msg(1, 300), ctx(n, 0));
  n.admit(msg(2, 300), ctx(n, 0));
  n.admit(msg(3, 300), ctx(n, 0));
  // free = 100; fitting 800 evicts residents until free >= 800: all three.
  auto res = n.admit(msg(4, 800), ctx(n, 0));
  EXPECT_TRUE(res.admitted);
  EXPECT_EQ(res.evicted.size(), 3u);
  EXPECT_TRUE(n.buffer().has(4));
  EXPECT_EQ(n.buffer().count(), 1u);
}

TEST_F(NodeAdmissionTest, ScalarPolicyRejectsLowPriorityNewcomer) {
  // TTL-ratio priority: newcomer with far less remaining TTL than every
  // resident must be rejected (Algorithm 1: Priority_m < Priority_l).
  Node n = make_node(ttl_.get(), 1000);
  EXPECT_TRUE(n.admit(msg(1, 500, 0.0, 1000.0), ctx(n, 0)).admitted);
  EXPECT_TRUE(n.admit(msg(2, 500, 0.0, 1000.0), ctx(n, 0)).admitted);

  // At t=0, newcomer ttl 10 has ratio 1.0 too... give it elapsed life:
  Message stale = msg(3, 500, 0.0, 1000.0);
  auto c = ctx(n, 900.0);  // residents ratio = 0.1 each
  stale.created = 0.0;
  stale.ttl = 50.0;  // expired long ago -> remaining ratio < 0
  auto res = n.admit(stale, c);
  EXPECT_FALSE(res.admitted);
  EXPECT_TRUE(n.buffer().has(1));
  EXPECT_TRUE(n.buffer().has(2));
}

TEST_F(NodeAdmissionTest, ScalarPolicyEvictsLowestPriorityResident) {
  Node n = make_node(ttl_.get(), 1000);
  EXPECT_TRUE(n.admit(msg(1, 500, 0.0, 100.0), ctx(n, 0)).admitted);    // expires 100
  EXPECT_TRUE(n.admit(msg(2, 500, 0.0, 2000.0), ctx(n, 0)).admitted);   // expires 2000
  auto res = n.admit(msg(3, 500, 0.0, 1000.0), ctx(n, 50.0));
  EXPECT_TRUE(res.admitted);
  ASSERT_EQ(res.evicted.size(), 1u);
  EXPECT_EQ(res.evicted[0].id, 1u);  // lowest remaining-TTL ratio
}

TEST_F(NodeAdmissionTest, PinnedMessagesAreNotEvicted) {
  Node n = make_node(fifo_.get(), 1000);
  Message a = msg(1, 500);
  a.received = 10.0;
  Message b = msg(2, 500);
  b.received = 20.0;
  n.admit(a, ctx(n, 0));
  n.admit(b, ctx(n, 0));
  n.pin(1);  // oldest is in-flight
  auto res = n.admit(msg(3, 500), ctx(n, 30));
  EXPECT_TRUE(res.admitted);
  ASSERT_EQ(res.evicted.size(), 1u);
  EXPECT_EQ(res.evicted[0].id, 2u);  // next-oldest evicted instead
  EXPECT_TRUE(n.buffer().has(1));
}

TEST_F(NodeAdmissionTest, RejectWhenEverythingPinned) {
  Node n = make_node(fifo_.get(), 1000);
  n.admit(msg(1, 500), ctx(n, 0));
  n.admit(msg(2, 500), ctx(n, 0));
  n.pin(1);
  n.pin(2);
  auto res = n.admit(msg(3, 500), ctx(n, 0));
  EXPECT_FALSE(res.admitted);
  EXPECT_EQ(n.buffer().count(), 2u);
}

TEST_F(NodeAdmissionTest, WouldAdmitMatchesAdmitWithoutMutation) {
  Node n = make_node(fifo_.get(), 1000);
  n.admit(msg(1, 500), ctx(n, 0));
  n.admit(msg(2, 500), ctx(n, 0));
  const Message incoming = msg(3, 500);
  EXPECT_TRUE(n.would_admit(incoming, ctx(n, 0)));
  EXPECT_EQ(n.buffer().count(), 2u);  // dry run did not mutate
  EXPECT_TRUE(n.buffer().has(1));
  EXPECT_TRUE(n.buffer().has(2));
}

TEST_F(NodeAdmissionTest, NewcomerViewOverridesRating) {
  // TTL-ratio policy; buffer full of mid-TTL residents. The incoming
  // message itself is near expiry (would be rejected), but rating it by
  // a long-TTL view must get it admitted (Router pre-split semantics).
  Node n = make_node(ttl_.get(), 1000);
  EXPECT_TRUE(n.admit(msg(1, 500, 0.0, 1000.0), ctx(n, 0)).admitted);
  EXPECT_TRUE(n.admit(msg(2, 500, 0.0, 1000.0), ctx(n, 0)).admitted);
  auto c = ctx(n, 500.0);  // residents at ratio 0.5

  Message incoming = msg(3, 500, 0.0, 520.0);  // ratio ~0.04: rejected
  EXPECT_FALSE(n.would_admit(incoming, c));

  Message view = msg(3, 500, 0.0, 5000.0);  // ratio 0.9: wins
  EXPECT_TRUE(n.would_admit(incoming, c, &view));
  auto res = n.admit(incoming, c, &view);
  EXPECT_TRUE(res.admitted);
  ASSERT_EQ(res.evicted.size(), 1u);
  EXPECT_TRUE(n.buffer().has(3));
}

TEST_F(NodeAdmissionTest, PinUnpinBookkeeping) {
  Node n = make_node(fifo_.get(), 1000);
  n.pin(7);
  EXPECT_TRUE(n.is_pinned(7));
  n.unpin(7);
  EXPECT_FALSE(n.is_pinned(7));
  n.unpin(7);  // idempotent
}

TEST_F(NodeAdmissionTest, DeliveredBookkeeping) {
  Node n = make_node(fifo_.get(), 1000);
  EXPECT_FALSE(n.has_delivered(3));
  n.mark_delivered(3);
  EXPECT_TRUE(n.has_delivered(3));
}

}  // namespace
}  // namespace dtn
