// Tests for the buffer-management policies (FIFO, drop-tail, LIFO,
// TTL-ratio = Spray-and-Wait-O, copies-ratio = Spray-and-Wait-C, MOFO,
// random, SDSRP, SDSRP-oracle).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/buffer/fifo.hpp"
#include "src/buffer/gbsd_policy.hpp"
#include "src/buffer/knapsack_policy.hpp"
#include "src/buffer/random_policy.hpp"
#include "src/buffer/sdsrp_policy.hpp"
#include "src/buffer/simple_policies.hpp"
#include "src/core/node.hpp"
#include "src/core/oracle.hpp"
#include "src/mobility/stationary.hpp"
#include "src/routing/spray_and_wait.hpp"

namespace dtn {
namespace {

Message msg(MessageId id, double created, double ttl, int copies,
            int initial_copies, double received) {
  Message m;
  m.id = id;
  m.source = 0;
  m.destination = 9;
  m.size = 100;
  m.created = created;
  m.ttl = ttl;
  m.copies = copies;
  m.initial_copies = initial_copies;
  m.received = received;
  return m;
}

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest()
      : router_(std::make_unique<SprayAndWaitRouter>()),
        fifo_holder_(std::make_unique<FifoPolicy>()),
        node_(0, std::make_unique<StationaryModel>(Vec2{0, 0}), 100000,
              router_.get(), fifo_holder_.get(), arena_) {}

  PolicyContext ctx(SimTime now, std::size_t n_nodes = 100) {
    PolicyContext c;
    c.now = now;
    c.n_nodes = n_nodes;
    c.node = &node_;
    c.oracle = &registry_;
    return c;
  }

  std::unique_ptr<SprayAndWaitRouter> router_;
  std::unique_ptr<FifoPolicy> fifo_holder_;
  MessageArena arena_;
  Node node_;
  GlobalRegistry registry_;
};

TEST_F(PolicyTest, FifoOrdersByArrival) {
  FifoPolicy p;
  const Message a = msg(1, 0, 100, 4, 4, 30.0);
  const Message b = msg(2, 0, 100, 4, 4, 10.0);
  const Message c = msg(3, 0, 100, 4, 4, 20.0);
  std::vector<const Message*> v{&a, &b, &c};
  p.order_for_sending(v, ctx(50));
  EXPECT_EQ(v[0]->id, 2u);
  EXPECT_EQ(v[1]->id, 3u);
  EXPECT_EQ(v[2]->id, 1u);
}

TEST_F(PolicyTest, FifoDropsOldest) {
  FifoPolicy p;
  const Message a = msg(1, 0, 100, 4, 4, 30.0);
  const Message b = msg(2, 0, 100, 4, 4, 10.0);
  const Message incoming = msg(3, 0, 100, 4, 4, 50.0);
  EXPECT_EQ(p.choose_drop({&a, &b}, &incoming, ctx(50))->id, 2u);
}

TEST_F(PolicyTest, FifoDropsNewcomerOnlyWhenNoResident) {
  FifoPolicy p;
  const Message incoming = msg(3, 0, 100, 4, 4, 50.0);
  EXPECT_EQ(p.choose_drop({}, &incoming, ctx(50)), &incoming);
}

TEST_F(PolicyTest, DropTailRejectsNewcomer) {
  DropTailPolicy p;
  const Message a = msg(1, 0, 100, 4, 4, 30.0);
  const Message incoming = msg(3, 0, 100, 4, 4, 50.0);
  EXPECT_EQ(p.choose_drop({&a}, &incoming, ctx(50)), &incoming);
}

TEST_F(PolicyTest, LifoDropsNewestResident) {
  LifoPolicy p;
  const Message a = msg(1, 0, 100, 4, 4, 30.0);
  const Message b = msg(2, 0, 100, 4, 4, 10.0);
  EXPECT_EQ(p.choose_drop({&a, &b}, nullptr, ctx(50))->id, 2u);
}

TEST_F(PolicyTest, TtlRatioPrefersFreshMessages) {
  // Spray-and-Wait-O: priority R/TTL.
  TtlRatioPolicy p;
  const Message fresh = msg(1, 40, 100, 4, 4, 40);   // at t=50: R=90, ratio .9
  const Message stale = msg(2, 0, 100, 4, 4, 0);     // at t=50: R=50, ratio .5
  std::vector<const Message*> v{&stale, &fresh};
  p.order_for_sending(v, ctx(50));
  EXPECT_EQ(v[0]->id, 1u);
  EXPECT_EQ(p.choose_drop({&stale, &fresh}, nullptr, ctx(50))->id, 2u);
}

TEST_F(PolicyTest, CopiesRatioPrefersCopyRichMessages) {
  // Spray-and-Wait-C: priority C_i / C.
  CopiesRatioPolicy p;
  const Message rich = msg(1, 0, 100, 16, 32, 0);   // ratio 0.5
  const Message poor = msg(2, 0, 100, 2, 32, 0);    // ratio 0.0625
  std::vector<const Message*> v{&poor, &rich};
  p.order_for_sending(v, ctx(50));
  EXPECT_EQ(v[0]->id, 1u);
  EXPECT_EQ(p.choose_drop({&poor, &rich}, nullptr, ctx(50))->id, 2u);
}

TEST_F(PolicyTest, MofoDropsMostForwarded) {
  MofoPolicy p;
  Message a = msg(1, 0, 100, 4, 4, 0);
  Message b = msg(2, 0, 100, 4, 4, 0);
  a.forwards = 5;
  b.forwards = 1;
  EXPECT_EQ(p.choose_drop({&a, &b}, nullptr, ctx(50))->id, 1u);
}

TEST_F(PolicyTest, RandomPolicyIsDeterministicGivenSeed) {
  RandomPolicy p1(42), p2(42);
  const Message a = msg(1, 0, 100, 4, 4, 0);
  const Message b = msg(2, 0, 100, 4, 4, 0);
  const Message c = msg(3, 0, 100, 4, 4, 0);
  std::vector<const Message*> v1{&a, &b, &c}, v2{&a, &b, &c};
  p1.order_for_sending(v1, ctx(0));
  p2.order_for_sending(v2, ctx(0));
  EXPECT_EQ(v1[0]->id, v2[0]->id);
  EXPECT_EQ(v1[1]->id, v2[1]->id);
  EXPECT_EQ(v1[2]->id, v2[2]->id);
}

TEST_F(PolicyTest, RandomPolicyDropCoversAllCandidates) {
  RandomPolicy p(7);
  const Message a = msg(1, 0, 100, 4, 4, 0);
  const Message b = msg(2, 0, 100, 4, 4, 0);
  const Message incoming = msg(3, 0, 100, 4, 4, 0);
  bool dropped_newcomer = false, dropped_resident = false;
  for (int i = 0; i < 200; ++i) {
    const Message* victim = p.choose_drop({&a, &b}, &incoming, ctx(0));
    if (victim == &incoming) {
      dropped_newcomer = true;
    } else {
      dropped_resident = true;
    }
  }
  EXPECT_TRUE(dropped_newcomer);
  EXPECT_TRUE(dropped_resident);
}

TEST_F(PolicyTest, SdsrpUsesDroppedList) {
  SdsrpPolicy p;
  EXPECT_TRUE(p.uses_dropped_list());
  FifoPolicy f;
  EXPECT_FALSE(f.uses_dropped_list());
}

TEST_F(PolicyTest, SdsrpFreshMessageOutranksWidelySpreadMessage) {
  SdsrpPolicy p;
  // Fresh: never sprayed, full TTL ahead.
  Message fresh = msg(1, 1000, 2000, 32, 32, 1000);
  // Spread: repeatedly sprayed with long gaps -> large m̂/n̂, fewer
  // copies and TTL left -> lower priority.
  Message spread = msg(2, 0, 2000, 4, 32, 0);
  spread.spray_times = {0, 400, 800};
  const auto c = ctx(1000);
  EXPECT_GT(p.priority(fresh, c), p.priority(spread, c));
}

TEST_F(PolicyTest, SdsrpNearExpiryWithManyCopiesGetsNegativeUtility) {
  SdsrpPolicy p;
  // 32 copies left but only 1 s of TTL: cannot spray them in time; the
  // spray term goes negative and the message becomes drop-first.
  Message doomed = msg(1, 0, 1000, 32, 32, 0);
  const auto c = ctx(999.0);
  Message healthy = msg(2, 0, 2000, 32, 32, 0);
  EXPECT_LT(p.priority(doomed, c), p.priority(healthy, c));
  EXPECT_LT(p.priority(doomed, c), 0.0);
}

TEST_F(PolicyTest, SdsrpEstimatesExposeComponents) {
  SdsrpPolicy p;
  Message m = msg(1, 0, 1000, 8, 32, 0);
  m.spray_times = {10.0, 20.0};
  const auto e = p.estimates(m, ctx(100));
  EXPECT_GE(e.m_seen, 1.0);
  EXPECT_GE(e.n_holding, 1.0);
  EXPECT_GT(e.lambda, 0.0);
  EXPECT_DOUBLE_EQ(e.d_dropped, 0.0);
}

TEST_F(PolicyTest, SdsrpDropCountLowersNEstimate) {
  SdsrpPolicy p;
  Message m = msg(1, 0, 1000, 8, 32, 0);
  m.spray_times = {10.0, 20.0, 30.0};
  const auto before = p.estimates(m, ctx(100));
  node_.dropped_list().record_local_drop(1, 50.0);
  const auto after = p.estimates(m, ctx(100));
  EXPECT_DOUBLE_EQ(after.d_dropped, 1.0);
  EXPECT_LE(after.n_holding, before.n_holding);
}

TEST_F(PolicyTest, SdsrpOracleReadsRegistry) {
  SdsrpOraclePolicy p;
  registry_.on_created(1, 0);
  registry_.on_copy_received(1, 2);
  registry_.on_copy_received(1, 3);
  Message m = msg(1, 0, 1000, 8, 32, 0);
  // Should not throw and should yield a positive, finite priority.
  const double u = p.priority(m, ctx(100));
  EXPECT_TRUE(std::isfinite(u));
  EXPECT_GT(u, 0.0);
}

TEST_F(PolicyTest, SdsrpTaylorApproachesClosedForm) {
  Message m = msg(1, 0, 1000, 8, 32, 0);
  m.spray_times = {10.0};
  SdsrpPolicy closed(SdsrpParams{0});
  SdsrpPolicy t2(SdsrpParams{2});
  SdsrpPolicy t50(SdsrpParams{50});
  const auto c = ctx(100);
  const double u_closed = closed.priority(m, c);
  const double err2 = std::abs(t2.priority(m, c) - u_closed);
  const double err50 = std::abs(t50.priority(m, c) - u_closed);
  EXPECT_LE(err50, err2 + 1e-15);
}

TEST_F(PolicyTest, GbsdReadsOracleAndPrefersUnderSpread) {
  GbsdPolicy p;
  registry_.on_created(1, 0);
  registry_.on_created(2, 0);
  // Message 2 is widely spread; message 1 is not.
  for (NodeId n = 2; n <= 20; ++n) registry_.on_copy_received(2, n);
  Message sparse = msg(1, 0, 1000, 1, 1, 0);
  Message spread = msg(2, 0, 1000, 1, 1, 0);
  const auto c = ctx(100);
  EXPECT_GT(p.priority(sparse, c), p.priority(spread, c));
}

TEST_F(PolicyTest, GbsdIgnoresCopyTokens) {
  // Unlike SDSRP, GBSD's utility must not depend on the spray counter.
  GbsdPolicy p;
  registry_.on_created(1, 0);
  Message a = msg(1, 0, 1000, 1, 32, 0);
  Message b = a;
  b.copies = 32;
  const auto c = ctx(100);
  EXPECT_DOUBLE_EQ(p.priority(a, c), p.priority(b, c));
}

TEST_F(PolicyTest, KnapsackMatchesSdsrpForUniformSizes) {
  SdsrpPolicy sdsrp;
  KnapsackSdsrpPolicy knap;
  Message a = msg(1, 0, 1000, 8, 32, 0);
  Message b = msg(2, 0, 500, 2, 32, 0);
  Message c = msg(3, 500, 1500, 32, 32, 500);
  const auto ctx_ = ctx(600);
  std::vector<const Message*> v1{&a, &b, &c}, v2{&a, &b, &c};
  sdsrp.order_for_sending(v1, ctx_);
  knap.order_for_sending(v2, ctx_);
  for (std::size_t i = 0; i < v1.size(); ++i) EXPECT_EQ(v1[i]->id, v2[i]->id);
  EXPECT_EQ(sdsrp.choose_drop({&a, &b, &c}, nullptr, ctx_)->id,
            knap.choose_drop({&a, &b, &c}, nullptr, ctx_)->id);
}

TEST_F(PolicyTest, KnapsackPrefersEvictingLowDensityLargeMessages) {
  KnapsackSdsrpPolicy knap;
  // Equal utility inputs except size: the bigger message has lower
  // utility density and must be the drop victim.
  Message small = msg(1, 0, 1000, 8, 32, 0);
  Message big = msg(2, 0, 1000, 8, 32, 0);
  big.size = 1000;  // 10x small.size (100)
  const auto ctx_ = ctx(100);
  EXPECT_EQ(knap.choose_drop({&small, &big}, nullptr, ctx_)->id, 2u);
  // And scheduling sends the denser (smaller) one first.
  std::vector<const Message*> v{&big, &small};
  knap.order_for_sending(v, ctx_);
  EXPECT_EQ(v[0]->id, 1u);
}

TEST_F(PolicyTest, KnapsackUsesDroppedList) {
  KnapsackSdsrpPolicy knap;
  EXPECT_TRUE(knap.uses_dropped_list());
  EXPECT_TRUE(knap.rejects_previously_dropped());
}

TEST_F(PolicyTest, ScalarOrderingTieBreaksById) {
  TtlRatioPolicy p;
  const Message a = msg(5, 0, 100, 4, 4, 0);
  const Message b = msg(2, 0, 100, 4, 4, 0);  // identical priority
  std::vector<const Message*> v{&a, &b};
  p.order_for_sending(v, ctx(10));
  EXPECT_EQ(v[0]->id, 2u);
}

}  // namespace
}  // namespace dtn
