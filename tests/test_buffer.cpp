// Unit tests for the byte-limited message buffer.
#include <gtest/gtest.h>

#include "src/core/buffer.hpp"
#include "src/core/message_arena.hpp"
#include "src/util/error.hpp"

namespace dtn {
namespace {

Message msg(MessageId id, std::int64_t size, SimTime created = 0.0,
            double ttl = 100.0) {
  Message m;
  m.id = id;
  m.source = 0;
  m.destination = 1;
  m.size = size;
  m.created = created;
  m.ttl = ttl;
  m.received = created;
  return m;
}

TEST(Buffer, StartsEmpty) {
  MessageArena arena;
  Buffer b(1000, arena);
  EXPECT_EQ(b.capacity(), 1000);
  EXPECT_EQ(b.used(), 0);
  EXPECT_EQ(b.free(), 1000);
  EXPECT_TRUE(b.empty());
  EXPECT_DOUBLE_EQ(b.occupancy(), 0.0);
}

TEST(Buffer, RejectsNonPositiveCapacity) {
  MessageArena arena;
  EXPECT_THROW(Buffer(0, arena), PreconditionError);
  EXPECT_THROW(Buffer(-5, arena), PreconditionError);
}

TEST(Buffer, InsertTracksBytes) {
  MessageArena arena;
  Buffer b(1000, arena);
  EXPECT_TRUE(b.try_insert(msg(1, 400)));
  EXPECT_EQ(b.used(), 400);
  EXPECT_EQ(b.free(), 600);
  EXPECT_TRUE(b.try_insert(msg(2, 600)));
  EXPECT_EQ(b.free(), 0);
  EXPECT_DOUBLE_EQ(b.occupancy(), 1.0);
}

TEST(Buffer, InsertFailsWhenFull) {
  MessageArena arena;
  Buffer b(1000, arena);
  EXPECT_TRUE(b.try_insert(msg(1, 700)));
  EXPECT_FALSE(b.try_insert(msg(2, 400)));
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.used(), 700);
}

TEST(Buffer, DuplicateIdThrows) {
  MessageArena arena;
  Buffer b(1000, arena);
  EXPECT_TRUE(b.try_insert(msg(1, 100)));
  EXPECT_THROW(b.try_insert(msg(1, 100)), PreconditionError);
}

TEST(Buffer, FindAndHas) {
  MessageArena arena;
  Buffer b(1000, arena);
  b.try_insert(msg(5, 100));
  EXPECT_TRUE(b.has(5));
  EXPECT_FALSE(b.has(6));
  ASSERT_NE(b.find(5), nullptr);
  EXPECT_EQ(b.find(5)->id, 5u);
  EXPECT_EQ(b.find(6), nullptr);
}

TEST(Buffer, TakeRemovesAndReturns) {
  MessageArena arena;
  Buffer b(1000, arena);
  b.try_insert(msg(1, 300));
  b.try_insert(msg(2, 200));
  const Message out = b.take(1);
  EXPECT_EQ(out.id, 1u);
  EXPECT_EQ(b.used(), 200);
  EXPECT_FALSE(b.has(1));
}

TEST(Buffer, TakeMissingThrows) {
  MessageArena arena;
  Buffer b(1000, arena);
  EXPECT_THROW(b.take(42), PreconditionError);
}

TEST(Buffer, ArrivalOrderPreserved) {
  MessageArena arena;
  Buffer b(1000, arena);
  b.try_insert(msg(3, 100));
  b.try_insert(msg(1, 100));
  b.try_insert(msg(2, 100));
  ASSERT_EQ(b.messages().size(), 3u);
  EXPECT_EQ(b.messages()[0].id, 3u);
  EXPECT_EQ(b.messages()[1].id, 1u);
  EXPECT_EQ(b.messages()[2].id, 2u);
}

TEST(Buffer, PurgeExpiredRemovesOnlyExpired) {
  MessageArena arena;
  Buffer b(1000, arena);
  b.try_insert(msg(1, 100, 0.0, 50.0));   // expires at 50
  b.try_insert(msg(2, 100, 0.0, 200.0));  // expires at 200
  const auto removed = b.purge_expired(100.0, {});
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].id, 1u);
  EXPECT_TRUE(b.has(2));
  EXPECT_EQ(b.used(), 100);
}

TEST(Buffer, PurgeSkipsPinned) {
  MessageArena arena;
  Buffer b(1000, arena);
  b.try_insert(msg(1, 100, 0.0, 50.0));
  const auto removed = b.purge_expired(100.0, {1});
  EXPECT_TRUE(removed.empty());
  EXPECT_TRUE(b.has(1));
}

TEST(Buffer, PurgeAtExactExpiryRemoves) {
  MessageArena arena;
  Buffer b(1000, arena);
  b.try_insert(msg(1, 100, 0.0, 50.0));
  const auto removed = b.purge_expired(50.0, {});
  EXPECT_EQ(removed.size(), 1u);
}

TEST(MessageAccessors, TtlArithmetic) {
  const Message m = msg(1, 100, 10.0, 40.0);
  EXPECT_DOUBLE_EQ(m.expiry(), 50.0);
  EXPECT_DOUBLE_EQ(m.remaining_ttl(30.0), 20.0);
  EXPECT_DOUBLE_EQ(m.elapsed(30.0), 20.0);
  EXPECT_FALSE(m.expired(49.9));
  EXPECT_TRUE(m.expired(50.0));
}

}  // namespace
}  // namespace dtn
