// Unit tests for the result-table formatter.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/util/table.hpp"
#include "src/util/error.hpp"

namespace dtn {
namespace {

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("x")}), PreconditionError);
}

TEST(Table, CsvOutput) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("beta"), static_cast<std::int64_t>(7)});
  t.set_precision(1);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name,value\nalpha,1.5\nbeta,7\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"text"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("say \"hi\"")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "text\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"x", "longcolumn"});
  t.add_row({static_cast<std::int64_t>(1), std::string("v")});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| x "), std::string::npos);
  EXPECT_NE(out.find("longcolumn"), std::string::npos);
  // Border lines present.
  EXPECT_NE(out.find("+---"), std::string::npos);
}

TEST(Table, PrecisionControlsDoubles) {
  Table t({"v"});
  t.add_row({3.14159});
  t.set_precision(2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "v\n3.14\n");
  EXPECT_THROW(t.set_precision(-1), PreconditionError);
}

TEST(Table, RowAccessors) {
  Table t({"a"});
  t.add_row({std::string("x")});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 1u);
  EXPECT_EQ(std::get<std::string>(t.row(0)[0]), "x");
}

TEST(Table, SaveCsvRoundTrip) {
  Table t({"k", "v"});
  t.add_row({std::string("a"), 1.0});
  const std::string path = "/tmp/dtn_table_test.csv";
  ASSERT_TRUE(t.save_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,v");
}

}  // namespace
}  // namespace dtn
