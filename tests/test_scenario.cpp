// Tests for scenario configuration, settings round-trip, and factories.
#include <gtest/gtest.h>

#include "src/config/scenario.hpp"
#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace dtn {
namespace {

TEST(Scenario, PaperRwpMatchesTableII) {
  const Scenario sc = Scenario::random_waypoint_paper();
  EXPECT_EQ(sc.n_nodes, 100u);
  EXPECT_DOUBLE_EQ(sc.world.duration, 18000.0);
  EXPECT_DOUBLE_EQ(sc.world.range, 100.0);
  EXPECT_DOUBLE_EQ(sc.world.bandwidth, units::kbps(250));
  EXPECT_EQ(sc.buffer_capacity, units::megabytes(2.5));
  EXPECT_EQ(sc.traffic.size, units::megabytes(0.5));
  EXPECT_DOUBLE_EQ(sc.traffic.ttl, units::minutes(300));
  EXPECT_EQ(sc.traffic.initial_copies, 32);
  EXPECT_DOUBLE_EQ(sc.traffic.interval_min, 25.0);
  EXPECT_DOUBLE_EQ(sc.traffic.interval_max, 35.0);
  EXPECT_DOUBLE_EQ(sc.rwp.area.width(), 4500.0);
  EXPECT_DOUBLE_EQ(sc.rwp.area.height(), 3400.0);
  EXPECT_DOUBLE_EQ(sc.rwp.v_min, 2.0);
  EXPECT_EQ(sc.mobility, "random-waypoint");
  EXPECT_EQ(sc.router, "spray-and-wait");
}

TEST(Scenario, PaperTaxiMatchesTableIII) {
  const Scenario sc = Scenario::taxi_paper();
  EXPECT_EQ(sc.n_nodes, 200u);
  EXPECT_EQ(sc.mobility, "taxi-fleet");
  EXPECT_EQ(sc.buffer_capacity, units::megabytes(2.5));
  EXPECT_EQ(sc.traffic.initial_copies, 32);
}

TEST(Scenario, SettingsRoundTrip) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.policy = "ttl-ratio";
  sc.seed = 77;
  sc.traffic.initial_copies = 48;
  const Scenario back = Scenario::from_settings(sc.to_settings());
  EXPECT_EQ(back.policy, "ttl-ratio");
  EXPECT_EQ(back.seed, 77u);
  EXPECT_EQ(back.traffic.initial_copies, 48);
  EXPECT_EQ(back.n_nodes, sc.n_nodes);
  EXPECT_DOUBLE_EQ(back.world.duration, sc.world.duration);
  EXPECT_DOUBLE_EQ(back.rwp.area.width(), 4500.0);
}

TEST(Scenario, MechanicsKnobsRoundTrip) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.sdsrp_anchor_last_spray = false;
  sc.sdsrp_reject_newcomer = false;
  sc.precheck_admission = false;
  sc.presplit_admission_view = true;
  sc.world.ack_gossip = true;
  sc.estimator.imt_mode = sdsrp::ImtEstimatorMode::kCensoredMle;
  sc.traffic.size_max = 900'000;
  const Scenario back = Scenario::from_settings(sc.to_settings());
  EXPECT_FALSE(back.sdsrp_anchor_last_spray);
  EXPECT_FALSE(back.sdsrp_reject_newcomer);
  EXPECT_FALSE(back.precheck_admission);
  EXPECT_TRUE(back.presplit_admission_view);
  EXPECT_TRUE(back.world.ack_gossip);
  EXPECT_EQ(back.estimator.imt_mode, sdsrp::ImtEstimatorMode::kCensoredMle);
  EXPECT_EQ(back.traffic.size_max, 900'000);
}

TEST(Scenario, BadImtModeRejected) {
  Settings s;
  s.set("Estimator.imtMode", "psychic");
  EXPECT_THROW(Scenario::from_settings(s), PreconditionError);
}

TEST(Scenario, FromSettingsUsesDefaultsForMissingKeys) {
  const Scenario sc = Scenario::from_settings(Settings::parse("World.nodes = 42\n"));
  EXPECT_EQ(sc.n_nodes, 42u);
  EXPECT_EQ(sc.router, "spray-and-wait");  // default preserved
}

TEST(Factory, AllRouterNamesConstruct) {
  for (const char* name :
       {"spray-and-wait", "spray-and-wait-source", "epidemic",
        "direct-delivery", "first-contact", "spray-and-focus", "prophet"}) {
    Scenario sc = Scenario::random_waypoint_paper();
    sc.router = name;
    EXPECT_NE(make_router(sc), nullptr) << name;
  }
}

TEST(Factory, UnknownRouterThrows) {
  Scenario sc;
  sc.router = "carrier-pigeon";
  EXPECT_THROW(make_router(sc), PreconditionError);
}

TEST(Factory, AllPolicyNamesConstruct) {
  for (const char* name :
       {"fifo", "drop-tail", "drop-largest", "lifo", "random", "ttl-ratio",
        "copies-ratio", "mofo", "sdsrp", "sdsrp-oracle", "gbsd",
        "gbsd-delay"}) {
    Scenario sc = Scenario::random_waypoint_paper();
    sc.policy = name;
    EXPECT_NE(make_policy(sc, 1), nullptr) << name;
  }
}

TEST(Factory, UnknownPolicyThrows) {
  Scenario sc;
  sc.policy = "oracle-of-delphi";
  EXPECT_THROW(make_policy(sc, 1), PreconditionError);
}

TEST(Factory, AllMobilityNamesConstruct) {
  for (const char* name : {"random-waypoint", "random-walk",
                           "random-direction", "taxi-fleet",
                           "manhattan-grid"}) {
    Scenario sc = Scenario::random_waypoint_paper();
    sc.mobility = name;
    EXPECT_NE(make_mobility(sc, Rng(1), 0), nullptr) << name;
  }
  Scenario sc;
  sc.mobility = "teleport";
  EXPECT_THROW(make_mobility(sc, Rng(1), 0), PreconditionError);
}

TEST(Factory, BuildWorldWiresEverything) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 10;
  sc.world.duration = 100.0;
  auto world = build_world(sc);
  ASSERT_NE(world, nullptr);
  EXPECT_EQ(world->node_count(), 10u);
  EXPECT_STREQ(world->router().name(), "spray-and-wait-binary");
  EXPECT_STREQ(world->policy().name(), "sdsrp");
  world->run();  // must not throw
  EXPECT_GT(world->stats().created, 0u);
}

TEST(Factory, BuildWorldIsDeterministic) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 20;
  sc.world.duration = 2000.0;
  auto w1 = build_world(sc);
  auto w2 = build_world(sc);
  w1->run();
  w2->run();
  EXPECT_EQ(w1->stats().created, w2->stats().created);
  EXPECT_EQ(w1->stats().delivered, w2->stats().delivered);
  EXPECT_EQ(w1->stats().transfers_completed, w2->stats().transfers_completed);
  EXPECT_EQ(w1->stats().drops, w2->stats().drops);
}

TEST(Factory, DifferentSeedsDiverge) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 20;
  sc.world.duration = 3000.0;
  auto w1 = build_world(sc);
  sc.seed = 2;
  auto w2 = build_world(sc);
  w1->run();
  w2->run();
  // Created counts use independent traffic streams: virtually impossible
  // to match transfer counts exactly.
  EXPECT_NE(w1->stats().transfers_started, w2->stats().transfers_started);
}

TEST(Factory, RequiresTwoNodes) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 1;
  EXPECT_THROW(build_world(sc), PreconditionError);
}

}  // namespace
}  // namespace dtn
