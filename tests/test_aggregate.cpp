// Mergeable-aggregate determinism tests.
//
// The sweep orchestrator's byte-identical guarantee rests on
// ReplicatedMetrics being EXACTLY mergeable: splitting a run sequence
// into any shard partition and merging the partials in canonical order
// must be bit-identical to sequential accumulation — same accumulator
// state, same serialized bytes, same quantiles. MergeStats buys this
// with fixed-point integer sums; these tests pin the property.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/report/sweep.hpp"
#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace dtn {
namespace {

std::vector<std::uint8_t> aggregate_bytes(const ReplicatedMetrics& m) {
  snapshot::ArchiveWriter w;
  save_aggregate(w, m);
  return w.bytes();
}

MetricPoint random_point(Rng& rng) {
  MetricPoint p;
  p.delivery_ratio = rng.uniform01();
  p.avg_hopcount = rng.uniform(1.0, 12.0);
  p.overhead_ratio = rng.uniform(0.0, 200.0);
  // Spread latencies across the fixed histogram range, with a tail past
  // the upper edge so overflow counts participate in the property.
  p.avg_latency = rng.uniform(0.0, 50000.0);
  p.median_latency = rng.uniform(0.0, 40000.0);
  p.p95_latency = rng.uniform(0.0, 43200.0);
  return p;
}

// --- MergeStats ---

TEST(MergeStats, MatchesRunningStatsMoments) {
  Rng rng(7);
  MergeStats m;
  RunningStats r;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-50.0, 50.0);
    m.add(x);
    r.add(x);
  }
  EXPECT_EQ(m.count(), r.count());
  EXPECT_NEAR(m.mean(), r.mean(), 1e-5);
  EXPECT_NEAR(m.stddev(), r.stddev(), 1e-4);
  EXPECT_NEAR(m.min(), r.min(), 1e-5);
  EXPECT_NEAR(m.max(), r.max(), 1e-5);
  EXPECT_NEAR(m.ci95_half_width(), r.ci95_half_width(), 1e-4);
}

TEST(MergeStats, MergeIsExactForAnySplit) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.uniform(-1000.0, 1000.0));

  MergeStats sequential;
  for (double x : xs) sequential.add(x);

  for (int trial = 0; trial < 20; ++trial) {
    // Random number of parts, random assignment — merge must be exact
    // regardless of how values are distributed or grouped.
    const std::size_t parts = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    std::vector<MergeStats> partial(parts);
    for (double x : xs)
      partial[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(parts) - 1))]
          .add(x);
    MergeStats merged;
    for (const auto& p : partial) merged.merge(p);
    EXPECT_EQ(merged, sequential) << "trial " << trial;
    EXPECT_EQ(merged.export_state().sum_lo, sequential.export_state().sum_lo);
  }
}

TEST(MergeStats, StateRoundTrip) {
  Rng rng(3);
  MergeStats m;
  for (int i = 0; i < 64; ++i) m.add(rng.uniform(-1e6, 1e6));
  MergeStats back;
  back.import_state(m.export_state());
  EXPECT_EQ(back, m);
  EXPECT_EQ(back.mean(), m.mean());
  EXPECT_EQ(back.variance(), m.variance());
}

TEST(MergeStats, RejectsNonFinite) {
  MergeStats m;
  EXPECT_THROW(m.add(std::numeric_limits<double>::infinity()),
               PreconditionError);
  EXPECT_THROW(m.add(std::numeric_limits<double>::quiet_NaN()),
               PreconditionError);
}

// --- ReplicatedMetrics partition property (ISSUE satellite) ---

// Splitting N MetricPoints into arbitrary shard partitions and merging
// in canonical shard order is bit-identical to sequential accumulation,
// including the quantile histogram — via operator== AND serialized bytes.
TEST(Aggregate, ShardPartitionBitIdenticalToSequential) {
  Rng rng(42);
  constexpr std::size_t kRuns = 200;
  std::vector<MetricPoint> runs;
  for (std::size_t i = 0; i < kRuns; ++i) runs.push_back(random_point(rng));

  ReplicatedMetrics sequential;
  for (const auto& p : runs) sequential.add(p);
  const auto want_bytes = aggregate_bytes(sequential);

  for (int trial = 0; trial < 10; ++trial) {
    // Contiguous shards with random cut points (the orchestrator's
    // actual partition shape): each shard is a half-open run range.
    std::vector<std::size_t> cuts{0, kRuns};
    const int extra = static_cast<int>(rng.uniform_int(0, 6));
    for (int c = 0; c < extra; ++c)
      cuts.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kRuns))));
    std::sort(cuts.begin(), cuts.end());

    ReplicatedMetrics merged;
    for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
      ReplicatedMetrics shard;
      for (std::size_t i = cuts[s]; i < cuts[s + 1]; ++i) shard.add(runs[i]);
      merged.merge(shard);  // canonical = ascending shard order
    }

    EXPECT_EQ(merged, sequential) << "trial " << trial;
    EXPECT_EQ(aggregate_bytes(merged), want_bytes) << "trial " << trial;
    EXPECT_EQ(merged.latency_hist.quantile(0.5),
              sequential.latency_hist.quantile(0.5));
    EXPECT_EQ(merged.latency_hist.quantile(0.95),
              sequential.latency_hist.quantile(0.95));
  }
}

// Merging is also order-insensitive (integer sums commute), so even a
// non-canonical merge order cannot change the result. The canonical
// order contract exists for auditability, not correctness.
TEST(Aggregate, MergeOrderInsensitive) {
  Rng rng(9);
  ReplicatedMetrics a, b, ab, ba;
  for (int i = 0; i < 50; ++i) a.add(random_point(rng));
  for (int i = 0; i < 70; ++i) b.add(random_point(rng));
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(aggregate_bytes(ab), aggregate_bytes(ba));
}

TEST(Aggregate, SaveLoadRoundTrip) {
  Rng rng(5);
  ReplicatedMetrics m;
  for (int i = 0; i < 33; ++i) m.add(random_point(rng));

  snapshot::ArchiveWriter w;
  save_aggregate(w, m);
  snapshot::ArchiveReader r(w.bytes());
  ReplicatedMetrics back;
  load_aggregate(r, back);
  EXPECT_EQ(back, m);
  EXPECT_EQ(aggregate_bytes(back), aggregate_bytes(m));
}

TEST(Aggregate, EmptyRoundTrip) {
  ReplicatedMetrics empty;
  snapshot::ArchiveWriter w;
  save_aggregate(w, empty);
  snapshot::ArchiveReader r(w.bytes());
  ReplicatedMetrics back;
  load_aggregate(r, back);
  EXPECT_EQ(back, empty);
  EXPECT_EQ(back.delivery_ratio.count(), 0u);
}

}  // namespace
}  // namespace dtn
