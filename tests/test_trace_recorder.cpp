// Tests for the movement-trace recorder: record -> serialize -> parse ->
// replay round-trips positions exactly at the sample instants.
#include <gtest/gtest.h>

#include <memory>

#include "src/buffer/fifo.hpp"
#include "src/config/scenario.hpp"
#include "src/mobility/trace_replay.hpp"
#include "src/report/trace_recorder.hpp"
#include "src/routing/spray_and_wait.hpp"

namespace dtn {
namespace {

TEST(TraceRecorder, SamplesAtInterval) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 5;
  sc.world.duration = 100.0;
  sc.rwp.area = Rect::sized(500.0, 500.0);
  auto world = build_world(sc);
  TraceRecorder rec(10.0);
  world->add_observer(&rec);
  world->run();
  ASSERT_EQ(rec.trace().node_count(), 5u);
  // ~ one sample per 10 s over 100 s.
  const auto& nt = rec.trace().nodes.at(0);
  EXPECT_GE(nt.times.size(), 9u);
  EXPECT_LE(nt.times.size(), 11u);
  for (std::size_t i = 1; i < nt.times.size(); ++i) {
    EXPECT_NEAR(nt.times[i] - nt.times[i - 1], 10.0, 1.0 + 1e-9);
  }
}

TEST(TraceRecorder, TextRoundTripsThroughParser) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 4;
  sc.world.duration = 60.0;
  sc.rwp.area = Rect::sized(400.0, 300.0);
  auto world = build_world(sc);
  TraceRecorder rec(5.0);
  world->add_observer(&rec);
  world->run();

  const TraceSet parsed = TraceSet::parse(rec.to_text());
  ASSERT_EQ(parsed.node_count(), 4u);
  for (const auto& [id, original] : rec.trace().nodes) {
    const NodeTrace& back = parsed.nodes.at(id);
    ASSERT_EQ(back.times.size(), original.times.size());
    for (std::size_t k = 0; k < back.times.size(); ++k) {
      EXPECT_NEAR(back.times[k], original.times[k], 1e-6);
      EXPECT_NEAR(back.points[k].x, original.points[k].x, 1e-3);
      EXPECT_NEAR(back.points[k].y, original.points[k].y, 1e-3);
    }
  }
}

TEST(TraceRecorder, RecordedTraceReplaysPositionsAtSampleInstants) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 3;
  sc.world.duration = 50.0;
  sc.rwp.area = Rect::sized(300.0, 300.0);
  auto world = build_world(sc);
  TraceRecorder rec(5.0);
  world->add_observer(&rec);
  world->run();

  const NodeTrace& nt = rec.trace().nodes.at(1);
  TraceReplayModel replay(nt);
  double now = 0.0;
  for (std::size_t k = 0; k < nt.times.size(); ++k) {
    replay.advance(nt.times[k] - now);
    now = nt.times[k];
    EXPECT_NEAR(replay.position().x, nt.points[k].x, 1e-9);
    EXPECT_NEAR(replay.position().y, nt.points[k].y, 1e-9);
  }
}

TEST(TraceRecorder, SaveWritesFile) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 2;
  sc.world.duration = 20.0;
  sc.rwp.area = Rect::sized(200.0, 200.0);
  auto world = build_world(sc);
  TraceRecorder rec(5.0);
  world->add_observer(&rec);
  world->run();
  const std::string path = "/tmp/dtn_trace_test.txt";
  ASSERT_TRUE(rec.save(path));
  const TraceSet loaded = TraceSet::load(path);
  EXPECT_EQ(loaded.node_count(), 2u);
}

TEST(TraceRecorder, RejectsBadInterval) {
  EXPECT_THROW(TraceRecorder(0.0), PreconditionError);
}

}  // namespace
}  // namespace dtn
