// Checkpoint/restore + state-digest subsystem tests.
//
// The load-bearing property: save at T/2, restore into a fresh World,
// run to T — digest and metrics must be identical to the uninterrupted
// run, for every policy on both paper scenarios. Everything else here
// (archive format validation, corruption rejection, resumable replica
// sets) supports that guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/config/scenario.hpp"
#include "src/report/observers.hpp"
#include "src/report/sweep.hpp"
#include "src/snapshot/checkpoint.hpp"

namespace dtn {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// --- archive format ---

TEST(Archive, PrimitiveRoundTrip) {
  snapshot::ArchiveWriter w;
  w.begin_section("outer");
  w.u8(200);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.25);
  w.boolean(true);
  w.boolean(false);
  w.str("hello archive");
  w.begin_section("inner");
  w.u64(7);
  w.end_section();
  w.end_section();

  snapshot::ArchiveReader r(w.bytes());
  r.begin_section("outer");
  EXPECT_EQ(r.u8(), 200);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello archive");
  r.begin_section("inner");
  EXPECT_EQ(r.u64(), 7u);
  r.end_section();
  r.end_section();
  EXPECT_TRUE(r.at_end());
}

TEST(Archive, TypeTagMismatchThrows) {
  snapshot::ArchiveWriter w;
  w.u32(5);
  snapshot::ArchiveReader r(w.bytes());
  EXPECT_THROW(r.u64(), PreconditionError);
}

TEST(Archive, SectionNameMismatchThrows) {
  snapshot::ArchiveWriter w;
  w.begin_section("alpha");
  w.end_section();
  snapshot::ArchiveReader r(w.bytes());
  EXPECT_THROW(r.begin_section("beta"), PreconditionError);
}

TEST(Archive, TruncatedStreamThrows) {
  snapshot::ArchiveWriter w;
  w.u64(123456789);
  std::vector<std::uint8_t> cut = w.bytes();
  cut.resize(cut.size() - 3);
  snapshot::ArchiveReader r(std::move(cut));
  EXPECT_THROW(r.u64(), PreconditionError);
}

TEST(Archive, DigestOnlyModeMatchesBufferDigest) {
  snapshot::ArchiveWriter buffered(snapshot::ArchiveWriter::Mode::kBuffer);
  snapshot::ArchiveWriter hashed(snapshot::ArchiveWriter::Mode::kDigestOnly);
  for (snapshot::ArchiveWriter* w : {&buffered, &hashed}) {
    w->begin_section("s");
    w->u64(99);
    w->f64(-1.5);
    w->str("x");
    w->end_section();
  }
  EXPECT_EQ(buffered.digest(), hashed.digest());
  EXPECT_EQ(buffered.bytes_written(), hashed.bytes_written());
}

TEST(ArchiveFile, RoundTripAndValidation) {
  const std::string path = temp_path("archive_roundtrip.bin");
  snapshot::ArchiveWriter w;
  w.begin_section("payload");
  w.u64(31337);
  w.end_section();
  snapshot::write_archive_file(path, w);

  snapshot::ArchiveReader r = snapshot::read_archive_file(path);
  r.begin_section("payload");
  EXPECT_EQ(r.u64(), 31337u);
  r.end_section();
  std::remove(path.c_str());
}

TEST(ArchiveFile, CorruptedPayloadRejected) {
  const std::string path = temp_path("archive_corrupt.bin");
  snapshot::ArchiveWriter w;
  w.begin_section("payload");
  w.u64(31337);
  w.end_section();
  snapshot::write_archive_file(path, w);

  // Flip one payload byte (past the 16-byte magic/version/length header).
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(20);
  char b = 0;
  f.seekg(20);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0xFF);
  f.seekp(20);
  f.write(&b, 1);
  f.close();

  EXPECT_THROW(snapshot::read_archive_file(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(ArchiveFile, WrongVersionRejected) {
  const std::string path = temp_path("archive_version.bin");
  snapshot::ArchiveWriter w;
  w.u64(1);
  snapshot::write_archive_file(path, w);

  // The version lives in bytes 4..7 of the header.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4);
  const char bogus = 99;
  f.write(&bogus, 1);
  f.close();

  EXPECT_THROW(snapshot::read_archive_file(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(ArchiveFile, MissingFileThrows) {
  EXPECT_THROW(snapshot::read_archive_file(temp_path("no_such_file.bin")),
               PreconditionError);
}

// --- save -> restore -> run-to-end equality ---

// Scaled-down paper scenarios (structure intact, sizes reduced so each
// round-trip case runs in well under a second).
Scenario small_paper(const std::string& which, const std::string& policy) {
  Scenario sc = which == "taxi" ? Scenario::taxi_paper()
                                : Scenario::random_waypoint_paper();
  sc.n_nodes = 24;
  sc.world.duration = 4000.0;
  sc.rwp.area = Rect::sized(1500.0, 1200.0);
  sc.traffic.interval_min = 30.0;
  sc.traffic.interval_max = 40.0;
  sc.traffic.ttl = 2000.0;
  sc.traffic.initial_copies = 8;
  sc.policy = policy;
  sc.seed = 7;
  return sc;
}

void expect_same_stats(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.created, b.created);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.transfers_started, b.transfers_started);
  EXPECT_EQ(a.transfers_completed, b.transfers_completed);
  EXPECT_EQ(a.transfers_aborted, b.transfers_aborted);
  EXPECT_EQ(a.admission_rejected, b.admission_rejected);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.ttl_expired, b.ttl_expired);
  EXPECT_EQ(a.source_rejected, b.source_rejected);
  EXPECT_EQ(a.hopcounts.count(), b.hopcounts.count());
  EXPECT_EQ(a.hopcounts.mean(), b.hopcounts.mean());
  EXPECT_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.buffer_occupancy.count(), b.buffer_occupancy.count());
  EXPECT_EQ(a.buffer_occupancy.mean(), b.buffer_occupancy.mean());
}

struct RoundTripCase {
  const char* scenario;
  const char* policy;
};

class SnapshotRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(SnapshotRoundTrip, RestoredRunMatchesUninterrupted) {
  const Scenario sc = small_paper(GetParam().scenario, GetParam().policy);
  const double half = sc.world.duration / 2.0;

  // Uninterrupted reference run.
  auto cold = build_world(sc);
  cold->run();
  const std::uint64_t cold_digest = cold->digest();

  // Interrupted run: save at T/2 (in memory), restore into a fresh world.
  auto first = build_world(sc);
  first->run_until(half);
  snapshot::ArchiveWriter out;
  snapshot::save_world(out, sc, *first);
  const std::uint64_t half_digest = first->digest();
  first.reset();

  snapshot::ArchiveReader in(out.bytes());
  auto restored = snapshot::restore_world(in);
  EXPECT_EQ(restored.world->now(), half);
  EXPECT_EQ(restored.world->digest(), half_digest)
      << "restore is not bit-for-bit at T/2";

  restored.world->run();
  EXPECT_EQ(restored.world->digest(), cold_digest)
      << "resumed run diverged from the uninterrupted one";
  expect_same_stats(restored.world->stats(), cold->stats());
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndScenarios, SnapshotRoundTrip,
    ::testing::Values(RoundTripCase{"rwp", "fifo"},
                      RoundTripCase{"rwp", "ttl-ratio"},
                      RoundTripCase{"rwp", "copies-ratio"},
                      RoundTripCase{"rwp", "sdsrp"},
                      RoundTripCase{"taxi", "fifo"},
                      RoundTripCase{"taxi", "ttl-ratio"},
                      RoundTripCase{"taxi", "copies-ratio"},
                      RoundTripCase{"taxi", "sdsrp"}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return std::string(info.param.scenario) + "_" +
             std::string(info.param.policy == std::string("ttl-ratio")
                             ? "ttl_ratio"
                             : info.param.policy == std::string("copies-ratio")
                                   ? "copies_ratio"
                                   : info.param.policy);
    });

TEST(SnapshotFile, CheckpointFileRoundTripsThroughDisk) {
  const Scenario sc = small_paper("rwp", "sdsrp");
  const std::string path = temp_path("world_checkpoint.ckpt");

  auto world = build_world(sc);
  world->run_until(sc.world.duration / 2.0);
  const std::uint64_t half_digest = world->digest();
  snapshot::save_checkpoint(path, sc, *world);
  world.reset();

  auto restored = snapshot::restore_checkpoint(path);
  EXPECT_EQ(restored.scenario.name, sc.name);
  EXPECT_EQ(restored.scenario.seed, sc.seed);
  EXPECT_EQ(restored.world->digest(), half_digest);
  std::remove(path.c_str());
}

TEST(SnapshotFile, RouterStateSurvivesRoundTrip) {
  // PRoPHET keeps per-node predictability tables in the router itself —
  // the piece of state most easily forgotten by a checkpoint.
  Scenario sc = small_paper("rwp", "fifo");
  sc.router = "prophet";
  const double half = sc.world.duration / 2.0;

  auto cold = build_world(sc);
  cold->run();

  auto first = build_world(sc);
  first->run_until(half);
  snapshot::ArchiveWriter out;
  snapshot::save_world(out, sc, *first);
  first.reset();

  snapshot::ArchiveReader in(out.bytes());
  auto restored = snapshot::restore_world(in);
  restored.world->run();
  EXPECT_EQ(restored.world->digest(), cold->digest());
}

// --- archive v3: event-driven core state ---

TEST(SnapshotV3, SaveLandsMidTransferAndRestoresBitIdentical) {
  // The v3 payload carries in-flight transfers (sorted by sender) and the
  // contact tracker's kinetic bookkeeping. Pick a save point where
  // transfers are provably in flight so the new fields are exercised, not
  // vacuously round-tripped.
  const Scenario sc = small_paper("rwp", "sdsrp");
  const double half = sc.world.duration / 2.0;

  auto cold = build_world(sc);
  cold->run();

  auto first = build_world(sc);
  first->run_until(half);
  ASSERT_FALSE(first->transfers_in_flight().empty())
      << "save point must land mid-transfer to exercise v3 fields";
  snapshot::ArchiveWriter out;
  snapshot::save_world(out, sc, *first);
  const std::uint64_t half_digest = first->digest();
  first.reset();

  snapshot::ArchiveReader in(out.bytes());
  auto restored = snapshot::restore_world(in);
  EXPECT_EQ(restored.world->digest(), half_digest);
  ASSERT_FALSE(restored.world->transfers_in_flight().empty());
  restored.world->run();
  EXPECT_EQ(restored.world->digest(), cold->digest());
}

TEST(SnapshotV3, KineticSkipScheduleSurvivesRestore) {
  // Digests deliberately exclude the kinetic bookkeeping (slack, budget,
  // watch set, previous positions), so digest equality alone cannot prove
  // it was restored. The skip *schedule* can: a restored run must execute
  // exactly as many full grid passes over [T/2, T] as the uninterrupted
  // run does — losing the budget or watch set on restore would force an
  // immediate re-certification pass and shift every pass after it.
  const Scenario sc = small_paper("rwp", "fifo");
  const double half = sc.world.duration / 2.0;

  auto cold = build_world(sc);
  cold->run_until(half);
  const std::size_t passes_at_half = cold->contacts().full_pass_count();
  cold->run();
  const std::size_t passes_second_half =
      cold->contacts().full_pass_count() - passes_at_half;

  auto first = build_world(sc);
  first->run_until(half);
  snapshot::ArchiveWriter out;
  snapshot::save_world(out, sc, *first);
  first.reset();

  snapshot::ArchiveReader in(out.bytes());
  auto restored = snapshot::restore_world(in);
  restored.world->run();
  EXPECT_EQ(restored.world->contacts().full_pass_count(),
            passes_second_half);
  EXPECT_LT(passes_second_half, restored.world->contacts().update_count());
}

TEST(SnapshotV3, LegacyStepModeRoundTrips) {
  Scenario sc = small_paper("taxi", "sdsrp");
  sc.world.legacy_step = true;
  const double half = sc.world.duration / 2.0;

  auto cold = build_world(sc);
  cold->run();

  auto first = build_world(sc);
  first->run_until(half);
  snapshot::ArchiveWriter out;
  snapshot::save_world(out, sc, *first);
  first.reset();

  snapshot::ArchiveReader in(out.bytes());
  auto restored = snapshot::restore_world(in);
  restored.world->run();
  EXPECT_EQ(restored.world->digest(), cold->digest());
  EXPECT_EQ(restored.world->contacts().full_pass_count(),
            restored.world->contacts().update_count());
}

// --- digest determinism regression ---

TEST(Digest, SameSeedSameDigestTrajectory) {
  const Scenario sc = small_paper("rwp", "sdsrp");
  auto a = build_world(sc);
  auto b = build_world(sc);
  for (double t = 500.0; t <= sc.world.duration; t += 500.0) {
    a->run_until(t);
    b->run_until(t);
    ASSERT_EQ(a->digest(), b->digest()) << "diverged by t=" << t;
  }
}

TEST(Digest, DifferentSeedsDifferentDigests) {
  Scenario sc1 = small_paper("rwp", "sdsrp");
  Scenario sc2 = sc1;
  sc2.seed = sc1.seed + 1;
  auto a = build_world(sc1);
  auto b = build_world(sc2);
  a->run();
  b->run();
  EXPECT_NE(a->digest(), b->digest());
}

TEST(Digest, CheapRelativeToStepping) {
  // The digest is meant to be callable every few hundred steps; just
  // assert it is pure (no state mutation): two calls agree.
  auto world = build_world(small_paper("rwp", "fifo"));
  world->run_until(1000.0);
  EXPECT_EQ(world->digest(), world->digest());
}

// --- resumable replica sets ---

TEST(CheckpointedRuns, RunScenarioResumesFromCheckpoint) {
  const Scenario sc = small_paper("rwp", "sdsrp");
  const std::string dir = temp_path("ckpt_run_scenario");
  std::filesystem::remove_all(dir);

  const MetricPoint cold = run_scenario(sc);

  // Leave a half-way checkpoint behind, as an interrupted run would.
  {
    auto world = build_world(sc);
    DeliveredMessagesReport delivered;
    world->add_observer(&delivered);
    world->run_until(sc.world.duration / 2.0);
    std::filesystem::create_directories(dir);
    snapshot::save_checkpoint(
        dir + "/" + sc.name + "_seed" + std::to_string(sc.seed) + ".ckpt",
        sc, *world, [&delivered](snapshot::ArchiveWriter& out) {
          delivered.save_state(out);
        });
  }

  CheckpointOptions ckpt;
  ckpt.dir = dir;
  ckpt.interval_s = 1000.0;
  SimStats stats;
  const MetricPoint warm = run_scenario(sc, &stats, ckpt);

  EXPECT_EQ(warm.delivery_ratio, cold.delivery_ratio);
  EXPECT_EQ(warm.avg_hopcount, cold.avg_hopcount);
  EXPECT_EQ(warm.overhead_ratio, cold.overhead_ratio);
  EXPECT_EQ(warm.avg_latency, cold.avg_latency);
  EXPECT_EQ(warm.median_latency, cold.median_latency);
  EXPECT_EQ(warm.p95_latency, cold.p95_latency);
  EXPECT_GT(stats.created, 0u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointedRuns, ReplicatedSetResumesPartialWork) {
  const Scenario base = small_paper("rwp", "fifo");
  const std::size_t replicas = 3;
  const std::string dir = temp_path("ckpt_replicated");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const ReplicatedMetrics cold = run_replicated(base, replicas);

  // Simulate a partially completed set: replica 0 finished (its .done
  // marker exists), replica 1 stopped half-way (a .ckpt file exists),
  // replica 2 never started.
  CheckpointOptions ckpt;
  ckpt.dir = dir;
  ckpt.interval_s = 1000.0;
  {
    Scenario r0 = base;
    CheckpointOptions keep = ckpt;
    keep.keep_files = true;
    run_scenario(r0, nullptr, keep);
    ASSERT_TRUE(std::filesystem::exists(
        dir + "/" + r0.name + "_seed" + std::to_string(r0.seed) + ".done"));
  }
  {
    Scenario r1 = base;
    r1.seed = base.seed + 1;
    auto world = build_world(r1);
    DeliveredMessagesReport delivered;
    world->add_observer(&delivered);
    world->run_until(r1.world.duration / 2.0);
    snapshot::save_checkpoint(
        dir + "/" + r1.name + "_seed" + std::to_string(r1.seed) + ".ckpt",
        r1, *world, [&delivered](snapshot::ArchiveWriter& out) {
          delivered.save_state(out);
        });
  }

  const ReplicatedMetrics warm = run_replicated(base, replicas, nullptr, ckpt);

  const MetricPoint cm = cold.mean();
  const MetricPoint wm = warm.mean();
  EXPECT_EQ(wm.delivery_ratio, cm.delivery_ratio);
  EXPECT_EQ(wm.avg_hopcount, cm.avg_hopcount);
  EXPECT_EQ(wm.overhead_ratio, cm.overhead_ratio);
  EXPECT_EQ(wm.avg_latency, cm.avg_latency);
  EXPECT_EQ(wm.median_latency, cm.median_latency);
  EXPECT_EQ(wm.p95_latency, cm.p95_latency);
  EXPECT_EQ(warm.delivery_ratio.stddev(), cold.delivery_ratio.stddev());
  std::filesystem::remove_all(dir);
}

// --- satellite: ReplicatedMetrics aggregates all six fields ---

TEST(ReplicatedMetricsFix, MeanCarriesLatencyQuantiles) {
  ReplicatedMetrics agg;
  MetricPoint a{0.5, 2.0, 3.0, 100.0, 80.0, 200.0};
  MetricPoint b{0.7, 4.0, 5.0, 140.0, 120.0, 280.0};
  agg.add(a);
  agg.add(b);
  const MetricPoint m = agg.mean();
  // Aggregates are exactly mergeable via 2^20 fixed-point quantization
  // (DESIGN.md §12), so means carry a <= 2^-21 absolute rounding error.
  constexpr double kQuant = 1e-5;
  EXPECT_NEAR(m.delivery_ratio, 0.6, kQuant);
  EXPECT_NEAR(m.avg_hopcount, 3.0, kQuant);
  EXPECT_NEAR(m.overhead_ratio, 4.0, kQuant);
  EXPECT_NEAR(m.avg_latency, 120.0, kQuant);
  EXPECT_NEAR(m.median_latency, 100.0, kQuant);
  EXPECT_NEAR(m.p95_latency, 240.0, kQuant);
}

}  // namespace
}  // namespace dtn
