// Tests for the optional ACK-gossip immunization extension.
#include <gtest/gtest.h>

#include <memory>

#include "src/buffer/fifo.hpp"
#include "src/config/scenario.hpp"
#include "src/mobility/stationary.hpp"
#include "src/report/sweep.hpp"
#include "src/routing/spray_and_wait.hpp"

namespace dtn {
namespace {

Message msg(MessageId id, NodeId src, NodeId dst, int copies = 8) {
  Message m;
  m.id = id;
  m.source = src;
  m.destination = dst;
  m.size = 100;
  m.created = 0.0;
  m.ttl = 5000.0;
  m.copies = copies;
  m.initial_copies = copies;
  return m;
}

std::unique_ptr<World> chain_world(bool ack) {
  // 0 - 1 - 2 in a line; only adjacent pairs in range.
  WorldConfig cfg;
  cfg.step = 1.0;
  cfg.duration = 1000.0;
  cfg.range = 10.0;
  cfg.bandwidth = 100.0;
  cfg.ack_gossip = ack;
  auto w = std::make_unique<World>(cfg);
  w->set_router(std::make_unique<SprayAndWaitRouter>());
  w->set_policy(std::make_unique<FifoPolicy>());
  w->add_node(std::make_unique<StationaryModel>(Vec2{0, 0}), 10000);
  w->add_node(std::make_unique<StationaryModel>(Vec2{8, 0}), 10000);
  w->add_node(std::make_unique<StationaryModel>(Vec2{16, 0}), 10000);
  return w;
}

TEST(AckGossip, SenderPurgesCopyAfterDelivering) {
  auto w = chain_world(true);
  // Node 1 holds a single-copy message for node 2: direct delivery.
  ASSERT_TRUE(w->inject_message(msg(1, 1, 2, 1)));
  w->run_until(10.0);
  EXPECT_EQ(w->stats().delivered, 1u);
  // With ACK the deliverer frees its buffer slot.
  EXPECT_FALSE(w->node(1).buffer().has(1));
  EXPECT_GE(w->stats().ack_purged, 1u);
}

TEST(AckGossip, WithoutAckSenderKeepsCopy) {
  auto w = chain_world(false);
  ASSERT_TRUE(w->inject_message(msg(1, 1, 2, 1)));
  w->run_until(10.0);
  EXPECT_EQ(w->stats().delivered, 1u);
  // Paper semantics: no acknowledgment, the copy stays.
  EXPECT_TRUE(w->node(1).buffer().has(1));
  EXPECT_EQ(w->stats().ack_purged, 0u);
}

TEST(AckGossip, KnowledgePropagatesAndPurgesRemoteCopies) {
  auto w = chain_world(true);
  // Node 0 sprays toward node 2 via node 1; after delivery, node 0's
  // remaining copy must eventually be purged through gossip with node 1.
  ASSERT_TRUE(w->inject_message(msg(1, 0, 2, 8)));
  w->run_until(50.0);
  ASSERT_EQ(w->stats().delivered, 1u);
  EXPECT_TRUE(w->node(1).knows_delivered(1));
  // Links persist (stationary chain), so gossip happened at link-up only;
  // but the deliverer purges immediately and node 0's copy is purged on
  // the next link-up event — force one by breaking and re-forming.
  // With permanent links, node 0 only learns via the initial link-up
  // which predates delivery; its copy may legitimately remain. Verify
  // the mechanism with a fresh encounter instead:
  auto* m0 = dynamic_cast<StationaryModel*>(&w->node(0).mobility());
  ASSERT_NE(m0, nullptr);
  m0->move_to({100, 100});  // break 0-1
  w->run_until(55.0);
  m0->move_to({8, 8});      // re-meet node 1
  w->run_until(60.0);
  EXPECT_TRUE(w->node(0).knows_delivered(1));
  EXPECT_FALSE(w->node(0).buffer().has(1));
}

TEST(AckGossip, ImmunizedNodeRefusesCopies) {
  auto w = chain_world(true);
  ASSERT_TRUE(w->inject_message(msg(1, 0, 2, 8)));
  w->run_until(50.0);
  ASSERT_EQ(w->stats().delivered, 1u);
  // Re-injecting relays of a delivered message must be refused: craft a
  // holder by checking peer_can_receive indirectly — node 1 knows it is
  // delivered and must never re-accept it. Run on and assert no copy of
  // message 1 reappears at node 1 once purged.
  w->run_until(200.0);
  EXPECT_FALSE(w->node(1).buffer().has(1));
}

TEST(AckGossip, EndToEndImprovesDeliveryUnderCongestion) {
  Scenario base = Scenario::random_waypoint_paper();
  base.n_nodes = 30;
  base.world.duration = 6000.0;
  base.rwp.area = Rect::sized(1500.0, 1200.0);
  base.traffic.interval_min = 15.0;
  base.traffic.interval_max = 20.0;
  base.traffic.ttl = 4000.0;
  base.policy = "fifo";

  Scenario with_ack = base;
  with_ack.world.ack_gossip = true;
  const auto plain = run_replicated(base, 2);
  const auto acked = run_replicated(with_ack, 2);
  // Freeing delivered copies must not hurt, and should help under
  // congestion.
  EXPECT_GE(acked.delivery_ratio.mean(),
            plain.delivery_ratio.mean() - 0.01);
}

}  // namespace
}  // namespace dtn
