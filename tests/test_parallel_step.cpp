// Deterministic intra-step parallelism (DESIGN.md §11/§16): running the
// World with any Parallel.threads value must produce bit-identical
// digest trajectories to the serial reference — the task-graph executor
// only changes *where* read-mostly work runs, never what it computes or
// the order in which effects are applied. The proof mirrors the
// event-core suite: digest trajectories on both paper scenarios under
// all four paper policies, serial vs 1/2/8 workers, with and without
// faults, plus targeted checks for the sharded subsystems (contact
// churn ordering, batched TTL verdicts, checkpoint round-trips) and the
// zero-allocation guarantee of the steady-state step loop, serial and
// parallel alike.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "src/buffer/fifo.hpp"
#include "src/config/scenario.hpp"
#include "src/core/world.hpp"
#include "src/mobility/random_walk.hpp"
#include "src/mobility/stationary.hpp"
#include "src/net/contact_tracker.hpp"
#include "src/routing/spray_and_wait.hpp"
#include "src/snapshot/checkpoint.hpp"
#include "src/util/rng.hpp"
#include "src/util/task_graph.hpp"

// Counts every global allocation so the steady-state test below can
// assert the step loop performs none once warm. Counting is cheap and
// the suite is single-threaded outside the World's own pool, which also
// routes through these operators (relaxed atomic keeps them safe).
// ASan owns operator new/delete itself (replacing them trips its
// alloc-dealloc-mismatch check), so the counter — and the one test that
// needs it — is compiled out under address sanitizing; the TSan job
// keeps it, exercising the counter under the pool's concurrency.
#if defined(__SANITIZE_ADDRESS__)
#define DTN_NO_ALLOC_COUNTER 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DTN_NO_ALLOC_COUNTER 1
#endif
#endif

#ifndef DTN_NO_ALLOC_COUNTER
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // DTN_NO_ALLOC_COUNTER

namespace dtn {
namespace {

std::vector<std::uint64_t> digest_trajectory(Scenario sc,
                                             std::size_t threads) {
  sc.world.threads = threads;
  auto w = build_world(sc);
  std::vector<std::uint64_t> digests;
  for (double t = 300.0; t <= sc.world.duration + 1e-9; t += 300.0) {
    w->run_until(t);
    digests.push_back(w->digest());
  }
  return digests;
}

void enable_faults(Scenario& sc) {
  sc.fault.enabled = true;
  sc.fault.churn_fraction = 0.5;
  sc.fault.mean_up_s = 600.0;
  sc.fault.mean_down_s = 300.0;
  sc.fault.link_abort_rate_per_hour = 60.0;
  sc.fault.degrade_rate_per_hour = 6.0;
  sc.fault.degrade_duration_s = 120.0;
  sc.fault.degrade_range_factor = 0.6;
  sc.fault.degrade_bitrate_factor = 0.5;
}

struct ParallelCase {
  const char* scenario;  // "rwp" | "taxi"
  const char* policy;
  bool faults;
};

class ParallelStepEquivalence
    : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelStepEquivalence, DigestTrajectoryMatchesSerial) {
  const ParallelCase& pc = GetParam();
  Scenario sc = std::string(pc.scenario) == "rwp"
                    ? Scenario::random_waypoint_paper()
                    : Scenario::taxi_paper();
  sc.policy = pc.policy;
  sc.world.duration = 900.0;
  if (pc.faults) enable_faults(sc);
  const std::vector<std::uint64_t> serial = digest_trajectory(sc, 0);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    EXPECT_EQ(digest_trajectory(sc, threads), serial)
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperScenarios, ParallelStepEquivalence,
    ::testing::Values(ParallelCase{"rwp", "fifo", false},
                      ParallelCase{"rwp", "ttl-ratio", false},
                      ParallelCase{"rwp", "copies-ratio", false},
                      ParallelCase{"rwp", "sdsrp", false},
                      ParallelCase{"taxi", "fifo", false},
                      ParallelCase{"taxi", "ttl-ratio", false},
                      ParallelCase{"taxi", "copies-ratio", false},
                      ParallelCase{"taxi", "sdsrp", false},
                      ParallelCase{"rwp", "sdsrp", true},
                      ParallelCase{"taxi", "fifo", true}),
    [](const ::testing::TestParamInfo<ParallelCase>& info) {
      std::string name = std::string(info.param.scenario) + "_" +
                         info.param.policy +
                         (info.param.faults ? "_faults" : "");
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ParallelStepEquivalence, TightBuffersExerciseDropAndPrewarmPaths) {
  // Saturated buffers make the SDSRP prewarm consequential: every
  // contact rates full buffers, evicts, and gossips dropped lists — the
  // warm side-buffer must still be decision-invisible.
  Scenario sc = Scenario::random_waypoint_paper();
  sc.world.duration = 900.0;
  sc.buffer_capacity = 1'250'000;
  EXPECT_EQ(digest_trajectory(sc, 2), digest_trajectory(sc, 0));
}

// --- sharded-subsystem checks ---

TEST(ParallelContactTracker, ChurnOrderingMatchesSerialAtAnyWorkerCount) {
  // Drive two trackers over the same random walk: one serial, one with an
  // executor attached. Churn lists, the current set and the skip/full-pass
  // cadence must agree step for step — the sharded candidate enumeration
  // and watch recheck only ever batch the serial iteration order.
  constexpr std::size_t kNodes = 300;
  constexpr double kRange = 100.0;
  constexpr double kStep = 1.0;
  constexpr double kSpeed = 25.0;  // large churn per step
  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    ContactTracker serial(kRange);
    ContactTracker parallel(kRange);
    serial.set_motion_bound(kSpeed * kStep);
    parallel.set_motion_bound(kSpeed * kStep);
    TaskExecutor exec(workers);
    parallel.set_executor(&exec);

    Rng rng(2026);
    std::vector<Vec2> pos(kNodes);
    for (Vec2& p : pos) {
      p = {rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)};
    }
    for (int step = 0; step < 200; ++step) {
      for (Vec2& p : pos) {
        p.x += rng.uniform(-kSpeed, kSpeed);
        p.y += rng.uniform(-kSpeed, kSpeed);
      }
      const ContactChurn& cs = serial.update(pos);
      // Copy before the second update: churn references are reused.
      const std::vector<NodePair> ups = cs.went_up;
      const std::vector<NodePair> downs = cs.went_down;
      const ContactChurn& cp = parallel.update(pos);
      ASSERT_EQ(cp.went_up, ups) << "workers=" << workers
                                 << " step=" << step;
      ASSERT_EQ(cp.went_down, downs) << "workers=" << workers
                                     << " step=" << step;
      ASSERT_EQ(parallel.current(), serial.current())
          << "workers=" << workers << " step=" << step;
    }
    EXPECT_EQ(parallel.full_pass_count(), serial.full_pass_count())
        << "workers=" << workers;
  }
}

Message short_ttl_msg(MessageId id, NodeId src, NodeId dst, double ttl) {
  Message m;
  m.id = id;
  m.source = src;
  m.destination = dst;
  m.size = 10;
  m.created = 0.0;
  m.ttl = ttl;
  m.copies = 1;  // wait phase: no spraying, buffers stay put
  m.initial_copies = 1;
  m.received = 0.0;
  return m;
}

TEST(ParallelTtl, BatchedExpiryVerdictsMatchSerial) {
  // A mass expiry (hundreds of messages dying in one step) crosses the
  // parallel-classification threshold; the verdict batch must reproduce
  // the serial pop-order outcome exactly.
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
    WorldConfig cfg;
    cfg.step = 1.0;
    cfg.duration = 200.0;
    cfg.range = 10.0;
    cfg.bandwidth = 1e9;
    cfg.threads = threads;
    auto w = std::make_unique<World>(cfg);
    w->set_router(std::make_unique<SprayAndWaitRouter>());
    w->set_policy(std::make_unique<FifoPolicy>());
    // 8 isolated nodes, far out of range: no transfers, pure TTL churn.
    for (int i = 0; i < 8; ++i) {
      w->add_node(std::make_unique<StationaryModel>(
                      Vec2{static_cast<double>(i) * 1000.0, 0.0}),
                  1'000'000);
    }
    MessageId id = 1;
    for (NodeId n = 0; n < 8; ++n) {
      for (int k = 0; k < 40; ++k) {  // 320 copies expiring at t=50
        ASSERT_TRUE(w->inject_message(
            short_ttl_msg(id++, n, (n + 1) % 8, /*ttl=*/50.0)));
      }
    }
    w->run_until(60.0);
    EXPECT_EQ(w->stats().ttl_expired, 320u) << "threads=" << threads;
    if (threads == 0) continue;
    // Same script serial: end digests must agree.
    cfg.threads = 0;
    auto ws = std::make_unique<World>(cfg);
    ws->set_router(std::make_unique<SprayAndWaitRouter>());
    ws->set_policy(std::make_unique<FifoPolicy>());
    for (int i = 0; i < 8; ++i) {
      ws->add_node(std::make_unique<StationaryModel>(
                       Vec2{static_cast<double>(i) * 1000.0, 0.0}),
                   1'000'000);
    }
    MessageId sid = 1;
    for (NodeId n = 0; n < 8; ++n) {
      for (int k = 0; k < 40; ++k) {
        ASSERT_TRUE(ws->inject_message(
            short_ttl_msg(sid++, n, (n + 1) % 8, /*ttl=*/50.0)));
      }
    }
    ws->run_until(60.0);
    EXPECT_EQ(w->digest(), ws->digest());
  }
}

// --- checkpointing under parallel mode ---

TEST(ParallelCheckpoint, MidRunRestoreIsDigestEqual) {
  Scenario sc = Scenario::taxi_paper();
  sc.policy = "sdsrp";
  sc.world.duration = 900.0;
  sc.world.threads = 2;
  const std::string path =
      ::testing::TempDir() + "parallel_step_checkpoint.ckpt";

  auto w = build_world(sc);
  w->run_until(450.0);
  snapshot::save_checkpoint(path, sc, *w);
  w->run_until(sc.world.duration);
  const std::uint64_t uninterrupted = w->digest();
  w.reset();

  auto restored = snapshot::restore_checkpoint(path);
  // The thread count rides in the embedded scenario: a resumed run keeps
  // its parallel mode without the caller re-specifying it.
  EXPECT_EQ(restored.scenario.world.threads, 2u);
  restored.world->run_until(sc.world.duration);
  EXPECT_EQ(restored.world->digest(), uninterrupted);

  // And a serial resume of the same checkpoint converges to the same
  // state — parallel mode is invisible to the saved bytes.
  Settings s = sc.to_settings();
  s.set("Parallel.threads", "0");
  const Scenario serial_sc = Scenario::from_settings(s);
  EXPECT_EQ(serial_sc.world.threads, 0u);
  auto serial = build_world(serial_sc);
  {
    snapshot::ArchiveReader in = snapshot::read_archive_file(path);
    snapshot::restore_world_into(in, *serial);
  }
  serial->run_until(sc.world.duration);
  EXPECT_EQ(serial->digest(), uninterrupted);
  std::remove(path.c_str());
}

TEST(ParallelConfig, ThreadsRoundTripsThroughSettings) {
  Scenario sc = Scenario::random_waypoint_paper();
  EXPECT_EQ(sc.world.threads, 0u);  // serial default: goldens unaffected
  sc.world.threads = 8;
  const Scenario back = Scenario::from_settings(sc.to_settings());
  EXPECT_EQ(back.world.threads, 8u);
}

// --- quiet-step batching ---

// A fleet slow enough that the kinetic budget covers many steps of
// worst-case motion: run_until fuses those spans into batched mobility
// advances. Adjacent walk boxes nearly touch, so contact episodes (and
// the sprayed traffic riding on them) punctuate the quiet spans, and
// staggered TTLs force batches to break at exact expiry steps.
std::unique_ptr<World> quiet_batch_world(std::size_t threads) {
  WorldConfig cfg;
  cfg.step = 1.0;
  cfg.duration = 1200.0;
  cfg.range = 10.0;
  cfg.bandwidth = 10'000.0;
  cfg.threads = threads;
  auto w = std::make_unique<World>(cfg);
  w->set_router(std::make_unique<SprayAndWaitRouter>());
  w->set_policy(std::make_unique<FifoPolicy>());
  for (int i = 0; i < 12; ++i) {
    RandomWalkConfig wc;
    wc.area = Rect({i * 32.0, 0.0}, {i * 32.0 + 30.0, 30.0});
    wc.v_min = wc.v_max = 0.25;
    wc.epoch = 20.0;
    w->add_node(std::make_unique<RandomWalkModel>(wc, Rng(42 + i)), 100000);
  }
  MessageId id = 1;
  for (NodeId n = 0; n + 1 < 12; ++n) {
    Message m;
    m.id = id++;
    m.source = n;
    m.destination = n + 1;
    m.size = 100;
    m.created = 0.0;
    m.ttl = 100.0 + 50.0 * static_cast<double>(n);
    m.copies = 4;
    m.initial_copies = 4;
    m.received = 0.0;
    EXPECT_TRUE(w->inject_message(m));
  }
  return w;
}

TEST(QuietBatch, RunUntilMatchesPureStepLoop) {
  // run_until fuses provably-quiet spans into batched mobility advances
  // (DESIGN.md §16); step() never batches. The digest trajectories must
  // be bit-identical, with batches breaking at exactly the right step
  // around TTL expiries, contact episodes and occupancy samples — at
  // any thread count, since batch sizing is state-pure.
  auto reference = quiet_batch_world(0);
  std::vector<std::uint64_t> ref_digests;
  for (double t = 100.0; t <= 1200.0 + 1e-9; t += 100.0) {
    while (reference->now() + 1.0 <= t + 1e-9) reference->step();
    ref_digests.push_back(reference->digest());
  }
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
    auto w = quiet_batch_world(threads);
    std::vector<std::uint64_t> digests;
    for (double t = 100.0; t <= 1200.0 + 1e-9; t += 100.0) {
      w->run_until(t);
      digests.push_back(w->digest());
    }
    EXPECT_EQ(digests, ref_digests) << "threads=" << threads;
    // Vacuity guard: batched steps never pass through step(), so they
    // are invisible to the per-step profile counter. If batching never
    // engaged, this scenario is not testing what it claims to.
    EXPECT_LT(w->phase_profile().steps, reference->phase_profile().steps)
        << "threads=" << threads;
  }
}

// --- steady-state allocation ---

TEST(ParallelScratch, SteadyStateStepLoopDoesNotAllocate) {
#ifdef DTN_NO_ALLOC_COUNTER
  GTEST_SKIP() << "allocation counter disabled under AddressSanitizer";
#else
  // The hot-path scratch (due TTL batches, churn buffers, traffic and
  // fault staging) lives in reused World members; once every buffer has
  // grown to its working size, stepping must not touch the heap. A
  // quiet stationary fleet reaches that steady state immediately:
  // priority caching off keeps the idle memo and per-node memos empty,
  // and the huge occupancy interval keeps the sampler out of the window.
  // The parallel variant additionally pins the executor contract: graph
  // dispatch, for_each and the quiet-batch path borrow preallocated
  // kernels and never touch the heap once warm.
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
    WorldConfig cfg;
    cfg.step = 1.0;
    cfg.duration = 1000.0;
    cfg.range = 10.0;
    cfg.bandwidth = 100.0;
    cfg.priority_cache = false;
    cfg.occupancy_sample_interval = 1e9;
    cfg.threads = threads;
    auto w = std::make_unique<World>(cfg);
    w->set_router(std::make_unique<SprayAndWaitRouter>());
    w->set_policy(std::make_unique<FifoPolicy>());
    for (int i = 0; i < 16; ++i) {
      w->add_node(std::make_unique<StationaryModel>(
                      Vec2{static_cast<double>(i) * 500.0, 0.0}),
                  10000);
    }
    w->run_until(50.0);  // warm every scratch buffer
    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    w->run_until(150.0);
    const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u) << "threads=" << threads;
  }
#endif  // DTN_NO_ALLOC_COUNTER
}

TEST(ParallelScratch, HierarchicalGridRebuildsDoNotAllocateInSteadyState) {
#ifdef DTN_NO_ALLOC_COUNTER
  GTEST_SKIP() << "allocation counter disabled under AddressSanitizer";
#else
  // The stationary variant above never re-buckets the grid after warmup
  // (the kinetic budget is never spent). This one keeps the fleet moving
  // so full grid passes — the hierarchical counting-sort rebuild included
  // — keep running inside the measured window. Movers are confined to
  // small boxes far apart (no contacts ever form, so no Message churn),
  // and two stationary sentinels pin the corners of the coarse-tile
  // bounding box so the dense directory never has to grow mid-window.
  // The movers keep the kinetic budget too thin for quiet batching, so
  // the parallel variant measures the task-graph step itself (dispatch,
  // tracker shards, merge) rather than the batched fast path.
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
    WorldConfig cfg;
    cfg.step = 1.0;
    cfg.duration = 1000.0;
    cfg.range = 10.0;
    cfg.bandwidth = 100.0;
    cfg.priority_cache = false;
    cfg.occupancy_sample_interval = 1e9;
    cfg.threads = threads;
    auto w = std::make_unique<World>(cfg);
    w->set_router(std::make_unique<SprayAndWaitRouter>());
    w->set_policy(std::make_unique<FifoPolicy>());
    for (int i = 0; i < 16; ++i) {
      RandomWalkConfig wc;
      wc.area = Rect({i * 600.0, 0.0}, {i * 600.0 + 50.0, 50.0});
      wc.v_min = wc.v_max = 5.0;
      wc.epoch = 7.0;
      w->add_node(std::make_unique<RandomWalkModel>(wc, Rng(1000 + i)), 10000);
    }
    w->add_node(std::make_unique<StationaryModel>(Vec2{-60.0, -60.0}), 10000);
    w->add_node(std::make_unique<StationaryModel>(Vec2{9600.0, 120.0}), 10000);

    w->run_until(200.0);  // warm scratch; movers have bounced off every wall
    ASSERT_TRUE(w->contacts().grid().hierarchical());
    const std::size_t passes_before = w->contacts().full_pass_count();
    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    w->run_until(400.0);
    const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u) << "threads=" << threads;
    // The window must actually have exercised the rebuild path.
    EXPECT_GT(w->contacts().full_pass_count(), passes_before);
    EXPECT_TRUE(w->contacts().grid().hierarchical());
    EXPECT_TRUE(w->contacts().current().empty());
  }
#endif  // DTN_NO_ALLOC_COUNTER
}

}  // namespace
}  // namespace dtn
