// Unit tests for the histogram and exponential fitting used by the Fig. 3
// intermeeting-time analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "src/util/histogram.hpp"
#include "src/util/rng.hpp"

namespace dtn {
namespace {

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(Histogram, CountsFallIntoRightBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflowTracked) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // right edge is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, DensityIntegratesToCoverage) {
  Histogram h(0.0, 10.0, 10);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform(0, 10));
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    integral += h.density(b) * h.bin_width();
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, CcdfMonotoneNonIncreasing) {
  Histogram h(0.0, 10.0, 10);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) h.add(rng.exponential(0.5));
  const auto ccdf = h.ccdf();
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_LE(ccdf[i], ccdf[i - 1] + 1e-12);
  }
  EXPECT_NEAR(ccdf[0], 1.0, 1e-12);  // everything >= 0
}

TEST(Histogram, QuantileCheckedFlagsOverflowSaturation) {
  // 60% of the mass in range, 40% above the ceiling: the median is a
  // real estimate, but any quantile past 0.6 lands in the overflow mass
  // and the returned hi is only a lower bound. The legacy quantile()
  // reports the same ceiling value with no warning — the bug that made
  // fixed-layout latency p95s silently read "12 h" (sweep aggregates).
  Histogram h(0.0, 10.0, 5);
  for (int i = 0; i < 60; ++i) h.add(1.0);
  for (int i = 0; i < 40; ++i) h.add(50.0);
  const auto p50 = h.quantile_checked(0.5);
  EXPECT_FALSE(p50.saturated);
  EXPECT_LT(p50.value, 2.0);
  const auto p95 = h.quantile_checked(0.95);
  EXPECT_TRUE(p95.saturated);
  EXPECT_DOUBLE_EQ(p95.value, 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 10.0);  // silent legacy behavior
  EXPECT_DOUBLE_EQ(h.overflow_fraction(), 0.4);
  EXPECT_DOUBLE_EQ(h.underflow_fraction(), 0.0);
}

TEST(Histogram, QuantileCheckedBoundaryAndEmpty) {
  Histogram h(0.0, 10.0, 5);
  for (int i = 0; i < 50; ++i) h.add(1.0);
  for (int i = 0; i < 50; ++i) h.add(99.0);
  // Rank exactly at the last in-range sample still resolves in a bin.
  EXPECT_FALSE(h.quantile_checked(0.5).saturated);
  EXPECT_TRUE(h.quantile_checked(0.51).saturated);
  Histogram empty(0.0, 1.0, 2);
  EXPECT_FALSE(empty.quantile_checked(0.9).saturated);
  EXPECT_DOUBLE_EQ(empty.overflow_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(empty.underflow_fraction(), 0.0);
}

TEST(Histogram, MergePreservesOverflowAccounting) {
  Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(20.0);
  b.add(30.0);
  b.add(-5.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.overflow_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(a.underflow_fraction(), 0.25);
  EXPECT_TRUE(a.quantile_checked(0.99).saturated);
}

TEST(FitExponential, RecoversRate) {
  Rng rng(7);
  std::vector<double> samples;
  const double lambda = 0.01;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.exponential(lambda));
  const ExponentialFit fit = fit_exponential(samples);
  EXPECT_NEAR(fit.lambda, lambda, lambda * 0.03);
  EXPECT_NEAR(fit.mean, 1.0 / lambda, 0.03 / lambda);
  EXPECT_GT(fit.r_squared, 0.98);  // exponential data: log-CCDF is linear
  EXPECT_EQ(fit.samples, 50000u);
}

TEST(FitExponential, UniformDataFitsWorseThanExponential) {
  Rng rng(8);
  std::vector<double> expo, unif;
  for (int i = 0; i < 20000; ++i) {
    expo.push_back(rng.exponential(1.0));
    unif.push_back(rng.uniform(0.0, 2.0));
  }
  EXPECT_GT(fit_exponential(expo).r_squared,
            fit_exponential(unif).r_squared);
}

TEST(FitExponential, EmptyAndDegenerate) {
  EXPECT_EQ(fit_exponential({}).samples, 0u);
  const auto fit = fit_exponential({0.0, 0.0});
  EXPECT_DOUBLE_EQ(fit.lambda, 0.0);  // zero mean -> no rate
}

TEST(FitExponential, NegativeSampleThrows) {
  EXPECT_THROW(fit_exponential({1.0, -2.0}), PreconditionError);
}

TEST(FitExponential, PointMassHasNoTailEvidence) {
  // Identical samples: every CCDF grid point below the value reads 1.0,
  // so the log-CCDF is flat and carries zero evidence of exponential
  // decay. The old code reported R² = 1 ("perfectly exponential") for
  // exactly this input; it must read 0 now.
  const auto fit = fit_exponential(std::vector<double>(100, 42.0));
  EXPECT_DOUBLE_EQ(fit.r_squared, 0.0);
  EXPECT_NEAR(fit.lambda, 1.0 / 42.0, 1e-12);
  EXPECT_EQ(fit.tail_points, 50u);  // grid populated, just degenerate
}

TEST(FitExponential, SingleSampleIsFiniteAndDegenerate) {
  const auto fit = fit_exponential({7.0});
  EXPECT_TRUE(std::isfinite(fit.lambda));
  EXPECT_DOUBLE_EQ(fit.mean, 7.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 0.0);  // flat CCDF: no decay observed
}

TEST(FitExponential, SparseSamplesStayFiniteAndBounded) {
  // Property: any tiny positive sample set yields finite lambda/mean and
  // r_squared in [0, 1] with tail_points never exceeding the grid — the
  // sparse-tail regime where log(0) or a degenerate regression used to
  // be reachable.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> samples;
    const int n = 1 + trial % 5;
    for (int i = 0; i < n; ++i) {
      // Mix of scales, including ties and near-zero values.
      samples.push_back(trial % 3 == 0 ? 1.0 : rng.exponential(0.1));
    }
    const auto fit = fit_exponential(samples, 17);
    EXPECT_TRUE(std::isfinite(fit.lambda));
    EXPECT_TRUE(std::isfinite(fit.mean));
    EXPECT_TRUE(std::isfinite(fit.r_squared));
    EXPECT_GE(fit.r_squared, 0.0);
    EXPECT_LE(fit.r_squared, 1.0);
    EXPECT_LE(fit.tail_points, 17u);
    EXPECT_EQ(fit.samples, static_cast<std::size_t>(n));
  }
}

TEST(FitExponential, WideSpreadPairRegressesCleanly) {
  // Two samples far apart: most grid points between them carry CCDF 0.5,
  // the ones below the small sample carry 1.0 — a real (if crude)
  // two-level regression, not a degenerate one.
  const auto fit = fit_exponential({1.0, 100.0});
  EXPECT_GT(fit.tail_points, 2u);
  EXPECT_GE(fit.r_squared, 0.0);
  EXPECT_LE(fit.r_squared, 1.0);
}

}  // namespace
}  // namespace dtn
