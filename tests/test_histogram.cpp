// Unit tests for the histogram and exponential fitting used by the Fig. 3
// intermeeting-time analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "src/util/histogram.hpp"
#include "src/util/rng.hpp"

namespace dtn {
namespace {

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(Histogram, CountsFallIntoRightBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflowTracked) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // right edge is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, DensityIntegratesToCoverage) {
  Histogram h(0.0, 10.0, 10);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform(0, 10));
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    integral += h.density(b) * h.bin_width();
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, CcdfMonotoneNonIncreasing) {
  Histogram h(0.0, 10.0, 10);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) h.add(rng.exponential(0.5));
  const auto ccdf = h.ccdf();
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_LE(ccdf[i], ccdf[i - 1] + 1e-12);
  }
  EXPECT_NEAR(ccdf[0], 1.0, 1e-12);  // everything >= 0
}

TEST(FitExponential, RecoversRate) {
  Rng rng(7);
  std::vector<double> samples;
  const double lambda = 0.01;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.exponential(lambda));
  const ExponentialFit fit = fit_exponential(samples);
  EXPECT_NEAR(fit.lambda, lambda, lambda * 0.03);
  EXPECT_NEAR(fit.mean, 1.0 / lambda, 0.03 / lambda);
  EXPECT_GT(fit.r_squared, 0.98);  // exponential data: log-CCDF is linear
  EXPECT_EQ(fit.samples, 50000u);
}

TEST(FitExponential, UniformDataFitsWorseThanExponential) {
  Rng rng(8);
  std::vector<double> expo, unif;
  for (int i = 0; i < 20000; ++i) {
    expo.push_back(rng.exponential(1.0));
    unif.push_back(rng.uniform(0.0, 2.0));
  }
  EXPECT_GT(fit_exponential(expo).r_squared,
            fit_exponential(unif).r_squared);
}

TEST(FitExponential, EmptyAndDegenerate) {
  EXPECT_EQ(fit_exponential({}).samples, 0u);
  const auto fit = fit_exponential({0.0, 0.0});
  EXPECT_DOUBLE_EQ(fit.lambda, 0.0);  // zero mean -> no rate
}

TEST(FitExponential, NegativeSampleThrows) {
  EXPECT_THROW(fit_exponential({1.0, -2.0}), PreconditionError);
}

}  // namespace
}  // namespace dtn
