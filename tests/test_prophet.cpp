// Unit tests for the PRoPHET router: table dynamics (encounter, aging,
// transitivity) and forwarding decisions.
#include <gtest/gtest.h>

#include <memory>

#include "src/buffer/fifo.hpp"
#include "src/core/node.hpp"
#include "src/mobility/stationary.hpp"
#include "src/routing/prophet.hpp"

namespace dtn {
namespace {

Message msg(MessageId id, NodeId src, NodeId dst) {
  Message m;
  m.id = id;
  m.source = src;
  m.destination = dst;
  m.size = 100;
  m.created = 0.0;
  m.ttl = 10000.0;
  return m;
}

class ProphetTest : public ::testing::Test {
 protected:
  ProphetTest() : policy_(std::make_unique<FifoPolicy>()) {}

  Node make_node(NodeId id) {
    return Node(id, std::make_unique<StationaryModel>(Vec2{0, 0}), 100000,
                &router_, policy_.get(), arena_);
  }

  PolicyContext ctx(const Node& n, SimTime now) {
    PolicyContext c;
    c.now = now;
    c.n_nodes = 10;
    c.node = &n;
    return c;
  }

  MessageArena arena_;
  ProphetRouter router_;
  std::unique_ptr<FifoPolicy> policy_;
};

TEST_F(ProphetTest, EncounterRaisesPredictability) {
  Node a = make_node(0), b = make_node(1);
  EXPECT_DOUBLE_EQ(router_.predictability(0, 1, 0.0), 0.0);
  router_.on_link_up(a, b, 10.0);
  EXPECT_DOUBLE_EQ(router_.predictability(0, 1, 10.0), 0.75);
  EXPECT_DOUBLE_EQ(router_.predictability(1, 0, 10.0), 0.75);
  // A second encounter raises it further: P += (1-P)·P_init.
  router_.on_link_up(a, b, 20.0);
  EXPECT_GT(router_.predictability(0, 1, 20.0), 0.75);
  EXPECT_LT(router_.predictability(0, 1, 20.0), 1.0);
}

TEST_F(ProphetTest, PredictabilityAgesOverTime) {
  Node a = make_node(0), b = make_node(1);
  router_.on_link_up(a, b, 0.0);
  const double fresh = router_.predictability(0, 1, 0.0);
  const double later = router_.predictability(0, 1, 3000.0);
  EXPECT_LT(later, fresh);
  EXPECT_GT(later, 0.0);
  // γ^(3000/30) = 0.98^100.
  EXPECT_NEAR(later, fresh * std::pow(0.98, 100.0), 1e-9);
}

TEST_F(ProphetTest, TransitivityPropagates) {
  Node a = make_node(0), b = make_node(1), c = make_node(2);
  // b meets c, then a meets b: a should gain predictability for c.
  router_.on_link_up(b, c, 0.0);
  router_.on_link_up(a, b, 1.0);
  const double p_ac = router_.predictability(0, 2, 1.0);
  EXPECT_GT(p_ac, 0.0);
  // P(a,c) = P(a,b)·P(b,c)·β with fresh values 0.75·~0.75·0.25.
  EXPECT_NEAR(p_ac, 0.75 * router_.predictability(1, 2, 1.0) * 0.25, 1e-6);
  // And direct contact dominates the transitive estimate.
  EXPECT_GT(router_.predictability(1, 2, 1.0), p_ac);
}

TEST_F(ProphetTest, ForwardsOnlyTowardBetterRelay) {
  Node a = make_node(0), b = make_node(1), dest = make_node(5);
  a.buffer().try_insert(msg(1, 0, 5));

  // Neither has met node 5: no replication.
  router_.on_link_up(a, b, 0.0);
  EXPECT_FALSE(router_.next_to_send(a, b, ctx(a, 0.0)).has_value());

  // b meets the destination: now b is the better relay.
  router_.on_link_up(b, dest, 5.0);
  const auto next = router_.next_to_send(a, b, ctx(a, 6.0));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 1u);

  // The reverse direction must not pull the message back.
  b.buffer().try_insert(msg(1, 0, 5));
  a.buffer().take(1);
  EXPECT_FALSE(router_.next_to_send(b, a, ctx(b, 7.0)).has_value());
}

TEST_F(ProphetTest, DeliverableAlwaysSent) {
  Node a = make_node(0), dest = make_node(5);
  a.buffer().try_insert(msg(1, 0, 5));
  const auto next = router_.next_to_send(a, dest, ctx(a, 0.0));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 1u);
}

TEST_F(ProphetTest, RelayCopySemantics) {
  Message copy = msg(1, 0, 5);
  copy.hops = 2;
  const Message relay = router_.make_relay_copy(copy, 9.0);
  EXPECT_EQ(relay.hops, 3);
  EXPECT_DOUBLE_EQ(relay.received, 9.0);
  EXPECT_TRUE(router_.on_sent(copy, false, 9.0));  // sender keeps a copy
  EXPECT_EQ(copy.forwards, 1);
}

}  // namespace
}  // namespace dtn
