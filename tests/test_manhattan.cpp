// Unit tests for the Manhattan-grid mobility model.
#include <gtest/gtest.h>

#include <cmath>

#include "src/mobility/manhattan_grid.hpp"

namespace dtn {
namespace {

ManhattanGridConfig cfg(double w = 900.0, double h = 700.0,
                        std::size_t bx = 9, std::size_t by = 7) {
  ManhattanGridConfig c;
  c.area = Rect::sized(w, h);
  c.blocks_x = bx;
  c.blocks_y = by;
  c.v_min = c.v_max = 5.0;
  return c;
}

// Distance from p to the nearest street line of the grid.
double street_distance(const ManhattanGridConfig& c, Vec2 p) {
  const double sx = c.area.width() / static_cast<double>(c.blocks_x);
  const double sy = c.area.height() / static_cast<double>(c.blocks_y);
  const double dx = std::fabs(std::remainder(p.x - c.area.min.x, sx));
  const double dy = std::fabs(std::remainder(p.y - c.area.min.y, sy));
  return std::min(dx, dy);
}

TEST(ManhattanGrid, StaysInsideArea) {
  auto c = cfg();
  ManhattanGridModel m(c, Rng(1));
  for (int i = 0; i < 5000; ++i) {
    m.advance(1.0);
    EXPECT_TRUE(c.area.contains(m.position()));
  }
}

TEST(ManhattanGrid, StaysOnStreets) {
  auto c = cfg();
  ManhattanGridModel m(c, Rng(2));
  for (int i = 0; i < 2000; ++i) {
    m.advance(1.0);
    EXPECT_LT(street_distance(c, m.position()), 1e-6);
  }
}

TEST(ManhattanGrid, MovesAxisAligned) {
  auto c = cfg();
  ManhattanGridModel m(c, Rng(3));
  Vec2 prev = m.position();
  for (int i = 0; i < 1000; ++i) {
    m.advance(0.5);
    const Vec2 d = m.position() - prev;
    // Within one step the movement may round a corner; at least one axis
    // displacement must dominate (no diagonal shortcuts through blocks).
    EXPECT_LE(std::min(std::fabs(d.x), std::fabs(d.y)),
              5.0 * 0.5 + 1e-9);
    prev = m.position();
  }
}

TEST(ManhattanGrid, SpeedBounded) {
  auto c = cfg();
  c.v_min = 2.0;
  c.v_max = 6.0;
  ManhattanGridModel m(c, Rng(4));
  Vec2 prev = m.position();
  for (int i = 0; i < 1000; ++i) {
    m.advance(1.0);
    EXPECT_LE(distance(prev, m.position()), 6.0 + 1e-9);
    prev = m.position();
  }
}

TEST(ManhattanGrid, CoversManyIntersectionsOverTime) {
  auto c = cfg();
  ManhattanGridModel m(c, Rng(5));
  std::set<std::pair<std::size_t, std::size_t>> visited;
  for (int i = 0; i < 20000; ++i) {
    m.advance(2.0);
    visited.emplace(m.target_ix(), m.target_iy());
  }
  // Should explore a good share of the (bx+1)*(by+1) = 80 intersections.
  EXPECT_GT(visited.size(), 30u);
}

TEST(ManhattanGrid, DeterministicGivenSeed) {
  auto c = cfg();
  ManhattanGridModel a(c, Rng(6)), b(c, Rng(6));
  for (int i = 0; i < 500; ++i) {
    a.advance(1.0);
    b.advance(1.0);
    EXPECT_EQ(a.position(), b.position());
  }
}

TEST(ManhattanGrid, RejectsBadConfig) {
  auto c = cfg();
  c.blocks_x = 0;
  EXPECT_THROW(ManhattanGridModel(c, Rng(1)), PreconditionError);
  c = cfg();
  c.p_turn = 1.5;
  EXPECT_THROW(ManhattanGridModel(c, Rng(1)), PreconditionError);
  c = cfg();
  c.v_min = 0.0;
  EXPECT_THROW(ManhattanGridModel(c, Rng(1)), PreconditionError);
}

}  // namespace
}  // namespace dtn
