// Unit tests for the GlobalRegistry ground-truth bookkeeping.
#include <gtest/gtest.h>

#include "src/core/oracle.hpp"
#include "src/util/error.hpp"

namespace dtn {
namespace {

TEST(GlobalRegistry, CreatedMessageHasSourceHolderOnly) {
  GlobalRegistry r;
  r.on_created(1, 5);
  EXPECT_TRUE(r.known(1));
  EXPECT_DOUBLE_EQ(r.m_seen(1), 0.0);      // m excludes the source
  EXPECT_DOUBLE_EQ(r.n_holding(1), 1.0);   // the source holds it
  EXPECT_DOUBLE_EQ(r.drops(1), 0.0);
}

TEST(GlobalRegistry, UnknownMessageReadsAsZero) {
  GlobalRegistry r;
  EXPECT_FALSE(r.known(42));
  EXPECT_DOUBLE_EQ(r.m_seen(42), 0.0);
  EXPECT_DOUBLE_EQ(r.n_holding(42), 0.0);
  EXPECT_DOUBLE_EQ(r.drops(42), 0.0);
}

TEST(GlobalRegistry, DuplicateCreateThrows) {
  GlobalRegistry r;
  r.on_created(1, 0);
  EXPECT_THROW(r.on_created(1, 0), PreconditionError);
}

TEST(GlobalRegistry, ReceiveGrowsSeenAndHolders) {
  GlobalRegistry r;
  r.on_created(1, 0);
  r.on_copy_received(1, 2);
  r.on_copy_received(1, 3);
  EXPECT_DOUBLE_EQ(r.m_seen(1), 2.0);
  EXPECT_DOUBLE_EQ(r.n_holding(1), 3.0);
  // Re-receiving at the same node is idempotent for both sets.
  r.on_copy_received(1, 2);
  EXPECT_DOUBLE_EQ(r.m_seen(1), 2.0);
  EXPECT_DOUBLE_EQ(r.n_holding(1), 3.0);
}

TEST(GlobalRegistry, SourceReceiptDoesNotCountTowardSeen) {
  GlobalRegistry r;
  r.on_created(1, 0);
  r.on_copy_received(1, 0);
  EXPECT_DOUBLE_EQ(r.m_seen(1), 0.0);
}

TEST(GlobalRegistry, RemovalUpdatesHoldersAndDrops) {
  GlobalRegistry r;
  r.on_created(1, 0);
  r.on_copy_received(1, 2);
  r.on_copy_removed(1, 2, /*dropped=*/true);
  EXPECT_DOUBLE_EQ(r.n_holding(1), 1.0);
  EXPECT_DOUBLE_EQ(r.drops(1), 1.0);
  // Seen is history, not current state.
  EXPECT_DOUBLE_EQ(r.m_seen(1), 1.0);
  r.on_copy_removed(1, 0, /*dropped=*/false);  // TTL, not a drop
  EXPECT_DOUBLE_EQ(r.n_holding(1), 0.0);
  EXPECT_DOUBLE_EQ(r.drops(1), 1.0);
}

TEST(GlobalRegistry, OperationsOnUnknownMessageThrow) {
  GlobalRegistry r;
  EXPECT_THROW(r.on_copy_received(9, 1), PreconditionError);
  EXPECT_THROW(r.on_copy_removed(9, 1, true), PreconditionError);
}

TEST(GlobalRegistry, DropAndRereceiveCycle) {
  GlobalRegistry r;
  r.on_created(1, 0);
  r.on_copy_received(1, 2);
  r.on_copy_removed(1, 2, true);
  r.on_copy_received(1, 2);  // node 2 takes it again
  EXPECT_DOUBLE_EQ(r.n_holding(1), 2.0);
  EXPECT_DOUBLE_EQ(r.m_seen(1), 1.0);
  EXPECT_DOUBLE_EQ(r.drops(1), 1.0);
}

}  // namespace
}  // namespace dtn
