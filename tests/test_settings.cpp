// Unit tests for the ONE-style settings parser.
#include <gtest/gtest.h>

#include <fstream>

#include "src/util/error.hpp"
#include "src/util/settings.hpp"

namespace dtn {
namespace {

TEST(Trim, Basics) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\r\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Split, CommaList) {
  const auto parts = split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Settings, ParseBasics) {
  const auto s = Settings::parse(R"(
    # a comment
    World.nodes = 100
    World.range = 100.5   # trailing comment
    Router.name = spray-and-wait
  )");
  EXPECT_EQ(s.get_int("World.nodes"), 100);
  EXPECT_DOUBLE_EQ(s.get_double("World.range"), 100.5);
  EXPECT_EQ(s.get_string("Router.name"), "spray-and-wait");
}

TEST(Settings, LaterAssignmentWins) {
  const auto s = Settings::parse("k = 1\nk = 2\n");
  EXPECT_EQ(s.get_int("k"), 2);
}

TEST(Settings, MissingKeyThrows) {
  const Settings s;
  EXPECT_THROW(s.get_string("nope"), PreconditionError);
  EXPECT_FALSE(s.has("nope"));
}

TEST(Settings, MalformedLineThrows) {
  EXPECT_THROW(Settings::parse("just some text\n"), PreconditionError);
  EXPECT_THROW(Settings::parse("= value\n"), PreconditionError);
}

TEST(Settings, NumericValidation) {
  const auto s = Settings::parse("a = 12x\nb = 3.5\nc = 7\n");
  EXPECT_THROW(s.get_double("a"), PreconditionError);
  EXPECT_THROW(s.get_int("a"), PreconditionError);
  EXPECT_DOUBLE_EQ(s.get_double("b"), 3.5);
  EXPECT_EQ(s.get_int("c"), 7);
}

TEST(Settings, Booleans) {
  const auto s =
      Settings::parse("t1 = true\nt2 = YES\nt3 = 1\nf1 = off\nbad = maybe\n");
  EXPECT_TRUE(s.get_bool("t1"));
  EXPECT_TRUE(s.get_bool("t2"));
  EXPECT_TRUE(s.get_bool("t3"));
  EXPECT_FALSE(s.get_bool("f1"));
  EXPECT_THROW(s.get_bool("bad"), PreconditionError);
}

TEST(Settings, Defaults) {
  const Settings s;
  EXPECT_EQ(s.get_string_or("k", "d"), "d");
  EXPECT_DOUBLE_EQ(s.get_double_or("k", 2.5), 2.5);
  EXPECT_EQ(s.get_int_or("k", 9), 9);
  EXPECT_TRUE(s.get_bool_or("k", true));
}

TEST(Settings, DoubleList) {
  const auto s = Settings::parse("sweep = 2, 2.5, 3\n");
  const auto v = s.get_double_list("sweep");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 2.5);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(Settings, LoadFromFile) {
  const std::string path = "/tmp/dtn_settings_test.txt";
  {
    std::ofstream f(path);
    f << "# comment\nWorld.nodes = 7\n";
  }
  const Settings s = Settings::load(path);
  EXPECT_EQ(s.get_int("World.nodes"), 7);
  EXPECT_THROW(Settings::load("/nonexistent/settings.txt"),
               PreconditionError);
}

TEST(Settings, RoundTripThroughText) {
  Settings s;
  s.set("b.key", "2");
  s.set("a.key", "hello world");
  const Settings s2 = Settings::parse(s.to_text());
  EXPECT_EQ(s2.get_string("a.key"), "hello world");
  EXPECT_EQ(s2.get_int("b.key"), 2);
  EXPECT_EQ(s2.keys().size(), 2u);
}

}  // namespace
}  // namespace dtn
