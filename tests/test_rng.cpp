// Unit tests for the deterministic RNG stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/util/rng.hpp"

namespace dtn {
namespace {

TEST(SplitMix64, DeterministicKnownStream) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, JumpDecorrelates) {
  Xoshiro256StarStar a(7), b(7);
  b.jump();
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(2);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 11.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 11.0);
  }
}

TEST(Rng, UniformEmptyRangeThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 9));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntUnbiasedMean) {
  Rng rng(6);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.uniform_int(0, 9));
  EXPECT_NEAR(sum / n, 4.5, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(7);
  const double lambda = 0.25;
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.08);
}

TEST(Rng, ExponentialRequiresPositiveRate) {
  Rng rng(8);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, ParetoHeavyTailExceedsExponential) {
  // With alpha = 1.2 the Pareto should produce far more >10*xm outliers
  // than an exponential of equal scale would.
  Rng rng(10);
  int outliers = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.pareto(1.0, 1.2) > 10.0) ++outliers;
  }
  EXPECT_GT(outliers, n / 100);  // ~ n * 10^-1.2 ≈ 6%
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(13);
  const std::vector<double> w{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.weighted_index(w)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(14);
  EXPECT_THROW(rng.weighted_index({}), PreconditionError);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), PreconditionError);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), PreconditionError);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng a(99), b(99);
  Rng fa = a.fork(1);
  Rng fb = b.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());

  Rng c(99);
  Rng f1 = c.fork(1);
  // A different tag from the same parent state position gives a new stream.
  Rng d(99);
  Rng f2 = d.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngState, ExportedStateReproducesDrawSequence) {
  Rng a(2024);
  // Burn some draws so the exported state is mid-stream, not the seed.
  for (int i = 0; i < 37; ++i) a.next_u64();
  a.uniform(0.0, 1.0);
  a.normal(5.0, 2.0);

  const std::array<std::uint64_t, 4> saved = a.state();
  Rng b(1);  // deliberately different seed; set_state must fully override
  b.set_state(saved);

  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_EQ(a.uniform(0.0, 10.0), b.uniform(0.0, 10.0));
  EXPECT_EQ(a.exponential(0.5), b.exponential(0.5));
  // Box-Muller keeps no cached spare: the state is the whole story.
  EXPECT_EQ(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
}

TEST(RngState, RestoreMidStreamResumesExactly) {
  Rng reference(7);
  std::vector<std::uint64_t> draws;
  for (int i = 0; i < 100; ++i) draws.push_back(reference.next_u64());

  Rng replay(7);
  for (int i = 0; i < 40; ++i) replay.next_u64();
  const auto checkpoint = replay.state();
  for (int i = 0; i < 20; ++i) replay.next_u64();  // wander off...
  replay.set_state(checkpoint);                    // ...and rewind.
  for (int i = 40; i < 100; ++i) EXPECT_EQ(replay.next_u64(), draws[i]);
}

TEST(RngState, ForkAfterRestoreMatchesForkBeforeSave) {
  Rng a(314);
  for (int i = 0; i < 10; ++i) a.next_u64();
  const auto saved = a.state();
  Rng fork_before = a.fork(42);

  Rng b(999);
  b.set_state(saved);
  Rng fork_after = b.fork(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fork_before.next_u64(), fork_after.next_u64());
  }
  // The parents advanced identically through the fork, too.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngState, XoshiroStateRoundTrip) {
  Xoshiro256StarStar g(555);
  for (int i = 0; i < 9; ++i) g();
  const auto s = g.state();
  Xoshiro256StarStar h(0);
  h.set_state(s);
  EXPECT_EQ(h.state(), s);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(g(), h());
}

class RngDistributionBounds : public ::testing::TestWithParam<double> {};

TEST_P(RngDistributionBounds, ExponentialAlwaysNonNegative) {
  Rng rng(123);
  const double lambda = GetParam();
  for (int i = 0; i < 5000; ++i) EXPECT_GE(rng.exponential(lambda), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, RngDistributionBounds,
                         ::testing::Values(1e-4, 0.01, 1.0, 100.0));

}  // namespace
}  // namespace dtn
