// End-to-end integration tests: full scenarios at reduced scale, checking
// cross-module invariants (conservation laws, registry consistency,
// paper-expected orderings that are robust at small scale).
#include <gtest/gtest.h>

#include "src/config/scenario.hpp"
#include "src/report/sweep.hpp"

namespace dtn {
namespace {

// A scaled-down Table II world that runs in tens of milliseconds.
Scenario small_scenario(const std::string& policy, std::uint64_t seed = 1) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 30;
  sc.world.duration = 6000.0;
  sc.rwp.area = Rect::sized(1500.0, 1200.0);
  sc.traffic.interval_min = 30.0;
  sc.traffic.interval_max = 40.0;
  sc.traffic.ttl = 3000.0;
  sc.traffic.initial_copies = 8;
  sc.policy = policy;
  sc.seed = seed;
  return sc;
}

TEST(Integration, MessagesFlowEndToEnd) {
  auto world = build_world(small_scenario("fifo"));
  world->run();
  const SimStats& s = world->stats();
  EXPECT_GT(s.created, 100u);
  EXPECT_GT(s.delivered, 10u);
  EXPECT_GT(s.transfers_completed, s.delivered);
  EXPECT_GT(s.avg_hopcount(), 1.0);
  EXPECT_LE(s.delivery_ratio(), 1.0);
}

TEST(Integration, TtlExpiryHappensAtScale) {
  Scenario sc = small_scenario("fifo");
  sc.buffer_capacity = 20'000'000;  // roomy: copies live long enough
  auto world = build_world(sc);
  world->run();
  // TTL (3000 s) is half the sim: undelivered copies must be purged.
  EXPECT_GT(world->stats().ttl_expired, 0u);
}

TEST(Integration, CongestionCausesDrops) {
  Scenario sc = small_scenario("fifo");
  sc.buffer_capacity = 1'000'000;  // two messages per node
  auto world = build_world(sc);
  world->run();
  EXPECT_GT(world->stats().drops, 0u);
}

class IntegrationEveryPolicy : public ::testing::TestWithParam<const char*> {};

TEST_P(IntegrationEveryPolicy, RunsAndDelivers) {
  auto world = build_world(small_scenario(GetParam()));
  world->run();
  EXPECT_GT(world->stats().delivered, 0u) << GetParam();
  // Counters must satisfy basic conservation.
  const SimStats& s = world->stats();
  EXPECT_GE(s.transfers_started,
            s.transfers_completed + s.transfers_aborted - s.admission_rejected);
  EXPECT_LE(s.delivered, s.created);
}

INSTANTIATE_TEST_SUITE_P(Policies, IntegrationEveryPolicy,
                         ::testing::Values("fifo", "drop-tail", "lifo",
                                           "random", "ttl-ratio",
                                           "copies-ratio", "mofo", "sdsrp",
                                           "sdsrp-oracle", "drop-largest",
                                           "gbsd", "gbsd-delay"));

class IntegrationEveryRouter : public ::testing::TestWithParam<const char*> {};

TEST_P(IntegrationEveryRouter, RunsAndDelivers) {
  Scenario sc = small_scenario("fifo");
  sc.router = GetParam();
  auto world = build_world(sc);
  world->run();
  EXPECT_GT(world->stats().delivered, 0u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Routers, IntegrationEveryRouter,
                         ::testing::Values("spray-and-wait",
                                           "spray-and-wait-source",
                                           "epidemic", "direct-delivery",
                                           "first-contact",
                                           "spray-and-focus", "prophet"));

TEST(Integration, RegistryMatchesBuffersExactly) {
  auto world = build_world(small_scenario("sdsrp"));
  world->run_until(3000.0);
  // For every message in any buffer, the registry must list that node as
  // a holder; and total holder count must match the number of buffered
  // copies (one copy per node per message by construction).
  std::unordered_map<MessageId, std::size_t> held;
  for (NodeId id = 0; id < world->node_count(); ++id) {
    for (const auto& m : world->node(id).buffer().messages()) {
      ++held[m.id];
    }
  }
  for (const auto& [msg, count] : held) {
    EXPECT_DOUBLE_EQ(world->registry().n_holding(msg),
                     static_cast<double>(count))
        << "message " << msg;
  }
}

TEST(Integration, SprayCopyCountsNeverExceedBudget) {
  auto world = build_world(small_scenario("fifo"));
  world->run_until(3000.0);
  // Sum of copy tokens across the network never exceeds the initial
  // budget (tokens are split, dropped, or expire — never duplicated).
  std::unordered_map<MessageId, int> tokens;
  int budget = 0;
  for (NodeId id = 0; id < world->node_count(); ++id) {
    for (const auto& m : world->node(id).buffer().messages()) {
      tokens[m.id] += m.copies;
      budget = m.initial_copies;
    }
  }
  for (const auto& [msg, total] : tokens) {
    EXPECT_LE(total, budget) << "message " << msg;
    EXPECT_GE(total, 1) << "message " << msg;
  }
}

TEST(Integration, DirectDeliveryHopcountIsOne) {
  Scenario sc = small_scenario("fifo");
  sc.router = "direct-delivery";
  auto world = build_world(sc);
  world->run();
  ASSERT_GT(world->stats().delivered, 0u);
  EXPECT_DOUBLE_EQ(world->stats().avg_hopcount(), 1.0);
}

TEST(Integration, EpidemicDominatesDirectDeliveryUncongested) {
  Scenario base = small_scenario("fifo");
  base.buffer_capacity = 50'000'000;  // effectively infinite
  base.traffic.interval_min = 100.0;  // light load
  base.traffic.interval_max = 120.0;

  Scenario direct = base;
  direct.router = "direct-delivery";
  Scenario epidemic = base;
  epidemic.router = "epidemic";
  const auto d = run_scenario(direct);
  const auto e = run_scenario(epidemic);
  EXPECT_GT(e.delivery_ratio, d.delivery_ratio);
  EXPECT_LT(d.avg_latency, 1e9);
}

TEST(Integration, MoreCopiesRaiseUncongestedDelivery) {
  Scenario lo = small_scenario("fifo");
  lo.buffer_capacity = 50'000'000;
  lo.traffic.initial_copies = 1;  // degenerates to direct delivery
  Scenario hi = lo;
  hi.traffic.initial_copies = 8;
  EXPECT_LT(run_scenario(lo).delivery_ratio,
            run_scenario(hi).delivery_ratio);
}

TEST(Integration, BiggerBuffersNeverHurtFifo) {
  Scenario tight = small_scenario("fifo");
  tight.buffer_capacity = 1'000'000;
  Scenario roomy = small_scenario("fifo");
  roomy.buffer_capacity = 8'000'000;
  const auto t = run_scenario(tight);
  const auto r = run_scenario(roomy);
  EXPECT_GE(r.delivery_ratio, t.delivery_ratio - 0.02);
}

TEST(Integration, SdsrpOverheadWellBelowFifo) {
  // The most robust of the paper's claims (Fig. 8c/f/i): SDSRP's
  // overhead ratio is far below FIFO's under congestion.
  Scenario fifo_sc = small_scenario("fifo");
  fifo_sc.buffer_capacity = 1'000'000;   // two slots: heavy congestion
  fifo_sc.traffic.interval_min = 15.0;
  fifo_sc.traffic.interval_max = 20.0;
  Scenario sdsrp_sc = fifo_sc;
  sdsrp_sc.policy = "sdsrp";
  const auto fifo = run_replicated(fifo_sc, 3);
  const auto sdsrp = run_replicated(sdsrp_sc, 3);
  EXPECT_LT(sdsrp.overhead_ratio.mean(), 0.7 * fifo.overhead_ratio.mean());
}

TEST(Integration, SdsrpDeliveryBeatsFifoUnderHeavyCongestion) {
  // The regime the paper emphasizes (small buffers, fast generation):
  // SDSRP must deliver at least as much as plain FIFO Spray-and-Wait.
  Scenario fifo_sc = small_scenario("fifo");
  fifo_sc.buffer_capacity = 1'000'000;  // two slots
  fifo_sc.traffic.interval_min = 10.0;
  fifo_sc.traffic.interval_max = 15.0;
  Scenario sdsrp_sc = fifo_sc;
  sdsrp_sc.policy = "sdsrp";
  const auto fifo = run_replicated(fifo_sc, 3);
  const auto sdsrp = run_replicated(sdsrp_sc, 3);
  EXPECT_GE(sdsrp.delivery_ratio.mean(), fifo.delivery_ratio.mean());
}

TEST(Integration, AckGossipKeepsInvariantsAndImprovesSdsrp) {
  Scenario base = small_scenario("sdsrp");
  base.buffer_capacity = 1'000'000;
  Scenario acked = base;
  acked.world.ack_gossip = true;
  const auto plain = run_replicated(base, 2);
  const auto with_ack = run_replicated(acked, 2);
  EXPECT_GE(with_ack.delivery_ratio.mean(),
            plain.delivery_ratio.mean() - 0.02);
}

TEST(Integration, SdsrpHopcountBelowFifo) {
  // Paper Fig. 8b: SDSRP uses fewer hops than plain Spray-and-Wait.
  const auto fifo = run_replicated(small_scenario("fifo"), 3);
  const auto sdsrp = run_replicated(small_scenario("sdsrp"), 3);
  EXPECT_LT(sdsrp.avg_hopcount.mean(), fifo.avg_hopcount.mean());
}

TEST(Integration, ReplicatedRunsReduceVariance) {
  const auto m = run_replicated(small_scenario("fifo"), 4);
  EXPECT_EQ(m.delivery_ratio.count(), 4u);
  EXPECT_GT(m.delivery_ratio.mean(), 0.0);
  EXPECT_GE(m.delivery_ratio.ci95_half_width(), 0.0);
}

TEST(Integration, SweepRunnerMatchesDirectRuns) {
  ThreadPool pool(2);
  std::vector<SweepPoint> points;
  for (int copies : {4, 8}) {
    SweepPoint p;
    p.x = copies;
    p.scenario = small_scenario("fifo");
    p.scenario.traffic.initial_copies = copies;
    points.push_back(std::move(p));
  }
  const auto parallel = run_sweep(points, 2, &pool);
  const auto serial = run_sweep(points, 2, nullptr);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel[i].delivery_ratio.mean(),
                     serial[i].delivery_ratio.mean());
    EXPECT_DOUBLE_EQ(parallel[i].overhead_ratio.mean(),
                     serial[i].overhead_ratio.mean());
  }
}

}  // namespace
}  // namespace dtn
