// Archive backward compatibility.
//
// tests/fixtures/ holds small checkpoints written by the actual v1–v5
// code (generated from the historical commits; see fixtures/manifest.txt).
// The current reader must restore each one bit-for-bit (pinned restore
// digest) and resume it to the end of the run deterministically (pinned
// end digest).
//
// v2–v5 additionally must finish *equal to a current cold run*: what
// those versions added (idle memo, kinetic contact bookkeeping, fault
// state defaults, arena sizing hints) is derived-but-deterministic
// state, so losing it cannot change decisions.
// v1 predates the priority cache, so a v1 resume legitimately diverges
// from a warm-cache cold run (staleness within the refresh quantum); its
// end digest is pinned instead.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "src/config/scenario.hpp"
#include "src/snapshot/checkpoint.hpp"

#ifndef DTN_FIXTURE_DIR
#error "DTN_FIXTURE_DIR must point at tests/fixtures"
#endif

namespace dtn {
namespace {

struct Pinned {
  std::uint64_t restore_digest = 0;
  std::uint64_t end_digest = 0;
};

std::map<std::string, Pinned> load_manifest() {
  std::map<std::string, Pinned> pins;
  std::ifstream is(std::string(DTN_FIXTURE_DIR) + "/manifest.txt");
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string file, restore_hex, end_hex;
    ls >> file >> restore_hex >> end_hex;
    pins[file] = Pinned{std::stoull(restore_hex, nullptr, 16),
                        std::stoull(end_hex, nullptr, 16)};
  }
  return pins;
}

// The scenario the fixtures were generated from (the historical
// generators used the same literals; the checkpoint embeds it anyway).
Scenario fixture_scenario() {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 24;
  sc.world.duration = 4000.0;
  sc.rwp.area = Rect::sized(1500.0, 1200.0);
  sc.traffic.interval_min = 30.0;
  sc.traffic.interval_max = 40.0;
  sc.traffic.ttl = 2000.0;
  sc.traffic.initial_copies = 8;
  sc.policy = "sdsrp";
  sc.seed = 7;
  return sc;
}

class ArchiveCompat : public ::testing::TestWithParam<const char*> {};

TEST_P(ArchiveCompat, OldCheckpointRestoresAndResumes) {
  const std::string file = GetParam();
  const auto pins = load_manifest();
  const auto it = pins.find(file);
  ASSERT_NE(it, pins.end()) << "no manifest entry for " << file;

  auto restored = snapshot::restore_checkpoint(
      std::string(DTN_FIXTURE_DIR) + "/" + file);
  EXPECT_EQ(restored.scenario.seed, 7u);
  EXPECT_EQ(restored.scenario.policy, "sdsrp");
  EXPECT_EQ(restored.world->now(), 2000.0);
  EXPECT_EQ(restored.world->digest(), it->second.restore_digest)
      << file << ": restored state drifted";

  restored.world->run();
  EXPECT_EQ(restored.world->digest(), it->second.end_digest)
      << file << ": resumed run drifted";
}

INSTANTIATE_TEST_SUITE_P(Versions, ArchiveCompat,
                         ::testing::Values("v1_rwp_sdsrp.ckpt",
                                           "v2_rwp_sdsrp.ckpt",
                                           "v3_rwp_sdsrp.ckpt",
                                           "v4_rwp_sdsrp.ckpt",
                                           "v5_rwp_sdsrp.ckpt"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param).substr(0, 2);
                         });

TEST(ArchiveCompat, DerivedStateVersionsFinishEqualToColdRun) {
  auto cold = build_world(fixture_scenario());
  cold->run();
  const std::uint64_t cold_digest = cold->digest();
  for (const char* file :
       {"v2_rwp_sdsrp.ckpt", "v3_rwp_sdsrp.ckpt", "v4_rwp_sdsrp.ckpt",
        "v5_rwp_sdsrp.ckpt"}) {
    auto restored = snapshot::restore_checkpoint(
        std::string(DTN_FIXTURE_DIR) + "/" + file);
    restored.world->run();
    EXPECT_EQ(restored.world->digest(), cold_digest)
        << file << ": losing derived state changed decisions";
  }
}

}  // namespace
}  // namespace dtn
