// Tests for the Fig. 5 dropped-list gossip structure.
#include <gtest/gtest.h>

#include "src/sdsrp/dropped_list.hpp"

namespace dtn::sdsrp {
namespace {

TEST(DroppedList, StartsEmpty) {
  DroppedList d(3);
  EXPECT_EQ(d.owner(), 3u);
  EXPECT_DOUBLE_EQ(d.count_drops(1), 0.0);
  EXPECT_FALSE(d.has_own_drop(1));
  EXPECT_EQ(d.known_records(), 0u);
}

TEST(DroppedList, RecordsOwnDrops) {
  DroppedList d(3);
  d.record_local_drop(10, 5.0);
  d.record_local_drop(11, 6.0);
  EXPECT_TRUE(d.has_own_drop(10));
  EXPECT_TRUE(d.has_own_drop(11));
  EXPECT_FALSE(d.has_own_drop(12));
  EXPECT_DOUBLE_EQ(d.count_drops(10), 1.0);
  EXPECT_EQ(d.known_records(), 1u);
}

TEST(DroppedList, MergeAdoptsOtherRecords) {
  DroppedList a(0), b(1);
  b.record_local_drop(10, 5.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.count_drops(10), 1.0);
  EXPECT_FALSE(a.has_own_drop(10));  // not a's own drop
}

TEST(DroppedList, MergeKeepsNewestRecordPerOwner) {
  DroppedList a(0), b(1), c(2);
  // b drops 10 at t=5; c learns it; then b drops 11 at t=9.
  b.record_local_drop(10, 5.0);
  c.merge_from(b);
  b.record_local_drop(11, 9.0);
  // a first hears the stale record via c, then the fresh one from b.
  a.merge_from(c);
  EXPECT_DOUBLE_EQ(a.count_drops(11), 0.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.count_drops(11), 1.0);
  EXPECT_DOUBLE_EQ(a.count_drops(10), 1.0);
}

TEST(DroppedList, StaleRecordDoesNotOverwriteFresh) {
  DroppedList a(0), b(1), c(2);
  b.record_local_drop(10, 5.0);
  c.merge_from(b);          // c holds b@5
  b.record_local_drop(11, 9.0);
  a.merge_from(b);          // a holds b@9
  a.merge_from(c);          // stale b@5 must not clobber b@9
  EXPECT_DOUBLE_EQ(a.count_drops(11), 1.0);
}

TEST(DroppedList, GossipNeverTouchesOwnRecord) {
  DroppedList a(0), b(1);
  a.record_local_drop(10, 5.0);
  // b fabricates a record claiming to be node 0 (or simply carries an old
  // copy of a's record); a must ignore it.
  b.record_local_drop(99, 50.0);
  DroppedList carrier(2);
  carrier.merge_from(a);  // carrier holds a@5
  a.record_local_drop(12, 7.0);
  a.merge_from(carrier);  // must not roll a's own record back
  EXPECT_TRUE(a.has_own_drop(12));
}

TEST(DroppedList, CountDropsAcrossManyNodes) {
  DroppedList observer(0);
  for (std::size_t node = 1; node <= 5; ++node) {
    DroppedList other(node);
    other.record_local_drop(42, static_cast<double>(node));
    observer.merge_from(other);
  }
  EXPECT_DOUBLE_EQ(observer.count_drops(42), 5.0);
  EXPECT_EQ(observer.known_records(), 5u);
}

TEST(DroppedList, ForgetMessageRemovesEverywhere) {
  DroppedList a(0), b(1);
  a.record_local_drop(7, 1.0);
  b.record_local_drop(7, 2.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.count_drops(7), 2.0);
  a.forget_message(7);
  EXPECT_DOUBLE_EQ(a.count_drops(7), 0.0);
}

TEST(DroppedList, TransitiveGossipPropagates) {
  // a -> b -> c without a ever meeting c.
  DroppedList a(0), b(1), c(2);
  a.record_local_drop(10, 1.0);
  b.merge_from(a);
  c.merge_from(b);
  EXPECT_DOUBLE_EQ(c.count_drops(10), 1.0);
}

}  // namespace
}  // namespace dtn::sdsrp
