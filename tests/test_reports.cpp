// Tests for report builders and the sweep runner.
#include <gtest/gtest.h>

#include <sstream>

#include "src/report/reports.hpp"
#include "src/report/sweep.hpp"
#include "src/util/rng.hpp"

namespace dtn {
namespace {

SimStats sample_stats() {
  SimStats s;
  s.created = 100;
  s.delivered = 40;
  s.transfers_started = 900;
  s.transfers_completed = 840;
  s.drops = 300;
  for (int i = 0; i < 40; ++i) {
    s.hopcounts.add(2.0 + i % 3);
    s.latency.add(100.0 * (i + 1));
  }
  return s;
}

TEST(SimStatsMetrics, Definitions) {
  const SimStats s = sample_stats();
  EXPECT_DOUBLE_EQ(s.delivery_ratio(), 0.4);
  EXPECT_DOUBLE_EQ(s.overhead_ratio(), (840.0 - 40.0) / 40.0);
  EXPECT_NEAR(s.avg_hopcount(), 3.0, 0.1);
  EXPECT_DOUBLE_EQ(s.avg_latency(), 2050.0);
}

TEST(SimStatsMetrics, ZeroGuards) {
  const SimStats empty;
  EXPECT_DOUBLE_EQ(empty.delivery_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(empty.overhead_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(empty.avg_hopcount(), 0.0);
}

TEST(MessageStatsTable, ContainsAllCounters) {
  const Table t = message_stats_table("demo", sample_stats());
  std::ostringstream os;
  t.write_csv(os);
  const std::string csv = os.str();
  for (const char* key :
       {"delivery_ratio", "avg_hopcount", "overhead_ratio", "created",
        "delivered", "drops", "ttl_expired"}) {
    EXPECT_NE(csv.find(key), std::string::npos) << key;
  }
  EXPECT_NE(csv.find("demo"), std::string::npos);
}

TEST(ComparisonTable, OneRowPerPolicy) {
  const Table t = comparison_table({"a", "b"},
                                   {sample_stats(), sample_stats()});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_THROW(comparison_table({"a"}, {}), PreconditionError);
}

TEST(IntermeetingReportBuilder, FitsExponentialData) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.exponential(0.001));
  const auto rep = intermeeting_report(samples, 20);
  EXPECT_EQ(rep.table.rows(), 20u);
  EXPECT_NEAR(rep.fit.mean, 1000.0, 30.0);
  EXPECT_GT(rep.fit.r_squared, 0.97);
  EXPECT_EQ(rep.histogram.total(), samples.size());
}

TEST(IntermeetingReportBuilder, RejectsEmpty) {
  EXPECT_THROW(intermeeting_report({}), PreconditionError);
}

TEST(SweepRunner, ReplicasVarySeedOnly) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 15;
  sc.world.duration = 1500.0;
  sc.rwp.area = Rect::sized(800.0, 600.0);
  sc.traffic.ttl = 1000.0;
  const auto reps = run_replicated(sc, 3);
  EXPECT_EQ(reps.delivery_ratio.count(), 3u);
  // Distinct seeds should (essentially always) produce variance.
  EXPECT_GT(reps.delivery_ratio.stddev() + reps.overhead_ratio.stddev(),
            0.0);
  // And the same call again must aggregate to identical numbers.
  const auto again = run_replicated(sc, 3);
  EXPECT_DOUBLE_EQ(reps.delivery_ratio.mean(), again.delivery_ratio.mean());
}

TEST(SweepRunner, StatsOutParameterFilled) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 12;
  sc.world.duration = 1200.0;
  sc.rwp.area = Rect::sized(700.0, 500.0);
  SimStats raw;
  const MetricPoint p = run_scenario(sc, &raw);
  EXPECT_EQ(raw.delivery_ratio(), p.delivery_ratio);
  EXPECT_GT(raw.created, 0u);
}

TEST(SweepRunner, LatencyQuantilesOrdered) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 20;
  sc.world.duration = 3000.0;
  sc.rwp.area = Rect::sized(900.0, 700.0);
  sc.traffic.ttl = 2500.0;
  const MetricPoint p = run_scenario(sc);
  if (p.delivery_ratio > 0.0) {
    EXPECT_GT(p.median_latency, 0.0);
    EXPECT_GE(p.p95_latency, p.median_latency);
  }
}

}  // namespace
}  // namespace dtn
