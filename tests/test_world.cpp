// Kernel integration tests using scripted (stationary) topologies where
// every transfer is predictable.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/buffer/fifo.hpp"
#include "src/buffer/sdsrp_policy.hpp"
#include "src/config/scenario.hpp"
#include "src/core/world.hpp"
#include "src/mobility/stationary.hpp"
#include "src/routing/spray_and_wait.hpp"

namespace dtn {
namespace {

// World with 100 B/s links and 100-byte messages: a transfer takes 1 s.
WorldConfig fast_cfg() {
  WorldConfig cfg;
  cfg.step = 1.0;
  cfg.duration = 1000.0;
  cfg.range = 10.0;
  cfg.bandwidth = 100.0;
  return cfg;
}

Message msg(MessageId id, NodeId src, NodeId dst, int copies = 4,
            double created = 0.0, double ttl = 500.0,
            std::int64_t size = 100) {
  Message m;
  m.id = id;
  m.source = src;
  m.destination = dst;
  m.size = size;
  m.created = created;
  m.ttl = ttl;
  m.copies = copies;
  m.initial_copies = copies;
  m.received = created;
  return m;
}

std::unique_ptr<World> make_world(const WorldConfig& cfg,
                                  const std::vector<Vec2>& positions,
                                  std::int64_t buffer_cap = 10000) {
  auto w = std::make_unique<World>(cfg);
  w->set_router(std::make_unique<SprayAndWaitRouter>());
  w->set_policy(std::make_unique<FifoPolicy>());
  for (const Vec2& p : positions) {
    w->add_node(std::make_unique<StationaryModel>(p), buffer_cap);
  }
  return w;
}

TEST(World, DirectDeliveryBetweenNeighbors) {
  auto w = make_world(fast_cfg(), {{0, 0}, {5, 0}});
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1)));
  w->run_until(5.0);
  EXPECT_EQ(w->stats().delivered, 1u);
  EXPECT_EQ(w->stats().delivery_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(w->stats().avg_hopcount(), 1.0);
  EXPECT_TRUE(w->node(1).has_delivered(1));
}

TEST(World, NoDeliveryOutOfRange) {
  auto w = make_world(fast_cfg(), {{0, 0}, {50, 0}});
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1)));
  w->run_until(20.0);
  EXPECT_EQ(w->stats().delivered, 0u);
}

TEST(World, SprayThenWaitTwoHops) {
  // Chain 0 - 1 - 2 where 0 and 2 are out of range of each other.
  // Node 0 sprays to node 1; node 1 delivers to node 2.
  auto w = make_world(fast_cfg(), {{0, 0}, {8, 0}, {16, 0}});
  ASSERT_TRUE(w->inject_message(msg(1, 0, 2, /*copies=*/4)));
  w->run_until(10.0);
  EXPECT_EQ(w->stats().delivered, 1u);
  EXPECT_DOUBLE_EQ(w->stats().avg_hopcount(), 2.0);
  // Binary split: node 0 kept 2 copies, node 1 got 2.
  ASSERT_NE(w->node(0).buffer().find(1), nullptr);
  EXPECT_EQ(w->node(0).buffer().find(1)->copies, 2);
  ASSERT_NE(w->node(1).buffer().find(1), nullptr);
  EXPECT_EQ(w->node(1).buffer().find(1)->copies, 2);
}

TEST(World, DeliveredOnlyCountedOnce) {
  // Both 0 and 1 hold the message for 2; each will meet 2 and try to
  // deliver, but stats must count a single delivery.
  auto w = make_world(fast_cfg(), {{0, 0}, {8, 0}, {8, 8}});
  ASSERT_TRUE(w->inject_message(msg(1, 0, 2, 8)));
  w->run_until(30.0);
  EXPECT_EQ(w->stats().delivered, 1u);
}

TEST(World, TtlExpiryPurgesCopies) {
  auto w = make_world(fast_cfg(), {{0, 0}, {500, 0}});  // out of range
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1, 4, 0.0, /*ttl=*/10.0)));
  w->run_until(15.0);
  EXPECT_FALSE(w->node(0).buffer().has(1));
  EXPECT_EQ(w->stats().ttl_expired, 1u);
  EXPECT_EQ(w->stats().delivered, 0u);
}

TEST(World, TransferTakesBandwidthTime) {
  WorldConfig cfg = fast_cfg();
  cfg.bandwidth = 10.0;  // 100-byte message -> 10 s
  auto w = make_world(cfg, {{0, 0}, {5, 0}});
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1)));
  w->run_until(5.0);
  EXPECT_EQ(w->stats().delivered, 0u);  // still in flight
  EXPECT_EQ(w->transfers_in_flight().size(), 1u);
  w->run_until(12.0);
  EXPECT_EQ(w->stats().delivered, 1u);
}

TEST(World, RadioIsSerialOneTransferAtATime) {
  // Node 0 within range of both 1 and 2; two wait-phase messages, one per
  // destination. With 10 s per transfer only one can be in flight at once.
  WorldConfig cfg = fast_cfg();
  cfg.bandwidth = 10.0;
  auto w = make_world(cfg, {{0, 0}, {5, 0}, {0, 5}});
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1, 1)));
  ASSERT_TRUE(w->inject_message(msg(2, 0, 2, 1)));
  w->run_until(5.0);
  EXPECT_EQ(w->transfers_in_flight().size(), 1u);
  w->run_until(25.0);
  EXPECT_EQ(w->stats().delivered, 2u);
}

TEST(World, StatsOverheadRatioDefinition) {
  // Chain spray: one relay transfer + one delivery transfer, 1 delivery.
  auto w = make_world(fast_cfg(), {{0, 0}, {8, 0}, {16, 0}});
  ASSERT_TRUE(w->inject_message(msg(1, 0, 2, 4)));
  w->run_until(10.0);
  const SimStats& s = w->stats();
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_GE(s.transfers_completed, 2u);
  EXPECT_DOUBLE_EQ(
      s.overhead_ratio(),
      (static_cast<double>(s.transfers_completed) - 1.0) / 1.0);
}

TEST(World, RegistryTracksHoldersAndSeen) {
  auto w = make_world(fast_cfg(), {{0, 0}, {8, 0}, {16, 0}});
  ASSERT_TRUE(w->inject_message(msg(1, 0, 2, 4)));
  EXPECT_DOUBLE_EQ(w->registry().n_holding(1), 1.0);
  EXPECT_DOUBLE_EQ(w->registry().m_seen(1), 0.0);
  w->run_until(10.0);
  // Node 1 received a sprayed copy: m=1 (excl. source), holders {0,1}.
  EXPECT_DOUBLE_EQ(w->registry().m_seen(1), 1.0);
  EXPECT_DOUBLE_EQ(w->registry().n_holding(1), 2.0);
}

TEST(World, IntermeetingEstimatorSeesContacts) {
  auto w = make_world(fast_cfg(), {{0, 0}, {5, 0}});
  w->run_until(5.0);
  // One contact started: last_contact must be recorded for both.
  EXPECT_GT(w->node(0).intermeeting().last_contact(1), 0.0);
  EXPECT_GT(w->node(1).intermeeting().last_contact(0), 0.0);
}

TEST(World, BufferOverflowDropsAndCounts) {
  // Buffer fits two 100-byte messages; inject three at the same source.
  auto w = make_world(fast_cfg(), {{0, 0}, {500, 0}}, /*buffer_cap=*/200);
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1)));
  ASSERT_TRUE(w->inject_message(msg(2, 0, 1)));
  ASSERT_TRUE(w->inject_message(msg(3, 0, 1)));  // evicts FIFO-oldest (1)
  EXPECT_EQ(w->stats().drops, 1u);
  EXPECT_FALSE(w->node(0).buffer().has(1));
  EXPECT_TRUE(w->node(0).buffer().has(2));
  EXPECT_TRUE(w->node(0).buffer().has(3));
}

TEST(World, InjectRejectedWhenMessageBiggerThanBuffer) {
  auto w = make_world(fast_cfg(), {{0, 0}, {500, 0}}, /*buffer_cap=*/200);
  EXPECT_FALSE(w->inject_message(msg(1, 0, 1, 4, 0.0, 500.0, /*size=*/300)));
  EXPECT_EQ(w->stats().source_rejected, 1u);
}

TEST(World, TrafficGeneratorProducesMessages) {
  WorldConfig cfg = fast_cfg();
  cfg.duration = 200.0;
  auto w = make_world(cfg, {{0, 0}, {5, 0}});
  MessageGenConfig gen;
  gen.interval_min = 10.0;
  gen.interval_max = 10.0;  // deterministic spacing
  gen.size = 100;
  gen.ttl = 500.0;
  gen.initial_copies = 4;
  w->enable_traffic(gen, 42);
  w->run();
  EXPECT_NEAR(static_cast<double>(w->stats().created), 19.0, 1.0);
  EXPECT_GT(w->stats().delivered, 0u);
}

TEST(World, DeterministicAcrossRuns) {
  auto run_once = [] {
    WorldConfig cfg = fast_cfg();
    cfg.duration = 300.0;
    auto w = make_world(cfg, {{0, 0}, {5, 0}, {9, 0}, {300, 300}});
    MessageGenConfig gen;
    gen.size = 100;
    gen.interval_min = 5;
    gen.interval_max = 15;
    gen.ttl = 200;
    w->enable_traffic(gen, 7);
    w->run();
    return std::tuple{w->stats().created, w->stats().delivered,
                      w->stats().transfers_completed, w->stats().drops};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(World, SdsrpDroppedListGossipPropagates) {
  WorldConfig cfg = fast_cfg();
  auto w = std::make_unique<World>(cfg);
  w->set_router(std::make_unique<SprayAndWaitRouter>());
  w->set_policy(std::make_unique<SdsrpPolicy>());
  w->add_node(std::make_unique<StationaryModel>(Vec2{0, 0}), 10000);
  w->add_node(std::make_unique<StationaryModel>(Vec2{5, 0}), 10000);
  // Scripted drop on node 0 before any contact processing.
  w->node(0).dropped_list().record_local_drop(77, 0.5);
  w->run_until(3.0);  // contact comes up -> gossip merge
  EXPECT_DOUBLE_EQ(w->node(1).dropped_list().count_drops(77), 1.0);
}

TEST(World, LinkBreakAbortsTransferWithoutCopyTransfer) {
  WorldConfig cfg = fast_cfg();
  cfg.bandwidth = 10.0;  // 10 s per message
  auto w = std::make_unique<World>(cfg);
  w->set_router(std::make_unique<SprayAndWaitRouter>());
  w->set_policy(std::make_unique<FifoPolicy>());
  w->add_node(std::make_unique<StationaryModel>(Vec2{0, 0}), 10000);
  w->add_node(std::make_unique<StationaryModel>(Vec2{5, 0}), 10000);
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1)));
  w->run_until(4.0);
  ASSERT_EQ(w->transfers_in_flight().size(), 1u);
  // Receiver walks away mid-transfer.
  auto* m1 = dynamic_cast<StationaryModel*>(&w->node(1).mobility());
  ASSERT_NE(m1, nullptr);
  m1->move_to({500, 0});
  w->run_until(20.0);
  EXPECT_EQ(w->stats().transfers_aborted, 1u);
  EXPECT_EQ(w->stats().delivered, 0u);
  // Sender keeps its copy, unpinned and droppable again.
  EXPECT_TRUE(w->node(0).buffer().has(1));
  EXPECT_FALSE(w->node(0).is_pinned(1));
  EXPECT_FALSE(w->node(0).radio_busy());
  EXPECT_FALSE(w->node(1).radio_busy());
  // The pair can retry when they re-meet.
  m1->move_to({5, 0});
  w->run_until(40.0);
  EXPECT_EQ(w->stats().delivered, 1u);
}

TEST(World, ExpiredMessageDiesInFlight) {
  WorldConfig cfg = fast_cfg();
  cfg.bandwidth = 10.0;  // 10 s transfer
  auto w = make_world(cfg, {{0, 0}, {5, 0}});
  // TTL expires at t=5, mid-transfer.
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1, 1, 0.0, /*ttl=*/5.0)));
  w->run_until(20.0);
  EXPECT_EQ(w->stats().delivered, 0u);
  EXPECT_EQ(w->stats().ttl_expired, 1u);
  EXPECT_FALSE(w->node(0).buffer().has(1));
  EXPECT_FALSE(w->node(1).buffer().has(1));
}

// started == completed + aborted (+ still in flight) must hold at any
// point of any run — trace consumers reconcile transfer streams on it.
// Exercised across all four paper policies on the Table II scenario,
// shrunk but kept hostile (small buffers force drops and rejections,
// slow transfers force link-break aborts).
TEST(World, TransferCounterInvariantAcrossPaperPolicies) {
  for (const std::string& policy :
       {"fifo", "ttl-ratio", "copies-ratio", "sdsrp"}) {
    Scenario sc = Scenario::random_waypoint_paper();
    sc.policy = policy;
    sc.world.duration = 2000.0;
    sc.buffer_capacity = 1'000'000;  // 2 messages: constant eviction
    auto w = build_world(sc);
    w->run();
    const SimStats& s = w->stats();
    EXPECT_GT(s.transfers_started, 0u) << policy;
    EXPECT_GT(s.transfers_aborted, 0u) << policy;
    EXPECT_EQ(s.transfers_started,
              s.transfers_completed + s.transfers_aborted +
                  w->transfers_in_flight().size())
        << policy;
  }
}

TEST(World, DuplicateRelayArrivalCountsAsCompletedTransfer) {
  WorldConfig cfg = fast_cfg();
  cfg.bandwidth = 10.0;  // 100-byte message -> 10 s in flight
  // 0 and 1 adjacent; the destination (2) is unreachable, so 0 -> 1 is a
  // relay transfer.
  auto w = make_world(cfg, {{0, 0}, {5, 0}, {1000, 0}});
  ASSERT_TRUE(w->inject_message(msg(1, 0, 2, /*copies=*/4)));
  w->run_until(5.0);
  ASSERT_EQ(w->transfers_in_flight().size(), 1u);
  // The receiver obtains a copy through a side channel mid-transfer.
  ASSERT_TRUE(w->node(1).buffer().try_insert(msg(1, 0, 2, /*copies=*/2)));
  w->run_until(12.0);
  const SimStats& s = w->stats();
  EXPECT_EQ(s.transfers_started, 1u);
  EXPECT_EQ(s.transfers_completed, 1u);  // ran to completion — counted
  EXPECT_EQ(s.transfers_aborted, 0u);
  EXPECT_EQ(s.duplicates, 1u);
  // The sender's copy budget stays untouched: no split happened.
  ASSERT_NE(w->node(0).buffer().find(1), nullptr);
  EXPECT_EQ(w->node(0).buffer().find(1)->copies, 4);
}

TEST(World, AdmissionRejectedArrivalCountsAsAborted) {
  WorldConfig cfg = fast_cfg();
  cfg.bandwidth = 10.0;
  auto w = std::make_unique<World>(cfg);
  // No receiver-admission handshake: the transfer starts even though the
  // receiver can never admit the copy.
  SprayAndWaitConfig swc;
  swc.precheck_admission = false;
  w->set_router(std::make_unique<SprayAndWaitRouter>(swc));
  w->set_policy(std::make_unique<FifoPolicy>());
  w->add_node(std::make_unique<StationaryModel>(Vec2{0, 0}), 10000);
  w->add_node(std::make_unique<StationaryModel>(Vec2{5, 0}), 50);  // < 100 B
  w->add_node(std::make_unique<StationaryModel>(Vec2{1000, 0}), 10000);
  ASSERT_TRUE(w->inject_message(msg(1, 0, 2, /*copies=*/4)));
  w->run_until(12.0);
  const SimStats& s = w->stats();
  // The sender retries after the abort, so a second attempt may already
  // be in flight; the ledger must still balance.
  EXPECT_EQ(s.transfers_completed, 0u);
  EXPECT_EQ(s.transfers_aborted, 1u);  // ran but took no effect
  EXPECT_EQ(s.admission_rejected, 1u);
  EXPECT_EQ(s.transfers_started,
            s.transfers_aborted + w->transfers_in_flight().size());
  EXPECT_FALSE(w->node(1).buffer().has(1));
}

TEST(World, InjectRejectionRecordsLocalDropLikeGeneratedTraffic) {
  WorldConfig cfg = fast_cfg();
  auto w = std::make_unique<World>(cfg);
  w->set_router(std::make_unique<SprayAndWaitRouter>());
  w->set_policy(std::make_unique<SdsrpPolicy>());
  w->add_node(std::make_unique<StationaryModel>(Vec2{0, 0}), 200);
  w->add_node(std::make_unique<StationaryModel>(Vec2{500, 0}), 200);
  // Too big to ever fit: source-side rejection.
  EXPECT_FALSE(w->inject_message(msg(1, 0, 1, 4, 0.0, 500.0, /*size=*/300)));
  EXPECT_EQ(w->stats().source_rejected, 1u);
  // d̂_1 must reflect the drop exactly as if the generator had made it.
  EXPECT_TRUE(w->node(0).has_dropped(1));
  EXPECT_DOUBLE_EQ(w->node(0).dropped_list().count_drops(1), 1.0);
}

TEST(World, ConfigValidationRejectsBadIntervals) {
  WorldConfig cfg = fast_cfg();
  cfg.occupancy_sample_interval = 0.0;  // would sample every tick forever
  EXPECT_THROW(World w(cfg), PreconditionError);
  cfg.occupancy_sample_interval = -5.0;
  EXPECT_THROW(World w(cfg), PreconditionError);
  cfg = fast_cfg();
  cfg.priority_refresh_s = -1.0;
  EXPECT_THROW(World w(cfg), PreconditionError);
}

TEST(World, RequiresSetupBeforeNodes) {
  World w(fast_cfg());
  EXPECT_THROW(w.add_node(std::make_unique<StationaryModel>(Vec2{0, 0}), 100),
               PreconditionError);
}

TEST(World, StepRequiresTwoNodes) {
  World w(fast_cfg());
  w.set_router(std::make_unique<SprayAndWaitRouter>());
  w.set_policy(std::make_unique<FifoPolicy>());
  w.add_node(std::make_unique<StationaryModel>(Vec2{0, 0}), 100);
  EXPECT_THROW(w.step(), PreconditionError);
}

}  // namespace
}  // namespace dtn
