// Unit tests for mobility models: containment, speed bounds, determinism,
// trace replay semantics, taxi-fleet aggregation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/mobility/random_direction.hpp"
#include "src/mobility/random_walk.hpp"
#include "src/mobility/random_waypoint.hpp"
#include "src/mobility/stationary.hpp"
#include "src/mobility/taxi_fleet.hpp"
#include "src/mobility/trace_replay.hpp"

namespace dtn {
namespace {

template <typename Model>
void expect_contained(Model& m, const Rect& area, int steps, double dt) {
  for (int i = 0; i < steps; ++i) {
    m.advance(dt);
    const Vec2 p = m.position();
    EXPECT_TRUE(area.contains(p)) << "escaped to (" << p.x << "," << p.y
                                  << ") at step " << i;
  }
}

TEST(Stationary, NeverMoves) {
  StationaryModel m({3, 4});
  m.advance(100.0);
  EXPECT_EQ(m.position(), (Vec2{3, 4}));
  m.move_to({5, 6});
  EXPECT_EQ(m.position(), (Vec2{5, 6}));
}

TEST(RandomWaypoint, StaysInsideArea) {
  RandomWaypointConfig cfg;
  cfg.area = Rect::sized(100, 80);
  cfg.v_min = cfg.v_max = 5.0;
  RandomWaypointModel m(cfg, Rng(1));
  expect_contained(m, cfg.area, 2000, 1.0);
}

TEST(RandomWaypoint, SpeedBoundedByConfig) {
  RandomWaypointConfig cfg;
  cfg.area = Rect::sized(1000, 1000);
  cfg.v_min = 2.0;
  cfg.v_max = 4.0;
  RandomWaypointModel m(cfg, Rng(2));
  Vec2 prev = m.position();
  for (int i = 0; i < 500; ++i) {
    m.advance(1.0);
    const double moved = distance(prev, m.position());
    EXPECT_LE(moved, 4.0 + 1e-9);  // cannot exceed v_max * dt
    prev = m.position();
  }
}

TEST(RandomWaypoint, PausesAtWaypoints) {
  RandomWaypointConfig cfg;
  cfg.area = Rect::sized(50, 50);  // short trips
  cfg.v_min = cfg.v_max = 10.0;
  cfg.pause_min = cfg.pause_max = 5.0;
  RandomWaypointModel m(cfg, Rng(3));
  // With pauses, across many steps there must be steps with zero movement.
  int zero_steps = 0;
  Vec2 prev = m.position();
  for (int i = 0; i < 500; ++i) {
    m.advance(1.0);
    if (distance(prev, m.position()) < 1e-12) ++zero_steps;
    prev = m.position();
  }
  EXPECT_GT(zero_steps, 10);
}

TEST(RandomWaypoint, DeterministicGivenSeed) {
  RandomWaypointConfig cfg;
  RandomWaypointModel a(cfg, Rng(7)), b(cfg, Rng(7));
  for (int i = 0; i < 100; ++i) {
    a.advance(1.0);
    b.advance(1.0);
    EXPECT_EQ(a.position(), b.position());
  }
}

TEST(RandomWaypoint, RejectsBadConfig) {
  RandomWaypointConfig cfg;
  cfg.v_min = 0.0;
  EXPECT_THROW(RandomWaypointModel(cfg, Rng(1)), PreconditionError);
  RandomWaypointConfig cfg2;
  cfg2.pause_min = 5.0;
  cfg2.pause_max = 1.0;
  EXPECT_THROW(RandomWaypointModel(cfg2, Rng(1)), PreconditionError);
}

TEST(RandomWalk, StaysInsideAreaViaReflection) {
  RandomWalkConfig cfg;
  cfg.area = Rect::sized(60, 40);
  cfg.v_min = cfg.v_max = 3.0;
  cfg.epoch = 20.0;
  RandomWalkModel m(cfg, Rng(4));
  expect_contained(m, cfg.area, 3000, 1.0);
}

TEST(RandomWalk, AdvanceRejectsNegativeDt) {
  RandomWalkModel m(RandomWalkConfig{}, Rng(5));
  EXPECT_THROW(m.advance(-1.0), PreconditionError);
}

TEST(RandomDirection, StaysInsideArea) {
  RandomDirectionConfig cfg;
  cfg.area = Rect::sized(70, 90);
  cfg.v_min = cfg.v_max = 4.0;
  RandomDirectionModel m(cfg, Rng(6));
  expect_contained(m, cfg.area, 3000, 1.0);
}

TEST(RandomDirection, ReachesBordersRegularly) {
  // Random-direction legs end at borders; over time positions should hit
  // near-border strips often.
  RandomDirectionConfig cfg;
  cfg.area = Rect::sized(100, 100);
  cfg.v_min = cfg.v_max = 10.0;
  RandomDirectionModel m(cfg, Rng(7));
  int near_border = 0;
  for (int i = 0; i < 2000; ++i) {
    m.advance(1.0);
    const Vec2 p = m.position();
    const double d = std::min(std::min(p.x, 100 - p.x),
                              std::min(p.y, 100 - p.y));
    if (d < 5.0) ++near_border;
  }
  EXPECT_GT(near_border, 50);
}

TEST(TraceReplay, InterpolatesLinearly) {
  NodeTrace t;
  t.times = {0.0, 10.0, 20.0};
  t.points = {{0, 0}, {10, 0}, {10, 20}};
  TraceReplayModel m(t);
  EXPECT_EQ(m.position(), (Vec2{0, 0}));
  m.advance(5.0);
  EXPECT_EQ(m.position(), (Vec2{5, 0}));
  m.advance(10.0);  // now t=15
  EXPECT_EQ(m.position(), (Vec2{10, 10}));
  m.advance(100.0);  // beyond the trace: clamp at the last point
  EXPECT_EQ(m.position(), (Vec2{10, 20}));
}

TEST(TraceReplay, EmptyTraceThrows) {
  EXPECT_THROW(TraceReplayModel(NodeTrace{}), PreconditionError);
}

TEST(TraceSet, ParsesAndValidates) {
  const auto set = TraceSet::parse(R"(
    # time id x y
    0.0  0  10 20
    5.0  0  15 20
    0.0  1  0  0
  )");
  EXPECT_EQ(set.node_count(), 2u);
  EXPECT_EQ(set.nodes.at(0).times.size(), 2u);
  EXPECT_EQ(set.nodes.at(0).at(2.5), (Vec2{12.5, 20}));
}

TEST(TraceSet, RejectsMalformedAndUnsorted) {
  EXPECT_THROW(TraceSet::parse("bogus line\n"), PreconditionError);
  EXPECT_THROW(TraceSet::parse("5 0 1 1\n0 0 2 2\n"), PreconditionError);
}

TEST(TaxiFleet, StaysInsideArea) {
  TaxiFleetConfig cfg;
  TaxiFleetModel m(cfg, Rng(8));
  expect_contained(m, cfg.area, 3000, 1.0);
}

TEST(TaxiFleet, HomeSelectionRespectsExplicitIndex) {
  TaxiFleetConfig cfg;
  cfg.hotspots = TaxiFleetConfig::default_hotspots(cfg.area);
  TaxiFleetModel m(cfg, Rng(9), /*home=*/2);
  EXPECT_EQ(m.home(), 2u);
  EXPECT_THROW(TaxiFleetModel(cfg, Rng(9), 99), PreconditionError);
}

TEST(TaxiFleet, AggregatesAroundHotspots) {
  // Time-averaged positions must concentrate near hotspots: measure the
  // fraction of samples within 600 m of any hotspot and compare with the
  // area fraction those disks cover (aggregation = strong enrichment).
  TaxiFleetConfig cfg;
  cfg.hotspots = TaxiFleetConfig::default_hotspots(cfg.area);
  const double r = 600.0;
  int inside = 0, total = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    TaxiFleetModel m(cfg, Rng(100 + seed));
    for (int i = 0; i < 2000; ++i) {
      m.advance(10.0);
      ++total;
      for (const auto& h : cfg.hotspots) {
        if (distance(m.position(), h.center) < r) {
          ++inside;
          break;
        }
      }
    }
  }
  const double frac = static_cast<double>(inside) / total;
  const double disk_area_frac =
      (static_cast<double>(cfg.hotspots.size()) * 3.14159 * r * r) /
      cfg.area.area();
  EXPECT_GT(frac, 1.5 * disk_area_frac);  // enriched near hotspots
}

TEST(TaxiFleet, RejectsBadConfig) {
  TaxiFleetConfig cfg;
  cfg.cruise_prob = 1.5;
  EXPECT_THROW(TaxiFleetModel(cfg, Rng(1)), PreconditionError);
  TaxiFleetConfig cfg2;
  cfg2.pause_alpha = 0.0;
  EXPECT_THROW(TaxiFleetModel(cfg2, Rng(1)), PreconditionError);
}

}  // namespace
}  // namespace dtn
