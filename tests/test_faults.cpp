// Fault-injection subsystem tests.
//
// Load-bearing properties: a faulty run is exactly as deterministic as a
// fault-free one (same seed => same digest trajectory), the legacy and
// event-driven step loops agree decision-for-decision under faults, a
// checkpoint taken mid-outage resumes bit-identically, and the
// started == completed + aborted + in-flight accounting identity holds
// throughout.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/config/scenario.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/report/sweep.hpp"
#include "src/snapshot/checkpoint.hpp"

namespace dtn {
namespace {

// Scaled-down Table II world with every fault mechanism active.
Scenario faulty_scenario(const std::string& policy,
                         const std::string& which = "rwp") {
  Scenario sc = which == "taxi" ? Scenario::taxi_paper()
                                : Scenario::random_waypoint_paper();
  sc.n_nodes = 24;
  sc.world.duration = 4000.0;
  sc.rwp.area = Rect::sized(1500.0, 1200.0);
  sc.traffic.interval_min = 30.0;
  sc.traffic.interval_max = 40.0;
  sc.traffic.ttl = 2000.0;
  sc.traffic.initial_copies = 8;
  sc.policy = policy;
  sc.seed = 7;
  sc.fault.enabled = true;
  sc.fault.churn_fraction = 0.5;
  sc.fault.mean_up_s = 600.0;
  sc.fault.mean_down_s = 300.0;
  sc.fault.link_abort_rate_per_hour = 60.0;
  sc.fault.degrade_rate_per_hour = 6.0;
  sc.fault.degrade_duration_s = 120.0;
  sc.fault.degrade_range_factor = 0.6;
  sc.fault.degrade_bitrate_factor = 0.5;
  return sc;
}

std::vector<std::uint64_t> digest_trajectory(const Scenario& sc) {
  auto world = build_world(sc);
  std::vector<std::uint64_t> out;
  for (double t = 300.0; t <= sc.world.duration + 1e-9; t += 300.0) {
    world->run_until(t);
    out.push_back(world->digest());
  }
  return out;
}

void expect_accounting_identity(const World& w) {
  const SimStats& s = w.stats();
  EXPECT_EQ(s.transfers_started,
            s.transfers_completed + s.transfers_aborted +
                w.transfers_in_flight().size());
  EXPECT_LE(s.faulted_aborts, s.transfers_aborted);
}

// --- FaultConfig validation ---

TEST(FaultConfig, DefaultIsValidAndInert) {
  FaultConfig cfg;
  cfg.validate();
  EXPECT_FALSE(cfg.any_active());
  cfg.enabled = true;
  EXPECT_FALSE(cfg.any_active()) << "no mechanism has a positive rate";
  cfg.churn_fraction = 0.1;
  EXPECT_TRUE(cfg.any_active());
}

TEST(FaultConfig, RejectsOutOfRangeValues) {
  const auto invalid = [](auto mutate) {
    FaultConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), PreconditionError);
  };
  invalid([](FaultConfig& c) { c.churn_fraction = -0.1; });
  invalid([](FaultConfig& c) { c.churn_fraction = 1.5; });
  invalid([](FaultConfig& c) { c.mean_up_s = 0.0; });
  invalid([](FaultConfig& c) { c.mean_down_s = -5.0; });
  invalid([](FaultConfig& c) { c.link_abort_rate_per_hour = -1.0; });
  invalid([](FaultConfig& c) { c.degrade_rate_per_hour = -1.0; });
  invalid([](FaultConfig& c) { c.degrade_duration_s = 0.0; });
  invalid([](FaultConfig& c) { c.degrade_range_factor = 0.0; });
  invalid([](FaultConfig& c) { c.degrade_range_factor = 1.1; });
  invalid([](FaultConfig& c) { c.degrade_bitrate_factor = 0.0; });
}

TEST(FaultConfig, SettingsRoundTripAndValidation) {
  Scenario sc = faulty_scenario("sdsrp");
  const Scenario back = Scenario::from_settings(sc.to_settings());
  EXPECT_EQ(back.fault.enabled, sc.fault.enabled);
  EXPECT_DOUBLE_EQ(back.fault.churn_fraction, sc.fault.churn_fraction);
  EXPECT_DOUBLE_EQ(back.fault.mean_up_s, sc.fault.mean_up_s);
  EXPECT_DOUBLE_EQ(back.fault.mean_down_s, sc.fault.mean_down_s);
  EXPECT_EQ(back.fault.reboot_purge, sc.fault.reboot_purge);
  EXPECT_DOUBLE_EQ(back.fault.link_abort_rate_per_hour,
                   sc.fault.link_abort_rate_per_hour);
  EXPECT_DOUBLE_EQ(back.fault.degrade_range_factor,
                   sc.fault.degrade_range_factor);

  Settings bad = sc.to_settings();
  bad.set("Fault.churnFraction", "2.0");
  EXPECT_THROW(Scenario::from_settings(bad), PreconditionError);
}

// --- FaultPlan unit behavior ---

TEST(FaultPlan, ChurnAlternatesAndAccountsDowntime) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.churn_fraction = 1.0;
  cfg.mean_up_s = 50.0;
  cfg.mean_down_s = 30.0;
  FaultPlan plan(cfg, 4, /*seed=*/99);
  double downtime = 0.0;
  std::size_t downs = 0;
  std::size_t ups = 0;
  FaultPlan::Event e;
  for (double t = 1.0; t <= 2000.0; t += 1.0) {
    while (plan.pop_due(t, &e)) {
      if (e.kind == FaultPlan::Kind::kNodeDown) {
        ++downs;
        EXPECT_FALSE(plan.is_up(e.node));
      } else if (e.kind == FaultPlan::Kind::kNodeUp) {
        ++ups;
        EXPECT_TRUE(plan.is_up(e.node));
        EXPECT_GT(e.down_duration, 0.0);
        downtime += e.down_duration;
      }
    }
  }
  EXPECT_GT(downs, 0u);
  EXPECT_GT(ups, 0u);
  EXPECT_LE(plan.down_count(), 4u);
  EXPECT_GT(downtime, 0.0);
  // Every completed outage is bracketed: downs == ups + currently down.
  EXPECT_EQ(downs, ups + plan.down_count());
}

TEST(FaultPlan, DegradationScalesFactorsOnlyWhileActive) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.degrade_rate_per_hour = 30.0;
  cfg.degrade_duration_s = 40.0;
  cfg.degrade_range_factor = 0.7;
  cfg.degrade_bitrate_factor = 0.4;
  FaultPlan plan(cfg, 3, /*seed=*/5);
  EXPECT_DOUBLE_EQ(plan.range_factor(0), 1.0);
  bool saw_degraded = false;
  FaultPlan::Event e;
  for (double t = 1.0; t <= 4000.0; t += 1.0) {
    while (plan.pop_due(t, &e)) {
      if (e.kind == FaultPlan::Kind::kDegradeStart) {
        saw_degraded = true;
        EXPECT_TRUE(plan.is_degraded(e.node));
        EXPECT_DOUBLE_EQ(plan.range_factor(e.node), 0.7);
        EXPECT_DOUBLE_EQ(plan.bitrate_factor(e.node), 0.4);
      } else if (e.kind == FaultPlan::Kind::kDegradeEnd) {
        EXPECT_FALSE(plan.is_degraded(e.node));
        EXPECT_DOUBLE_EQ(plan.range_factor(e.node), 1.0);
      }
    }
  }
  EXPECT_TRUE(saw_degraded);
}

TEST(FaultPlan, SaveRestoreResumesIdenticalEventSequence) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.churn_fraction = 1.0;
  cfg.mean_up_s = 40.0;
  cfg.mean_down_s = 25.0;
  cfg.link_abort_rate_per_hour = 120.0;
  cfg.degrade_rate_per_hour = 20.0;
  cfg.degrade_duration_s = 30.0;
  cfg.degrade_range_factor = 0.5;

  FaultPlan a(cfg, 6, /*seed=*/123);
  FaultPlan::Event e;
  for (double t = 1.0; t <= 500.0; t += 1.0) {
    while (a.pop_due(t, &e)) {
    }
  }
  snapshot::ArchiveWriter out;
  a.save_state(out);

  FaultPlan b(cfg, 6, /*seed=*/123);  // same compile, then overwrite
  snapshot::ArchiveReader in(out.bytes());
  b.load_state(in);

  // Both must now pop the exact same future, including fresh RNG draws.
  for (double t = 501.0; t <= 1500.0; t += 1.0) {
    FaultPlan::Event ea, eb;
    for (;;) {
      const bool ha = a.pop_due(t, &ea);
      const bool hb = b.pop_due(t, &eb);
      ASSERT_EQ(ha, hb);
      if (!ha) break;
      EXPECT_EQ(ea.at, eb.at);
      EXPECT_EQ(ea.kind, eb.kind);
      EXPECT_EQ(ea.node, eb.node);
      EXPECT_EQ(ea.down_duration, eb.down_duration);
    }
  }
}

// --- determinism with faults on ---

TEST(FaultDeterminism, SameSeedSameDigestTrajectory) {
  const Scenario sc = faulty_scenario("sdsrp");
  const auto a = digest_trajectory(sc);
  const auto b = digest_trajectory(sc);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "digest diverged at sample " << i;
  }
}

TEST(FaultDeterminism, FaultsChangeTheRunButNotTheTrafficSchedule) {
  Scenario faulty = faulty_scenario("sdsrp");
  Scenario clean = faulty;
  clean.fault = FaultConfig{};
  auto wf = build_world(faulty);
  auto wc = build_world(clean);
  wf->run();
  wc->run();
  EXPECT_NE(wf->digest(), wc->digest());
  // The fault stream is isolated: the generator emits the same messages.
  EXPECT_EQ(wf->stats().created, wc->stats().created);
  EXPECT_GT(wf->stats().downtime_s, 0.0);
  EXPECT_EQ(wc->stats().downtime_s, 0.0);
  EXPECT_LE(wf->stats().delivered, wc->stats().delivered)
      << "downtime should not improve delivery at this scale";
}

class FaultPolicies : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultPolicies, EventAndLegacyStepAgreeUnderFaults) {
  Scenario sc = faulty_scenario(GetParam());
  Scenario legacy = sc;
  legacy.world.legacy_step = true;
  const auto ev = digest_trajectory(sc);
  const auto lg = digest_trajectory(legacy);
  ASSERT_EQ(ev.size(), lg.size());
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i], lg[i]) << "step modes diverged at sample " << i;
  }
}

TEST_P(FaultPolicies, MidOutageRestoreMatchesUninterrupted) {
  const Scenario sc = faulty_scenario(GetParam());
  const double half = sc.world.duration / 2.0;

  auto cold = build_world(sc);
  cold->run();
  const std::uint64_t cold_digest = cold->digest();
  expect_accounting_identity(*cold);

  auto first = build_world(sc);
  first->run_until(half);
  ASSERT_NE(first->faults(), nullptr);
  // With 12 churning nodes ~1/3 down on average, the save point sits
  // mid-outage for several of them (deterministic under the fixed seed).
  EXPECT_GT(first->faults()->down_count(), 0u)
      << "save point is not mid-outage; strengthen the churn parameters";
  snapshot::ArchiveWriter out;
  snapshot::save_world(out, sc, *first);
  const std::uint64_t half_digest = first->digest();
  first.reset();

  snapshot::ArchiveReader in(out.bytes());
  auto restored = snapshot::restore_world(in);
  EXPECT_EQ(restored.world->digest(), half_digest)
      << "mid-outage restore is not bit-for-bit";

  restored.world->run();
  EXPECT_EQ(restored.world->digest(), cold_digest)
      << "resumed faulty run diverged from the uninterrupted one";
  EXPECT_EQ(restored.world->stats().faulted_aborts,
            cold->stats().faulted_aborts);
  EXPECT_EQ(restored.world->stats().downtime_s, cold->stats().downtime_s);
  EXPECT_EQ(restored.world->stats().reboot_purged,
            cold->stats().reboot_purged);
  expect_accounting_identity(*restored.world);
}

TEST_P(FaultPolicies, AccountingIdentityHoldsThroughout) {
  auto world = build_world(faulty_scenario(GetParam()));
  while (world->now() + 1e-9 < world->config().duration) {
    world->run_until(world->now() + 200.0);
    expect_accounting_identity(*world);
  }
  const SimStats& s = world->stats();
  EXPECT_GT(s.transfers_aborted, 0u);
  EXPECT_GT(s.faulted_aborts, 0u) << "faults never aborted a transfer";
  EXPECT_GT(s.downtime_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(PaperPolicies, FaultPolicies,
                         ::testing::Values("fifo", "ttl-ratio", "copies-ratio",
                                           "sdsrp"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// --- reboot purge semantics ---

TEST(FaultReboot, PurgeLosesBuffersAndCounts) {
  Scenario keep = faulty_scenario("fifo");
  keep.fault.link_abort_rate_per_hour = 0.0;  // isolate churn
  keep.fault.degrade_rate_per_hour = 0.0;
  Scenario purge = keep;
  purge.fault.reboot_purge = true;

  auto wk = build_world(keep);
  auto wp = build_world(purge);
  wk->run();
  wp->run();
  EXPECT_EQ(wk->stats().reboot_purged, 0u);
  EXPECT_GT(wp->stats().reboot_purged, 0u);
  // Purged copies left the registry cleanly: the accounting still closes.
  expect_accounting_identity(*wp);
  EXPECT_LE(wp->stats().delivered, wk->stats().delivered)
      << "losing buffers on reboot should not help delivery";
}

// --- parallel sweep determinism on faulty scenarios (TSan coverage) ---

TEST(FaultSweep, ParallelMatchesSerial) {
  ThreadPool pool(2);
  std::vector<SweepPoint> points;
  for (double frac : {0.25, 0.75}) {
    SweepPoint p;
    p.x = frac;
    p.scenario = faulty_scenario("sdsrp");
    p.scenario.world.duration = 2000.0;
    p.scenario.fault.churn_fraction = frac;
    points.push_back(std::move(p));
  }
  const auto parallel = run_sweep(points, 2, &pool);
  const auto serial = run_sweep(points, 2, nullptr);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel[i].delivery_ratio.mean(),
                     serial[i].delivery_ratio.mean());
    EXPECT_DOUBLE_EQ(parallel[i].overhead_ratio.mean(),
                     serial[i].overhead_ratio.mean());
  }
}

}  // namespace
}  // namespace dtn
