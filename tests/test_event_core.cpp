// Event-driven simulation core (DESIGN.md §9): the expiry/ETA heap step
// loop with kinetic contact skipping must be decision-identical to the
// legacy scan-everything loop. The proof mirrors the priority-cache
// equivalence suite: World::digest() trajectories — hashing the complete
// dynamic state — must coincide sample for sample on both paper
// scenarios under all four paper policies, plus targeted edge cases the
// big runs would only hit by accident (teleports, expiry while pinned).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/buffer/fifo.hpp"
#include "src/config/scenario.hpp"
#include "src/core/world.hpp"
#include "src/mobility/stationary.hpp"
#include "src/routing/spray_and_wait.hpp"

namespace dtn {
namespace {

std::vector<std::uint64_t> digest_trajectory(Scenario sc, bool legacy) {
  sc.world.legacy_step = legacy;
  auto w = build_world(sc);
  std::vector<std::uint64_t> digests;
  for (double t = 300.0; t <= sc.world.duration + 1e-9; t += 300.0) {
    w->run_until(t);
    digests.push_back(w->digest());
  }
  return digests;
}

struct EquivalenceCase {
  const char* scenario;  // "rwp" | "taxi"
  const char* policy;
  double duration;
};

class EventCoreEquivalence
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EventCoreEquivalence, DigestTrajectoryMatchesLegacy) {
  const EquivalenceCase& pc = GetParam();
  Scenario sc = std::string(pc.scenario) == "rwp"
                    ? Scenario::random_waypoint_paper()
                    : Scenario::taxi_paper();
  sc.policy = pc.policy;
  sc.world.duration = pc.duration;
  EXPECT_EQ(digest_trajectory(sc, /*legacy=*/false),
            digest_trajectory(sc, /*legacy=*/true));
}

INSTANTIATE_TEST_SUITE_P(
    PaperScenarios, EventCoreEquivalence,
    ::testing::Values(EquivalenceCase{"rwp", "fifo", 1800.0},
                      EquivalenceCase{"rwp", "ttl-ratio", 1800.0},
                      EquivalenceCase{"rwp", "copies-ratio", 1800.0},
                      EquivalenceCase{"rwp", "sdsrp", 1800.0},
                      EquivalenceCase{"taxi", "fifo", 1500.0},
                      EquivalenceCase{"taxi", "ttl-ratio", 1500.0},
                      EquivalenceCase{"taxi", "copies-ratio", 1500.0},
                      EquivalenceCase{"taxi", "sdsrp", 1500.0}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      std::string name = std::string(info.param.scenario) + "_" +
                         info.param.policy;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(EventCoreEquivalence, TightBuffersExerciseDropPath) {
  // Saturated buffers force evictions, source rejections and dropped-list
  // gossip — the paths where expiry-heap tombstones accumulate fastest.
  Scenario sc = Scenario::random_waypoint_paper();
  sc.world.duration = 1500.0;
  sc.buffer_capacity = 1'250'000;
  EXPECT_EQ(digest_trajectory(sc, false), digest_trajectory(sc, true));
}

// --- scripted-topology edge cases ---

Message msg(MessageId id, NodeId src, NodeId dst, int copies = 4,
            double created = 0.0, double ttl = 500.0,
            std::int64_t size = 100) {
  Message m;
  m.id = id;
  m.source = src;
  m.destination = dst;
  m.size = size;
  m.created = created;
  m.ttl = ttl;
  m.copies = copies;
  m.initial_copies = copies;
  m.received = created;
  return m;
}

std::unique_ptr<World> stationary_world(const WorldConfig& cfg,
                                        const std::vector<Vec2>& positions) {
  auto w = std::make_unique<World>(cfg);
  w->set_router(std::make_unique<SprayAndWaitRouter>());
  w->set_policy(std::make_unique<FifoPolicy>());
  for (const Vec2& p : positions) {
    w->add_node(std::make_unique<StationaryModel>(p), 10000);
  }
  return w;
}

TEST(EventCoreKinetics, TeleportDefeatsContactSkipping) {
  // A stationary fleet reports max_speed() == 0, so the tracker banks a
  // large motion budget — but a scripted teleport must still register:
  // skip decisions charge the *observed* displacement, not the bound.
  WorldConfig cfg;
  cfg.step = 1.0;
  cfg.duration = 1000.0;
  cfg.range = 10.0;
  cfg.bandwidth = 100.0;
  auto w = stationary_world(cfg, {{0, 0}, {500, 0}});
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1)));
  w->run_until(50.0);  // long skip streak while out of range
  EXPECT_EQ(w->stats().delivered, 0u);
  auto& mob = dynamic_cast<StationaryModel&>(w->node(1).mobility());
  mob.move_to({5, 0});  // teleport into range
  w->run_until(55.0);
  EXPECT_EQ(w->stats().delivered, 1u);
  EXPECT_TRUE(w->contacts().in_contact(0, 1));
  mob.move_to({500, 0});  // and back out: the link must drop
  w->run_until(60.0);
  EXPECT_FALSE(w->contacts().in_contact(0, 1));
}

TEST(EventCoreKinetics, SkippingActuallyEngagesOnPaperScenario) {
  // Not a correctness property, a regression guard for the optimization:
  // at 2 m/s in a 4500x3400 m world most steps cannot change any contact,
  // so the tracker must be skipping a substantial share of grid passes.
  Scenario sc = Scenario::random_waypoint_paper();
  sc.world.duration = 600.0;
  auto w = build_world(sc);
  w->run();
  const auto& t = w->contacts();
  EXPECT_EQ(t.update_count(), 600u);
  EXPECT_LT(t.full_pass_count(), t.update_count() / 2);
}

TEST(EventCoreKinetics, LegacyStepRunsFullPassEveryStep) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.world.duration = 300.0;
  sc.world.legacy_step = true;
  auto w = build_world(sc);
  w->run();
  EXPECT_EQ(w->contacts().full_pass_count(), w->contacts().update_count());
}

TEST(EventCoreHeaps, ExpiryWhilePinnedIsDeferredLikeLegacy) {
  // A message expiring mid-transfer is pinned: the heap must defer it (as
  // the legacy scan skips pinned copies) and the in-flight-death path in
  // handle_completion must account it exactly once, in both modes.
  for (const bool legacy : {false, true}) {
    WorldConfig cfg;
    cfg.step = 1.0;
    cfg.duration = 100.0;
    cfg.range = 10.0;
    cfg.bandwidth = 10.0;  // 100-byte message -> 10 s transfer
    cfg.legacy_step = legacy;
    auto w = stationary_world(cfg, {{0, 0}, {5, 0}});
    // Expires at t = 5, mid-flight of the transfer starting at t = 1.
    ASSERT_TRUE(w->inject_message(msg(1, 0, 1, 4, 0.0, /*ttl=*/5.0)));
    w->run_until(20.0);
    EXPECT_EQ(w->stats().ttl_expired, 1u) << "legacy=" << legacy;
    EXPECT_EQ(w->stats().delivered, 0u) << "legacy=" << legacy;
    EXPECT_FALSE(w->node(0).buffer().has(1));
    EXPECT_EQ(w->stats().transfers_started,
              w->stats().transfers_completed + w->stats().transfers_aborted);
  }
}

TEST(EventCoreHeaps, AbortTombstonesDoNotCompleteLater) {
  // Start a transfer, break the link mid-flight (teleport), then restore
  // it. The aborted transfer's ETA entry must be discarded as a
  // tombstone, and the retry must succeed with consistent accounting.
  WorldConfig cfg;
  cfg.step = 1.0;
  cfg.duration = 200.0;
  cfg.range = 10.0;
  cfg.bandwidth = 10.0;
  auto w = stationary_world(cfg, {{0, 0}, {5, 0}});
  ASSERT_TRUE(w->inject_message(msg(1, 0, 1)));
  w->run_until(5.0);
  ASSERT_EQ(w->transfers_in_flight().size(), 1u);
  auto& mob = dynamic_cast<StationaryModel&>(w->node(1).mobility());
  mob.move_to({500, 0});  // link down: abort
  w->run_until(8.0);
  EXPECT_EQ(w->transfers_in_flight().size(), 0u);
  EXPECT_EQ(w->stats().transfers_aborted, 1u);
  mob.move_to({5, 0});  // link back up: retry from scratch
  w->run_until(25.0);
  EXPECT_EQ(w->stats().delivered, 1u);
  EXPECT_EQ(w->stats().transfers_started,
            w->stats().transfers_completed + w->stats().transfers_aborted);
}

TEST(EventCoreConfig, LegacyStepRoundTripsThroughSettings) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.world.legacy_step = true;
  const Scenario back = Scenario::from_settings(sc.to_settings());
  EXPECT_TRUE(back.world.legacy_step);
  EXPECT_FALSE(Scenario::random_waypoint_paper().world.legacy_step);
}

}  // namespace
}  // namespace dtn
