// Router unit tests: Spray-and-Wait split arithmetic and candidate
// selection, plus the baseline routers' custody semantics.
#include <gtest/gtest.h>

#include <memory>

#include "src/buffer/fifo.hpp"
#include "src/core/node.hpp"
#include "src/mobility/stationary.hpp"
#include "src/routing/direct_delivery.hpp"
#include "src/routing/epidemic.hpp"
#include "src/routing/first_contact.hpp"
#include "src/routing/spray_and_focus.hpp"
#include "src/routing/spray_and_wait.hpp"

namespace dtn {
namespace {

Message msg(MessageId id, NodeId src, NodeId dst, int copies,
            double created = 0.0, double ttl = 1000.0) {
  Message m;
  m.id = id;
  m.source = src;
  m.destination = dst;
  m.size = 100;
  m.created = created;
  m.ttl = ttl;
  m.copies = copies;
  m.initial_copies = copies;
  m.received = created;
  return m;
}

class RouterTest : public ::testing::Test {
 protected:
  RouterTest() : policy_(std::make_unique<FifoPolicy>()) {}

  Node make_node(NodeId id, const Router* r, std::int64_t cap = 100000) {
    return Node(id, std::make_unique<StationaryModel>(Vec2{0, 0}), cap,
                r, policy_.get(), arena_);
  }

  PolicyContext ctx(const Node& n, SimTime now = 10.0) {
    PolicyContext c;
    c.now = now;
    c.n_nodes = 10;
    c.node = &n;
    return c;
  }

  MessageArena arena_;
  std::unique_ptr<FifoPolicy> policy_;
};

// --- Spray and Wait ---

TEST_F(RouterTest, SnwBinarySplitArithmetic) {
  SprayAndWaitRouter r;
  Message copy = msg(1, 0, 5, 32);
  const Message relay = r.make_relay_copy(copy, 7.0);
  EXPECT_EQ(relay.copies, 16);
  EXPECT_EQ(relay.hops, 1);
  EXPECT_DOUBLE_EQ(relay.received, 7.0);
  ASSERT_EQ(relay.spray_times.size(), 1u);
  EXPECT_DOUBLE_EQ(relay.spray_times[0], 7.0);

  EXPECT_TRUE(r.on_sent(copy, /*delivered=*/false, 7.0));
  EXPECT_EQ(copy.copies, 16);
  ASSERT_EQ(copy.spray_times.size(), 1u);
}

TEST_F(RouterTest, SnwBinarySplitOddCopies) {
  SprayAndWaitRouter r;
  Message copy = msg(1, 0, 5, 5);
  const Message relay = r.make_relay_copy(copy, 1.0);
  EXPECT_EQ(relay.copies, 2);  // floor(5/2)
  r.on_sent(copy, false, 1.0);
  EXPECT_EQ(copy.copies, 3);  // ceil(5/2)
}

TEST_F(RouterTest, SnwSourceSprayHandsSingleCopies) {
  SprayAndWaitRouter r(SprayAndWaitConfig{/*binary=*/false});
  Message copy = msg(1, 0, 5, 8);
  const Message relay = r.make_relay_copy(copy, 1.0);
  EXPECT_EQ(relay.copies, 1);
  r.on_sent(copy, false, 1.0);
  EXPECT_EQ(copy.copies, 7);
}

TEST_F(RouterTest, SnwDeliveredKeepsCopyUnchanged) {
  SprayAndWaitRouter r;
  Message copy = msg(1, 0, 5, 8);
  EXPECT_TRUE(r.on_sent(copy, /*delivered=*/true, 1.0));
  EXPECT_EQ(copy.copies, 8);
  EXPECT_TRUE(copy.spray_times.empty());
}

TEST_F(RouterTest, SnwPrefersDeliverableOverSpray) {
  SprayAndWaitRouter r;
  Node a = make_node(0, &r);
  Node b = make_node(1, &r);
  a.buffer().try_insert(msg(1, 0, 5, 8));   // sprayable
  a.buffer().try_insert(msg(2, 0, 1, 1));   // deliverable to b, wait phase
  const auto next = r.next_to_send(a, b, ctx(a));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 2u);
}

TEST_F(RouterTest, SnwWaitPhaseDoesNotSpray) {
  SprayAndWaitRouter r;
  Node a = make_node(0, &r);
  Node b = make_node(1, &r);
  a.buffer().try_insert(msg(1, 0, 5, 1));  // single copy, dst != b
  EXPECT_FALSE(r.next_to_send(a, b, ctx(a)).has_value());
}

TEST_F(RouterTest, SnwSkipsPeerThatHasTheMessage) {
  SprayAndWaitRouter r;
  Node a = make_node(0, &r);
  Node b = make_node(1, &r);
  a.buffer().try_insert(msg(1, 0, 5, 8));
  b.buffer().try_insert(msg(1, 0, 5, 4));
  EXPECT_FALSE(r.next_to_send(a, b, ctx(a)).has_value());
}

TEST_F(RouterTest, SnwSkipsExpiredMessages) {
  SprayAndWaitRouter r;
  Node a = make_node(0, &r);
  Node b = make_node(1, &r);
  a.buffer().try_insert(msg(1, 0, 5, 8, 0.0, 5.0));  // expired at t=10
  EXPECT_FALSE(r.next_to_send(a, b, ctx(a, 10.0)).has_value());
}

TEST_F(RouterTest, SnwSkipsDeliveredAtPeer) {
  SprayAndWaitRouter r;
  Node a = make_node(0, &r);
  Node b = make_node(1, &r);
  a.buffer().try_insert(msg(1, 0, 1, 1));  // deliverable to b
  b.mark_delivered(1);
  EXPECT_FALSE(r.next_to_send(a, b, ctx(a)).has_value());
}

TEST_F(RouterTest, SnwSourceModeOnlySourceSprays) {
  SprayAndWaitRouter r(SprayAndWaitConfig{/*binary=*/false});
  Node relay_holder = make_node(2, &r);
  Node peer = make_node(3, &r);
  relay_holder.buffer().try_insert(msg(1, /*src=*/0, /*dst=*/5, 4));
  // Node 2 is not the source: in source-spray mode it must stay quiet.
  EXPECT_FALSE(r.next_to_send(relay_holder, peer, ctx(relay_holder))
                   .has_value());
}

TEST_F(RouterTest, SnwRespectsPeerAdmission) {
  SprayAndWaitRouter r;
  Node a = make_node(0, &r);
  Node b = make_node(1, &r, /*cap=*/100000);
  Node tiny = make_node(2, &r, /*cap=*/50);  // smaller than the message
  a.buffer().try_insert(msg(1, 0, 5, 8));
  EXPECT_TRUE(r.next_to_send(a, b, ctx(a)).has_value());
  EXPECT_FALSE(r.next_to_send(a, tiny, ctx(a)).has_value());
}

// --- Epidemic ---

TEST_F(RouterTest, EpidemicReplicatesEverythingPeerLacks) {
  EpidemicRouter r;
  Node a = make_node(0, &r);
  Node b = make_node(1, &r);
  a.buffer().try_insert(msg(1, 0, 5, 1));
  a.buffer().try_insert(msg(2, 0, 6, 1));
  b.buffer().try_insert(msg(1, 0, 5, 1));
  const auto next = r.next_to_send(a, b, ctx(a));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 2u);  // only the one b lacks
  Message copy = msg(3, 0, 6, 1);
  EXPECT_TRUE(r.on_sent(copy, false, 1.0));  // flooding keeps the copy
}

// --- Direct delivery ---

TEST_F(RouterTest, DirectDeliveryOnlySendsToDestination) {
  DirectDeliveryRouter r;
  Node a = make_node(0, &r);
  Node b = make_node(1, &r);
  Node dst = make_node(5, &r);
  a.buffer().try_insert(msg(1, 0, 5, 1));
  EXPECT_FALSE(r.next_to_send(a, b, ctx(a)).has_value());
  const auto next = r.next_to_send(a, dst, ctx(a));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 1u);
  Message copy = msg(1, 0, 5, 1);
  EXPECT_FALSE(r.on_sent(copy, true, 1.0));  // slot freed after delivery
}

// --- First contact ---

TEST_F(RouterTest, FirstContactTransfersCustody) {
  FirstContactRouter r;
  Node a = make_node(0, &r);
  Node b = make_node(1, &r);
  a.buffer().try_insert(msg(1, 0, 5, 1));
  const auto next = r.next_to_send(a, b, ctx(a));
  ASSERT_TRUE(next.has_value());
  Message copy = msg(1, 0, 5, 1);
  EXPECT_FALSE(r.on_sent(copy, false, 1.0));  // custody moves
  const Message relay = r.make_relay_copy(copy, 1.0);
  EXPECT_EQ(relay.hops, 1);
}

// --- Spray and Focus ---

TEST_F(RouterTest, SprayAndFocusSpraysLikeBinarySnw) {
  SprayAndFocusRouter r;
  Message copy = msg(1, 0, 5, 8);
  const Message relay = r.make_relay_copy(copy, 2.0);
  EXPECT_EQ(relay.copies, 4);
  EXPECT_TRUE(r.on_sent(copy, false, 2.0));
  EXPECT_EQ(copy.copies, 4);
}

TEST_F(RouterTest, SprayAndFocusMovesCustodyTowardFresherContact) {
  SprayAndFocusRouter r(SprayAndFocusConfig{/*focus_threshold=*/10.0});
  Node a = make_node(0, &r);
  Node b = make_node(1, &r);
  a.buffer().try_insert(msg(1, 0, /*dst=*/5, 1));  // wait/focus phase

  // Neither node ever met node 5: no focus forwarding.
  EXPECT_FALSE(r.next_to_send(a, b, ctx(a, 100.0)).has_value());

  // Peer b met the destination recently: custody should move.
  b.intermeeting().on_contact_start(5, 95.0);
  const auto next = r.next_to_send(a, b, ctx(a, 100.0));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 1u);
  Message copy = *a.buffer().find(1);
  EXPECT_FALSE(r.on_sent(copy, false, 100.0));  // focus = move
}

}  // namespace
}  // namespace dtn
