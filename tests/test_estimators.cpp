// Tests for the distributed SDSRP estimators: intermeeting times (E(I),
// λ, λ_min) and the spray-tree m̂/n̂ estimates (Eq. 14/15).
#include <gtest/gtest.h>

#include <cmath>

#include "src/sdsrp/intermeeting_estimator.hpp"
#include "src/sdsrp/spray_tree.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace dtn::sdsrp {
namespace {

TEST(IntermeetingEstimator, UsesPriorBeforeWarmup) {
  IntermeetingEstimator e(5000.0, /*min_samples=*/3);
  EXPECT_DOUBLE_EQ(e.mean_intermeeting(0.0), 5000.0);
  EXPECT_FALSE(e.warmed_up());
  e.on_contact_end(1, 10.0);
  e.on_contact_start(1, 110.0);  // one sample of 100
  EXPECT_EQ(e.samples(), 1u);
  EXPECT_DOUBLE_EQ(e.mean_intermeeting(200.0), 5000.0);  // still prior
}

TEST(IntermeetingEstimator, NaiveMeanAfterWarmup) {
  IntermeetingEstimator e(5000.0, 3, ImtEstimatorMode::kNaiveMean);
  double t = 0.0;
  for (int i = 0; i < 3; ++i) {
    e.on_contact_end(1, t);
    t += 100.0;
    e.on_contact_start(1, t);  // gaps of exactly 100
    t += 10.0;                 // contact lasts 10
  }
  EXPECT_TRUE(e.warmed_up());
  EXPECT_DOUBLE_EQ(e.mean_intermeeting(t), 100.0);
  EXPECT_DOUBLE_EQ(e.lambda(t), 0.01);
}

TEST(IntermeetingEstimator, CensoredMleCountsOpenExposure) {
  IntermeetingEstimator e(5000.0, 1, ImtEstimatorMode::kCensoredMle);
  // Peer 1: one completed gap of 100 (ends at 0, re-meets at 100).
  e.on_contact_end(1, 0.0);
  e.on_contact_start(1, 100.0);
  // Peer 1's contact ends at 110 and never re-meets; peer 2 ends at 50
  // and never re-meets.
  e.on_contact_end(1, 110.0);
  e.on_contact_end(2, 50.0);
  // At t=500: closed exposure 100, open exposure (500-110)+(500-50)=840,
  // events = 1 -> MLE mean = 940.
  EXPECT_DOUBLE_EQ(e.mean_intermeeting(500.0), 940.0);
  // The naive mean would claim 100 — the censoring bias in action.
}

TEST(IntermeetingEstimator, MleReducesCensoringBias) {
  // True exponential with mean 1000, observed over a window of 800:
  // the naive mean of completed gaps underestimates; the censored MLE
  // should land near the truth.
  const double window = 800.0;
  Rng rng(11);
  IntermeetingEstimator naive(1.0, 1, ImtEstimatorMode::kNaiveMean);
  IntermeetingEstimator mle(1.0, 1, ImtEstimatorMode::kCensoredMle);
  for (std::size_t peer = 0; peer < 4000; ++peer) {
    naive.on_contact_end(peer, 0.0);
    mle.on_contact_end(peer, 0.0);
    // Renewal process of instantaneous contacts until the window closes.
    double t = 0.0;
    for (;;) {
      t += rng.exponential(1.0 / 1000.0);
      if (t >= window) break;
      naive.on_contact_start(peer, t);
      mle.on_contact_start(peer, t);
      naive.on_contact_end(peer, t);
      mle.on_contact_end(peer, t);
    }
  }
  const double naive_mean = naive.mean_intermeeting(window);
  const double mle_mean = mle.mean_intermeeting(window);
  EXPECT_LT(naive_mean, 500.0);           // badly biased low
  EXPECT_NEAR(mle_mean, 1000.0, 120.0);   // near the true mean
}

TEST(IntermeetingEstimator, RegressionNaiveVsMleOnExponentialContacts) {
  // Regression pin for the documented estimator bias (DESIGN.md §4), on
  // a synthetic exponential contact process with *finite* contact
  // durations and an observation window shorter than the true E(I):
  // the naive mean of completed gaps can only see gaps that happened to
  // finish inside the window, so it is length-biased well below the
  // truth; the censored MLE counts open gap exposure and recovers E(I).
  // Pinned bounds, so an estimator change reintroducing the bias (or
  // breaking exposure bookkeeping around contact durations) fails here.
  const double true_ei = 2000.0;
  const double contact_s = 20.0;
  const double window = 1500.0;
  Rng rng(2024);
  IntermeetingEstimator naive(1.0, 1, ImtEstimatorMode::kNaiveMean);
  IntermeetingEstimator mle(1.0, 1, ImtEstimatorMode::kCensoredMle);
  for (std::size_t peer = 0; peer < 5000; ++peer) {
    double t = rng.uniform(0.0, 100.0);  // first contact ends here
    naive.on_contact_end(peer, t);
    mle.on_contact_end(peer, t);
    for (;;) {
      t += rng.exponential(1.0 / true_ei);  // gap
      // Stop once the next contact would straddle the window, so every
      // recorded event lies inside [0, window] and the open exposure at
      // `window` is exact.
      if (t + contact_s >= window) break;
      naive.on_contact_start(peer, t);
      mle.on_contact_start(peer, t);
      t += contact_s;  // in contact: no gap exposure accumulates
      naive.on_contact_end(peer, t);
      mle.on_contact_end(peer, t);
    }
  }
  const double naive_mean = naive.mean_intermeeting(window);
  const double mle_mean = mle.mean_intermeeting(window);
  EXPECT_LT(naive_mean, 0.45 * true_ei);         // biased low, badly
  EXPECT_NEAR(mle_mean, true_ei, 0.08 * true_ei);  // truth within 8%
  // The ordering itself is the regression guarantee.
  EXPECT_LT(naive_mean, mle_mean);
}

TEST(IntermeetingEstimator, FirstContactWithPeerIsNotASample) {
  IntermeetingEstimator e(1000.0, 1);
  e.on_contact_start(3, 500.0);  // no previous end recorded
  EXPECT_EQ(e.samples(), 0u);
}

TEST(IntermeetingEstimator, SamplesPerPeerIndependent) {
  IntermeetingEstimator e(1000.0, 1, ImtEstimatorMode::kNaiveMean);
  e.on_contact_end(1, 0.0);
  e.on_contact_end(2, 0.0);
  e.on_contact_start(1, 50.0);
  e.on_contact_start(2, 150.0);
  EXPECT_EQ(e.samples(), 2u);
  EXPECT_DOUBLE_EQ(e.mean_intermeeting(150.0), 100.0);
}

TEST(IntermeetingEstimator, LambdaMinScalesWithN) {
  IntermeetingEstimator e(1000.0, 1);
  // λ = 1/1000 (prior); λ_min = (N-1) λ.
  EXPECT_DOUBLE_EQ(e.lambda_min(0.0, 100), 99.0 / 1000.0);
  EXPECT_DOUBLE_EQ(e.mean_min_intermeeting(0.0, 100), 1000.0 / 99.0);
  EXPECT_THROW(e.lambda_min(0.0, 1), PreconditionError);
}

TEST(IntermeetingEstimator, LastContactTracksStartAndEnd) {
  IntermeetingEstimator e;
  EXPECT_TRUE(std::isinf(e.last_contact(7)));
  e.on_contact_start(7, 100.0);
  EXPECT_DOUBLE_EQ(e.last_contact(7), 100.0);
  e.on_contact_end(7, 130.0);
  EXPECT_DOUBLE_EQ(e.last_contact(7), 130.0);
}

TEST(IntermeetingEstimator, RecoverExponentialRate) {
  IntermeetingEstimator e(1.0, 10, ImtEstimatorMode::kNaiveMean);
  Rng rng(5);
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    e.on_contact_end(1, t);
    t += rng.exponential(0.001);  // mean gap 1000
    e.on_contact_start(1, t);
    t += 5.0;
  }
  EXPECT_NEAR(e.mean_intermeeting(t), 1000.0, 50.0);
}

TEST(IntermeetingEstimator, RejectsBadPrior) {
  EXPECT_THROW(IntermeetingEstimator(0.0), PreconditionError);
}

// --- spray tree ---

SprayTreeInputs tree(std::vector<double> times, double now, double ei_min,
                     double c0, std::size_t n_nodes = 100) {
  SprayTreeInputs in;
  in.spray_times = std::move(times);
  in.now = now;
  in.mean_min_imt = ei_min;
  in.initial_copies = c0;
  in.n_nodes = n_nodes;
  return in;
}

TEST(SprayTree, NeverSprayedMeansNobodySawIt) {
  EXPECT_DOUBLE_EQ(estimate_m_seen(tree({}, 100.0, 10.0, 32.0)), 0.0);
}

TEST(SprayTree, SingleSprayCountsTheCounterpart) {
  // One spray: only the "+1" term of Eq. 15 — exactly one other node.
  EXPECT_DOUBLE_EQ(estimate_m_seen(tree({50.0}, 500.0, 10.0, 32.0)), 1.0);
}

TEST(SprayTree, BranchesDoublePerMinIntermeetingInterval) {
  // Two sprays anchored at t_n = 30: branch 1 age 20, E(I_min)=10 ->
  // 2^2 = 4, plus the +1 -> 5.
  const double m =
      estimate_m_seen(tree({10.0, 30.0}, 1000.0, 10.0, 32.0));
  EXPECT_DOUBLE_EQ(m, 5.0);
}

TEST(SprayTree, AnchorAtNowGrowsBetweenContacts) {
  SprayTreeInputs in = tree({10.0, 30.0}, 70.0, 10.0, 32.0);
  in.anchor_at_last_spray = false;
  // Branch age = 70-10 = 60 -> 2^6 = 64, capped at branch budget 16 -> 17.
  EXPECT_DOUBLE_EQ(estimate_m_seen(in), 17.0);
}

TEST(SprayTree, BranchBudgetCapsGrowth) {
  // With C=8, branch 1's subtree holds at most 4 copies, however old.
  const double m =
      estimate_m_seen(tree({0.0, 1000.0}, 1000.0, 1.0, 8.0));
  EXPECT_DOUBLE_EQ(m, 5.0);  // min(2^1000, 4) + 1
}

TEST(SprayTree, TotalCappedAtNMinus1) {
  const double m = estimate_m_seen(
      tree({0.0, 10.0, 20.0, 1000.0}, 1000.0, 1.0, 1e9, /*n_nodes=*/50));
  EXPECT_DOUBLE_EQ(m, 49.0);
}

TEST(SprayTree, MoreSpraysNeverDecreaseEstimate) {
  std::vector<double> times;
  double prev = -1.0;
  for (int k = 1; k <= 6; ++k) {
    times.push_back(k * 100.0);
    const double m =
        estimate_m_seen(tree(times, 1000.0, 50.0, 64.0));
    EXPECT_GE(m, prev);
    prev = m;
  }
}

TEST(SprayTree, RejectsBadInputs) {
  EXPECT_THROW(estimate_m_seen(tree({1.0}, 10.0, 0.0, 8.0)),
               PreconditionError);
  SprayTreeInputs in = tree({1.0}, 10.0, 5.0, 8.0);
  in.n_nodes = 1;
  EXPECT_THROW(estimate_m_seen(in), PreconditionError);
}

TEST(SprayTree, NHoldingFollowsEq14) {
  EXPECT_DOUBLE_EQ(estimate_n_holding(10.0, 3.0), 8.0);   // m+1-d
  EXPECT_DOUBLE_EQ(estimate_n_holding(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(estimate_n_holding(2.0, 50.0), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(estimate_n_holding(5.0, -3.0), 6.0);   // negative d ignored
}

}  // namespace
}  // namespace dtn::sdsrp
