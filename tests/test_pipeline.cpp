// Click-style pipeline tests (DESIGN.md §15).
//
// The heart of this file is the golden identity proof: an element-graph
// build of each paper policy (FIFO, Random, GBSD, SDSRP) must be
// digest-*identical* to the legacy closed-class build — not "close", the
// same FNV-1a trajectory through the whole run — on both paper
// scenarios. The pipeline pins live in tests/golden/pipeline_digests.txt
// (regenerate with DTN_REGEN_GOLDEN=1 after an intended change); where a
// legacy pin exists in digests.txt the pipeline pin must equal it.
//
// Around that: parser diagnostics (position-bearing rejection of
// malformed graphs), ScenarioSettings round-trips, the CongestionGate
// element (inert above threshold 1, active below, deterministic), and
// composite checkpoint save/restore under archive v6.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "src/config/scenario.hpp"
#include "src/pipeline/compile.hpp"
#include "src/pipeline/composite_policy.hpp"
#include "src/pipeline/congestion_gate.hpp"
#include "src/pipeline/parser.hpp"
#include "src/snapshot/checkpoint.hpp"
#include "src/util/settings.hpp"

#ifndef DTN_GOLDEN_DIR
#error "DTN_GOLDEN_DIR must point at tests/golden"
#endif
#ifndef DTN_SCENARIO_DIR
#error "DTN_SCENARIO_DIR must point at scenarios/"
#endif

namespace dtn {
namespace {

// The four paper policies as element graphs. DropTail(lowest) flattens
// to the scalar's closed class; fifo/random use their canonical drop
// elements.
struct PolicyPipeline {
  const char* key;   ///< legacy Policy.name
  const char* spec;  ///< equivalent element graph
};
const PolicyPipeline kPolicyPipelines[] = {
    {"fifo", "SprayAndWait -> PriorityQueue(fifo) -> DropHead"},
    {"random", "SprayAndWait -> PriorityQueue(random) -> DropRandom"},
    {"gbsd", "SprayAndWait -> PriorityQueue(gbsd) -> DropTail(lowest)"},
    {"sdsrp", "SprayAndWait -> PriorityQueue(sdsrp) -> DropTail(lowest)"},
};
const char* const kScenarios[] = {"rwp", "taxi"};

// Same literals as test_golden_digests.cpp's pinned scenario.
Scenario pinned_scenario(const std::string& which, const std::string& policy) {
  Scenario sc = which == "taxi" ? Scenario::taxi_paper()
                                : Scenario::random_waypoint_paper();
  sc.n_nodes = 24;
  sc.world.duration = 4000.0;
  sc.rwp.area = Rect::sized(1500.0, 1200.0);
  sc.traffic.interval_min = 30.0;
  sc.traffic.interval_max = 40.0;
  sc.traffic.ttl = 2000.0;
  sc.traffic.initial_copies = 8;
  sc.policy = policy;
  sc.seed = 7;
  return sc;
}

Scenario pipeline_scenario(const std::string& which, const std::string& spec) {
  Scenario sc = pinned_scenario(which, "sdsrp");
  sc.pipeline = spec;
  return sc;
}

std::uint64_t end_digest(const Scenario& sc) {
  auto world = build_world(sc);
  world->run();
  return world->digest();
}

std::map<std::string, std::uint64_t> load_pin_file(const std::string& path) {
  std::map<std::string, std::uint64_t> pins;
  std::ifstream is(path);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string scenario, policy, hex;
    ls >> scenario >> policy >> hex;
    pins[scenario + " " + policy] = std::stoull(hex, nullptr, 16);
  }
  return pins;
}

std::string pipeline_fixture_path() {
  return std::string(DTN_GOLDEN_DIR) + "/pipeline_digests.txt";
}

// --- tentpole: element graphs are digest-identical to closed classes ---

using PipelineCase = std::tuple<const char*, const PolicyPipeline*>;

class PipelineIdentity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PipelineIdentity, TrajectoryMatchesLegacyBuild) {
  const char* scenario = kScenarios[std::get<0>(GetParam())];
  const PolicyPipeline& pp = kPolicyPipelines[std::get<1>(GetParam())];

  auto legacy = build_world(pinned_scenario(scenario, pp.key));
  auto piped = build_world(pipeline_scenario(scenario, pp.spec));
  ASSERT_EQ(legacy->digest(), piped->digest())
      << pp.key << ": initial states differ";

  // Lockstep digest trajectory — not just the endpoint, so a transient
  // divergence that happens to re-converge still fails.
  while (legacy->now() < 4000.0) {
    legacy->run_until(legacy->now() + 500.0);
    piped->run_until(piped->now() + 500.0);
    ASSERT_EQ(legacy->digest(), piped->digest())
        << pp.key << "/" << scenario << " diverged at t=" << legacy->now();
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, PipelineIdentity,
                         ::testing::Combine(::testing::Range(0, 2),
                                            ::testing::Range(0, 4)),
                         [](const auto& info) {
                           return std::string(
                                      kScenarios[std::get<0>(info.param)]) +
                                  "_" +
                                  kPolicyPipelines[std::get<1>(info.param)]
                                      .key;
                         });

TEST(PipelineGolden, EndOfRunDigestsMatchPins) {
  if (std::getenv("DTN_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(pipeline_fixture_path(), std::ios::trunc);
    ASSERT_TRUE(os.good()) << "cannot write " << pipeline_fixture_path();
    os << "# End-of-run World::digest() pins for element-graph builds\n"
       << "# (see test_pipeline.cpp). Keys are the legacy policy each\n"
       << "# graph flattens to; values must stay equal to digests.txt\n"
       << "# where that file pins the same policy.\n"
       << "# Regenerate with: DTN_REGEN_GOLDEN=1 ./test_pipeline\n";
    for (const char* scenario : kScenarios) {
      for (const PolicyPipeline& pp : kPolicyPipelines) {
        char hex[32];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(end_digest(
                          pipeline_scenario(scenario, pp.spec))));
        os << scenario << " " << pp.key << " " << hex << "\n";
      }
    }
    GTEST_SKIP() << "regenerated " << pipeline_fixture_path();
  }

  const auto pins = load_pin_file(pipeline_fixture_path());
  ASSERT_EQ(pins.size(), 8u) << "fixture missing or incomplete: "
                             << pipeline_fixture_path();
  const auto legacy_pins =
      load_pin_file(std::string(DTN_GOLDEN_DIR) + "/digests.txt");
  for (const char* scenario : kScenarios) {
    for (const PolicyPipeline& pp : kPolicyPipelines) {
      const std::string key = std::string(scenario) + " " + pp.key;
      const auto it = pins.find(key);
      ASSERT_NE(it, pins.end()) << "no pipeline pin for " << key;
      EXPECT_EQ(end_digest(pipeline_scenario(scenario, pp.spec)), it->second)
          << key << " drifted; if intended, DTN_REGEN_GOLDEN=1";
      // Cross-pin: where the legacy fixture pins the same policy, the
      // element-graph build must land on the identical digest.
      const auto legacy_it = legacy_pins.find(key);
      if (legacy_it != legacy_pins.end()) {
        EXPECT_EQ(it->second, legacy_it->second)
            << key << ": pipeline pin != legacy closed-class pin";
      }
    }
  }
}

// --- parser & compiler diagnostics ---

struct BadSpec {
  const char* spec;
  int line;  ///< expected 1-based diagnostic line
  int col;   ///< expected column, -1 = don't check
  const char* needle;
};

class PipelineParserRejects : public ::testing::TestWithParam<BadSpec> {};

TEST_P(PipelineParserRejects, WithPositionedDiagnostic) {
  const BadSpec& bad = GetParam();
  try {
    (void)pipeline::parse(bad.spec);
    FAIL() << "accepted malformed spec: " << bad.spec;
  } catch (const pipeline::PipelineError& e) {
    EXPECT_EQ(e.pos().line, bad.line) << e.what();
    if (bad.col >= 0) EXPECT_EQ(e.pos().col, bad.col) << e.what();
    EXPECT_NE(std::string(e.what()).find(bad.needle), std::string::npos)
        << "diagnostic \"" << e.what() << "\" lacks \"" << bad.needle << "\"";
    // Machine-checkable prefix: pipeline:LINE:COL:
    std::ostringstream prefix;
    prefix << "pipeline:" << e.pos().line << ":" << e.pos().col << ":";
    EXPECT_EQ(std::string(e.what()).rfind(prefix.str(), 0), 0u) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, PipelineParserRejects,
    ::testing::Values(
        // Unknown names.
        BadSpec{"SprayAndWait -> Foo -> PriorityQueue(fifo) -> DropHead", 1,
                17, "unknown element class or instance 'Foo'"},
        BadSpec{"q :: Bogus(fifo)", 1, 6, "unknown element class 'Bogus'"},
        // Arity and typing.
        BadSpec{"SprayAndWait -> PriorityQueue() -> DropHead", 1, 17,
                "needs a 'scalar' argument"},
        BadSpec{"SprayAndWait -> PriorityQueue(fifo, extra) -> DropHead", 1,
                37, "too many arguments"},
        BadSpec{"SprayAndWait(copies) -> PriorityQueue(fifo) -> DropHead", 1,
                14, "argument 'copies' needs a value"},
        BadSpec{"SprayAndWait(copies x) -> PriorityQueue(fifo) -> DropHead",
                1, 21, "invalid value 'x'"},
        BadSpec{"SprayAndWait(splat 3) -> PriorityQueue(fifo) -> DropHead", 1,
                14, "unknown argument 'splat'"},
        BadSpec{"SprayAndWait -> PriorityQueue(bogus) -> DropHead", 1, 31,
                "expected one of"},
        BadSpec{"SprayAndWait -> CongestionGate(threshold x) "
                "-> PriorityQueue(fifo) -> DropHead",
                1, 42, "invalid value 'x'"},
        // Graph shape.
        BadSpec{"SprayAndWait -> PriorityQueue(fifo)", 1, 17, "dangles"},
        BadSpec{"SprayAndWait -> DropHead", 1, 17,
                "expected a scheduling queue"},
        BadSpec{"SprayAndWait -> PriorityQueue(fifo) -> "
                "PriorityQueue(fifo) -> DropHead",
                1, 40, "exactly one scheduling queue"},
        BadSpec{"SprayAndWait -> PriorityQueue(fifo) -> CongestionGate "
                "-> DropHead",
                1, 40, "must sit between the router and the queue"},
        BadSpec{"SprayAndWait -> PriorityQueue(fifo) -> DropHead; "
                "Epidemic -> PriorityQueue(fifo) -> DropHead",
                1, -1, "second routing element"},
        BadSpec{"PriorityQueue(fifo) -> DropHead", 1, 1,
                "needs a routing element"},
        BadSpec{"DropHead -> PriorityQueue(fifo)", 1, -1,
                "drop element"},
        // Dangling port (reuse): two chains feed the same queue input.
        BadSpec{"q :: PriorityQueue(fifo); SprayAndWait -> q -> DropHead; "
                "Epidemic -> q -> DropHead",
                1, -1, "input port of 'q' is already connected"},
        // Dangling declared element.
        BadSpec{"c :: CongestionGate\n"
                "SprayAndWait -> PriorityQueue(fifo) -> DropHead",
                1, 1, "never connected"},
        // Disjoint cycle (line-accurate diagnostic on line 2).
        BadSpec{"SprayAndWait -> PriorityQueue(fifo) -> DropHead\n"
                "a :: CongestionGate\n"
                "b :: CongestionGate\n"
                "a -> b\n"
                "b -> a",
                2, 1, "cycle detected"},
        // Duplicate declaration.
        BadSpec{"q :: PriorityQueue(fifo)\n"
                "q :: PriorityQueue(sdsrp)\n"
                "SprayAndWait -> q -> DropHead",
                2, 1, "duplicate declaration of 'q'"}));

TEST(PipelineCompile, RejectsLowestDropUnderRandomOrdering) {
  const auto g = pipeline::parse(
      "SprayAndWait -> PriorityQueue(random) -> DropTail(lowest)");
  try {
    (void)pipeline::compile(g, {});
    FAIL() << "compiled a lowest-priority drop under a random ordering";
  } catch (const pipeline::PipelineError& e) {
    EXPECT_NE(std::string(e.what()).find("use DropRandom"),
              std::string::npos);
  }
}

TEST(PipelineCompile, RejectsNonPositiveCopies) {
  const auto g = pipeline::parse(
      "SprayAndWait(copies 0) -> PriorityQueue(sdsrp) -> DropTail(lowest)");
  EXPECT_THROW((void)pipeline::compile(g, {}), pipeline::PipelineError);
}

// --- named-declaration syntax is equivalent to inline chains ---

TEST(PipelineParser, NamedDeclsEquivalentToInline) {
  const char* named =
      "router :: SprayAndWait(copies 16)\n"
      "q :: PriorityQueue(sdsrp)  # the paper's Eq. 10 ordering\n"
      "tail :: DropTail(lowest)\n"
      "router -> q -> tail\n";
  const char* inline_form =
      "SprayAndWait(copies 16) -> PriorityQueue(sdsrp) -> DropTail(lowest)";
  Scenario a = pipeline_scenario("rwp", named);
  Scenario b = pipeline_scenario("rwp", inline_form);
  auto wa = build_world(a);
  auto wb = build_world(b);
  wa->run_until(1000.0);
  wb->run_until(1000.0);
  EXPECT_EQ(wa->digest(), wb->digest());
}

TEST(PipelineCompile, FlattensCanonicalPairsToClosedClasses) {
  for (const PolicyPipeline& pp : kPolicyPipelines) {
    const auto c = pipeline::compile(pipeline::parse(pp.spec), {});
    EXPECT_TRUE(c.flattened) << pp.spec;
    EXPECT_EQ(c.policy_equiv, pp.key) << pp.spec;
    EXPECT_EQ(std::string(c.policy->name()), pp.key) << pp.spec;
    EXPECT_EQ(c.router_equiv, "spray-and-wait");
  }
  // A non-canonical pair gets the generic composite, which must opt out
  // of the per-node priority memo (two sub-policies, one memo key space).
  const auto c = pipeline::compile(
      pipeline::parse("SprayAndWait -> PriorityQueue(sdsrp) -> DropRandom"),
      {});
  EXPECT_FALSE(c.flattened);
  const auto* composite =
      dynamic_cast<const pipeline::CompositePolicy*>(c.policy.get());
  ASSERT_NE(composite, nullptr);
  EXPECT_FALSE(composite->cache_safe());
  EXPECT_TRUE(composite->uses_dropped_list());
  EXPECT_EQ(std::string(c.policy->name()), "pipeline(sdsrp+random)");
}

TEST(PipelineCompile, CopiesArgumentOverridesTrafficCopies) {
  // copies 16 in the element graph == Traffic.copies = 16 in the legacy
  // build; the pinned scenario's own Traffic.copies (8) must be ignored.
  Scenario legacy = pinned_scenario("rwp", "sdsrp");
  legacy.traffic.initial_copies = 16;
  const Scenario piped = pipeline_scenario(
      "rwp",
      "SprayAndWait(copies 16) -> PriorityQueue(sdsrp) -> DropTail(lowest)");
  EXPECT_EQ(end_digest(legacy), end_digest(piped));
}

// --- ScenarioSettings round-trip ---

TEST(PipelineSettings, RoundTripsThroughScenarioSettings) {
  Scenario sc = pipeline_scenario(
      "rwp",
      "SprayAndWait(copies 16) -> CongestionGate(threshold 0.8) "
      "-> PriorityQueue(sdsrp) -> DropTail(lowest)");
  const Settings s = sc.to_settings();
  EXPECT_TRUE(s.has("Pipeline.spec"));
  const Scenario back = Scenario::from_settings(s);
  EXPECT_EQ(back.pipeline, sc.pipeline);
  // Full fixed point: settings -> scenario -> settings is unchanged.
  EXPECT_EQ(back.to_settings().to_text(), s.to_text());
}

TEST(PipelineSettings, LegacyScenarioHasNoPipelineKey) {
  const Settings s = pinned_scenario("rwp", "sdsrp").to_settings();
  EXPECT_FALSE(s.has("Pipeline.spec"));
}

TEST(PipelineSettings, MalformedSpecFailsAtLoadTime) {
  Settings s = pinned_scenario("rwp", "sdsrp").to_settings();
  s.set("Pipeline.spec", "SprayAndWait -> PriorityQueue(fifo)");
  EXPECT_THROW((void)Scenario::from_settings(s), pipeline::PipelineError);
}

TEST(PipelineSettings, ExemplarScenarioFileLoadsAndCompiles) {
  const Settings s =
      Settings::load(std::string(DTN_SCENARIO_DIR) + "/pipeline_sdsrp.txt");
  const Scenario sc = Scenario::from_settings(s);
  ASSERT_FALSE(sc.pipeline.empty());
  const auto c =
      pipeline::compile(pipeline::parse(sc.pipeline), {});
  ASSERT_TRUE(c.initial_copies.has_value());
  EXPECT_EQ(*c.initial_copies, 16);
  EXPECT_NE(dynamic_cast<const pipeline::GatedRouter*>(c.router.get()),
            nullptr)
      << "exemplar should wrap the router in a congestion gate";
  EXPECT_TRUE(c.flattened);
  EXPECT_EQ(c.policy_equiv, "sdsrp");
}

// --- CongestionGate ---

const char* kUngated =
    "SprayAndWait -> PriorityQueue(sdsrp) -> DropTail(lowest)";

std::string gated(double threshold) {
  std::ostringstream os;
  os << "SprayAndWait -> CongestionGate(threshold " << threshold
     << ") -> PriorityQueue(sdsrp) -> DropTail(lowest)";
  return os.str();
}

TEST(CongestionGate, InertAboveFullOccupancyIsDigestIdentical) {
  // occupancy() <= 1.0 < 2.0, so the gate never closes; the wrapper adds
  // no archive bytes, so the whole run is byte-identical to ungated.
  EXPECT_EQ(end_digest(pipeline_scenario("rwp", gated(2.0))),
            end_digest(pipeline_scenario("rwp", kUngated)));
}

TEST(CongestionGate, ActiveGateChangesOutcomeDeterministically) {
  // 5 buffer slots (2.5 MB / 0.5 MB): occupancy crosses 0.3 at the
  // second resident, so the gate must bite under the pinned load.
  const std::uint64_t gated_digest =
      end_digest(pipeline_scenario("rwp", gated(0.3)));
  EXPECT_NE(gated_digest, end_digest(pipeline_scenario("rwp", kUngated)))
      << "gate at 0.3 occupancy never suppressed a replication";
  EXPECT_EQ(gated_digest, end_digest(pipeline_scenario("rwp", gated(0.3))))
      << "gated build is not deterministic";
}

// --- composite checkpoint round-trip (archive v6) ---

TEST(PipelineCheckpoint, CompositeStateSurvivesSaveRestore) {
  const Scenario sc = pipeline_scenario(
      "rwp", "SprayAndWait -> PriorityQueue(sdsrp) -> DropRandom");
  auto world = build_world(sc);
  world->run_until(2000.0);
  const std::uint64_t mid_digest = world->digest();

  const std::string path =
      ::testing::TempDir() + "/pipeline_composite.ckpt";
  snapshot::save_checkpoint(path, sc, *world);

  // The checkpoint carries element-framed composite state — the layout
  // the v6 version bump exists for.
  EXPECT_EQ(snapshot::read_archive_file(path).version(),
            snapshot::kArchiveVersion);

  auto restored = snapshot::restore_checkpoint(path);
  EXPECT_EQ(restored.scenario.pipeline, sc.pipeline);
  EXPECT_EQ(restored.world->now(), 2000.0);
  ASSERT_EQ(restored.world->digest(), mid_digest)
      << "restored composite state drifted";

  // The RandomPolicy drop stream must resume mid-sequence: running both
  // to the end lands on the same digest.
  world->run();
  restored.world->run();
  EXPECT_EQ(restored.world->digest(), world->digest());
  std::remove(path.c_str());
}

TEST(PipelineCheckpoint, FlattenedPipelineRestoresLikeLegacy) {
  // A flattened pipeline checkpoint embeds Pipeline.spec in its settings
  // and restores through the pipeline build path.
  const Scenario sc = pipeline_scenario("rwp", kUngated);
  auto world = build_world(sc);
  world->run_until(1000.0);
  const std::string path = ::testing::TempDir() + "/pipeline_flat.ckpt";
  snapshot::save_checkpoint(path, sc, *world);
  auto restored = snapshot::restore_checkpoint(path);
  EXPECT_EQ(restored.scenario.pipeline, sc.pipeline);
  EXPECT_EQ(restored.world->digest(), world->digest());
  world->run();
  restored.world->run();
  EXPECT_EQ(restored.world->digest(), world->digest());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dtn
