// Sweep orchestrator tests: lease policy, wire protocol, manifest
// round-trip, shard execution/idempotence, in-process sweeps, and the
// full multi-process coordinator (spawning the real dtn_sweepd binary in
// worker mode) including the crash/re-lease path. The load-bearing
// assertion throughout: results.bin is byte-identical across worker
// counts, lanes, and injected worker death.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/config/scenario.hpp"
#include "src/orch/coordinator.hpp"
#include "src/orch/lease.hpp"
#include "src/orch/manifest.hpp"
#include "src/orch/shard_store.hpp"
#include "src/orch/wire.hpp"
#include "src/orch/worker.hpp"
#include "src/report/sweep.hpp"
#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace dtn {
namespace {

namespace fs = std::filesystem;
using orch::LeaseTable;
using orch::SweepManifest;
using orch::WireMessage;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::size_t count_files_with_ext(const std::string& dir,
                                 const std::string& ext) {
  std::size_t n = 0;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ext) ++n;
  return n;
}

/// 2 points x 2 replicas of a shrunk paper scenario: fast enough for the
/// tier-1 suite, large enough to exercise multi-shard scheduling.
SweepManifest tiny_manifest(std::size_t replicas = 2,
                            std::size_t shard_size = 1) {
  SweepManifest m;
  m.name = "orch-test";
  m.replicas = replicas;
  m.shard_size = shard_size;
  for (double mb : {2.0, 4.0}) {
    SweepPoint p;
    p.x = mb;
    p.scenario = Scenario::random_waypoint_paper();
    p.scenario.policy = "sdsrp";
    p.scenario.buffer_capacity = units::megabytes(mb);
    p.scenario.n_nodes = 30;
    p.scenario.world.duration = 600;
    m.points.push_back(p);
  }
  return m;
}

// --- lease table ---

TEST(LeaseTable, HandsOutLowestPendingFirst) {
  LeaseTable t(3);
  EXPECT_EQ(t.acquire(7, 0.0, 10.0), 0u);
  EXPECT_EQ(t.acquire(8, 0.0, 10.0), 1u);
  EXPECT_EQ(t.acquire(7, 0.0, 10.0), 2u);
  EXPECT_EQ(t.acquire(9, 0.0, 10.0), LeaseTable::kNone);
  EXPECT_EQ(t.pending(), 0u);
  EXPECT_EQ(t.leased(), 3u);
  EXPECT_EQ(t.owner(1), 8u);
}

TEST(LeaseTable, RenewChecksOwnership) {
  LeaseTable t(1);
  ASSERT_EQ(t.acquire(7, 0.0, 10.0), 0u);
  EXPECT_TRUE(t.renew(0, 7, 5.0, 10.0));
  EXPECT_FALSE(t.renew(0, 8, 5.0, 10.0));  // not the holder
}

TEST(LeaseTable, ExpiryRequeuesAndReleasesInCanonicalOrder) {
  LeaseTable t(3);
  ASSERT_EQ(t.acquire(7, 0.0, 10.0), 0u);
  ASSERT_EQ(t.acquire(8, 0.0, 10.0), 1u);
  EXPECT_TRUE(t.renew(1, 8, 9.0, 10.0));  // pushes deadline to 19
  EXPECT_EQ(t.expire(15.0), 1u);          // shard 0 (deadline 10) lapses
  EXPECT_EQ(t.state(0), LeaseTable::State::kPending);
  EXPECT_EQ(t.state(1), LeaseTable::State::kLeased);
  // Re-queued shard 0 is handed out before untouched shard 2.
  EXPECT_EQ(t.acquire(9, 15.0, 10.0), 0u);
}

TEST(LeaseTable, WorkerDeathReturnsItsShards) {
  LeaseTable t(4);
  ASSERT_EQ(t.acquire(7, 0.0, 100.0), 0u);
  ASSERT_EQ(t.acquire(8, 0.0, 100.0), 1u);
  ASSERT_EQ(t.acquire(7, 0.0, 100.0), 2u);
  EXPECT_EQ(t.release_worker(7), 2u);
  EXPECT_EQ(t.pending(), 3u);  // shards 0, 2 re-queued + untouched 3
  EXPECT_EQ(t.state(1), LeaseTable::State::kLeased);
}

TEST(LeaseTable, CompleteAndPreload) {
  LeaseTable t(2);
  t.preload_done(1);
  ASSERT_EQ(t.acquire(7, 0.0, 10.0), 0u);
  EXPECT_TRUE(t.complete(0));
  EXPECT_FALSE(t.complete(0));  // duplicate DONE is harmless
  EXPECT_TRUE(t.all_done());
  EXPECT_EQ(t.acquire(8, 0.0, 10.0), LeaseTable::kNone);
}

// --- wire protocol ---

TEST(Wire, RoundTripsEveryKind) {
  const std::vector<WireMessage> msgs = {
      WireMessage::hello(1234),
      WireMessage::lease(7),
      WireMessage::heartbeat(7, 3, 9),
      WireMessage::done(7),
      WireMessage::shutdown(),
      WireMessage::error("worker exploded: shard 7"),
  };
  for (const auto& m : msgs) {
    const WireMessage back = orch::decode(orch::encode(m));
    EXPECT_EQ(back.kind, m.kind);
    EXPECT_EQ(back.pid, m.pid);
    EXPECT_EQ(back.shard, m.shard);
    EXPECT_EQ(back.runs_done, m.runs_done);
    EXPECT_EQ(back.runs_total, m.runs_total);
    EXPECT_EQ(back.text, m.text);
  }
}

TEST(Wire, RejectsMalformedLines) {
  EXPECT_THROW(orch::decode(""), PreconditionError);
  EXPECT_THROW(orch::decode("FROBNICATE shard=1"), PreconditionError);
  EXPECT_THROW(orch::decode("LEASE"), PreconditionError);
  EXPECT_THROW(orch::decode("LEASE shard=abc"), PreconditionError);
  EXPECT_THROW(orch::decode("HEARTBEAT shard=1 done=2"), PreconditionError);
}

// --- manifest ---

TEST(Manifest, TextRoundTrip) {
  const SweepManifest m = tiny_manifest(3, 2);
  const std::string text = m.to_text();
  const SweepManifest back = SweepManifest::from_text(text);
  EXPECT_EQ(back.name, m.name);
  EXPECT_EQ(back.replicas, m.replicas);
  EXPECT_EQ(back.shard_size, m.shard_size);
  ASSERT_EQ(back.points.size(), m.points.size());
  EXPECT_EQ(back.points[1].x, m.points[1].x);
  // The scenario blocks must survive exactly: re-serialization is stable.
  EXPECT_EQ(back.to_text(), text);
}

TEST(Manifest, RunGridIsCanonical) {
  const SweepManifest m = tiny_manifest(3, 2);  // 2 points x 3 = 6 runs
  EXPECT_EQ(m.total_runs(), 6u);
  EXPECT_EQ(m.shard_count(), 3u);
  EXPECT_EQ(m.shard_runs(2).first, 4u);
  EXPECT_EQ(m.shard_runs(2).second, 6u);
  EXPECT_EQ(m.run_ref(4).point, 1u);
  EXPECT_EQ(m.run_ref(4).replica, 1u);
  EXPECT_EQ(m.label_for(4), "p1_");
  // Replica bumps the seed; everything else matches the point scenario.
  EXPECT_EQ(m.scenario_for(4).seed, m.points[1].scenario.seed + 1);
}

TEST(Manifest, ValidateRejectsNonsense) {
  SweepManifest m = tiny_manifest();
  m.shard_size = 0;
  EXPECT_THROW(m.validate(), PreconditionError);
  m = tiny_manifest();
  m.points.clear();
  EXPECT_THROW(m.validate(), PreconditionError);
}

// --- stale-checkpoint hygiene (ISSUE satellite) ---

TEST(CheckpointHygiene, StaleCkptBesideDoneIsRemovedOnResume) {
  const std::string dir = fresh_dir("orch_stale_ckpt");
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 30;
  sc.world.duration = 600;

  CheckpointOptions ckpt;
  ckpt.dir = dir;
  ckpt.interval_s = 150.0;
  ckpt.keep_files = true;
  const MetricPoint first = run_scenario(sc, nullptr, ckpt, "hy_");

  const std::string stem = run_file_stem(dir, sc, "hy_");
  ASSERT_TRUE(fs::exists(stem + ".done"));
  // A periodic .ckpt legitimately survives a keep_files run; make sure
  // one exists (and is never read) by planting junk bytes.
  std::ofstream(stem + ".ckpt", std::ios::binary) << "stale junk";
  ASSERT_TRUE(fs::exists(stem + ".ckpt"));

  const MetricPoint second = run_scenario(sc, nullptr, ckpt, "hy_");
  EXPECT_FALSE(fs::exists(stem + ".ckpt"))
      << "resume must clean the stale checkpoint beside the done marker";
  EXPECT_TRUE(fs::exists(stem + ".done"));
  EXPECT_EQ(first.delivery_ratio, second.delivery_ratio);
  EXPECT_EQ(first.avg_latency, second.avg_latency);
}

// --- shard execution ---

TEST(Worker, RunShardIsIdempotentAndCleansRunFiles) {
  const std::string dir = fresh_dir("orch_run_shard");
  const SweepManifest m = tiny_manifest();
  orch::WorkerOptions opts;
  opts.ckpt_interval_s = 150.0;

  std::vector<std::size_t> progress;
  opts.on_progress = [&](std::size_t, std::size_t done, std::size_t) {
    progress.push_back(done);
  };
  const orch::ShardResult r1 = orch::run_shard(m, dir, 0, opts);
  EXPECT_FALSE(progress.empty());
  ASSERT_EQ(r1.partials.size(), 1u);
  EXPECT_EQ(r1.partials[0].first, 0u);  // shard 0 = point 0, replica 0
  EXPECT_EQ(r1.partials[0].second.delivery_ratio.count(), 1u);
  ASSERT_TRUE(fs::exists(orch::shard_result_path(dir, 0)));
  // keep_run_files=false: the durable shard file replaces run markers.
  EXPECT_EQ(count_files_with_ext(dir, ".ckpt"), 0u);
  EXPECT_EQ(count_files_with_ext(dir, ".done"), 0u);

  // Second execution (the re-lease-after-crash path) short-circuits on
  // the existing result file and returns identical aggregates.
  const orch::ShardResult r2 = orch::run_shard(m, dir, 0, opts);
  EXPECT_EQ(r2.partials[0].second, r1.partials[0].second);
}

TEST(Worker, WireLoopServesLeases) {
  const std::string dir = fresh_dir("orch_worker_loop");
  const SweepManifest m = tiny_manifest();
  std::istringstream in("LEASE shard=1\nSHUTDOWN\n");
  std::ostringstream out;
  orch::WorkerOptions opts;
  EXPECT_EQ(orch::run_worker_loop(in, out, m, dir, opts), 0);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(orch::decode(line).kind, orch::MsgKind::kHello);
  bool saw_done = false;
  while (std::getline(lines, line)) {
    const WireMessage msg = orch::decode(line);
    if (msg.kind == orch::MsgKind::kDone) {
      EXPECT_EQ(msg.shard, 1u);
      saw_done = true;
    }
  }
  EXPECT_TRUE(saw_done);
  EXPECT_TRUE(fs::exists(orch::shard_result_path(dir, 1)));
}

// --- in-process sweeps: lanes must not change bytes ---

TEST(InProcess, LaneCountDoesNotChangeResultBytes) {
  const SweepManifest m = tiny_manifest();
  const std::string d1 = fresh_dir("orch_lanes1");
  const std::string d2 = fresh_dir("orch_lanes2");

  orch::InProcessOptions o1;
  o1.lanes = 1;
  orch::InProcessOptions o2;
  o2.lanes = 2;
  const auto a1 = orch::run_sweep_inprocess(m, d1, o1);
  const auto a2 = orch::run_sweep_inprocess(m, d2, o2);

  ASSERT_EQ(a1.size(), 2u);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(file_bytes(orch::results_path(d1)),
            file_bytes(orch::results_path(d2)));

  // And the orchestrated aggregates equal the plain sweep runner's —
  // the subsystem changes scheduling, never results.
  const auto plain = run_sweep(m.points, m.replicas);
  EXPECT_EQ(a1, plain);
}

}  // namespace

// --- multi-process coordinator (real dtn_sweepd worker binary) ---

#ifdef DTN_SWEEPD_PATH
namespace {

orch::CoordinatorOptions worker_opts(const std::string& dir,
                                     std::size_t workers) {
  orch::CoordinatorOptions co;
  co.workers = workers;
  co.lease_ttl_s = 120.0;
  co.progress_interval_s = 0.05;
  co.max_wall_s = 120.0;  // safety net: never hang the suite
  co.worker_argv = {DTN_SWEEPD_PATH, "worker",
                    "--manifest", orch::manifest_path(dir),
                    "--dir", dir,
                    "--ckpt-interval-s", "150"};
  return co;
}

TEST(Coordinator, WorkerCountDoesNotChangeResultBytes) {
  const SweepManifest m = tiny_manifest();
  const std::string base = fresh_dir("orch_proc_base");
  orch::InProcessOptions ip;
  const auto want = orch::run_sweep_inprocess(m, base, ip);
  const auto want_bytes = file_bytes(orch::results_path(base));

  for (std::size_t workers : {1u, 2u}) {
    const std::string dir =
        fresh_dir("orch_proc_w" + std::to_string(workers));
    const auto outcome =
        orch::run_coordinator(m, dir, worker_opts(dir, workers));
    EXPECT_EQ(outcome.shards_total, m.shard_count());
    EXPECT_EQ(outcome.workers_lost, 0u);
    EXPECT_EQ(outcome.aggregates, want);
    EXPECT_EQ(file_bytes(orch::results_path(dir)), want_bytes)
        << workers << " workers";
    EXPECT_TRUE(fs::exists(orch::progress_path(dir)));
    const auto progress = file_bytes(orch::progress_path(dir));
    const std::string text(progress.begin(), progress.end());
    EXPECT_NE(text.find("\"shards\""), std::string::npos);
    EXPECT_NE(text.find("\"workers\""), std::string::npos);
  }
}

TEST(Coordinator, SigkilledWorkerIsReLeasedByteIdentically) {
  const SweepManifest m = tiny_manifest(/*replicas=*/3);  // 6 shards
  const std::string base = fresh_dir("orch_chaos_base");
  orch::InProcessOptions ip;
  orch::run_sweep_inprocess(m, base, ip);
  const auto want_bytes = file_bytes(orch::results_path(base));

  const std::string dir = fresh_dir("orch_chaos");
  orch::CoordinatorOptions co = worker_opts(dir, 2);
  co.chaos_kill_after_shards = 1;  // SIGKILL a leased worker mid-sweep
  const auto outcome = orch::run_coordinator(m, dir, co);

  EXPECT_EQ(outcome.workers_lost, 1u);
  EXPECT_GE(outcome.shards_reassigned, 1u);
  EXPECT_EQ(file_bytes(orch::results_path(dir)), want_bytes)
      << "crash + re-lease must not change a single byte";
  // keep_files=false: no checkpoint or shard debris survives recovery.
  EXPECT_EQ(count_files_with_ext(dir, ".ckpt"), 0u);
  EXPECT_EQ(count_files_with_ext(dir, ".done"), 0u);
  EXPECT_EQ(count_files_with_ext(dir, ".sdone"), 0u);
}

TEST(Coordinator, ResumesFromExistingShardFiles) {
  const SweepManifest m = tiny_manifest();
  const std::string dir = fresh_dir("orch_resume");
  // Pre-run half the shards out-of-band, as a crashed fleet would leave.
  orch::WorkerOptions w;
  orch::run_shard(m, dir, 0, w);
  orch::run_shard(m, dir, 2, w);

  const auto outcome = orch::run_coordinator(m, dir, worker_opts(dir, 1));
  EXPECT_EQ(outcome.shards_resumed, 2u);
  EXPECT_EQ(outcome.shards_total, 4u);

  const std::string base = fresh_dir("orch_resume_base");
  orch::InProcessOptions ip;
  orch::run_sweep_inprocess(m, base, ip);
  EXPECT_EQ(file_bytes(orch::results_path(dir)),
            file_bytes(orch::results_path(base)));
}

TEST(Coordinator, StatusEndpointBindsEphemeralPort) {
  const SweepManifest m = tiny_manifest(/*replicas=*/1);
  const std::string dir = fresh_dir("orch_status");
  orch::CoordinatorOptions co = worker_opts(dir, 1);
  co.status_port = 0;  // ephemeral
  const auto outcome = orch::run_coordinator(m, dir, co);
  EXPECT_GT(outcome.status_port, 0);
}

}  // namespace
#endif  // DTN_SWEEPD_PATH

}  // namespace dtn
