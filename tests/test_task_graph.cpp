/// \file test_task_graph.cpp
/// Unit tests for the persistent-worker task-graph executor: chunk
/// coverage at awkward grain boundaries, dependency ordering,
/// zero-item nodes, the single-lane inline fast path, exception
/// propagation, and reuse across many runs (the per-step dispatch
/// pattern World relies on).

#include "src/util/task_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dtn {
namespace {

TEST(TaskExecutor, ForEachCoversEveryIndexExactlyOnce) {
  TaskExecutor ex(4);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{64}, std::size_t{65}, std::size_t{1000}}) {
    for (std::size_t grain : {std::size_t{1}, std::size_t{8}, std::size_t{64},
                              std::size_t{2000}}) {
      std::vector<std::atomic<int>> hits(n);
      TaskKernel k = [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      };
      ex.for_each(n, grain, k);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain
                                     << " i=" << i;
    }
  }
}

TEST(TaskExecutor, SingleLaneRunsInlineOnCaller) {
  TaskExecutor ex(1);
  EXPECT_EQ(ex.lanes(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  bool same_thread = true;
  TaskKernel k = [&](std::size_t, std::size_t) {
    if (std::this_thread::get_id() != caller) same_thread = false;
  };
  ex.for_each(100, 7, k);
  EXPECT_TRUE(same_thread);

  TaskGraph g;
  int a = g.add_serial([&](std::size_t, std::size_t) {
    if (std::this_thread::get_id() != caller) same_thread = false;
  });
  g.add_serial([&](std::size_t, std::size_t) {
    if (std::this_thread::get_id() != caller) same_thread = false;
  }, {a});
  ex.run(g);
  EXPECT_TRUE(same_thread);
}

TEST(TaskExecutor, ZeroItemsSkipsKernelButReleasesSuccessors) {
  TaskExecutor ex(3);
  TaskGraph g;
  std::atomic<int> calls{0};
  std::atomic<bool> tail_ran{false};
  int a = g.add([&](std::size_t, std::size_t) { calls.fetch_add(1); }, 4);
  g.add_serial([&](std::size_t, std::size_t) { tail_ran.store(true); }, {a});
  g.set_items(a, 0);
  ex.run(g);
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(tail_ran.load());
}

TEST(TaskExecutor, DependenciesOrderPhases) {
  // Diamond: root fan-out -> two parallel phases -> serial join. The
  // join must observe every write from both branches.
  TaskExecutor ex(4);
  TaskGraph g;
  constexpr std::size_t kN = 500;
  std::vector<int> a(kN, 0), b(kN, 0);
  long long total = -1;
  int na = g.add([&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) a[i] = static_cast<int>(i);
  }, 16);
  int nb = g.add([&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) b[i] = 2 * static_cast<int>(i);
  }, 16);
  int nj = g.add_serial([&](std::size_t, std::size_t) {
    total = 0;
    for (std::size_t i = 0; i < kN; ++i) total += a[i] + b[i];
  }, {na, nb});
  (void)nj;
  g.set_items(na, kN);
  g.set_items(nb, kN);
  for (int rep = 0; rep < 50; ++rep) {
    std::fill(a.begin(), a.end(), 0);
    std::fill(b.begin(), b.end(), 0);
    total = -1;
    ex.run(g);
    const long long want = 3LL * (kN - 1) * kN / 2;
    ASSERT_EQ(total, want) << "rep=" << rep;
  }
}

TEST(TaskExecutor, ChainThroughZeroChunkMiddleNode) {
  // a -> (zero-item) -> c: the zero-chunk middle node must cascade.
  TaskExecutor ex(2);
  TaskGraph g;
  std::vector<int> order;
  int a = g.add_serial([&](std::size_t, std::size_t) { order.push_back(1); });
  int mid = g.add([](std::size_t, std::size_t) {}, 1, {a});
  g.add_serial([&](std::size_t, std::size_t) { order.push_back(3); }, {mid});
  g.set_items(mid, 0);
  ex.run(g);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 3);
}

TEST(TaskExecutor, ExceptionFromWorkerTaskPropagatesToCaller) {
  for (std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
    TaskExecutor ex(lanes);
    TaskKernel bad = [](std::size_t, std::size_t e) {
      if (e >= 40) throw std::runtime_error("boom");
    };
    EXPECT_THROW(ex.for_each(256, 8, bad), std::runtime_error)
        << "lanes=" << lanes;
    // The executor must stay usable after a failed run.
    std::atomic<int> ok{0};
    TaskKernel good = [&](std::size_t b, std::size_t e) {
      ok.fetch_add(static_cast<int>(e - b));
    };
    ex.for_each(100, 9, good);
    EXPECT_EQ(ok.load(), 100) << "lanes=" << lanes;
  }
}

TEST(TaskExecutor, ExceptionInGraphNodeAbandonsRunButGraphIsReusable) {
  TaskExecutor ex(4);
  TaskGraph g;
  std::atomic<int> runs{0};
  bool fail = true;
  int a = g.add_serial([&](std::size_t, std::size_t) {
    if (fail) throw std::logic_error("node failed");
    runs.fetch_add(1);
  });
  g.add_serial([&](std::size_t, std::size_t) { runs.fetch_add(1); }, {a});
  EXPECT_THROW(ex.run(g), std::logic_error);
  fail = false;
  ex.run(g);
  EXPECT_EQ(runs.load(), 2);
}

TEST(TaskExecutor, ManyRepeatedRunsStaySane) {
  // The per-step dispatch pattern: one graph, thousands of runs.
  TaskExecutor ex(3);
  TaskGraph g;
  constexpr std::size_t kN = 97;  // awkward: not a multiple of the grain
  std::vector<long long> data(kN, 0);
  long long sum = 0;
  int fill = g.add([&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) data[i] += 1;
  }, 10);
  g.add_serial([&](std::size_t, std::size_t) {
    sum = std::accumulate(data.begin(), data.end(), 0LL);
  }, {fill});
  g.set_items(fill, kN);
  constexpr int kRuns = 2000;
  for (int r = 0; r < kRuns; ++r) ex.run(g);
  EXPECT_EQ(sum, static_cast<long long>(kN) * kRuns);
}

TEST(TaskExecutor, ForEachInlineWhenNAtMostGrain) {
  TaskExecutor ex(8);
  const std::thread::id caller = std::this_thread::get_id();
  bool inline_run = false;
  TaskKernel k = [&](std::size_t b, std::size_t e) {
    inline_run = (std::this_thread::get_id() == caller) && b == 0 && e == 5;
  };
  ex.for_each(5, 16, k);
  EXPECT_TRUE(inline_run);
}

}  // namespace
}  // namespace dtn
