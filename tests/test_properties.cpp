// Property-based tests: structural invariants that must hold for ANY
// seed, policy, and router — checked over randomized small worlds at
// multiple points in simulated time.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>

#include "src/config/scenario.hpp"
#include "src/core/node.hpp"
#include "src/mobility/stationary.hpp"
#include "src/pipeline/compile.hpp"
#include "src/pipeline/parser.hpp"
#include "src/routing/spray_and_wait.hpp"
#include "src/util/rng.hpp"

namespace dtn {
namespace {

using PropertyParams = std::tuple<std::uint64_t /*seed*/,
                                  const char* /*policy*/,
                                  const char* /*router*/>;

class WorldInvariants : public ::testing::TestWithParam<PropertyParams> {
 protected:
  Scenario scenario() const {
    const auto [seed, policy, router] = GetParam();
    Scenario sc = Scenario::random_waypoint_paper();
    sc.n_nodes = 25;
    sc.world.duration = 4000.0;
    sc.rwp.area = Rect::sized(1200.0, 900.0);
    sc.traffic.interval_min = 20.0;
    sc.traffic.interval_max = 30.0;
    sc.traffic.ttl = 2500.0;
    sc.traffic.initial_copies = 8;
    sc.buffer_capacity = 1'500'000;  // three slots: drops guaranteed
    sc.seed = seed;
    sc.policy = policy;
    sc.router = router;
    return sc;
  }

  // Checks every invariant on the current world state.
  static void check_invariants(const World& world) {
    std::unordered_map<MessageId, std::size_t> holders;
    std::unordered_map<MessageId, int> tokens;
    std::unordered_map<MessageId, int> budget;

    for (NodeId id = 0; id < world.node_count(); ++id) {
      const Node& node = world.node(id);
      // Buffer byte accounting is exact.
      std::int64_t used = 0;
      for (const auto& m : node.buffer().messages()) {
        used += m.size;
        ++holders[m.id];
        tokens[m.id] += m.copies;
        budget[m.id] = m.initial_copies;
        // Per-copy sanity.
        EXPECT_GE(m.copies, 1) << "node " << id << " msg " << m.id;
        EXPECT_LE(m.copies, m.initial_copies);
        EXPECT_GE(m.hops, 0);
        EXPECT_GE(m.received, m.created);
        // Spray lineage is time-ordered.
        for (std::size_t k = 1; k < m.spray_times.size(); ++k) {
          EXPECT_LE(m.spray_times[k - 1], m.spray_times[k] + 1e-9);
        }
      }
      EXPECT_EQ(used, node.buffer().used()) << "node " << id;
      EXPECT_LE(used, node.buffer().capacity()) << "node " << id;
    }

    // Registry ground truth matches buffers.
    for (const auto& [msg, count] : holders) {
      EXPECT_DOUBLE_EQ(world.registry().n_holding(msg),
                       static_cast<double>(count))
          << "msg " << msg;
    }
    // Copy-token conservation: spray-family routers never exceed the
    // budget (flooding routers do not track tokens).
    const std::string router_name = world.router().name();
    if (router_name.find("spray") != std::string::npos) {
      for (const auto& [msg, total] : tokens) {
        EXPECT_LE(total, budget[msg]) << "msg " << msg;
      }
    }
    // Binary-spray lineage consistency: with a power-of-two budget, a
    // copy that went through k binary splits holds C/2^k tokens and
    // carries exactly k spray timestamps (the Eq. 15 input).
    if (router_name == std::string("spray-and-wait-binary")) {
      for (NodeId id = 0; id < world.node_count(); ++id) {
        for (const auto& m : world.node(id).buffer().messages()) {
          if ((m.initial_copies & (m.initial_copies - 1)) != 0) continue;
          const double k = std::log2(static_cast<double>(m.initial_copies) /
                                     static_cast<double>(m.copies));
          EXPECT_DOUBLE_EQ(static_cast<double>(m.spray_times.size()), k)
              << "msg " << m.id << " at node " << id;
        }
      }
    }

    // Stats consistency.
    const SimStats& s = world.stats();
    EXPECT_LE(s.delivered, s.created);
    EXPECT_LE(s.transfers_completed + s.transfers_aborted +
                  s.admission_rejected + s.duplicates,
              s.transfers_started + s.transfers_aborted);
    EXPECT_GE(s.transfers_started,
              s.transfers_completed + s.admission_rejected + s.duplicates);
    EXPECT_EQ(s.hopcounts.count(), s.delivered);
    EXPECT_EQ(s.latency.count(), s.delivered);
    if (s.delivered > 0) {
      EXPECT_GE(s.hopcounts.min(), 1.0);
      EXPECT_GE(s.latency.min(), 0.0);
    }
  }
};

TEST_P(WorldInvariants, HoldAtEveryCheckpoint) {
  auto world = build_world(scenario());
  for (double t = 1000.0; t <= 4000.0; t += 1000.0) {
    world->run_until(t);
    check_invariants(*world);
  }
}

std::string sanitize(std::string name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(c);
    } else if (c == '-' || c == '_') {
      out.push_back('_');
    }  // anything else (pipeline spec punctuation) is dropped
  }
  return out;
}

std::string policy_seed_name(
    const ::testing::TestParamInfo<PropertyParams>& info) {
  return sanitize(std::string(std::get<1>(info.param)) + "_seed" +
                  std::to_string(std::get<0>(info.param)));
}

std::string router_policy_name(
    const ::testing::TestParamInfo<PropertyParams>& info) {
  return sanitize(std::string(std::get<2>(info.param)) + "_" +
                  std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, WorldInvariants,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values("fifo", "ttl-ratio", "copies-ratio",
                                         "sdsrp", "sdsrp-oracle", "random"),
                       ::testing::Values("spray-and-wait")),
    policy_seed_name);

INSTANTIATE_TEST_SUITE_P(
    Routers, WorldInvariants,
    ::testing::Combine(::testing::Values(7u),
                       ::testing::Values("fifo", "sdsrp"),
                       ::testing::Values("epidemic", "direct-delivery",
                                         "first-contact", "spray-and-focus",
                                         "spray-and-wait-source")),
    router_policy_name);

// Determinism as a property: identical seeds give identical outcomes for
// every policy (including RandomPolicy, whose stream is seeded).
class DeterminismProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismProperty, IdenticalSeedsIdenticalRuns) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 20;
  sc.world.duration = 2500.0;
  sc.rwp.area = Rect::sized(1000.0, 800.0);
  sc.traffic.ttl = 2000.0;
  sc.policy = GetParam();
  auto w1 = build_world(sc);
  auto w2 = build_world(sc);
  w1->run();
  w2->run();
  EXPECT_EQ(w1->stats().delivered, w2->stats().delivered);
  EXPECT_EQ(w1->stats().transfers_started, w2->stats().transfers_started);
  EXPECT_EQ(w1->stats().drops, w2->stats().drops);
  EXPECT_EQ(w1->stats().ttl_expired, w2->stats().ttl_expired);
  // Final buffer states match message-for-message.
  for (NodeId id = 0; id < w1->node_count(); ++id) {
    const auto& m1 = w1->node(id).buffer().messages();
    const auto& m2 = w2->node(id).buffer().messages();
    ASSERT_EQ(m1.size(), m2.size()) << "node " << id;
    for (std::size_t i = 0; i < m1.size(); ++i) {
      EXPECT_EQ(m1[i].id, m2[i].id);
      EXPECT_EQ(m1[i].copies, m2[i].copies);
      EXPECT_EQ(m1[i].hops, m2[i].hops);
    }
  }
}

std::string bare_policy_name(
    const ::testing::TestParamInfo<const char*>& info) {
  return sanitize(info.param);
}

INSTANTIATE_TEST_SUITE_P(Policies, DeterminismProperty,
                         ::testing::Values("fifo", "random", "sdsrp",
                                           "copies-ratio"),
                         bare_policy_name);

// Model-based fuzz of Buffer + Node::admit against a naive reference
// model. The model is a plain map id -> (size, expiry) plus a pinned
// set; it does not predict *which* victim a policy evicts (that is the
// policy's business) but it pins down everything structural:
//   * byte accounting is exact after every operation;
//   * `Buffer::revision()` is monotonic and bumps exactly once per
//     membership change (inserts, takes, evictions, purge removals);
//   * pinned messages are never evicted by admission and never purged;
//   * `would_admit` is a faithful dry run of `admit` (deterministic
//     policies only — RandomPolicy draws from its stream per decision);
//   * a rejected admission leaves the buffer untouched;
//   * `purge_expired` removes exactly the expired unpinned residents.
class BufferModelFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(BufferModelFuzz, AdmissionAgreesWithNaiveModel) {
  const std::string policy_name = GetParam();
  // "pipeline:" params build the policy through the element-graph
  // compiler instead of Policy.name — the composite's element-initiated
  // drops must satisfy the same bump-exactness assertions (one
  // Buffer::revision bump per membership change) as the closed classes.
  const bool is_pipeline = policy_name.rfind("pipeline:", 0) == 0;
  const bool deterministic = policy_name.find("random") == std::string::npos &&
                             policy_name.find("Random") == std::string::npos;
  Scenario sc = Scenario::random_waypoint_paper();
  if (!is_pipeline) sc.policy = policy_name;

  for (const std::uint64_t seed : {11ull, 29ull, 83ull}) {
    std::unique_ptr<BufferPolicy> policy;
    if (is_pipeline) {
      pipeline::CompileOptions opts;
      opts.policy_seed = seed;
      policy = pipeline::compile(
                   pipeline::parse(policy_name.substr(sizeof("pipeline:") - 1)),
                   opts)
                   .policy;
    } else {
      policy = make_policy(sc, seed);
    }
    SprayAndWaitRouter router;
    constexpr std::int64_t kCapacity = 3'000'000;
    MessageArena arena;
    Node node(0, std::make_unique<StationaryModel>(Vec2{0.0, 0.0}), kCapacity,
              &router, policy.get(), arena);

    struct Entry {
      std::int64_t size = 0;
      SimTime expiry = 0.0;
    };
    std::map<MessageId, Entry> model;
    std::set<MessageId> pinned;

    Rng rng(seed * 7919 + 1);
    SimTime now = 0.0;
    MessageId next_id = 1;
    std::uint64_t last_rev = node.buffer().revision();

    // Uniform pick from an ordered set/map (deterministic under the seed).
    const auto pick = [&rng](const auto& container) {
      auto it = container.begin();
      std::advance(it, rng.uniform_int(
                           0, static_cast<std::int64_t>(container.size()) - 1));
      return *it;
    };

    for (int op = 0; op < 400; ++op) {
      now += rng.uniform(1.0, 40.0);
      PolicyContext ctx;
      ctx.now = now;
      ctx.n_nodes = 16;
      ctx.node = &node;
      const double roll = rng.uniform01();

      if (roll < 0.50) {  // admit a fresh message
        Message m;
        m.id = next_id++;
        m.source = 1;
        m.destination = 2;
        m.size = rng.uniform_int(200'000, 900'000);
        m.created = now;
        m.ttl = rng.uniform(50.0, 2000.0);
        m.initial_copies = 8;
        m.copies = static_cast<int>(rng.uniform_int(1, 8));
        m.received = now;
        const Message probe = m;
        const bool predicted = deterministic && node.would_admit(probe, ctx);
        const auto res = node.admit(std::move(m), ctx);
        if (deterministic) {
          EXPECT_EQ(res.admitted, predicted) << "dry run disagreed with admit";
        }
        for (const Message& e : res.evicted) {
          EXPECT_EQ(pinned.count(e.id), 0u) << "evicted pinned msg " << e.id;
          ASSERT_EQ(model.count(e.id), 1u) << "evicted non-resident " << e.id;
          model.erase(e.id);
        }
        std::size_t bumps = res.evicted.size();
        if (res.admitted) {
          model[probe.id] = Entry{probe.size, probe.expiry()};
          ++bumps;
        } else {
          EXPECT_TRUE(res.evicted.empty())
              << "rejected admission must not evict";
        }
        EXPECT_EQ(node.buffer().revision(), last_rev + bumps);
      } else if (roll < 0.65 && !model.empty()) {  // take (transfer/drop)
        const MessageId id = pick(model).first;
        if (pinned.count(id) > 0) {
          node.unpin(id);
          pinned.erase(id);
        }
        const Message gone = node.buffer().take(id);
        EXPECT_EQ(gone.size, model[id].size);
        model.erase(id);
        EXPECT_EQ(node.buffer().revision(), last_rev + 1);
      } else if (roll < 0.75 && !model.empty()) {  // pin (transfer start)
        const MessageId id = pick(model).first;
        if (pinned.count(id) == 0) {
          node.pin(id);
          pinned.insert(id);
        }
        EXPECT_TRUE(node.is_pinned(id));
      } else if (roll < 0.85 && !pinned.empty()) {  // unpin (transfer end)
        const MessageId id = pick(pinned);
        node.unpin(id);
        pinned.erase(id);
        EXPECT_FALSE(node.is_pinned(id));
      } else {  // TTL purge
        const auto removed = node.buffer().purge_expired(now, node.pinned());
        for (const Message& r : removed) {
          EXPECT_EQ(pinned.count(r.id), 0u) << "purged pinned msg " << r.id;
          ASSERT_EQ(model.count(r.id), 1u);
          EXPECT_LE(model[r.id].expiry, now);
          model.erase(r.id);
        }
        EXPECT_EQ(node.buffer().revision(), last_rev + removed.size());
        // Completeness: no expired unpinned resident survives.
        for (const auto& [id, e] : model) {
          if (pinned.count(id) == 0) EXPECT_GT(e.expiry, now) << "msg " << id;
        }
      }

      // Structural invariants after every operation.
      std::int64_t used = 0;
      for (const auto& [id, e] : model) used += e.size;
      EXPECT_EQ(node.buffer().used(), used);
      EXPECT_EQ(node.buffer().count(), model.size());
      EXPECT_LE(node.buffer().used(), node.buffer().capacity());
      EXPECT_GE(node.buffer().revision(), last_rev) << "revision went back";
      for (MessageId id : pinned) {
        EXPECT_TRUE(node.buffer().has(id)) << "pinned msg " << id << " lost";
      }
      for (const auto& [id, e] : model) {
        const Message* m = node.buffer().find(id);
        ASSERT_NE(m, nullptr) << "model msg " << id << " missing";
        EXPECT_EQ(m->size, e.size);
      }
      last_rev = node.buffer().revision();
    }
    EXPECT_GT(last_rev, 0u) << "fuzz never churned the buffer";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, BufferModelFuzz,
    ::testing::Values(
        "fifo", "ttl-ratio", "copies-ratio", "sdsrp", "random",
        // Element-graph composites: a deterministic one (reject-newcomer
        // drop under a ttl ordering) and a stochastic one (random victim
        // under an sdsrp ordering).
        "pipeline:SprayAndWait -> PriorityQueue(ttl-ratio) -> DropTail(reject)",
        "pipeline:SprayAndWait -> PriorityQueue(sdsrp) -> DropRandom"),
    bare_policy_name);

}  // namespace
}  // namespace dtn
