// PriorityCache unit semantics plus the tentpole equivalence proof: with
// priority_refresh_s = 0 a cached run is decision-identical to an
// uncached one — the World::digest() trajectories coincide step for step
// on the paper scenarios.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/config/scenario.hpp"
#include "src/core/priority_cache.hpp"
#include "src/core/world.hpp"
#include "src/snapshot/archive.hpp"

namespace dtn {
namespace {

TEST(PriorityCache, StoreLookupWithinRefreshQuantum) {
  PriorityCache c;
  double out = 0.0;
  EXPECT_FALSE(c.lookup(7, 100.0, 30.0, &out));
  c.store(7, 100.0, 3.5);
  ASSERT_TRUE(c.lookup(7, 100.0, 0.0, &out));  // same instant: always valid
  EXPECT_DOUBLE_EQ(out, 3.5);
  EXPECT_TRUE(c.lookup(7, 129.0, 30.0, &out));   // within quantum
  EXPECT_FALSE(c.lookup(7, 131.0, 30.0, &out));  // decayed past quantum
  EXPECT_FALSE(c.lookup(7, 101.0, 0.0, &out));   // zero quantum: any later t
}

TEST(PriorityCache, InvalidateErasesSingleEntry) {
  PriorityCache c;
  c.store(1, 0.0, 1.0);
  c.store(2, 0.0, 2.0);
  EXPECT_EQ(c.stamp(), 0u);  // stores do not move the change counter
  c.invalidate(1);
  EXPECT_EQ(c.stamp(), 1u);
  double out = 0.0;
  EXPECT_FALSE(c.lookup(1, 0.0, 10.0, &out));
  EXPECT_TRUE(c.lookup(2, 0.0, 10.0, &out));
}

TEST(PriorityCache, EpochBumpClearsEverythingAndAdvancesEpoch) {
  PriorityCache c;
  c.store(1, 0.0, 1.0);
  c.store_send_order({1}, 0.0, 5);
  const std::uint64_t before = c.epoch();
  const std::uint64_t stamp_before = c.stamp();
  c.bump_epoch();
  EXPECT_EQ(c.epoch(), before + 1);
  EXPECT_EQ(c.stamp(), stamp_before + 1);
  double out = 0.0;
  EXPECT_FALSE(c.lookup(1, 0.0, 10.0, &out));
  EXPECT_EQ(c.send_order(0.0, 10.0, 5), nullptr);
}

TEST(PriorityCache, SendOrderKeyedOnRevisionAndQuantum) {
  PriorityCache c;
  c.store_send_order({3, 1, 2}, 50.0, 9);
  const auto* order = c.send_order(50.0, 0.0, 9);
  ASSERT_NE(order, nullptr);
  EXPECT_EQ(*order, (std::vector<MessageId>{3, 1, 2}));
  EXPECT_EQ(c.send_order(50.0, 0.0, 10), nullptr);  // membership churned
  EXPECT_EQ(c.send_order(51.0, 0.0, 9), nullptr);   // zero quantum
  EXPECT_NE(c.send_order(79.0, 30.0, 9), nullptr);  // within quantum
  c.invalidate(1);                                  // rank may have moved
  EXPECT_EQ(c.send_order(50.0, 30.0, 9), nullptr);
}

TEST(PriorityCache, DigestHashesEpochButNotMemoEntries) {
  // Two caches in the same semantic state (equal epoch) must hash
  // identically no matter what transient memo they carry — this is what
  // lets cached and uncached runs share one digest trajectory.
  PriorityCache a;
  PriorityCache b;
  a.store(1, 0.0, 1.0);
  a.store_send_order({1}, 0.0, 1);
  auto digest_of = [](const PriorityCache& c) {
    snapshot::ArchiveWriter w(snapshot::ArchiveWriter::Mode::kDigestOnly);
    c.save_state(w);
    return w.digest();
  };
  EXPECT_EQ(digest_of(a), digest_of(b));
  b.bump_epoch();
  EXPECT_NE(digest_of(a), digest_of(b));
}

TEST(PriorityCache, BufferedRoundTripRestoresMemo) {
  PriorityCache a;
  a.store(4, 10.0, 0.25);
  a.store(9, 12.0, 0.75);
  a.store_send_order({9, 4}, 12.0, 3);
  a.bump_epoch();  // kills both; epoch = 1
  a.store(4, 14.0, 0.5);
  a.store_send_order({4}, 14.0, 4);
  snapshot::ArchiveWriter w;
  a.save_state(w);
  PriorityCache b;
  snapshot::ArchiveReader r(w.bytes());
  b.load_state(r);
  EXPECT_EQ(b.epoch(), a.epoch());
  EXPECT_EQ(b.stamp(), a.stamp());
  double out = 0.0;
  ASSERT_TRUE(b.lookup(4, 14.0, 0.0, &out));
  EXPECT_DOUBLE_EQ(out, 0.5);
  const auto* order = b.send_order(14.0, 0.0, 4);
  ASSERT_NE(order, nullptr);
  EXPECT_EQ(*order, (std::vector<MessageId>{4}));
}

// The equivalence proof. priority_refresh_s = 0 restricts reuse to the
// same instant; since every priority function is pure in (message, node
// state, now), the cached run must make bit-identical decisions — checked
// via the digest trajectory, which hashes the complete dynamic state.
std::vector<std::uint64_t> digest_trajectory(Scenario sc, bool cached) {
  sc.world.priority_cache = cached;
  sc.world.priority_refresh_s = 0.0;
  auto w = build_world(sc);
  std::vector<std::uint64_t> digests;
  for (double t = 300.0; t <= sc.world.duration + 1e-9; t += 300.0) {
    w->run_until(t);
    digests.push_back(w->digest());
  }
  return digests;
}

TEST(PriorityCacheEquivalence, TableIIRwpSdsrpDigestsMatchUncached) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.world.duration = 1800.0;
  sc.buffer_capacity = 1'250'000;  // tight: exercise the drop path hard
  EXPECT_EQ(digest_trajectory(sc, true), digest_trajectory(sc, false));
}

TEST(PriorityCacheEquivalence, TableIIRwpFifoDigestsMatchUncached) {
  // FIFO has no scalar priorities but does use the send-order snapshot.
  Scenario sc = Scenario::random_waypoint_paper();
  sc.policy = "fifo";
  sc.world.duration = 1800.0;
  EXPECT_EQ(digest_trajectory(sc, true), digest_trajectory(sc, false));
}

TEST(PriorityCacheEquivalence, TableIIRwpKnapsackDigestsMatchUncached) {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.policy = "knapsack-sdsrp";
  sc.world.duration = 1500.0;
  EXPECT_EQ(digest_trajectory(sc, true), digest_trajectory(sc, false));
}

TEST(PriorityCacheEquivalence, TaxiSdsrpDigestsMatchUncached) {
  Scenario sc = Scenario::taxi_paper();
  sc.world.duration = 1500.0;
  EXPECT_EQ(digest_trajectory(sc, true), digest_trajectory(sc, false));
}

TEST(PriorityCacheEquivalence, CensoredMleEstimatorStillExact) {
  // λ under the censored-MLE estimator varies continuously with `now` —
  // the hardest case for the refresh-quantum argument; at quantum 0 it
  // must still be exact.
  Scenario sc = Scenario::random_waypoint_paper();
  sc.estimator.imt_mode = sdsrp::ImtEstimatorMode::kCensoredMle;
  sc.world.duration = 1200.0;
  EXPECT_EQ(digest_trajectory(sc, true), digest_trajectory(sc, false));
}

TEST(PriorityCacheEquivalence, DefaultQuantumRunsAndDelivers) {
  // At the default 30 s quantum decisions may drift from the uncached
  // path (that is the documented trade); the run must stay healthy.
  Scenario sc = Scenario::random_waypoint_paper();
  sc.world.duration = 3000.0;
  auto w = build_world(sc);
  w->run();
  EXPECT_GT(w->stats().delivered, 0u);
  EXPECT_EQ(w->stats().transfers_started,
            w->stats().transfers_completed + w->stats().transfers_aborted +
                w->transfers_in_flight().size());
}

}  // namespace
}  // namespace dtn
