// Tests for the analytical correctness oracles (DESIGN.md §13): the
// Diana-Lochin binary spray-and-wait delay model, the KS gate between
// the simulator and that model, the oracle's *sensitivity* (a perturbed
// model must fail the gate — otherwise the oracle gates nothing), and
// the toleranced epidemic-ODE check promoted from bench/abl_ode_validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/report/delay_oracle.hpp"
#include "src/report/observers.hpp"
#include "src/sdsrp/spray_wait_delay_model.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace dtn {
namespace {

// --- SprayWaitDelayModel unit tests -----------------------------------

TEST(SprayWaitDelayModel, SingleCopyIsExponential) {
  // L = 1: one carrier that never splits; delivery is the first meeting
  // with the destination, so F(t) = 1 - exp(-lambda t) exactly.
  const double lambda = 1e-3;
  const sdsrp::SprayWaitDelayModel m(40, 1, lambda);
  EXPECT_EQ(m.state_count(), 1u);
  for (double t : {0.0, 100.0, 500.0, 2000.0, 10000.0}) {
    EXPECT_NEAR(m.cdf(t), 1.0 - std::exp(-lambda * t), 1e-6) << "t=" << t;
  }
  EXPECT_NEAR(m.mean_delay(), 1.0 / lambda, 1e-9);
}

TEST(SprayWaitDelayModel, StateSpaceIsHalvingPartitions) {
  // L = 4: {4}, {2,2}, {2,1,1}, {1,1,1,1}.
  EXPECT_EQ(sdsrp::SprayWaitDelayModel(80, 4, 1e-4).state_count(), 4u);
  // L = 16 reaches 36 partitions via floor/ceil splits.
  EXPECT_EQ(sdsrp::SprayWaitDelayModel(80, 16, 1e-4).state_count(), 36u);
  // Odd budgets split asymmetrically: {5}, {3,2}, then either part
  // splits — {2,2,1} and {3,1,1} — before {2,1,1,1} and {1,1,1,1,1}.
  EXPECT_EQ(sdsrp::SprayWaitDelayModel(80, 5, 1e-4).state_count(), 6u);
}

TEST(SprayWaitDelayModel, CdfIsMonotoneAndBounded) {
  const sdsrp::SprayWaitDelayModel m(50, 8, 2e-4);
  std::vector<double> ts;
  for (double t = 0.0; t <= 20000.0; t += 250.0) ts.push_back(t);
  const std::vector<double> f = m.cdf(ts);
  double prev = -1.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_GE(f[i], prev - 1e-12);
    EXPECT_GE(f[i], 0.0);
    EXPECT_LE(f[i], 1.0);
    prev = f[i];
  }
  EXPECT_DOUBLE_EQ(f.front(), 0.0);
  EXPECT_GT(f.back(), 0.999);  // essentially certain delivery by 20 E[T]
}

TEST(SprayWaitDelayModel, MoreCopiesAreFasterEverywhere) {
  // First-order stochastic dominance: a larger budget can only speed
  // delivery in the model (more carriers racing for the destination).
  const sdsrp::SprayWaitDelayModel m4(80, 4, 1e-4);
  const sdsrp::SprayWaitDelayModel m16(80, 16, 1e-4);
  for (double t : {250.0, 1000.0, 4000.0, 12000.0}) {
    EXPECT_GT(m16.cdf(t), m4.cdf(t)) << "t=" << t;
  }
  EXPECT_LT(m16.mean_delay(), m4.mean_delay());
}

TEST(SprayWaitDelayModel, QuantileInvertsCdf) {
  const sdsrp::SprayWaitDelayModel m(80, 8, 1e-4);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(m.cdf(m.quantile(q)), q, 1e-6) << "q=" << q;
  }
}

TEST(SprayWaitDelayModel, MeanMatchesIntegratedTail) {
  // E[T] from the first-passage recursion vs numerically integrating
  // the survival function — two independent computations.
  const sdsrp::SprayWaitDelayModel m(50, 8, 2e-4);
  const double mean = m.mean_delay();
  std::vector<double> ts;
  const double hi = 12.0 * mean;
  const std::size_t grid = 4000;
  for (std::size_t i = 0; i <= grid; ++i) {
    ts.push_back(hi * static_cast<double>(i) / static_cast<double>(grid));
  }
  const std::vector<double> f = m.cdf(ts);
  double integral = 0.0;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    integral += 0.5 * ((1.0 - f[i]) + (1.0 - f[i + 1])) * (ts[i + 1] - ts[i]);
  }
  EXPECT_NEAR(integral, mean, 0.01 * mean);
}

TEST(SprayWaitDelayModel, Preconditions) {
  EXPECT_THROW(sdsrp::SprayWaitDelayModel(1, 4, 1e-4), PreconditionError);
  EXPECT_THROW(sdsrp::SprayWaitDelayModel(40, 0, 1e-4), PreconditionError);
  EXPECT_THROW(sdsrp::SprayWaitDelayModel(40, 4, 0.0), PreconditionError);
  const sdsrp::SprayWaitDelayModel m(40, 4, 1e-4);
  EXPECT_THROW(m.quantile(0.0), PreconditionError);
  EXPECT_THROW(m.quantile(1.0), PreconditionError);
}

// Independent Monte-Carlo cross-check: simulate N nodes whose pairwise
// meetings are a Poisson process (uniform random pair at total rate
// C(N,2)·lambda) and apply the binary spray rules mechanically — carrier
// meets destination => delivery; carrier with c >= 2 meets a non-carrier
// => floor/ceil split; every other meeting is a no-op. This exercises the
// full meeting mechanics the CTMC lumps into per-state rates, so
// agreement validates the model's rate derivation, not just its solver.
TEST(SprayWaitDelayModel, MonteCarloMeetingProcessAgrees) {
  const std::size_t n = 20;
  const int l = 4;
  const double lambda = 1e-3;
  const std::size_t trials = 4000;
  Rng rng(12345);

  const double pair_rate =
      static_cast<double>(n) * static_cast<double>(n - 1) / 2.0 * lambda;
  std::vector<double> delays;
  delays.reserve(trials);
  std::vector<int> copies(n);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    std::fill(copies.begin(), copies.end(), 0);
    copies[0] = l;  // source; node 1 is the destination
    double t = 0.0;
    for (;;) {
      t += rng.exponential(pair_rate);
      auto a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      auto b = static_cast<std::size_t>(rng.uniform_int(0, n - 2));
      if (b >= a) ++b;  // uniform unordered pair (a, b), a != b
      if (a == 1 || b == 1) {  // destination involved
        const std::size_t other = a == 1 ? b : a;
        if (copies[other] > 0) break;  // delivered at t
        continue;
      }
      if (copies[a] > 0 && copies[b] == 0 && copies[a] >= 2) {
        copies[b] = copies[a] / 2;
        copies[a] -= copies[b];
      } else if (copies[b] > 0 && copies[a] == 0 && copies[b] >= 2) {
        copies[a] = copies[b] / 2;
        copies[b] -= copies[a];
      }
    }
    delays.push_back(t);
  }

  const sdsrp::SprayWaitDelayModel model(n, l, lambda);
  std::sort(delays.begin(), delays.end());
  const std::vector<double> f = model.cdf(delays);
  double ks = 0.0;
  const auto m = static_cast<double>(delays.size());
  for (std::size_t i = 0; i < delays.size(); ++i) {
    ks = std::max(ks, std::abs(f[i] - static_cast<double>(i) / m));
    ks = std::max(ks, std::abs(f[i] - static_cast<double>(i + 1) / m));
  }
  // 4000 i.i.d. samples from the exact law: KS ~ 1.36/sqrt(4000) = 0.022
  // at the 5% point; 0.04 is comfortably above noise yet far below any
  // structural disagreement.
  EXPECT_LT(ks, 0.04);
}

// --- Simulator-vs-model gate (the oracle proper) ----------------------

// KS tolerance for the simulator gate. Calibrated at 3 seeds: the three
// configurations below measure KS 0.048 / 0.085 / 0.049, while a model
// perturbed by lambda/2 or half the copy budget measures 0.28-0.31 —
// the 0.15 gate has better than 1.7x margin on both sides.
constexpr double kKsTolerance = 0.15;
constexpr std::size_t kGateSeeds = 3;

std::vector<SprayDelayOracleConfig> gate_configs() {
  // Same three (N, L) worlds as bench/abl_spray_delay_oracle: fast-
  // spreading configs get proportionally larger areas so the delay scale
  // stays well above the contact-process correlation time (RWP meetings
  // are only asymptotically exponential; DESIGN.md §13).
  std::vector<SprayDelayOracleConfig> cfgs(3);
  cfgs[0].n_nodes = 80;
  cfgs[0].copies = 4;
  cfgs[1].n_nodes = 80;
  cfgs[1].copies = 16;
  cfgs[1].area_width = 4500.0;
  cfgs[1].area_height = 3400.0;
  cfgs[1].create_window_s = 3000.0;
  cfgs[1].horizon_s = 9000.0;
  cfgs[2].n_nodes = 50;
  cfgs[2].copies = 8;
  cfgs[2].area_width = 2700.0;
  cfgs[2].area_height = 2040.0;
  cfgs[2].create_window_s = 2500.0;
  cfgs[2].horizon_s = 6000.0;
  for (auto& c : cfgs) c.seeds = kGateSeeds;
  return cfgs;
}

TEST(SprayDelayOracle, SimulatorMatchesModelAcrossConfigs) {
  for (const auto& cfg : gate_configs()) {
    const SprayDelayOracleResult r = run_spray_delay_oracle(cfg);
    EXPECT_LT(r.ks, kKsTolerance)
        << "N=" << cfg.n_nodes << " L=" << cfg.copies;
    // The gate is only meaningful if the empirical CDF is well resolved.
    EXPECT_GT(r.samples, 200u);
    EXPECT_GT(r.delivered_fraction(), 0.85);
    // Censored means agree to the same order as the KS gate.
    EXPECT_NEAR(r.mean_sim, r.mean_model, 0.15 * r.mean_model);
  }
}

TEST(SprayDelayOracle, DetectsLambdaBias) {
  // The *same* simulation against a model driven by half the measured
  // meeting rate must fail the gate — otherwise the oracle could not
  // catch a contact-process bug of that size.
  SprayDelayOracleConfig cfg = gate_configs()[0];
  cfg.model_lambda_scale = 0.5;
  const SprayDelayOracleResult r = run_spray_delay_oracle(cfg);
  EXPECT_GT(r.ks, 1.5 * kKsTolerance);
}

TEST(SprayDelayOracle, DetectsCopyBudgetBias) {
  // Same simulation vs a model spraying half the budget: a silent L/2
  // bug in the spray tree would produce exactly this mismatch.
  SprayDelayOracleConfig cfg = gate_configs()[0];
  cfg.model_copies_override = cfg.copies / 2;
  const SprayDelayOracleResult r = run_spray_delay_oracle(cfg);
  EXPECT_GT(r.ks, 1.5 * kKsTolerance);
}

TEST(SprayDelayOracle, CensoredKsHandlesUndelivered) {
  // All-censored sample: F_emp == 0 on [0, horizon], so KS is F(horizon).
  const sdsrp::SprayWaitDelayModel m(40, 1, 1e-3);
  const double ks = censored_ks_distance(m, {}, 50, 2000.0);
  EXPECT_NEAR(ks, m.cdf(2000.0), 1e-12);
  EXPECT_THROW(censored_ks_distance(m, {1.0, 2.0}, 1, 10.0),
               PreconditionError);
}

TEST(SprayDelayOracle, ScenarioEncodesCensoringWindow) {
  const SprayDelayOracleConfig cfg;
  const Scenario sc = spray_delay_oracle_scenario(cfg, 7);
  EXPECT_EQ(sc.router, "spray-and-wait");
  EXPECT_EQ(sc.traffic.initial_copies, cfg.copies);
  EXPECT_DOUBLE_EQ(sc.traffic.stop, cfg.create_window_s);
  EXPECT_DOUBLE_EQ(sc.world.duration, cfg.duration_s());
  EXPECT_EQ(sc.seed, 7u);
  // The censoring window must survive the settings round-trip so
  // scenarios/spray_delay_oracle.txt can express this world.
  const Scenario back = Scenario::from_settings(sc.to_settings());
  EXPECT_DOUBLE_EQ(back.traffic.stop, cfg.create_window_s);
}

TEST(SprayDelayOracle, DelayCdfReportMergesExactly) {
  // Shard-merge semantics: two observers merged equal one observer that
  // saw everything — the property the multi-seed pooling relies on.
  DelayCdfReport a(0.0, 100.0, 10), b(0.0, 100.0, 10), whole(0.0, 100.0, 10);
  Message m;
  m.created = 0.0;
  a.on_message_created(m, 0.0);
  b.on_message_created(m, 0.0);
  whole.on_message_created(m, 0.0);
  whole.on_message_created(m, 0.0);
  a.on_delivery(m, 0, 1, 12.5);
  b.on_delivery(m, 0, 1, 250.0);  // overflows the histogram, kept in delays
  whole.on_delivery(m, 0, 1, 12.5);
  whole.on_delivery(m, 0, 1, 250.0);
  a.merge(b);
  EXPECT_EQ(a.created(), whole.created());
  EXPECT_EQ(a.delays(), whole.delays());
  EXPECT_TRUE(a.histogram() == whole.histogram());
  EXPECT_EQ(a.histogram().overflow(), 1u);
}

// --- Epidemic-ODE oracle (promoted from print-only bench) -------------

TEST(EpidemicOdeOracle, InfectionCurveTracksLogistic) {
  EpidemicOdeOracleConfig cfg;
  cfg.seeds = 3;
  const EpidemicOdeOracleResult r = run_epidemic_ode_oracle(cfg);

  // The census meeting rate for the Table II world sits near 4.5e-5 /s;
  // a factor-2 drift either way means the contact pipeline changed.
  EXPECT_GT(r.lambda, 2e-5);
  EXPECT_LT(r.lambda, 9e-5);
  // The naive completed-gap mean is length-biased low vs 1/lambda.
  EXPECT_LT(r.naive_ei, 1.0 / r.lambda);

  for (const auto& p : r.points) {
    // Early phase (t < 1500 s) is dominated by the single seeded copy's
    // first meetings, where RWP's non-exponential short-time behavior and
    // finite transfers bite hardest; the bench prints those points but
    // the gate starts where the mass-action approximation holds.
    if (p.t < 1500.0) continue;
    EXPECT_GT(p.ratio(), 0.55) << "t=" << p.t;
    EXPECT_LT(p.ratio(), 1.15) << "t=" << p.t;
    if (p.t >= 3000.0) {
      EXPECT_GT(p.ratio(), 0.90) << "t=" << p.t;
      EXPECT_LT(p.ratio(), 1.05) << "t=" << p.t;
    }
  }
}

}  // namespace
}  // namespace dtn
