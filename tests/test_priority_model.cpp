// Tests for the SDSRP analytical core (Eqs. 4-13): consistency between the
// closed form, the probability form, and the Taylor series; the Fig. 4
// peak at P(R) = 1 - 1/e; and boundary behavior.
#include <gtest/gtest.h>

#include <cmath>

#include "src/sdsrp/priority_model.hpp"
#include "src/util/error.hpp"

namespace dtn::sdsrp {
namespace {

PriorityInputs base_inputs() {
  PriorityInputs in;
  in.n_nodes = 100;
  in.lambda = 1.0 / 30000.0;
  in.copies = 8.0;
  in.remaining_ttl = 9000.0;
  in.m_seen = 4.0;
  in.n_holding = 5.0;
  return in;
}

TEST(PriorityModel, SprayTermMatchesHandComputation) {
  PriorityInputs in = base_inputs();
  // A = (log2 C + 1) R - log2C (log2C+1) / (2 (N-1) λ)
  const double lc = std::log2(8.0);
  const double expected =
      (lc + 1.0) * 9000.0 - lc * (lc + 1.0) / (2.0 * 99.0 * in.lambda);
  EXPECT_NEAR(spray_term(in), expected, 1e-9);
}

TEST(PriorityModel, SprayTermWaitPhaseIsRemainingTtl) {
  PriorityInputs in = base_inputs();
  in.copies = 1.0;  // log2 = 0 -> A = R
  EXPECT_DOUBLE_EQ(spray_term(in), in.remaining_ttl);
}

TEST(PriorityModel, SprayTermNegativeWhenTtlTooShort) {
  PriorityInputs in = base_inputs();
  in.copies = 64.0;
  in.remaining_ttl = 1.0;  // cannot spray 64 copies in 1 second
  EXPECT_LT(spray_term(in), 0.0);
}

TEST(PriorityModel, ProbAlreadyDeliveredIsMOverN1) {
  PriorityInputs in = base_inputs();
  EXPECT_DOUBLE_EQ(prob_already_delivered(in), 4.0 / 99.0);
  in.m_seen = 500.0;  // clamped
  EXPECT_DOUBLE_EQ(prob_already_delivered(in), 1.0);
}

TEST(PriorityModel, ProbRemainingInUnitInterval) {
  PriorityInputs in = base_inputs();
  const double p = prob_deliver_in_remaining(in);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(PriorityModel, ProbRemainingIncreasesWithTtl) {
  PriorityInputs lo = base_inputs(), hi = base_inputs();
  lo.remaining_ttl = 1000.0;
  hi.remaining_ttl = 15000.0;
  EXPECT_LT(prob_deliver_in_remaining(lo), prob_deliver_in_remaining(hi));
}

TEST(PriorityModel, DeliveryProbabilityCombinesViaEq4) {
  PriorityInputs in = base_inputs();
  const double pt = prob_already_delivered(in);
  const double pr = prob_deliver_in_remaining(in);
  EXPECT_NEAR(delivery_probability(in), pt + (1 - pt) * pr, 1e-12);
}

TEST(PriorityModel, Eq10EqualsEq11) {
  // U = (1-PT) λ A e^{-λnA}  ==  (1-PT)(PR-1)ln(1-PR)/n with
  // PR = 1 - e^{-λnA}; verify across a range of inputs.
  for (double copies : {1.0, 2.0, 8.0, 32.0}) {
    for (double ttl : {500.0, 5000.0, 15000.0}) {
      for (double n : {1.0, 3.0, 10.0}) {
        PriorityInputs in = base_inputs();
        in.copies = copies;
        in.remaining_ttl = ttl;
        in.n_holding = n;
        // The probability form clamps P(R) at 0, so the identity only
        // holds where the spray term is nonnegative.
        if (spray_term(in) < 0.0) continue;
        const double pr = prob_deliver_in_remaining(in);
        if (pr >= 1.0 - 1e-12) continue;  // log form undefined at 1
        const double via10 = priority_eq10(in);
        const double via11 =
            priority_eq11(prob_already_delivered(in), pr, n);
        EXPECT_NEAR(via10, via11, std::abs(via10) * 1e-6 + 1e-12)
            << "C=" << copies << " R=" << ttl << " n=" << n;
      }
    }
  }
}

TEST(PriorityModel, Eq11PeaksAtOneMinusInverseE) {
  // For fixed PT and n, U(PR) = (PR-1)ln(1-PR) must peak at 1 - 1/e.
  const double peak = peak_prob_remaining();
  EXPECT_NEAR(peak, 1.0 - std::exp(-1.0), 1e-12);
  const double at_peak = priority_eq11(0.0, peak, 1.0);
  for (double pr : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    EXPECT_LE(priority_eq11(0.0, pr, 1.0), at_peak + 1e-12) << "PR=" << pr;
  }
  // Strictly increasing below the peak, decreasing above.
  EXPECT_LT(priority_eq11(0.0, 0.2, 1.0), priority_eq11(0.0, 0.5, 1.0));
  EXPECT_GT(priority_eq11(0.0, 0.7, 1.0), priority_eq11(0.0, 0.95, 1.0));
}

TEST(PriorityModel, HigherDeliveredProbabilityLowersPriority) {
  // Paper: "priority decreases monotonously with delivered probability."
  const double pr = 0.4;
  EXPECT_GT(priority_eq11(0.1, pr, 2.0), priority_eq11(0.5, pr, 2.0));
  EXPECT_GT(priority_eq11(0.5, pr, 2.0), priority_eq11(0.9, pr, 2.0));
}

TEST(PriorityModel, MoreHoldersLowersPriority) {
  // Paper: greater n_i(T_i) leads to lower priority.
  PriorityInputs a = base_inputs(), b = base_inputs();
  a.n_holding = 2.0;
  b.n_holding = 20.0;
  EXPECT_GT(priority_eq10(a), priority_eq10(b));
}

TEST(PriorityModel, TaylorConvergesToEq11) {
  const double pt = 0.2, pr = 0.55, n = 3.0;
  const double exact = priority_eq11(pt, pr, n);
  double prev_err = 1e300;
  for (std::size_t k : {1u, 2u, 5u, 10u, 20u, 50u}) {
    const double err = std::abs(priority_taylor(pt, pr, n, k) - exact);
    EXPECT_LE(err, prev_err + 1e-15);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-9);
}

TEST(PriorityModel, TaylorUnderestimatesMonotonically) {
  // Partial sums of a positive series: each extra term raises the value.
  const double pt = 0.0, pr = 0.7, n = 1.0;
  double prev = 0.0;
  for (std::size_t k = 1; k <= 30; ++k) {
    const double u = priority_taylor(pt, pr, n, k);
    EXPECT_GE(u, prev);
    prev = u;
  }
  EXPECT_LE(prev, priority_eq11(pt, pr, n) + 1e-12);
}

TEST(PriorityModel, Eq12PeakCondition) {
  // Eq. 12: U_i is maximal when 1/(λ n_i) = Σ_{k=0}^{log2 C_i}
  // [R_i − k E(I_min)], i.e. when λ n_i A_i = 1 and thus
  // P(R_i) = 1 − 1/e. Construct inputs satisfying the condition and
  // check both the probability value and local maximality in R.
  PriorityInputs in = base_inputs();
  in.copies = 8.0;  // log2 = 3
  in.n_holding = 4.0;
  // Solve (log2C+1) R − log2C(log2C+1)/(2(N−1)λ) = 1/(λ n) for R.
  const double lc = 3.0;
  const double target_a = 1.0 / (in.lambda * in.n_holding);
  in.remaining_ttl =
      (target_a + lc * (lc + 1.0) /
                      (2.0 * static_cast<double>(in.n_nodes - 1) *
                       in.lambda)) /
      (lc + 1.0);
  EXPECT_NEAR(in.lambda * in.n_holding * spray_term(in), 1.0, 1e-9);
  EXPECT_NEAR(prob_deliver_in_remaining(in), 1.0 - std::exp(-1.0), 1e-9);

  // Local maximality: perturbing R in either direction lowers U.
  const double at_peak = priority_eq10(in);
  PriorityInputs lo = in, hi = in;
  lo.remaining_ttl *= 0.8;
  hi.remaining_ttl *= 1.2;
  EXPECT_GT(at_peak, priority_eq10(lo));
  EXPECT_GT(at_peak, priority_eq10(hi));
}

TEST(PriorityModel, FigTwoCrossover) {
  // The paper's Fig. 2 point: the priority ordering of two coexisting
  // messages flips as they age — U is not monotone in (C_i, R_i).
  // With Eq. 10 the flip arises because each message's P(R) slides
  // along the Fig. 4 hump: M_i (C=16, TTL 12000) starts past the peak
  // (near-certain delivery, low marginal utility) and decays toward it
  // (U rising), while M_j (C=4, TTL 6000) starts near the peak and
  // overshoots toward expiry (U falling).
  auto u = [](double copies, double remaining) {
    PriorityInputs in;
    in.n_nodes = 100;
    in.lambda = 1.0 / 30000.0;
    in.copies = copies;
    in.remaining_ttl = remaining;
    in.m_seen = 4.0;
    in.n_holding = 2.0;
    return priority_eq10(in);
  };
  EXPECT_LT(u(16, 12000), u(4, 6000));              // early: M_j on top
  EXPECT_GT(u(16, 12000 - 5500), u(4, 6000 - 5500));  // late: M_i on top
}

TEST(PriorityModel, NegativeSprayTermGivesNegativePriority) {
  PriorityInputs in = base_inputs();
  in.copies = 64.0;
  in.remaining_ttl = 1.0;
  EXPECT_LT(priority_eq10(in), 0.0);
}

TEST(PriorityModel, ExtremeInputsStayFinite) {
  PriorityInputs in = base_inputs();
  in.copies = 1e6;
  in.remaining_ttl = 1e9;
  in.n_holding = 1e6;
  EXPECT_TRUE(std::isfinite(priority_eq10(in)));
  in.remaining_ttl = -1e9;
  EXPECT_TRUE(std::isfinite(priority_eq10(in)));
}

TEST(PriorityModel, PreconditionsEnforced) {
  PriorityInputs in = base_inputs();
  in.n_nodes = 1;
  EXPECT_THROW(spray_term(in), PreconditionError);
  in = base_inputs();
  in.lambda = 0.0;
  EXPECT_THROW(spray_term(in), PreconditionError);
  EXPECT_THROW(priority_eq11(0.0, 1.0, 1.0), PreconditionError);
  EXPECT_THROW(priority_eq11(0.0, 0.5, 0.0), PreconditionError);
  EXPECT_THROW(priority_taylor(0.0, -0.1, 1.0, 3), PreconditionError);
}

class TaylorAccuracy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TaylorAccuracy, ErrorBoundedByNextTerm) {
  // Remainder of the alternating-free positive series is bounded by the
  // tail: |U - U_k| <= (1-PT)(1-PR) * PR^{k+1}/((k+1)(1-PR)) / n.
  const std::size_t k = GetParam();
  const double pt = 0.1, pr = 0.6, n = 2.0;
  const double exact = priority_eq11(pt, pr, n);
  const double approx = priority_taylor(pt, pr, n, k);
  const double tail =
      (1 - pt) * std::pow(pr, static_cast<double>(k + 1)) /
      (static_cast<double>(k + 1)) / n;
  EXPECT_LE(std::abs(exact - approx), tail + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Terms, TaylorAccuracy,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace dtn::sdsrp
