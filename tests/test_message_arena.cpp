// MessageArena: slab-pooled Message storage (DESIGN.md §14).
//
// The arena's accounting invariants are load-bearing — Buffer spans,
// checkpoint sizing hints and the zero-steady-state-allocation discipline
// all lean on them — so they are fuzzed here against a reference model:
//   * total_allocs == total_frees + live_count at every point;
//   * high_water == live_count + free_count (slots never leak);
//   * live_bytes tracks the byte sum of the live population exactly;
//   * a handle returns the same content until freed, no matter how many
//     other slots churn around it.
// A second group pins the checkpoint interaction: a World whose arena
// free list is fragmented (TTL purges + deliveries punch holes in slab
// order) must save → restore digest-identically and resume to the same
// end digest as the uninterrupted run.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/config/scenario.hpp"
#include "src/core/message_arena.hpp"
#include "src/snapshot/checkpoint.hpp"
#include "src/util/rng.hpp"

namespace dtn {
namespace {

Message make_msg(MessageId id, std::int64_t size, int sprays = 0) {
  Message m;
  m.id = id;
  m.source = 1;
  m.destination = 2;
  m.size = size;
  m.created = 10.0;
  m.ttl = 500.0;
  m.initial_copies = 8;
  m.copies = 4;
  m.hops = 1;
  for (int s = 0; s < sprays; ++s) m.spray_times.push_back(10.0 + s);
  return m;
}

TEST(MessageArena, AllocGetReleaseRoundTrip) {
  MessageArena a;
  const auto h = a.alloc(make_msg(7, 1000, 3));
  ASSERT_NE(h, MessageArena::kNullHandle);
  EXPECT_TRUE(a.is_live(h));
  EXPECT_EQ(a.get(h).id, 7u);
  EXPECT_EQ(a.live_count(), 1u);
  EXPECT_EQ(a.live_bytes(), 1000);

  const Message out = a.release(h);
  EXPECT_EQ(out.id, 7u);
  EXPECT_EQ(out.spray_times.size(), 3u);
  EXPECT_FALSE(a.is_live(h));
  EXPECT_EQ(a.live_count(), 0u);
  EXPECT_EQ(a.live_bytes(), 0);
  EXPECT_EQ(a.free_count(), 1u);
  EXPECT_EQ(a.high_water(), 1u);
}

TEST(MessageArena, FreeListIsLifoAndHandlesStayStable) {
  MessageArena a;
  const auto h0 = a.alloc(make_msg(0, 10));
  const auto h1 = a.alloc(make_msg(1, 10));
  const auto h2 = a.alloc(make_msg(2, 10));
  a.free(h1);
  a.free(h0);
  // LIFO: the most recently freed slot is recycled first.
  EXPECT_EQ(a.alloc(make_msg(3, 10)), h0);
  EXPECT_EQ(a.alloc(make_msg(4, 10)), h1);
  // h2 never moved.
  EXPECT_EQ(a.get(h2).id, 2u);
  EXPECT_EQ(a.high_water(), 3u);
}

TEST(MessageArena, RecycledSlotKeepsSprayCapacity) {
  MessageArena a;
  const auto h = a.alloc(make_msg(1, 10, /*sprays=*/16));
  a.free(h);
  // The incoming message brings no spray storage of its own; the retired
  // tenant's capacity must be inherited so relays stop allocating once
  // the lineage depth has been seen.
  const auto h2 = a.alloc(make_msg(2, 10, /*sprays=*/0));
  ASSERT_EQ(h2, h);
  EXPECT_GE(a.get(h2).spray_times.capacity(), 16u);
  EXPECT_TRUE(a.get(h2).spray_times.empty());
}

TEST(MessageArena, ReservePresizesSlabs) {
  MessageArena a;
  a.reserve(10000);  // 3 slabs of 4096
  EXPECT_GE(a.slab_count(), 3u);
  EXPECT_EQ(a.live_count(), 0u);
  // Reserved slots are not "created": high_water still counts usage.
  for (int i = 0; i < 5000; ++i) a.alloc(make_msg(i, 1));
  EXPECT_EQ(a.high_water(), 5000u);
  EXPECT_EQ(a.live_count(), 5000u);
}

TEST(MessageArena, RecyclingFuzzPreservesAccounting) {
  MessageArena a;
  Rng rng(0xA13EA5EEDull);
  std::unordered_map<MessageArena::Handle, Message> model;
  std::vector<MessageArena::Handle> handles;
  std::int64_t model_bytes = 0;
  MessageId next_id = 0;

  for (int step = 0; step < 20000; ++step) {
    const bool do_alloc =
        handles.empty() || (handles.size() < 600 && rng.uniform01() < 0.55);
    if (do_alloc) {
      const auto size = static_cast<std::int64_t>(rng.uniform_int(1, 4000));
      const int sprays = static_cast<int>(rng.uniform_int(0, 6));
      Message m = make_msg(next_id++, size, sprays);
      const Message copy = m;
      const auto h = a.alloc(std::move(m));
      ASSERT_FALSE(model.count(h)) << "recycled a live handle";
      model.emplace(h, copy);
      handles.push_back(h);
      model_bytes += size;
    } else {
      const auto pick = rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1);
      const auto h = handles[pick];
      handles[pick] = handles.back();
      handles.pop_back();
      const Message& want = model.at(h);
      ASSERT_EQ(a.get(h).id, want.id);
      ASSERT_EQ(a.get(h).size, want.size);
      ASSERT_EQ(a.get(h).spray_times, want.spray_times);
      model_bytes -= want.size;
      if (rng.uniform01() < 0.5) {
        const Message out = a.release(h);
        ASSERT_EQ(out.id, want.id);
        ASSERT_EQ(out.spray_times, want.spray_times);
      } else {
        a.free(h);
      }
      model.erase(h);
    }
    ASSERT_EQ(a.live_count(), model.size());
    ASSERT_EQ(a.live_bytes(), model_bytes);
    ASSERT_EQ(a.total_allocs(), a.total_frees() + a.live_count());
    ASSERT_EQ(a.high_water(), a.live_count() + a.free_count());
  }
  // Survivors still hold their exact content after 20k churn steps.
  for (const auto& [h, want] : model) {
    ASSERT_TRUE(a.is_live(h));
    ASSERT_EQ(a.get(h).id, want.id);
    ASSERT_EQ(a.get(h).spray_times, want.spray_times);
  }
}

// --- checkpoint interaction -----------------------------------------------

Scenario arena_scenario() {
  Scenario sc = Scenario::random_waypoint_paper();
  sc.n_nodes = 24;
  sc.world.duration = 3000.0;
  sc.traffic.ttl = 400.0;  // short TTL: purges fragment the free list
  sc.traffic.interval_min = 15.0;
  sc.traffic.interval_max = 25.0;
  sc.policy = "sdsrp";
  sc.seed = 17;
  return sc;
}

TEST(MessageArenaCheckpoint, FragmentedFreeListRoundTripsDigestIdentical) {
  const Scenario sc = arena_scenario();
  auto world = build_world(sc);
  world->run_until(1500.0);
  // The run must actually have fragmented the arena for this to pin
  // anything: holes exist iff slots were freed while later ones live.
  ASSERT_GT(world->arena().free_count(), 0u);
  ASSERT_GT(world->arena().live_count(), 0u);

  const std::string path =
      ::testing::TempDir() + "/arena_fragmented.ckpt";
  snapshot::save_checkpoint(path, sc, *world);
  auto restored = snapshot::restore_checkpoint(path);
  EXPECT_EQ(restored.world->digest(), world->digest())
      << "restore through a fragmented arena drifted";

  world->run();
  restored.world->run();
  EXPECT_EQ(restored.world->digest(), world->digest())
      << "resumed run diverged from the uninterrupted one";
  std::remove(path.c_str());
}

TEST(MessageArenaCheckpoint, RestorePresizesFromSavedHighWater) {
  const Scenario sc = arena_scenario();
  auto world = build_world(sc);
  world->run_until(1500.0);
  const std::size_t high_water = world->arena().high_water();

  const std::string path = ::testing::TempDir() + "/arena_hint.ckpt";
  snapshot::save_checkpoint(path, sc, *world);
  auto restored = snapshot::restore_checkpoint(path);
  // The v5 sizing hint pre-creates slabs covering the saved population.
  EXPECT_GE(restored.world->arena().slab_count() * 4096, high_water);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dtn
