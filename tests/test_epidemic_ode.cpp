// Tests for the epidemic-spreading ODE model (paper ref [13]).
#include <gtest/gtest.h>

#include <cmath>

#include "src/sdsrp/epidemic_ode.hpp"
#include "src/util/error.hpp"

namespace dtn::sdsrp {
namespace {

constexpr double kN = 100.0;
constexpr double kLambda = 1.0 / 30000.0;

TEST(EpidemicOde, InitialCondition) {
  EXPECT_DOUBLE_EQ(epidemic_infected(kN, kLambda, 1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(epidemic_infected(kN, kLambda, 7.0, 0.0), 7.0);
}

TEST(EpidemicOde, MonotoneAndSaturating) {
  double prev = 0.0;
  for (double t = 0.0; t <= 1e6; t += 1e4) {
    const double i = epidemic_infected(kN, kLambda, 1.0, t);
    EXPECT_GE(i, prev - 1e-12);
    EXPECT_LE(i, kN + 1e-9);
    prev = i;
  }
  EXPECT_NEAR(epidemic_infected(kN, kLambda, 1.0, 1e7), kN, 1e-6);
}

TEST(EpidemicOde, SatisfiesTheOde) {
  // dI/dt computed by central difference must equal λ I (N − I).
  for (double t : {1000.0, 10000.0, 30000.0, 60000.0}) {
    const double h = 1.0;
    const double di =
        (epidemic_infected(kN, kLambda, 1.0, t + h) -
         epidemic_infected(kN, kLambda, 1.0, t - h)) /
        (2.0 * h);
    const double i = epidemic_infected(kN, kLambda, 1.0, t);
    EXPECT_NEAR(di, kLambda * i * (kN - i), 1e-6 * kN) << "t=" << t;
  }
}

TEST(EpidemicOde, EarlyGrowthIsExponential) {
  // For I << N, I(t) ≈ I0 e^{λNt}: at λNt = 1, I ≈ e ≈ 2.7 << 100.
  const double t = 300.0;
  const double i = epidemic_infected(kN, kLambda, 1.0, t);
  EXPECT_NEAR(i, std::exp(kLambda * kN * t), 0.05 * i);
}

TEST(EpidemicOde, DeliveryCdfProperties) {
  EXPECT_DOUBLE_EQ(epidemic_delivery_cdf(kN, kLambda, 1.0, 0.0), 0.0);
  double prev = 0.0;
  for (double t = 5000.0; t <= 100000.0; t += 5000.0) {
    const double p = epidemic_delivery_cdf(kN, kLambda, 1.0, t);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_GT(prev, 0.95);  // eventually delivered almost surely
}

TEST(EpidemicOde, TrajectoryGrid) {
  const auto traj = epidemic_trajectory(kN, kLambda, 1.0, 60000.0, 7);
  ASSERT_EQ(traj.size(), 7u);
  EXPECT_DOUBLE_EQ(traj.front(), 1.0);
  EXPECT_TRUE(std::is_sorted(traj.begin(), traj.end()));
}

TEST(EpidemicOde, PreconditionsEnforced) {
  EXPECT_THROW(epidemic_infected(1.0, kLambda, 1.0, 0.0), PreconditionError);
  EXPECT_THROW(epidemic_infected(kN, 0.0, 1.0, 0.0), PreconditionError);
  EXPECT_THROW(epidemic_infected(kN, kLambda, 0.0, 0.0), PreconditionError);
  EXPECT_THROW(epidemic_infected(kN, kLambda, 1.0, -1.0), PreconditionError);
  EXPECT_THROW(epidemic_trajectory(kN, kLambda, 1.0, 0.0, 5),
               PreconditionError);
}

}  // namespace
}  // namespace dtn::sdsrp
