// Unit tests for the sweep thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "src/util/thread_pool.hpp"

namespace dtn {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelForIndex, CoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(500, 0);
  parallel_for_index(pool, hits.size(),
                     [&hits](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 500);
}

TEST(ParallelForIndex, ZeroTasksIsNoop) {
  ThreadPool pool(2);
  parallel_for_index(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelForIndex, RethrowsTaskError) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for_index(pool, 10,
                                  [](std::size_t i) {
                                    if (i == 5) throw std::runtime_error("x");
                                  }),
               std::runtime_error);
}

}  // namespace
}  // namespace dtn
