// Golden end-of-run digest pins.
//
// The paper's four policies on both paper scenarios (scaled down) are run
// to completion and their World::digest() compared against the committed
// fixture tests/golden/digests.txt. Any behavior change — intended or not
// — moves a digest and fails here, so silent drift is caught by ctest
// instead of surfacing later in EXPERIMENTS.md reruns.
//
// Regenerating after an *intended* change:
//   DTN_REGEN_GOLDEN=1 ./build/tests/test_golden_digests
// rewrites the fixture in the source tree; commit the diff with the
// change that moved it. The pins hash IEEE-754 arithmetic, so they are
// compiler/libm-sensitive in principle; CI and the dev container share a
// toolchain, and a mismatch from a toolchain change is also worth seeing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "src/config/scenario.hpp"

#ifndef DTN_GOLDEN_DIR
#error "DTN_GOLDEN_DIR must point at tests/golden"
#endif

namespace dtn {
namespace {

const char* const kPolicies[] = {"fifo", "ttl-ratio", "copies-ratio",
                                 "sdsrp"};
const char* const kScenarios[] = {"rwp", "taxi"};

Scenario pinned_scenario(const std::string& which, const std::string& policy) {
  Scenario sc = which == "taxi" ? Scenario::taxi_paper()
                                : Scenario::random_waypoint_paper();
  sc.n_nodes = 24;
  sc.world.duration = 4000.0;
  sc.rwp.area = Rect::sized(1500.0, 1200.0);
  sc.traffic.interval_min = 30.0;
  sc.traffic.interval_max = 40.0;
  sc.traffic.ttl = 2000.0;
  sc.traffic.initial_copies = 8;
  sc.policy = policy;
  sc.seed = 7;
  return sc;
}

std::string fixture_path() {
  return std::string(DTN_GOLDEN_DIR) + "/digests.txt";
}

std::string key_of(const std::string& scenario, const std::string& policy) {
  return scenario + " " + policy;
}

std::map<std::string, std::uint64_t> load_pins() {
  std::map<std::string, std::uint64_t> pins;
  std::ifstream is(fixture_path());
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string scenario, policy, hex;
    ls >> scenario >> policy >> hex;
    pins[key_of(scenario, policy)] = std::stoull(hex, nullptr, 16);
  }
  return pins;
}

std::uint64_t run_digest(const std::string& scenario,
                         const std::string& policy) {
  auto world = build_world(pinned_scenario(scenario, policy));
  world->run();
  return world->digest();
}

TEST(GoldenDigests, EndOfRunDigestsMatchPins) {
  if (std::getenv("DTN_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(fixture_path(), std::ios::trunc);
    ASSERT_TRUE(os.good()) << "cannot write " << fixture_path();
    os << "# End-of-run World::digest() pins (see test_golden_digests.cpp).\n"
       << "# Regenerate with: DTN_REGEN_GOLDEN=1 ./test_golden_digests\n";
    for (const char* scenario : kScenarios) {
      for (const char* policy : kPolicies) {
        char hex[32];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(
                          run_digest(scenario, policy)));
        os << scenario << " " << policy << " " << hex << "\n";
      }
    }
    GTEST_SKIP() << "regenerated " << fixture_path();
  }

  const auto pins = load_pins();
  ASSERT_EQ(pins.size(), 8u) << "fixture missing or incomplete: "
                             << fixture_path();
  for (const char* scenario : kScenarios) {
    for (const char* policy : kPolicies) {
      const auto it = pins.find(key_of(scenario, policy));
      ASSERT_NE(it, pins.end()) << "no pin for " << scenario << "/" << policy;
      EXPECT_EQ(run_digest(scenario, policy), it->second)
          << scenario << "/" << policy
          << " drifted; if intended, regenerate with DTN_REGEN_GOLDEN=1";
    }
  }
}

}  // namespace
}  // namespace dtn
