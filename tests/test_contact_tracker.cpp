// Unit tests for contact detection / link churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/net/contact_tracker.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace dtn {
namespace {

TEST(ContactTracker, DetectsPairWithinRange) {
  ContactTracker t(10.0);
  const auto churn = t.update({{0, 0}, {5, 0}, {100, 100}});
  ASSERT_EQ(churn.went_up.size(), 1u);
  EXPECT_EQ(churn.went_up[0], (NodePair{0, 1}));
  EXPECT_TRUE(churn.went_down.empty());
  EXPECT_TRUE(t.in_contact(0, 1));
  EXPECT_TRUE(t.in_contact(1, 0));  // symmetric
  EXPECT_FALSE(t.in_contact(0, 2));
}

TEST(ContactTracker, NoChurnWhileStable) {
  ContactTracker t(10.0);
  t.update({{0, 0}, {5, 0}});
  const auto churn = t.update({{0, 0}, {6, 0}});  // still in range
  EXPECT_TRUE(churn.went_up.empty());
  EXPECT_TRUE(churn.went_down.empty());
}

TEST(ContactTracker, DetectsLinkDown) {
  ContactTracker t(10.0);
  t.update({{0, 0}, {5, 0}});
  const auto churn = t.update({{0, 0}, {50, 0}});
  EXPECT_TRUE(churn.went_up.empty());
  ASSERT_EQ(churn.went_down.size(), 1u);
  EXPECT_EQ(churn.went_down[0], (NodePair{0, 1}));
  EXPECT_FALSE(t.in_contact(0, 1));
}

TEST(ContactTracker, RangeBoundaryInclusive) {
  ContactTracker t(10.0);
  const auto churn = t.update({{0, 0}, {10, 0}});
  EXPECT_EQ(churn.went_up.size(), 1u);  // distance == range counts
}

TEST(ContactTracker, MultiplePairsSortedDeterministically) {
  ContactTracker t(10.0);
  const auto churn = t.update({{0, 0}, {5, 0}, {5, 5}, {100, 0}, {104, 0}});
  // pairs: (0,1), (0,2), (1,2), (3,4)
  ASSERT_EQ(churn.went_up.size(), 4u);
  EXPECT_TRUE(std::is_sorted(churn.went_up.begin(), churn.went_up.end()));
  EXPECT_EQ(t.current().size(), 4u);
}

TEST(ContactTracker, FlappingLinkProducesChurnEachTime) {
  ContactTracker t(10.0);
  for (int i = 0; i < 3; ++i) {
    auto up = t.update({{0, 0}, {5, 0}});
    EXPECT_EQ(up.went_up.size(), 1u);
    auto down = t.update({{0, 0}, {50, 0}});
    EXPECT_EQ(down.went_down.size(), 1u);
  }
}

TEST(ContactTracker, MakePairSortedNormalizes) {
  EXPECT_EQ(make_pair_sorted(7, 3), (NodePair{3, 7}));
  EXPECT_EQ(make_pair_sorted(3, 7), (NodePair{3, 7}));
}

TEST(ContactTracker, RejectsBadRange) {
  EXPECT_THROW(ContactTracker(0.0), PreconditionError);
}

std::vector<Vec2> random_cloud(Rng& rng, std::size_t n, double extent) {
  std::vector<Vec2> pos;
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back({rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
  }
  return pos;
}

TEST(ContactTracker, ChurnDeterministicUnderPermutedNodeOrder) {
  // Relabeling the nodes must relabel the churn, nothing else: same pairs
  // (under the index mapping), and both emissions sorted. Guards against
  // iteration order leaking from hash containers or grid bucket layout.
  Rng rng(21);
  const std::size_t n = 80;
  std::vector<Vec2> pos = random_cloud(rng, n, 400.0);

  // Permutation: perm[i] = new index of original node i (reversal mixes
  // every comparison-based order).
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = n - 1 - i;
  std::vector<Vec2> pos_perm(n);
  for (std::size_t i = 0; i < n; ++i) pos_perm[perm[i]] = pos[i];

  ContactTracker a(50.0);
  ContactTracker b(50.0);
  const ContactChurn& ca = a.update(pos);
  const ContactChurn& cb = b.update(pos_perm);
  EXPECT_TRUE(std::is_sorted(cb.went_up.begin(), cb.went_up.end()));

  std::set<NodePair> mapped;
  for (const NodePair& p : ca.went_up) {
    mapped.insert(make_pair_sorted(perm[p.first], perm[p.second]));
  }
  const std::set<NodePair> got(cb.went_up.begin(), cb.went_up.end());
  EXPECT_EQ(got, mapped);
  EXPECT_EQ(a.current().size(), b.current().size());
}

TEST(ContactTracker, KineticSkippingMatchesDisabledTracker) {
  // Drive a kinetic tracker and a plain one through the same random-walk
  // trajectory; every update must report identical churn and contact
  // sets, while the kinetic one provably skips most grid passes.
  Rng rng(22);
  const std::size_t n = 40;
  const double range = 50.0;
  const double step_dist = 1.5;  // well under range: skipping can engage
  std::vector<Vec2> pos = random_cloud(rng, n, 600.0);

  ContactTracker kinetic(range);
  kinetic.set_motion_bound(step_dist);
  ContactTracker plain(range);  // no motion bound: full pass every step

  for (int step = 0; step < 400; ++step) {
    const ContactChurn& ck = kinetic.update(pos);
    const ContactChurn& cp = plain.update(pos);
    ASSERT_EQ(ck.went_up, cp.went_up) << "step " << step;
    ASSERT_EQ(ck.went_down, cp.went_down) << "step " << step;
    ASSERT_EQ(kinetic.current(), plain.current()) << "step " << step;
    for (Vec2& p : pos) {
      const double ang = rng.uniform(0.0, 6.283185307179586);
      p.x += step_dist * std::cos(ang);
      p.y += step_dist * std::sin(ang);
    }
  }
  EXPECT_EQ(plain.full_pass_count(), plain.update_count());
  EXPECT_LT(kinetic.full_pass_count(), kinetic.update_count() / 2);
}

TEST(ContactTracker, StationaryFleetSkipsEverySubsequentPass) {
  ContactTracker t(10.0);
  t.set_motion_bound(0.0);  // stationary fleet: maximal slack
  const std::vector<Vec2> pos{{0, 0}, {5, 0}, {100, 0}};
  for (int i = 0; i < 50; ++i) t.update(pos);
  EXPECT_EQ(t.update_count(), 50u);
  EXPECT_EQ(t.full_pass_count(), 1u);
  EXPECT_TRUE(t.in_contact(0, 1));
  EXPECT_FALSE(t.in_contact(0, 2));
}

}  // namespace
}  // namespace dtn
