// Unit tests for contact detection / link churn.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/net/contact_tracker.hpp"
#include "src/util/error.hpp"

namespace dtn {
namespace {

TEST(ContactTracker, DetectsPairWithinRange) {
  ContactTracker t(10.0);
  const auto churn = t.update({{0, 0}, {5, 0}, {100, 100}});
  ASSERT_EQ(churn.went_up.size(), 1u);
  EXPECT_EQ(churn.went_up[0], (NodePair{0, 1}));
  EXPECT_TRUE(churn.went_down.empty());
  EXPECT_TRUE(t.in_contact(0, 1));
  EXPECT_TRUE(t.in_contact(1, 0));  // symmetric
  EXPECT_FALSE(t.in_contact(0, 2));
}

TEST(ContactTracker, NoChurnWhileStable) {
  ContactTracker t(10.0);
  t.update({{0, 0}, {5, 0}});
  const auto churn = t.update({{0, 0}, {6, 0}});  // still in range
  EXPECT_TRUE(churn.went_up.empty());
  EXPECT_TRUE(churn.went_down.empty());
}

TEST(ContactTracker, DetectsLinkDown) {
  ContactTracker t(10.0);
  t.update({{0, 0}, {5, 0}});
  const auto churn = t.update({{0, 0}, {50, 0}});
  EXPECT_TRUE(churn.went_up.empty());
  ASSERT_EQ(churn.went_down.size(), 1u);
  EXPECT_EQ(churn.went_down[0], (NodePair{0, 1}));
  EXPECT_FALSE(t.in_contact(0, 1));
}

TEST(ContactTracker, RangeBoundaryInclusive) {
  ContactTracker t(10.0);
  const auto churn = t.update({{0, 0}, {10, 0}});
  EXPECT_EQ(churn.went_up.size(), 1u);  // distance == range counts
}

TEST(ContactTracker, MultiplePairsSortedDeterministically) {
  ContactTracker t(10.0);
  const auto churn = t.update({{0, 0}, {5, 0}, {5, 5}, {100, 0}, {104, 0}});
  // pairs: (0,1), (0,2), (1,2), (3,4)
  ASSERT_EQ(churn.went_up.size(), 4u);
  EXPECT_TRUE(std::is_sorted(churn.went_up.begin(), churn.went_up.end()));
  EXPECT_EQ(t.current().size(), 4u);
}

TEST(ContactTracker, FlappingLinkProducesChurnEachTime) {
  ContactTracker t(10.0);
  for (int i = 0; i < 3; ++i) {
    auto up = t.update({{0, 0}, {5, 0}});
    EXPECT_EQ(up.went_up.size(), 1u);
    auto down = t.update({{0, 0}, {50, 0}});
    EXPECT_EQ(down.went_down.size(), 1u);
  }
}

TEST(ContactTracker, MakePairSortedNormalizes) {
  EXPECT_EQ(make_pair_sorted(7, 3), (NodePair{3, 7}));
  EXPECT_EQ(make_pair_sorted(3, 7), (NodePair{3, 7}));
}

TEST(ContactTracker, RejectsBadRange) {
  EXPECT_THROW(ContactTracker(0.0), PreconditionError);
}

}  // namespace
}  // namespace dtn
