// Unit tests for geometry: Vec2, Rect, SpatialGrid.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/geo/rect.hpp"
#include "src/geo/spatial_grid.hpp"
#include "src/geo/vec2.hpp"
#include "src/util/rng.hpp"

namespace dtn {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, 5};
  EXPECT_EQ(a + b, (Vec2{4, 7}));
  EXPECT_EQ(b - a, (Vec2{2, 3}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ(dot(a, b), 13.0);
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm2(), 25.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({0, 0}, {3, 4}), 25.0);
}

TEST(Vec2, NormalizedHandlesZero) {
  EXPECT_EQ((Vec2{0, 0}).normalized(), (Vec2{0, 0}));
  const Vec2 u = (Vec2{10, 0}).normalized();
  EXPECT_DOUBLE_EQ(u.x, 1.0);
  EXPECT_DOUBLE_EQ(u.y, 0.0);
}

TEST(Vec2, Lerp) {
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 0.5), (Vec2{5, 10}));
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 0.0), (Vec2{0, 0}));
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 1.0), (Vec2{10, 20}));
}

TEST(Rect, BasicsAndContains) {
  const Rect r = Rect::sized(100, 50);
  EXPECT_DOUBLE_EQ(r.width(), 100.0);
  EXPECT_DOUBLE_EQ(r.height(), 50.0);
  EXPECT_DOUBLE_EQ(r.area(), 5000.0);
  EXPECT_EQ(r.center(), (Vec2{50, 25}));
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({100, 50}));
  EXPECT_FALSE(r.contains({100.1, 0}));
  EXPECT_FALSE(r.contains({0, -0.1}));
}

TEST(Rect, InvertedCornersThrow) {
  EXPECT_THROW(Rect({1, 1}, {0, 0}), PreconditionError);
}

TEST(Rect, ClampPullsInside) {
  const Rect r = Rect::sized(10, 10);
  EXPECT_EQ(r.clamp({-5, 5}), (Vec2{0, 5}));
  EXPECT_EQ(r.clamp({15, 20}), (Vec2{10, 10}));
  EXPECT_EQ(r.clamp({3, 4}), (Vec2{3, 4}));
}

TEST(Rect, ReflectFoldsBack) {
  const Rect r = Rect::sized(10, 10);
  EXPECT_EQ(r.reflect({-2, 5}), (Vec2{2, 5}));
  EXPECT_EQ(r.reflect({12, 5}), (Vec2{8, 5}));
  EXPECT_EQ(r.reflect({5, -3}), (Vec2{5, 3}));
  const Vec2 in = r.reflect({23, -17});  // large overstep still lands inside
  EXPECT_TRUE(r.contains(in));
}

TEST(Rect, SampleUniformInside) {
  const Rect r({10, 20}, {30, 60});
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(r.contains(r.sample(rng)));
  }
}

TEST(SpatialGrid, RejectsBadCell) {
  EXPECT_THROW(SpatialGrid(0.0), PreconditionError);
}

TEST(SpatialGrid, PairsMatchBruteForce) {
  Rng rng(10);
  std::vector<Vec2> pos;
  for (int i = 0; i < 200; ++i) pos.push_back({rng.uniform(0, 1000), rng.uniform(0, 700)});
  const double radius = 50.0;
  SpatialGrid grid(radius);
  grid.rebuild(pos);

  std::set<std::pair<std::size_t, std::size_t>> from_grid;
  grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j) {
    from_grid.emplace(i, j);
  });

  std::set<std::pair<std::size_t, std::size_t>> brute;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      if (distance(pos[i], pos[j]) <= radius) brute.emplace(i, j);
    }
  }
  EXPECT_EQ(from_grid, brute);
}

TEST(SpatialGrid, PairOrderIsDeterministicAndSorted) {
  Rng rng(11);
  std::vector<Vec2> pos;
  for (int i = 0; i < 100; ++i) pos.push_back({rng.uniform(0, 300), rng.uniform(0, 300)});
  SpatialGrid grid(60.0);
  grid.rebuild(pos);
  std::vector<std::pair<std::size_t, std::size_t>> order;
  grid.for_each_pair_within(60.0, [&](std::size_t i, std::size_t j) {
    EXPECT_LT(i, j);
    order.emplace_back(i, j);
  });
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(SpatialGrid, RadiusLargerThanCellThrows) {
  SpatialGrid grid(10.0);
  grid.rebuild({{0, 0}});
  EXPECT_THROW(grid.for_each_pair_within(20.0, [](std::size_t, std::size_t) {}),
               PreconditionError);
}

TEST(SpatialGrid, QueryFindsNeighborsAcrossCells) {
  SpatialGrid grid(10.0);
  grid.rebuild({{0, 0}, {9, 0}, {25, 0}, {5, 5}});
  const auto near = grid.query({1, 0}, 12.0);
  EXPECT_EQ(near, (std::vector<std::size_t>{0, 1, 3}));
  const auto excl = grid.query({1, 0}, 12.0, /*exclude=*/0);
  EXPECT_EQ(excl, (std::vector<std::size_t>{1, 3}));
}

TEST(SpatialGrid, NegativeCoordinatesWork) {
  SpatialGrid grid(50.0);
  grid.rebuild({{-100, -100}, {-60, -100}, {100, 100}});
  int pairs = 0;
  grid.for_each_pair_within(50.0, [&](std::size_t i, std::size_t j) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(j, 1u);
    ++pairs;
  });
  EXPECT_EQ(pairs, 1);
}

// Brute-force oracle over all unordered pairs within `radius`.
std::set<std::pair<std::size_t, std::size_t>> brute_pairs(
    const std::vector<Vec2>& pos, double radius) {
  std::set<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      if (distance2(pos[i], pos[j]) <= radius * radius) out.emplace(i, j);
    }
  }
  return out;
}

TEST(SpatialGrid, RadiusExactlyCellSizeOnBoundaryLattice) {
  // Nodes sit exactly on cell boundaries (multiples of the cell size) and
  // the query radius equals the cell size exactly, so many pair distances
  // are exactly == radius. floor() cell assignment plus the 3x3 reach must
  // still find every boundary pair the brute force does.
  const double cell = 25.0;
  std::vector<Vec2> pos;
  for (int x = -2; x <= 2; ++x) {
    for (int y = -2; y <= 2; ++y) pos.push_back({x * cell, y * cell});
  }
  SpatialGrid grid(cell);
  grid.rebuild(pos);
  std::set<std::pair<std::size_t, std::size_t>> from_grid;
  grid.for_each_pair_within(cell, [&](std::size_t i, std::size_t j) {
    from_grid.emplace(i, j);
  });
  EXPECT_EQ(from_grid, brute_pairs(pos, cell));
  // Each interior node has exactly 4 axis-neighbors at distance == cell.
  EXPECT_EQ(from_grid.size(), 40u);  // 2 * 4 * 5 horizontal+vertical edges
}

TEST(SpatialGrid, NegativeCoordinatesMatchBruteForce) {
  // Random cloud spanning all four quadrants: the (cx<<32)^cy key packing
  // must keep negative cell indices distinct from positive ones.
  Rng rng(12);
  std::vector<Vec2> pos;
  for (int i = 0; i < 150; ++i) {
    pos.push_back({rng.uniform(-500, 500), rng.uniform(-500, 500)});
  }
  const double radius = 60.0;
  SpatialGrid grid(radius);
  grid.rebuild(pos);
  std::set<std::pair<std::size_t, std::size_t>> from_grid;
  grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j) {
    from_grid.emplace(i, j);
  });
  EXPECT_EQ(from_grid, brute_pairs(pos, radius));
}

TEST(SpatialGrid, DistanceReportingOverloadMatchesBruteForce) {
  Rng rng(13);
  std::vector<Vec2> pos;
  for (int i = 0; i < 120; ++i) {
    pos.push_back({rng.uniform(-200, 400), rng.uniform(-300, 100)});
  }
  const double radius = 45.0;
  SpatialGrid grid(radius);
  grid.rebuild(pos);
  std::set<std::pair<std::size_t, std::size_t>> from_grid;
  grid.for_each_pair_within(
      radius, [&](std::size_t i, std::size_t j, double d2) {
        EXPECT_DOUBLE_EQ(d2, distance2(pos[i], pos[j]));
        EXPECT_LE(d2, radius * radius);
        from_grid.emplace(i, j);
      });
  EXPECT_EQ(from_grid, brute_pairs(pos, radius));
}

TEST(SpatialGrid, RebuildReusesCapacityAcrossFrames) {
  // Steady-state rebuilds must tolerate fleets growing and shrinking and
  // nodes exactly sharing a position (same cell slot, distinct nodes).
  SpatialGrid grid(10.0);
  grid.rebuild({{0, 0}, {0, 0}, {3, 4}});
  int pairs = 0;
  grid.for_each_pair_within(10.0, [&](std::size_t, std::size_t) { ++pairs; });
  EXPECT_EQ(pairs, 3);
  grid.rebuild({{0, 0}});  // shrink
  pairs = 0;
  grid.for_each_pair_within(10.0, [&](std::size_t, std::size_t) { ++pairs; });
  EXPECT_EQ(pairs, 0);
  grid.rebuild({{0, 0}, {5, 0}, {100, 0}, {105, 0}});  // grow again
  std::set<std::pair<std::size_t, std::size_t>> got;
  grid.for_each_pair_within(10.0, [&](std::size_t i, std::size_t j) {
    got.emplace(i, j);
  });
  EXPECT_EQ(got, (std::set<std::pair<std::size_t, std::size_t>>{{0, 1},
                                                                {2, 3}}));
}

// --- hierarchical layout (DESIGN.md §14) ----------------------------------

TEST(SpatialGridHierarchy, CompactCloudsUseTheHierarchicalLayout) {
  Rng rng(14);
  std::vector<Vec2> pos;
  for (int i = 0; i < 50; ++i) {
    pos.push_back({rng.uniform(0, 2000), rng.uniform(0, 2000)});
  }
  SpatialGrid grid(100.0);
  grid.rebuild(pos);
  EXPECT_TRUE(grid.hierarchical());
  grid.rebuild({});  // empty fleet degrades gracefully
  EXPECT_FALSE(grid.hierarchical());
  int pairs = 0;
  grid.for_each_pair_within(100.0, [&](std::size_t, std::size_t) { ++pairs; });
  EXPECT_EQ(pairs, 0);
}

TEST(SpatialGridHierarchy, FlatFallbackBeyondCoarseBudgetMatchesBruteForce) {
  // Two clusters ~2e8 cells apart: a dense coarse directory over the
  // bounding box would need far more than kMaxCoarseCells tiles, so the
  // rebuild must fall back to the flat layout — and still enumerate the
  // same pairs.
  std::vector<Vec2> pos = {{0, 0},         {0.5, 0.3},       {1.2, 0.0},
                           {2.0e8, 5.0},   {2.0e8 + 0.8, 5.2}};
  SpatialGrid grid(1.0);
  grid.rebuild(pos);
  EXPECT_FALSE(grid.hierarchical());
  std::set<std::pair<std::size_t, std::size_t>> from_grid;
  grid.for_each_pair_within(1.0, [&](std::size_t i, std::size_t j) {
    from_grid.emplace(i, j);
  });
  EXPECT_EQ(from_grid, brute_pairs(pos, 1.0));
}

TEST(SpatialGridHierarchy, BoundaryLatticeAcrossCoarseTileEdges) {
  // Nodes on exact fine-cell corners spanning several 8x8 coarse tiles,
  // straddling the tile seam at cell index 8 and the negative seam at 0:
  // the dense directory lookup and the in-tile binary search must agree
  // with brute force on every exactly-at-radius pair.
  const double cell = 10.0;
  std::vector<Vec2> pos;
  for (int x = -10; x <= 10; ++x) {
    for (int y = 6; y <= 10; ++y) pos.push_back({x * cell, y * cell});
  }
  SpatialGrid grid(cell);
  grid.rebuild(pos);
  EXPECT_TRUE(grid.hierarchical());
  std::set<std::pair<std::size_t, std::size_t>> from_grid;
  std::vector<std::pair<std::size_t, std::size_t>> order;
  grid.for_each_pair_within(cell, [&](std::size_t i, std::size_t j) {
    from_grid.emplace(i, j);
    order.emplace_back(i, j);
  });
  EXPECT_EQ(from_grid, brute_pairs(pos, cell));
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(SpatialGridHierarchy, NegativeQuadrantsMatchBruteForce) {
  Rng rng(15);
  std::vector<Vec2> pos;
  for (int i = 0; i < 180; ++i) {
    pos.push_back({rng.uniform(-900, 100), rng.uniform(-100, 900)});
  }
  const double radius = 40.0;
  SpatialGrid grid(radius);
  grid.rebuild(pos);
  EXPECT_TRUE(grid.hierarchical());
  std::set<std::pair<std::size_t, std::size_t>> from_grid;
  grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j) {
    from_grid.emplace(i, j);
  });
  EXPECT_EQ(from_grid, brute_pairs(pos, radius));
}

TEST(SpatialGridHierarchy, SkewedDenseClusterMatchesBruteForce) {
  // Pathological occupancy for a bucketed index: 300 nodes piled into a
  // couple of fine cells (some sharing exact positions) plus a sparse
  // fringe across other coarse tiles.
  Rng rng(16);
  std::vector<Vec2> pos;
  for (int i = 0; i < 300; ++i) {
    pos.push_back({rng.uniform(0, 30), rng.uniform(0, 30)});
  }
  for (int i = 0; i < 40; ++i) {
    pos.push_back({rng.uniform(-2000, 2000), rng.uniform(-2000, 2000)});
  }
  pos.push_back(pos[0]);  // exact duplicate position
  const double radius = 25.0;
  SpatialGrid grid(radius);
  grid.rebuild(pos);
  EXPECT_TRUE(grid.hierarchical());
  std::set<std::pair<std::size_t, std::size_t>> from_grid;
  std::vector<std::pair<std::size_t, std::size_t>> order;
  grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j) {
    from_grid.emplace(i, j);
    order.emplace_back(i, j);
  });
  EXPECT_EQ(from_grid, brute_pairs(pos, radius));
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(SpatialGridHierarchy, QueryReachesAcrossTiles) {
  // query() may use radii above the cell size (multi-ring reach); rings
  // that cross coarse-tile seams must resolve through the directory.
  const double cell = 10.0;
  std::vector<Vec2> pos;
  for (int x = 0; x <= 20; ++x) pos.push_back({x * cell, 0.0});
  SpatialGrid grid(cell);
  grid.rebuild(pos);
  ASSERT_TRUE(grid.hierarchical());
  const auto near = grid.query({100.0, 0.0}, 35.0, /*exclude=*/10);
  EXPECT_EQ(near, (std::vector<std::size_t>{7, 8, 9, 11, 12, 13}));
}

TEST(SpatialGridHierarchy, ShardedCollectConcatenationMatchesFullRange) {
  Rng rng(17);
  std::vector<Vec2> pos;
  for (int i = 0; i < 250; ++i) {
    pos.push_back({rng.uniform(-400, 400), rng.uniform(-400, 400)});
  }
  const double radius = 55.0;
  SpatialGrid grid(radius);
  grid.rebuild(pos);
  std::vector<SpatialGrid::PairHit> full;
  grid.collect_pairs_within(radius, 0, pos.size(), full);
  std::vector<SpatialGrid::PairHit> sharded;
  for (std::size_t lo = 0; lo < pos.size(); lo += 61) {
    grid.collect_pairs_within(radius, lo, std::min(lo + 61, pos.size()),
                              sharded);
  }
  ASSERT_EQ(sharded.size(), full.size());
  for (std::size_t k = 0; k < full.size(); ++k) {
    EXPECT_EQ(sharded[k].i, full[k].i);
    EXPECT_EQ(sharded[k].j, full[k].j);
    EXPECT_DOUBLE_EQ(sharded[k].d2, full[k].d2);
  }
}

TEST(SpatialGridHierarchy, ReserveThenRebuildKeepsResults) {
  SpatialGrid grid(20.0);
  grid.reserve_nodes(64);
  std::vector<Vec2> pos = {{0, 0}, {10, 0}, {0, 15}, {300, 300}};
  grid.rebuild(pos);
  std::set<std::pair<std::size_t, std::size_t>> got;
  grid.for_each_pair_within(20.0, [&](std::size_t i, std::size_t j) {
    got.emplace(i, j);
  });
  EXPECT_EQ(got, brute_pairs(pos, 20.0));
}

}  // namespace
}  // namespace dtn
