// Unit tests for geometry: Vec2, Rect, SpatialGrid.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/geo/rect.hpp"
#include "src/geo/spatial_grid.hpp"
#include "src/geo/vec2.hpp"
#include "src/util/rng.hpp"

namespace dtn {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, 5};
  EXPECT_EQ(a + b, (Vec2{4, 7}));
  EXPECT_EQ(b - a, (Vec2{2, 3}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ(dot(a, b), 13.0);
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm2(), 25.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({0, 0}, {3, 4}), 25.0);
}

TEST(Vec2, NormalizedHandlesZero) {
  EXPECT_EQ((Vec2{0, 0}).normalized(), (Vec2{0, 0}));
  const Vec2 u = (Vec2{10, 0}).normalized();
  EXPECT_DOUBLE_EQ(u.x, 1.0);
  EXPECT_DOUBLE_EQ(u.y, 0.0);
}

TEST(Vec2, Lerp) {
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 0.5), (Vec2{5, 10}));
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 0.0), (Vec2{0, 0}));
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 1.0), (Vec2{10, 20}));
}

TEST(Rect, BasicsAndContains) {
  const Rect r = Rect::sized(100, 50);
  EXPECT_DOUBLE_EQ(r.width(), 100.0);
  EXPECT_DOUBLE_EQ(r.height(), 50.0);
  EXPECT_DOUBLE_EQ(r.area(), 5000.0);
  EXPECT_EQ(r.center(), (Vec2{50, 25}));
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({100, 50}));
  EXPECT_FALSE(r.contains({100.1, 0}));
  EXPECT_FALSE(r.contains({0, -0.1}));
}

TEST(Rect, InvertedCornersThrow) {
  EXPECT_THROW(Rect({1, 1}, {0, 0}), PreconditionError);
}

TEST(Rect, ClampPullsInside) {
  const Rect r = Rect::sized(10, 10);
  EXPECT_EQ(r.clamp({-5, 5}), (Vec2{0, 5}));
  EXPECT_EQ(r.clamp({15, 20}), (Vec2{10, 10}));
  EXPECT_EQ(r.clamp({3, 4}), (Vec2{3, 4}));
}

TEST(Rect, ReflectFoldsBack) {
  const Rect r = Rect::sized(10, 10);
  EXPECT_EQ(r.reflect({-2, 5}), (Vec2{2, 5}));
  EXPECT_EQ(r.reflect({12, 5}), (Vec2{8, 5}));
  EXPECT_EQ(r.reflect({5, -3}), (Vec2{5, 3}));
  const Vec2 in = r.reflect({23, -17});  // large overstep still lands inside
  EXPECT_TRUE(r.contains(in));
}

TEST(Rect, SampleUniformInside) {
  const Rect r({10, 20}, {30, 60});
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(r.contains(r.sample(rng)));
  }
}

TEST(SpatialGrid, RejectsBadCell) {
  EXPECT_THROW(SpatialGrid(0.0), PreconditionError);
}

TEST(SpatialGrid, PairsMatchBruteForce) {
  Rng rng(10);
  std::vector<Vec2> pos;
  for (int i = 0; i < 200; ++i) pos.push_back({rng.uniform(0, 1000), rng.uniform(0, 700)});
  const double radius = 50.0;
  SpatialGrid grid(radius);
  grid.rebuild(pos);

  std::set<std::pair<std::size_t, std::size_t>> from_grid;
  grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j) {
    from_grid.emplace(i, j);
  });

  std::set<std::pair<std::size_t, std::size_t>> brute;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      if (distance(pos[i], pos[j]) <= radius) brute.emplace(i, j);
    }
  }
  EXPECT_EQ(from_grid, brute);
}

TEST(SpatialGrid, PairOrderIsDeterministicAndSorted) {
  Rng rng(11);
  std::vector<Vec2> pos;
  for (int i = 0; i < 100; ++i) pos.push_back({rng.uniform(0, 300), rng.uniform(0, 300)});
  SpatialGrid grid(60.0);
  grid.rebuild(pos);
  std::vector<std::pair<std::size_t, std::size_t>> order;
  grid.for_each_pair_within(60.0, [&](std::size_t i, std::size_t j) {
    EXPECT_LT(i, j);
    order.emplace_back(i, j);
  });
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(SpatialGrid, RadiusLargerThanCellThrows) {
  SpatialGrid grid(10.0);
  grid.rebuild({{0, 0}});
  EXPECT_THROW(grid.for_each_pair_within(20.0, [](std::size_t, std::size_t) {}),
               PreconditionError);
}

TEST(SpatialGrid, QueryFindsNeighborsAcrossCells) {
  SpatialGrid grid(10.0);
  grid.rebuild({{0, 0}, {9, 0}, {25, 0}, {5, 5}});
  const auto near = grid.query({1, 0}, 12.0);
  EXPECT_EQ(near, (std::vector<std::size_t>{0, 1, 3}));
  const auto excl = grid.query({1, 0}, 12.0, /*exclude=*/0);
  EXPECT_EQ(excl, (std::vector<std::size_t>{1, 3}));
}

TEST(SpatialGrid, NegativeCoordinatesWork) {
  SpatialGrid grid(50.0);
  grid.rebuild({{-100, -100}, {-60, -100}, {100, 100}});
  int pairs = 0;
  grid.for_each_pair_within(50.0, [&](std::size_t i, std::size_t j) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(j, 1u);
    ++pairs;
  });
  EXPECT_EQ(pairs, 1);
}

// Brute-force oracle over all unordered pairs within `radius`.
std::set<std::pair<std::size_t, std::size_t>> brute_pairs(
    const std::vector<Vec2>& pos, double radius) {
  std::set<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      if (distance2(pos[i], pos[j]) <= radius * radius) out.emplace(i, j);
    }
  }
  return out;
}

TEST(SpatialGrid, RadiusExactlyCellSizeOnBoundaryLattice) {
  // Nodes sit exactly on cell boundaries (multiples of the cell size) and
  // the query radius equals the cell size exactly, so many pair distances
  // are exactly == radius. floor() cell assignment plus the 3x3 reach must
  // still find every boundary pair the brute force does.
  const double cell = 25.0;
  std::vector<Vec2> pos;
  for (int x = -2; x <= 2; ++x) {
    for (int y = -2; y <= 2; ++y) pos.push_back({x * cell, y * cell});
  }
  SpatialGrid grid(cell);
  grid.rebuild(pos);
  std::set<std::pair<std::size_t, std::size_t>> from_grid;
  grid.for_each_pair_within(cell, [&](std::size_t i, std::size_t j) {
    from_grid.emplace(i, j);
  });
  EXPECT_EQ(from_grid, brute_pairs(pos, cell));
  // Each interior node has exactly 4 axis-neighbors at distance == cell.
  EXPECT_EQ(from_grid.size(), 40u);  // 2 * 4 * 5 horizontal+vertical edges
}

TEST(SpatialGrid, NegativeCoordinatesMatchBruteForce) {
  // Random cloud spanning all four quadrants: the (cx<<32)^cy key packing
  // must keep negative cell indices distinct from positive ones.
  Rng rng(12);
  std::vector<Vec2> pos;
  for (int i = 0; i < 150; ++i) {
    pos.push_back({rng.uniform(-500, 500), rng.uniform(-500, 500)});
  }
  const double radius = 60.0;
  SpatialGrid grid(radius);
  grid.rebuild(pos);
  std::set<std::pair<std::size_t, std::size_t>> from_grid;
  grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j) {
    from_grid.emplace(i, j);
  });
  EXPECT_EQ(from_grid, brute_pairs(pos, radius));
}

TEST(SpatialGrid, DistanceReportingOverloadMatchesBruteForce) {
  Rng rng(13);
  std::vector<Vec2> pos;
  for (int i = 0; i < 120; ++i) {
    pos.push_back({rng.uniform(-200, 400), rng.uniform(-300, 100)});
  }
  const double radius = 45.0;
  SpatialGrid grid(radius);
  grid.rebuild(pos);
  std::set<std::pair<std::size_t, std::size_t>> from_grid;
  grid.for_each_pair_within(
      radius, [&](std::size_t i, std::size_t j, double d2) {
        EXPECT_DOUBLE_EQ(d2, distance2(pos[i], pos[j]));
        EXPECT_LE(d2, radius * radius);
        from_grid.emplace(i, j);
      });
  EXPECT_EQ(from_grid, brute_pairs(pos, radius));
}

TEST(SpatialGrid, RebuildReusesCapacityAcrossFrames) {
  // Steady-state rebuilds must tolerate fleets growing and shrinking and
  // nodes exactly sharing a position (same cell slot, distinct nodes).
  SpatialGrid grid(10.0);
  grid.rebuild({{0, 0}, {0, 0}, {3, 4}});
  int pairs = 0;
  grid.for_each_pair_within(10.0, [&](std::size_t, std::size_t) { ++pairs; });
  EXPECT_EQ(pairs, 3);
  grid.rebuild({{0, 0}});  // shrink
  pairs = 0;
  grid.for_each_pair_within(10.0, [&](std::size_t, std::size_t) { ++pairs; });
  EXPECT_EQ(pairs, 0);
  grid.rebuild({{0, 0}, {5, 0}, {100, 0}, {105, 0}});  // grow again
  std::set<std::pair<std::size_t, std::size_t>> got;
  grid.for_each_pair_within(10.0, [&](std::size_t i, std::size_t j) {
    got.emplace(i, j);
  });
  EXPECT_EQ(got, (std::set<std::pair<std::size_t, std::size_t>>{{0, 1},
                                                                {2, 3}}));
}

}  // namespace
}  // namespace dtn
