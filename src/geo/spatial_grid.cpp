#include "src/geo/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace dtn {

SpatialGrid::SpatialGrid(double cell) : cell_(cell) {
  DTN_REQUIRE(cell > 0.0, "SpatialGrid: cell size must be positive");
}

void SpatialGrid::set_cell(double cell) {
  DTN_REQUIRE(cell > 0.0, "SpatialGrid: cell size must be positive");
  if (cell == cell_) return;
  cell_ = cell;
  rebuild_index();
}

SpatialGrid::CellKey SpatialGrid::key_of(Vec2 p) const {
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_));
  return key(cx, cy);
}

void SpatialGrid::rebuild(const std::vector<Vec2>& positions) {
  positions_ = positions;  // vector assign: reuses capacity, no realloc
  rebuild_index();
}

void SpatialGrid::rebuild_index() {
  slots_.resize(positions_.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    slots_[i].cell = key_of(positions_[i]);
    slots_[i].node = static_cast<std::uint32_t>(i);
  }
  std::sort(slots_.begin(), slots_.end(), [](const Slot& a, const Slot& b) {
    if (a.cell != b.cell) return a.cell < b.cell;
    return a.node < b.node;
  });
  cell_keys_.clear();
  cell_start_.clear();
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (cell_keys_.empty() || cell_keys_.back() != slots_[s].cell) {
      cell_keys_.push_back(slots_[s].cell);
      cell_start_.push_back(static_cast<std::uint32_t>(s));
    }
  }
  cell_start_.push_back(static_cast<std::uint32_t>(slots_.size()));
}

std::size_t SpatialGrid::find_cell(CellKey k) const {
  const auto it = std::lower_bound(cell_keys_.begin(), cell_keys_.end(), k);
  if (it == cell_keys_.end() || *it != k) return SIZE_MAX;
  return static_cast<std::size_t>(it - cell_keys_.begin());
}

void SpatialGrid::for_each_pair_within(
    double radius,
    const std::function<void(std::size_t, std::size_t)>& fn) const {
  for_each_pair_within(
      radius, [&fn](std::size_t i, std::size_t j, double /*d2*/) { fn(i, j); });
}

void SpatialGrid::for_each_pair_within(
    double radius,
    const std::function<void(std::size_t, std::size_t, double)>& fn) const {
  pair_scratch_.clear();
  collect_pairs_within(radius, 0, positions_.size(), pair_scratch_);
  for (const PairHit& h : pair_scratch_) fn(h.i, h.j, h.d2);
}

void SpatialGrid::collect_pairs_within(double radius, std::size_t begin,
                                       std::size_t end,
                                       std::vector<PairHit>& out) const {
  DTN_REQUIRE(radius <= cell_ + 1e-9,
              "SpatialGrid: query radius exceeds cell size");
  const double r2 = radius * radius;
  const std::size_t first = out.size();
  // Collect candidate pairs, then sort so the emitted order does not
  // depend on bucket layout (determinism across libstdc++s).
  for (std::size_t i = begin; i < end && i < positions_.size(); ++i) {
    const Vec2 p = positions_[i];
    const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_));
    const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_));
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const std::size_t c = find_cell(key(cx + dx, cy + dy));
        if (c == SIZE_MAX) continue;
        for (std::uint32_t s = cell_start_[c]; s < cell_start_[c + 1]; ++s) {
          const std::size_t j = slots_[s].node;
          if (j <= i) continue;
          const double d2 = distance2(p, positions_[j]);
          if (d2 <= r2) {
            out.push_back(PairHit{static_cast<std::uint32_t>(i),
                                  static_cast<std::uint32_t>(j), d2});
          }
        }
      }
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
            [](const PairHit& a, const PairHit& b) {
              if (a.i != b.i) return a.i < b.i;
              return a.j < b.j;
            });
}

std::vector<std::size_t> SpatialGrid::query(Vec2 p, double radius,
                                            std::size_t exclude) const {
  const double r2 = radius * radius;
  std::vector<std::size_t> out;
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_));
  const auto reach = static_cast<std::int64_t>(std::ceil(radius / cell_));
  for (std::int64_t dx = -reach; dx <= reach; ++dx) {
    for (std::int64_t dy = -reach; dy <= reach; ++dy) {
      const std::size_t c = find_cell(key(cx + dx, cy + dy));
      if (c == SIZE_MAX) continue;
      for (std::uint32_t s = cell_start_[c]; s < cell_start_[c + 1]; ++s) {
        const std::size_t j = slots_[s].node;
        if (j == exclude) continue;
        if (distance2(p, positions_[j]) <= r2) out.push_back(j);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dtn
