#include "src/geo/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace dtn {

SpatialGrid::SpatialGrid(double cell) : cell_(cell) {
  DTN_REQUIRE(cell > 0.0, "SpatialGrid: cell size must be positive");
}

void SpatialGrid::set_cell(double cell) {
  DTN_REQUIRE(cell > 0.0, "SpatialGrid: cell size must be positive");
  if (cell == cell_) return;
  cell_ = cell;
  rebuild_index();
}

SpatialGrid::CellKey SpatialGrid::key_of(Vec2 p) const {
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_));
  return key(cx, cy);
}

void SpatialGrid::rebuild(const std::vector<Vec2>& positions) {
  positions_ = positions;  // vector assign: reuses capacity, no realloc
  rebuild_index();
}

void SpatialGrid::reserve_nodes(std::size_t n) {
  positions_.reserve(n);
  slots_.reserve(n);
  node_cell_.reserve(n);
}

void SpatialGrid::rebuild_index() {
  const std::size_t n = positions_.size();
  slots_.resize(n);
  node_cell_.resize(n);
  // Pass 1: fine cell per node + bounding box of occupied coarse tiles.
  std::int64_t min_cx = 0, max_cx = -1, min_cy = 0, max_cy = -1;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 p = positions_[i];
    const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_));
    const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_));
    node_cell_[i] = key(cx, cy);
    const std::int64_t ccx = cx >> kCoarseShift;  // floor division
    const std::int64_t ccy = cy >> kCoarseShift;
    if (i == 0) {
      min_cx = max_cx = ccx;
      min_cy = max_cy = ccy;
    } else {
      min_cx = std::min(min_cx, ccx);
      max_cx = std::max(max_cx, ccx);
      min_cy = std::min(min_cy, ccy);
      max_cy = std::max(max_cy, ccy);
    }
  }
  const std::int64_t cols = max_cx - min_cx + 1;
  const std::int64_t rows = max_cy - min_cy + 1;
  hier_ = n > 0 && cols > 0 && rows > 0 && cols <= kMaxCoarseCells &&
          rows <= kMaxCoarseCells && cols * rows <= kMaxCoarseCells;
  if (!hier_) {
    rebuild_flat();
    return;
  }
  coarse_min_x_ = min_cx;
  coarse_min_y_ = min_cy;
  coarse_cols_ = cols;
  coarse_rows_ = rows;
  const auto tiles = static_cast<std::size_t>(cols * rows);
  // Counting sort by coarse tile. coarse_start_ becomes the prefix-sum
  // directory; coarse_fill_ the per-tile placement cursors.
  coarse_start_.assign(tiles + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t t = coarse_index(unpack_cx(node_cell_[i]),
                                       unpack_cy(node_cell_[i]));
    ++coarse_start_[t + 1];
  }
  for (std::size_t t = 1; t <= tiles; ++t) {
    coarse_start_[t] += coarse_start_[t - 1];
  }
  coarse_fill_.assign(coarse_start_.begin(), coarse_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t t = coarse_index(unpack_cx(node_cell_[i]),
                                       unpack_cy(node_cell_[i]));
    slots_[coarse_fill_[t]++] =
        Slot{node_cell_[i], static_cast<std::uint32_t>(i)};
  }
  // Per-tile sort by (fine cell, node) — tiles hold only the nodes of an
  // 8x8 cell patch, so these sorts stay tiny even with dense clusters.
  for (std::size_t t = 0; t < tiles; ++t) {
    std::sort(slots_.begin() + coarse_start_[t],
              slots_.begin() + coarse_start_[t + 1],
              [](const Slot& a, const Slot& b) {
                if (a.cell != b.cell) return a.cell < b.cell;
                return a.node < b.node;
              });
  }
  cell_keys_.clear();
  cell_start_.clear();
}

void SpatialGrid::rebuild_flat() {
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    slots_[i].cell = node_cell_[i];
    slots_[i].node = static_cast<std::uint32_t>(i);
  }
  std::sort(slots_.begin(), slots_.end(), [](const Slot& a, const Slot& b) {
    if (a.cell != b.cell) return a.cell < b.cell;
    return a.node < b.node;
  });
  cell_keys_.clear();
  cell_start_.clear();
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (cell_keys_.empty() || cell_keys_.back() != slots_[s].cell) {
      cell_keys_.push_back(slots_[s].cell);
      cell_start_.push_back(static_cast<std::uint32_t>(s));
    }
  }
  cell_start_.push_back(static_cast<std::uint32_t>(slots_.size()));
  coarse_start_.clear();
}

std::size_t SpatialGrid::coarse_index(std::int64_t cx, std::int64_t cy) const {
  const std::int64_t ccx = (cx >> kCoarseShift) - coarse_min_x_;
  const std::int64_t ccy = (cy >> kCoarseShift) - coarse_min_y_;
  if (ccx < 0 || ccx >= coarse_cols_ || ccy < 0 || ccy >= coarse_rows_) {
    return SIZE_MAX;
  }
  return static_cast<std::size_t>(ccy * coarse_cols_ + ccx);
}

std::size_t SpatialGrid::find_cell(CellKey k) const {
  const auto it = std::lower_bound(cell_keys_.begin(), cell_keys_.end(), k);
  if (it == cell_keys_.end() || *it != k) return SIZE_MAX;
  return static_cast<std::size_t>(it - cell_keys_.begin());
}

void SpatialGrid::cell_span(std::int64_t cx, std::int64_t cy,
                            std::uint32_t* lo, std::uint32_t* hi) const {
  *lo = *hi = 0;
  if (hier_) {
    const std::size_t t = coarse_index(cx, cy);
    if (t == SIZE_MAX) return;
    const CellKey k = key(cx, cy);
    const auto first = slots_.begin() + coarse_start_[t];
    const auto last = slots_.begin() + coarse_start_[t + 1];
    // The tile's slots are sorted by packed fine key; binary-search the
    // cell's run within it.
    const auto a = std::lower_bound(
        first, last, k,
        [](const Slot& s, CellKey kk) { return s.cell < kk; });
    auto b = a;
    while (b != last && b->cell == k) ++b;
    *lo = static_cast<std::uint32_t>(a - slots_.begin());
    *hi = static_cast<std::uint32_t>(b - slots_.begin());
    return;
  }
  const std::size_t c = find_cell(key(cx, cy));
  if (c == SIZE_MAX) return;
  *lo = cell_start_[c];
  *hi = cell_start_[c + 1];
}

void SpatialGrid::for_each_pair_within(
    double radius,
    const std::function<void(std::size_t, std::size_t)>& fn) const {
  for_each_pair_within(
      radius, [&fn](std::size_t i, std::size_t j, double /*d2*/) { fn(i, j); });
}

void SpatialGrid::for_each_pair_within(
    double radius,
    const std::function<void(std::size_t, std::size_t, double)>& fn) const {
  pair_scratch_.clear();
  collect_pairs_within(radius, 0, positions_.size(), pair_scratch_);
  for (const PairHit& h : pair_scratch_) fn(h.i, h.j, h.d2);
}

void SpatialGrid::collect_pairs_within(double radius, std::size_t begin,
                                       std::size_t end,
                                       std::vector<PairHit>& out) const {
  DTN_REQUIRE(radius <= cell_ + 1e-9,
              "SpatialGrid: query radius exceeds cell size");
  const double r2 = radius * radius;
  const std::size_t first = out.size();
  // Collect candidate pairs, then sort so the emitted order does not
  // depend on bucket layout (determinism across layouts and libstdc++s).
  for (std::size_t i = begin; i < end && i < positions_.size(); ++i) {
    const Vec2 p = positions_[i];
    const CellKey k = node_cell_[i];
    const std::int64_t cx = unpack_cx(k);
    const std::int64_t cy = unpack_cy(k);
    if (hier_) {
      // Column runs instead of 9 independent cell lookups: keys sort by
      // (cx, cy), so within one coarse tile the cells (cx+dx, cy-1..cy+1)
      // occupy one contiguous key range — one binary search + forward
      // scan per column per tile (two tiles when the column straddles a
      // vertical tile edge, which also keeps each segment sign-pure so
      // the unsigned key order stays monotone in cy).
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        const std::int64_t col = cx + dx;
        std::int64_t y0 = cy - 1;
        while (y0 <= cy + 1) {
          const std::int64_t ccy = y0 >> kCoarseShift;
          const std::int64_t ytop =
              std::min(cy + 1, (ccy << kCoarseShift) + (1 << kCoarseShift) - 1);
          const std::size_t t = coarse_index(col, y0);
          if (t != SIZE_MAX) {
            const CellKey klo = key(col, y0);
            const CellKey khi = key(col, ytop);
            const auto first = slots_.begin() + coarse_start_[t];
            const auto last = slots_.begin() + coarse_start_[t + 1];
            auto s = std::lower_bound(
                first, last, klo,
                [](const Slot& sl, CellKey kk) { return sl.cell < kk; });
            for (; s != last && s->cell <= khi; ++s) {
              const std::size_t j = s->node;
              if (j <= i) continue;
              const double d2 = distance2(p, positions_[j]);
              if (d2 <= r2) {
                out.push_back(PairHit{static_cast<std::uint32_t>(i),
                                      static_cast<std::uint32_t>(j), d2});
              }
            }
          }
          y0 = ytop + 1;
        }
      }
      continue;
    }
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        std::uint32_t lo = 0, hi = 0;
        cell_span(cx + dx, cy + dy, &lo, &hi);
        for (std::uint32_t s = lo; s < hi; ++s) {
          const std::size_t j = slots_[s].node;
          if (j <= i) continue;
          const double d2 = distance2(p, positions_[j]);
          if (d2 <= r2) {
            out.push_back(PairHit{static_cast<std::uint32_t>(i),
                                  static_cast<std::uint32_t>(j), d2});
          }
        }
      }
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
            [](const PairHit& a, const PairHit& b) {
              if (a.i != b.i) return a.i < b.i;
              return a.j < b.j;
            });
}

std::vector<std::size_t> SpatialGrid::query(Vec2 p, double radius,
                                            std::size_t exclude) const {
  const double r2 = radius * radius;
  std::vector<std::size_t> out;
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_));
  const auto reach = static_cast<std::int64_t>(std::ceil(radius / cell_));
  for (std::int64_t dx = -reach; dx <= reach; ++dx) {
    for (std::int64_t dy = -reach; dy <= reach; ++dy) {
      std::uint32_t lo = 0, hi = 0;
      cell_span(cx + dx, cy + dy, &lo, &hi);
      for (std::uint32_t s = lo; s < hi; ++s) {
        const std::size_t j = slots_[s].node;
        if (j == exclude) continue;
        if (distance2(p, positions_[j]) <= r2) out.push_back(j);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dtn
