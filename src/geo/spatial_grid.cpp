#include "src/geo/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace dtn {

SpatialGrid::SpatialGrid(double cell) : cell_(cell) {
  DTN_REQUIRE(cell > 0.0, "SpatialGrid: cell size must be positive");
}

SpatialGrid::CellKey SpatialGrid::key_of(Vec2 p) const {
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_));
  return key(cx, cy);
}

void SpatialGrid::rebuild(const std::vector<Vec2>& positions) {
  positions_ = positions;
  cells_.clear();
  cells_.reserve(positions.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    cells_[key_of(positions_[i])].push_back(i);
  }
}

void SpatialGrid::for_each_pair_within(
    double radius,
    const std::function<void(std::size_t, std::size_t)>& fn) const {
  DTN_REQUIRE(radius <= cell_ + 1e-9,
              "SpatialGrid: query radius exceeds cell size");
  const double r2 = radius * radius;
  // Collect candidate pairs, then emit them sorted so iteration order does
  // not depend on unordered_map layout (determinism across libstdc++s).
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const Vec2 p = positions_[i];
    const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_));
    const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_));
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells_.find(key(cx + dx, cy + dy));
        if (it == cells_.end()) continue;
        for (std::size_t j : it->second) {
          if (j <= i) continue;
          if (distance2(p, positions_[j]) <= r2) pairs.emplace_back(i, j);
        }
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  for (const auto& [i, j] : pairs) fn(i, j);
}

std::vector<std::size_t> SpatialGrid::query(Vec2 p, double radius,
                                            std::size_t exclude) const {
  const double r2 = radius * radius;
  std::vector<std::size_t> out;
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_));
  const auto reach = static_cast<std::int64_t>(std::ceil(radius / cell_));
  for (std::int64_t dx = -reach; dx <= reach; ++dx) {
    for (std::int64_t dy = -reach; dy <= reach; ++dy) {
      const auto it = cells_.find(key(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      for (std::size_t j : it->second) {
        if (j == exclude) continue;
        if (distance2(p, positions_[j]) <= r2) out.push_back(j);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dtn
