// Axis-aligned world rectangle: the simulation area from the paper's
// Table II (4500 m x 3400 m).
#pragma once

#include <algorithm>

#include "src/geo/vec2.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace dtn {

struct Rect {
  Vec2 min;  ///< lower-left corner
  Vec2 max;  ///< upper-right corner

  Rect() = default;
  Rect(Vec2 lo, Vec2 hi) : min(lo), max(hi) {
    DTN_REQUIRE(hi.x >= lo.x && hi.y >= lo.y, "Rect: inverted corners");
  }
  /// Rectangle anchored at the origin with the given extent.
  static Rect sized(double width, double height) {
    return Rect({0.0, 0.0}, {width, height});
  }

  double width() const { return max.x - min.x; }
  double height() const { return max.y - min.y; }
  double area() const { return width() * height(); }
  Vec2 center() const { return {(min.x + max.x) / 2, (min.y + max.y) / 2}; }

  bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// Nearest point inside the rectangle.
  Vec2 clamp(Vec2 p) const {
    return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
  }

  /// Reflects a point that stepped outside back across the violated edge
  /// (used by random-walk style mobility at area borders).
  Vec2 reflect(Vec2 p) const;

  /// Uniformly random interior point.
  Vec2 sample(Rng& rng) const {
    return {rng.uniform(min.x, max.x), rng.uniform(min.y, max.y)};
  }
};

inline Vec2 Rect::reflect(Vec2 p) const {
  double x = p.x, y = p.y;
  const double w = width(), h = height();
  // Fold the coordinate back into range; loop handles large oversteps.
  while (x < min.x || x > max.x) {
    if (x < min.x) x = 2 * min.x - x;
    if (x > max.x) x = 2 * max.x - x;
    if (w <= 0) { x = min.x; break; }
  }
  while (y < min.y || y > max.y) {
    if (y < min.y) y = 2 * min.y - y;
    if (y > max.y) y = 2 * max.y - y;
    if (h <= 0) { y = min.y; break; }
  }
  return {x, y};
}

}  // namespace dtn
