// 2-D vector type for node positions and movement (meters).
#pragma once

#include <cmath>

namespace dtn {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double px, double py) : x(px), y(py) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  constexpr bool operator==(const Vec2&) const = default;

  double norm() const { return std::sqrt(x * x + y * y); }
  constexpr double norm2() const { return x * x + y * y; }

  /// Unit vector in this direction; (0,0) maps to (0,0).
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }
constexpr double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

/// Linear interpolation a + t*(b-a).
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

}  // namespace dtn
