// Uniform spatial hash grid for O(n) radius-limited neighbor queries.
//
// The contact detector rebuilds the grid each movement step and enumerates
// all node pairs within transmission range without the O(n^2) scan.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/geo/vec2.hpp"

namespace dtn {

class SpatialGrid {
 public:
  /// `cell` should be >= the query radius for best performance.
  explicit SpatialGrid(double cell);

  /// Replaces the content with `positions`; index i is the node id.
  void rebuild(const std::vector<Vec2>& positions);

  /// Calls fn(i, j) once per unordered pair with distance(pi,pj) <= radius,
  /// i < j, in deterministic (i, j) order.
  void for_each_pair_within(double radius,
                            const std::function<void(std::size_t,
                                                     std::size_t)>& fn) const;

  /// Ids of nodes within `radius` of `p` (excluding `exclude` if given).
  std::vector<std::size_t> query(Vec2 p, double radius,
                                 std::size_t exclude = SIZE_MAX) const;

  std::size_t size() const { return positions_.size(); }

 private:
  using CellKey = std::int64_t;
  CellKey key(std::int64_t cx, std::int64_t cy) const {
    // Pack two 32-bit cell coordinates; fine for any realistic world.
    return (cx << 32) ^ (cy & 0xFFFFFFFFLL);
  }
  CellKey key_of(Vec2 p) const;

  double cell_;
  std::vector<Vec2> positions_;
  std::unordered_map<CellKey, std::vector<std::size_t>> cells_;
};

}  // namespace dtn
