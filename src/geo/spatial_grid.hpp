// Uniform spatial hash grid for O(n) radius-limited neighbor queries.
//
// The contact detector rebuilds the grid each movement step and enumerates
// all node pairs within transmission range without the O(n^2) scan. The
// index is a flat sorted (cell, node) array with a binary-searched cell
// directory — rebuilding reuses the same buffers, so a steady-state
// rebuild performs no heap allocation (unlike the former
// unordered_map<cell, vector> layout, which churned buckets every step).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/geo/vec2.hpp"

namespace dtn {

class SpatialGrid {
 public:
  /// One candidate pair (i < j) with its squared distance.
  struct PairHit {
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    double d2 = 0.0;
  };

  /// `cell` should be >= the query radius for best performance.
  explicit SpatialGrid(double cell);

  /// Changes the cell size; re-buckets any current content.
  void set_cell(double cell);
  double cell() const { return cell_; }

  /// Replaces the content with `positions`; index i is the node id.
  void rebuild(const std::vector<Vec2>& positions);

  /// Calls fn(i, j) once per unordered pair with distance(pi,pj) <= radius,
  /// i < j, in deterministic (i, j) order.
  void for_each_pair_within(double radius,
                            const std::function<void(std::size_t,
                                                     std::size_t)>& fn) const;

  /// As above, but also hands fn the squared distance of the pair —
  /// callers that classify pairs by distance avoid recomputing it.
  void for_each_pair_within(
      double radius,
      const std::function<void(std::size_t, std::size_t, double)>& fn) const;

  /// Appends every pair (i, j) with i in [begin, end), j > i (over the
  /// whole grid) and distance(pi, pj) <= radius to `out`, sorted by
  /// (i, j). Touches no shared scratch, so disjoint index ranges may run
  /// on different threads concurrently; concatenating the outputs of an
  /// ascending shard partition reproduces the full-range enumeration
  /// order exactly (shards are contiguous in i and locally sorted).
  void collect_pairs_within(double radius, std::size_t begin, std::size_t end,
                            std::vector<PairHit>& out) const;

  /// Ids of nodes within `radius` of `p` (excluding `exclude` if given).
  std::vector<std::size_t> query(Vec2 p, double radius,
                                 std::size_t exclude = SIZE_MAX) const;

  std::size_t size() const { return positions_.size(); }

 private:
  using CellKey = std::int64_t;
  CellKey key(std::int64_t cx, std::int64_t cy) const {
    // Pack two 32-bit cell coordinates; fine for any realistic world.
    return (cx << 32) ^ (cy & 0xFFFFFFFFLL);
  }
  CellKey key_of(Vec2 p) const;
  void rebuild_index();
  /// Index into cell_keys_/cell_start_ for `k`, or npos if the cell is empty.
  std::size_t find_cell(CellKey k) const;

  struct Slot {
    CellKey cell = 0;
    std::uint32_t node = 0;
  };

  double cell_;
  std::vector<Vec2> positions_;
  std::vector<Slot> slots_;               ///< sorted by (cell, node)
  std::vector<CellKey> cell_keys_;        ///< distinct cells, ascending
  std::vector<std::uint32_t> cell_start_; ///< slot ranges; size = cells + 1
  mutable std::vector<PairHit> pair_scratch_;
};

}  // namespace dtn
