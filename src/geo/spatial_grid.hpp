// Hierarchical spatial hash grid for O(n) radius-limited neighbor queries.
//
// The contact detector rebuilds the grid each movement step and enumerates
// all node pairs within transmission range without the O(n^2) scan. Two
// layouts share one query interface (DESIGN.md §14):
//
//   * hierarchical (the default): fine cells of size `cell` are grouped
//     8x8 into coarse tiles backed by a *dense* directory over the
//     occupied bounding box. A rebuild is a counting sort of nodes into
//     coarse buckets (O(n + tiles)) followed by tiny per-bucket sorts by
//     (fine cell, node) — no global O(n log n) sort — and a fine-cell
//     lookup is one directory index plus a binary search within its
//     bucket, which stays shallow even for skewed dense clusters.
//   * flat (fallback): the former global sorted (cell, node) slot array
//     with a binary-searched sparse directory, used when positions are so
//     spread out that a dense coarse directory would be unreasonably
//     large (kMaxCoarseCells).
//
// Both layouts fill the same reused buffers, so a steady-state rebuild
// performs no heap allocation, and every query sorts its output by
// (i, j) — enumeration order is identical across layouts.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/geo/vec2.hpp"

namespace dtn {

class SpatialGrid {
 public:
  /// One candidate pair (i < j) with its squared distance.
  struct PairHit {
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    double d2 = 0.0;
  };

  /// `cell` should be >= the query radius for best performance.
  explicit SpatialGrid(double cell);

  /// Changes the cell size; re-buckets any current content.
  void set_cell(double cell);
  double cell() const { return cell_; }

  /// Replaces the content with `positions`; index i is the node id.
  void rebuild(const std::vector<Vec2>& positions);

  /// Calls fn(i, j) once per unordered pair with distance(pi,pj) <= radius,
  /// i < j, in deterministic (i, j) order.
  void for_each_pair_within(double radius,
                            const std::function<void(std::size_t,
                                                     std::size_t)>& fn) const;

  /// As above, but also hands fn the squared distance of the pair —
  /// callers that classify pairs by distance avoid recomputing it.
  void for_each_pair_within(
      double radius,
      const std::function<void(std::size_t, std::size_t, double)>& fn) const;

  /// Appends every pair (i, j) with i in [begin, end), j > i (over the
  /// whole grid) and distance(pi, pj) <= radius to `out`, sorted by
  /// (i, j). Touches no shared scratch, so disjoint index ranges may run
  /// on different threads concurrently; concatenating the outputs of an
  /// ascending shard partition reproduces the full-range enumeration
  /// order exactly (shards are contiguous in i and locally sorted).
  void collect_pairs_within(double radius, std::size_t begin, std::size_t end,
                            std::vector<PairHit>& out) const;

  /// Ids of nodes within `radius` of `p` (excluding `exclude` if given).
  std::vector<std::size_t> query(Vec2 p, double radius,
                                 std::size_t exclude = SIZE_MAX) const;

  std::size_t size() const { return positions_.size(); }

  /// True while the last rebuild used the hierarchical layout.
  bool hierarchical() const { return hier_; }

  /// Pre-sizes the per-node buffers for an `n`-node fleet.
  void reserve_nodes(std::size_t n);

 private:
  using CellKey = std::int64_t;
  /// Fine cells per coarse tile edge (8x8).
  static constexpr std::int64_t kCoarseShift = 3;
  /// Dense-directory budget; beyond this the flat layout takes over.
  static constexpr std::int64_t kMaxCoarseCells = std::int64_t{1} << 21;

  CellKey key(std::int64_t cx, std::int64_t cy) const {
    // Pack two 32-bit cell coordinates; fine for any realistic world.
    return (cx << 32) ^ (cy & 0xFFFFFFFFLL);
  }
  static std::int64_t unpack_cx(CellKey k) {
    return static_cast<std::int32_t>(
        static_cast<std::uint64_t>(k) >> 32);
  }
  static std::int64_t unpack_cy(CellKey k) {
    return static_cast<std::int32_t>(
        static_cast<std::uint32_t>(k & 0xFFFFFFFFLL));
  }
  CellKey key_of(Vec2 p) const;
  void rebuild_index();
  void rebuild_flat();
  /// Index into cell_keys_/cell_start_ for `k`, or npos (flat layout).
  std::size_t find_cell(CellKey k) const;
  /// Dense coarse-directory index for fine coords, or npos if outside.
  std::size_t coarse_index(std::int64_t cx, std::int64_t cy) const;
  /// Slot range [lo, hi) of fine cell (cx, cy), empty when absent.
  /// Dispatches on the active layout.
  void cell_span(std::int64_t cx, std::int64_t cy, std::uint32_t* lo,
                 std::uint32_t* hi) const;

  struct Slot {
    CellKey cell = 0;
    std::uint32_t node = 0;
  };

  double cell_;
  std::vector<Vec2> positions_;
  std::vector<Slot> slots_;  ///< hier: coarse-bucketed; flat: global sort
  // --- flat layout ---
  std::vector<CellKey> cell_keys_;        ///< distinct cells, ascending
  std::vector<std::uint32_t> cell_start_; ///< slot ranges; size = cells + 1
  // --- hierarchical layout ---
  bool hier_ = false;
  std::int64_t coarse_min_x_ = 0;  ///< bbox of occupied coarse tiles
  std::int64_t coarse_min_y_ = 0;
  std::int64_t coarse_cols_ = 0;
  std::int64_t coarse_rows_ = 0;
  std::vector<std::uint32_t> coarse_start_;  ///< prefix sums; tiles + 1
  std::vector<std::uint32_t> coarse_fill_;   ///< counting-sort cursors
  std::vector<CellKey> node_cell_;           ///< per-node fine cell key
  mutable std::vector<PairHit> pair_scratch_;
};

}  // namespace dtn
