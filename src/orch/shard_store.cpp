#include "src/orch/shard_store.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn::orch {

std::string shard_result_path(const std::string& dir, std::size_t shard) {
  std::ostringstream os;
  os << dir << "/shard_" << shard << ".sdone";
  return os.str();
}

std::string results_path(const std::string& dir) {
  return dir + "/results.bin";
}

void write_shard_result(const std::string& dir, const ShardResult& result) {
  snapshot::ArchiveWriter w;
  w.begin_section("shard_result");
  w.u64(result.shard);
  w.u64(result.partials.size());
  for (const auto& [point, agg] : result.partials) {
    w.u64(point);
    save_aggregate(w, agg);
  }
  w.end_section();
  snapshot::write_archive_file(shard_result_path(dir, result.shard), w);
}

bool read_shard_result(const std::string& dir, std::size_t shard,
                       ShardResult* out) {
  const std::string path = shard_result_path(dir, shard);
  if (!std::filesystem::exists(path)) return false;
  snapshot::ArchiveReader r = snapshot::read_archive_file(path);
  r.begin_section("shard_result");
  ShardResult result;
  result.shard = static_cast<std::size_t>(r.u64());
  DTN_REQUIRE(result.shard == shard, "shard result: index mismatch");
  const std::uint64_t count = r.u64();
  result.partials.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto point = static_cast<std::size_t>(r.u64());
    ReplicatedMetrics agg;
    load_aggregate(r, agg);
    result.partials.emplace_back(point, std::move(agg));
  }
  r.end_section();
  if (out != nullptr) *out = std::move(result);
  return true;
}

std::vector<std::size_t> scan_done_shards(const std::string& dir,
                                          std::size_t shard_count) {
  std::vector<std::size_t> done;
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (std::filesystem::exists(shard_result_path(dir, s))) done.push_back(s);
  }
  return done;
}

std::vector<ReplicatedMetrics> merge_shards(const SweepManifest& manifest,
                                            const std::string& dir) {
  std::vector<ReplicatedMetrics> aggregates(manifest.points.size());
  for (std::size_t s = 0; s < manifest.shard_count(); ++s) {
    ShardResult result;
    DTN_REQUIRE(read_shard_result(dir, s, &result),
                "merge_shards: missing result for shard " + std::to_string(s));
    for (const auto& [point, partial] : result.partials) {
      DTN_REQUIRE(point < aggregates.size(),
                  "merge_shards: point index out of range");
      aggregates[point].merge(partial);
    }
  }
  return aggregates;
}

void write_results_file(const std::string& path, const SweepManifest& manifest,
                        const std::vector<ReplicatedMetrics>& aggregates) {
  DTN_REQUIRE(aggregates.size() == manifest.points.size(),
              "write_results_file: aggregate count mismatch");
  snapshot::ArchiveWriter w;
  w.begin_section("sweep_results");
  w.str(manifest.name);
  w.u64(manifest.points.size());
  w.u64(manifest.replicas);
  for (const ReplicatedMetrics& agg : aggregates) save_aggregate(w, agg);
  w.end_section();
  snapshot::write_archive_file(path, w);
}

std::vector<ReplicatedMetrics> read_results_file(const std::string& path) {
  snapshot::ArchiveReader r = snapshot::read_archive_file(path);
  r.begin_section("sweep_results");
  r.str();  // name
  const std::uint64_t points = r.u64();
  r.u64();  // replicas
  std::vector<ReplicatedMetrics> aggregates(
      static_cast<std::size_t>(points));
  for (auto& agg : aggregates) load_aggregate(r, agg);
  r.end_section();
  return aggregates;
}

void remove_run_files(const SweepManifest& manifest, const std::string& dir,
                      std::size_t shard) {
  const auto [first, last] = manifest.shard_runs(shard);
  for (std::size_t run = first; run < last; ++run) {
    const std::string stem = run_file_stem(dir, manifest.scenario_for(run),
                                           manifest.label_for(run));
    std::remove((stem + ".ckpt").c_str());
    std::remove((stem + ".done").c_str());
  }
}

void remove_shard_files(const std::string& dir, std::size_t shard_count) {
  for (std::size_t s = 0; s < shard_count; ++s) {
    std::remove(shard_result_path(dir, s).c_str());
  }
}

}  // namespace dtn::orch
