#include "src/orch/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/orch/lease.hpp"
#include "src/orch/shard_store.hpp"
#include "src/orch/wire.hpp"
#include "src/util/error.hpp"
#include "src/util/subprocess.hpp"

namespace dtn::orch {

std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.txt";
}

std::string progress_path(const std::string& dir) {
  return dir + "/progress.json";
}

namespace {

struct WorkerSlot {
  ChildProcess proc;
  LineBuffer lines;
  bool alive = false;
  bool said_hello = false;
  std::uint64_t pid = 0;
  std::size_t lease = LeaseTable::kNone;
  std::size_t runs_done_in_lease = 0;
  std::size_t runs_total_in_lease = 0;
  std::size_t shards_done = 0;
  double last_heard = 0.0;
};

/// Small monotonic clock: seconds since construction.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Localhost TCP listener serving the latest progress JSON as a plaintext
/// HTTP response. Best-effort: a failed accept or write never disturbs
/// the sweep.
class StatusEndpoint {
 public:
  ~StatusEndpoint() { close(); }

  int open(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return -1;
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd_, 8) != 0) {
      close();
      return -1;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    return ntohs(addr.sin_port);
  }

  int fd() const { return fd_; }

  void serve(const std::string& body) {
    if (fd_ < 0) return;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) return;
    char scratch[1024];
    ::recv(client, scratch, sizeof(scratch), MSG_DONTWAIT);  // drain request
    std::ostringstream os;
    os << "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\n"
       << "Content-Length: " << body.size() << "\r\n\r\n"
       << body;
    const std::string out = os.str();
    std::size_t off = 0;
    while (off < out.size()) {
      const ::ssize_t n = ::send(client, out.data() + off, out.size() - off,
                                 MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(client);
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

void atomic_write_text(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << text;
  }
  std::rename(tmp.c_str(), path.c_str());
}

}  // namespace

SweepOutcome run_coordinator(const SweepManifest& manifest,
                             const std::string& dir,
                             const CoordinatorOptions& opts) {
  manifest.validate();
  DTN_REQUIRE(!dir.empty(), "run_coordinator: empty sweep directory");
  DTN_REQUIRE(opts.workers > 0, "run_coordinator: need at least one worker");
  DTN_REQUIRE(!opts.worker_argv.empty(),
              "run_coordinator: worker_argv not set");
  std::filesystem::create_directories(dir);
  manifest.save(manifest_path(dir));

  // Dead workers surface as EPIPE on write_line, never as a fatal signal.
  std::signal(SIGPIPE, SIG_IGN);

  SweepOutcome outcome;
  outcome.shards_total = manifest.shard_count();

  LeaseTable leases(manifest.shard_count());
  for (std::size_t s : scan_done_shards(dir, manifest.shard_count())) {
    leases.preload_done(s);
    ++outcome.shards_resumed;
  }

  auto log_line = [&opts](const std::string& line) {
    if (opts.log != nullptr) *opts.log << "[coordinator] " << line << "\n";
  };

  StatusEndpoint endpoint;
  if (opts.status_port >= 0) {
    outcome.status_port = endpoint.open(opts.status_port);
    if (outcome.status_port < 0) {
      log_line("status endpoint unavailable");
      outcome.status_port = 0;
    } else {
      std::ostringstream os;
      os << "status endpoint on 127.0.0.1:" << outcome.status_port;
      log_line(os.str());
    }
  }

  Stopwatch clock;
  std::vector<WorkerSlot> workers(opts.workers);
  for (std::size_t w = 0; w < workers.size(); ++w) {
    workers[w].proc = ChildProcess::spawn(opts.worker_argv);
    workers[w].alive = true;
    workers[w].last_heard = clock.seconds();
    std::ostringstream os;
    os << "spawned worker " << w << " pid " << workers[w].proc.pid();
    log_line(os.str());
  }

  bool chaos_fired = opts.chaos_kill_after_shards == 0;
  double next_progress = 0.0;
  std::string progress_json = "{}";

  auto shard_size_of = [&manifest](std::size_t shard) {
    const auto [first, last] = manifest.shard_runs(shard);
    return last - first;
  };

  auto runs_done_now = [&]() {
    std::size_t n = 0;
    for (std::size_t s = 0; s < leases.size(); ++s) {
      if (leases.state(s) == LeaseTable::State::kDone) n += shard_size_of(s);
    }
    for (const WorkerSlot& w : workers) {
      if (w.alive && w.lease != LeaseTable::kNone) n += w.runs_done_in_lease;
    }
    return n;
  };

  auto render_progress = [&]() {
    const double elapsed = clock.seconds();
    const std::size_t runs_done = runs_done_now();
    const double rate = elapsed > 0.0
                            ? static_cast<double>(runs_done) / elapsed
                            : 0.0;
    const std::size_t remaining = manifest.total_runs() - runs_done;
    const double eta =
        rate > 0.0 ? static_cast<double>(remaining) / rate : -1.0;
    std::ostringstream os;
    os << "{\n"
       << "  \"sweep\": \"" << manifest.name << "\",\n"
       << "  \"shards\": {\"total\": " << leases.size()
       << ", \"done\": " << leases.done() << ", \"leased\": " << leases.leased()
       << ", \"pending\": " << leases.pending() << "},\n"
       << "  \"runs\": {\"total\": " << manifest.total_runs()
       << ", \"done\": " << runs_done << "},\n"
       << "  \"elapsed_s\": " << elapsed << ",\n"
       << "  \"runs_per_sec\": " << rate << ",\n"
       << "  \"eta_s\": " << eta << ",\n"
       << "  \"shards_reassigned\": " << outcome.shards_reassigned << ",\n"
       << "  \"workers_lost\": " << outcome.workers_lost << ",\n";
    // Latency-histogram health, available once the aggregates are merged
    // (the final publish): points whose p95 rank fell into overflow report
    // only a lower bound, so consumers must not read the ceiling as a
    // measurement.
    if (!outcome.aggregates.empty()) {
      double max_overflow = 0.0;
      std::size_t saturated_p95 = 0;
      for (const ReplicatedMetrics& a : outcome.aggregates) {
        max_overflow = std::max(max_overflow, a.latency_overflow_fraction());
        if (a.latency_hist.quantile_checked(0.95).saturated) ++saturated_p95;
      }
      os << "  \"latency_hist\": {\"max_overflow_fraction\": " << max_overflow
         << ", \"saturated_p95_points\": " << saturated_p95 << "},\n";
    }
    os << "  \"workers\": [\n";
    for (std::size_t w = 0; w < workers.size(); ++w) {
      const WorkerSlot& ws = workers[w];
      os << "    {\"worker\": " << w << ", \"pid\": " << ws.pid
         << ", \"alive\": " << (ws.alive ? "true" : "false") << ", \"shard\": ";
      if (ws.alive && ws.lease != LeaseTable::kNone) {
        os << ws.lease << ", \"runs_done\": " << ws.runs_done_in_lease
           << ", \"runs_total\": " << ws.runs_total_in_lease;
      } else {
        os << "null, \"runs_done\": 0, \"runs_total\": 0";
      }
      os << ", \"shards_done\": " << ws.shards_done
         << ", \"last_heard_age_s\": " << (elapsed - ws.last_heard) << "}"
         << (w + 1 < workers.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
  };

  auto publish_progress = [&]() {
    progress_json = render_progress();
    atomic_write_text(progress_path(dir), progress_json);
  };

  auto handle_death = [&](std::size_t w, bool expected) {
    WorkerSlot& ws = workers[w];
    if (!ws.alive) return;
    ws.alive = false;
    int exit_code = 0;
    ws.proc.close_stdin();
    // Reap; a SIGKILLed child is already waitable, a clean one exits on
    // its closed stdin.
    if (!ws.proc.try_wait(&exit_code)) exit_code = ws.proc.wait();
    const std::size_t requeued = leases.release_worker(w);
    outcome.shards_reassigned += requeued;
    ws.lease = LeaseTable::kNone;
    if (!expected) ++outcome.workers_lost;
    std::ostringstream os;
    os << "worker " << w << " exited (code " << exit_code << "), re-queued "
       << requeued << " shard(s)";
    log_line(os.str());
  };

  auto maybe_fire_chaos = [&]() {
    if (chaos_fired || leases.done() < opts.chaos_kill_after_shards) return;
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (workers[w].alive && workers[w].lease != LeaseTable::kNone) {
        std::ostringstream os;
        os << "chaos: SIGKILL worker " << w << " holding shard "
           << workers[w].lease;
        log_line(os.str());
        workers[w].proc.kill(SIGKILL);
        chaos_fired = true;
        return;
      }
    }
  };

  auto assign_work = [&]() {
    for (std::size_t w = 0; w < workers.size(); ++w) {
      WorkerSlot& ws = workers[w];
      if (!ws.alive || !ws.said_hello || ws.lease != LeaseTable::kNone)
        continue;
      const std::size_t shard =
          leases.acquire(w, clock.seconds(), opts.lease_ttl_s);
      if (shard == LeaseTable::kNone) return;
      ws.lease = shard;
      ws.runs_done_in_lease = 0;
      ws.runs_total_in_lease = shard_size_of(shard);
      if (!ws.proc.write_line(encode(WireMessage::lease(shard)))) {
        handle_death(w, /*expected=*/false);
      }
    }
  };

  auto handle_message = [&](std::size_t w, const WireMessage& msg) {
    WorkerSlot& ws = workers[w];
    ws.last_heard = clock.seconds();
    switch (msg.kind) {
      case MsgKind::kHello:
        ws.said_hello = true;
        ws.pid = msg.pid;
        break;
      case MsgKind::kHeartbeat:
        leases.renew(msg.shard, w, clock.seconds(), opts.lease_ttl_s);
        if (ws.lease == msg.shard) {
          ws.runs_done_in_lease = msg.runs_done;
          ws.runs_total_in_lease = msg.runs_total;
        }
        break;
      case MsgKind::kDone: {
        DTN_REQUIRE(
            std::filesystem::exists(shard_result_path(dir, msg.shard)),
            "coordinator: DONE without a shard result file");
        leases.complete(msg.shard);
        if (ws.lease == msg.shard) ws.lease = LeaseTable::kNone;
        ++ws.shards_done;
        break;
      }
      case MsgKind::kError: {
        log_line("worker " + std::to_string(w) + " error: " + msg.text);
        break;  // the worker exits next; EOF handles the lease
      }
      default:
        DTN_REQUIRE(false, "coordinator: unexpected message from worker");
    }
  };

  publish_progress();

  while (!leases.all_done()) {
    DTN_REQUIRE(opts.max_wall_s <= 0.0 || clock.seconds() < opts.max_wall_s,
                "coordinator: wall-time budget exceeded");
    assign_work();

    // One worker may have died assigning; check liveness before polling.
    bool any_alive = false;
    for (const WorkerSlot& ws : workers) any_alive |= ws.alive;
    DTN_REQUIRE(any_alive || leases.all_done(),
                "coordinator: all workers died with shards outstanding");
    if (leases.all_done()) break;

    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_worker;
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (!workers[w].alive) continue;
      fds.push_back({workers[w].proc.stdout_fd(), POLLIN, 0});
      fd_worker.push_back(w);
    }
    const bool has_endpoint = endpoint.fd() >= 0;
    if (has_endpoint) fds.push_back({endpoint.fd(), POLLIN, 0});

    const int timeout_ms = 100;
    ::poll(fds.data(), fds.size(), timeout_ms);

    for (std::size_t i = 0; i < fd_worker.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::size_t w = fd_worker[i];
      char buf[4096];
      bool eof = false;
      while (true) {
        const int n = read_available(workers[w].proc.stdout_fd(), buf,
                                     sizeof(buf));
        if (n < 0) break;  // drained
        if (n == 0) {
          eof = true;
          break;
        }
        for (const std::string& line :
             workers[w].lines.feed(buf, static_cast<std::size_t>(n))) {
          handle_message(w, decode(line));
        }
      }
      if (eof) handle_death(w, /*expected=*/false);
    }

    if (has_endpoint && (fds.back().revents & POLLIN) != 0) {
      endpoint.serve(progress_json);
    }

    outcome.shards_reassigned += leases.expire(clock.seconds());
    maybe_fire_chaos();

    if (clock.seconds() >= next_progress) {
      publish_progress();
      next_progress = clock.seconds() + opts.progress_interval_s;
    }
  }

  // Orderly shutdown: EOF on stdin asks workers to exit; stragglers are
  // killed after a grace period so the coordinator can never hang here.
  for (WorkerSlot& ws : workers) {
    if (!ws.alive) continue;
    ws.proc.write_line(encode(WireMessage::shutdown()));
    ws.proc.close_stdin();
  }
  const double kill_deadline = clock.seconds() + 5.0;
  for (WorkerSlot& ws : workers) {
    if (!ws.alive) continue;
    int exit_code = 0;
    while (!ws.proc.try_wait(&exit_code)) {
      if (clock.seconds() > kill_deadline) {
        ws.proc.kill(SIGKILL);
        ws.proc.wait();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ws.alive = false;
  }

  outcome.aggregates = merge_shards(manifest, dir);
  write_results_file(results_path(dir), manifest, outcome.aggregates);
  if (!opts.keep_files) remove_shard_files(dir, manifest.shard_count());
  publish_progress();
  return outcome;
}

}  // namespace dtn::orch
