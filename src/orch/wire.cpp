#include "src/orch/wire.hpp"

#include <sstream>

#include "src/util/error.hpp"

namespace dtn::orch {

WireMessage WireMessage::hello(std::uint64_t pid) {
  WireMessage m;
  m.kind = MsgKind::kHello;
  m.pid = pid;
  return m;
}

WireMessage WireMessage::lease(std::size_t shard) {
  WireMessage m;
  m.kind = MsgKind::kLease;
  m.shard = shard;
  return m;
}

WireMessage WireMessage::heartbeat(std::size_t shard, std::size_t done,
                                   std::size_t total) {
  WireMessage m;
  m.kind = MsgKind::kHeartbeat;
  m.shard = shard;
  m.runs_done = done;
  m.runs_total = total;
  return m;
}

WireMessage WireMessage::done(std::size_t shard) {
  WireMessage m;
  m.kind = MsgKind::kDone;
  m.shard = shard;
  return m;
}

WireMessage WireMessage::shutdown() {
  WireMessage m;
  m.kind = MsgKind::kShutdown;
  return m;
}

WireMessage WireMessage::error(std::string text) {
  WireMessage m;
  m.kind = MsgKind::kError;
  m.text = std::move(text);
  return m;
}

std::string encode(const WireMessage& m) {
  std::ostringstream os;
  switch (m.kind) {
    case MsgKind::kHello:
      os << "HELLO pid=" << m.pid;
      break;
    case MsgKind::kLease:
      os << "LEASE shard=" << m.shard;
      break;
    case MsgKind::kHeartbeat:
      os << "HEARTBEAT shard=" << m.shard << " done=" << m.runs_done
         << " total=" << m.runs_total;
      break;
    case MsgKind::kDone:
      os << "DONE shard=" << m.shard;
      break;
    case MsgKind::kShutdown:
      os << "SHUTDOWN";
      break;
    case MsgKind::kError:
      os << "ERROR " << m.text;
      break;
  }
  return os.str();
}

namespace {

std::uint64_t parse_field(std::istringstream& is, const std::string& key) {
  std::string tok;
  DTN_REQUIRE(static_cast<bool>(is >> tok), "wire: missing field " + key);
  const std::string prefix = key + "=";
  DTN_REQUIRE(tok.rfind(prefix, 0) == 0, "wire: expected " + key + "=");
  try {
    return std::stoull(tok.substr(prefix.size()));
  } catch (const std::exception&) {
    DTN_REQUIRE(false, "wire: malformed value in " + tok);
  }
  return 0;  // unreachable
}

}  // namespace

WireMessage decode(const std::string& line) {
  std::istringstream is(line);
  std::string verb;
  DTN_REQUIRE(static_cast<bool>(is >> verb), "wire: empty message");
  if (verb == "HELLO") {
    return WireMessage::hello(parse_field(is, "pid"));
  }
  if (verb == "LEASE") {
    return WireMessage::lease(
        static_cast<std::size_t>(parse_field(is, "shard")));
  }
  if (verb == "HEARTBEAT") {
    const auto shard = static_cast<std::size_t>(parse_field(is, "shard"));
    const auto done = static_cast<std::size_t>(parse_field(is, "done"));
    const auto total = static_cast<std::size_t>(parse_field(is, "total"));
    return WireMessage::heartbeat(shard, done, total);
  }
  if (verb == "DONE") {
    return WireMessage::done(
        static_cast<std::size_t>(parse_field(is, "shard")));
  }
  if (verb == "SHUTDOWN") return WireMessage::shutdown();
  if (verb == "ERROR") {
    std::string rest;
    std::getline(is, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    return WireMessage::error(rest);
  }
  DTN_REQUIRE(false, "wire: unknown verb " + verb);
  return {};  // unreachable
}

}  // namespace dtn::orch
