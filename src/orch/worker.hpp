// Worker side of the orchestrator: executes shards (resuming from
// existing .ckpt/.done files), persists shard results, and speaks the
// wire protocol over stdin/stdout when run as a subprocess. run_shard and
// run_sweep_inprocess are plain library calls, so the whole subsystem is
// exercisable without fork/exec (examples/sweep_service, tests).
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/orch/manifest.hpp"
#include "src/orch/shard_store.hpp"

namespace dtn::orch {

struct WorkerOptions {
  /// Simulated seconds between run checkpoints; <= 0 disables mid-run
  /// checkpointing (runs then restart from scratch after a crash, but
  /// finished runs still resume via their .done markers).
  double ckpt_interval_s = 600.0;
  /// Keep per-run .ckpt/.done files after the shard result is durable.
  bool keep_run_files = false;
  /// Intra-step parallelism override: when >= 0, every run's
  /// Parallel.threads is forced to this value before the world is built
  /// (per-box tuning — a worker on a big machine can use helper lanes a
  /// manifest authored elsewhere does not know about). Thread count
  /// never changes simulation results (DESIGN.md §16), so the override
  /// is metric- and digest-invisible; -1 keeps the manifest scenario's
  /// own setting.
  int sim_threads = -1;
  /// Progress hook: called after every finished run and after every
  /// mid-run checkpoint (runs_done repeats in the latter case). Worker
  /// processes heartbeat from here.
  std::function<void(std::size_t shard, std::size_t runs_done,
                     std::size_t runs_total)>
      on_progress;
};

/// Executes one shard: every run in canonical order, accumulated into
/// per-point partial aggregates, persisted atomically as the shard's
/// result file. Idempotent — an existing result file short-circuits (the
/// re-leased-after-crash path), and partially finished runs resume from
/// their checkpoint files. Run files are cleaned up per options.
ShardResult run_shard(const SweepManifest& manifest, const std::string& dir,
                      std::size_t shard, const WorkerOptions& opts);

/// Wire-protocol worker loop: HELLO, then LEASE -> run_shard -> DONE
/// until SHUTDOWN or EOF. Returns a process exit code (0 on clean
/// shutdown; 1 after reporting ERROR). `in`/`out` are injected for tests.
int run_worker_loop(std::istream& in, std::ostream& out,
                    const SweepManifest& manifest, const std::string& dir,
                    const WorkerOptions& opts);

struct InProcessOptions {
  std::size_t lanes = 1;  ///< concurrent shard executors (thread pool)
  double ckpt_interval_s = 0.0;
  bool keep_files = false;  ///< keep shard + run files afterwards
  int sim_threads = -1;     ///< per-run Parallel.threads override (< 0: off)
};

/// Runs a whole sweep through the orchestrator machinery in-process (no
/// subprocesses): shards execute on `lanes` threads, results flow through
/// the same shard files and canonical merge as the daemon, and the merged
/// results file is written to `dir`. Byte-identical to any daemon run of
/// the same manifest.
std::vector<ReplicatedMetrics> run_sweep_inprocess(
    const SweepManifest& manifest, const std::string& dir,
    const InProcessOptions& opts);

}  // namespace dtn::orch
