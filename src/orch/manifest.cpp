#include "src/orch/manifest.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "src/util/error.hpp"

namespace dtn::orch {

void SweepManifest::validate() const {
  DTN_REQUIRE(!points.empty(), "SweepManifest: no sweep points");
  DTN_REQUIRE(replicas > 0, "SweepManifest: replicas must be positive");
  DTN_REQUIRE(shard_size > 0, "SweepManifest: shard_size must be positive");
}

std::size_t SweepManifest::shard_count() const {
  return (total_runs() + shard_size - 1) / shard_size;
}

SweepManifest::RunRef SweepManifest::run_ref(std::size_t run_index) const {
  DTN_REQUIRE(run_index < total_runs(), "SweepManifest: run out of range");
  return {run_index / replicas, run_index % replicas};
}

Scenario SweepManifest::scenario_for(std::size_t run_index) const {
  const RunRef ref = run_ref(run_index);
  Scenario sc = points[ref.point].scenario;
  sc.seed += ref.replica;
  return sc;
}

std::string SweepManifest::label_for(std::size_t run_index) const {
  std::ostringstream os;
  os << 'p' << run_ref(run_index).point << '_';
  return os.str();
}

std::pair<std::size_t, std::size_t> SweepManifest::shard_runs(
    std::size_t shard) const {
  DTN_REQUIRE(shard < shard_count(), "SweepManifest: shard out of range");
  const std::size_t first = shard * shard_size;
  return {first, std::min(first + shard_size, total_runs())};
}

std::string SweepManifest::to_text() const {
  validate();
  std::ostringstream os;
  os << "# dtn_sweepd manifest v1\n"
     << "name = " << name << "\n"
     << "replicas = " << replicas << "\n"
     << "shard_size = " << shard_size << "\n"
     << "points = " << points.size() << "\n";
  os << std::setprecision(17);
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << "%point " << i << ' ' << points[i].x << "\n"
       << points[i].scenario.to_settings().to_text();
  }
  return os.str();
}

SweepManifest SweepManifest::from_text(const std::string& text) {
  SweepManifest m;
  std::istringstream is(text);
  std::string line;
  std::string header;
  std::string block;
  double pending_x = 0.0;
  bool in_point = false;
  std::size_t declared_points = 0;

  auto flush_point = [&]() {
    if (!in_point) return;
    SweepPoint p;
    p.x = pending_x;
    p.scenario = Scenario::from_settings(Settings::parse(block));
    m.points.push_back(std::move(p));
    block.clear();
  };

  while (std::getline(is, line)) {
    if (line.rfind("%point", 0) == 0) {
      flush_point();
      std::istringstream ps(line.substr(6));
      std::size_t idx = 0;
      DTN_REQUIRE(static_cast<bool>(ps >> idx >> pending_x),
                  "manifest: malformed %point line");
      DTN_REQUIRE(idx == m.points.size(), "manifest: %point out of order");
      in_point = true;
    } else if (in_point) {
      block += line;
      block += '\n';
    } else {
      header += line;
      header += '\n';
    }
  }
  flush_point();

  const Settings h = Settings::parse(header);
  m.name = h.get_string_or("name", "sweep");
  m.replicas = static_cast<std::size_t>(h.get_int("replicas"));
  m.shard_size = static_cast<std::size_t>(h.get_int("shard_size"));
  declared_points = static_cast<std::size_t>(h.get_int("points"));
  DTN_REQUIRE(declared_points == m.points.size(),
              "manifest: point count mismatch");
  m.validate();
  return m;
}

void SweepManifest::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  DTN_REQUIRE(out.good(), "SweepManifest::save: cannot open " + path);
  out << to_text();
  DTN_REQUIRE(out.good(), "SweepManifest::save: write failed");
}

SweepManifest SweepManifest::load(const std::string& path) {
  std::ifstream in(path);
  DTN_REQUIRE(in.good(), "SweepManifest::load: cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return from_text(os.str());
}

}  // namespace dtn::orch
