// Shard result store: the durable half of the orchestrator. A finished
// shard is persisted as an atomically written framed archive holding the
// shard's per-point partial aggregates; the coordinator's final answer is
// the canonical-order merge of every shard file. Because the per-point
// aggregates are exactly mergeable (MergeStats + fixed-bin histograms),
// the merged results file is byte-identical across any worker count,
// scheduling interleaving, or crash/re-lease history — `cmp` on
// results.bin is the orchestrator's equivalence oracle.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/orch/manifest.hpp"
#include "src/report/sweep.hpp"

namespace dtn::orch {

/// Partial aggregates of one shard, keyed by sweep-point index in
/// ascending order (a shard's run range may span several points).
struct ShardResult {
  std::size_t shard = 0;
  std::vector<std::pair<std::size_t, ReplicatedMetrics>> partials;
};

std::string shard_result_path(const std::string& dir, std::size_t shard);
std::string results_path(const std::string& dir);

/// Atomic (tmp + rename) write of a completed shard.
void write_shard_result(const std::string& dir, const ShardResult& result);

/// Loads a shard file; returns false when it does not exist. Throws on
/// corruption — a torn file is impossible (atomic rename), a damaged one
/// must not be silently treated as missing work.
bool read_shard_result(const std::string& dir, std::size_t shard,
                       ShardResult* out);

/// Shard indices (ascending) whose result files already exist — the
/// coordinator's resume scan.
std::vector<std::size_t> scan_done_shards(const std::string& dir,
                                          std::size_t shard_count);

/// Merges every shard file in canonical (ascending shard) order into
/// per-point aggregates. Throws when any shard file is missing.
std::vector<ReplicatedMetrics> merge_shards(const SweepManifest& manifest,
                                            const std::string& dir);

/// Final results archive: per-point aggregates in point order, preceded
/// by the sweep identity (name, points, replicas). Byte-comparable.
void write_results_file(const std::string& path, const SweepManifest& manifest,
                        const std::vector<ReplicatedMetrics>& aggregates);
std::vector<ReplicatedMetrics> read_results_file(const std::string& path);

/// Removes the per-run .ckpt/.done files of one shard (after its shard
/// file is durable, the run markers are redundant).
void remove_run_files(const SweepManifest& manifest, const std::string& dir,
                      std::size_t shard);

/// Removes every shard result file (after the merged results are written).
void remove_shard_files(const std::string& dir, std::size_t shard_count);

}  // namespace dtn::orch
