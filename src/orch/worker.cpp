#include "src/orch/worker.hpp"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <istream>
#include <ostream>

#include <unistd.h>

#include "src/orch/wire.hpp"
#include "src/util/error.hpp"
#include "src/util/thread_pool.hpp"

namespace dtn::orch {

ShardResult run_shard(const SweepManifest& manifest, const std::string& dir,
                      std::size_t shard, const WorkerOptions& opts) {
  DTN_REQUIRE(!dir.empty(), "run_shard: empty sweep directory");
  const auto [first, last] = manifest.shard_runs(shard);
  const std::size_t total = last - first;

  ShardResult result;
  if (read_shard_result(dir, shard, &result)) {
    // Re-leased after a crash that landed between persisting the result
    // and reporting it: the work is already durable. Still honor the
    // cleanup contract so no run files outlive a completed shard.
    if (!opts.keep_run_files) remove_run_files(manifest, dir, shard);
    if (opts.on_progress) opts.on_progress(shard, total, total);
    return result;
  }

  std::filesystem::create_directories(dir);
  result.shard = shard;
  std::size_t done = 0;
  for (std::size_t run = first; run < last; ++run) {
    Scenario sc = manifest.scenario_for(run);
    if (opts.sim_threads >= 0) {
      sc.world.threads = static_cast<std::size_t>(opts.sim_threads);
    }
    CheckpointOptions ckpt;
    if (opts.ckpt_interval_s > 0.0) {
      ckpt.dir = dir;
      ckpt.interval_s = opts.ckpt_interval_s;
      ckpt.keep_files = true;  // .done markers must survive until the
                               // shard result is durable
      if (opts.on_progress) {
        ckpt.on_progress = [&](double) {
          opts.on_progress(shard, done, total);
        };
      }
    }
    const MetricPoint p =
        run_scenario(sc, nullptr, ckpt, manifest.label_for(run));
    const std::size_t point = manifest.run_ref(run).point;
    if (result.partials.empty() || result.partials.back().first != point) {
      result.partials.emplace_back(point, ReplicatedMetrics{});
    }
    result.partials.back().second.add(p);
    ++done;
    if (opts.on_progress) opts.on_progress(shard, done, total);
  }

  write_shard_result(dir, result);
  if (!opts.keep_run_files) remove_run_files(manifest, dir, shard);
  return result;
}

int run_worker_loop(std::istream& in, std::ostream& out,
                    const SweepManifest& manifest, const std::string& dir,
                    const WorkerOptions& opts) {
  out << encode(WireMessage::hello(static_cast<std::uint64_t>(::getpid())))
      << '\n'
      << std::flush;
  std::string line;
  try {
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const WireMessage msg = decode(line);
      if (msg.kind == MsgKind::kShutdown) return 0;
      DTN_REQUIRE(msg.kind == MsgKind::kLease,
                  "worker: unexpected message " + line);
      WorkerOptions shard_opts = opts;
      shard_opts.on_progress = [&](std::size_t shard, std::size_t done,
                                   std::size_t total) {
        out << encode(WireMessage::heartbeat(shard, done, total)) << '\n'
            << std::flush;
        if (opts.on_progress) opts.on_progress(shard, done, total);
      };
      run_shard(manifest, dir, msg.shard, shard_opts);
      out << encode(WireMessage::done(msg.shard)) << '\n' << std::flush;
    }
    return 0;  // coordinator closed our stdin: clean exit
  } catch (const std::exception& e) {
    std::string what = e.what();
    std::replace(what.begin(), what.end(), '\n', ' ');
    out << encode(WireMessage::error(what)) << '\n' << std::flush;
    return 1;
  }
}

std::vector<ReplicatedMetrics> run_sweep_inprocess(
    const SweepManifest& manifest, const std::string& dir,
    const InProcessOptions& opts) {
  manifest.validate();
  DTN_REQUIRE(!dir.empty(), "run_sweep_inprocess: empty sweep directory");
  DTN_REQUIRE(opts.lanes > 0, "run_sweep_inprocess: need at least one lane");
  std::filesystem::create_directories(dir);

  WorkerOptions wopts;
  wopts.ckpt_interval_s = opts.ckpt_interval_s;
  wopts.keep_run_files = opts.keep_files;
  wopts.sim_threads = opts.sim_threads;

  const std::size_t shards = manifest.shard_count();
  auto run_one = [&](std::size_t s) { run_shard(manifest, dir, s, wopts); };
  if (opts.lanes > 1 && shards > 1) {
    ThreadPool pool(opts.lanes);
    // Grain 1: each shard is a batch of whole simulations.
    parallel_for_index(pool, shards, /*grain=*/1, run_one);
  } else {
    for (std::size_t s = 0; s < shards; ++s) run_one(s);
  }

  std::vector<ReplicatedMetrics> aggregates = merge_shards(manifest, dir);
  write_results_file(results_path(dir), manifest, aggregates);
  if (!opts.keep_files) remove_shard_files(dir, shards);
  return aggregates;
}

}  // namespace dtn::orch
