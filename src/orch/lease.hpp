// Lease table: coordinator-side shard bookkeeping. Shards move
// pending -> leased -> done; a lease carries a deadline that heartbeats
// push forward, and an expired or orphaned lease (worker death) returns
// the shard to the pending queue. Pending shards are handed out in
// ascending (canonical) order. Pure logic over an injected clock — no
// I/O, no real time — so crash-recovery policy is unit-testable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

namespace dtn::orch {

class LeaseTable {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  enum class State : std::uint8_t { kPending, kLeased, kDone };

  explicit LeaseTable(std::size_t shards);

  std::size_t size() const { return states_.size(); }
  State state(std::size_t shard) const { return states_.at(shard); }
  /// Worker holding the lease; kNone when not leased.
  std::uint64_t owner(std::size_t shard) const { return owners_.at(shard); }

  std::size_t pending() const { return pending_.size(); }
  std::size_t leased() const { return leased_; }
  std::size_t done() const { return done_; }
  bool all_done() const { return done_ == states_.size(); }

  /// Leases the lowest-numbered pending shard to `worker` until
  /// `now + ttl_s`; kNone when nothing is pending.
  std::size_t acquire(std::uint64_t worker, double now, double ttl_s);

  /// Heartbeat: extends the lease iff `worker` still holds it.
  bool renew(std::size_t shard, std::uint64_t worker, double now,
             double ttl_s);

  /// Completes a shard. Accepts completion from any worker (a re-leased
  /// shard may race its original owner; results are deterministic and
  /// written atomically, so last-reporter wins harmlessly). Returns false
  /// when the shard was already done.
  bool complete(std::size_t shard);

  /// Marks a shard done before any lease (resume: its result file already
  /// exists on disk).
  void preload_done(std::size_t shard);

  /// Returns every leased shard of a dead worker to the pending queue;
  /// returns how many were re-queued.
  std::size_t release_worker(std::uint64_t worker);

  /// Re-queues every lease whose deadline has passed; returns the count.
  std::size_t expire(double now);

 private:
  void requeue(std::size_t shard);

  std::vector<State> states_;
  std::vector<std::uint64_t> owners_;
  std::vector<double> deadlines_;
  std::set<std::size_t> pending_;  ///< ordered: canonical hand-out order
  std::size_t leased_ = 0;
  std::size_t done_ = 0;
};

}  // namespace dtn::orch
