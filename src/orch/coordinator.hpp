// Coordinator: shards a sweep manifest across worker subprocesses,
// leases shards with heartbeat expiry, survives worker death by
// re-leasing (resume comes free from the shard/result/checkpoint files),
// publishes live progress (progress.json + optional plaintext HTTP
// endpoint), and produces the canonical merged results file — byte-
// identical to a 1-worker uninterrupted run of the same manifest.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/orch/manifest.hpp"
#include "src/report/sweep.hpp"

namespace dtn::orch {

/// Where the coordinator persists the manifest for its workers.
std::string manifest_path(const std::string& dir);
/// Where the coordinator rewrites live progress.
std::string progress_path(const std::string& dir);

struct CoordinatorOptions {
  std::size_t workers = 2;
  /// Heartbeat lease: a shard whose worker stays silent this long (wall
  /// seconds) is re-queued. Worker death (pipe EOF) re-queues instantly;
  /// the TTL only covers silently stuck workers.
  double lease_ttl_s = 60.0;
  /// Wall seconds between progress.json rewrites.
  double progress_interval_s = 1.0;
  /// Worker command line. Must be non-empty; the tool passes its own
  /// binary in worker mode with manifest_path(dir)/--dir arguments.
  std::vector<std::string> worker_argv;
  /// Keep shard result files after the merged results file is written.
  bool keep_files = false;
  /// Plaintext HTTP status endpoint on 127.0.0.1: -1 disables, 0 picks an
  /// ephemeral port (reported in SweepOutcome::status_port).
  int status_port = -1;
  /// Abort (killing workers) when the sweep exceeds this wall time;
  /// 0 = unlimited. A safety net for CI.
  double max_wall_s = 0.0;
  /// Chaos hook for tests/CI: once this many shards have completed,
  /// SIGKILL one worker currently holding a lease (exactly once).
  /// 0 disables.
  std::size_t chaos_kill_after_shards = 0;
  /// Optional human-readable event log (lease grants, deaths, re-leases).
  std::ostream* log = nullptr;
};

struct SweepOutcome {
  std::vector<ReplicatedMetrics> aggregates;  ///< per sweep point
  std::size_t shards_total = 0;
  std::size_t shards_resumed = 0;     ///< result files found on startup
  std::size_t shards_reassigned = 0;  ///< re-queued after death/expiry
  std::size_t workers_lost = 0;
  int status_port = 0;  ///< actual port when the endpoint was enabled
};

/// Runs the sweep to completion and writes results.bin into `dir`.
/// Throws PreconditionError when every worker dies with shards still
/// pending or the wall-time budget is exceeded.
SweepOutcome run_coordinator(const SweepManifest& manifest,
                             const std::string& dir,
                             const CoordinatorOptions& opts);

}  // namespace dtn::orch
