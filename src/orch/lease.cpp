#include "src/orch/lease.hpp"

#include "src/util/error.hpp"

namespace dtn::orch {

LeaseTable::LeaseTable(std::size_t shards)
    : states_(shards, State::kPending),
      owners_(shards, kNone),
      deadlines_(shards, 0.0) {
  DTN_REQUIRE(shards > 0, "LeaseTable: need at least one shard");
  for (std::size_t i = 0; i < shards; ++i) pending_.insert(i);
}

std::size_t LeaseTable::acquire(std::uint64_t worker, double now,
                                double ttl_s) {
  if (pending_.empty()) return kNone;
  const std::size_t shard = *pending_.begin();
  pending_.erase(pending_.begin());
  states_[shard] = State::kLeased;
  owners_[shard] = worker;
  deadlines_[shard] = now + ttl_s;
  ++leased_;
  return shard;
}

bool LeaseTable::renew(std::size_t shard, std::uint64_t worker, double now,
                       double ttl_s) {
  if (shard >= states_.size() || states_[shard] != State::kLeased ||
      owners_[shard] != worker) {
    return false;
  }
  deadlines_[shard] = now + ttl_s;
  return true;
}

bool LeaseTable::complete(std::size_t shard) {
  DTN_REQUIRE(shard < states_.size(), "LeaseTable::complete: out of range");
  if (states_[shard] == State::kDone) return false;
  if (states_[shard] == State::kLeased) {
    --leased_;
  } else {
    pending_.erase(shard);
  }
  states_[shard] = State::kDone;
  owners_[shard] = kNone;
  ++done_;
  return true;
}

void LeaseTable::preload_done(std::size_t shard) {
  DTN_REQUIRE(shard < states_.size() && states_[shard] == State::kPending,
              "LeaseTable::preload_done: shard not pending");
  pending_.erase(shard);
  states_[shard] = State::kDone;
  ++done_;
}

void LeaseTable::requeue(std::size_t shard) {
  states_[shard] = State::kPending;
  owners_[shard] = kNone;
  pending_.insert(shard);
  --leased_;
}

std::size_t LeaseTable::release_worker(std::uint64_t worker) {
  std::size_t requeued = 0;
  for (std::size_t s = 0; s < states_.size(); ++s) {
    if (states_[s] == State::kLeased && owners_[s] == worker) {
      requeue(s);
      ++requeued;
    }
  }
  return requeued;
}

std::size_t LeaseTable::expire(double now) {
  std::size_t requeued = 0;
  for (std::size_t s = 0; s < states_.size(); ++s) {
    if (states_[s] == State::kLeased && deadlines_[s] < now) {
      requeue(s);
      ++requeued;
    }
  }
  return requeued;
}

}  // namespace dtn::orch
