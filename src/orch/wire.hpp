// Coordinator <-> worker wire protocol: one message per line, a verb
// followed by key=value fields, over the worker's stdin/stdout pipes.
// Plain text keeps the protocol inspectable (`dtn_sweepd worker` can be
// driven by hand) and trivially framed; the payload-heavy data — shard
// aggregates — never rides the wire at all, it goes through atomically
// written shard files that the DONE message merely announces.
//
//   worker -> coordinator:  HELLO pid=<pid>
//                           HEARTBEAT shard=<s> done=<n> total=<m>
//                           DONE shard=<s>
//                           ERROR <free text>
//   coordinator -> worker:  LEASE shard=<s>
//                           SHUTDOWN
#pragma once

#include <cstdint>
#include <string>

namespace dtn::orch {

enum class MsgKind : std::uint8_t {
  kHello,
  kLease,
  kHeartbeat,
  kDone,
  kShutdown,
  kError,
};

struct WireMessage {
  MsgKind kind = MsgKind::kError;
  std::uint64_t pid = 0;        ///< kHello
  std::size_t shard = 0;        ///< kLease / kHeartbeat / kDone
  std::size_t runs_done = 0;    ///< kHeartbeat
  std::size_t runs_total = 0;   ///< kHeartbeat
  std::string text;             ///< kError detail

  static WireMessage hello(std::uint64_t pid);
  static WireMessage lease(std::size_t shard);
  static WireMessage heartbeat(std::size_t shard, std::size_t done,
                               std::size_t total);
  static WireMessage done(std::size_t shard);
  static WireMessage shutdown();
  static WireMessage error(std::string text);
};

/// Single line, no trailing newline.
std::string encode(const WireMessage& m);

/// Parses one line; throws PreconditionError on malformed input (a
/// desynced peer must fail loudly, exactly like the snapshot archives).
WireMessage decode(const std::string& line);

}  // namespace dtn::orch
