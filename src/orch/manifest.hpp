// Sweep manifest: the full, canonical description of a fleet-scale sweep
// — sweep points (scenarios), replica count, and the fixed shard size
// that partitions the point × replica run grid into contiguous,
// canonically numbered shards. The manifest is what coordinator and
// worker *processes* agree on: both sides load the same text file, so a
// shard index alone identifies the exact runs (scenario, seed, label) a
// worker must execute.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/report/sweep.hpp"

namespace dtn::orch {

struct SweepManifest {
  std::string name = "sweep";
  std::size_t replicas = 1;    ///< runs per point (seeds seed..seed+R-1)
  std::size_t shard_size = 16; ///< runs per shard (last shard may be short)
  std::vector<SweepPoint> points;

  /// Canonical run numbering: run = point_index * replicas + replica.
  std::size_t total_runs() const { return points.size() * replicas; }
  std::size_t shard_count() const;

  struct RunRef {
    std::size_t point = 0;
    std::size_t replica = 0;
  };
  RunRef run_ref(std::size_t run_index) const;

  /// The fully-specified scenario of one run (seed bumped by replica).
  Scenario scenario_for(std::size_t run_index) const;

  /// Checkpoint-file label of one run; matches run_sweep's "p<point>_"
  /// scheme so orchestrated and in-process sweeps share resume files.
  std::string label_for(std::size_t run_index) const;

  /// Half-open run range [first, last) of a shard.
  std::pair<std::size_t, std::size_t> shard_runs(std::size_t shard) const;

  /// Text round-trip (scenario blocks embed their Settings text).
  std::string to_text() const;
  static SweepManifest from_text(const std::string& text);
  void save(const std::string& path) const;
  static SweepManifest load(const std::string& path);

  /// Validates invariants (nonempty points, positive replicas/shard size).
  void validate() const;
};

}  // namespace dtn::orch
