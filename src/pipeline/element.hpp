// Element model for the Click-style composable routing/buffer pipeline
// (DESIGN.md §15, after kohler/click): a pipeline is a linear graph of
// *elements* — a routing element feeding optional filter elements feeding
// a scheduling queue feeding a drop element — declared from scenario text
// (`Pipeline.spec`) and flattened at build time onto the existing World
// hot loop. Each element class carries a typed argument schema and port
// counts; the parser validates both with position-bearing diagnostics.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace dtn::pipeline {

/// 1-based position of a token inside the pipeline text ('\n' and ';'
/// both end a statement, so multi-line Click-style specs report real
/// line numbers while one-line scenario values report columns).
struct SourcePos {
  int line = 1;
  int col = 1;
};

/// Parse/validation failure. `what()` is prefixed "pipeline:LINE:COL:"
/// so scenario loaders surface the exact offending token.
class PipelineError : public std::runtime_error {
 public:
  PipelineError(SourcePos pos, const std::string& message)
      : std::runtime_error("pipeline:" + std::to_string(pos.line) + ":" +
                           std::to_string(pos.col) + ": " + message),
        pos_(pos) {}
  SourcePos pos() const { return pos_; }

 private:
  SourcePos pos_;
};

/// Where an element may sit in the chain. Ports follow from the kind:
/// routers source the chain (0 in / 1 out), filters and queues pass
/// through (1 in / 1 out), drops terminate it (1 in / 0 out).
enum class ElementKind { kRouter, kFilter, kQueue, kDrop };

enum class ParamType { kInt, kDouble, kBool, kEnum };

/// One named argument an element class accepts, e.g. SprayAndWait's
/// `copies` or CongestionGate's `threshold`.
struct ParamSpec {
  const char* name;
  ParamType type;
  /// For kEnum: the accepted values, nullptr-terminated.
  const char* const* enum_values = nullptr;
};

/// Static description of one element class (the registry below).
struct ElementClassSpec {
  const char* name;  ///< CamelCase class name used in pipeline text
  ElementKind kind;
  /// Positional arguments, in order; all are required. Keyword arguments
  /// (`copies 16`) are optional and may come in any order after them.
  std::vector<ParamSpec> positional;
  std::vector<ParamSpec> keyword;

  bool has_input() const { return kind != ElementKind::kRouter; }
  bool has_output() const { return kind != ElementKind::kDrop; }
};

/// All known element classes. The table is the single source of truth
/// for the parser's arity/typing diagnostics.
const std::vector<ElementClassSpec>& element_classes();

/// Registry lookup; nullptr when `name` is not an element class.
const ElementClassSpec* find_element_class(const std::string& name);

/// The scalar names `PriorityQueue` accepts — exactly the closed-class
/// buffer-policy names of config/factory.cpp, so every legacy
/// `Policy.name` is expressible as a queue element.
const char* const* queue_scalar_names();

}  // namespace dtn::pipeline
