#include "src/pipeline/congestion_gate.hpp"

#include "src/core/node.hpp"
#include "src/routing/routing_common.hpp"
#include "src/util/error.hpp"

namespace dtn::pipeline {

GatedRouter::GatedRouter(std::unique_ptr<Router> inner, double threshold)
    : inner_(std::move(inner)), threshold_(threshold) {
  DTN_REQUIRE(inner_ != nullptr, "congestion gate needs an inner router");
  DTN_REQUIRE(threshold_ > 0.0, "congestion gate threshold must be > 0");
  name_ = std::string("congestion-gate(") + inner_->name() + ")";
}

std::optional<MessageId> GatedRouter::next_to_send(
    const Node& self, const Node& peer, const PolicyContext& ctx) const {
  if (peer.buffer().occupancy() >= threshold_) {
    // Congested receiver: replication is suppressed; deliveries are
    // consumed on arrival (never buffered), so they always pass.
    const auto deliverable = routing::deliverable_messages(self, peer, ctx);
    if (!deliverable.empty()) return deliverable.front()->id;
    return std::nullopt;
  }
  return inner_->next_to_send(self, peer, ctx);
}

}  // namespace dtn::pipeline
