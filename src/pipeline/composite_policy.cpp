#include "src/pipeline/composite_policy.hpp"

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn::pipeline {

CompositePolicy::CompositePolicy(std::string name,
                                 std::unique_ptr<BufferPolicy> sched,
                                 std::unique_ptr<BufferPolicy> drop)
    : name_(std::move(name)), sched_(std::move(sched)), drop_(std::move(drop)) {
  DTN_REQUIRE(sched_ != nullptr && drop_ != nullptr,
              "composite policy needs both sub-policies");
}

void CompositePolicy::order_for_sending(std::vector<const Message*>& msgs,
                                        const PolicyContext& ctx) const {
  sched_->order_for_sending(msgs, uncached(ctx));
}

const Message* CompositePolicy::choose_drop(
    const std::vector<const Message*>& droppable, const Message* newcomer,
    const PolicyContext& ctx) const {
  return drop_->choose_drop(droppable, newcomer, uncached(ctx));
}

bool CompositePolicy::uses_dropped_list() const {
  return sched_->uses_dropped_list() || drop_->uses_dropped_list();
}

bool CompositePolicy::rejects_previously_dropped() const {
  return sched_->rejects_previously_dropped() ||
         drop_->rejects_previously_dropped();
}

void CompositePolicy::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("pipeline-policy");
  out.u32(2);
  out.str(sched_->name());
  sched_->save_state(out);
  out.str(drop_->name());
  drop_->save_state(out);
  out.end_section();
}

void CompositePolicy::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("pipeline-policy");
  const std::uint32_t n = in.u32();
  DTN_REQUIRE(n == 2, "pipeline-policy: unexpected element count");
  const std::string sched_name = in.str();
  DTN_REQUIRE(sched_name == sched_->name(),
              "pipeline-policy: scheduling element mismatch: archive has " +
                  sched_name + ", pipeline built " + sched_->name());
  sched_->load_state(in);
  const std::string drop_name = in.str();
  DTN_REQUIRE(drop_name == drop_->name(),
              "pipeline-policy: drop element mismatch: archive has " +
                  drop_name + ", pipeline built " + drop_->name());
  drop_->load_state(in);
  in.end_section();
}

}  // namespace dtn::pipeline
