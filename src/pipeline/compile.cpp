#include "src/pipeline/compile.hpp"

#include "src/pipeline/composite_policy.hpp"
#include "src/pipeline/congestion_gate.hpp"
#include "src/pipeline/elements.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace dtn::pipeline {

namespace {

/// Element class name -> legacy Router.name. SprayAndWait resolves its
/// binary/source split through the `binary` argument.
std::string router_legacy_name(const ParsedElement& e) {
  const std::string cls = e.cls->name;
  if (cls == "SprayAndWait") {
    return e.arg_bool("binary", true) ? "spray-and-wait"
                                      : "spray-and-wait-source";
  }
  if (cls == "Epidemic") return "epidemic";
  if (cls == "DirectDelivery") return "direct-delivery";
  if (cls == "FirstContact") return "first-contact";
  if (cls == "SprayAndFocus") return "spray-and-focus";
  if (cls == "Prophet") return "prophet";
  throw PipelineError(e.pos, std::string("unsupported routing element ") +
                                 e.cls->name);
}

/// The closed-class policy a drop element behaves as when composed
/// generically (DropTail(lowest) never reaches here — it always flattens
/// to the queue scalar).
std::unique_ptr<BufferPolicy> drop_sub_policy(const ParsedElement& drop,
                                              const SdsrpParams& params,
                                              std::uint64_t seed) {
  const std::string cls = drop.cls->name;
  if (cls == "DropHead") return make_policy_by_name("fifo", params, seed);
  if (cls == "DropLargest") {
    return make_policy_by_name("drop-largest", params, seed);
  }
  if (cls == "DropRandom") {
    // A fork tag no legacy consumer uses, so a composite's drop stream
    // never aliases the scheduling policy's stream.
    return make_policy_by_name("random", params,
                               Rng(seed).fork(0xD0).next_u64());
  }
  if (cls == "DropTail") {  // mode == reject (lowest is flattened away)
    return make_policy_by_name("drop-tail", params, seed);
  }
  throw PipelineError(drop.pos, std::string("unsupported drop element ") +
                                    drop.cls->name);
}

}  // namespace

Compiled compile(const Graph& g, const CompileOptions& opts) {
  Compiled out;

  // --- router head ---
  const ParsedElement& r = g.router();
  out.router_equiv = router_legacy_name(r);
  SprayAndWaitConfig sw;
  sw.precheck_admission = r.arg_bool("precheck", opts.precheck_admission);
  sw.presplit_admission_view =
      r.arg_bool("presplit", opts.presplit_admission_view);
  out.router = make_router_by_name(out.router_equiv, sw);
  if (r.has_arg("copies")) {
    const std::int64_t copies = r.arg_int("copies", 0);
    if (copies < 1) {
      throw PipelineError(r.pos, "SprayAndWait copies must be >= 1, got " +
                                     std::to_string(copies));
    }
    out.initial_copies = static_cast<int>(copies);
  }

  // --- queue + drop tail -> buffer policy ---
  const ParsedElement* queue = nullptr;
  for (std::size_t i : g.chain) {
    if (g.elements[i].cls->kind == ElementKind::kQueue) queue = &g.elements[i];
  }
  DTN_REQUIRE(queue != nullptr, "validated graph lost its queue");
  const ParsedElement& drop = g.drop();
  const std::string scalar = queue->arg_string("scalar");
  const std::string drop_cls = drop.cls->name;
  const bool drop_lowest =
      drop_cls == "DropTail" && drop.arg_string("mode") == "lowest";

  std::string flat;  // legacy Policy.name, empty when non-canonical
  if (drop_lowest) {
    if (scalar == "random") {
      throw PipelineError(
          drop.pos, "DropTail(lowest) needs a priority ordering, and "
                    "PriorityQueue(random) has none — use DropRandom");
    }
    flat = scalar;  // lowest-priority drop IS the scalar's closed class
  } else if (scalar == "fifo" && drop_cls == "DropHead") {
    flat = "fifo";
  } else if (scalar == "fifo" && drop_cls == "DropTail") {
    flat = "drop-tail";  // mode == reject
  } else if (scalar == "fifo" && drop_cls == "DropLargest") {
    flat = "drop-largest";
  } else if (scalar == "random" && drop_cls == "DropRandom") {
    flat = "random";
  }

  if (!flat.empty()) {
    out.policy = make_policy_by_name(flat, opts.sdsrp, opts.policy_seed);
    out.flattened = true;
    out.policy_equiv = flat;
  } else {
    auto sched = make_policy_by_name(scalar, opts.sdsrp, opts.policy_seed);
    auto dropper = drop_sub_policy(drop, opts.sdsrp, opts.policy_seed);
    std::string name = "pipeline(" + scalar + "+" + dropper->name() + ")";
    out.policy = std::make_unique<CompositePolicy>(
        std::move(name), std::move(sched), std::move(dropper));
  }

  // --- filters wrap the router, chain order innermost-first ---
  for (std::size_t i : g.chain) {
    const ParsedElement& e = g.elements[i];
    if (e.cls->kind != ElementKind::kFilter) continue;
    if (std::string(e.cls->name) == "CongestionGate") {
      const double threshold = e.arg_double("threshold", 0.9);
      if (threshold <= 0.0) {
        throw PipelineError(e.pos, "CongestionGate threshold must be > 0");
      }
      out.router =
          std::make_unique<GatedRouter>(std::move(out.router), threshold);
    }
  }

  return out;
}

}  // namespace dtn::pipeline
