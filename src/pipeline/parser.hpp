// Parser/validator for the pipeline scenario language (DESIGN.md §15).
//
// Grammar (statements end at ';' or newline; '#' comments to end of line):
//
//   decl   :=  name '::' element              e.g.  q :: PriorityQueue(sdsrp)
//   chain  :=  endpoint ('->' endpoint)+      e.g.  sw -> q -> DropTail(lowest)
//   element:=  Class | Class '(' args? ')'
//   args   :=  arg (',' arg)*
//   arg    :=  value                          positional (PriorityQueue(sdsrp))
//            | key value                      keyword    (copies 16)
//   endpoint := name | element                inline elements are anonymous
//
// parse() lexes, checks every element against the class registry (unknown
// class, bad arity, unknown/duplicate/ill-typed argument) and validates
// the graph shape (exactly one router head, filters, one queue, one drop
// tail; no dangling ports, reused ports or cycles). Every diagnostic
// carries the 1-based line:column of the offending token.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/pipeline/element.hpp"

namespace dtn::pipeline {

/// One parsed argument; positional args have an empty `name` until the
/// parser binds them to the class's positional ParamSpec.
struct ParsedArg {
  std::string name;   ///< parameter name (bound for positionals too)
  std::string value;  ///< raw token text; typed access via the helpers
  SourcePos pos;
};

/// One element instance of the graph.
struct ParsedElement {
  std::string instance;  ///< declared name, or "ClassName@L:C" anonymous
  const ElementClassSpec* cls = nullptr;
  std::vector<ParsedArg> args;
  SourcePos pos;

  bool has_arg(const std::string& name) const;
  /// Typed accessors; the parser already validated format and range, so
  /// these only fail on programmer error (asking for an absent arg).
  std::string arg_string(const std::string& name) const;
  std::int64_t arg_int(const std::string& name, std::int64_t dflt) const;
  double arg_double(const std::string& name, double dflt) const;
  bool arg_bool(const std::string& name, bool dflt) const;
};

/// A validated pipeline graph. `chain` orders element indices from the
/// router head to the drop tail.
struct Graph {
  std::vector<ParsedElement> elements;
  std::vector<std::size_t> chain;

  const ParsedElement& router() const { return elements[chain.front()]; }
  const ParsedElement& drop() const { return elements[chain.back()]; }
};

/// Parses and fully validates pipeline text. Throws PipelineError with a
/// "pipeline:LINE:COL:" prefix on any lexical, arity, type or graph-shape
/// problem.
Graph parse(const std::string& text);

}  // namespace dtn::pipeline
