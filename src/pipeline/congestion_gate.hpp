// GatedRouter — the CongestionGate filter element. Implements the
// congestion-aware spray-and-wait variant of Oham & Radenkovic
// (arXiv:1601.01527) as a router decorator: when the *receiver's* buffer
// occupancy has reached the configured threshold, replication toward it
// is suppressed and only direct deliveries (messages destined for that
// peer, which are consumed on arrival rather than buffered) may flow.
// Below the threshold the gate is transparent.
//
// The wrapper holds no state of its own and save/load purely delegate to
// the inner router, so a gate that never closes (threshold > 1) is
// byte-identical to the ungated build — the inertness golden test pins
// this. The gate verdict reads only the peer's buffer occupancy, which
// cannot change without a buffer-revision bump, so the idle-contact memo
// in World::try_start remains sound under gating.
#pragma once

#include <memory>
#include <string>

#include "src/core/router.hpp"

namespace dtn::pipeline {

class GatedRouter final : public Router {
 public:
  GatedRouter(std::unique_ptr<Router> inner, double threshold);

  const char* name() const override { return name_.c_str(); }

  std::optional<MessageId> next_to_send(
      const Node& self, const Node& peer,
      const PolicyContext& ctx) const override;

  bool on_sent(Message& copy, bool delivered, SimTime now) const override {
    return inner_->on_sent(copy, delivered, now);
  }
  Message make_relay_copy(const Message& sender_copy,
                          SimTime now) const override {
    return inner_->make_relay_copy(sender_copy, now);
  }
  bool rate_newcomer_as_sender_copy() const override {
    return inner_->rate_newcomer_as_sender_copy();
  }
  void on_link_up(const Node& a, const Node& b, SimTime now) const override {
    inner_->on_link_up(a, b, now);
  }
  void save_state(snapshot::ArchiveWriter& out) const override {
    inner_->save_state(out);
  }
  void load_state(snapshot::ArchiveReader& in) override {
    inner_->load_state(in);
  }

  double threshold() const { return threshold_; }
  const Router& inner() const { return *inner_; }

 private:
  std::unique_ptr<Router> inner_;
  double threshold_;
  std::string name_;
};

}  // namespace dtn::pipeline
