#include "src/pipeline/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "src/util/error.hpp"

namespace dtn::pipeline {

namespace {

// --- lexer ------------------------------------------------------------

enum class Tok { kWord, kArrow, kDColon, kLParen, kRParen, kComma, kSemi, kEnd };

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  SourcePos pos;
};

bool word_start(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool word_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '-';
}

std::vector<Token> lex(const std::string& text) {
  std::vector<Token> out;
  SourcePos pos;
  std::size_t i = 0;
  auto advance = [&](char c) {
    if (c == '\n') {
      ++pos.line;
      pos.col = 1;
    } else {
      ++pos.col;
    }
  };
  while (i < text.size()) {
    const char c = text[i];
    const SourcePos here = pos;
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') advance(text[i++]);
      continue;
    }
    if (c == '\n' || c == ';') {
      out.push_back({Tok::kSemi, std::string(1, c), here});
      advance(c);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(c);
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '>') {
      out.push_back({Tok::kArrow, "->", here});
      advance(c);
      advance('>');
      i += 2;
      continue;
    }
    if (c == ':' && i + 1 < text.size() && text[i + 1] == ':') {
      out.push_back({Tok::kDColon, "::", here});
      advance(c);
      advance(':');
      i += 2;
      continue;
    }
    if (c == '(') {
      out.push_back({Tok::kLParen, "(", here});
      advance(c);
      ++i;
      continue;
    }
    if (c == ')') {
      out.push_back({Tok::kRParen, ")", here});
      advance(c);
      ++i;
      continue;
    }
    if (c == ',') {
      out.push_back({Tok::kComma, ",", here});
      advance(c);
      ++i;
      continue;
    }
    if (word_start(c)) {
      std::string w;
      while (i < text.size() && word_cont(text[i])) {
        // '-' begins '->' — an arrow, never part of a word.
        if (text[i] == '-' && i + 1 < text.size() && text[i + 1] == '>') break;
        w.push_back(text[i]);
        advance(text[i]);
        ++i;
      }
      out.push_back({Tok::kWord, std::move(w), here});
      continue;
    }
    throw PipelineError(here, std::string("unexpected character '") + c + "'");
  }
  out.push_back({Tok::kEnd, "", pos});
  return out;
}

// --- argument validation ----------------------------------------------

std::string enum_values_joined(const char* const* vals) {
  std::string s;
  for (const char* const* v = vals; *v != nullptr; ++v) {
    if (!s.empty()) s += " | ";
    s += *v;
  }
  return s;
}

void check_value(const ElementClassSpec& cls, const ParamSpec& p,
                 const std::string& value, SourcePos pos) {
  const auto fail = [&](const std::string& expected) {
    throw PipelineError(pos, "invalid value '" + value + "' for " +
                                 cls.name + " argument '" + p.name +
                                 "': expected " + expected);
  };
  switch (p.type) {
    case ParamType::kInt: {
      char* end = nullptr;
      (void)std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') fail("an integer");
      break;
    }
    case ParamType::kDouble: {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') fail("a number");
      break;
    }
    case ParamType::kBool:
      if (value != "true" && value != "false") fail("true | false");
      break;
    case ParamType::kEnum: {
      for (const char* const* v = p.enum_values; *v != nullptr; ++v) {
        if (value == *v) return;
      }
      fail("one of " + enum_values_joined(p.enum_values));
      break;
    }
  }
}

const ParamSpec* find_param(const std::vector<ParamSpec>& params,
                            const std::string& name) {
  for (const ParamSpec& p : params) {
    if (name == p.name) return &p;
  }
  return nullptr;
}

// --- parser -----------------------------------------------------------

struct RawEndpoint {
  std::string word;
  bool is_element = false;  ///< had '(...)' or otherwise forced inline
  std::size_t inline_slot = 0;
  std::vector<ParsedArg> args;
  SourcePos pos;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : toks_(lex(text)) {}

  Graph run() {
    while (peek().kind != Tok::kEnd) {
      if (peek().kind == Tok::kSemi) {
        next();
        continue;
      }
      statement();
    }
    return finish();
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  const Token& next() { return toks_[std::min(pos_++, toks_.size() - 1)]; }

  [[noreturn]] void err(SourcePos pos, const std::string& msg) const {
    throw PipelineError(pos, msg);
  }

  void expect_stmt_end() {
    const Token& t = peek();
    if (t.kind != Tok::kSemi && t.kind != Tok::kEnd) {
      err(t.pos, "expected ';' or end of statement, got '" + t.text + "'");
    }
  }

  /// Parses `Class` or `Class(args)` where the class word was consumed.
  ParsedElement element_body(const Token& cls_tok) {
    const ElementClassSpec* cls = find_element_class(cls_tok.text);
    if (cls == nullptr) {
      err(cls_tok.pos, "unknown element class '" + cls_tok.text + "'");
    }
    ParsedElement e;
    e.cls = cls;
    e.pos = cls_tok.pos;
    std::size_t next_positional = 0;
    std::set<std::string> seen;
    if (peek().kind == Tok::kLParen) {
      next();
      if (peek().kind != Tok::kRParen) {
        while (true) {
          const Token& w1 = peek();
          if (w1.kind != Tok::kWord) {
            err(w1.pos, "expected an argument, got '" + w1.text + "'");
          }
          next();
          if (peek().kind == Tok::kWord) {  // keyword form: name value
            const Token& w2 = next();
            const ParamSpec* p = find_param(cls->keyword, w1.text);
            if (p == nullptr) {
              err(w1.pos, std::string("unknown argument '") + w1.text +
                              "' for " + cls->name);
            }
            if (!seen.insert(w1.text).second) {
              err(w1.pos, std::string("duplicate argument '") + w1.text +
                              "' for " + cls->name);
            }
            check_value(*cls, *p, w2.text, w2.pos);
            e.args.push_back({w1.text, w2.text, w1.pos});
          } else {  // positional form: value
            if (next_positional >= cls->positional.size()) {
              if (find_param(cls->keyword, w1.text) != nullptr) {
                err(w1.pos, std::string("argument '") + w1.text +
                                "' needs a value");
              }
              err(w1.pos, std::string("too many arguments for ") + cls->name +
                              " (takes " +
                              std::to_string(cls->positional.size()) +
                              " positional)");
            }
            const ParamSpec& p = cls->positional[next_positional++];
            check_value(*cls, p, w1.text, w1.pos);
            e.args.push_back({p.name, w1.text, w1.pos});
          }
          if (peek().kind == Tok::kComma) {
            next();
            continue;
          }
          break;
        }
      }
      if (peek().kind != Tok::kRParen) {
        err(peek().pos, "expected ')' or ',', got '" + peek().text + "'");
      }
      next();
    }
    if (next_positional < cls->positional.size()) {
      err(cls_tok.pos, std::string(cls->name) + " needs a '" +
                           cls->positional[next_positional].name +
                           "' argument");
    }
    return e;
  }

  void statement() {
    const Token& first = peek();
    if (first.kind != Tok::kWord) {
      err(first.pos, "expected an element or instance name, got '" +
                         first.text + "'");
    }
    if (peek(1).kind == Tok::kDColon) {  // decl: name :: Class(args)
      const Token name = next();
      next();  // '::'
      if (find_element_class(name.text) != nullptr) {
        err(name.pos, "instance name '" + name.text +
                          "' collides with an element class");
      }
      if (decls_.count(name.text) > 0) {
        err(name.pos, "duplicate declaration of '" + name.text + "'");
      }
      const Token& cls_tok = peek();
      if (cls_tok.kind != Tok::kWord) {
        err(cls_tok.pos, "expected an element class after '::'");
      }
      next();
      ParsedElement e = element_body(cls_tok);
      e.instance = name.text;
      e.pos = name.pos;  // diagnostics about the instance point at its decl
      decls_[name.text] = elements_.size();
      elements_.push_back(std::move(e));
      expect_stmt_end();
      return;
    }
    // chain: endpoint ('->' endpoint)+
    std::vector<RawEndpoint> chain;
    chain.push_back(endpoint());
    if (peek().kind != Tok::kArrow) {
      err(peek().pos, "expected '->' after '" + chain.back().word + "'");
    }
    while (peek().kind == Tok::kArrow) {
      next();
      chain.push_back(endpoint());
    }
    expect_stmt_end();
    chains_.push_back(std::move(chain));
  }

  RawEndpoint endpoint() {
    const Token& w = peek();
    if (w.kind != Tok::kWord) {
      err(w.pos, "expected an element or instance name, got '" + w.text + "'");
    }
    next();
    RawEndpoint ep;
    ep.word = w.text;
    ep.pos = w.pos;
    if (peek().kind == Tok::kLParen || find_element_class(w.text) != nullptr) {
      // Inline (anonymous) element; bare class names are zero-arg inline.
      ParsedElement e = element_body(w);
      std::ostringstream anon;
      anon << e.cls->name << "@" << w.pos.line << ":" << w.pos.col;
      e.instance = anon.str();
      ep.is_element = true;
      ep.args = e.args;
      inline_index_.push_back(elements_.size());
      ep.inline_slot = inline_index_.size() - 1;
      elements_.push_back(std::move(e));
    }
    return ep;
  }

  Graph finish() {
    // Resolve endpoints into element indices and collect edges.
    struct Edge {
      std::size_t from, to;
      SourcePos pos;
    };
    std::vector<Edge> edges;
    for (const auto& chain : chains_) {
      std::vector<std::size_t> idx;
      for (const RawEndpoint& ep : chain) {
        if (ep.is_element) {
          idx.push_back(inline_index_[ep.inline_slot]);
          continue;
        }
        const auto it = decls_.find(ep.word);
        if (it == decls_.end()) {
          err(ep.pos, "unknown element class or instance '" + ep.word + "'");
        }
        idx.push_back(it->second);
      }
      for (std::size_t i = 0; i + 1 < idx.size(); ++i) {
        edges.push_back({idx[i], idx[i + 1], chain[i + 1].pos});
      }
    }

    // Port discipline: ≤1 connection per port, and the port must exist.
    const std::size_t n = elements_.size();
    std::vector<std::int64_t> out_to(n, -1), in_from(n, -1);
    for (const Edge& e : edges) {
      const ParsedElement& from = elements_[e.from];
      const ParsedElement& to = elements_[e.to];
      if (!from.cls->has_output()) {
        err(e.pos, "'" + from.instance + "' is a drop element — it has no "
                       "output port");
      }
      if (!to.cls->has_input()) {
        err(e.pos, "'" + to.instance + "' is a routing element — it has no "
                       "input port");
      }
      if (out_to[e.from] != -1) {
        err(e.pos, "output port of '" + from.instance +
                       "' is already connected");
      }
      if (in_from[e.to] != -1) {
        err(e.pos, "input port of '" + to.instance + "' is already connected");
      }
      out_to[e.from] = static_cast<std::int64_t>(e.to);
      in_from[e.to] = static_cast<std::int64_t>(e.from);
    }

    if (elements_.empty()) {
      err(SourcePos{1, 1}, "empty pipeline — expected "
                           "Router -> [filters] -> PriorityQueue -> Drop");
    }

    // Exactly one router heads the graph.
    std::int64_t router = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (elements_[i].cls->kind != ElementKind::kRouter) continue;
      if (router != -1) {
        err(elements_[i].pos, "second routing element '" +
                                  elements_[i].instance +
                                  "' — a pipeline has exactly one");
      }
      router = static_cast<std::int64_t>(i);
    }
    if (router == -1) {
      err(elements_.front().pos,
          "pipeline needs a routing element at its head");
    }

    // Walk the chain, enforcing router -> filter* -> queue -> drop.
    Graph g;
    g.elements = elements_;
    std::vector<bool> visited(n, false);
    bool seen_queue = false;
    std::size_t at = static_cast<std::size_t>(router);
    while (true) {
      visited[at] = true;
      g.chain.push_back(at);
      const ParsedElement& cur = elements_[at];
      if (cur.cls->kind == ElementKind::kDrop) break;
      if (out_to[at] == -1) {
        err(cur.pos, "output port of '" + cur.instance +
                         "' dangles — the pipeline must end in a drop "
                         "element");
      }
      const std::size_t nxt = static_cast<std::size_t>(out_to[at]);
      const ParsedElement& e = elements_[nxt];
      switch (e.cls->kind) {
        case ElementKind::kRouter:
          break;  // unreachable: routers have no input port
        case ElementKind::kFilter:
          if (seen_queue) {
            err(e.pos, "filter '" + e.instance +
                           "' must sit between the router and the queue");
          }
          break;
        case ElementKind::kQueue:
          if (seen_queue) {
            err(e.pos, "second queue element '" + e.instance +
                           "' — a pipeline has exactly one scheduling queue");
          }
          seen_queue = true;
          break;
        case ElementKind::kDrop:
          if (!seen_queue) {
            err(e.pos, "expected a scheduling queue before drop element '" +
                           e.instance + "'");
          }
          break;
      }
      at = nxt;
    }

    // Anything off the walked chain is a cycle or a dangling element.
    for (std::size_t i = 0; i < n; ++i) {
      if (visited[i]) continue;
      // Follow out-edges from i; revisiting a node on this walk = cycle.
      std::set<std::size_t> walk;
      std::size_t j = i;
      while (out_to[j] != -1) {
        walk.insert(j);
        j = static_cast<std::size_t>(out_to[j]);
        if (walk.count(j) > 0) {
          err(elements_[j].pos, "cycle detected through '" +
                                    elements_[j].instance + "'");
        }
        if (visited[j]) break;  // feeds the main chain: caught as port reuse
      }
      err(elements_[i].pos, "element '" + elements_[i].instance +
                                "' is never connected to the pipeline "
                                "(dangling ports)");
    }
    return g;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::vector<ParsedElement> elements_;
  std::map<std::string, std::size_t> decls_;
  std::vector<std::size_t> inline_index_;
  std::vector<std::vector<RawEndpoint>> chains_;
};

}  // namespace

bool ParsedElement::has_arg(const std::string& name) const {
  for (const ParsedArg& a : args) {
    if (a.name == name) return true;
  }
  return false;
}

std::string ParsedElement::arg_string(const std::string& name) const {
  for (const ParsedArg& a : args) {
    if (a.name == name) return a.value;
  }
  DTN_REQUIRE(false, "pipeline element argument not present: " + name);
  return {};
}

std::int64_t ParsedElement::arg_int(const std::string& name,
                                    std::int64_t dflt) const {
  return has_arg(name) ? std::strtoll(arg_string(name).c_str(), nullptr, 10)
                       : dflt;
}

double ParsedElement::arg_double(const std::string& name, double dflt) const {
  return has_arg(name) ? std::strtod(arg_string(name).c_str(), nullptr) : dflt;
}

bool ParsedElement::arg_bool(const std::string& name, bool dflt) const {
  return has_arg(name) ? arg_string(name) == "true" : dflt;
}

Graph parse(const std::string& text) { return Parser(text).run(); }

}  // namespace dtn::pipeline
