#include "src/pipeline/elements.hpp"

#include "src/buffer/fifo.hpp"
#include "src/buffer/gbsd_policy.hpp"
#include "src/buffer/knapsack_policy.hpp"
#include "src/buffer/random_policy.hpp"
#include "src/buffer/simple_policies.hpp"
#include "src/routing/direct_delivery.hpp"
#include "src/routing/epidemic.hpp"
#include "src/routing/first_contact.hpp"
#include "src/routing/prophet.hpp"
#include "src/routing/spray_and_focus.hpp"
#include "src/util/error.hpp"

namespace dtn::pipeline {

std::unique_ptr<Router> make_router_by_name(const std::string& name,
                                            const SprayAndWaitConfig& sw) {
  if (name == "spray-and-wait") {
    SprayAndWaitConfig cfg = sw;
    cfg.binary = true;
    return std::make_unique<SprayAndWaitRouter>(cfg);
  }
  if (name == "spray-and-wait-source") {
    SprayAndWaitConfig cfg = sw;
    cfg.binary = false;
    return std::make_unique<SprayAndWaitRouter>(cfg);
  }
  if (name == "epidemic") return std::make_unique<EpidemicRouter>();
  if (name == "direct-delivery") {
    return std::make_unique<DirectDeliveryRouter>();
  }
  if (name == "first-contact") return std::make_unique<FirstContactRouter>();
  if (name == "spray-and-focus") {
    return std::make_unique<SprayAndFocusRouter>();
  }
  if (name == "prophet") return std::make_unique<ProphetRouter>();
  DTN_REQUIRE(false, "unknown router: " + name);
  return nullptr;
}

std::unique_ptr<BufferPolicy> make_policy_by_name(const std::string& name,
                                                  const SdsrpParams& params,
                                                  std::uint64_t seed) {
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "drop-tail") return std::make_unique<DropTailPolicy>();
  if (name == "drop-largest") return std::make_unique<DropLargestPolicy>();
  if (name == "lifo") return std::make_unique<LifoPolicy>();
  if (name == "random") return std::make_unique<RandomPolicy>(seed);
  if (name == "ttl-ratio") return std::make_unique<TtlRatioPolicy>();
  if (name == "copies-ratio") return std::make_unique<CopiesRatioPolicy>();
  if (name == "mofo") return std::make_unique<MofoPolicy>();
  if (name == "sdsrp") return std::make_unique<SdsrpPolicy>(params);
  if (name == "knapsack-sdsrp") {
    return std::make_unique<KnapsackSdsrpPolicy>(params);
  }
  if (name == "sdsrp-oracle") {
    return std::make_unique<SdsrpOraclePolicy>(params);
  }
  if (name == "gbsd") return std::make_unique<GbsdPolicy>();
  if (name == "gbsd-delay") return std::make_unique<GbsdDelayPolicy>();
  DTN_REQUIRE(false, "unknown buffer policy: " + name);
  return nullptr;
}

}  // namespace dtn::pipeline
