// CompositePolicy: the generic fallback the pipeline compiler emits when
// a (PriorityQueue scalar, drop element) pair has no closed-class
// equivalent — e.g. `PriorityQueue(sdsrp) -> DropRandom`. Scheduling
// delegates to the queue scalar's policy, the drop decision to the drop
// element's policy.
//
// The composite is deliberately NOT cache-safe: the per-node
// PriorityCache memo is keyed by message id alone, so two sub-policies
// with different scalars would collide in one memo. Both delegated calls
// therefore see a context with `cache_enabled` cleared — sub-policies
// always compute fresh, and the World never prewarms or snapshots send
// orders under a composite.
#pragma once

#include <memory>
#include <string>

#include "src/core/buffer_policy.hpp"

namespace dtn::pipeline {

class CompositePolicy final : public BufferPolicy {
 public:
  /// `name` is the display/verification name, e.g. "pipeline(sdsrp+random)".
  CompositePolicy(std::string name, std::unique_ptr<BufferPolicy> sched,
                  std::unique_ptr<BufferPolicy> drop);

  const char* name() const override { return name_.c_str(); }

  void order_for_sending(std::vector<const Message*>& msgs,
                         const PolicyContext& ctx) const override;
  const Message* choose_drop(const std::vector<const Message*>& droppable,
                             const Message* newcomer,
                             const PolicyContext& ctx) const override;

  bool cache_safe() const override { return false; }
  bool uses_dropped_list() const override;
  bool rejects_previously_dropped() const override;

  /// Element-framed state (archive v6): a "pipeline-policy" section with
  /// the element count and, per element, its policy name (structure
  /// verification on load) followed by the element's own state.
  void save_state(snapshot::ArchiveWriter& out) const override;
  void load_state(snapshot::ArchiveReader& in) override;

  const BufferPolicy& sched() const { return *sched_; }
  const BufferPolicy& drop_element() const { return *drop_; }

 private:
  static PolicyContext uncached(const PolicyContext& ctx) {
    PolicyContext c = ctx;
    c.cache_enabled = false;
    return c;
  }

  std::string name_;
  std::unique_ptr<BufferPolicy> sched_;
  std::unique_ptr<BufferPolicy> drop_;
};

}  // namespace dtn::pipeline
