#include "src/pipeline/element.hpp"

namespace dtn::pipeline {

namespace {

const char* const kQueueScalars[] = {
    "fifo",         "lifo",       "random",        "ttl-ratio",
    "copies-ratio", "mofo",       "sdsrp",         "sdsrp-oracle",
    "gbsd",         "gbsd-delay", "knapsack-sdsrp", nullptr};

const char* const kDropTailModes[] = {"lowest", "reject", nullptr};

const char* const kBools[] = {"true", "false", nullptr};

std::vector<ElementClassSpec> build_registry() {
  std::vector<ElementClassSpec> reg;
  // --- routing elements (heads) ---
  reg.push_back({"SprayAndWait",
                 ElementKind::kRouter,
                 {},
                 {{"copies", ParamType::kInt},
                  {"binary", ParamType::kBool, kBools},
                  {"precheck", ParamType::kBool, kBools},
                  {"presplit", ParamType::kBool, kBools}}});
  reg.push_back({"Epidemic", ElementKind::kRouter, {}, {}});
  reg.push_back({"DirectDelivery", ElementKind::kRouter, {}, {}});
  reg.push_back({"FirstContact", ElementKind::kRouter, {}, {}});
  reg.push_back({"SprayAndFocus", ElementKind::kRouter, {}, {}});
  reg.push_back({"Prophet", ElementKind::kRouter, {}, {}});
  // --- filter elements (between router and queue) ---
  reg.push_back({"CongestionGate",
                 ElementKind::kFilter,
                 {},
                 {{"threshold", ParamType::kDouble}}});
  // --- scheduling queue ---
  reg.push_back({"PriorityQueue",
                 ElementKind::kQueue,
                 {{"scalar", ParamType::kEnum, kQueueScalars}},
                 {}});
  // --- drop elements (tails) ---
  reg.push_back({"DropTail",
                 ElementKind::kDrop,
                 {{"mode", ParamType::kEnum, kDropTailModes}},
                 {}});
  reg.push_back({"DropHead", ElementKind::kDrop, {}, {}});
  reg.push_back({"DropRandom", ElementKind::kDrop, {}, {}});
  reg.push_back({"DropLargest", ElementKind::kDrop, {}, {}});
  return reg;
}

}  // namespace

const std::vector<ElementClassSpec>& element_classes() {
  static const std::vector<ElementClassSpec> kRegistry = build_registry();
  return kRegistry;
}

const ElementClassSpec* find_element_class(const std::string& name) {
  for (const ElementClassSpec& spec : element_classes()) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

const char* const* queue_scalar_names() { return kQueueScalars; }

}  // namespace dtn::pipeline
