// Shared name→instance factories for routers and buffer policies. Both
// the legacy closed-class path (config/factory.cpp, `Router.name` /
// `Policy.name`) and the pipeline compiler construct through these, so
// an element-graph build and a legacy build of the same policy are the
// *same object type with the same constructor arguments* — digest
// identity by construction, not by re-implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/buffer/sdsrp_policy.hpp"
#include "src/core/buffer_policy.hpp"
#include "src/core/router.hpp"
#include "src/routing/spray_and_wait.hpp"

namespace dtn::pipeline {

/// Legacy router names: spray-and-wait | spray-and-wait-source |
/// epidemic | direct-delivery | first-contact | spray-and-focus |
/// prophet. For the spray variants `sw.binary` is overridden by the
/// name; the admission flags are taken from `sw` as given. Throws
/// PreconditionError on an unknown name.
std::unique_ptr<Router> make_router_by_name(const std::string& name,
                                            const SprayAndWaitConfig& sw);

/// Legacy policy names: fifo | drop-tail | drop-largest | lifo | random |
/// ttl-ratio | copies-ratio | mofo | sdsrp | sdsrp-oracle |
/// knapsack-sdsrp | gbsd | gbsd-delay. `seed` feeds RandomPolicy only.
/// Throws PreconditionError on an unknown name.
std::unique_ptr<BufferPolicy> make_policy_by_name(const std::string& name,
                                                  const SdsrpParams& params,
                                                  std::uint64_t seed);

}  // namespace dtn::pipeline
