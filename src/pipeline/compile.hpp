// Pipeline compiler: flattens a validated element graph onto the
// existing World hot loop. Canonical (queue scalar, drop element) pairs
// compile to the *legacy closed-class policy objects themselves* — no
// wrapper, no added dispatch on the per-message fast path, digest
// identity with `Policy.name` builds by construction. Non-canonical
// pairs compile to a CompositePolicy; CongestionGate filters wrap the
// router in a GatedRouter decorator (one extra virtual hop per contact
// attempt, zero per message).
//
// Canonical pairs (flattened == true, policy_equiv == legacy name):
//   PriorityQueue(S)      -> DropTail(lowest)  ==  S          (any scalar
//                            with a priority ordering; fifo's "lowest" is
//                            the oldest arrival)
//   PriorityQueue(fifo)   -> DropHead          ==  fifo
//   PriorityQueue(fifo)   -> DropTail(reject)  ==  drop-tail
//   PriorityQueue(fifo)   -> DropLargest       ==  drop-largest
//   PriorityQueue(random) -> DropRandom        ==  random
// `PriorityQueue(random) -> DropTail(lowest)` is rejected: a random
// ordering has no "lowest" — say DropRandom.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/buffer/sdsrp_policy.hpp"
#include "src/core/buffer_policy.hpp"
#include "src/core/router.hpp"
#include "src/pipeline/parser.hpp"
#include "src/routing/spray_and_wait.hpp"

namespace dtn::pipeline {

/// Scenario-level knobs the pipeline text does not carry per element;
/// element arguments (`precheck false`) override them.
struct CompileOptions {
  SdsrpParams sdsrp;
  bool precheck_admission = true;
  bool presplit_admission_view = false;
  /// Seed for stochastic policies, forked from the scenario master
  /// exactly as the legacy path does (factory.cpp tag 0xB0).
  std::uint64_t policy_seed = 0;
};

struct Compiled {
  std::unique_ptr<Router> router;
  std::unique_ptr<BufferPolicy> policy;
  /// SprayAndWait(copies N) — overrides Traffic.copies when set.
  std::optional<int> initial_copies;
  bool flattened = false;     ///< policy is a legacy closed class
  std::string policy_equiv;   ///< legacy Policy.name when flattened
  std::string router_equiv;   ///< legacy Router.name
};

/// Compiles a validated graph. Throws PipelineError (with the offending
/// element's position) on semantic problems the parser cannot see, e.g.
/// `copies 0` or a lowest-priority drop under a random ordering.
Compiled compile(const Graph& g, const CompileOptions& opts);

}  // namespace dtn::pipeline
