// TraceRecorder: samples every node's position at a fixed interval and
// exports the movement in the text trace format TraceReplayModel reads
// ("t id x y" lines). Lets users capture a synthetic mobility run once
// and replay it bit-exactly — e.g. freeze one TaxiFleetModel realization
// as the standing EPFL-substitute dataset.
#pragma once

#include <string>

#include "src/core/observer.hpp"
#include "src/core/world.hpp"
#include "src/mobility/trace_replay.hpp"

namespace dtn {

class TraceRecorder final : public WorldObserver {
 public:
  /// Samples every `interval` seconds of simulated time.
  explicit TraceRecorder(double interval = 10.0);

  void on_step_end(const World& world) override;

  /// The recorded trace so far.
  const TraceSet& trace() const { return trace_; }

  /// Serializes to the "t id x y" text format (with a header comment).
  std::string to_text() const;

  /// Writes to_text() to a file; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  double interval_;
  double next_ = 0.0;
  TraceSet trace_;
};

}  // namespace dtn
