// Concrete report observers, modeled on the ONE simulator's report suite:
//   * DeliveredMessagesReport  — one row per first delivery
//   * ContactReport            — per-pair contact durations + intermeeting
//   * BufferOccupancyReport    — mean/max occupancy time series
//   * EventLog                 — flat chronological event records (tests,
//                                debugging, trace comparisons)
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/core/observer.hpp"
#include "src/core/world.hpp"
#include "src/util/histogram.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

/// One row per successful first delivery (ONE: DeliveredMessagesReport).
class DeliveredMessagesReport final : public WorldObserver {
 public:
  struct Row {
    MessageId id = 0;
    NodeId source = kNoNode;
    NodeId destination = kNoNode;
    NodeId last_hop = kNoNode;
    SimTime created = 0.0;
    SimTime delivered_at = 0.0;
    int hops = 0;
  };

  void on_delivery(const Message& copy, NodeId from, NodeId to,
                   SimTime now) override;

  const std::vector<Row>& rows() const { return rows_; }
  /// id | src | dst | hops | latency | created | delivered
  Table to_table() const;
  /// Latency quantile over all deliveries (q in [0,1]).
  double latency_quantile(double q) const;

  /// Snapshot/restore of the collected rows, so a resumed run reports the
  /// same latency quantiles as an uninterrupted one (checkpoint "extra"
  /// payload — observers live outside World::save_state).
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  std::vector<Row> rows_;
};

/// Delivery-delay CDF accumulator for the analytical delay oracle
/// (DESIGN.md §13): counts every created message and records the exact
/// creation→delivery delay of each first delivery, both as a raw sample
/// vector (KS tests) and binned into a mergeable fixed-layout Histogram
/// (cross-run aggregation — same exact-integer merge property as the
/// sweep aggregates). Messages that were created but never delivered are
/// the right-censored mass: created() − delivered_count().
class DelayCdfReport final : public WorldObserver {
 public:
  /// Histogram layout; defaults to the sweep's fixed latency binning so
  /// partials from any source merge.
  explicit DelayCdfReport(double hist_lo = 0.0, double hist_hi = 43200.0,
                          std::size_t hist_bins = 4320);

  void on_message_created(const Message& m, SimTime now) override;
  void on_delivery(const Message& copy, NodeId from, NodeId to,
                   SimTime now) override;

  std::size_t created() const { return created_; }
  std::size_t delivered_count() const { return delays_.size(); }
  /// Exact delays in delivery order (not sorted).
  const std::vector<double>& delays() const { return delays_; }
  const Histogram& histogram() const { return hist_; }

  /// Exact cross-run combine: sums creation counts, concatenates delay
  /// samples and integer-merges the histograms (binning must match).
  void merge(const DelayCdfReport& other);

 private:
  std::size_t created_ = 0;
  std::vector<double> delays_;
  Histogram hist_;
};

/// Contact durations and intermeeting gaps per node pair
/// (ONE: ConnectivityONEReport / ContactTimesReport).
class ContactReport final : public WorldObserver {
 public:
  void on_link_up(const NodePair& p, SimTime now) override;
  void on_link_down(const NodePair& p, SimTime now) override;

  const std::vector<double>& contact_durations() const { return durations_; }
  const std::vector<double>& intermeeting_times() const { return gaps_; }
  std::size_t total_contacts() const { return contacts_; }

  /// Summary table: counts, means, and the exponential fit of the gaps.
  Table to_table() const;

 private:
  std::map<NodePair, double> up_since_;
  std::map<NodePair, double> last_end_;
  std::vector<double> durations_;
  std::vector<double> gaps_;
  std::size_t contacts_ = 0;
};

/// Mean/max buffer occupancy sampled every `interval` seconds.
class BufferOccupancyReport final : public WorldObserver {
 public:
  explicit BufferOccupancyReport(double interval = 60.0);

  void on_step_end(const World& world) override;

  struct Sample {
    SimTime t = 0.0;
    double mean = 0.0;
    double max = 0.0;
  };
  const std::vector<Sample>& samples() const { return samples_; }
  Table to_table() const;

 private:
  double interval_;
  double next_ = 0.0;
  std::vector<Sample> samples_;
};

/// Flat chronological event log; each record is a compact text line.
/// Used by tests to assert exact event sequences and by users to diff
/// runs. Kinds: CREATE, SEND, RECV, DELIVER, ABORT, DROP, EXPIRE, UP, DOWN.
class EventLog final : public WorldObserver {
 public:
  void on_message_created(const Message& m, SimTime now) override;
  void on_delivery(const Message& copy, NodeId from, NodeId to,
                   SimTime now) override;
  void on_transfer_started(const Transfer& t) override;
  void on_transfer_completed(const Transfer& t, bool delivered) override;
  void on_transfer_aborted(const Transfer& t) override;
  void on_drop(NodeId node, const Message& m, SimTime now) override;
  void on_ttl_expired(NodeId node, const Message& m, SimTime now) override;
  void on_link_up(const NodePair& p, SimTime now) override;
  void on_link_down(const NodePair& p, SimTime now) override;

  const std::vector<std::string>& lines() const { return lines_; }
  /// Number of lines whose kind field matches `kind` exactly.
  std::size_t count_kind(const std::string& kind) const;

 private:
  void log(SimTime t, const std::string& kind, const std::string& detail);
  std::vector<std::string> lines_;
};

}  // namespace dtn
