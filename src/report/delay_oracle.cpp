#include "src/report/delay_oracle.hpp"

#include <algorithm>
#include <cmath>

#include "src/report/observers.hpp"
#include "src/sdsrp/epidemic_ode.hpp"
#include "src/util/error.hpp"
#include "src/util/stats.hpp"

namespace dtn {

namespace {

/// Population MLE of the pairwise meeting rate: meeting events per
/// pair-second of exposure. Unlike the naive mean of *completed* gaps
/// (length-biased low — DESIGN.md §4), this is the rate the stochastic
/// models are driven by.
double census_lambda(double total_contacts, std::size_t n_nodes,
                     double exposure_s) {
  const double pairs = static_cast<double>(n_nodes) *
                       static_cast<double>(n_nodes - 1) / 2.0;
  return total_contacts / (pairs * exposure_s);
}

/// Empirical quantile of a censored sample: `sorted` delivered delays out
/// of `total` eligible; returns `horizon` when the rank falls into the
/// censored mass.
double censored_quantile(const std::vector<double>& sorted, std::size_t total,
                         double q, double horizon) {
  const double rank = q * static_cast<double>(total);
  const auto idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx == 0) return sorted.empty() ? horizon : sorted.front();
  if (idx > sorted.size()) return horizon;
  return sorted[idx - 1];
}

}  // namespace

Scenario spray_delay_oracle_scenario(const SprayDelayOracleConfig& cfg,
                                     std::uint64_t seed) {
  DTN_REQUIRE(cfg.n_nodes >= 3, "spray oracle: need at least three nodes");
  DTN_REQUIRE(cfg.copies >= 1, "spray oracle: copy budget must be positive");
  DTN_REQUIRE(cfg.horizon_s > 0.0 && cfg.create_window_s > 0.0,
              "spray oracle: window and horizon must be positive");
  Scenario sc = Scenario::random_waypoint_paper();
  sc.name = "spray-delay-oracle";
  sc.n_nodes = cfg.n_nodes;
  sc.rwp.area = Rect::sized(cfg.area_width, cfg.area_height);
  sc.world.duration = cfg.duration_s();
  sc.router = "spray-and-wait";          // binary mode (the paper's)
  sc.policy = "fifo";
  sc.buffer_capacity = 1'000'000'000;    // unconstrained: no drops
  sc.traffic.size = 1000;                // transfer time ≈ one step
  sc.traffic.ttl = 1e9;                  // no expiry inside the horizon
  sc.traffic.initial_copies = cfg.copies;
  sc.traffic.interval_min = cfg.traffic_interval_min;
  sc.traffic.interval_max = cfg.traffic_interval_max;
  sc.traffic.start = 0.0;
  sc.traffic.stop = cfg.create_window_s;
  sc.seed = seed;
  return sc;
}

double censored_ks_distance(const sdsrp::SprayWaitDelayModel& model,
                            std::vector<double> delays, std::size_t total,
                            double horizon) {
  DTN_REQUIRE(total >= delays.size(),
              "ks: total must cover the delivered samples");
  DTN_REQUIRE(total > 0, "ks: no samples");
  std::sort(delays.begin(), delays.end());
  // One integration pass evaluates F at every sample point + the horizon.
  std::vector<double> ts = delays;
  ts.push_back(horizon);
  const std::vector<double> f = model.cdf(ts);
  const auto m = static_cast<double>(total);
  double d = 0.0;
  for (std::size_t i = 0; i < delays.size(); ++i) {
    // Compare both sides of the empirical step at each sample.
    const double lo = static_cast<double>(i) / m;
    const double hi = static_cast<double>(i + 1) / m;
    d = std::max(d, std::abs(f[i] - lo));
    d = std::max(d, std::abs(f[i] - hi));
  }
  // Between the last delivery and the horizon the empirical CDF is flat
  // at delivered/total while F keeps rising: check the horizon endpoint.
  d = std::max(d, std::abs(f.back() -
                           static_cast<double>(delays.size()) / m));
  return d;
}

SprayDelayOracleResult run_spray_delay_oracle(
    const SprayDelayOracleConfig& cfg) {
  DTN_REQUIRE(cfg.seeds >= 1, "spray oracle: need at least one seed");
  std::vector<double> delays;
  std::size_t created = 0;
  double total_contacts = 0.0;

  for (std::size_t s = 0; s < cfg.seeds; ++s) {
    const Scenario sc =
        spray_delay_oracle_scenario(cfg, cfg.base_seed + s);
    auto world = build_world(sc);
    DelayCdfReport delay_report(0.0, cfg.horizon_s, 400);
    ContactReport contacts;
    world->add_observer(&delay_report);
    world->add_observer(&contacts);
    world->run();
    created += delay_report.created();
    for (double d : delay_report.delays()) {
      if (d <= cfg.horizon_s) delays.push_back(d);
    }
    total_contacts += static_cast<double>(contacts.total_contacts());
  }

  SprayDelayOracleResult r;
  r.samples = created;
  r.delivered = delays.size();
  r.lambda = census_lambda(total_contacts / static_cast<double>(cfg.seeds),
                           cfg.n_nodes, cfg.duration_s());
  DTN_REQUIRE(r.lambda > 0.0, "spray oracle: no contacts observed");

  const int model_copies = cfg.model_copies_override > 0
                               ? cfg.model_copies_override
                               : cfg.copies;
  const sdsrp::SprayWaitDelayModel model(
      cfg.n_nodes, model_copies, r.lambda * cfg.model_lambda_scale);
  r.model_states = model.state_count();
  r.ks = censored_ks_distance(model, delays, created, cfg.horizon_s);

  std::sort(delays.begin(), delays.end());
  r.p50_sim = censored_quantile(delays, created, 0.5, cfg.horizon_s);
  r.p90_sim = censored_quantile(delays, created, 0.9, cfg.horizon_s);
  r.p50_model = model.cdf(cfg.horizon_s) >= 0.5 ? model.quantile(0.5)
                                                : cfg.horizon_s;
  r.p90_model = model.cdf(cfg.horizon_s) >= 0.9 ? model.quantile(0.9)
                                                : cfg.horizon_s;

  // Censored means E[min(T, horizon)]: empirical sum + censored mass at
  // the horizon vs ∫₀ʰ (1 − F) dt on a fine grid.
  double sum = 0.0;
  for (double d : delays) sum += d;
  sum += static_cast<double>(created - delays.size()) * cfg.horizon_s;
  r.mean_sim = sum / static_cast<double>(created);
  const std::size_t grid = 400;
  std::vector<double> ts(grid + 1);
  for (std::size_t i = 0; i <= grid; ++i) {
    ts[i] = cfg.horizon_s * static_cast<double>(i) /
            static_cast<double>(grid);
  }
  const std::vector<double> f = model.cdf(ts);
  double integral = 0.0;
  for (std::size_t i = 0; i < grid; ++i) {
    integral += 0.5 * ((1.0 - f[i]) + (1.0 - f[i + 1])) *
                (ts[i + 1] - ts[i]);
  }
  r.mean_model = integral;
  return r;
}

EpidemicOdeOracleResult run_epidemic_ode_oracle(
    const EpidemicOdeOracleConfig& cfg) {
  DTN_REQUIRE(cfg.seeds >= 1, "ode oracle: need at least one seed");
  DTN_REQUIRE(!cfg.checkpoints.empty(), "ode oracle: no checkpoints");

  Scenario sc = Scenario::random_waypoint_paper();
  sc.router = "epidemic";
  sc.policy = "fifo";
  sc.buffer_capacity = 1'000'000'000;  // no buffer constraint
  sc.traffic.interval_min = 1e9;       // no background traffic
  sc.traffic.interval_max = 1.1e9;
  sc.world.collect_intermeeting = true;

  std::vector<RunningStats> measured(cfg.checkpoints.size());
  RunningStats observed_ei;
  double total_contacts = 0.0;

  for (std::size_t s = 0; s < cfg.seeds; ++s) {
    Scenario run = sc;
    run.seed = sc.seed + s;
    auto world = build_world(run);
    ContactReport contacts;
    world->add_observer(&contacts);

    Message m;
    m.id = 1;
    m.source = 0;
    m.destination = 1;
    m.size = 1000;  // tiny: transfer time negligible, as the ODE assumes
    m.created = 0.0;
    m.ttl = 1e9;
    m.copies = 1;
    m.initial_copies = 1;
    DTN_REQUIRE(world->inject_message(m),
                "ode oracle: source rejected the probe message");

    for (std::size_t k = 0; k < cfg.checkpoints.size(); ++k) {
      world->run_until(cfg.checkpoints[k]);
      measured[k].add(world->registry().n_holding(1));
    }
    world->run_until(sc.world.duration);  // full horizon for the λ census
    for (double x : world->intermeeting_samples()) observed_ei.add(x);
    total_contacts += static_cast<double>(contacts.total_contacts());
  }

  EpidemicOdeOracleResult out;
  out.n_nodes = sc.n_nodes;
  out.lambda = census_lambda(
      total_contacts / static_cast<double>(cfg.seeds), sc.n_nodes,
      sc.world.duration);
  out.naive_ei = observed_ei.mean();
  for (std::size_t k = 0; k < cfg.checkpoints.size(); ++k) {
    EpidemicOdeOracleResult::Point p;
    p.t = cfg.checkpoints[k];
    p.sim_mean = measured[k].mean();
    p.sim_ci95 = measured[k].ci95_half_width();
    p.ode = sdsrp::epidemic_infected(static_cast<double>(sc.n_nodes),
                                     out.lambda, 1.0, p.t);
    out.points.push_back(p);
  }
  return out;
}

}  // namespace dtn
