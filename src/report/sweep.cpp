#include "src/report/sweep.hpp"

#include "src/report/observers.hpp"

namespace dtn {

MetricPoint run_scenario(const Scenario& sc) {
  return run_scenario(sc, nullptr);
}

MetricPoint run_scenario(const Scenario& sc, SimStats* stats_out) {
  auto world = build_world(sc);
  DeliveredMessagesReport delivered;
  world->add_observer(&delivered);
  world->run();
  const SimStats& s = world->stats();
  if (stats_out != nullptr) *stats_out = s;
  MetricPoint p;
  p.delivery_ratio = s.delivery_ratio();
  p.avg_hopcount = s.avg_hopcount();
  p.overhead_ratio = s.overhead_ratio();
  p.avg_latency = s.avg_latency();
  if (!delivered.rows().empty()) {
    p.median_latency = delivered.latency_quantile(0.5);
    p.p95_latency = delivered.latency_quantile(0.95);
  }
  return p;
}

ReplicatedMetrics run_replicated(const Scenario& base, std::size_t replicas,
                                 ThreadPool* pool) {
  std::vector<MetricPoint> points(replicas);
  auto run_one = [&base, &points](std::size_t r) {
    Scenario sc = base;
    sc.seed = base.seed + r;
    points[r] = run_scenario(sc);
  };
  if (pool != nullptr && replicas > 1) {
    parallel_for_index(*pool, replicas, run_one);
  } else {
    for (std::size_t r = 0; r < replicas; ++r) run_one(r);
  }
  ReplicatedMetrics agg;
  for (const MetricPoint& p : points) {
    agg.delivery_ratio.add(p.delivery_ratio);
    agg.avg_hopcount.add(p.avg_hopcount);
    agg.overhead_ratio.add(p.overhead_ratio);
    agg.avg_latency.add(p.avg_latency);
  }
  return agg;
}

std::vector<ReplicatedMetrics> run_sweep(const std::vector<SweepPoint>& points,
                                         std::size_t replicas,
                                         ThreadPool* pool) {
  std::vector<ReplicatedMetrics> out(points.size());
  if (pool != nullptr) {
    // Flatten point × replica into independent tasks.
    std::vector<std::vector<MetricPoint>> raw(points.size());
    for (auto& v : raw) v.resize(replicas);
    parallel_for_index(*pool, points.size() * replicas,
                       [&](std::size_t task) {
                         const std::size_t pi = task / replicas;
                         const std::size_t r = task % replicas;
                         Scenario sc = points[pi].scenario;
                         sc.seed = sc.seed + r;
                         raw[pi][r] = run_scenario(sc);
                       });
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
      for (const MetricPoint& p : raw[pi]) {
        out[pi].delivery_ratio.add(p.delivery_ratio);
        out[pi].avg_hopcount.add(p.avg_hopcount);
        out[pi].overhead_ratio.add(p.overhead_ratio);
        out[pi].avg_latency.add(p.avg_latency);
      }
    }
    return out;
  }
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    out[pi] = run_replicated(points[pi].scenario, replicas, nullptr);
  }
  return out;
}

}  // namespace dtn
