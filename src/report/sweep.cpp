#include "src/report/sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "src/report/observers.hpp"
#include "src/snapshot/checkpoint.hpp"

namespace dtn {

MetricPoint run_scenario(const Scenario& sc) {
  return run_scenario(sc, nullptr);
}

MetricPoint run_scenario(const Scenario& sc, SimStats* stats_out) {
  auto world = build_world(sc);
  DeliveredMessagesReport delivered;
  world->add_observer(&delivered);
  world->run();
  const SimStats& s = world->stats();
  if (stats_out != nullptr) *stats_out = s;
  MetricPoint p;
  p.delivery_ratio = s.delivery_ratio();
  p.avg_hopcount = s.avg_hopcount();
  p.overhead_ratio = s.overhead_ratio();
  p.avg_latency = s.avg_latency();
  if (!delivered.rows().empty()) {
    p.median_latency = delivered.latency_quantile(0.5);
    p.p95_latency = delivered.latency_quantile(0.95);
  }
  return p;
}

std::string run_file_stem(const std::string& dir, const Scenario& sc,
                          const std::string& label) {
  std::ostringstream os;
  os << dir << '/' << label << sc.name << "_seed" << sc.seed;
  return os.str();
}

namespace {

/// File-name stem for one run: dir/<label><name>_seed<seed>.
std::string run_stem(const CheckpointOptions& ckpt, const Scenario& sc,
                     const std::string& label) {
  return run_file_stem(ckpt.dir, sc, label);
}

/// The .done marker is itself a framed archive: the final MetricPoint and
/// SimStats, so a skipped replica still reports full results.
void write_done_marker(const std::string& path, const MetricPoint& p,
                       const SimStats& stats) {
  snapshot::ArchiveWriter w;
  w.begin_section("result");
  w.f64(p.delivery_ratio);
  w.f64(p.avg_hopcount);
  w.f64(p.overhead_ratio);
  w.f64(p.avg_latency);
  w.f64(p.median_latency);
  w.f64(p.p95_latency);
  stats.save_state(w);
  w.end_section();
  snapshot::write_archive_file(path, w);
}

MetricPoint read_done_marker(const std::string& path, SimStats* stats_out) {
  snapshot::ArchiveReader r = snapshot::read_archive_file(path);
  r.begin_section("result");
  MetricPoint p;
  p.delivery_ratio = r.f64();
  p.avg_hopcount = r.f64();
  p.overhead_ratio = r.f64();
  p.avg_latency = r.f64();
  p.median_latency = r.f64();
  p.p95_latency = r.f64();
  SimStats stats;
  stats.load_state(r);
  r.end_section();
  if (stats_out != nullptr) *stats_out = stats;
  return p;
}

}  // namespace

namespace {

void save_merge_stats(snapshot::ArchiveWriter& out, const MergeStats& s) {
  const MergeStats::State st = s.export_state();
  out.u64(st.n);
  out.i64(st.min_q);
  out.i64(st.max_q);
  out.u64(st.sum_lo);
  out.i64(st.sum_hi);
  out.u64(st.sumsq_lo);
  out.i64(st.sumsq_hi);
}

void load_merge_stats(snapshot::ArchiveReader& in, MergeStats& s) {
  MergeStats::State st;
  st.n = in.u64();
  st.min_q = in.i64();
  st.max_q = in.i64();
  st.sum_lo = in.u64();
  st.sum_hi = in.i64();
  st.sumsq_lo = in.u64();
  st.sumsq_hi = in.i64();
  s.import_state(st);
}

}  // namespace

void save_aggregate(snapshot::ArchiveWriter& out, const ReplicatedMetrics& m) {
  out.begin_section("aggregate");
  save_merge_stats(out, m.delivery_ratio);
  save_merge_stats(out, m.avg_hopcount);
  save_merge_stats(out, m.overhead_ratio);
  save_merge_stats(out, m.avg_latency);
  save_merge_stats(out, m.median_latency);
  save_merge_stats(out, m.p95_latency);
  // Histogram travels sparsely: layout header + (bin, count) pairs in
  // ascending bin order — canonical bytes for canonical state.
  const Histogram& h = m.latency_hist;
  out.f64(h.lo());
  out.f64(h.hi());
  out.u64(h.bins());
  out.u64(h.underflow());
  out.u64(h.overflow());
  std::uint64_t nonzero = 0;
  for (std::size_t i = 0; i < h.bins(); ++i)
    if (h.count(i) != 0) ++nonzero;
  out.u64(nonzero);
  for (std::size_t i = 0; i < h.bins(); ++i) {
    if (h.count(i) == 0) continue;
    out.u64(i);
    out.u64(h.count(i));
  }
  out.end_section();
}

void load_aggregate(snapshot::ArchiveReader& in, ReplicatedMetrics& m) {
  in.begin_section("aggregate");
  load_merge_stats(in, m.delivery_ratio);
  load_merge_stats(in, m.avg_hopcount);
  load_merge_stats(in, m.overhead_ratio);
  load_merge_stats(in, m.avg_latency);
  load_merge_stats(in, m.median_latency);
  load_merge_stats(in, m.p95_latency);
  const double lo = in.f64();
  const double hi = in.f64();
  const auto bins = static_cast<std::size_t>(in.u64());
  Histogram h(lo, hi, bins);
  h.add_underflow(static_cast<std::size_t>(in.u64()));
  h.add_overflow(static_cast<std::size_t>(in.u64()));
  const std::uint64_t nonzero = in.u64();
  for (std::uint64_t i = 0; i < nonzero; ++i) {
    const auto bin = static_cast<std::size_t>(in.u64());
    h.add_count(bin, static_cast<std::size_t>(in.u64()));
  }
  m.latency_hist = h;
  in.end_section();
}

MetricPoint run_scenario(const Scenario& sc, SimStats* stats_out,
                         const CheckpointOptions& ckpt,
                         const std::string& label) {
  if (!ckpt.enabled()) return run_scenario(sc, stats_out);

  std::filesystem::create_directories(ckpt.dir);
  const std::string stem = run_stem(ckpt, sc, label);
  const std::string ckpt_path = stem + ".ckpt";
  const std::string done_path = stem + ".done";

  if (std::filesystem::exists(done_path)) {
    // Checkpoint hygiene: a worker that died between writing the marker
    // and removing its checkpoint leaves a stale .ckpt behind; drop it on
    // resume so a completed run never keeps both files.
    std::remove(ckpt_path.c_str());
    return read_done_marker(done_path, stats_out);
  }

  DeliveredMessagesReport delivered;
  std::unique_ptr<World> world;
  if (std::filesystem::exists(ckpt_path)) {
    auto restored = snapshot::restore_checkpoint(
        ckpt_path,
        [&delivered](snapshot::ArchiveReader& in) { delivered.load_state(in); });
    world = std::move(restored.world);
  } else {
    world = build_world(sc);
  }
  world->add_observer(&delivered);

  const double duration = sc.world.duration;
  while (world->now() + sc.world.step <= duration + 1e-9) {
    const double target =
        std::min(duration, world->now() + ckpt.interval_s);
    world->run_until(target);
    if (world->now() + sc.world.step <= duration + 1e-9) {
      snapshot::save_checkpoint(
          ckpt_path, sc, *world,
          [&delivered](snapshot::ArchiveWriter& out) {
            delivered.save_state(out);
          });
      if (ckpt.on_progress) ckpt.on_progress(world->now());
    }
  }

  const SimStats& s = world->stats();
  if (stats_out != nullptr) *stats_out = s;
  MetricPoint p;
  p.delivery_ratio = s.delivery_ratio();
  p.avg_hopcount = s.avg_hopcount();
  p.overhead_ratio = s.overhead_ratio();
  p.avg_latency = s.avg_latency();
  if (!delivered.rows().empty()) {
    p.median_latency = delivered.latency_quantile(0.5);
    p.p95_latency = delivered.latency_quantile(0.95);
  }

  write_done_marker(done_path, p, s);
  std::remove(ckpt_path.c_str());
  if (!ckpt.keep_files) std::remove(done_path.c_str());
  return p;
}

ReplicatedMetrics run_replicated(const Scenario& base, std::size_t replicas,
                                 ThreadPool* pool,
                                 const CheckpointOptions& ckpt) {
  // With checkpointing, .done markers must outlive the replica that wrote
  // them so a restarted set can skip finished work; clean up at the end.
  CheckpointOptions per_run = ckpt;
  per_run.keep_files = true;
  std::vector<MetricPoint> points(replicas);
  auto run_one = [&base, &points, &per_run](std::size_t r) {
    Scenario sc = base;
    sc.seed = base.seed + r;
    points[r] = run_scenario(sc, nullptr, per_run);
  };
  if (pool != nullptr && replicas > 1) {
    // Grain 1: each replica is a whole simulation, so chunking would only
    // serialize work; the overload still short-circuits 1-worker pools.
    parallel_for_index(*pool, replicas, /*grain=*/1, run_one);
  } else {
    for (std::size_t r = 0; r < replicas; ++r) run_one(r);
  }
  if (ckpt.enabled() && !ckpt.keep_files) {
    for (std::size_t r = 0; r < replicas; ++r) {
      Scenario sc = base;
      sc.seed = base.seed + r;
      std::remove((run_stem(ckpt, sc, "") + ".done").c_str());
    }
  }
  ReplicatedMetrics agg;
  for (const MetricPoint& p : points) agg.add(p);
  return agg;
}

std::vector<ReplicatedMetrics> run_sweep(const std::vector<SweepPoint>& points,
                                         std::size_t replicas,
                                         ThreadPool* pool,
                                         const CheckpointOptions& ckpt) {
  CheckpointOptions per_run = ckpt;
  per_run.keep_files = true;
  auto point_label = [](std::size_t pi) {
    std::ostringstream os;
    os << 'p' << pi << '_';
    return os.str();
  };
  std::vector<ReplicatedMetrics> out(points.size());
  std::vector<std::vector<MetricPoint>> raw(points.size());
  for (auto& v : raw) v.resize(replicas);
  auto run_task = [&](std::size_t task) {
    const std::size_t pi = task / replicas;
    const std::size_t r = task % replicas;
    Scenario sc = points[pi].scenario;
    sc.seed = sc.seed + r;
    raw[pi][r] = run_scenario(sc, nullptr, per_run, point_label(pi));
  };
  if (pool != nullptr) {
    // Flatten point × replica into independent tasks (grain 1: each task
    // is a whole simulation).
    parallel_for_index(*pool, points.size() * replicas, /*grain=*/1,
                       run_task);
  } else {
    for (std::size_t t = 0; t < points.size() * replicas; ++t) run_task(t);
  }
  if (ckpt.enabled() && !ckpt.keep_files) {
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
      for (std::size_t r = 0; r < replicas; ++r) {
        Scenario sc = points[pi].scenario;
        sc.seed = sc.seed + r;
        std::remove((run_stem(ckpt, sc, point_label(pi)) + ".done").c_str());
      }
    }
  }
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    for (const MetricPoint& p : raw[pi]) out[pi].add(p);
  }
  return out;
}

}  // namespace dtn
