#include "src/report/trace_recorder.hpp"

#include <fstream>
#include <sstream>

#include "src/util/error.hpp"

namespace dtn {

TraceRecorder::TraceRecorder(double interval) : interval_(interval) {
  DTN_REQUIRE(interval > 0.0, "trace recorder: bad interval");
  next_ = 0.0;  // record the first post-step state immediately
}

void TraceRecorder::on_step_end(const World& world) {
  if (world.now() + 1e-9 < next_) return;
  next_ = world.now() + interval_;
  for (NodeId id = 0; id < world.node_count(); ++id) {
    NodeTrace& nt = trace_.nodes[id];
    nt.times.push_back(world.now());
    nt.points.push_back(world.node(id).mobility().position());
  }
}

std::string TraceRecorder::to_text() const {
  std::ostringstream os;
  os << "# movement trace: time node_id x y (sampled every " << interval_
     << " s)\n";
  // Emit in time-major order so the file is chronologically readable.
  // All nodes share the same sample times by construction.
  if (trace_.nodes.empty()) return os.str();
  const std::size_t samples = trace_.nodes.begin()->second.times.size();
  for (std::size_t k = 0; k < samples; ++k) {
    for (const auto& [id, nt] : trace_.nodes) {
      if (k >= nt.times.size()) continue;
      os << nt.times[k] << ' ' << id << ' ' << nt.points[k].x << ' '
         << nt.points[k].y << '\n';
    }
  }
  return os.str();
}

bool TraceRecorder::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_text();
  return static_cast<bool>(f);
}

}  // namespace dtn
