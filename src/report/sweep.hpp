// Sweep runner: executes scenarios (optionally replicated over seeds and
// fanned out over a thread pool) and aggregates the paper's three metrics.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/config/scenario.hpp"
#include "src/core/sim_stats.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

namespace dtn {

/// The paper's three headline metrics plus delay, from one finished run.
struct MetricPoint {
  double delivery_ratio = 0.0;
  double avg_hopcount = 0.0;
  double overhead_ratio = 0.0;
  double avg_latency = 0.0;
  double median_latency = 0.0;  ///< p50 creation->delivery delay (s)
  double p95_latency = 0.0;     ///< p95 creation->delivery delay (s)
};

/// Periodic checkpointing for long runs. When enabled, every run leaves a
/// `<dir>/<name>_seed<seed>.ckpt` file every `interval_s` simulated
/// seconds (atomically replaced), and a `.done` marker holding the final
/// metrics on completion. A rerun with the same options resumes each
/// replica from its checkpoint — or skips it entirely when the marker
/// exists — and produces results identical to an uninterrupted (cold) run.
struct CheckpointOptions {
  std::string dir;         ///< empty = checkpointing disabled
  double interval_s = 0.0; ///< simulated seconds between saves; <=0 disables
  bool keep_files = false; ///< keep .ckpt/.done after a completed run

  bool enabled() const { return !dir.empty() && interval_s > 0.0; }
};

/// Builds, runs and summarizes one scenario.
MetricPoint run_scenario(const Scenario& sc);

/// Same, also returning the full counter set.
MetricPoint run_scenario(const Scenario& sc, SimStats* stats_out);

/// Same, with periodic checkpointing / resume-from-checkpoint. The
/// `label` distinguishes runs of identically named scenarios (sweep
/// points); pass "" outside sweeps.
MetricPoint run_scenario(const Scenario& sc, SimStats* stats_out,
                         const CheckpointOptions& ckpt,
                         const std::string& label = "");

/// Aggregate over replicas (seeds base.seed, base.seed+1, ...).
struct ReplicatedMetrics {
  RunningStats delivery_ratio;
  RunningStats avg_hopcount;
  RunningStats overhead_ratio;
  RunningStats avg_latency;
  RunningStats median_latency;
  RunningStats p95_latency;

  void add(const MetricPoint& p) {
    delivery_ratio.add(p.delivery_ratio);
    avg_hopcount.add(p.avg_hopcount);
    overhead_ratio.add(p.overhead_ratio);
    avg_latency.add(p.avg_latency);
    median_latency.add(p.median_latency);
    p95_latency.add(p.p95_latency);
  }

  MetricPoint mean() const {
    return {delivery_ratio.mean(),  avg_hopcount.mean(),
            overhead_ratio.mean(),  avg_latency.mean(),
            median_latency.mean(),  p95_latency.mean()};
  }
};

/// Runs `replicas` independent replications of `base` (only the seed
/// differs). When `pool` is non-null the replicas run concurrently;
/// results are identical either way. With checkpointing enabled, a
/// partially completed replica set resumes where it stopped.
ReplicatedMetrics run_replicated(const Scenario& base, std::size_t replicas,
                                 ThreadPool* pool = nullptr,
                                 const CheckpointOptions& ckpt = {});

/// One sweep point: a label (the x value) and its base scenario.
struct SweepPoint {
  double x = 0.0;
  Scenario scenario;
};

/// Runs every point (each replicated `replicas` times) and returns the
/// aggregated metrics in point order. Points × replicas fan out over the
/// pool when provided.
std::vector<ReplicatedMetrics> run_sweep(const std::vector<SweepPoint>& points,
                                         std::size_t replicas,
                                         ThreadPool* pool = nullptr,
                                         const CheckpointOptions& ckpt = {});

}  // namespace dtn
