// Sweep runner: executes scenarios (optionally replicated over seeds and
// fanned out over a thread pool) and aggregates the paper's three metrics.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/config/scenario.hpp"
#include "src/core/sim_stats.hpp"
#include "src/util/histogram.hpp"
#include "src/util/stats.hpp"
#include "src/util/thread_pool.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

/// The paper's three headline metrics plus delay, from one finished run.
struct MetricPoint {
  double delivery_ratio = 0.0;
  double avg_hopcount = 0.0;
  double overhead_ratio = 0.0;
  double avg_latency = 0.0;
  double median_latency = 0.0;  ///< p50 creation->delivery delay (s)
  double p95_latency = 0.0;     ///< p95 creation->delivery delay (s)
};

/// Periodic checkpointing for long runs. When enabled, every run leaves a
/// `<dir>/<name>_seed<seed>.ckpt` file every `interval_s` simulated
/// seconds (atomically replaced), and a `.done` marker holding the final
/// metrics on completion. A rerun with the same options resumes each
/// replica from its checkpoint — or skips it entirely when the marker
/// exists — and produces results identical to an uninterrupted (cold) run.
struct CheckpointOptions {
  std::string dir;         ///< empty = checkpointing disabled
  double interval_s = 0.0; ///< simulated seconds between saves; <=0 disables
  bool keep_files = false; ///< keep .ckpt/.done after a completed run
  /// Optional liveness hook, called after every periodic checkpoint save
  /// with the current simulated time. Orchestrator workers heartbeat from
  /// here so a lease stays fresh through a single long run. Never called
  /// for runs skipped via an existing .done marker.
  std::function<void(double sim_now)> on_progress;

  bool enabled() const { return !dir.empty() && interval_s > 0.0; }
};

/// File-name stem `<dir>/<label><name>_seed<seed>` of one checkpointed
/// run (the .ckpt/.done paths append their extension). Exposed so the
/// sweep orchestrator can resume and clean up run files it did not write.
std::string run_file_stem(const std::string& dir, const Scenario& sc,
                          const std::string& label);

/// Builds, runs and summarizes one scenario.
MetricPoint run_scenario(const Scenario& sc);

/// Same, also returning the full counter set.
MetricPoint run_scenario(const Scenario& sc, SimStats* stats_out);

/// Same, with periodic checkpointing / resume-from-checkpoint. The
/// `label` distinguishes runs of identically named scenarios (sweep
/// points); pass "" outside sweeps.
MetricPoint run_scenario(const Scenario& sc, SimStats* stats_out,
                         const CheckpointOptions& ckpt,
                         const std::string& label = "");

/// Fixed, scenario-independent binning for the cross-run latency
/// histogram: [0, 12 h) at 10 s resolution. Every aggregate uses the same
/// layout so shard partials merge exactly.
inline constexpr double kLatencyHistLo = 0.0;
inline constexpr double kLatencyHistHi = 43200.0;
inline constexpr std::size_t kLatencyHistBins = 4320;

/// Aggregate over replicas (seeds base.seed, base.seed+1, ...).
///
/// Backed by exactly-mergeable accumulators (MergeStats running moments +
/// a fixed-bin latency histogram), so shard-local partials combined in
/// canonical shard order are bit-identical to sequential accumulation —
/// the sweep orchestrator's determinism guarantee (DESIGN.md §12) rests
/// on this struct, not on run scheduling.
struct ReplicatedMetrics {
  MergeStats delivery_ratio;
  MergeStats avg_hopcount;
  MergeStats overhead_ratio;
  MergeStats avg_latency;
  MergeStats median_latency;
  MergeStats p95_latency;
  /// Distribution of per-run average latencies (s) for mergeable
  /// cross-run quantiles: latency_hist.quantile(0.5) etc.
  Histogram latency_hist{kLatencyHistLo, kLatencyHistHi, kLatencyHistBins};

  void add(const MetricPoint& p) {
    delivery_ratio.add(p.delivery_ratio);
    avg_hopcount.add(p.avg_hopcount);
    overhead_ratio.add(p.overhead_ratio);
    avg_latency.add(p.avg_latency);
    median_latency.add(p.median_latency);
    p95_latency.add(p.p95_latency);
    latency_hist.add(p.avg_latency);
  }

  /// Exact shard-combine: field-wise integer merges, order-insensitive.
  void merge(const ReplicatedMetrics& other) {
    delivery_ratio.merge(other.delivery_ratio);
    avg_hopcount.merge(other.avg_hopcount);
    overhead_ratio.merge(other.overhead_ratio);
    avg_latency.merge(other.avg_latency);
    median_latency.merge(other.median_latency);
    p95_latency.merge(other.p95_latency);
    latency_hist.merge(other.latency_hist);
  }

  /// Fraction of per-run latencies that fell at/above the fixed histogram
  /// ceiling (kLatencyHistHi). When this is non-zero, latency_hist
  /// quantiles that land in the overflow mass saturate at the ceiling —
  /// use latency_hist.quantile_checked() and surface the saturation
  /// instead of printing the ceiling as if it were an estimate.
  double latency_overflow_fraction() const {
    return latency_hist.overflow_fraction();
  }

  MetricPoint mean() const {
    return {delivery_ratio.mean(),  avg_hopcount.mean(),
            overhead_ratio.mean(),  avg_latency.mean(),
            median_latency.mean(),  p95_latency.mean()};
  }

  friend bool operator==(const ReplicatedMetrics&,
                         const ReplicatedMetrics&) = default;
};

/// Canonical archive round-trip for aggregates (shard result files, the
/// orchestrator's merged results file). The encoding is a pure function
/// of accumulator state, so equal aggregates serialize to equal bytes.
void save_aggregate(snapshot::ArchiveWriter& out, const ReplicatedMetrics& m);
void load_aggregate(snapshot::ArchiveReader& in, ReplicatedMetrics& m);

/// Runs `replicas` independent replications of `base` (only the seed
/// differs). When `pool` is non-null the replicas run concurrently;
/// results are identical either way. With checkpointing enabled, a
/// partially completed replica set resumes where it stopped.
ReplicatedMetrics run_replicated(const Scenario& base, std::size_t replicas,
                                 ThreadPool* pool = nullptr,
                                 const CheckpointOptions& ckpt = {});

/// One sweep point: a label (the x value) and its base scenario.
struct SweepPoint {
  double x = 0.0;
  Scenario scenario;
};

/// Runs every point (each replicated `replicas` times) and returns the
/// aggregated metrics in point order. Points × replicas fan out over the
/// pool when provided.
std::vector<ReplicatedMetrics> run_sweep(const std::vector<SweepPoint>& points,
                                         std::size_t replicas,
                                         ThreadPool* pool = nullptr,
                                         const CheckpointOptions& ckpt = {});

}  // namespace dtn
