#include "src/report/observers.hpp"

#include <algorithm>
#include <sstream>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

// --- DeliveredMessagesReport ---

void DeliveredMessagesReport::on_delivery(const Message& copy, NodeId from,
                                          NodeId to, SimTime now) {
  Row r;
  r.id = copy.id;
  r.source = copy.source;
  r.destination = to;
  r.last_hop = from;
  r.created = copy.created;
  r.delivered_at = now;
  r.hops = copy.hops + 1;
  rows_.push_back(r);
}

Table DeliveredMessagesReport::to_table() const {
  Table t({"id", "src", "dst", "last_hop", "hops", "latency_s", "created_s",
           "delivered_s"});
  for (const Row& r : rows_) {
    t.add_row({static_cast<std::int64_t>(r.id),
               static_cast<std::int64_t>(r.source),
               static_cast<std::int64_t>(r.destination),
               static_cast<std::int64_t>(r.last_hop),
               static_cast<std::int64_t>(r.hops),
               r.delivered_at - r.created, r.created, r.delivered_at});
  }
  return t;
}

double DeliveredMessagesReport::latency_quantile(double q) const {
  DTN_REQUIRE(!rows_.empty(), "latency_quantile: no deliveries");
  std::vector<double> latencies;
  latencies.reserve(rows_.size());
  for (const Row& r : rows_) latencies.push_back(r.delivered_at - r.created);
  return quantile(std::move(latencies), q);
}

void DeliveredMessagesReport::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("delivered-report");
  out.u64(rows_.size());
  for (const Row& r : rows_) {
    out.u64(r.id);
    out.u32(r.source);
    out.u32(r.destination);
    out.u32(r.last_hop);
    out.f64(r.created);
    out.f64(r.delivered_at);
    out.i64(r.hops);
  }
  out.end_section();
}

void DeliveredMessagesReport::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("delivered-report");
  rows_.clear();
  const std::uint64_t n = in.u64();
  rows_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Row r;
    r.id = in.u64();
    r.source = in.u32();
    r.destination = in.u32();
    r.last_hop = in.u32();
    r.created = in.f64();
    r.delivered_at = in.f64();
    r.hops = static_cast<int>(in.i64());
    rows_.push_back(r);
  }
  in.end_section();
}

// --- DelayCdfReport ---

DelayCdfReport::DelayCdfReport(double hist_lo, double hist_hi,
                               std::size_t hist_bins)
    : hist_(hist_lo, hist_hi, hist_bins) {}

void DelayCdfReport::on_message_created(const Message& m, SimTime now) {
  (void)m;
  (void)now;
  ++created_;
}

void DelayCdfReport::on_delivery(const Message& copy, NodeId from, NodeId to,
                                 SimTime now) {
  (void)from;
  (void)to;
  const double delay = now - copy.created;
  delays_.push_back(delay);
  hist_.add(delay);
}

void DelayCdfReport::merge(const DelayCdfReport& other) {
  created_ += other.created_;
  delays_.insert(delays_.end(), other.delays_.begin(), other.delays_.end());
  hist_.merge(other.hist_);
}

// --- ContactReport ---

void ContactReport::on_link_up(const NodePair& p, SimTime now) {
  ++contacts_;
  up_since_[p] = now;
  const auto it = last_end_.find(p);
  if (it != last_end_.end() && now > it->second) {
    gaps_.push_back(now - it->second);
  }
}

void ContactReport::on_link_down(const NodePair& p, SimTime now) {
  const auto it = up_since_.find(p);
  if (it != up_since_.end()) {
    durations_.push_back(now - it->second);
    up_since_.erase(it);
  }
  last_end_[p] = now;
}

Table ContactReport::to_table() const {
  RunningStats dur, gap;
  for (double d : durations_) dur.add(d);
  for (double g : gaps_) gap.add(g);
  Table t({"metric", "value"});
  t.add_row({std::string("contacts"), static_cast<std::int64_t>(contacts_)});
  t.add_row({std::string("completed_contacts"),
             static_cast<std::int64_t>(durations_.size())});
  t.add_row({std::string("mean_contact_duration_s"), dur.mean()});
  t.add_row({std::string("max_contact_duration_s"), dur.max()});
  t.add_row({std::string("intermeeting_samples"),
             static_cast<std::int64_t>(gaps_.size())});
  t.add_row({std::string("mean_intermeeting_s"), gap.mean()});
  if (!gaps_.empty()) {
    const ExponentialFit fit = fit_exponential(gaps_);
    t.add_row({std::string("fitted_lambda"), fit.lambda});
    t.add_row({std::string("logCCDF_R2"), fit.r_squared});
  }
  return t;
}

// --- BufferOccupancyReport ---

BufferOccupancyReport::BufferOccupancyReport(double interval)
    : interval_(interval), next_(interval) {
  DTN_REQUIRE(interval > 0.0, "occupancy report: bad interval");
}

void BufferOccupancyReport::on_step_end(const World& world) {
  if (world.now() + 1e-9 < next_) return;
  next_ += interval_;
  Sample s;
  s.t = world.now();
  for (NodeId id = 0; id < world.node_count(); ++id) {
    const double occ = world.node(id).buffer().occupancy();
    s.mean += occ;
    s.max = std::max(s.max, occ);
  }
  s.mean /= static_cast<double>(world.node_count());
  samples_.push_back(s);
}

Table BufferOccupancyReport::to_table() const {
  Table t({"t_s", "mean_occupancy", "max_occupancy"});
  for (const Sample& s : samples_) t.add_row({s.t, s.mean, s.max});
  return t;
}

// --- EventLog ---

void EventLog::log(SimTime t, const std::string& kind,
                   const std::string& detail) {
  std::ostringstream os;
  os << t << ' ' << kind << ' ' << detail;
  lines_.push_back(os.str());
}

void EventLog::on_message_created(const Message& m, SimTime now) {
  log(now, "CREATE",
      "m" + std::to_string(m.id) + " " + std::to_string(m.source) + "->" +
          std::to_string(m.destination));
}

void EventLog::on_delivery(const Message& copy, NodeId from, NodeId to,
                           SimTime now) {
  log(now, "DELIVER",
      "m" + std::to_string(copy.id) + " " + std::to_string(from) + "->" +
          std::to_string(to) + " hops=" + std::to_string(copy.hops + 1));
}

void EventLog::on_transfer_started(const Transfer& t) {
  log(t.started, "SEND",
      "m" + std::to_string(t.msg) + " " + std::to_string(t.from) + "->" +
          std::to_string(t.to));
}

void EventLog::on_transfer_completed(const Transfer& t, bool delivered) {
  log(t.eta, "RECV",
      "m" + std::to_string(t.msg) + " " + std::to_string(t.from) + "->" +
          std::to_string(t.to) + (delivered ? " final" : " relay"));
}

void EventLog::on_transfer_aborted(const Transfer& t) {
  log(t.eta, "ABORT",
      "m" + std::to_string(t.msg) + " " + std::to_string(t.from) + "->" +
          std::to_string(t.to));
}

void EventLog::on_drop(NodeId node, const Message& m, SimTime now) {
  log(now, "DROP", "m" + std::to_string(m.id) + " @" + std::to_string(node));
}

void EventLog::on_ttl_expired(NodeId node, const Message& m, SimTime now) {
  log(now, "EXPIRE", "m" + std::to_string(m.id) + " @" + std::to_string(node));
}

void EventLog::on_link_up(const NodePair& p, SimTime now) {
  log(now, "UP",
      std::to_string(p.first) + "<->" + std::to_string(p.second));
}

void EventLog::on_link_down(const NodePair& p, SimTime now) {
  log(now, "DOWN",
      std::to_string(p.first) + "<->" + std::to_string(p.second));
}

std::size_t EventLog::count_kind(const std::string& kind) const {
  std::size_t n = 0;
  for (const std::string& line : lines_) {
    // kind is the second space-separated field.
    const auto sp1 = line.find(' ');
    if (sp1 == std::string::npos) continue;
    const auto sp2 = line.find(' ', sp1 + 1);
    const auto field = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (field == kind) ++n;
  }
  return n;
}

}  // namespace dtn
