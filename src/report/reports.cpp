#include "src/report/reports.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace dtn {

Table message_stats_table(const std::string& label, const SimStats& s) {
  Table t({"metric", "value"});
  t.add_row({std::string("label"), label});
  t.add_row({std::string("created"), static_cast<std::int64_t>(s.created)});
  t.add_row({std::string("delivered"),
             static_cast<std::int64_t>(s.delivered)});
  t.add_row({std::string("delivery_ratio"), s.delivery_ratio()});
  t.add_row({std::string("avg_hopcount"), s.avg_hopcount()});
  t.add_row({std::string("overhead_ratio"), s.overhead_ratio()});
  t.add_row({std::string("avg_latency_s"), s.avg_latency()});
  t.add_row({std::string("transfers_started"),
             static_cast<std::int64_t>(s.transfers_started)});
  t.add_row({std::string("transfers_completed"),
             static_cast<std::int64_t>(s.transfers_completed)});
  t.add_row({std::string("transfers_aborted"),
             static_cast<std::int64_t>(s.transfers_aborted)});
  t.add_row({std::string("drops"), static_cast<std::int64_t>(s.drops)});
  t.add_row({std::string("ttl_expired"),
             static_cast<std::int64_t>(s.ttl_expired)});
  t.add_row({std::string("admission_rejected"),
             static_cast<std::int64_t>(s.admission_rejected)});
  // Fault counters only appear when the run actually had faults; the
  // common fault-free table stays unchanged.
  if (s.downtime_s > 0.0 || s.faulted_aborts > 0 || s.reboot_purged > 0) {
    t.add_row({std::string("downtime_s"), s.downtime_s});
    t.add_row({std::string("faulted_aborts"),
               static_cast<std::int64_t>(s.faulted_aborts)});
    t.add_row({std::string("reboot_purged"),
               static_cast<std::int64_t>(s.reboot_purged)});
  }
  t.add_row({std::string("avg_buffer_occupancy"),
             s.buffer_occupancy.mean()});
  return t;
}

Table comparison_table(const std::vector<std::string>& labels,
                       const std::vector<SimStats>& stats) {
  DTN_REQUIRE(labels.size() == stats.size(),
              "comparison_table: label/stats size mismatch");
  Table t({"policy", "delivery_ratio", "avg_hopcount", "overhead_ratio",
           "avg_latency_s", "drops", "delivered", "created"});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const SimStats& s = stats[i];
    t.add_row({labels[i], s.delivery_ratio(), s.avg_hopcount(),
               s.overhead_ratio(), s.avg_latency(),
               static_cast<std::int64_t>(s.drops),
               static_cast<std::int64_t>(s.delivered),
               static_cast<std::int64_t>(s.created)});
  }
  return t;
}

IntermeetingReport intermeeting_report(const std::vector<double>& samples,
                                       std::size_t bins) {
  DTN_REQUIRE(!samples.empty(), "intermeeting_report: no samples");
  const double maxv = *std::max_element(samples.begin(), samples.end());
  IntermeetingReport rep{Histogram(0.0, std::max(maxv, 1.0), bins),
                         fit_exponential(samples),
                         Table({"t_s", "empirical_pdf", "exponential_fit"})};
  rep.histogram.add_all(samples);
  for (std::size_t b = 0; b < rep.histogram.bins(); ++b) {
    const double t = rep.histogram.bin_center(b);
    const double fitted = rep.fit.lambda * std::exp(-rep.fit.lambda * t);
    rep.table.add_row({t, rep.histogram.density(b), fitted});
  }
  rep.table.set_precision(6);
  return rep;
}

}  // namespace dtn
