// Analytical correctness oracles (DESIGN.md §13): harnesses that run the
// simulator in regimes where closed-form theory predicts the outcome and
// report the discrepancy, so CI can gate on *correctness* rather than
// mere determinism. Two oracles:
//
//  * Binary spray-and-wait delivery-delay CDF vs the Diana & Lochin
//    stochastic model (src/sdsrp/spray_wait_delay_model) — KS distance
//    between the simulated creation→delivery delay distribution and the
//    analytical F(t), with λ taken from the observed contact census.
//    Catches silent bias in the spray tree, the meeting process, or the
//    delivery path.
//
//  * Epidemic infection curve vs the SI ODE of Zhang et al. (paper
//    ref [13], src/sdsrp/epidemic_ode) — simulated I(t) checkpoints
//    against the logistic closed form. Catches contact-process and
//    transfer-pipeline bias.
//
// Both harnesses are deterministic given their config (seeds included),
// and shared by the bench drivers (bench/abl_spray_delay_oracle,
// bench/abl_ode_validation) and the gating tests (tests/test_delay_oracle).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/config/scenario.hpp"
#include "src/sdsrp/spray_wait_delay_model.hpp"

namespace dtn {

/// One (N, L) configuration of the spray-and-wait delay oracle. The world
/// is the Table II random-waypoint world (2 m/s, 100 m range, 250 kbps,
/// 1 s steps) with unconstrained buffers, negligible 1 kB payloads and a
/// geometry scaled so pairwise meetings are frequent enough to resolve a
/// CDF within a short horizon. Traffic stops at `create_window_s`; every
/// message created then has the full `horizon_s` of observation before
/// the run ends, so "not delivered within horizon" is exact right
/// censoring, never truncation.
struct SprayDelayOracleConfig {
  std::size_t n_nodes = 80;
  int copies = 8;                ///< L, the binary spray budget
  std::size_t seeds = 4;         ///< replicas pooled into one empirical CDF
  std::uint64_t base_seed = 1;
  double area_width = 2250.0;    ///< Table II geometry at quarter area
  double area_height = 1700.0;
  double create_window_s = 2000.0;
  double horizon_s = 4000.0;     ///< delay comparison horizon
  double traffic_interval_min = 18.0;
  double traffic_interval_max = 22.0;

  /// Sensitivity knobs — compare the *unchanged* simulation against a
  /// deliberately perturbed model, to prove the oracle detects bias.
  double model_lambda_scale = 1.0;  ///< model uses λ·scale
  int model_copies_override = 0;    ///< 0 = model uses `copies`

  double duration_s() const { return create_window_s + horizon_s; }
};

struct SprayDelayOracleResult {
  double lambda = 0.0;        ///< population-MLE pairwise meeting rate (/s)
  std::size_t samples = 0;    ///< messages created (eligible population)
  std::size_t delivered = 0;  ///< delivered within the horizon
  double ks = 0.0;            ///< sup_t≤horizon |F_emp(t) − F_model(t)|
  double mean_sim = 0.0;      ///< E[min(T, horizon)], empirical
  double mean_model = 0.0;    ///< E[min(T, horizon)], analytical
  double p50_sim = 0.0, p50_model = 0.0;
  double p90_sim = 0.0, p90_model = 0.0;
  std::size_t model_states = 0;

  double delivered_fraction() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(delivered) /
                              static_cast<double>(samples);
  }
};

/// The scenario one oracle replica runs (exposed for tests and the
/// scenarios/spray_delay_oracle.txt round-trip).
Scenario spray_delay_oracle_scenario(const SprayDelayOracleConfig& cfg,
                                     std::uint64_t seed);

/// Runs `cfg.seeds` replicas, pools the exact delay samples, measures λ
/// from the contact census and compares against the analytical CDF.
SprayDelayOracleResult run_spray_delay_oracle(
    const SprayDelayOracleConfig& cfg);

/// KS distance between the empirical delay distribution — `delays`
/// delivered samples out of `total` eligible messages, the remainder
/// right-censored at `horizon` — and the model CDF, evaluated over
/// [0, horizon]. `delays` need not be sorted.
double censored_ks_distance(const sdsrp::SprayWaitDelayModel& model,
                            std::vector<double> delays, std::size_t total,
                            double horizon);

/// Epidemic-ODE oracle (the former print-only abl_ode_validation core).
struct EpidemicOdeOracleConfig {
  std::size_t seeds = 5;
  std::vector<double> checkpoints = {250,  500,  750,  1000, 1500,
                                     2000, 3000, 4000, 6000, 9000};
};

struct EpidemicOdeOracleResult {
  struct Point {
    double t = 0.0;
    double sim_mean = 0.0;  ///< mean simulated I(t) across seeds
    double sim_ci95 = 0.0;
    double ode = 0.0;       ///< logistic I(t) at the census λ
    double ratio() const { return ode > 0.0 ? sim_mean / ode : 0.0; }
  };
  double lambda = 0.0;     ///< population-MLE pairwise meeting rate
  double naive_ei = 0.0;   ///< naive mean of completed gaps (length-biased)
  std::size_t n_nodes = 0;
  std::vector<Point> points;
};

EpidemicOdeOracleResult run_epidemic_ode_oracle(
    const EpidemicOdeOracleConfig& cfg);

}  // namespace dtn
