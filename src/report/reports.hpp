// Report builders: turn raw simulator output into the tables the benches
// and examples print.
#pragma once

#include <string>
#include <vector>

#include "src/core/sim_stats.hpp"
#include "src/util/histogram.hpp"
#include "src/util/table.hpp"

namespace dtn {

/// One-row summary of a run's counters and metrics (ONE's
/// MessageStatsReport equivalent).
Table message_stats_table(const std::string& label, const SimStats& s);

/// Multi-run comparison: one row per (label, stats) pair.
Table comparison_table(const std::vector<std::string>& labels,
                       const std::vector<SimStats>& stats);

/// Fig. 3-style report: histogram of intermeeting samples with the fitted
/// exponential density per bin, plus the fit parameters in the header.
struct IntermeetingReport {
  Histogram histogram;
  ExponentialFit fit;
  Table table;  ///< bin center | empirical density | fitted density
};
IntermeetingReport intermeeting_report(const std::vector<double>& samples,
                                       std::size_t bins = 30);

}  // namespace dtn
