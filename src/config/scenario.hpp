// Scenario: one fully-specified experiment — everything in the paper's
// Tables II and III plus the factory names of the mobility model, router
// and buffer policy. Scenarios round-trip through the ONE-style Settings
// text, and bench sweeps mutate copies of a base scenario.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/message_generator.hpp"
#include "src/core/node.hpp"
#include "src/core/world.hpp"
#include "src/mobility/manhattan_grid.hpp"
#include "src/mobility/random_direction.hpp"
#include "src/mobility/random_walk.hpp"
#include "src/mobility/random_waypoint.hpp"
#include "src/mobility/taxi_fleet.hpp"
#include "src/util/settings.hpp"

namespace dtn {

struct Scenario {
  std::string name = "scenario";

  WorldConfig world;                 ///< step/duration/range/bandwidth
  std::size_t n_nodes = 100;
  std::int64_t buffer_capacity = 2'500'000;  ///< bytes
  MessageGenConfig traffic;

  /// One of: random-waypoint | random-walk | random-direction |
  /// taxi-fleet | manhattan-grid.
  std::string mobility = "random-waypoint";
  RandomWaypointConfig rwp;
  RandomWalkConfig walk;
  RandomDirectionConfig direction;
  TaxiFleetConfig taxi;
  ManhattanGridConfig manhattan;

  /// One of: spray-and-wait | spray-and-wait-source | epidemic |
  /// direct-delivery | first-contact | spray-and-focus | prophet.
  std::string router = "spray-and-wait";

  /// One of: fifo | drop-tail | drop-largest | lifo | random | ttl-ratio |
  /// copies-ratio | mofo | sdsrp | sdsrp-oracle | gbsd.
  std::string policy = "sdsrp";

  /// Click-style element graph (`Pipeline.spec`, DESIGN.md §15), e.g.
  ///   SprayAndWait(copies 16) -> PriorityQueue(sdsrp) -> DropTail(lowest)
  /// Empty = the legacy router/policy names above. When set, the pipeline
  /// supersedes `router` and `policy` (and `Traffic.copies` when the
  /// routing element carries a `copies` argument).
  std::string pipeline;

  /// Fault injection (`Fault.*` keys); inert by default.
  FaultConfig fault;

  NodeEstimatorConfig estimator;
  std::size_t sdsrp_taylor_terms = 0;  ///< 0 = closed-form Eq. 10
  bool sdsrp_anchor_last_spray = true; ///< Eq. 15 t_n anchoring
  bool precheck_admission = true;      ///< receiver-admission handshake
  bool presplit_admission_view = false; ///< rate newcomers pre-split
  bool sdsrp_reject_newcomer = true;    ///< Algorithm-1 newcomer test
  bool sdsrp_reject_dropped = true;     ///< refuse re-receipt after own drop

  std::uint64_t seed = 1;

  /// Table II: the paper's synthetic random-waypoint scenario.
  static Scenario random_waypoint_paper();

  /// Table III: the paper's EPFL taxi scenario, with the synthetic
  /// TaxiFleetModel standing in for the CRAWDAD GPS trace (DESIGN.md §4).
  static Scenario taxi_paper();

  /// Parses a Settings blob (keys documented in scenario.cpp).
  static Scenario from_settings(const Settings& s);
  Settings to_settings() const;
};

/// Builds a ready-to-run World from the scenario: constructs the router,
/// policy, per-node mobility models (seeded deterministically from
/// scenario.seed) and the traffic generator. Throws PreconditionError on
/// unknown factory names.
std::unique_ptr<World> build_world(const Scenario& sc);

/// Factory helpers, exposed for tests and custom setups.
std::unique_ptr<Router> make_router(const Scenario& sc);
std::unique_ptr<BufferPolicy> make_policy(const Scenario& sc,
                                          std::uint64_t seed);
MobilityPtr make_mobility(const Scenario& sc, Rng rng, std::size_t node_index);

}  // namespace dtn
