#include "src/config/scenario.hpp"
#include "src/mobility/stationary.hpp"
#include "src/pipeline/compile.hpp"
#include "src/pipeline/elements.hpp"
#include "src/pipeline/parser.hpp"
#include "src/routing/spray_and_wait.hpp"
#include "src/util/error.hpp"

namespace dtn {

namespace {

SdsrpParams sdsrp_params(const Scenario& sc) {
  return SdsrpParams{sc.sdsrp_taylor_terms, sc.sdsrp_anchor_last_spray,
                     sc.sdsrp_reject_newcomer, sc.sdsrp_reject_dropped};
}

}  // namespace

std::unique_ptr<Router> make_router(const Scenario& sc) {
  return pipeline::make_router_by_name(
      sc.router, SprayAndWaitConfig{/*binary=*/true, sc.precheck_admission,
                                    sc.presplit_admission_view});
}

std::unique_ptr<BufferPolicy> make_policy(const Scenario& sc,
                                          std::uint64_t seed) {
  return pipeline::make_policy_by_name(sc.policy, sdsrp_params(sc), seed);
}

MobilityPtr make_mobility(const Scenario& sc, Rng rng,
                          std::size_t /*node_index*/) {
  if (sc.mobility == "random-waypoint") {
    return std::make_unique<RandomWaypointModel>(sc.rwp, rng);
  }
  if (sc.mobility == "random-walk") {
    return std::make_unique<RandomWalkModel>(sc.walk, rng);
  }
  if (sc.mobility == "random-direction") {
    return std::make_unique<RandomDirectionModel>(sc.direction, rng);
  }
  if (sc.mobility == "taxi-fleet") {
    return std::make_unique<TaxiFleetModel>(sc.taxi, rng);
  }
  if (sc.mobility == "manhattan-grid") {
    return std::make_unique<ManhattanGridModel>(sc.manhattan, rng);
  }
  DTN_REQUIRE(false, "unknown mobility model: " + sc.mobility);
  return nullptr;
}

std::unique_ptr<World> build_world(const Scenario& sc) {
  DTN_REQUIRE(sc.n_nodes >= 2, "scenario: need at least two nodes");
  auto world = std::make_unique<World>(sc.world);

  // The master fork order below (policy 0xB0, mobility i+1, traffic
  // 0xA11CE, fault 0xFA00FA) is shared by both build paths, so a
  // pipeline build of a closed-class policy consumes the exact same
  // random streams as its legacy `Policy.name` build — the golden
  // digest-identity tests pin this.
  Rng master(sc.seed);
  const std::uint64_t policy_seed = master.fork(0xB0).next_u64();
  MessageGenConfig traffic = sc.traffic;
  if (sc.pipeline.empty()) {
    world->set_router(make_router(sc));
    world->set_policy(make_policy(sc, policy_seed));
  } else {
    const pipeline::Graph graph = pipeline::parse(sc.pipeline);
    pipeline::CompileOptions opts;
    opts.sdsrp = sdsrp_params(sc);
    opts.precheck_admission = sc.precheck_admission;
    opts.presplit_admission_view = sc.presplit_admission_view;
    opts.policy_seed = policy_seed;
    pipeline::Compiled compiled = pipeline::compile(graph, opts);
    world->set_router(std::move(compiled.router));
    world->set_policy(std::move(compiled.policy));
    if (compiled.initial_copies.has_value()) {
      traffic.initial_copies = *compiled.initial_copies;
    }
  }
  for (std::size_t i = 0; i < sc.n_nodes; ++i) {
    world->add_node(make_mobility(sc, master.fork(i + 1), i),
                    sc.buffer_capacity, sc.estimator);
  }
  world->enable_traffic(traffic, master.fork(0xA11CE).next_u64());
  // The fault stream forks with a tag no other consumer uses (0xB0,
  // node index + 1, 0xA11CE above; this one sits far above any node
  // count), so toggling faults never perturbs policy, mobility or
  // traffic randomness.
  if (sc.fault.enabled) {
    world->enable_faults(sc.fault, master.fork(0xFA00FA).next_u64());
  }
  return world;
}

}  // namespace dtn
