#include "src/buffer/fifo.hpp"
#include "src/buffer/gbsd_policy.hpp"
#include "src/buffer/knapsack_policy.hpp"
#include "src/buffer/random_policy.hpp"
#include "src/buffer/sdsrp_policy.hpp"
#include "src/buffer/simple_policies.hpp"
#include "src/config/scenario.hpp"
#include "src/mobility/stationary.hpp"
#include "src/routing/direct_delivery.hpp"
#include "src/routing/epidemic.hpp"
#include "src/routing/first_contact.hpp"
#include "src/routing/prophet.hpp"
#include "src/routing/spray_and_focus.hpp"
#include "src/routing/spray_and_wait.hpp"
#include "src/util/error.hpp"

namespace dtn {

std::unique_ptr<Router> make_router(const Scenario& sc) {
  const std::string& name = sc.router;
  if (name == "spray-and-wait") {
    return std::make_unique<SprayAndWaitRouter>(SprayAndWaitConfig{
        /*binary=*/true, sc.precheck_admission, sc.presplit_admission_view});
  }
  if (name == "spray-and-wait-source") {
    return std::make_unique<SprayAndWaitRouter>(SprayAndWaitConfig{
        /*binary=*/false, sc.precheck_admission, sc.presplit_admission_view});
  }
  if (name == "epidemic") return std::make_unique<EpidemicRouter>();
  if (name == "direct-delivery") {
    return std::make_unique<DirectDeliveryRouter>();
  }
  if (name == "first-contact") return std::make_unique<FirstContactRouter>();
  if (name == "spray-and-focus") {
    return std::make_unique<SprayAndFocusRouter>();
  }
  if (name == "prophet") return std::make_unique<ProphetRouter>();
  DTN_REQUIRE(false, "unknown router: " + name);
  return nullptr;
}

std::unique_ptr<BufferPolicy> make_policy(const Scenario& sc,
                                          std::uint64_t seed) {
  const std::string& name = sc.policy;
  const SdsrpParams params{sc.sdsrp_taylor_terms, sc.sdsrp_anchor_last_spray,
                           sc.sdsrp_reject_newcomer, sc.sdsrp_reject_dropped};
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "drop-tail") return std::make_unique<DropTailPolicy>();
  if (name == "drop-largest") return std::make_unique<DropLargestPolicy>();
  if (name == "lifo") return std::make_unique<LifoPolicy>();
  if (name == "random") return std::make_unique<RandomPolicy>(seed);
  if (name == "ttl-ratio") return std::make_unique<TtlRatioPolicy>();
  if (name == "copies-ratio") return std::make_unique<CopiesRatioPolicy>();
  if (name == "mofo") return std::make_unique<MofoPolicy>();
  if (name == "sdsrp") return std::make_unique<SdsrpPolicy>(params);
  if (name == "knapsack-sdsrp") {
    return std::make_unique<KnapsackSdsrpPolicy>(params);
  }
  if (name == "sdsrp-oracle") {
    return std::make_unique<SdsrpOraclePolicy>(params);
  }
  if (name == "gbsd") return std::make_unique<GbsdPolicy>();
  if (name == "gbsd-delay") return std::make_unique<GbsdDelayPolicy>();
  DTN_REQUIRE(false, "unknown buffer policy: " + name);
  return nullptr;
}

MobilityPtr make_mobility(const Scenario& sc, Rng rng,
                          std::size_t /*node_index*/) {
  if (sc.mobility == "random-waypoint") {
    return std::make_unique<RandomWaypointModel>(sc.rwp, rng);
  }
  if (sc.mobility == "random-walk") {
    return std::make_unique<RandomWalkModel>(sc.walk, rng);
  }
  if (sc.mobility == "random-direction") {
    return std::make_unique<RandomDirectionModel>(sc.direction, rng);
  }
  if (sc.mobility == "taxi-fleet") {
    return std::make_unique<TaxiFleetModel>(sc.taxi, rng);
  }
  if (sc.mobility == "manhattan-grid") {
    return std::make_unique<ManhattanGridModel>(sc.manhattan, rng);
  }
  DTN_REQUIRE(false, "unknown mobility model: " + sc.mobility);
  return nullptr;
}

std::unique_ptr<World> build_world(const Scenario& sc) {
  DTN_REQUIRE(sc.n_nodes >= 2, "scenario: need at least two nodes");
  auto world = std::make_unique<World>(sc.world);
  world->set_router(make_router(sc));

  Rng master(sc.seed);
  world->set_policy(make_policy(sc, master.fork(0xB0).next_u64()));
  for (std::size_t i = 0; i < sc.n_nodes; ++i) {
    world->add_node(make_mobility(sc, master.fork(i + 1), i),
                    sc.buffer_capacity, sc.estimator);
  }
  world->enable_traffic(sc.traffic, master.fork(0xA11CE).next_u64());
  // The fault stream forks with a tag no other consumer uses (0xB0,
  // node index + 1, 0xA11CE above; this one sits far above any node
  // count), so toggling faults never perturbs policy, mobility or
  // traffic randomness.
  if (sc.fault.enabled) {
    world->enable_faults(sc.fault, master.fork(0xFA00FA).next_u64());
  }
  return world;
}

}  // namespace dtn
