#include "src/config/scenario.hpp"

#include "src/pipeline/parser.hpp"
#include "src/util/units.hpp"

namespace dtn {

Scenario Scenario::random_waypoint_paper() {
  Scenario sc;
  sc.name = "rwp-paper";           // Table II
  sc.world.step = 1.0;
  sc.world.duration = 18000.0;     // 18000 s
  sc.world.range = 100.0;          // 100 m
  sc.world.bandwidth = units::kbps(250);
  sc.n_nodes = 100;
  sc.buffer_capacity = units::megabytes(2.5);
  sc.traffic.interval_min = 25.0;  // one message per 25-35 s
  sc.traffic.interval_max = 35.0;
  sc.traffic.size = units::megabytes(0.5);
  sc.traffic.ttl = units::minutes(300);
  sc.traffic.initial_copies = 32;
  sc.mobility = "random-waypoint";
  sc.rwp.area = Rect::sized(4500.0, 3400.0);
  sc.rwp.v_min = 2.0;              // 2 m/s
  sc.rwp.v_max = 2.0;
  sc.router = "spray-and-wait";
  sc.policy = "sdsrp";
  // Warm-up prior for E(I): with 100 RWP nodes at 2 m/s, 100 m range in
  // 4500x3400 m, pairwise meetings are rare — order 3e4 s. The online
  // estimator replaces this within a few observed contacts.
  sc.estimator.prior_mean_intermeeting = 30000.0;
  sc.estimator.min_intermeeting_samples = 4;
  return sc;
}

Scenario Scenario::taxi_paper() {
  Scenario sc = random_waypoint_paper();
  sc.name = "taxi-paper";          // Table III
  sc.n_nodes = 200;                // first 200 taxis
  sc.mobility = "taxi-fleet";
  sc.taxi = TaxiFleetConfig{};     // defaults: SF-like hotspot layout
  // Taxis move faster but aggregate; observed pairwise E(I) is similar in
  // magnitude to the RWP prior.
  sc.estimator.prior_mean_intermeeting = 20000.0;
  return sc;
}

Settings Scenario::to_settings() const {
  Settings s;
  auto put_d = [&s](const char* k, double v) { s.set(k, std::to_string(v)); };
  auto put_i = [&s](const char* k, std::int64_t v) {
    s.set(k, std::to_string(v));
  };
  s.set("Scenario.name", name);
  put_d("World.step", world.step);
  put_d("World.duration", world.duration);
  put_d("World.range", world.range);
  put_d("World.bandwidth", world.bandwidth);
  s.set("World.ackGossip", world.ack_gossip ? "true" : "false");
  s.set("World.priorityCache", world.priority_cache ? "true" : "false");
  put_d("World.priorityRefreshS", world.priority_refresh_s);
  s.set("World.legacyStep", world.legacy_step ? "true" : "false");
  // 0 = serial. Any value yields bit-identical digest trajectories
  // (DESIGN.md §11), so the key is carried in checkpoints harmlessly.
  put_i("Parallel.threads", static_cast<std::int64_t>(world.threads));
  put_i("World.nodes", static_cast<std::int64_t>(n_nodes));
  put_i("World.bufferBytes", buffer_capacity);
  put_d("Traffic.intervalMin", traffic.interval_min);
  put_d("Traffic.intervalMax", traffic.interval_max);
  put_i("Traffic.sizeBytes", traffic.size);
  put_i("Traffic.sizeMaxBytes", traffic.size_max);
  put_d("Traffic.ttl", traffic.ttl);
  put_i("Traffic.copies", traffic.initial_copies);
  put_d("Traffic.start", traffic.start);
  // Default is +inf (never stop); std::to_string/stod round-trip "inf".
  put_d("Traffic.stop", traffic.stop);
  s.set("Mobility.model", mobility);
  put_d("Mobility.areaWidth", rwp.area.width());
  put_d("Mobility.areaHeight", rwp.area.height());
  put_d("Mobility.vMin", rwp.v_min);
  put_d("Mobility.vMax", rwp.v_max);
  s.set("Fault.enabled", fault.enabled ? "true" : "false");
  put_d("Fault.churnFraction", fault.churn_fraction);
  put_d("Fault.meanUpS", fault.mean_up_s);
  put_d("Fault.meanDownS", fault.mean_down_s);
  s.set("Fault.rebootPurge", fault.reboot_purge ? "true" : "false");
  put_d("Fault.linkAbortRatePerHour", fault.link_abort_rate_per_hour);
  put_d("Fault.degradeRatePerHour", fault.degrade_rate_per_hour);
  put_d("Fault.degradeDurationS", fault.degrade_duration_s);
  put_d("Fault.degradeRangeFactor", fault.degrade_range_factor);
  put_d("Fault.degradeBitrateFactor", fault.degrade_bitrate_factor);
  s.set("Router.name", router);
  s.set("Policy.name", policy);
  if (!pipeline.empty()) s.set("Pipeline.spec", pipeline);
  put_i("Policy.sdsrpTaylorTerms",
        static_cast<std::int64_t>(sdsrp_taylor_terms));
  s.set("Policy.sdsrpAnchorLastSpray",
        sdsrp_anchor_last_spray ? "true" : "false");
  s.set("Policy.sdsrpRejectNewcomer",
        sdsrp_reject_newcomer ? "true" : "false");
  s.set("Router.precheckAdmission", precheck_admission ? "true" : "false");
  s.set("Router.presplitAdmissionView",
        presplit_admission_view ? "true" : "false");
  s.set("Estimator.imtMode",
        estimator.imt_mode == sdsrp::ImtEstimatorMode::kCensoredMle
            ? "censored-mle"
            : "naive-mean");
  put_d("Estimator.priorMeanIntermeeting",
        estimator.prior_mean_intermeeting);
  put_i("Estimator.minSamples",
        static_cast<std::int64_t>(estimator.min_intermeeting_samples));
  put_i("Scenario.seed", static_cast<std::int64_t>(seed));
  return s;
}

Scenario Scenario::from_settings(const Settings& s) {
  Scenario sc;  // defaults, overridden by present keys
  sc.name = s.get_string_or("Scenario.name", sc.name);
  sc.world.step = s.get_double_or("World.step", sc.world.step);
  sc.world.duration = s.get_double_or("World.duration", sc.world.duration);
  sc.world.range = s.get_double_or("World.range", sc.world.range);
  sc.world.bandwidth = s.get_double_or("World.bandwidth", sc.world.bandwidth);
  sc.world.ack_gossip = s.get_bool_or("World.ackGossip", sc.world.ack_gossip);
  sc.world.priority_cache =
      s.get_bool_or("World.priorityCache", sc.world.priority_cache);
  sc.world.priority_refresh_s =
      s.get_double_or("World.priorityRefreshS", sc.world.priority_refresh_s);
  sc.world.legacy_step =
      s.get_bool_or("World.legacyStep", sc.world.legacy_step);
  sc.world.threads = static_cast<std::size_t>(s.get_int_or(
      "Parallel.threads", static_cast<std::int64_t>(sc.world.threads)));
  sc.n_nodes = static_cast<std::size_t>(
      s.get_int_or("World.nodes", static_cast<std::int64_t>(sc.n_nodes)));
  sc.buffer_capacity = s.get_int_or("World.bufferBytes", sc.buffer_capacity);
  sc.traffic.interval_min =
      s.get_double_or("Traffic.intervalMin", sc.traffic.interval_min);
  sc.traffic.interval_max =
      s.get_double_or("Traffic.intervalMax", sc.traffic.interval_max);
  sc.traffic.size = s.get_int_or("Traffic.sizeBytes", sc.traffic.size);
  sc.traffic.size_max =
      s.get_int_or("Traffic.sizeMaxBytes", sc.traffic.size_max);
  sc.traffic.ttl = s.get_double_or("Traffic.ttl", sc.traffic.ttl);
  sc.traffic.initial_copies = static_cast<int>(
      s.get_int_or("Traffic.copies", sc.traffic.initial_copies));
  sc.traffic.start = s.get_double_or("Traffic.start", sc.traffic.start);
  sc.traffic.stop = s.get_double_or("Traffic.stop", sc.traffic.stop);
  sc.mobility = s.get_string_or("Mobility.model", sc.mobility);
  const double w = s.get_double_or("Mobility.areaWidth", sc.rwp.area.width());
  const double h =
      s.get_double_or("Mobility.areaHeight", sc.rwp.area.height());
  sc.rwp.area = Rect::sized(w, h);
  sc.walk.area = sc.rwp.area;
  sc.direction.area = sc.rwp.area;
  sc.rwp.v_min = s.get_double_or("Mobility.vMin", sc.rwp.v_min);
  sc.rwp.v_max = s.get_double_or("Mobility.vMax", sc.rwp.v_max);
  sc.walk.v_min = sc.rwp.v_min;
  sc.walk.v_max = sc.rwp.v_max;
  sc.direction.v_min = sc.rwp.v_min;
  sc.direction.v_max = sc.rwp.v_max;
  sc.fault.enabled = s.get_bool_or("Fault.enabled", sc.fault.enabled);
  sc.fault.churn_fraction =
      s.get_double_or("Fault.churnFraction", sc.fault.churn_fraction);
  sc.fault.mean_up_s = s.get_double_or("Fault.meanUpS", sc.fault.mean_up_s);
  sc.fault.mean_down_s =
      s.get_double_or("Fault.meanDownS", sc.fault.mean_down_s);
  sc.fault.reboot_purge =
      s.get_bool_or("Fault.rebootPurge", sc.fault.reboot_purge);
  sc.fault.link_abort_rate_per_hour = s.get_double_or(
      "Fault.linkAbortRatePerHour", sc.fault.link_abort_rate_per_hour);
  sc.fault.degrade_rate_per_hour = s.get_double_or(
      "Fault.degradeRatePerHour", sc.fault.degrade_rate_per_hour);
  sc.fault.degrade_duration_s =
      s.get_double_or("Fault.degradeDurationS", sc.fault.degrade_duration_s);
  sc.fault.degrade_range_factor = s.get_double_or(
      "Fault.degradeRangeFactor", sc.fault.degrade_range_factor);
  sc.fault.degrade_bitrate_factor = s.get_double_or(
      "Fault.degradeBitrateFactor", sc.fault.degrade_bitrate_factor);
  sc.fault.validate();
  sc.router = s.get_string_or("Router.name", sc.router);
  sc.policy = s.get_string_or("Policy.name", sc.policy);
  sc.pipeline = s.get_string_or("Pipeline.spec", sc.pipeline);
  // Eager validation: a malformed pipeline fails at load time with a
  // position-bearing diagnostic, not at build_world inside a sweep.
  if (!sc.pipeline.empty()) (void)dtn::pipeline::parse(sc.pipeline);
  sc.sdsrp_taylor_terms = static_cast<std::size_t>(s.get_int_or(
      "Policy.sdsrpTaylorTerms",
      static_cast<std::int64_t>(sc.sdsrp_taylor_terms)));
  sc.sdsrp_anchor_last_spray =
      s.get_bool_or("Policy.sdsrpAnchorLastSpray", sc.sdsrp_anchor_last_spray);
  sc.sdsrp_reject_newcomer =
      s.get_bool_or("Policy.sdsrpRejectNewcomer", sc.sdsrp_reject_newcomer);
  sc.precheck_admission =
      s.get_bool_or("Router.precheckAdmission", sc.precheck_admission);
  sc.presplit_admission_view = s.get_bool_or("Router.presplitAdmissionView",
                                             sc.presplit_admission_view);
  if (s.has("Estimator.imtMode")) {
    const std::string mode = s.get_string("Estimator.imtMode");
    DTN_REQUIRE(mode == "censored-mle" || mode == "naive-mean",
                "unknown Estimator.imtMode: " + mode);
    sc.estimator.imt_mode = mode == "censored-mle"
                                ? sdsrp::ImtEstimatorMode::kCensoredMle
                                : sdsrp::ImtEstimatorMode::kNaiveMean;
  }
  sc.estimator.prior_mean_intermeeting =
      s.get_double_or("Estimator.priorMeanIntermeeting",
                      sc.estimator.prior_mean_intermeeting);
  sc.estimator.min_intermeeting_samples = static_cast<std::size_t>(
      s.get_int_or("Estimator.minSamples",
                   static_cast<std::int64_t>(
                       sc.estimator.min_intermeeting_samples)));
  sc.seed = static_cast<std::uint64_t>(
      s.get_int_or("Scenario.seed", static_cast<std::int64_t>(sc.seed)));
  return sc;
}

}  // namespace dtn
