// Buffer: a node's byte-limited message store.
//
// Storage order is arrival order (FIFO policies depend on it). The buffer
// itself never decides *what* to drop — admission control with
// policy-driven eviction lives in Node::admit (Algorithm 1 of the paper).
//
// Residents live in the World's MessageArena; the buffer itself is a
// span of stable 32-bit handles (DESIGN.md §14), so inserts and removals
// shuffle 4-byte indices instead of whole Message objects, and every
// copy in the fleet sits in shared slab storage. Byte accounting and the
// revision counter are mirrored into the World's NodeHotState SoA block
// when the buffer belongs to a World node (hot != nullptr), letting the
// occupancy/idle phases stream arrays instead of chasing Node pointers.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/hot_state.hpp"
#include "src/core/message.hpp"
#include "src/core/message_arena.hpp"
#include "src/core/types.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

/// Serializes one Message (all fields, including the spray-time lineage).
void save_message(snapshot::ArchiveWriter& out, const Message& m);
Message load_message(snapshot::ArchiveReader& in);

class Buffer {
 public:
  using Handle = MessageArena::Handle;

  /// `hot`/`owner` bind the byte/revision mirrors to a NodeHotState row;
  /// pass nullptr (tests, standalone construction) to keep them local.
  Buffer(std::int64_t capacity_bytes, MessageArena& arena,
         NodeHotState* hot = nullptr, NodeId owner = 0);
  ~Buffer();
  Buffer(Buffer&& other) noexcept = default;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  Buffer& operator=(Buffer&&) = delete;

  /// Arrival-ordered read view over the residents; range-for compatible,
  /// dereferencing resolves handles through the arena.
  class View {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = Message;
      using difference_type = std::ptrdiff_t;
      using pointer = const Message*;
      using reference = const Message&;
      iterator(const Handle* p, const MessageArena* arena)
          : p_(p), arena_(arena) {}
      const Message& operator*() const { return arena_->get(*p_); }
      const Message* operator->() const { return &arena_->get(*p_); }
      iterator& operator++() {
        ++p_;
        return *this;
      }
      bool operator==(const iterator& o) const { return p_ == o.p_; }
      bool operator!=(const iterator& o) const { return p_ != o.p_; }

     private:
      const Handle* p_;
      const MessageArena* arena_;
    };

    std::size_t size() const { return handles_->size(); }
    bool empty() const { return handles_->empty(); }
    const Message& operator[](std::size_t i) const {
      return arena_->get((*handles_)[i]);
    }
    iterator begin() const { return iterator(handles_->data(), arena_); }
    iterator end() const {
      return iterator(handles_->data() + handles_->size(), arena_);
    }

   private:
    friend class Buffer;
    View(const std::vector<Handle>* handles, const MessageArena* arena)
        : handles_(handles), arena_(arena) {}
    const std::vector<Handle>* handles_;
    const MessageArena* arena_;
  };

  std::int64_t capacity() const { return capacity_; }
  std::int64_t used() const {
    return hot_ != nullptr ? hot_->buffer_used[owner_] : used_local_;
  }
  std::int64_t free() const { return capacity_ - used(); }
  std::size_t count() const { return handles_.size(); }
  bool empty() const { return handles_.empty(); }
  /// Occupancy in [0,1].
  double occupancy() const;

  /// Monotonic membership-change counter: bumped by every insert/remove
  /// (and by load_state). Memoized views keyed by it (the per-node
  /// send-order snapshot) go stale the moment membership churns. In-place
  /// field mutation through find()/messages() does NOT bump it — such
  /// changes must be signalled via PriorityCache::invalidate.
  std::uint64_t revision() const {
    return hot_ != nullptr ? hot_->buffer_rev[owner_] : rev_local_;
  }

  bool has(MessageId id) const;
  /// Pointer into the arena, or nullptr. Stays valid until this message
  /// itself is removed (handles are stable under other inserts/removals).
  Message* find(MessageId id);
  const Message* find(MessageId id) const;

  /// Inserts if it fits; returns false (and leaves the buffer unchanged)
  /// if free() < m.size. Duplicate ids are a precondition violation.
  bool try_insert(Message m);

  /// Removes and returns the message; precondition: it exists.
  Message take(MessageId id);

  /// Removes every message with expiry <= now, except ids in `pinned`
  /// (in-flight transfers); returns the removed messages.
  std::vector<Message> purge_expired(SimTime now,
                                     const std::vector<MessageId>& pinned);

  /// Messages in arrival order.
  View messages() const { return View(&handles_, arena_); }
  /// Arrival-ordered arena handles (hot paths that resolve themselves).
  const std::vector<Handle>& handles() const { return handles_; }
  /// The arena backing this buffer — pairs with handles() so candidate
  /// scans can stream the hot columns (dest/expiry/copies) directly.
  const MessageArena& arena() const { return *arena_; }
  /// Re-mirrors `copies` into the arena's hot column after an in-place
  /// mutation (routers decrement it through find()); call alongside
  /// PriorityCache::invalidate. No-op when the message is absent.
  void refresh_hot(MessageId id);
  /// Pre-sizes the handle span (sizing hygiene for large-N scenarios).
  void reserve_handles(std::size_t n) { handles_.reserve(n); }

  /// Snapshot/restore: arrival order is preserved bit-for-bit (FIFO
  /// policies depend on it); capacity is verified, not overwritten.
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  void set_used(std::int64_t v) {
    if (hot_ != nullptr) {
      hot_->buffer_used[owner_] = v;
    } else {
      used_local_ = v;
    }
  }
  void bump_revision() {
    if (hot_ != nullptr) {
      ++hot_->buffer_rev[owner_];
    } else {
      ++rev_local_;
    }
  }
  void set_revision(std::uint64_t r) {
    if (hot_ != nullptr) {
      hot_->buffer_rev[owner_] = r;
    } else {
      rev_local_ = r;
    }
  }

  MessageArena* arena_;
  NodeHotState* hot_;
  NodeId owner_;
  std::int64_t capacity_;
  std::int64_t used_local_ = 0;
  std::uint64_t rev_local_ = 0;
  std::vector<Handle> handles_;  ///< arrival order
};

}  // namespace dtn
