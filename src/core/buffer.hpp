// Buffer: a node's byte-limited message store.
//
// Storage order is arrival order (FIFO policies depend on it). The buffer
// itself never decides *what* to drop — admission control with
// policy-driven eviction lives in Node::admit (Algorithm 1 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/message.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

/// Serializes one Message (all fields, including the spray-time lineage).
void save_message(snapshot::ArchiveWriter& out, const Message& m);
Message load_message(snapshot::ArchiveReader& in);

class Buffer {
 public:
  explicit Buffer(std::int64_t capacity_bytes);

  std::int64_t capacity() const { return capacity_; }
  std::int64_t used() const { return used_; }
  std::int64_t free() const { return capacity_ - used_; }
  std::size_t count() const { return messages_.size(); }
  bool empty() const { return messages_.empty(); }
  /// Occupancy in [0,1].
  double occupancy() const;

  /// Monotonic membership-change counter: bumped by every insert/remove
  /// (and by load_state). Memoized views keyed by it (the per-node
  /// send-order snapshot) go stale the moment membership churns. In-place
  /// field mutation through find()/messages() does NOT bump it — such
  /// changes must be signalled via PriorityCache::invalidate.
  std::uint64_t revision() const { return revision_; }

  bool has(MessageId id) const;
  /// Pointer into the buffer, or nullptr. Invalidated by insert/remove.
  Message* find(MessageId id);
  const Message* find(MessageId id) const;

  /// Inserts if it fits; returns false (and leaves the buffer unchanged)
  /// if free() < m.size. Duplicate ids are a precondition violation.
  bool try_insert(Message m);

  /// Removes and returns the message; precondition: it exists.
  Message take(MessageId id);

  /// Removes every message with expiry <= now, except ids in `pinned`
  /// (in-flight transfers); returns the removed messages.
  std::vector<Message> purge_expired(SimTime now,
                                     const std::vector<MessageId>& pinned);

  /// Messages in arrival order.
  const std::vector<Message>& messages() const { return messages_; }
  std::vector<Message>& messages() { return messages_; }

  /// Snapshot/restore: arrival order is preserved bit-for-bit (FIFO
  /// policies depend on it); capacity is verified, not overwritten.
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  std::int64_t capacity_;
  std::int64_t used_ = 0;
  std::uint64_t revision_ = 0;
  std::vector<Message> messages_;
};

}  // namespace dtn
