// MessageArena: slab-pooled storage for every Message copy in a World.
//
// Per-node buffers used to own their copies in a std::vector<Message>
// each — at 100k nodes that is 100k independently growing heaps of
// pointer-chased storage. The arena packs all copies into fixed-size
// slabs addressed by stable 32-bit handles: a buffer becomes a span of
// handle indices, insertion/removal never moves other residents'
// storage, and a freed slot is recycled LIFO (its spray_times capacity
// included) so the steady-state step loop performs no heap allocation.
//
// Handles are stable for the lifetime of the allocation: slabs are never
// reallocated or compacted, so Message* obtained through get() stays
// valid until the handle is freed — the same invalidation contract
// Buffer::find() always had (insert/remove of *other* messages no longer
// invalidates, which is strictly weaker).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/message.hpp"

namespace dtn {

class MessageArena {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNullHandle = 0xFFFFFFFFu;

  MessageArena() = default;
  MessageArena(const MessageArena&) = delete;
  MessageArena& operator=(const MessageArena&) = delete;

  /// Moves `m` into a slot and returns its handle. Recycles the youngest
  /// freed slot first; the freed slot's spray_times capacity is kept when
  /// the incoming message brings none of its own.
  Handle alloc(Message&& m);

  /// Moves the message out and frees the slot.
  Message release(Handle h);

  /// Frees the slot in place (content is cleared lazily on reuse).
  void free(Handle h);

  Message& get(Handle h) {
    return slabs_[h >> kSlabShift][h & kSlabMask];
  }
  const Message& get(Handle h) const {
    return slabs_[h >> kSlabShift][h & kSlabMask];
  }
  bool is_live(Handle h) const {
    return h < live_.size() && live_[h] != 0;
  }

  // --- hot columns (SoA phase 2, DESIGN.md §16) ---
  // Per-slot mirrors of the Message fields the candidate scans filter
  // by, packed in parallel arrays so a buffer sweep streams 4/8-byte
  // rows instead of resolving whole Message objects. `dest`/`expiry`
  // are immutable per allocation and written once in alloc();
  // `copies` is additionally refreshed via sync_copies whenever a
  // router mutates the field in place (World does this after on_sent).
  // Dead slots hold stale values — readers must only index handles they
  // know to be live (a Buffer's own span always is).
  NodeId dest_of(Handle h) const { return hot_dest_[h]; }
  SimTime expiry_of(Handle h) const { return hot_expiry_[h]; }
  int copies_of(Handle h) const { return hot_copies_[h]; }
  void sync_copies(Handle h) { hot_copies_[h] = get(h).copies; }

  /// Pre-sizes slabs, flags and the free list for `n` total slots so
  /// reaching that population allocates nothing inside the step loop.
  void reserve(std::size_t n);

  // --- accounting (fuzzed in test_message_arena) ---
  std::size_t live_count() const { return live_count_; }
  std::int64_t live_bytes() const { return live_bytes_; }
  std::size_t free_count() const { return free_list_.size(); }
  /// Total slots ever created == live_count() + free_count().
  std::size_t high_water() const { return next_; }
  std::uint64_t total_allocs() const { return total_allocs_; }
  std::uint64_t total_frees() const { return total_frees_; }
  std::size_t slab_count() const { return slabs_.size(); }

 private:
  static constexpr std::uint32_t kSlabShift = 12;  ///< 4096 slots per slab
  static constexpr std::uint32_t kSlabMask = (1u << kSlabShift) - 1u;

  Handle take_slot();

  std::vector<std::unique_ptr<Message[]>> slabs_;
  std::vector<Handle> free_list_;      ///< LIFO recycling
  std::vector<std::uint8_t> live_;     ///< per-slot liveness, size next_
  std::vector<NodeId> hot_dest_;       ///< parallel column, size next_
  std::vector<SimTime> hot_expiry_;    ///< parallel column, size next_
  std::vector<int> hot_copies_;        ///< parallel column, size next_
  std::uint32_t next_ = 0;             ///< first never-used handle
  std::size_t live_count_ = 0;
  std::int64_t live_bytes_ = 0;
  std::uint64_t total_allocs_ = 0;
  std::uint64_t total_frees_ = 0;
};

}  // namespace dtn
