// WorldObserver: event hooks for report generation and instrumentation,
// mirroring the ONE simulator's report-listener architecture. Observers
// are non-owning and are invoked synchronously from the kernel in
// deterministic order (registration order).
#pragma once

#include "src/core/message.hpp"
#include "src/core/types.hpp"
#include "src/net/contact_tracker.hpp"

namespace dtn {

class World;
struct Transfer;

class WorldObserver {
 public:
  virtual ~WorldObserver() = default;

  /// A new message entered the network at its source.
  virtual void on_message_created(const Message& m, SimTime now) {
    (void)m;
    (void)now;
  }

  /// First-time arrival at the destination.
  virtual void on_delivery(const Message& copy, NodeId from, NodeId to,
                           SimTime now) {
    (void)copy;
    (void)from;
    (void)to;
    (void)now;
  }

  virtual void on_transfer_started(const Transfer& t) { (void)t; }
  /// `delivered` is true when the receiver was the destination.
  virtual void on_transfer_completed(const Transfer& t, bool delivered) {
    (void)t;
    (void)delivered;
  }
  virtual void on_transfer_aborted(const Transfer& t) { (void)t; }

  /// A buffer eviction decided by the active policy.
  virtual void on_drop(NodeId node, const Message& m, SimTime now) {
    (void)node;
    (void)m;
    (void)now;
  }

  /// A copy removed because its TTL ran out.
  virtual void on_ttl_expired(NodeId node, const Message& m, SimTime now) {
    (void)node;
    (void)m;
    (void)now;
  }

  virtual void on_link_up(const NodePair& p, SimTime now) {
    (void)p;
    (void)now;
  }
  virtual void on_link_down(const NodePair& p, SimTime now) {
    (void)p;
    (void)now;
  }

  /// Called at the end of every kernel step.
  virtual void on_step_end(const World& world) { (void)world; }
};

}  // namespace dtn
