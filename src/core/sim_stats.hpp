// SimStats: the metric counters the paper's evaluation reports, with the
// same definitions the ONE simulator uses.
#pragma once

#include <cstddef>

#include "src/util/stats.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

struct SimStats {
  std::size_t created = 0;              ///< messages generated
  std::size_t delivered = 0;            ///< first-time destination arrivals
  std::size_t transfers_started = 0;
  std::size_t transfers_completed = 0;  ///< "relayed" in ONE terms
  std::size_t transfers_aborted = 0;    ///< link broke mid-transfer
  std::size_t admission_rejected = 0;   ///< receiver refused at completion
  std::size_t duplicates = 0;           ///< arrival of an already-held copy
  std::size_t drops = 0;                ///< policy evictions (overflow)
  std::size_t ttl_expired = 0;          ///< copies removed by TTL
  std::size_t source_rejected = 0;      ///< new message refused at creation
  std::size_t ack_purged = 0;           ///< copies removed by ACK gossip

  // Fault injection (zero unless a FaultPlan is active).
  /// Completed outage seconds, summed over reboots (a node still down at
  /// the end of the run contributes nothing).
  double downtime_s = 0.0;
  std::size_t faulted_aborts = 0;  ///< aborts caused by the fault layer
  std::size_t reboot_purged = 0;   ///< copies lost to Fault.rebootPurge

  RunningStats hopcounts;         ///< hops of each first delivery
  RunningStats latency;           ///< creation->delivery delay (s)
  RunningStats buffer_occupancy;  ///< sampled occupancy in [0,1]

  /// Delivered / created (paper metric 1).
  double delivery_ratio() const {
    return created ? static_cast<double>(delivered) /
                         static_cast<double>(created)
                   : 0.0;
  }

  /// Mean hops over successful deliveries (paper metric 2).
  double avg_hopcount() const { return hopcounts.mean(); }

  /// (relayed - delivered) / delivered (paper metric 3). Zero when nothing
  /// was delivered.
  double overhead_ratio() const {
    return delivered ? (static_cast<double>(transfers_completed) -
                        static_cast<double>(delivered)) /
                           static_cast<double>(delivered)
                     : 0.0;
  }

  /// Mean end-to-end delay of successful deliveries.
  double avg_latency() const { return latency.mean(); }

  /// Snapshot/restore of every counter and accumulator.
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);
};

}  // namespace dtn
