// Node: a DTN host — mobility + radio + buffer + routing + per-node SDSRP
// state (intermeeting estimator and dropped-list record).
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "src/core/buffer.hpp"
#include "src/core/buffer_policy.hpp"
#include "src/core/message.hpp"
#include "src/core/priority_cache.hpp"
#include "src/core/types.hpp"
#include "src/mobility/mobility_model.hpp"
#include "src/sdsrp/dropped_list.hpp"
#include "src/sdsrp/intermeeting_estimator.hpp"

namespace dtn {

class Router;

/// Per-node knobs for the distributed SDSRP estimators.
struct NodeEstimatorConfig {
  double prior_mean_intermeeting = 30000.0;  ///< E(I) before warm-up (s)
  std::size_t min_intermeeting_samples = 4;  ///< warm-up threshold
  sdsrp::ImtEstimatorMode imt_mode =
      sdsrp::ImtEstimatorMode::kNaiveMean;     ///< see estimator header
};

class Node {
 public:
  /// Message copies live in `arena` (shared, World-owned in simulation;
  /// test-local otherwise). `hot` binds this node's radio/buffer scalars
  /// to the World's SoA block (nullptr keeps them in local fallbacks).
  Node(NodeId id, MobilityPtr mobility, std::int64_t buffer_capacity,
       const Router* router, const BufferPolicy* policy, MessageArena& arena,
       const NodeEstimatorConfig& est_cfg = {}, NodeHotState* hot = nullptr);

  NodeId id() const { return id_; }
  MobilityModel& mobility() { return *mobility_; }
  const MobilityModel& mobility() const { return *mobility_; }
  Buffer& buffer() { return buffer_; }
  const Buffer& buffer() const { return buffer_; }
  const Router& router() const { return *router_; }
  const BufferPolicy& policy() const { return *policy_; }

  // --- delivery bookkeeping (this node as destination) ---
  bool has_delivered(MessageId id) const { return delivered_.count(id) > 0; }
  void mark_delivered(MessageId id) { delivered_.insert(id); }

  // --- ACK gossip (optional immunization extension; the paper's setup
  //     explicitly runs *without* this — see WorldConfig::ack_gossip) ---
  bool knows_delivered(MessageId id) const {
    return known_delivered_.count(id) > 0;
  }
  void learn_delivered(MessageId id) { known_delivered_.insert(id); }
  const std::unordered_set<MessageId>& known_delivered() const {
    return known_delivered_;
  }

  // --- SDSRP distributed state ---
  sdsrp::IntermeetingEstimator& intermeeting() { return imt_; }
  const sdsrp::IntermeetingEstimator& intermeeting() const { return imt_; }
  sdsrp::DroppedList& dropped_list() { return dropped_; }
  const sdsrp::DroppedList& dropped_list() const { return dropped_; }

  // --- priority memoization (see priority_cache.hpp) ---
  // The kernel mutates estimator/dropped-list state through these
  // wrappers so every change carries its invalidation signal. Mutating
  // intermeeting()/dropped_list() directly bypasses the cache — fine for
  // tests and cache-off runs, stale otherwise.
  /// Mutable from const contexts: the cache is a memo, not node state.
  PriorityCache& priority_cache() const { return prio_cache_; }
  void note_contact_start(std::size_t peer, SimTime now) {
    imt_.on_contact_start(peer, now);
    prio_cache_.bump_epoch();  // λ changed: every priority is stale
  }
  void note_contact_end(std::size_t peer, SimTime now) {
    imt_.on_contact_end(peer, now);
    prio_cache_.bump_epoch();
  }
  void merge_dropped_from(const Node& other) {
    // d̂ only moves when a record is adopted; bump (and its digest
    // footprint) must not depend on whether caching is enabled, so the
    // merge result alone decides.
    if (dropped_.merge_from(other.dropped_list())) prio_cache_.bump_epoch();
  }
  void record_drop(MessageId id, SimTime now) {
    dropped_.record_local_drop(id, now);
    prio_cache_.invalidate(id);  // only this message's d̂ changed
  }
  /// True if this node itself dropped the message before (receive-reject,
  /// only meaningful when the active policy maintains dropped lists).
  bool has_dropped(MessageId id) const { return dropped_.has_own_drop(id); }

  // --- radio / transfer state (maintained by the kernel) ---
  bool radio_busy() const {
    return hot_ != nullptr ? hot_->radio_busy[id_] != 0 : radio_busy_;
  }
  void set_radio_busy(bool b) {
    if (hot_ != nullptr) {
      hot_->radio_busy[id_] = b ? 1 : 0;
    } else {
      radio_busy_ = b;
    }
  }
  void pin(MessageId id) { pinned_.push_back(id); }
  void unpin(MessageId id);
  bool is_pinned(MessageId id) const;
  const std::vector<MessageId>& pinned() const { return pinned_; }

  // --- admission control (paper Algorithm 1) ---
  struct AdmitResult {
    bool admitted = false;
    std::vector<Message> evicted;  ///< resident messages dropped to fit
  };

  /// Dry run of admit(): would `incoming` be accepted right now?
  /// `newcomer_view`, when given, is the message state the policy rates
  /// the newcomer by (e.g. the sender-side pre-split copy) while byte
  /// accounting still uses `incoming`.
  bool would_admit(const Message& incoming, const PolicyContext& ctx,
                   const Message* newcomer_view = nullptr) const;

  /// Runs the scheduling-and-drop admission: evicts lowest-priority
  /// resident messages (never pinned ones) until `incoming` fits, or
  /// rejects `incoming` when the policy ranks it below every evictable
  /// resident. On success the message is inserted.
  AdmitResult admit(Message incoming, const PolicyContext& ctx,
                    const Message* newcomer_view = nullptr);

  /// Snapshot/restore of everything node-local: mobility, buffer, SDSRP
  /// estimators, delivery bookkeeping, pin list and radio state.
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  /// Shared victim-selection loop; `victims` receives resident victims in
  /// eviction order. Returns true if `incoming` would be admitted.
  bool plan_admission(const Message& incoming, const PolicyContext& ctx,
                      const Message* newcomer_view,
                      std::vector<MessageId>* victims) const;

  NodeId id_;
  NodeHotState* hot_;  ///< World SoA block, or nullptr standalone
  MobilityPtr mobility_;
  Buffer buffer_;
  const Router* router_;
  const BufferPolicy* policy_;
  sdsrp::IntermeetingEstimator imt_;
  sdsrp::DroppedList dropped_;
  std::unordered_set<MessageId> delivered_;
  std::unordered_set<MessageId> known_delivered_;
  std::vector<MessageId> pinned_;
  bool radio_busy_ = false;
  mutable PriorityCache prio_cache_;
};

}  // namespace dtn
