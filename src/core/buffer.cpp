#include "src/core/buffer.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace dtn {

Buffer::Buffer(std::int64_t capacity_bytes) : capacity_(capacity_bytes) {
  DTN_REQUIRE(capacity_bytes > 0, "Buffer: capacity must be positive");
}

double Buffer::occupancy() const {
  return capacity_ > 0
             ? static_cast<double>(used_) / static_cast<double>(capacity_)
             : 0.0;
}

bool Buffer::has(MessageId id) const { return find(id) != nullptr; }

Message* Buffer::find(MessageId id) {
  for (auto& m : messages_) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

const Message* Buffer::find(MessageId id) const {
  return const_cast<Buffer*>(this)->find(id);
}

bool Buffer::try_insert(Message m) {
  DTN_REQUIRE(!has(m.id), "Buffer: duplicate message id");
  DTN_REQUIRE(m.size > 0, "Buffer: message size must be positive");
  if (m.size > free()) return false;
  used_ += m.size;
  messages_.push_back(std::move(m));
  return true;
}

Message Buffer::take(MessageId id) {
  const auto it =
      std::find_if(messages_.begin(), messages_.end(),
                   [id](const Message& m) { return m.id == id; });
  DTN_REQUIRE(it != messages_.end(), "Buffer: take of absent message");
  Message out = std::move(*it);
  messages_.erase(it);
  used_ -= out.size;
  return out;
}

std::vector<Message> Buffer::purge_expired(
    SimTime now, const std::vector<MessageId>& pinned) {
  std::vector<Message> removed;
  auto is_pinned = [&pinned](MessageId id) {
    return std::find(pinned.begin(), pinned.end(), id) != pinned.end();
  };
  for (auto it = messages_.begin(); it != messages_.end();) {
    if (it->expired(now) && !is_pinned(it->id)) {
      used_ -= it->size;
      removed.push_back(std::move(*it));
      it = messages_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace dtn
