#include "src/core/buffer.hpp"

#include <algorithm>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

Buffer::Buffer(std::int64_t capacity_bytes, MessageArena& arena,
               NodeHotState* hot, NodeId owner)
    : arena_(&arena), hot_(hot), owner_(owner), capacity_(capacity_bytes) {
  DTN_REQUIRE(capacity_bytes > 0, "Buffer: capacity must be positive");
}

Buffer::~Buffer() {
  for (Handle h : handles_) arena_->free(h);
}

double Buffer::occupancy() const {
  return capacity_ > 0
             ? static_cast<double>(used()) / static_cast<double>(capacity_)
             : 0.0;
}

bool Buffer::has(MessageId id) const { return find(id) != nullptr; }

Message* Buffer::find(MessageId id) {
  for (Handle h : handles_) {
    Message& m = arena_->get(h);
    if (m.id == id) return &m;
  }
  return nullptr;
}

const Message* Buffer::find(MessageId id) const {
  return const_cast<Buffer*>(this)->find(id);
}

void Buffer::refresh_hot(MessageId id) {
  for (Handle h : handles_) {
    if (arena_->get(h).id == id) {
      arena_->sync_copies(h);
      return;
    }
  }
}

bool Buffer::try_insert(Message m) {
  DTN_REQUIRE(!has(m.id), "Buffer: duplicate message id");
  DTN_REQUIRE(m.size > 0, "Buffer: message size must be positive");
  if (m.size > free()) return false;
  set_used(used() + m.size);
  bump_revision();
  handles_.push_back(arena_->alloc(std::move(m)));
  return true;
}

Message Buffer::take(MessageId id) {
  const auto it = std::find_if(
      handles_.begin(), handles_.end(),
      [this, id](Handle h) { return arena_->get(h).id == id; });
  DTN_REQUIRE(it != handles_.end(), "Buffer: take of absent message");
  Message out = arena_->release(*it);
  handles_.erase(it);
  set_used(used() - out.size);
  bump_revision();
  return out;
}

void save_message(snapshot::ArchiveWriter& out, const Message& m) {
  out.u64(m.id);
  out.u32(m.source);
  out.u32(m.destination);
  out.i64(m.size);
  out.f64(m.created);
  out.f64(m.ttl);
  out.i64(m.initial_copies);
  out.i64(m.copies);
  out.i64(m.hops);
  out.i64(m.forwards);
  out.f64(m.received);
  out.u64(m.spray_times.size());
  for (SimTime t : m.spray_times) out.f64(t);
}

Message load_message(snapshot::ArchiveReader& in) {
  Message m;
  m.id = in.u64();
  m.source = in.u32();
  m.destination = in.u32();
  m.size = in.i64();
  m.created = in.f64();
  m.ttl = in.f64();
  m.initial_copies = static_cast<int>(in.i64());
  m.copies = static_cast<int>(in.i64());
  m.hops = static_cast<int>(in.i64());
  m.forwards = static_cast<int>(in.i64());
  m.received = in.f64();
  const std::uint64_t n_spray = in.u64();
  m.spray_times.reserve(n_spray);
  for (std::uint64_t i = 0; i < n_spray; ++i) m.spray_times.push_back(in.f64());
  return m;
}

void Buffer::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("buffer");
  out.i64(capacity_);
  // The revision counter is derived-but-deterministic (one bump per
  // membership change), so it is digest-safe; restoring it keeps
  // revision-keyed memo snapshots valid across checkpoint/restore.
  out.u64(revision());
  out.u64(handles_.size());
  for (Handle h : handles_) save_message(out, arena_->get(h));
  out.end_section();
}

void Buffer::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("buffer");
  const std::int64_t capacity = in.i64();
  DTN_REQUIRE(capacity == capacity_,
              "buffer: snapshot capacity does not match this world");
  if (in.version() >= 2) {
    set_revision(in.u64());
  } else {
    // v1 predates the counter; restart it. Every revision-keyed memo is
    // also cleared on load, so nothing holds a stale revision.
    set_revision(0);
  }
  for (Handle h : handles_) arena_->free(h);
  handles_.clear();
  std::int64_t used = 0;
  const std::uint64_t n = in.u64();
  handles_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Message m = load_message(in);
    used += m.size;
    handles_.push_back(arena_->alloc(std::move(m)));
  }
  set_used(used);
  DTN_REQUIRE(used <= capacity_, "buffer: snapshot overflows capacity");
  in.end_section();
}

std::vector<Message> Buffer::purge_expired(
    SimTime now, const std::vector<MessageId>& pinned) {
  std::vector<Message> removed;
  auto is_pinned = [&pinned](MessageId id) {
    return std::find(pinned.begin(), pinned.end(), id) != pinned.end();
  };
  std::size_t keep = 0;
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    const Handle h = handles_[i];
    const Message& m = arena_->get(h);
    if (m.expired(now) && !is_pinned(m.id)) {
      set_used(used() - m.size);
      bump_revision();
      removed.push_back(arena_->release(h));
    } else {
      handles_[keep++] = h;  // compact, preserving arrival order
    }
  }
  handles_.resize(keep);
  return removed;
}

}  // namespace dtn
