// GlobalRegistry: omniscient per-message bookkeeping.
//
// The simulator maintains ground-truth m_i (nodes that have ever held a
// copy, excluding the source), n_i (nodes currently holding) and drop
// counts for every message. It serves three purposes:
//   * the SDSRP-Oracle policy (paper's "centralized control channel"
//     assumption in Section III-C) reads it instead of the distributed
//     estimators — an upper bound for the estimator ablation;
//   * the estimator-accuracy ablation bench compares m̂/n̂ against it;
//   * consistency checks in integration tests.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "src/core/types.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

class GlobalRegistry {
 public:
  void on_created(MessageId id, NodeId source);

  /// A node received its (first current) copy of the message.
  void on_copy_received(MessageId id, NodeId holder);

  /// A node no longer holds the message; `dropped` distinguishes a buffer
  /// drop from TTL expiry / custody forwarding.
  void on_copy_removed(MessageId id, NodeId holder, bool dropped);

  /// m_i(T_i): nodes that have ever held a copy, excluding the source.
  double m_seen(MessageId id) const;
  /// n_i(T_i): nodes currently holding at least one copy.
  double n_holding(MessageId id) const;
  /// Number of drop events recorded for the message.
  double drops(MessageId id) const;

  bool known(MessageId id) const { return entries_.count(id) > 0; }

  /// Snapshot/restore of all per-message ground-truth entries.
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  struct Entry {
    NodeId source = kNoNode;
    std::unordered_set<NodeId> seen;     ///< ever held, excluding source
    std::unordered_set<NodeId> holders;  ///< currently holding
    int drops = 0;
  };
  const Entry* entry(MessageId id) const;

  std::unordered_map<MessageId, Entry> entries_;
};

}  // namespace dtn
