// Router: the forwarding logic run at every contact opportunity.
//
// The kernel drives routers through three hooks: pick the next message to
// transfer on an idle link, mutate the sender's copy once a transfer
// completes, and mint the receiver's copy for relays.
#pragma once

#include <optional>

#include "src/core/buffer_policy.hpp"
#include "src/core/message.hpp"

namespace dtn {

class Node;

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

class Router {
 public:
  virtual ~Router() = default;

  virtual const char* name() const = 0;

  /// The next message `self` should transmit to `peer`, or nullopt when
  /// nothing (more) is worth sending on this contact. Implementations must
  /// check receiver-side admission (Node::would_admit) so the kernel does
  /// not start doomed transfers, and must order candidates through the
  /// sender's BufferPolicy.
  virtual std::optional<MessageId> next_to_send(
      const Node& self, const Node& peer, const PolicyContext& ctx) const = 0;

  /// Called on the sender's buffered copy after a completed transfer.
  /// `delivered` is true when the receiver was the destination.
  /// Returns true to keep the sender's copy, false to relinquish custody
  /// (single-copy forwarding semantics).
  virtual bool on_sent(Message& copy, bool delivered, SimTime now) const = 0;

  /// Builds the receiver's copy for a (non-delivery) relay of
  /// `sender_copy`, before on_sent has mutated the sender.
  virtual Message make_relay_copy(const Message& sender_copy,
                                  SimTime now) const = 0;

  /// When true, receiver-side admission (Algorithm 1) rates the arriving
  /// message by its pre-transfer state — the sender's copy — rather than
  /// by the post-split relay copy. The split is then part of accepting
  /// the transfer, not a discount applied before the drop decision.
  virtual bool rate_newcomer_as_sender_copy() const { return false; }

  /// Called once when a contact between `a` and `b` is established —
  /// routers with encounter-driven state (PRoPHET predictabilities,
  /// focus-phase utilities) update it here.
  virtual void on_link_up(const Node& a, const Node& b, SimTime now) const {
    (void)a;
    (void)b;
    (void)now;
  }

  /// Snapshot/restore of router-owned state. Stateless routers (the
  /// default) write and read nothing.
  virtual void save_state(snapshot::ArchiveWriter& out) const { (void)out; }
  virtual void load_state(snapshot::ArchiveReader& in) { (void)in; }
};

}  // namespace dtn
