// Message: one node's copy of a DTN bundle.
//
// Identity fields (id, source, destination, size, created, ttl,
// initial_copies) are shared by every copy of the same message; the
// remaining fields are per-copy state that evolves as the copy is relayed:
// Spray-and-Wait's copy counter, the hop count of this particular copy's
// path, and the binary-spray timestamp lineage SDSRP's m_i estimator
// consumes (Eq. 15).
#pragma once

#include <vector>

#include "src/core/types.hpp"

namespace dtn {

struct Message {
  // --- shared identity ---
  MessageId id = 0;
  NodeId source = kNoNode;
  NodeId destination = kNoNode;
  std::int64_t size = 0;      ///< bytes
  SimTime created = 0.0;
  double ttl = 0.0;           ///< lifetime in seconds
  int initial_copies = 1;     ///< C: the Spray-and-Wait copy budget

  // --- per-copy state ---
  int copies = 1;             ///< C_i: copies this node is custodian of
  int hops = 0;               ///< relays this copy took from the source
  int forwards = 0;           ///< times this node forwarded the copy (MOFO)
  SimTime received = 0.0;     ///< when this copy entered the local buffer
  std::vector<SimTime> spray_times;  ///< lineage binary-spray timestamps

  SimTime expiry() const { return created + ttl; }
  bool expired(SimTime now) const { return now >= expiry(); }
  double remaining_ttl(SimTime now) const { return expiry() - now; }
  double elapsed(SimTime now) const { return now - created; }
};

}  // namespace dtn
