// SimStats is header-only today; this TU anchors the target and keeps a
// single definition point if out-of-line members are added later.
#include "src/core/sim_stats.hpp"
