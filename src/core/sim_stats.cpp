#include "src/core/sim_stats.hpp"

#include "src/snapshot/archive.hpp"

namespace dtn {

void SimStats::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("stats");
  out.u64(created);
  out.u64(delivered);
  out.u64(transfers_started);
  out.u64(transfers_completed);
  out.u64(transfers_aborted);
  out.u64(admission_rejected);
  out.u64(duplicates);
  out.u64(drops);
  out.u64(ttl_expired);
  out.u64(source_rejected);
  out.u64(ack_purged);
  out.f64(downtime_s);
  out.u64(faulted_aborts);
  out.u64(reboot_purged);
  snapshot::write_running_stats(out, hopcounts);
  snapshot::write_running_stats(out, latency);
  snapshot::write_running_stats(out, buffer_occupancy);
  out.end_section();
}

void SimStats::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("stats");
  created = static_cast<std::size_t>(in.u64());
  delivered = static_cast<std::size_t>(in.u64());
  transfers_started = static_cast<std::size_t>(in.u64());
  transfers_completed = static_cast<std::size_t>(in.u64());
  transfers_aborted = static_cast<std::size_t>(in.u64());
  admission_rejected = static_cast<std::size_t>(in.u64());
  duplicates = static_cast<std::size_t>(in.u64());
  drops = static_cast<std::size_t>(in.u64());
  ttl_expired = static_cast<std::size_t>(in.u64());
  source_rejected = static_cast<std::size_t>(in.u64());
  ack_purged = static_cast<std::size_t>(in.u64());
  if (in.version() >= 4) {
    downtime_s = in.f64();
    faulted_aborts = static_cast<std::size_t>(in.u64());
    reboot_purged = static_cast<std::size_t>(in.u64());
  } else {
    downtime_s = 0.0;  // pre-fault archive: the counters never moved
    faulted_aborts = 0;
    reboot_purged = 0;
  }
  snapshot::read_running_stats(in, hopcounts);
  snapshot::read_running_stats(in, latency);
  snapshot::read_running_stats(in, buffer_occupancy);
  in.end_section();
}

}  // namespace dtn
