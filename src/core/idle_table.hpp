// IdleTable: flat open-addressing map of directional contact pairs to
// cached "nothing to send" verdicts (see World::try_start).
//
// The memo is consulted up to twice per active contact per step; the
// former std::map cost one pointer-chasing tree walk (plus a node
// allocation per insert) per lookup, which dominates the start_transfers
// phase at large N. This table is a power-of-two open-addressing array
// with tombstone deletion: lookups are one hash and a short linear probe,
// inserts allocate only on growth (amortized, and bounded by the number
// of distinct directional pairs ever idle at once).
//
// Serialization iterates in ascending (from, to) key order, reproducing
// the std::map byte stream exactly — the archive format is unchanged.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/core/types.hpp"

namespace dtn {

/// Cached "nothing to send" verdict of `try_start(from, to)`. Valid
/// while neither endpoint's priority-input fingerprint (cache stamp +
/// buffer revision) changes and the refresh quantum has not elapsed;
/// every event that could create a sendable candidate — an insert, a
/// drop, a copy-count change, an estimator or dropped-list update —
/// moves one of the four counters. Entries die with their link.
struct IdleMemo {
  SimTime at = 0.0;
  std::uint64_t from_stamp = 0;
  std::uint64_t from_rev = 0;
  std::uint64_t to_stamp = 0;
  std::uint64_t to_rev = 0;
};

class IdleTable {
 public:
  IdleTable() = default;

  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    live_ = 0;
    used_ = 0;
  }

  /// Pre-sizes for n entries without rehash churn on the way there.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 7 < n * 10) cap <<= 1;  // keep load factor under 0.7
    if (cap > keys_.size()) rehash(cap);
  }

  const IdleMemo* find(NodeId from, NodeId to) const {
    if (keys_.empty()) return nullptr;
    const std::uint64_t key = pack(from, to);
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
      if (keys_[i] == key) return &memos_[i];
      if (keys_[i] == kEmpty) return nullptr;
    }
  }

  void insert_or_assign(NodeId from, NodeId to, const IdleMemo& m) {
    if (keys_.empty() || (used_ + 1) * 10 > keys_.size() * 7) {
      rehash(std::max<std::size_t>(kMinCapacity, keys_.size() * 2));
    }
    const std::uint64_t key = pack(from, to);
    const std::size_t mask = keys_.size() - 1;
    std::size_t slot = SIZE_MAX;  // first tombstone on the probe path
    for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
      if (keys_[i] == key) {
        memos_[i] = m;
        return;
      }
      if (keys_[i] == kTombstone) {
        if (slot == SIZE_MAX) slot = i;
        continue;
      }
      if (keys_[i] == kEmpty) {
        if (slot == SIZE_MAX) {
          slot = i;
          ++used_;  // a tombstone reuse does not extend any probe chain
        }
        keys_[slot] = key;
        memos_[slot] = m;
        ++live_;
        return;
      }
    }
  }

  void erase(NodeId from, NodeId to) {
    if (keys_.empty()) return;
    const std::uint64_t key = pack(from, to);
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
      if (keys_[i] == key) {
        keys_[i] = kTombstone;
        --live_;
        return;
      }
      if (keys_[i] == kEmpty) return;
    }
  }

  /// Visits every entry in ascending packed-key — i.e. lexicographic
  /// (from, to) — order. Serialization-only; O(n log n).
  template <typename Fn>
  void for_each_sorted(Fn&& fn) const {
    sort_scratch_.clear();
    sort_scratch_.reserve(live_);
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] < kTombstone) sort_scratch_.push_back(i);
    }
    std::sort(sort_scratch_.begin(), sort_scratch_.end(),
              [this](std::size_t a, std::size_t b) {
                return keys_[a] < keys_[b];
              });
    for (std::size_t i : sort_scratch_) {
      fn(static_cast<NodeId>(keys_[i] >> 32),
         static_cast<NodeId>(keys_[i] & 0xFFFFFFFFu), memos_[i]);
    }
  }

 private:
  // Valid keys pack two NodeIds below kNoNode, so the two top sentinel
  // values can never collide with real pairs.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  static constexpr std::uint64_t kTombstone = ~std::uint64_t{0} - 1;
  static constexpr std::size_t kMinCapacity = 64;

  static std::uint64_t pack(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) |
           static_cast<std::uint64_t>(to);
  }
  static std::uint64_t mix(std::uint64_t x) {  // splitmix64 finalizer
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  void rehash(std::size_t cap) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<IdleMemo> old_memos = std::move(memos_);
    keys_.assign(cap, kEmpty);
    memos_.assign(cap, IdleMemo{});
    live_ = 0;
    used_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] >= kTombstone) continue;
      insert_or_assign(static_cast<NodeId>(old_keys[i] >> 32),
                       static_cast<NodeId>(old_keys[i] & 0xFFFFFFFFu),
                       old_memos[i]);
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<IdleMemo> memos_;
  std::size_t live_ = 0;
  std::size_t used_ = 0;  ///< occupied probe anchors (live + tombstones)
  mutable std::vector<std::size_t> sort_scratch_;
};

}  // namespace dtn
