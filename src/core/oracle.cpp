#include "src/core/oracle.hpp"

#include <algorithm>
#include <vector>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

void GlobalRegistry::on_created(MessageId id, NodeId source) {
  DTN_REQUIRE(entries_.count(id) == 0, "registry: duplicate message id");
  Entry e;
  e.source = source;
  e.holders.insert(source);
  entries_.emplace(id, std::move(e));
}

void GlobalRegistry::on_copy_received(MessageId id, NodeId holder) {
  const auto it = entries_.find(id);
  DTN_REQUIRE(it != entries_.end(), "registry: receive of unknown message");
  Entry& e = it->second;
  if (holder != e.source) e.seen.insert(holder);
  e.holders.insert(holder);
}

void GlobalRegistry::on_copy_removed(MessageId id, NodeId holder,
                                     bool dropped) {
  const auto it = entries_.find(id);
  DTN_REQUIRE(it != entries_.end(), "registry: removal of unknown message");
  it->second.holders.erase(holder);
  if (dropped) ++it->second.drops;
}

const GlobalRegistry::Entry* GlobalRegistry::entry(MessageId id) const {
  const auto it = entries_.find(id);
  return it != entries_.end() ? &it->second : nullptr;
}

double GlobalRegistry::m_seen(MessageId id) const {
  const Entry* e = entry(id);
  return e ? static_cast<double>(e->seen.size()) : 0.0;
}

double GlobalRegistry::n_holding(MessageId id) const {
  const Entry* e = entry(id);
  return e ? static_cast<double>(e->holders.size()) : 0.0;
}

double GlobalRegistry::drops(MessageId id) const {
  const Entry* e = entry(id);
  return e ? static_cast<double>(e->drops) : 0.0;
}

namespace {

void write_sorted_node_set(snapshot::ArchiveWriter& out,
                           const std::unordered_set<NodeId>& s) {
  std::vector<NodeId> ids(s.begin(), s.end());
  std::sort(ids.begin(), ids.end());
  out.u64(ids.size());
  for (NodeId id : ids) out.u32(id);
}

void read_node_set(snapshot::ArchiveReader& in,
                   std::unordered_set<NodeId>& s) {
  s.clear();
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) s.insert(in.u32());
}

}  // namespace

void GlobalRegistry::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("registry");
  std::vector<MessageId> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, e] : entries_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  out.u64(ids.size());
  for (MessageId id : ids) {
    const Entry& e = entries_.at(id);
    out.u64(id);
    out.u32(e.source);
    write_sorted_node_set(out, e.seen);
    write_sorted_node_set(out, e.holders);
    out.i64(e.drops);
  }
  out.end_section();
}

void GlobalRegistry::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("registry");
  entries_.clear();
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const MessageId id = in.u64();
    Entry e;
    e.source = in.u32();
    read_node_set(in, e.seen);
    read_node_set(in, e.holders);
    e.drops = static_cast<int>(in.i64());
    entries_.emplace(id, std::move(e));
  }
  in.end_section();
}

}  // namespace dtn
