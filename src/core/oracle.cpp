#include "src/core/oracle.hpp"

#include "src/util/error.hpp"

namespace dtn {

void GlobalRegistry::on_created(MessageId id, NodeId source) {
  DTN_REQUIRE(entries_.count(id) == 0, "registry: duplicate message id");
  Entry e;
  e.source = source;
  e.holders.insert(source);
  entries_.emplace(id, std::move(e));
}

void GlobalRegistry::on_copy_received(MessageId id, NodeId holder) {
  const auto it = entries_.find(id);
  DTN_REQUIRE(it != entries_.end(), "registry: receive of unknown message");
  Entry& e = it->second;
  if (holder != e.source) e.seen.insert(holder);
  e.holders.insert(holder);
}

void GlobalRegistry::on_copy_removed(MessageId id, NodeId holder,
                                     bool dropped) {
  const auto it = entries_.find(id);
  DTN_REQUIRE(it != entries_.end(), "registry: removal of unknown message");
  it->second.holders.erase(holder);
  if (dropped) ++it->second.drops;
}

const GlobalRegistry::Entry* GlobalRegistry::entry(MessageId id) const {
  const auto it = entries_.find(id);
  return it != entries_.end() ? &it->second : nullptr;
}

double GlobalRegistry::m_seen(MessageId id) const {
  const Entry* e = entry(id);
  return e ? static_cast<double>(e->seen.size()) : 0.0;
}

double GlobalRegistry::n_holding(MessageId id) const {
  const Entry* e = entry(id);
  return e ? static_cast<double>(e->holders.size()) : 0.0;
}

double GlobalRegistry::drops(MessageId id) const {
  const Entry* e = entry(id);
  return e ? static_cast<double>(e->drops) : 0.0;
}

}  // namespace dtn
