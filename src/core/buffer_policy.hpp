// BufferPolicy: the interface every buffer-management strategy implements
// (the paper's comparison subjects: FIFO, Spray-and-Wait-O, -C, SDSRP).
//
// A policy answers two questions (Algorithm 1):
//   * when a contact cannot carry everything, which message goes first?
//   * when the buffer overflows, which message — resident or newcomer —
//     is dropped?
#pragma once

#include <vector>

#include "src/core/message.hpp"
#include "src/core/types.hpp"

namespace dtn {

class Node;
class GlobalRegistry;
struct NodeHotState;

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

/// Read-only context handed to policies and routers.
struct PolicyContext {
  SimTime now = 0.0;
  std::size_t n_nodes = 0;                 ///< N, network size
  const Node* node = nullptr;              ///< owner of the buffer at hand
  const GlobalRegistry* oracle = nullptr;  ///< ground truth (oracle policies)
  /// Priority memoization (WorldConfig::priority_cache): when set,
  /// cache-safe policies route resident-message priorities through
  /// `node`'s PriorityCache; `priority_refresh_s` bounds how long a
  /// value survives pure time decay (0 = same-instant reuse only, which
  /// is decision-identical to recomputing).
  bool cache_enabled = false;
  double priority_refresh_s = 0.0;
  /// World SoA block (SDSRP estimator mirrors, DESIGN.md §16). When set,
  /// priority kernels read `hot_mean_intermeeting(*hot, node->id(), now)`
  /// — bit-identical to the estimator member function — instead of
  /// chasing the per-node estimator object. Null for standalone nodes.
  const NodeHotState* hot = nullptr;

  /// Same context viewed from another node's buffer.
  PolicyContext viewed_from(const Node& other) const {
    PolicyContext c = *this;
    c.node = &other;
    return c;
  }
};

class BufferPolicy {
 public:
  virtual ~BufferPolicy() = default;

  virtual const char* name() const = 0;

  /// Sorts candidates most-preferred-to-send first. Must be deterministic
  /// (ties broken by message id).
  virtual void order_for_sending(std::vector<const Message*>& msgs,
                                 const PolicyContext& ctx) const = 0;

  /// Chooses the drop victim among droppable resident messages plus an
  /// optional newcomer. Returns a pointer to one element of `droppable`
  /// or `newcomer`. Preconditions: at least one candidate exists.
  virtual const Message* choose_drop(
      const std::vector<const Message*>& droppable, const Message* newcomer,
      const PolicyContext& ctx) const = 0;

  /// Parallel priority prewarm (DESIGN.md §11): computes the priorities
  /// `ctx.node` would derive lazily this instant into the node's
  /// PriorityCache *warm side-buffer*. Touches only node-local state, so
  /// distinct nodes may prewarm on different threads concurrently; the
  /// warm values are consumed on memo miss and are bit-identical to the
  /// lazy computation, so running (or skipping) the prewarm never changes
  /// a decision. Default: no-op.
  virtual void prewarm_node(const PolicyContext& ctx) const { (void)ctx; }

  /// True if prewarm_node does useful work for this policy — i.e. its
  /// priorities are expensive enough that batching them off the serial
  /// decision phase pays for the scheduling overhead. Gate, not a
  /// correctness property.
  virtual bool prewarm_worthwhile() const { return false; }

  /// True if this policy's decisions are a pure deterministic function of
  /// (message, ctx.node state, ctx.now) with a *total*, set-independent
  /// ordering — the contract that makes per-node priority memoization and
  /// send-order snapshots sound. False (the default) for policies that
  /// consume shared mutable state per evaluation (RandomPolicy's RNG
  /// stream) or read global inputs with no node-local invalidation signal
  /// (oracle/registry-backed policies).
  virtual bool cache_safe() const { return false; }

  /// True if nodes under this policy maintain and gossip the SDSRP
  /// dropped-list structure (Fig. 5).
  virtual bool uses_dropped_list() const { return false; }

  /// True if nodes additionally reject re-receiving a message in their
  /// own drop record (the paper's duplication-avoidance rule).
  virtual bool rejects_previously_dropped() const {
    return uses_dropped_list();
  }

  /// Snapshot/restore of policy-owned state. Stateless policies (the
  /// default) write and read nothing.
  virtual void save_state(snapshot::ArchiveWriter& out) const { (void)out; }
  virtual void load_state(snapshot::ArchiveReader& in) { (void)in; }
};

/// Helper base for policies expressible as one scalar priority per message:
/// send highest first, drop lowest (among residents and newcomer).
/// Ties are broken toward the smaller message id, newcomer losing ties
/// against residents with equal priority and id ordering applied last.
class ScalarBufferPolicy : public BufferPolicy {
 public:
  /// Larger = more valuable (sent earlier, dropped later).
  virtual double priority(const Message& m, const PolicyContext& ctx) const = 0;

  /// `priority(m, ctx)` memoized through ctx.node's PriorityCache when
  /// the context enables it and the policy is cache_safe(). Only call
  /// this for messages *resident* in ctx.node's buffer — the cache is
  /// keyed by message id, and only residents receive invalidation events;
  /// newcomers under admission must be rated with plain priority().
  double cached_priority(const Message& m, const PolicyContext& ctx) const;

  /// Rates every resident message whose memo entry is missing or stale
  /// and parks the results in the warm side-buffer (see BufferPolicy).
  void prewarm_node(const PolicyContext& ctx) const override;

  void order_for_sending(std::vector<const Message*>& msgs,
                         const PolicyContext& ctx) const override;
  const Message* choose_drop(const std::vector<const Message*>& droppable,
                             const Message* newcomer,
                             const PolicyContext& ctx) const override;
};

}  // namespace dtn
