#include "src/core/priority_cache.hpp"

#include <algorithm>

#include "src/snapshot/archive.hpp"

namespace dtn {

void PriorityCache::bump_epoch() {
  ++epoch_;
  ++stamp_;
  entries_.clear();
  order_valid_ = false;
  warm_.clear();  // node-wide input changed: warm values are wrong now
}

void PriorityCache::invalidate(MessageId id) {
  ++stamp_;
  entries_.erase(id);
  order_valid_ = false;
  warm_.erase(id);  // this message's warm value is wrong now
}

void PriorityCache::clear_transient() {
  entries_.clear();
  order_.clear();
  order_valid_ = false;
  warm_.clear();
  warm_at_ = -1.0;
}

bool PriorityCache::lookup(MessageId id, SimTime now, double refresh_s,
                           double* out) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  if (now - it->second.computed_at > refresh_s) return false;
  *out = it->second.priority;
  return true;
}

void PriorityCache::store(MessageId id, SimTime now, double priority) {
  entries_[id] = Entry{priority, now};
}

void PriorityCache::warm_reset(SimTime now) {
  warm_.clear();  // keeps buckets: no steady-state allocation
  warm_at_ = now;
}

void PriorityCache::warm_store(MessageId id, double priority) {
  warm_[id] = priority;
}

bool PriorityCache::warm_lookup(MessageId id, SimTime now, double* out) const {
  if (warm_at_ != now) return false;  // stale batch from an earlier step
  const auto it = warm_.find(id);
  if (it == warm_.end()) return false;
  *out = it->second;
  return true;
}

const std::vector<MessageId>* PriorityCache::send_order(
    SimTime now, double refresh_s, std::uint64_t buffer_revision) const {
  if (!order_valid_) return nullptr;
  if (buffer_revision != order_rev_) return nullptr;
  if (now - order_at_ > refresh_s) return nullptr;
  return &order_;
}

void PriorityCache::store_send_order(std::vector<MessageId> ids, SimTime now,
                                     std::uint64_t buffer_revision) {
  order_ = std::move(ids);
  order_at_ = now;
  order_rev_ = buffer_revision;
  order_valid_ = true;
}

void PriorityCache::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("prio-cache");
  out.u64(epoch_);
  out.u64(stamp_);  // deterministic (bumps are unconditional): digest-safe
  // The memo itself is a pure function of serialized state, so a
  // digest-only pass skips it: cached and uncached runs of one trajectory
  // hash identically. Buffered archives carry it so a restored run
  // continues bit-identically to an uninterrupted one even when the
  // refresh quantum would have let stale-but-valid values survive.
  if (!out.digest_only()) {
    std::vector<MessageId> ids;
    ids.reserve(entries_.size());
    for (const auto& [id, e] : entries_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    out.u64(ids.size());
    for (MessageId id : ids) {
      const Entry& e = entries_.at(id);
      out.u64(id);
      out.f64(e.priority);
      out.f64(e.computed_at);
    }
    out.boolean(order_valid_);
    if (order_valid_) {
      out.f64(order_at_);
      out.u64(order_rev_);
      out.u64(order_.size());
      for (MessageId id : order_) out.u64(id);
    }
  }
  out.end_section();
}

void PriorityCache::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("prio-cache");
  epoch_ = in.u64();
  stamp_ = in.u64();
  clear_transient();
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const MessageId id = in.u64();
    Entry e;
    e.priority = in.f64();
    e.computed_at = in.f64();
    entries_.emplace(id, e);
  }
  order_valid_ = in.boolean();
  if (order_valid_) {
    order_at_ = in.f64();
    order_rev_ = in.u64();
    const std::uint64_t n_order = in.u64();
    order_.reserve(n_order);
    for (std::uint64_t i = 0; i < n_order; ++i) order_.push_back(in.u64());
  }
  in.end_section();
}

}  // namespace dtn
