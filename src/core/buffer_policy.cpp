#include "src/core/buffer_policy.hpp"

#include <algorithm>

#include "src/core/node.hpp"
#include "src/core/priority_cache.hpp"
#include "src/util/error.hpp"

namespace dtn {

double ScalarBufferPolicy::cached_priority(const Message& m,
                                           const PolicyContext& ctx) const {
  if (!ctx.cache_enabled || ctx.node == nullptr || !cache_safe()) {
    return priority(m, ctx);
  }
  PriorityCache& cache = ctx.node->priority_cache();
  double cached = 0.0;
  if (cache.lookup(m.id, ctx.now, ctx.priority_refresh_s, &cached)) {
    return cached;
  }
  // Memo miss: consume a warm prefetched value when one exists for this
  // exact instant (it is what priority() would return — warm entries die
  // on every invalidation event), else compute. Either way the memo ends
  // up holding exactly what the lazy path would have stored.
  double p = 0.0;
  if (!cache.warm_lookup(m.id, ctx.now, &p)) p = priority(m, ctx);
  cache.store(m.id, ctx.now, p);
  return p;
}

void ScalarBufferPolicy::prewarm_node(const PolicyContext& ctx) const {
  if (!ctx.cache_enabled || ctx.node == nullptr || !cache_safe()) return;
  PriorityCache& cache = ctx.node->priority_cache();
  cache.warm_reset(ctx.now);
  double cached = 0.0;
  for (const Message& m : ctx.node->buffer().messages()) {
    if (m.expired(ctx.now)) continue;  // about to be purged; rated fresh if not
    if (cache.lookup(m.id, ctx.now, ctx.priority_refresh_s, &cached)) continue;
    cache.warm_store(m.id, priority(m, ctx));
  }
}

void ScalarBufferPolicy::order_for_sending(std::vector<const Message*>& msgs,
                                           const PolicyContext& ctx) const {
  std::vector<std::pair<double, const Message*>> keyed;
  keyed.reserve(msgs.size());
  for (const Message* m : msgs) keyed.emplace_back(cached_priority(*m, ctx), m);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second->id < b.second->id;
            });
  for (std::size_t i = 0; i < keyed.size(); ++i) msgs[i] = keyed[i].second;
}

const Message* ScalarBufferPolicy::choose_drop(
    const std::vector<const Message*>& droppable, const Message* newcomer,
    const PolicyContext& ctx) const {
  DTN_REQUIRE(!droppable.empty() || newcomer != nullptr,
              "choose_drop: no candidates");
  const Message* victim = nullptr;
  double victim_prio = 0.0;
  auto consider = [&](const Message* m) {
    const double p = cached_priority(*m, ctx);
    if (victim == nullptr || p < victim_prio ||
        (p == victim_prio && m->id > victim->id)) {
      victim = m;
      victim_prio = p;
    }
  };
  // Residents first; the newcomer becomes the victim only when its
  // priority is strictly lower than the lowest resident's (Algorithm 1's
  // "if Priority_m < Priority_l" test — ties drop the resident).
  // The newcomer is rated fresh: it is not resident in ctx.node's buffer,
  // so a memo entry under its id could describe a different copy.
  for (const Message* m : droppable) consider(m);
  if (newcomer != nullptr) {
    const double p = priority(*newcomer, ctx);
    if (victim == nullptr || p < victim_prio) victim = newcomer;
  }
  return victim;
}

}  // namespace dtn
