#include "src/core/buffer_policy.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace dtn {

void ScalarBufferPolicy::order_for_sending(std::vector<const Message*>& msgs,
                                           const PolicyContext& ctx) const {
  std::vector<std::pair<double, const Message*>> keyed;
  keyed.reserve(msgs.size());
  for (const Message* m : msgs) keyed.emplace_back(priority(*m, ctx), m);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second->id < b.second->id;
            });
  for (std::size_t i = 0; i < keyed.size(); ++i) msgs[i] = keyed[i].second;
}

const Message* ScalarBufferPolicy::choose_drop(
    const std::vector<const Message*>& droppable, const Message* newcomer,
    const PolicyContext& ctx) const {
  DTN_REQUIRE(!droppable.empty() || newcomer != nullptr,
              "choose_drop: no candidates");
  const Message* victim = nullptr;
  double victim_prio = 0.0;
  auto consider = [&](const Message* m) {
    const double p = priority(*m, ctx);
    if (victim == nullptr || p < victim_prio ||
        (p == victim_prio && m->id > victim->id)) {
      victim = m;
      victim_prio = p;
    }
  };
  // Residents first; the newcomer becomes the victim only when its
  // priority is strictly lower than the lowest resident's (Algorithm 1's
  // "if Priority_m < Priority_l" test — ties drop the resident).
  for (const Message* m : droppable) consider(m);
  if (newcomer != nullptr) {
    const double p = priority(*newcomer, ctx);
    if (victim == nullptr || p < victim_prio) victim = newcomer;
  }
  return victim;
}

}  // namespace dtn
