#include "src/core/world.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <tuple>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

namespace {
/// Indices per executor chunk in the sharded step phases. Determinism
/// never depends on the grain (chunks only batch independent per-index
/// work), so these are pure tuning knobs.
constexpr std::size_t kMobilityGrain = 64;
constexpr std::size_t kPrewarmGrain = 8;
constexpr std::size_t kTtlGrain = 64;
/// Contact-event groups per chunk in the hoisted estimator pass.
constexpr std::size_t kImtGrain = 4;
/// Below this many due TTL entries the serial checks are cheaper than
/// fanning the batch out.
constexpr std::size_t kTtlParallelMin = 64;
/// Most steps a quiet batch may fuse (bounds the per-chunk stack array
/// in the fused mobility kernel).
constexpr std::size_t kQuietBatchMax = 32;

inline double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

World::World(const WorldConfig& cfg) : cfg_(cfg), tracker_(cfg.range) {
  DTN_REQUIRE(cfg.step > 0.0, "World: step must be positive");
  DTN_REQUIRE(cfg.duration > 0.0, "World: duration must be positive");
  DTN_REQUIRE(cfg.bandwidth > 0.0, "World: bandwidth must be positive");
  DTN_REQUIRE(cfg.occupancy_sample_interval > 0.0,
              "World: occupancy_sample_interval must be positive");
  DTN_REQUIRE(cfg.priority_refresh_s >= 0.0,
              "World: priority_refresh_s must be non-negative");
  next_occupancy_sample_ = cfg.occupancy_sample_interval;
  if (cfg_.threads > 0) {
    exec_ = std::make_unique<TaskExecutor>(cfg_.threads);
    tracker_.set_executor(exec_.get());
  }
  mobility_kernel_ = [this](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      MobilityModel* m = mobility_raw_[i];
      m->advance(cfg_.step);
      positions_[i] = m->position();
    }
  };
  prewarm_kernel_ = [this](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      const Node& n = *nodes_[prewarm_nodes_[k]];
      policy_->prewarm_node(ctx_for(n));
    }
  };
  ttl_classify_kernel_ = [this](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      const ExpiryEvent& e = due_scratch_[k];
      const Node& n = *nodes_[e.node];
      ttl_verdicts_[k] = TtlVerdict{n.buffer().has(e.msg), n.is_pinned(e.msg)};
    }
  };
  // Fused k-step mobility advance for quiet batches. Chunk-robust: the
  // inline for_each path hands the whole [0, n) range as one call, so the
  // kernel re-derives kMobilityGrain-sized chunks itself (dispatch chunks
  // are always grain-aligned, making the two tilings coincide).
  quiet_kernel_ = [this](std::size_t begin, std::size_t end) {
    const std::vector<Vec2>& prev = tracker_.prev_positions();
    for (std::size_t c = begin / kMobilityGrain; c * kMobilityGrain < end;
         ++c) {
      const std::size_t b = c * kMobilityGrain;
      const std::size_t e = std::min(end, b + kMobilityGrain);
      double maxd2[kQuietBatchMax];
      for (std::size_t j = 0; j < quiet_k_; ++j) maxd2[j] = 0.0;
      for (std::size_t i = b; i < e; ++i) {
        MobilityModel* m = mobility_raw_[i];
        Vec2 p = prev[i];
        for (std::size_t j = 0; j < quiet_k_; ++j) {
          m->advance(cfg_.step);
          const Vec2 q = m->position();
          maxd2[j] = std::max(maxd2[j], distance2(p, q));
          p = q;
        }
        positions_[i] = p;
      }
      for (std::size_t j = 0; j < quiet_k_; ++j) {
        quiet_maxd2_[j * quiet_chunks_ + c] = maxd2[j];
      }
    }
  };
}

void World::set_router(std::unique_ptr<Router> router) {
  DTN_REQUIRE(nodes_.empty(), "World: set_router before adding nodes");
  router_ = std::move(router);
}

void World::set_policy(std::unique_ptr<BufferPolicy> policy) {
  DTN_REQUIRE(nodes_.empty(), "World: set_policy before adding nodes");
  policy_ = std::move(policy);
}

NodeId World::add_node(MobilityPtr mobility, std::int64_t buffer_capacity,
                       const NodeEstimatorConfig& est_cfg) {
  DTN_REQUIRE(router_ != nullptr && policy_ != nullptr,
              "World: set router and policy before adding nodes");
  const auto id = static_cast<NodeId>(nodes_.size());
  hot_.add_node(buffer_capacity);
  nodes_.push_back(std::make_unique<Node>(id, std::move(mobility),
                                          buffer_capacity, router_.get(),
                                          policy_.get(), arena_, est_cfg,
                                          &hot_));
  mobility_raw_.push_back(&nodes_.back()->mobility());
  outgoing_.push_back(-1);
  kinetics_configured_ = false;  // fleet speed bound may have changed
  return id;
}

bool World::expiry_after(const ExpiryEvent& a, const ExpiryEvent& b) {
  return std::tie(a.expiry, a.node, a.msg) > std::tie(b.expiry, b.node, b.msg);
}

bool World::eta_after(const EtaEvent& a, const EtaEvent& b) {
  return std::tie(a.eta, a.from, a.seq) > std::tie(b.eta, b.from, b.seq);
}

void World::push_expiry(NodeId node_id, SimTime expiry, MessageId msg) {
  expiry_heap_.push_back(ExpiryEvent{expiry, node_id, msg});
  std::push_heap(expiry_heap_.begin(), expiry_heap_.end(), &expiry_after);
}

void World::configure_kinetics() {
  kinetics_configured_ = true;
  prepare_capacity();
  if (cfg_.legacy_step) {
    tracker_.set_motion_bound(-1.0);  // full contact pass every step
    return;
  }
  double v_max = 0.0;
  for (const auto& n : nodes_) {
    v_max = std::max(v_max, n->mobility().max_speed());
  }
  tracker_.set_motion_bound(std::isfinite(v_max) ? v_max * cfg_.step : -1.0);
}

void World::prepare_capacity() {
  const std::size_t n = nodes_.size();
  positions_.reserve(n);
  tracker_.reserve_nodes(n);
  if (cfg_.priority_cache) idle_memo_.reserve(std::max<std::size_t>(n, 64));
  // Expected live arena slots: the traffic schedule creates one message
  // per interval_min (worst case) living `ttl` seconds, each spread over
  // at most initial_copies carriers; total residency is further capped by
  // the fleet's aggregate buffer bytes. Clamp the estimate so degenerate
  // configs (tiny intervals, huge ttl) cannot balloon the reservation.
  std::size_t slots = 256;
  if (gen_ != nullptr) {
    const MessageGenConfig& tc = gen_->config();
    const double horizon = std::min(tc.ttl, cfg_.duration);
    const double interval = std::max(tc.interval_min, 1e-6);
    const double by_rate = (horizon / interval) *
                           static_cast<double>(std::max(tc.initial_copies, 1));
    double cap_bytes = 0.0;
    for (std::int64_t c : hot_.buffer_cap) cap_bytes += static_cast<double>(c);
    const double by_bytes =
        cap_bytes / static_cast<double>(std::max<std::int64_t>(tc.size, 1));
    const double est = std::min(by_rate, by_bytes) + static_cast<double>(n);
    slots = std::max(slots, static_cast<std::size_t>(std::min(
                                est, static_cast<double>(1u << 18))));
  }
  arena_.reserve(slots);
  // Per-node handle spans: a span only reallocates on powers of two, and
  // a resident count past this reserve implies the scenario is buffer-
  // bound, where admission churn (not span growth) dominates anyway.
  if (gen_ != nullptr) {
    const std::size_t per_node = std::min<std::size_t>(
        64, static_cast<std::size_t>(std::max<std::int64_t>(
                1, hot_.buffer_cap.empty()
                       ? 1
                       : hot_.buffer_cap[0] /
                             std::max<std::int64_t>(gen_->config().size, 1))) +
                1);
    for (const auto& nd : nodes_) nd->buffer().reserve_handles(per_node);
  }
}

void World::enable_traffic(const MessageGenConfig& cfg, std::uint64_t seed) {
  gen_ = std::make_unique<MessageGenerator>(cfg, nodes_.size(), Rng(seed));
}

void World::enable_faults(const FaultConfig& cfg, std::uint64_t seed) {
  DTN_REQUIRE(!nodes_.empty(), "enable_faults: add nodes first");
  DTN_REQUIRE(now_ == 0.0, "enable_faults: call before running");
  cfg.validate();
  if (!cfg.any_active()) return;  // inert: keep the fault-free hot path
  fault_ = std::make_unique<FaultPlan>(cfg, nodes_.size(), seed);
}

void World::add_observer(WorldObserver* observer) {
  DTN_REQUIRE(observer != nullptr, "add_observer: null observer");
  observers_.push_back(observer);
}

Node& World::node(NodeId id) {
  DTN_REQUIRE(id < nodes_.size(), "World: node id out of range");
  return *nodes_[id];
}

const Node& World::node(NodeId id) const {
  DTN_REQUIRE(id < nodes_.size(), "World: node id out of range");
  return *nodes_[id];
}

PolicyContext World::ctx_for(const Node& n) const {
  PolicyContext ctx;
  ctx.now = now_;
  ctx.n_nodes = nodes_.size();
  ctx.node = &n;
  ctx.oracle = &registry_;
  ctx.cache_enabled = cfg_.priority_cache;
  ctx.priority_refresh_s = cfg_.priority_refresh_s;
  ctx.hot = &hot_;
  return ctx;
}

void World::advance_mobility() {
  // Advancing also samples the post-move position into positions_ — the
  // tracker input. Each mobility model owns its private RNG stream, so
  // per-node advancement is order-free and safe to shard.
  const std::size_t n = nodes_.size();
  positions_.resize(n);
  if (exec_ != nullptr) {
    exec_->for_each(n, kMobilityGrain, mobility_kernel_);
  } else {
    mobility_kernel_(0, n);
  }
}

bool World::prewarm_enabled() const {
  return exec_ != nullptr && cfg_.priority_cache && policy_->cache_safe() &&
         policy_->prewarm_worthwhile();
}

std::size_t World::build_prewarm_nodes() {
  // Only nodes on an active contact face priority evaluations in the
  // upcoming start_transfers phase. Shards are whole nodes, so each task
  // writes only its own node's warm buffer — no shared mutable state.
  prewarm_nodes_.clear();
  for (const NodePair& p : active_contacts()) {
    prewarm_nodes_.push_back(static_cast<NodeId>(p.first));
    prewarm_nodes_.push_back(static_cast<NodeId>(p.second));
  }
  std::sort(prewarm_nodes_.begin(), prewarm_nodes_.end());
  prewarm_nodes_.erase(
      std::unique(prewarm_nodes_.begin(), prewarm_nodes_.end()),
      prewarm_nodes_.end());
  return prewarm_nodes_.size();
}

void World::prewarm_priorities() {
  if (!prewarm_enabled()) return;
  if (build_prewarm_nodes() == 0) return;
  exec_->for_each(prewarm_nodes_.size(), kPrewarmGrain, prewarm_kernel_);
}

bool World::graph_eligible() const {
  // The graph body requires the event-driven core (the legacy scans have
  // no phase structure worth overlapping). Faults and observers are fine:
  // every externally visible event fires from serial nodes — or the
  // caller — in exact serial order.
  return exec_ != nullptr && !cfg_.legacy_step;
}

void World::step() {
  DTN_REQUIRE(nodes_.size() >= 2, "World: need at least two nodes to run");
  if (!kinetics_configured_) configure_kinetics();
  if (graph_eligible()) {
    if (!graph_built_) build_step_graph();
    step_graph();
  } else {
    step_serial();
  }
}

void World::step_serial() {
  const bool prof = cfg_.profile_phases;
  double t0 = prof ? wall_now() : 0.0;
  const auto stamp = [&](double& acc) {
    if (prof) {
      const double t1 = wall_now();
      acc += t1 - t0;
      t0 = t1;
    }
  };
  now_ += cfg_.step;
  advance_mobility();  // also refills positions_
  stamp(profile_.mobility_s);
  const ContactChurn& churn = tracker_.update(positions_);

  if (fault_ == nullptr) {
    for (const NodePair& p : churn.went_down) process_link_down(p);
    for (const NodePair& p : churn.went_up) process_link_up(p);
  } else {
    // Fault events land first so the availability flags are current for
    // this step; the live-set diff then replaces the raw tracker churn —
    // geometric and fault-induced link changes flow through the same
    // process_link_down/up handlers, in the same sorted order, in both
    // step modes, so legacy parity is structural.
    apply_fault_events();
    refresh_live_contacts();
  }
  stamp(profile_.contacts_s);

  complete_due_transfers();
  if (gen_ != nullptr) generate_traffic();
  stamp(profile_.events_s);
  purge_ttl();
  stamp(profile_.ttl_s);
  prewarm_priorities();
  stamp(profile_.prewarm_s);
  start_transfers();
  stamp(profile_.transfers_s);
  ++profile_.steps;

  if (now_ + 1e-9 >= next_occupancy_sample_) {
    sample_occupancy();
    next_occupancy_sample_ += cfg_.occupancy_sample_interval;
  }
  notify([this](WorldObserver& o) { o.on_step_end(*this); });
}

void World::build_step_graph() {
  graph_built_ = true;
  // Node ids are added in topological order; the single-lane drain then
  // sweeps them in exact serial-phase order. Kernels capture only `this`.
  g_mob_ = step_graph_.add(
      [this](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          MobilityModel* m = mobility_raw_[i];
          m->advance(cfg_.step);
          positions_[i] = m->position();
        }
        if (mob_want_disp_) {
          // Fused displacement reduce: the serial path's separate sweep
          // in ContactTracker::update, folded into the mobility chunk.
          // Graph chunks are grain-aligned, so begin / grain is the
          // chunk index.
          const std::vector<Vec2>& prev = tracker_.prev_positions();
          double m2 = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            m2 = std::max(m2, distance2(prev[i], positions_[i]));
          }
          mob_chunk_maxd2_[begin / kMobilityGrain] = m2;
        }
      },
      kMobilityGrain);
  g_eta_ = step_graph_.add_serial([this](std::size_t, std::size_t) {
    pop_due_etas();
  });
  g_poll_ = step_graph_.add_serial([this](std::size_t, std::size_t) {
    // The generator's schedule depends only on its own state, never on
    // this step's churn, so polling overlaps the contact pass. Admission
    // stays serial (g_apply_).
    if (gen_ != nullptr) {
      gen_->poll(now_, traffic_scratch_);
    } else {
      traffic_scratch_.clear();
    }
  });
  g_plan_ = step_graph_.add_serial(
      [this](std::size_t, std::size_t) { plan_contacts(); }, {g_mob_});
  g_track_ = step_graph_.add(
      [this](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          tracker_.run_shard(s, positions_);
        }
      },
      /*grain=*/1, {g_plan_});
  g_merge_ = step_graph_.add_serial(
      [this](std::size_t, std::size_t) { merge_contacts_and_shard_imt(); },
      {g_track_});
  g_imt_ = step_graph_.add(
      [this](std::size_t begin, std::size_t end) { run_imt_groups(begin, end); },
      kImtGrain, {g_merge_});
  g_apply_ = step_graph_.add_serial(
      [this](std::size_t, std::size_t) { apply_step_events(); },
      {g_imt_, g_eta_, g_poll_});
  g_verdict_ = step_graph_.add(
      [this](std::size_t begin, std::size_t end) {
        ttl_classify_kernel_(begin, end);
      },
      kTtlGrain, {g_apply_});
  g_ttl_ = step_graph_.add_serial(
      [this](std::size_t, std::size_t) {
        apply_ttl(ttl_parallel_);
        std::size_t warm = 0;
        if (prewarm_enabled()) warm = build_prewarm_nodes();
        step_graph_.set_items(g_prewarm_, warm);
      },
      {g_verdict_});
  g_prewarm_ = step_graph_.add(
      [this](std::size_t begin, std::size_t end) {
        prewarm_kernel_(begin, end);
      },
      kPrewarmGrain, {g_ttl_});
}

void World::step_graph() {
  const bool prof = cfg_.profile_phases;
  now_ += cfg_.step;
  const std::size_t n = nodes_.size();
  positions_.resize(n);
  step_graph_.set_items(g_mob_, n);
  mob_want_disp_ = tracker_.wants_displacement(n);
  if (mob_want_disp_) {
    mob_chunk_maxd2_.assign((n + kMobilityGrain - 1) / kMobilityGrain, 0.0);
  }
  double t0 = prof ? wall_now() : 0.0;
  exec_->run(step_graph_);
  if (prof) {
    const double t1 = wall_now();
    profile_.dispatch_s += t1 - t0;
    t0 = t1;
  }
  start_transfers();
  if (prof) profile_.transfers_s += wall_now() - t0;
  ++profile_.steps;

  if (now_ + 1e-9 >= next_occupancy_sample_) {
    sample_occupancy();
    next_occupancy_sample_ += cfg_.occupancy_sample_interval;
  }
  notify([this](WorldObserver& o) { o.on_step_end(*this); });
}

void World::plan_contacts() {
  // Exact replication of the serial displacement reduce: max over nodes
  // in index order == max over chunk maxima in chunk order (max is
  // exactly associative), so the skip/full-pass decision and the charged
  // budget are bit-identical.
  double max_d2 = 0.0;
  if (mob_want_disp_) {
    for (double m2 : mob_chunk_maxd2_) max_d2 = std::max(max_d2, m2);
  }
  tracker_.plan_update(positions_, max_d2);
  step_graph_.set_items(g_track_, tracker_.stage_shards());
}

void World::merge_contacts_and_shard_imt() {
  step_churn_ = &tracker_.finish_update();
  imt_events_.clear();
  imt_group_begin_.clear();
  imt_prehandled_ = false;
  // Hoisting the note_contact_* calls out of the serial churn loop is
  // legal when (a) the churn handlers are the tracker's own (no fault
  // layer re-deriving the live set) and (b) no observer can read another
  // node's estimator mid-churn. Each node's events keep their serial
  // relative order (seq), and estimator + cache-stamp state is node-local,
  // so the pre-pass commutes with everything the serial loop interleaves.
  const bool hoist =
      fault_ == nullptr && observers_.empty() &&
      !(step_churn_->went_down.empty() && step_churn_->went_up.empty());
  if (!hoist) {
    step_graph_.set_items(g_imt_, 0);
    return;
  }
  std::uint32_t seq = 0;
  for (const NodePair& p : step_churn_->went_down) {
    imt_events_.push_back({static_cast<NodeId>(p.first), seq++,
                           static_cast<NodeId>(p.second), false});
    imt_events_.push_back({static_cast<NodeId>(p.second), seq++,
                           static_cast<NodeId>(p.first), false});
  }
  for (const NodePair& p : step_churn_->went_up) {
    imt_events_.push_back({static_cast<NodeId>(p.first), seq++,
                           static_cast<NodeId>(p.second), true});
    imt_events_.push_back({static_cast<NodeId>(p.second), seq++,
                           static_cast<NodeId>(p.first), true});
  }
  // (node, seq) keys are unique, so the unstable sort is deterministic;
  // within a node, ascending seq IS the serial emission order.
  std::sort(imt_events_.begin(), imt_events_.end(),
            [](const ImtEvent& a, const ImtEvent& b) {
              return std::tie(a.node, a.seq) < std::tie(b.node, b.seq);
            });
  for (std::size_t i = 0; i < imt_events_.size(); ++i) {
    if (i == 0 || imt_events_[i].node != imt_events_[i - 1].node) {
      imt_group_begin_.push_back(i);
    }
  }
  imt_group_begin_.push_back(imt_events_.size());
  imt_prehandled_ = true;
  step_graph_.set_items(g_imt_, imt_group_begin_.size() - 1);
}

void World::run_imt_groups(std::size_t begin, std::size_t end) {
  for (std::size_t g = begin; g < end; ++g) {
    for (std::size_t k = imt_group_begin_[g]; k < imt_group_begin_[g + 1];
         ++k) {
      const ImtEvent& ev = imt_events_[k];
      Node& n = *nodes_[ev.node];
      if (ev.up) {
        n.note_contact_start(ev.peer, now_);
      } else {
        n.note_contact_end(ev.peer, now_);
      }
    }
  }
}

void World::apply_step_events() {
  if (fault_ == nullptr) {
    for (const NodePair& p : step_churn_->went_down) process_link_down(p);
    for (const NodePair& p : step_churn_->went_up) process_link_up(p);
    imt_prehandled_ = false;
  } else {
    // Same structure as step_serial: fault events first, then the
    // live-set diff replaces the raw tracker churn.
    apply_fault_events();
    refresh_live_contacts();
  }
  apply_completions();
  if (gen_ != nullptr) admit_traffic();
  drain_due_ttl();
  ttl_parallel_ =
      !due_scratch_.empty() && due_scratch_.size() >= kTtlParallelMin;
  if (ttl_parallel_) {
    ttl_verdicts_.resize(due_scratch_.size());
    step_graph_.set_items(g_verdict_, due_scratch_.size());
  } else {
    step_graph_.set_items(g_verdict_, 0);
  }
}

void World::run_until(SimTime t) {
  while (now_ + cfg_.step <= t + 1e-9) {
    const std::size_t k = quiet_batch_limit(t);
    if (k >= 2) {
      run_quiet_batch(k);
    } else {
      step();
    }
  }
}

std::size_t World::quiet_batch_limit(SimTime t) const {
  // A batch of k steps is legal when each of those steps, run normally,
  // would provably (a) produce empty churn (quiet_ready: skipping armed,
  // no watch pairs; the budget covers k steps of worst-case motion),
  // (b) start no transfer (no active contacts, and none can appear),
  // (c) fire no completion / expiry / traffic / occupancy event, and
  // (d) publish nothing (no observers). Such a step's entire effect is
  // advancing mobility and charging the kinetic budget — which
  // run_quiet_batch replays exactly, so the decision is state-pure and
  // identical at any thread count.
  if (cfg_.legacy_step || fault_ != nullptr || !kinetics_configured_) return 0;
  if (!observers_.empty() || nodes_.size() < 2) return 0;
  const std::size_t n = nodes_.size();
  if (!tracker_.quiet_ready(n)) return 0;
  if (!tracker_.current().empty() || !transfers_.empty()) return 0;
  const double bound = tracker_.motion_bound();
  if (bound < 0.0) return 0;
  const double budget = tracker_.kinetic_budget();
  std::size_t k = 0;
  SimTime next = now_;
  while (k < kQuietBatchMax) {
    const SimTime cand = next + cfg_.step;
    if (cand > t + 1e-9) break;
    // Worst-case cumulative charge, with headroom dominating the
    // per-charge kBudgetEps guards (1e-6 >> 32 * 1e-9).
    if (2.0 * bound * static_cast<double>(k + 1) + 1e-6 > budget) break;
    if (!expiry_heap_.empty() && expiry_heap_.front().expiry <= cand) break;
    // Tombstoned ETA entries break the batch too: a normal step would
    // pop (and discard) them, and leaving heaps to diverge from the
    // serial trajectory — while digest-invisible — costs nothing here.
    if (!eta_heap_.empty() && eta_heap_.front().eta <= cand + 1e-9) break;
    if (gen_ != nullptr && gen_->next_due() <= cand &&
        gen_->next_due() <= gen_->config().stop) {
      break;
    }
    if (cand + 1e-9 >= next_occupancy_sample_) break;
    next = cand;
    ++k;
  }
  if (k == 0) return 0;
  // External teleports (tests nudging a StationaryModel between runs)
  // invalidate the advertised bound without an advance() call. The
  // tracker's reference snapshot is bit-identical to the models' current
  // positions unless someone moved one out-of-band — in that case fall
  // back to a normal step, whose full-pass path absorbs teleports.
  const std::vector<Vec2>& prev = tracker_.prev_positions();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 p = mobility_raw_[i]->position();
    if (p.x != prev[i].x || p.y != prev[i].y) return 0;
  }
  return k;
}

void World::run_quiet_batch(std::size_t k) {
  const std::size_t n = nodes_.size();
  positions_.resize(n);
  quiet_k_ = k;
  quiet_chunks_ = (n + kMobilityGrain - 1) / kMobilityGrain;
  quiet_maxd2_.assign(k * quiet_chunks_, 0.0);
  if (exec_ != nullptr) {
    exec_->for_each(n, kMobilityGrain, quiet_kernel_);
  } else {
    quiet_kernel_(0, n);
  }
  // Charge each fused step's exact observed displacement in step order —
  // the same (exactly associative) max reduce and the same budget
  // decrements an unbatched run performs, so updates_ / budget / digest
  // trajectories are bit-identical. charge_quiet_step's DTN_REQUIRE turns
  // a mobility model overshooting its advertised bound into a crash
  // instead of silent contact corruption.
  for (std::size_t j = 0; j < k; ++j) {
    double max_d2 = 0.0;
    for (std::size_t c = 0; c < quiet_chunks_; ++c) {
      max_d2 = std::max(max_d2, quiet_maxd2_[j * quiet_chunks_ + c]);
    }
    tracker_.charge_quiet_step(max_d2);
    now_ += cfg_.step;  // repeated add: bit-exact vs. k unbatched steps
  }
  tracker_.commit_positions(positions_);
}

void World::run() { run_until(cfg_.duration); }

void World::apply_fault_events() {
  FaultPlan::Event e;
  while (fault_->pop_due(now_, &e)) {
    switch (e.kind) {
      case FaultPlan::Kind::kNodeDown:
        hot_.up[e.node] = 0;
        // Immediate abort (not deferred to the live-set diff) so even a
        // down+up pair landing within one step kills the transfer.
        abort_faulted_transfer_of(e.node);
        break;
      case FaultPlan::Kind::kNodeUp:
        hot_.up[e.node] = 1;
        stats_.downtime_s += e.down_duration;
        if (fault_->config().reboot_purge) purge_on_reboot(node(e.node));
        break;
      case FaultPlan::Kind::kLinkAbort:
        if (!transfers_.empty()) {
          // Uniform pick in sender order — transfers_ itself is unordered
          // (swap-pop), so index into a sorted view. No in-flight transfer
          // means no RNG draw; the stream stays state-deterministic.
          fault_senders_.clear();
          fault_senders_.reserve(transfers_.size());
          for (const Transfer& t : transfers_) fault_senders_.push_back(t.from);
          std::sort(fault_senders_.begin(), fault_senders_.end());
          const NodeId from =
              fault_senders_[fault_->pick_index(fault_senders_.size())];
          const Transfer t =
              transfers_[static_cast<std::size_t>(outgoing_[from])];
          ++stats_.faulted_aborts;
          abort_transfer_from(t.from, t.to);
        }
        break;
      case FaultPlan::Kind::kDegradeStart:
      case FaultPlan::Kind::kDegradeEnd:
        // Flags flipped in the plan; refresh the SoA mirrors so the
        // live-set derivation streams arrays instead of plan lookups.
        hot_.range_factor[e.node] = fault_->range_factor(e.node);
        hot_.bitrate_factor[e.node] = fault_->bitrate_factor(e.node);
        break;
    }
  }
}

void World::abort_faulted_transfer_of(NodeId id) {
  // The radio serializes: a node participates in at most one transfer,
  // as sender or receiver.
  const std::int64_t idx = outgoing_[id];
  if (idx >= 0) {
    const Transfer t = transfers_[static_cast<std::size_t>(idx)];
    ++stats_.faulted_aborts;
    abort_transfer_from(t.from, t.to);
    return;
  }
  for (const Transfer& t : transfers_) {
    if (t.to == id) {
      const Transfer hit = t;
      ++stats_.faulted_aborts;
      abort_transfer_from(hit.from, hit.to);
      return;
    }
  }
}

void World::purge_on_reboot(Node& n) {
  // The node's transfers were aborted when it went down and none started
  // while it was severed from the live set, so nothing is pinned.
  DTN_REQUIRE(n.pinned().empty(), "reboot purge: down node holds pins");
  doomed_scratch_.clear();
  for (const Message& m : n.buffer().messages()) doomed_scratch_.push_back(m.id);
  for (MessageId id : doomed_scratch_) {
    n.buffer().take(id);
    n.priority_cache().invalidate(id);
    // Not a policy drop: no record_drop, no on_drop — the storage died.
    registry_.on_copy_removed(id, n.id(), /*dropped=*/false);
    ++stats_.reboot_purged;
  }
}

void World::compute_live_contacts(std::vector<NodePair>& out) const {
  // Streams the SoA fault mirrors and the positions_ scratch (refreshed
  // by advance_mobility each step and by rebuild_event_queues on load)
  // instead of chasing Node/FaultPlan state per pair.
  out.clear();
  for (const NodePair& p : tracker_.current()) {
    const auto a = static_cast<NodeId>(p.first);
    const auto b = static_cast<NodeId>(p.second);
    if (hot_.up[a] == 0 || hot_.up[b] == 0) continue;
    const double f = std::min(hot_.range_factor[a], hot_.range_factor[b]);
    if (f < 1.0) {
      const Vec2 pa = positions_[a];
      const Vec2 pb = positions_[b];
      const double dx = pa.x - pb.x;
      const double dy = pa.y - pb.y;
      const double r = cfg_.range * f;
      if (dx * dx + dy * dy > r * r) continue;
    }
    out.push_back(p);  // subsequence of a sorted set: stays sorted
  }
}

void World::refresh_live_contacts() {
  compute_live_contacts(live_scratch_);
  // Diff the sorted sets; downs first, then ups, matching the tracker
  // churn ordering of the fault-free path.
  auto old_it = live_contacts_.cbegin();
  auto new_it = live_scratch_.cbegin();
  while (old_it != live_contacts_.cend()) {
    if (new_it != live_scratch_.cend() && *new_it < *old_it) {
      ++new_it;
      continue;
    }
    if (new_it != live_scratch_.cend() && *new_it == *old_it) {
      ++old_it;
      ++new_it;
      continue;
    }
    const NodePair p = *old_it++;
    // A pair still geometrically in range was severed by the fault layer;
    // a transfer it carried is a fault-induced abort (geometric breakups
    // abort too, but those happen in the baseline world as well).
    if (tracker_.in_contact(p.first, p.second)) {
      const auto a = static_cast<NodeId>(p.first);
      const auto b = static_cast<NodeId>(p.second);
      const std::int64_t ia = outgoing_[a];
      const std::int64_t ib = outgoing_[b];
      if ((ia >= 0 && transfers_[static_cast<std::size_t>(ia)].to == b) ||
          (ib >= 0 && transfers_[static_cast<std::size_t>(ib)].to == a)) {
        ++stats_.faulted_aborts;
      }
    }
    process_link_down(p);
  }
  new_it = live_scratch_.cbegin();
  for (auto it = live_contacts_.cbegin(); new_it != live_scratch_.cend();
       ++new_it) {
    while (it != live_contacts_.cend() && *it < *new_it) ++it;
    if (it != live_contacts_.cend() && *it == *new_it) continue;
    process_link_up(*new_it);
  }
  live_contacts_.swap(live_scratch_);
}

void World::process_link_down(const NodePair& p) {
  abort_transfers_on(p);
  Node& a = node(static_cast<NodeId>(p.first));
  Node& b = node(static_cast<NodeId>(p.second));
  idle_memo_.erase(a.id(), b.id());
  idle_memo_.erase(b.id(), a.id());
  if (!imt_prehandled_) {
    a.note_contact_end(p.second, now_);
    b.note_contact_end(p.first, now_);
  }
  notify([&p, this](WorldObserver& o) { o.on_link_down(p, now_); });
  if (cfg_.collect_intermeeting) {
    pair_last_end_[p] = now_;
    const auto it = pair_up_since_.find(p);
    if (it != pair_up_since_.end()) {
      contact_samples_.push_back(now_ - it->second);
      pair_up_since_.erase(it);
    }
  }
}

void World::process_link_up(const NodePair& p) {
  Node& a = node(static_cast<NodeId>(p.first));
  Node& b = node(static_cast<NodeId>(p.second));
  // The estimator updates may have been hoisted into the graph's
  // parallel contact-event pass (merge_contacts_and_shard_imt); the rest
  // of the handler always runs here, in serial churn order.
  if (!imt_prehandled_) {
    a.note_contact_start(p.second, now_);
    b.note_contact_start(p.first, now_);
  }
  router_->on_link_up(a, b, now_);
  if (cfg_.ack_gossip) {
    for (MessageId id : b.known_delivered()) a.learn_delivered(id);
    for (MessageId id : a.known_delivered()) b.learn_delivered(id);
    purge_acked(a);
    purge_acked(b);
  }
  if (policy_->uses_dropped_list()) {
    // Fig. 5 gossip: exchange and reconcile drop records on encounter.
    a.merge_dropped_from(b);
    b.merge_dropped_from(a);
  }
  if (cfg_.collect_intermeeting) {
    const auto it = pair_last_end_.find(p);
    if (it != pair_last_end_.end() && now_ > it->second) {
      imt_samples_.push_back(now_ - it->second);
    }
    pair_up_since_[p] = now_;
  }
  notify([&p, this](WorldObserver& o) { o.on_link_up(p, now_); });
}

void World::remove_transfer(NodeId from_id) {
  const std::int64_t idx = outgoing_[from_id];
  DTN_REQUIRE(idx >= 0, "remove_transfer: sender has no outgoing transfer");
  const auto i = static_cast<std::size_t>(idx);
  const std::size_t last = transfers_.size() - 1;
  if (i != last) {
    transfers_[i] = transfers_[last];
    outgoing_[transfers_[i].from] = static_cast<std::int64_t>(i);
  }
  transfers_.pop_back();
  outgoing_[from_id] = -1;
}

void World::abort_transfers_on(const NodePair& p) {
  // A pair carries at most one transfer (both radios are busy while it
  // runs), so two directional probes cover every case.
  abort_transfer_from(static_cast<NodeId>(p.first),
                      static_cast<NodeId>(p.second));
  abort_transfer_from(static_cast<NodeId>(p.second),
                      static_cast<NodeId>(p.first));
}

void World::abort_transfer_from(NodeId from_id, NodeId to_id) {
  const std::int64_t idx = outgoing_[from_id];
  if (idx < 0) return;
  const Transfer t = transfers_[static_cast<std::size_t>(idx)];
  if (t.to != to_id) return;
  Node& from = node(t.from);
  Node& to = node(t.to);
  from.unpin(t.msg);
  from.set_radio_busy(false);
  to.set_radio_busy(false);
  ++stats_.transfers_aborted;
  notify([&t](WorldObserver& o) { o.on_transfer_aborted(t); });
  // The ETA heap entry becomes a tombstone: its seq no longer resolves.
  remove_transfer(t.from);
}

void World::complete_due_transfers() {
  if (cfg_.legacy_step) {
    // Completion order: by eta, then sender id — deterministic.
    legacy_due_.clear();
    for (const Transfer& t : transfers_) {
      if (t.eta <= now_ + 1e-9) legacy_due_.push_back(t);
    }
    std::sort(legacy_due_.begin(), legacy_due_.end(),
              [](const Transfer& a, const Transfer& b) {
                if (a.eta != b.eta) return a.eta < b.eta;
                return a.from < b.from;
              });
    for (const Transfer& t : legacy_due_) remove_transfer(t.from);
    for (const Transfer& t : legacy_due_) handle_completion(t);
    return;
  }
  // Event-driven path: drain the ETA heap, which pops in exactly the
  // legacy (eta, from) order. Stale entries — transfers aborted since
  // they were scheduled — fail the seq check and are discarded.
  // Interleaving removal with handling is equivalent to the legacy
  // remove-all-then-handle: a completion handler never reads other
  // in-flight transfers, and pinned sender copies are eviction-immune.
  pop_due_etas();
  apply_completions();
}

void World::pop_due_etas() {
  // Validity is NOT checked here: the graph pops before link churn runs,
  // and an entry invalidated by a churn abort must be discarded exactly
  // as the interleaved serial drain would. Nothing between this pop and
  // apply_completions pushes into the heap (only start_transfers does),
  // so popping early is order-equivalent.
  eta_due_scratch_.clear();
  while (!eta_heap_.empty() && eta_heap_.front().eta <= now_ + 1e-9) {
    std::pop_heap(eta_heap_.begin(), eta_heap_.end(), &eta_after);
    eta_due_scratch_.push_back(eta_heap_.back());
    eta_heap_.pop_back();
  }
}

void World::apply_completions() {
  for (const EtaEvent& e : eta_due_scratch_) {
    const std::int64_t idx = outgoing_[e.from];
    if (idx < 0 || transfers_[static_cast<std::size_t>(idx)].seq != e.seq) {
      continue;  // tombstone
    }
    const Transfer t = transfers_[static_cast<std::size_t>(idx)];
    remove_transfer(e.from);
    handle_completion(t);
  }
}

void World::handle_completion(const Transfer& t) {
  Node& from = node(t.from);
  Node& to = node(t.to);
  from.unpin(t.msg);
  from.set_radio_busy(false);
  to.set_radio_busy(false);

  Message* copy = from.buffer().find(t.msg);
  DTN_REQUIRE(copy != nullptr, "completion: sender copy vanished");

  if (copy->expired(now_)) {
    // Died in flight: the payload is useless on both ends.
    const Message dead = from.buffer().take(t.msg);
    from.priority_cache().invalidate(t.msg);
    registry_.on_copy_removed(t.msg, t.from, /*dropped=*/false);
    ++stats_.ttl_expired;
    ++stats_.transfers_aborted;
    notify([&](WorldObserver& o) {
      o.on_transfer_aborted(t);
      o.on_ttl_expired(t.from, dead, now_);
    });
    return;
  }

  const bool delivered = (t.to == copy->destination);
  if (delivered) {
    ++stats_.transfers_completed;
    notify([&t](WorldObserver& o) { o.on_transfer_completed(t, true); });
    if (!to.has_delivered(t.msg)) {
      to.mark_delivered(t.msg);
      ++stats_.delivered;
      stats_.hopcounts.add(static_cast<double>(copy->hops) + 1.0);
      stats_.latency.add(now_ - copy->created);
      notify([&](WorldObserver& o) {
        o.on_delivery(*copy, t.from, t.to, now_);
      });
      if (cfg_.ack_gossip) {
        // The destination acknowledges in-contact: both ends learn, and
        // the sender can free its now-useless copy immediately.
        to.learn_delivered(t.msg);
        from.learn_delivered(t.msg);
      }
    } else {
      ++stats_.duplicates;
    }
    const bool keep = router_->on_sent(*copy, /*delivered=*/true, now_);
    // Routers may mutate the sender copy in place on send.
    from.priority_cache().invalidate(t.msg);
    from.buffer().refresh_hot(t.msg);
    if (!keep) {
      from.buffer().take(t.msg);
      registry_.on_copy_removed(t.msg, t.from, /*dropped=*/false);
    } else if (cfg_.ack_gossip) {
      purge_acked(from);
    }
    return;
  }

  // Relay completion.
  if (to.buffer().has(t.msg)) {
    // The receiver obtained the message elsewhere mid-transfer. The
    // transfer still ran to completion — count it so
    // started == completed + aborted holds — but the arrival is a
    // duplicate: the sender keeps its copy budget untouched.
    ++stats_.duplicates;
    ++stats_.transfers_completed;
    notify([&t](WorldObserver& o) { o.on_transfer_completed(t, false); });
    return;
  }
  Message relay = router_->make_relay_copy(*copy, now_);
  const MessageId id = relay.id;
  const SimTime relay_expiry = relay.expiry();
  const Message* view =
      router_->rate_newcomer_as_sender_copy() ? copy : nullptr;
  Node::AdmitResult res = to.admit(std::move(relay), ctx_for(to), view);
  if (!res.admitted) {
    // Receiver-side state changed between the try_start precheck and
    // completion: the transfer ran but took no effect. It aborts (for the
    // started == completed + aborted invariant) and is additionally
    // tallied as an admission rejection.
    ++stats_.admission_rejected;
    ++stats_.transfers_aborted;
    notify([&t](WorldObserver& o) { o.on_transfer_aborted(t); });
    return;  // sender keeps its copies; bandwidth was wasted
  }
  ++stats_.transfers_completed;
  notify([&t](WorldObserver& o) { o.on_transfer_completed(t, false); });
  registry_.on_copy_received(id, t.to);
  if (!cfg_.legacy_step) push_expiry(t.to, relay_expiry, id);
  for (const Message& ev : res.evicted) handle_drop(to, ev);
  const bool keep = router_->on_sent(*copy, /*delivered=*/false, now_);
  // on_sent halves/decrements the sender's copy tokens and appends the
  // spray lineage: the memoized priority for this id is stale, and so is
  // the arena's copies column.
  from.priority_cache().invalidate(t.msg);
  from.buffer().refresh_hot(t.msg);
  if (!keep) {
    from.buffer().take(t.msg);
    registry_.on_copy_removed(t.msg, t.from, /*dropped=*/false);
  }
}

void World::generate_traffic() {
  gen_->poll(now_, traffic_scratch_);
  admit_traffic();
}

void World::admit_traffic() {
  for (Message& m : traffic_scratch_) {
    ++stats_.created;
    const MessageId id = m.id;
    const NodeId src = m.source;
    const SimTime expiry = m.expiry();
    registry_.on_created(id, src);
    notify([&m, this](WorldObserver& o) { o.on_message_created(m, now_); });
    if (fault_ != nullptr && hot_.up[src] == 0) {
      // The application layer produced the message (the generator's
      // schedule is fault-independent) but the node is down: it is lost
      // at the source. No record_drop — the policy never saw it.
      ++stats_.source_rejected;
      registry_.on_copy_removed(id, src, /*dropped=*/true);
      continue;
    }
    Node& source = node(src);
    Node::AdmitResult res = source.admit(std::move(m), ctx_for(source));
    if (!res.admitted) {
      ++stats_.source_rejected;
      registry_.on_copy_removed(id, src, /*dropped=*/true);
      if (policy_->uses_dropped_list()) source.record_drop(id, now_);
      continue;
    }
    if (!cfg_.legacy_step) push_expiry(src, expiry, id);
    for (const Message& ev : res.evicted) handle_drop(source, ev);
  }
}

void World::purge_ttl() {
  if (cfg_.legacy_step) {
    for (auto& n : nodes_) {
      for (const Message& dead :
           n->buffer().purge_expired(now_, n->pinned())) {
        n->priority_cache().invalidate(dead.id);
        registry_.on_copy_removed(dead.id, n->id(), /*dropped=*/false);
        ++stats_.ttl_expired;
        notify(
            [&](WorldObserver& o) { o.on_ttl_expired(n->id(), dead, now_); });
      }
    }
    return;
  }
  // Event-driven path: only due entries are touched. A popped entry may
  // be stale (the copy was dropped, forwarded away or already purged —
  // lazy invalidation) or pinned by an in-flight transfer (the legacy
  // scan skips those too; re-queue and retry next step). Per-step purge
  // *order* differs from the legacy per-node scan, but every removal
  // lands in order-insensitive state (buffer membership, registry sets,
  // counters), so the end-of-step digest is identical.
  //
  // The due batch is drained first and applied second so the resident /
  // pinned classification — the only per-entry reads — can fan out over
  // the executor. The verdicts stay valid through the serial apply: a
  // purge only changes `has` for its own (node, msg), and duplicate
  // entries for one (node, msg) carry the same expiry (created + ttl is
  // immutable per id), so they pop adjacently and inherit the first
  // entry's outcome exactly as the interleaved serial loop would produce.
  drain_due_ttl();
  if (due_scratch_.empty()) return;
  const bool parallel =
      exec_ != nullptr && due_scratch_.size() >= kTtlParallelMin;
  if (parallel) {
    ttl_verdicts_.resize(due_scratch_.size());
    exec_->for_each(due_scratch_.size(), kTtlGrain, ttl_classify_kernel_);
  }
  apply_ttl(parallel);
}

void World::drain_due_ttl() {
  expiry_deferred_.clear();
  due_scratch_.clear();
  while (!expiry_heap_.empty() && expiry_heap_.front().expiry <= now_) {
    std::pop_heap(expiry_heap_.begin(), expiry_heap_.end(), &expiry_after);
    due_scratch_.push_back(expiry_heap_.back());
    expiry_heap_.pop_back();
  }
}

void World::apply_ttl(bool parallel) {
  enum class Outcome { kStale, kDeferred, kPurged };
  Outcome prev = Outcome::kStale;
  for (std::size_t k = 0; k < due_scratch_.size(); ++k) {
    const ExpiryEvent& e = due_scratch_[k];
    if (k > 0 && due_scratch_[k - 1].node == e.node &&
        due_scratch_[k - 1].msg == e.msg) {
      // Duplicate entry: the serial loop would re-observe the first
      // entry's effect — gone (stale) after a purge or a stale skip,
      // still pinned after a deferral.
      if (prev == Outcome::kDeferred) expiry_deferred_.push_back(e);
      continue;
    }
    Node& n = *nodes_[e.node];
    const bool has = parallel ? ttl_verdicts_[k].has : n.buffer().has(e.msg);
    if (!has) {
      prev = Outcome::kStale;
      continue;
    }
    const bool pinned =
        parallel ? ttl_verdicts_[k].pinned : n.is_pinned(e.msg);
    if (pinned) {
      prev = Outcome::kDeferred;
      expiry_deferred_.push_back(e);
      continue;
    }
    const Message dead = n.buffer().take(e.msg);
    n.priority_cache().invalidate(e.msg);
    registry_.on_copy_removed(e.msg, e.node, /*dropped=*/false);
    ++stats_.ttl_expired;
    notify([&](WorldObserver& o) { o.on_ttl_expired(e.node, dead, now_); });
    prev = Outcome::kPurged;
  }
  for (const ExpiryEvent& e : expiry_deferred_) {
    push_expiry(e.node, e.expiry, e.msg);
  }
}

void World::start_transfers() {
  for (const NodePair& p : active_contacts()) {
    try_start(static_cast<NodeId>(p.first), static_cast<NodeId>(p.second));
    try_start(static_cast<NodeId>(p.second), static_cast<NodeId>(p.first));
  }
}

void World::try_start(NodeId from_id, NodeId to_id) {
  if (hot_.radio_busy[from_id] != 0 || hot_.radio_busy[to_id] != 0) return;
  // Routers choose from the sender's buffer by contract: an empty buffer
  // can never yield a candidate, so skip the router (and the memo) — the
  // dominant case in sparse large-N fleets. Buffer admission rejects
  // size == 0, so used == 0 ⟺ empty and the SoA occupancy answers it
  // without touching the Node object.
  if (hot_.buffer_used[from_id] == 0) return;
  Node& from = node(from_id);
  Node& to = node(to_id);
  if (cfg_.priority_cache) {
    if (const IdleMemo* m = idle_memo_.find(from_id, to_id)) {
      if (now_ - m->at <= cfg_.priority_refresh_s &&
          m->from_stamp == from.priority_cache().stamp() &&
          m->from_rev == from.buffer().revision() &&
          m->to_stamp == to.priority_cache().stamp() &&
          m->to_rev == to.buffer().revision()) {
        return;  // nothing was sendable and no priority input moved since
      }
      idle_memo_.erase(from_id, to_id);
    }
  }
  const auto msg = router_->next_to_send(from, to, ctx_for(from));
  if (!msg.has_value()) {
    if (cfg_.priority_cache) {
      idle_memo_.insert_or_assign(
          from_id, to_id,
          IdleMemo{now_, from.priority_cache().stamp(),
                   from.buffer().revision(), to.priority_cache().stamp(),
                   to.buffer().revision()});
    }
    return;
  }
  const Message* copy = from.buffer().find(*msg);
  DTN_REQUIRE(copy != nullptr, "router chose a message the node lacks");
  from.pin(*msg);
  from.set_radio_busy(true);
  to.set_radio_busy(true);
  Transfer t;
  t.from = from_id;
  t.to = to_id;
  t.msg = *msg;
  t.started = now_;
  double bandwidth = cfg_.bandwidth;
  if (fault_ != nullptr) {
    // Degraded endpoints throttle the link; the eta is fixed at start
    // (a window opening or closing mid-transfer does not retime it).
    bandwidth *= std::min(hot_.bitrate_factor[from_id],
                          hot_.bitrate_factor[to_id]);
  }
  t.eta = now_ + static_cast<double>(copy->size) / bandwidth;
  t.seq = transfer_seq_++;
  outgoing_[from_id] = static_cast<std::int64_t>(transfers_.size());
  transfers_.push_back(t);
  if (!cfg_.legacy_step) {
    eta_heap_.push_back(EtaEvent{t.eta, t.from, t.seq});
    std::push_heap(eta_heap_.begin(), eta_heap_.end(), &eta_after);
  }
  ++stats_.transfers_started;
  notify([&t](WorldObserver& o) { o.on_transfer_started(t); });
}

void World::handle_drop(Node& n, const Message& m) {
  ++stats_.drops;
  registry_.on_copy_removed(m.id, n.id(), /*dropped=*/true);
  if (policy_->uses_dropped_list()) n.record_drop(m.id, now_);
  notify([&](WorldObserver& o) { o.on_drop(n.id(), m, now_); });
}

bool World::inject_message(Message m) {
  ++stats_.created;
  const MessageId id = m.id;
  const NodeId src = m.source;
  const SimTime expiry = m.expiry();
  DTN_REQUIRE(src < nodes_.size(), "inject: source out of range");
  registry_.on_created(id, src);
  notify([&m, this](WorldObserver& o) { o.on_message_created(m, now_); });
  if (fault_ != nullptr && !fault_->is_up(src)) {
    ++stats_.source_rejected;
    registry_.on_copy_removed(id, src, /*dropped=*/true);
    return false;  // mirror generate_traffic: a down source loses the message
  }
  Node& source = node(src);
  Node::AdmitResult res = source.admit(std::move(m), ctx_for(source));
  if (!res.admitted) {
    ++stats_.source_rejected;
    registry_.on_copy_removed(id, src, /*dropped=*/true);
    // Mirror generate_traffic: a source-side rejection is a local drop —
    // SDSRP's d̂_i must not depend on how the message entered the world.
    if (policy_->uses_dropped_list()) source.record_drop(id, now_);
    return false;
  }
  if (!cfg_.legacy_step) push_expiry(src, expiry, id);
  for (const Message& ev : res.evicted) handle_drop(source, ev);
  return true;
}

void World::purge_acked(Node& n) {
  doomed_scratch_.clear();
  for (const Message& m : n.buffer().messages()) {
    if (n.knows_delivered(m.id) && !n.is_pinned(m.id)) {
      doomed_scratch_.push_back(m.id);
    }
  }
  for (MessageId id : doomed_scratch_) {
    n.buffer().take(id);
    n.priority_cache().invalidate(id);
    registry_.on_copy_removed(id, n.id(), /*dropped=*/false);
    ++stats_.ack_purged;
  }
}

void World::sample_occupancy() {
  // Streams the SoA byte-accounting arrays; Buffer requires a positive
  // capacity, so the per-node ratio is always well-defined.
  double total = 0.0;
  for (std::size_t i = 0; i < hot_.buffer_used.size(); ++i) {
    total += static_cast<double>(hot_.buffer_used[i]) /
             static_cast<double>(hot_.buffer_cap[i]);
  }
  stats_.buffer_occupancy.add(total / static_cast<double>(nodes_.size()));
}

namespace {

void write_pair_time_map(snapshot::ArchiveWriter& out,
                         const std::map<NodePair, double>& m) {
  out.u64(m.size());
  for (const auto& [p, t] : m) {  // std::map iterates sorted
    out.u64(p.first);
    out.u64(p.second);
    out.f64(t);
  }
}

void read_pair_time_map(snapshot::ArchiveReader& in,
                        std::map<NodePair, double>& m) {
  m.clear();
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto a = static_cast<std::size_t>(in.u64());
    const auto b = static_cast<std::size_t>(in.u64());
    m[NodePair{a, b}] = in.f64();
  }
}

void write_sample_vec(snapshot::ArchiveWriter& out,
                      const std::vector<double>& v) {
  out.u64(v.size());
  for (double s : v) out.f64(s);
}

void read_sample_vec(snapshot::ArchiveReader& in, std::vector<double>& v) {
  v.clear();
  const std::uint64_t n = in.u64();
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(in.f64());
}

}  // namespace

void World::save_state(snapshot::ArchiveWriter& out) const {
  DTN_REQUIRE(router_ != nullptr && policy_ != nullptr,
              "save_state: world not fully constructed");
  out.begin_section("world");
  out.f64(now_);
  out.f64(next_occupancy_sample_);
  out.u64(nodes_.size());
  for (const auto& n : nodes_) n->save_state(out);
  tracker_.save_state(out);
  // Transfers are stored unordered (swap-pop removal); serialize sorted
  // by sender — unique per the radio-serialization invariant — so the
  // bytes depend only on simulation state, not removal history, and the
  // legacy and event-driven paths hash identically. `seq` is derived
  // bookkeeping and is reassigned on load.
  out.u64(transfers_.size());
  std::vector<std::size_t> order(transfers_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return transfers_[a].from < transfers_[b].from;
  });
  for (std::size_t i : order) {
    const Transfer& t = transfers_[i];
    out.u32(t.from);
    out.u32(t.to);
    out.u64(t.msg);
    out.f64(t.started);
    out.f64(t.eta);
  }
  out.boolean(gen_ != nullptr);
  if (gen_ != nullptr) gen_->save_state(out);
  registry_.save_state(out);
  stats_.save_state(out);
  router_->save_state(out);
  policy_->save_state(out);
  write_pair_time_map(out, pair_last_end_);
  write_pair_time_map(out, pair_up_since_);
  write_sample_vec(out, imt_samples_);
  write_sample_vec(out, contact_samples_);
  // v4: the fault plan is semantic state (hashed into digests) — two
  // worlds mid-outage differ even when their buffers agree. The live
  // contact set is derived (tracker ∩ plan flags ∩ positions) and is
  // recomputed on load.
  out.boolean(fault_ != nullptr);
  if (fault_ != nullptr) fault_->save_state(out);
  // The idle memo is a pure function of serialized state (same argument
  // as PriorityCache): skipped in digests, carried in checkpoints so a
  // restored run skips the same try_start calls an uninterrupted one does.
  if (!out.digest_only()) {
    out.u64(idle_memo_.size());
    idle_memo_.for_each_sorted(
        [&out](NodeId from, NodeId to, const IdleMemo& m) {
          out.u32(from);
          out.u32(to);
          out.f64(m.at);
          out.u64(m.from_stamp);
          out.u64(m.from_rev);
          out.u64(m.to_stamp);
          out.u64(m.to_rev);
        });
    // v5: arena sizing hints — a restored run pre-sizes its slabs to the
    // interrupted run's population instead of re-growing them. Derived
    // state: never hashed, informational on read.
    out.u64(arena_.high_water());
    out.u64(arena_.free_count());
  }
  out.end_section();
}

void World::load_state(snapshot::ArchiveReader& in) {
  DTN_REQUIRE(router_ != nullptr && policy_ != nullptr,
              "load_state: world not fully constructed");
  in.begin_section("world");
  now_ = in.f64();
  next_occupancy_sample_ = in.f64();
  const std::uint64_t n_nodes = in.u64();
  DTN_REQUIRE(n_nodes == nodes_.size(),
              "load_state: node count does not match this world");
  for (auto& n : nodes_) n->load_state(in);
  tracker_.load_state(in);
  transfers_.clear();
  const std::uint64_t n_transfers = in.u64();
  transfers_.reserve(n_transfers);
  for (std::uint64_t i = 0; i < n_transfers; ++i) {
    Transfer t;
    t.from = in.u32();
    t.to = in.u32();
    t.msg = in.u64();
    t.started = in.f64();
    t.eta = in.f64();
    transfers_.push_back(t);
  }
  const bool has_gen = in.boolean();
  DTN_REQUIRE(has_gen == (gen_ != nullptr),
              "load_state: traffic generator presence does not match");
  if (gen_ != nullptr) gen_->load_state(in);
  registry_.load_state(in);
  stats_.load_state(in);
  router_->load_state(in);
  policy_->load_state(in);
  read_pair_time_map(in, pair_last_end_);
  read_pair_time_map(in, pair_up_since_);
  read_sample_vec(in, imt_samples_);
  read_sample_vec(in, contact_samples_);
  if (in.version() >= 4) {
    const bool has_fault = in.boolean();
    DTN_REQUIRE(has_fault == (fault_ != nullptr),
                "load_state: fault plan presence does not match this world");
    if (fault_ != nullptr) fault_->load_state(in);
  } else {
    DTN_REQUIRE(fault_ == nullptr,
                "load_state: pre-v4 archive cannot restore a faulty world");
  }
  idle_memo_.clear();
  if (in.version() >= 2) {
    const std::uint64_t n_memo = in.u64();
    idle_memo_.reserve(n_memo);
    for (std::uint64_t i = 0; i < n_memo; ++i) {
      const NodeId a = in.u32();
      const NodeId b = in.u32();
      IdleMemo m;
      m.at = in.f64();
      m.from_stamp = in.u64();
      m.from_rev = in.u64();
      m.to_stamp = in.u64();
      m.to_rev = in.u64();
      idle_memo_.insert_or_assign(a, b, m);
    }
  }
  if (in.version() >= 5) {
    const std::uint64_t high_water = in.u64();
    in.u64();  // free count: informational
    arena_.reserve(high_water);
  }
  in.end_section();
  rebuild_event_queues();
}

void World::rebuild_event_queues() {
  // The heaps are derived state: every live obligation is recoverable
  // from the restored buffers and transfer list, and the rebuilt heaps
  // are decision-equivalent to the originals — stale tombstones only
  // ever cause pops to be skipped, and pop order is defined by the
  // (strict, total) comparator key, not by heap layout.
  outgoing_.assign(nodes_.size(), -1);
  transfer_seq_ = 0;
  eta_heap_.clear();
  for (std::size_t i = 0; i < transfers_.size(); ++i) {
    Transfer& t = transfers_[i];
    t.seq = transfer_seq_++;
    DTN_REQUIRE(t.from < nodes_.size() && outgoing_[t.from] < 0,
                "load_state: duplicate sender among in-flight transfers");
    outgoing_[t.from] = static_cast<std::int64_t>(i);
    if (!cfg_.legacy_step) {
      eta_heap_.push_back(EtaEvent{t.eta, t.from, t.seq});
    }
  }
  std::make_heap(eta_heap_.begin(), eta_heap_.end(), &eta_after);
  expiry_heap_.clear();
  if (!cfg_.legacy_step) {
    for (const auto& n : nodes_) {
      for (const Message& m : n->buffer().messages()) {
        expiry_heap_.push_back(ExpiryEvent{m.expiry(), n->id(), m.id});
      }
    }
  }
  std::make_heap(expiry_heap_.begin(), expiry_heap_.end(), &expiry_after);
  // The live contact set is derived: the restored tracker pairs filtered
  // through the restored plan flags at the restored positions reproduce
  // exactly the set the interrupted run held. The SoA fault mirrors and
  // the positions_ scratch (its inputs) are refreshed first — the next
  // advance_mobility has not run yet.
  if (fault_ != nullptr) {
    positions_.resize(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      positions_[i] = nodes_[i]->mobility().position();
      hot_.up[i] = fault_->is_up(static_cast<NodeId>(i)) ? 1 : 0;
      hot_.range_factor[i] = fault_->range_factor(static_cast<NodeId>(i));
      hot_.bitrate_factor[i] = fault_->bitrate_factor(static_cast<NodeId>(i));
    }
    compute_live_contacts(live_contacts_);
  }
}

std::uint64_t World::digest() const {
  snapshot::ArchiveWriter w(snapshot::ArchiveWriter::Mode::kDigestOnly);
  save_state(w);
  return w.digest();
}

}  // namespace dtn
