#include "src/core/node.hpp"

#include <algorithm>
#include <vector>

#include "src/core/router.hpp"
#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

Node::Node(NodeId id, MobilityPtr mobility, std::int64_t buffer_capacity,
           const Router* router, const BufferPolicy* policy,
           MessageArena& arena, const NodeEstimatorConfig& est_cfg,
           NodeHotState* hot)
    : id_(id),
      hot_(hot),
      mobility_(std::move(mobility)),
      buffer_(buffer_capacity, arena, hot, id),
      router_(router),
      policy_(policy),
      imt_(est_cfg.prior_mean_intermeeting, est_cfg.min_intermeeting_samples,
           est_cfg.imt_mode),
      dropped_(id) {
  DTN_REQUIRE(mobility_ != nullptr, "Node: mobility required");
  DTN_REQUIRE(router_ != nullptr, "Node: router required");
  DTN_REQUIRE(policy_ != nullptr, "Node: buffer policy required");
  // Mirror the estimator scalars into the SoA block (the row was added
  // by World::add_node before this constructor ran).
  if (hot_ != nullptr) imt_.bind_hot(hot_, id_);
}

void Node::unpin(MessageId id) {
  const auto it = std::find(pinned_.begin(), pinned_.end(), id);
  if (it != pinned_.end()) pinned_.erase(it);
}

bool Node::is_pinned(MessageId id) const {
  return std::find(pinned_.begin(), pinned_.end(), id) != pinned_.end();
}

bool Node::plan_admission(const Message& incoming, const PolicyContext& ctx,
                          const Message* newcomer_view,
                          std::vector<MessageId>* victims) const {
  DTN_REQUIRE(incoming.size > 0, "admission: message size must be positive");
  if (incoming.size > buffer_.capacity()) return false;  // can never fit

  std::int64_t free = buffer_.free();
  if (free >= incoming.size) return true;

  const Message* newcomer = newcomer_view != nullptr ? newcomer_view
                                                     : &incoming;
  // Work on pointers so the policy sees real Message objects.
  std::vector<const Message*> droppable;
  droppable.reserve(buffer_.count());
  for (const Message& m : buffer_.messages()) {
    if (!is_pinned(m.id)) droppable.push_back(&m);
  }

  while (free < incoming.size) {
    if (droppable.empty()) return false;  // nothing evictable left
    const Message* victim = policy_->choose_drop(droppable, newcomer, ctx);
    DTN_REQUIRE(victim != nullptr, "policy returned no drop victim");
    if (victim == newcomer) return false;  // newcomer loses, reject it
    free += victim->size;
    if (victims != nullptr) victims->push_back(victim->id);
    droppable.erase(std::find(droppable.begin(), droppable.end(), victim));
  }
  return true;
}

bool Node::would_admit(const Message& incoming, const PolicyContext& ctx,
                       const Message* newcomer_view) const {
  return plan_admission(incoming, ctx, newcomer_view, nullptr);
}

Node::AdmitResult Node::admit(Message incoming, const PolicyContext& ctx,
                              const Message* newcomer_view) {
  AdmitResult result;
  std::vector<MessageId> victims;
  if (!plan_admission(incoming, ctx, newcomer_view, &victims)) return result;
  const MessageId incoming_id = incoming.id;
  for (MessageId v : victims) {
    result.evicted.push_back(buffer_.take(v));
    prio_cache_.invalidate(v);
  }
  const bool ok = buffer_.try_insert(std::move(incoming));
  DTN_REQUIRE(ok, "admission plan did not free enough space");
  // A stale memo entry from an earlier tenure of this id must not shadow
  // the freshly admitted copy.
  prio_cache_.invalidate(incoming_id);
  result.admitted = true;
  return result;
}

namespace {

void write_sorted_id_set(snapshot::ArchiveWriter& out,
                         const std::unordered_set<MessageId>& s) {
  std::vector<MessageId> ids(s.begin(), s.end());
  std::sort(ids.begin(), ids.end());
  out.u64(ids.size());
  for (MessageId id : ids) out.u64(id);
}

void read_id_set(snapshot::ArchiveReader& in,
                 std::unordered_set<MessageId>& s) {
  s.clear();
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) s.insert(in.u64());
}

}  // namespace

void Node::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("node");
  out.u32(id_);
  mobility_->save_state(out);
  buffer_.save_state(out);
  imt_.save_state(out);
  dropped_.save_state(out);
  write_sorted_id_set(out, delivered_);
  write_sorted_id_set(out, known_delivered_);
  out.u64(pinned_.size());
  for (MessageId id : pinned_) out.u64(id);  // pin order is kernel state
  out.boolean(radio_busy());
  prio_cache_.save_state(out);
  out.end_section();
}

void Node::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("node");
  const NodeId id = in.u32();
  DTN_REQUIRE(id == id_, "node: snapshot id does not match this node");
  mobility_->load_state(in);
  buffer_.load_state(in);
  imt_.load_state(in);
  dropped_.load_state(in);
  read_id_set(in, delivered_);
  read_id_set(in, known_delivered_);
  pinned_.clear();
  const std::uint64_t n_pinned = in.u64();
  pinned_.reserve(n_pinned);
  for (std::uint64_t i = 0; i < n_pinned; ++i) pinned_.push_back(in.u64());
  set_radio_busy(in.boolean());
  if (in.version() >= 2) {
    prio_cache_.load_state(in);
  } else {
    // v1 predates the priority cache: start cold (epoch/stamp at their
    // construction values; priorities recompute on first use).
    prio_cache_.clear_transient();
  }
  in.end_section();
}

}  // namespace dtn
