#include "src/core/node.hpp"

#include <algorithm>

#include "src/core/router.hpp"
#include "src/util/error.hpp"

namespace dtn {

Node::Node(NodeId id, MobilityPtr mobility, std::int64_t buffer_capacity,
           const Router* router, const BufferPolicy* policy,
           const NodeEstimatorConfig& est_cfg)
    : id_(id),
      mobility_(std::move(mobility)),
      buffer_(buffer_capacity),
      router_(router),
      policy_(policy),
      imt_(est_cfg.prior_mean_intermeeting, est_cfg.min_intermeeting_samples,
           est_cfg.imt_mode),
      dropped_(id) {
  DTN_REQUIRE(mobility_ != nullptr, "Node: mobility required");
  DTN_REQUIRE(router_ != nullptr, "Node: router required");
  DTN_REQUIRE(policy_ != nullptr, "Node: buffer policy required");
}

void Node::unpin(MessageId id) {
  const auto it = std::find(pinned_.begin(), pinned_.end(), id);
  if (it != pinned_.end()) pinned_.erase(it);
}

bool Node::is_pinned(MessageId id) const {
  return std::find(pinned_.begin(), pinned_.end(), id) != pinned_.end();
}

bool Node::plan_admission(const Message& incoming, const PolicyContext& ctx,
                          const Message* newcomer_view,
                          std::vector<MessageId>* victims) const {
  DTN_REQUIRE(incoming.size > 0, "admission: message size must be positive");
  if (incoming.size > buffer_.capacity()) return false;  // can never fit

  std::int64_t free = buffer_.free();
  if (free >= incoming.size) return true;

  const Message* newcomer = newcomer_view != nullptr ? newcomer_view
                                                     : &incoming;
  // Work on pointers so the policy sees real Message objects.
  std::vector<const Message*> droppable;
  droppable.reserve(buffer_.count());
  for (const Message& m : buffer_.messages()) {
    if (!is_pinned(m.id)) droppable.push_back(&m);
  }

  while (free < incoming.size) {
    if (droppable.empty()) return false;  // nothing evictable left
    const Message* victim = policy_->choose_drop(droppable, newcomer, ctx);
    DTN_REQUIRE(victim != nullptr, "policy returned no drop victim");
    if (victim == newcomer) return false;  // newcomer loses, reject it
    free += victim->size;
    if (victims != nullptr) victims->push_back(victim->id);
    droppable.erase(std::find(droppable.begin(), droppable.end(), victim));
  }
  return true;
}

bool Node::would_admit(const Message& incoming, const PolicyContext& ctx,
                       const Message* newcomer_view) const {
  return plan_admission(incoming, ctx, newcomer_view, nullptr);
}

Node::AdmitResult Node::admit(Message incoming, const PolicyContext& ctx,
                              const Message* newcomer_view) {
  AdmitResult result;
  std::vector<MessageId> victims;
  if (!plan_admission(incoming, ctx, newcomer_view, &victims)) return result;
  for (MessageId v : victims) result.evicted.push_back(buffer_.take(v));
  const bool ok = buffer_.try_insert(std::move(incoming));
  DTN_REQUIRE(ok, "admission plan did not free enough space");
  result.admitted = true;
  return result;
}

}  // namespace dtn
