// Fundamental identifier and time types of the DTN simulator.
#pragma once

#include <cstdint>

namespace dtn {

using NodeId = std::uint32_t;
using MessageId = std::uint64_t;
/// Simulation time in seconds since simulation start.
using SimTime = double;

inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

}  // namespace dtn
