// PriorityCache: per-node memoization of scheduling/drop priorities.
//
// Under SDSRP every scheduling and drop decision re-derives the Eq. 10
// priority — spray-tree m̂ (Eq. 15), dropped-list d̂ and the intermeeting
// mean — for every candidate message, on every active contact, every
// step. The inputs, however, only change on discrete events: a copy-count
// change / spray-time append (`Router::on_sent`), a local drop record, a
// dropped-list gossip merge, or an intermeeting-estimator update. This
// cache stores `(priority, computed_at)` per message id between those
// events.
//
// Invalidation is epoch/dirty:
//   * `bump_epoch()` — a node-wide input changed (estimator update,
//     dropped-list merge): every entry and the send-order snapshot die.
//     The epoch counter itself is part of the node's semantic state and
//     is serialized into snapshots and digests.
//   * `invalidate(id)` — a single message's input changed (copies,
//     spray lineage, its drop count): that entry and the send-order
//     snapshot die.
//   * the `priority_refresh_s` time quantum — priorities also decay
//     continuously with time (remaining TTL, censored-MLE λ); an entry
//     older than the quantum is recomputed. At `priority_refresh_s = 0`
//     an entry is only reused within the same instant it was computed,
//     which makes the cached path decision-identical to the uncached one
//     (the priority functions are pure in (message, node state, now)).
//
// The send-order snapshot memoizes the peer-independent part of
// `SprayAndWaitRouter::next_to_send` — the policy-sorted spray candidate
// list — keyed additionally by the buffer revision so membership churn
// invalidates it.
//
// Cached values are a pure function of serialized state, so digests
// (`ArchiveWriter::Mode::kDigestOnly`) hash only the epoch; checkpoint
// bytes additionally carry the entries so a restored run replays
// bit-identically to an uninterrupted one at any refresh quantum.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/types.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

class PriorityCache {
 public:
  std::uint64_t epoch() const { return epoch_; }

  /// Monotonic change counter: advances on every `bump_epoch()` AND every
  /// `invalidate(id)`. Together with `Buffer::revision()` it fingerprints
  /// "any priority input of this node may have changed" — `World` keys
  /// its per-contact idle memo (the cached "nothing to send" verdict of
  /// `try_start`) on it. Bumps happen unconditionally (cached or not), so
  /// the counter is identical across cached and uncached runs and is safe
  /// to hash into digests.
  std::uint64_t stamp() const { return stamp_; }

  /// Node-wide invalidation: clears every entry and the order snapshot.
  void bump_epoch();

  /// Per-message invalidation; also drops the order snapshot (the
  /// message's rank may have changed).
  void invalidate(MessageId id);

  /// Drops all cached state without advancing the epoch (snapshot load).
  void clear_transient();

  /// True and `*out` filled if a value computed within `refresh_s` of
  /// `now` is cached for `id`.
  bool lookup(MessageId id, SimTime now, double refresh_s,
              double* out) const;
  void store(MessageId id, SimTime now, double priority);

  // --- warm prefetch side-buffer (DESIGN.md §11) ---
  // Parallel prewarm computes priorities ahead of the serial decision
  // phase into this non-semantic buffer; `cached_priority` consumes a
  // warm value only on a memo miss and stores it exactly where the lazy
  // path would have stored its own computation. A warm value is valid
  // only at the instant it was computed and dies on any invalidation
  // event, so it is always equal to what the lazy path would compute —
  // the memo (and hence every decision) is bit-identical whether the
  // prewarm ran or not. Never serialized.
  /// Starts a prewarm batch at `now`, discarding earlier warm values.
  void warm_reset(SimTime now);
  void warm_store(MessageId id, double priority);
  /// True and `*out` filled if a warm value computed exactly at `now`
  /// exists for `id`.
  bool warm_lookup(MessageId id, SimTime now, double* out) const;

  /// The memoized send order, or nullptr when it is missing/stale.
  const std::vector<MessageId>* send_order(SimTime now, double refresh_s,
                                           std::uint64_t buffer_revision) const;
  void store_send_order(std::vector<MessageId> ids, SimTime now,
                        std::uint64_t buffer_revision);

  std::size_t entry_count() const { return entries_.size(); }

  /// Snapshot/restore. The epoch is always written (it is semantic
  /// state); the entries are written only to buffered archives — a
  /// digest-only pass skips them so cached and uncached runs of the same
  /// trajectory hash identically.
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  struct Entry {
    double priority = 0.0;
    SimTime computed_at = 0.0;
  };

  std::uint64_t epoch_ = 0;
  std::uint64_t stamp_ = 0;
  std::unordered_map<MessageId, Entry> entries_;
  std::unordered_map<MessageId, double> warm_;  ///< prefetch, never saved
  SimTime warm_at_ = -1.0;  ///< instant the warm batch was computed at

  std::vector<MessageId> order_;
  SimTime order_at_ = 0.0;
  std::uint64_t order_rev_ = 0;
  bool order_valid_ = false;
};

}  // namespace dtn
