// NodeHotState: structure-of-arrays block for the per-node scalars the
// step loop streams over every step.
//
// The phases that visit *every* node per step — fault-filtered contact
// derivation, occupancy sampling, the radio-idle gate in try_start — used
// to chase one Node* (and often one FaultPlan flag word) per node. Here
// those scalars live in parallel arrays indexed by NodeId, owned by the
// World and written through the owning objects:
//
//   radio_busy            — written by Node::set_radio_busy
//   buffer_used/rev       — written by Buffer on insert/remove/load
//   buffer_cap            — fixed at add_node
//   up, range_factor,     — fault-plan mirrors, written by World when a
//   bitrate_factor          fault event pops (and refreshed on restore)
//
// Node and Buffer keep private fallback members for hot == nullptr so
// they remain constructible standalone in unit tests; inside a World the
// arrays are the single source of truth.
#pragma once

#include <cstdint>
#include <vector>

namespace dtn {

struct NodeHotState {
  std::vector<std::uint8_t> radio_busy;
  std::vector<std::int64_t> buffer_used;
  std::vector<std::int64_t> buffer_cap;
  std::vector<std::uint64_t> buffer_rev;
  std::vector<std::uint8_t> up;            ///< fault mirror; 1 when healthy
  std::vector<double> range_factor;        ///< fault mirror; 1.0 nominal
  std::vector<double> bitrate_factor;      ///< fault mirror; 1.0 nominal

  std::size_t size() const { return radio_busy.size(); }

  void add_node(std::int64_t capacity_bytes) {
    radio_busy.push_back(0);
    buffer_used.push_back(0);
    buffer_cap.push_back(capacity_bytes);
    buffer_rev.push_back(0);
    up.push_back(1);
    range_factor.push_back(1.0);
    bitrate_factor.push_back(1.0);
  }

  void reserve(std::size_t n) {
    radio_busy.reserve(n);
    buffer_used.reserve(n);
    buffer_cap.reserve(n);
    buffer_rev.reserve(n);
    up.reserve(n);
    range_factor.reserve(n);
    bitrate_factor.reserve(n);
  }
};

}  // namespace dtn
