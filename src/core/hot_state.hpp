// NodeHotState: structure-of-arrays block for the per-node scalars the
// step loop streams over every step.
//
// The phases that visit *every* node per step — fault-filtered contact
// derivation, occupancy sampling, the radio-idle gate in try_start — used
// to chase one Node* (and often one FaultPlan flag word) per node. Here
// those scalars live in parallel arrays indexed by NodeId, owned by the
// World and written through the owning objects:
//
//   radio_busy            — written by Node::set_radio_busy
//   buffer_used/rev       — written by Buffer on insert/remove/load
//   buffer_cap            — fixed at add_node
//   up, range_factor,     — fault-plan mirrors, written by World when a
//   bitrate_factor          fault event pops (and refreshed on restore)
//   imt_*                 — intermeeting-estimator mirrors, written by
//                           IntermeetingEstimator when bound (phase 2)
//
// Node and Buffer keep private fallback members for hot == nullptr so
// they remain constructible standalone in unit tests; inside a World the
// arrays are the single source of truth.
//
// SoA phase 2 (DESIGN.md §16): the per-node SDSRP estimator scalars are
// mirrored here so priority evaluation — the hottest per-message loop in
// Table-II-scale sweeps — streams five parallel arrays instead of
// chasing a Node* and an IntermeetingEstimator per call.
// hot_mean_intermeeting replicates the estimator's arithmetic expression
// *exactly* (same operations, same order, on verbatim-copied scalars) so
// the mirrored path is bit-identical to the member-function path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dtn {

struct NodeHotState {
  std::vector<std::uint8_t> radio_busy;
  std::vector<std::int64_t> buffer_used;
  std::vector<std::int64_t> buffer_cap;
  std::vector<std::uint64_t> buffer_rev;
  std::vector<std::uint8_t> up;            ///< fault mirror; 1 when healthy
  std::vector<double> range_factor;        ///< fault mirror; 1.0 nominal
  std::vector<double> bitrate_factor;     ///< fault mirror; 1.0 nominal

  // Intermeeting-estimator mirrors (written through by the bound
  // estimator on every contact event and on restore).
  std::vector<std::uint64_t> imt_events;   ///< completed-gap count
  std::vector<double> imt_naive_mean;      ///< mean of completed gaps
  std::vector<double> imt_closed_exposure; ///< Σ completed gaps
  std::vector<std::uint64_t> imt_open_count;   ///< peers awaiting re-meet
  std::vector<double> imt_open_since_sum;  ///< Σ last_end over open gaps
  // Per-node estimator configuration (fixed at bind time).
  std::vector<double> imt_prior;           ///< prior E(I) before warm-up
  std::vector<std::uint64_t> imt_min_samples;
  std::vector<std::uint8_t> imt_naive;     ///< 1 = naive-mean mode

  std::size_t size() const { return radio_busy.size(); }

  void add_node(std::int64_t capacity_bytes) {
    radio_busy.push_back(0);
    buffer_used.push_back(0);
    buffer_cap.push_back(capacity_bytes);
    buffer_rev.push_back(0);
    up.push_back(1);
    range_factor.push_back(1.0);
    bitrate_factor.push_back(1.0);
    imt_events.push_back(0);
    imt_naive_mean.push_back(0.0);
    imt_closed_exposure.push_back(0.0);
    imt_open_count.push_back(0);
    imt_open_since_sum.push_back(0.0);
    imt_prior.push_back(30000.0);
    imt_min_samples.push_back(4);
    imt_naive.push_back(1);
  }

  void reserve(std::size_t n) {
    radio_busy.reserve(n);
    buffer_used.reserve(n);
    buffer_cap.reserve(n);
    buffer_rev.reserve(n);
    up.reserve(n);
    range_factor.reserve(n);
    bitrate_factor.reserve(n);
    imt_events.reserve(n);
    imt_naive_mean.reserve(n);
    imt_closed_exposure.reserve(n);
    imt_open_count.reserve(n);
    imt_open_since_sum.reserve(n);
    imt_prior.reserve(n);
    imt_min_samples.reserve(n);
    imt_naive.reserve(n);
  }
};

/// E(I) from the SoA mirrors: replicates
/// IntermeetingEstimator::mean_intermeeting bit-for-bit (the golden
/// digest pins depend on this — any re-association of the arithmetic
/// changes rounding and diverges).
inline double hot_mean_intermeeting(const NodeHotState& h, std::size_t id,
                                    double now) {
  if (h.imt_events[id] < h.imt_min_samples[id]) return h.imt_prior[id];
  if (h.imt_naive[id] != 0) {
    const double m = h.imt_naive_mean[id];
    return m > 0.0 ? m : h.imt_prior[id];
  }
  const double open_exposure =
      static_cast<double>(h.imt_open_count[id]) * now - h.imt_open_since_sum[id];
  const double exposure = h.imt_closed_exposure[id] + std::max(0.0, open_exposure);
  const double events = static_cast<double>(h.imt_events[id]);
  const double mean = exposure / events;
  return mean > 0.0 ? mean : h.imt_prior[id];
}

}  // namespace dtn
