#include "src/core/message_generator.hpp"

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

MessageGenerator::MessageGenerator(const MessageGenConfig& cfg,
                                   std::size_t n_nodes, Rng rng)
    : cfg_(cfg), n_nodes_(n_nodes), rng_(rng) {
  DTN_REQUIRE(n_nodes >= 2, "message generator: need at least two nodes");
  DTN_REQUIRE(cfg.interval_min > 0.0 && cfg.interval_max >= cfg.interval_min,
              "message generator: bad interval range");
  DTN_REQUIRE(cfg.size > 0, "message generator: bad message size");
  DTN_REQUIRE(cfg.ttl > 0.0, "message generator: bad TTL");
  DTN_REQUIRE(cfg.initial_copies >= 1, "message generator: bad copy budget");
  next_time_ = cfg_.start + rng_.uniform(cfg_.interval_min, cfg_.interval_max);
}

Message MessageGenerator::make_message(SimTime t) {
  Message m;
  m.id = next_id_++;
  m.source = static_cast<NodeId>(
      rng_.uniform_int(0, static_cast<std::int64_t>(n_nodes_) - 1));
  // Distinct destination, uniform over the other nodes.
  auto dst = static_cast<NodeId>(
      rng_.uniform_int(0, static_cast<std::int64_t>(n_nodes_) - 2));
  if (dst >= m.source) ++dst;
  m.destination = dst;
  m.size = cfg_.size_max > cfg_.size
               ? rng_.uniform_int(cfg_.size, cfg_.size_max)
               : cfg_.size;
  m.created = t;
  m.ttl = cfg_.ttl;
  m.initial_copies = cfg_.initial_copies;
  m.copies = cfg_.initial_copies;
  m.hops = 0;
  m.received = t;
  return m;
}

void MessageGenerator::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("traffic");
  snapshot::write_rng(out, rng_);
  out.f64(next_time_);
  out.u64(next_id_);
  out.end_section();
}

void MessageGenerator::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("traffic");
  snapshot::read_rng(in, rng_);
  next_time_ = in.f64();
  next_id_ = in.u64();
  in.end_section();
}

std::vector<Message> MessageGenerator::poll(SimTime now) {
  std::vector<Message> out;
  poll(now, out);
  return out;
}

void MessageGenerator::poll(SimTime now, std::vector<Message>& out) {
  out.clear();
  while (next_time_ <= now && next_time_ <= cfg_.stop) {
    out.push_back(make_message(next_time_));
    next_time_ += rng_.uniform(cfg_.interval_min, cfg_.interval_max);
  }
}

}  // namespace dtn
