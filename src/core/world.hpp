// World: the discrete-step DTN simulation kernel.
//
// Each step of `step_s` seconds the kernel: moves every node, diffs the
// in-range pair set into link up/down events, finishes transfers whose
// transmission time elapsed, creates scheduled traffic, expires TTLs, and
// starts new transfers on idle links. This mirrors the ONE simulator's
// world model (sampled movement, range connectivity, finite-bandwidth
// serial transfers, byte-capacity buffers).
//
// Determinism: given a seed and a fixed configuration, every run produces
// identical results — all iteration orders are explicitly sorted and all
// randomness flows from explicitly forked Rng streams.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "src/core/buffer_policy.hpp"
#include "src/core/hot_state.hpp"
#include "src/core/idle_table.hpp"
#include "src/core/message_arena.hpp"
#include "src/core/message_generator.hpp"
#include "src/core/node.hpp"
#include "src/core/observer.hpp"
#include "src/core/oracle.hpp"
#include "src/core/router.hpp"
#include "src/core/sim_stats.hpp"
#include "src/core/types.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/net/contact_tracker.hpp"
#include "src/util/task_graph.hpp"
#include "src/util/units.hpp"

namespace dtn {

struct WorldConfig {
  double step = 1.0;          ///< movement/connectivity sampling period (s)
  double duration = 18000.0;  ///< total simulated time (s)
  double range = 100.0;       ///< radio range (m)
  double bandwidth = units::kbps(250);  ///< link speed (bytes/s)
  bool collect_intermeeting = false;    ///< record pairwise samples (Fig. 3)
  double occupancy_sample_interval = 60.0;  ///< s between occupancy samples
  /// Immunization extension (off by default — the paper's evaluation runs
  /// without any acknowledgment mechanism): destinations seed an
  /// "already delivered" set that nodes exchange on contact; holders
  /// purge copies of delivered messages and refuse new ones.
  bool ack_gossip = false;
  /// Priority memoization (DESIGN.md §8): cache-safe policies reuse
  /// computed priorities and per-node send orders between invalidation
  /// events instead of re-deriving them per contact per step.
  bool priority_cache = true;
  /// Staleness quantum for pure time decay (remaining TTL, censored-MLE
  /// λ): a cached priority older than this is recomputed. 0 restricts
  /// reuse to the same instant, making cached runs decision-identical to
  /// uncached ones (`World::digest()`-provable); the default trades ≤15 s
  /// of TTL-decay staleness for the hot-path speedup. The quantum also
  /// bounds how long an idle contact pair may be skipped outright.
  double priority_refresh_s = 15.0;
  /// Escape hatch: run the original scan-based step loop (full-buffer TTL
  /// scans, transfer-vector scans, a full contact pass every step)
  /// instead of the event-driven core (DESIGN.md §9: expiry/ETA heaps +
  /// kinetic contact skipping). Both paths are decision-identical —
  /// `World::digest()` trajectories match bit-for-bit — so this exists
  /// for the equivalence tests and benchmarks, not as a feature switch.
  bool legacy_step = false;
  /// Intra-step parallelism (DESIGN.md §11/§16): execution-lane count
  /// (including the caller) for the persistent-worker task-graph step
  /// executor — mobility advance, contact candidate enumeration,
  /// watch-pair rechecks, contact-event estimator updates, priority
  /// prewarm, TTL candidate classification all become dependency nodes
  /// of one per-step graph dispatched with a single epoch bump.
  /// 0 (the default) runs the serial reference step loop; any value
  /// produces bit-identical digest trajectories — the parallel phases
  /// only reorder *computation*, never *application*, and every merge
  /// is a deterministic concatenation or an exact min/max reduction.
  /// Scenario key: `Parallel.threads`.
  std::size_t threads = 0;
  /// Per-phase wall-clock accounting (PhaseProfile, bench support). Off
  /// by default: the step loop carries zero timing overhead.
  bool profile_phases = false;
};

/// Cumulative wall-clock seconds per step phase (profile_phases only).
/// The serial path stamps the six phases individually; the task-graph
/// path folds the graph-resident phases into dispatch_s (the phases
/// overlap in time there, so per-phase walls would double-count).
struct PhaseProfile {
  double mobility_s = 0.0;   ///< mobility advance (serial path)
  double contacts_s = 0.0;   ///< tracker update + link churn (serial path)
  double events_s = 0.0;     ///< completions + traffic (serial path)
  double ttl_s = 0.0;        ///< TTL purge (serial path)
  double prewarm_s = 0.0;    ///< priority prewarm (serial path)
  double transfers_s = 0.0;  ///< start_transfers (both paths)
  double dispatch_s = 0.0;   ///< task-graph run(), graph path only
  std::uint64_t steps = 0;
};

/// An in-flight message transmission.
struct Transfer {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  MessageId msg = 0;
  SimTime started = 0.0;
  SimTime eta = 0.0;
  /// In-run creation order; identifies this transfer in the completion
  /// heap (an aborted transfer leaves a stale heap entry whose seq no
  /// longer matches). Derived state: not serialized, reassigned on load.
  std::uint64_t seq = 0;
};

class World {
 public:
  explicit World(const WorldConfig& cfg);

  // --- setup (call before adding nodes / running) ---
  void set_router(std::unique_ptr<Router> router);
  void set_policy(std::unique_ptr<BufferPolicy> policy);
  /// Adds a node; returns its id (assigned densely from 0).
  NodeId add_node(MobilityPtr mobility, std::int64_t buffer_capacity,
                  const NodeEstimatorConfig& est_cfg = {});
  /// Enables the periodic traffic source.
  void enable_traffic(const MessageGenConfig& cfg, std::uint64_t seed);
  /// Enables fault injection (node churn, link aborts, radio degradation).
  /// Call after adding every node and before the first step; a validated
  /// but inert config (no mechanism can ever fire) is a no-op, keeping
  /// the fault-free hot path untouched.
  void enable_faults(const FaultConfig& cfg, std::uint64_t seed);

  /// Registers a report observer (non-owning; must outlive the world).
  /// Observers fire in registration order.
  void add_observer(WorldObserver* observer);

  // --- execution ---
  void step();
  void run_until(SimTime t);
  void run();  ///< until cfg.duration

  /// Creates a message directly in its source's buffer (tests, examples).
  /// Returns false if the source's admission control rejected it.
  bool inject_message(Message m);

  // --- inspection ---
  SimTime now() const { return now_; }
  const WorldConfig& config() const { return cfg_; }
  std::size_t node_count() const { return nodes_.size(); }
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  const SimStats& stats() const { return stats_; }
  const GlobalRegistry& registry() const { return registry_; }
  const ContactTracker& contacts() const { return tracker_; }
  const std::vector<Transfer>& transfers_in_flight() const { return transfers_; }
  const Router& router() const { return *router_; }
  const BufferPolicy& policy() const { return *policy_; }
  /// The slab arena holding every buffered message copy (DESIGN.md §14).
  const MessageArena& arena() const { return arena_; }
  /// The per-node SoA hot-state block (radio, buffer, fault mirrors).
  const NodeHotState& hot_state() const { return hot_; }
  /// The active fault plan, or nullptr when fault injection is off.
  const FaultPlan* faults() const { return fault_.get(); }
  /// Links usable this step: the geometric contact set, minus pairs
  /// severed by the fault layer (an endpoint down, or a degraded radio
  /// whose shrunken range no longer covers the distance).
  const std::vector<NodePair>& active_contacts() const {
    return fault_ != nullptr ? live_contacts_ : tracker_.current();
  }
  /// Pairwise intermeeting samples (only when collect_intermeeting).
  const std::vector<double>& intermeeting_samples() const {
    return imt_samples_;
  }
  /// Contact duration samples (only when collect_intermeeting).
  const std::vector<double>& contact_duration_samples() const {
    return contact_samples_;
  }

  /// Context used for policy evaluation at `n`'s buffer.
  PolicyContext ctx_for(const Node& n) const;

  /// Cumulative per-phase wall clock (only populated when
  /// cfg.profile_phases; zeros otherwise).
  const PhaseProfile& phase_profile() const { return profile_; }

  // --- snapshot / digest ---
  /// Serializes the complete dynamic state (time, nodes, contacts,
  /// in-flight transfers, traffic schedule, registry, stats, router and
  /// policy state). The structure — node count, capacities, router/policy
  /// identity — is NOT serialized; restore into a world built from the
  /// same configuration (see snapshot/checkpoint.hpp).
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

  /// FNV-1a digest over the canonical serialized state. Two worlds with
  /// equal digests are (up to hash collision) in identical states; a
  /// deterministic run produces an identical digest trajectory every time.
  std::uint64_t digest() const;

 private:
  /// A scheduled TTL expiry (event-driven purge). Entries are lazily
  /// invalidated: a message that was dropped, forwarded away or purged
  /// leaves a stale entry that is discarded when popped.
  struct ExpiryEvent {
    SimTime expiry = 0.0;
    NodeId node = kNoNode;
    MessageId msg = 0;
  };
  /// A scheduled transfer completion. Valid while `outgoing_[from]`
  /// points at a transfer with the same seq (aborts tombstone entries).
  struct EtaEvent {
    SimTime eta = 0.0;
    NodeId from = kNoNode;
    std::uint64_t seq = 0;
  };
  /// Min-heap comparators (std::push_heap et al. expect "less", so these
  /// order *after*); ties break on the full key for determinism.
  static bool expiry_after(const ExpiryEvent& a, const ExpiryEvent& b);
  static bool eta_after(const EtaEvent& a, const EtaEvent& b);

  // --- step bodies (dispatch in step()) ---
  /// The serial reference step: phases run strictly in order. Used when
  /// cfg.threads == 0 and for the legacy (scan-based) step variant; with
  /// an executor attached, the mobility / tracker / TTL / prewarm phases
  /// still fan out via for_each, but every phase is a barrier.
  void step_serial();
  /// The task-graph step (DESIGN.md §16): the same phases as dependency
  /// nodes of one graph dispatched with a single epoch bump, so
  /// independent phases overlap instead of barriering. Decision- and
  /// digest-identical to step_serial at any lane count.
  void step_graph();
  /// Builds the step graph once (kernels capture `this`; per-step item
  /// counts are refreshed by the planning nodes via set_items).
  void build_step_graph();
  /// True when the step graph may run this step: event-driven core, no
  /// faults. (Observers are fine: every observer-visible event fires from
  /// serial nodes or the caller in serial order.)
  bool graph_eligible() const;
  // Graph-node bodies (see build_step_graph for the dependency shape).
  void plan_contacts();                 ///< g_plan_: reduce + tracker plan
  void merge_contacts_and_shard_imt();  ///< g_merge_
  void run_imt_groups(std::size_t begin, std::size_t end);  ///< g_imt_
  void apply_step_events();             ///< g_apply_

  void advance_mobility();
  /// Parallel-mode only: batch-computes the priorities the upcoming
  /// serial start_transfers phase would derive lazily, sharded per node,
  /// into each node's PriorityCache warm buffer (consumed on memo miss,
  /// decision-identical either way). No-op when serial, cache off, or the
  /// policy opts out.
  void prewarm_priorities();
  /// True when the prewarm node is worth dispatching (cache on, policy
  /// cache-safe, contacts exist). Shared gate for both step bodies.
  bool prewarm_enabled() const;
  /// Rebuilds prewarm_nodes_ (sorted unique endpoints of the active
  /// contact set); returns its size.
  std::size_t build_prewarm_nodes();
  void process_link_down(const NodePair& p);
  void process_link_up(const NodePair& p);
  void abort_transfers_on(const NodePair& p);
  void abort_transfer_from(NodeId from, NodeId to);
  void complete_due_transfers();
  void handle_completion(const Transfer& t);
  void generate_traffic();
  void purge_ttl();
  // --- event-phase helpers shared by both step bodies ---
  /// Pops every eta-heap entry due at now_ (tombstones included) into
  /// eta_due_scratch_ in heap-pop order. Safe to run before link churn:
  /// aborts never touch the heap, and validity (outgoing_/seq match) is
  /// checked at apply time, exactly like the interleaved serial drain.
  void pop_due_etas();
  /// Applies eta_due_scratch_ in pop order (the serial completion order).
  void apply_completions();
  /// Admits traffic_scratch_ (filled by MessageGenerator::poll) in order.
  void admit_traffic();
  /// Pops every expiry-heap entry due at now_ into due_scratch_.
  void drain_due_ttl();
  /// Applies the due batch in pop order; when `parallel`, per-entry
  /// verdicts come from ttl_verdicts_ (filled by the classify node),
  /// otherwise they are probed inline. Identical outcomes either way.
  void apply_ttl(bool parallel);
  void start_transfers();
  void try_start(NodeId from, NodeId to);
  void handle_drop(Node& n, const Message& m);
  void sample_occupancy();
  // --- fault layer (all no-ops unless fault_ is set) ---
  /// Drains fault events due this step and applies their side effects
  /// (transfer aborts, downtime accounting, reboot purges).
  void apply_fault_events();
  /// Aborts the (at most one — the radio serializes) transfer `id`
  /// participates in, counting it as fault-induced.
  void abort_faulted_transfer_of(NodeId id);
  /// Reboot with `Fault.rebootPurge`: the buffer is lost.
  void purge_on_reboot(Node& n);
  /// Filters the geometric contact set through node availability and
  /// degraded radio ranges into `out`.
  void compute_live_contacts(std::vector<NodePair>& out) const;
  /// Recomputes the live set and turns its diff against the previous one
  /// into link down/up events (replaces the raw tracker churn).
  void refresh_live_contacts();
  /// ACK gossip: removes unpinned copies of known-delivered messages.
  void purge_acked(Node& n);
  /// Computes the fleet-wide per-step motion bound from the mobility
  /// models and hands it to the contact tracker (once, lazily, on the
  /// first step — all nodes exist by then).
  void configure_kinetics();
  /// Swap-pop removal of `from`'s outgoing transfer, keeping the
  /// `outgoing_` index consistent. O(1); vector order is not meaningful.
  void remove_transfer(NodeId from);
  void push_expiry(NodeId node, SimTime expiry, MessageId msg);
  /// Reconstructs outgoing_/heaps/seqs from restored transfers+buffers.
  void rebuild_event_queues();

  /// Pre-sizes the arena, handle spans, idle table and grid directories
  /// from the fleet size and traffic schedule so the steady-state step
  /// loop allocates nothing even at 100k nodes (runs once, lazily, with
  /// configure_kinetics).
  void prepare_capacity();

  // --- quiet-step batching (run_until, DESIGN.md §16) ---
  /// How many whole steps (0..kQuietBatchMax) can provably pass no
  /// event before `t`: empty watch set, kinetic budget covering
  /// worst-case motion, no transfer/expiry/traffic/occupancy deadline
  /// inside the window. 0 disables batching for this iteration.
  std::size_t quiet_batch_limit(SimTime t) const;
  /// Advances mobility k steps fused in one parallel sweep, charging the
  /// tracker's kinetic budget per step with the exact per-step observed
  /// displacement — updates_/budget trajectories are bit-identical to k
  /// unbatched steps (which would each early-out everywhere else).
  void run_quiet_batch(std::size_t k);

  template <typename Fn>
  void notify(Fn&& fn) {
    for (WorldObserver* o : observers_) fn(*o);
  }

  WorldConfig cfg_;
  /// Persistent-worker executor for the intra-step parallel phases and
  /// the step task graph; nullptr when cfg_.threads == 0 (the serial
  /// reference path).
  std::unique_ptr<TaskExecutor> exec_;
  SimTime now_ = 0.0;
  std::vector<WorldObserver*> observers_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<BufferPolicy> policy_;
  /// Declared before nodes_: buffers free their arena handles on
  /// destruction, so the arena must outlive every Node.
  MessageArena arena_;
  NodeHotState hot_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Non-owning mobility pointers parallel to nodes_: the per-step
  /// advance loop streams over these without chasing Node objects.
  std::vector<MobilityModel*> mobility_raw_;
  ContactTracker tracker_;
  /// Active transfers, unordered (swap-pop removal). At most one per
  /// sender — try_start serializes on the radio — so `outgoing_` below
  /// indexes this vector by sender id. Serialization sorts by sender so
  /// archives and digests do not depend on removal history.
  std::vector<Transfer> transfers_;
  std::unique_ptr<MessageGenerator> gen_;
  std::unique_ptr<FaultPlan> fault_;
  /// Fault-filtered contact set (sorted; valid only when fault_ is set).
  /// Derived state: recomputed from the tracker + plan flags on restore.
  std::vector<NodePair> live_contacts_;
  std::vector<NodePair> live_scratch_;
  GlobalRegistry registry_;
  SimStats stats_;
  SimTime next_occupancy_sample_ = 0.0;

  // --- event-driven core (DESIGN.md §9) ---
  std::vector<std::int64_t> outgoing_;  ///< node id -> transfers_ index | -1
  std::uint64_t transfer_seq_ = 0;
  std::vector<EtaEvent> eta_heap_;        ///< min-heap on (eta, from, seq)
  std::vector<ExpiryEvent> expiry_heap_;  ///< min-heap (expiry, node, msg)
  std::vector<ExpiryEvent> expiry_deferred_;  ///< purge scratch (pinned)
  std::vector<Vec2> positions_;               ///< step scratch, reused
  bool kinetics_configured_ = false;

  // --- step-loop scratch, hoisted so a steady-state step allocates
  // nothing (asserted in test_parallel_step) ---
  struct TtlVerdict {
    bool has = false;
    bool pinned = false;
  };
  std::vector<ExpiryEvent> due_scratch_;   ///< purge_ttl: due batch, pop order
  std::vector<TtlVerdict> ttl_verdicts_;   ///< purge_ttl: parallel verdicts
  std::vector<NodeId> prewarm_nodes_;      ///< prewarm: deduped contact nodes
  std::vector<Message> traffic_scratch_;   ///< generate_traffic: poll output
  std::vector<Transfer> legacy_due_;       ///< legacy completion scan
  std::vector<NodeId> fault_senders_;      ///< apply_fault_events: sorted view
  std::vector<MessageId> doomed_scratch_;  ///< purge_acked / purge_on_reboot

  // --- step task graph (DESIGN.md §16) ---
  TaskGraph step_graph_;
  bool graph_built_ = false;
  int g_mob_ = -1;      ///< parallel: advance mobility (+ displacement max)
  int g_eta_ = -1;      ///< serial:   pop due completion events
  int g_poll_ = -1;     ///< serial:   poll the traffic generator
  int g_plan_ = -1;     ///< serial:   displacement reduce + tracker plan
  int g_track_ = -1;    ///< parallel: tracker shards
  int g_merge_ = -1;    ///< serial:   tracker finish + imt event grouping
  int g_imt_ = -1;      ///< parallel: per-node contact-estimator updates
  int g_apply_ = -1;    ///< serial:   churn + completions + traffic + drain
  int g_verdict_ = -1;  ///< parallel: TTL verdict classification
  int g_ttl_ = -1;      ///< serial:   TTL apply + prewarm sizing
  int g_prewarm_ = -1;  ///< parallel: priority prewarm
  /// One contact-edge event for the hoisted estimator pass: node's view
  /// of a link to peer going up/down. seq is the serial emission order;
  /// groups sorted by (node, seq) preserve each node's event order.
  struct ImtEvent {
    NodeId node = kNoNode;
    std::uint32_t seq = 0;
    NodeId peer = kNoNode;
    bool up = false;
  };
  bool mob_want_disp_ = false;             ///< g_mob_: record chunk maxima?
  std::vector<double> mob_chunk_maxd2_;    ///< g_mob_: per-chunk max disp²
  std::vector<EtaEvent> eta_due_scratch_;  ///< g_eta_ output, pop order
  std::vector<ImtEvent> imt_events_;       ///< g_merge_ output
  std::vector<std::size_t> imt_group_begin_;  ///< group starts + end sentinel
  bool imt_prehandled_ = false;  ///< g_imt_ ran: churn skips note_contact_*
  const ContactChurn* step_churn_ = nullptr;  ///< g_merge_ -> g_apply_
  bool ttl_parallel_ = false;    ///< g_apply_ -> g_ttl_: use ttl_verdicts_
  std::vector<double> quiet_maxd2_;  ///< quiet batch: step × chunk maxima
  std::size_t quiet_k_ = 0;          ///< quiet batch: steps fused
  std::size_t quiet_chunks_ = 0;     ///< quiet batch: chunk count
  /// Preallocated dispatch kernels (set once in the constructor; capture
  /// only `this`, so neither construction nor invocation allocates —
  /// the zero-steady-state-allocation tests cover the whole step loop).
  TaskKernel mobility_kernel_;     ///< advance + position sample
  TaskKernel prewarm_kernel_;      ///< prewarm_nodes_ range
  TaskKernel ttl_classify_kernel_; ///< due_scratch_ -> ttl_verdicts_
  TaskKernel quiet_kernel_;        ///< fused k-step mobility advance
  PhaseProfile profile_;

  /// Keyed by the *directional* (from, to) pair, unlike the sorted
  /// NodePair convention elsewhere; serialization iterates in sorted key
  /// order (see idle_table.hpp), byte-identical to the former std::map.
  IdleTable idle_memo_;

  // Fig. 3 collection: per-pair last contact end / start.
  std::map<NodePair, double> pair_last_end_;
  std::map<NodePair, double> pair_up_since_;
  std::vector<double> imt_samples_;
  std::vector<double> contact_samples_;
};

}  // namespace dtn
