#include "src/core/message_arena.hpp"

#include <utility>

#include "src/util/error.hpp"

namespace dtn {

MessageArena::Handle MessageArena::take_slot() {
  if (!free_list_.empty()) {
    const Handle h = free_list_.back();
    free_list_.pop_back();
    return h;
  }
  const Handle h = next_++;
  DTN_REQUIRE(h != kNullHandle, "MessageArena: handle space exhausted");
  if ((h >> kSlabShift) >= slabs_.size()) {
    slabs_.push_back(std::make_unique<Message[]>(kSlabMask + 1u));
  }
  live_.push_back(0);
  hot_dest_.push_back(kNoNode);
  hot_expiry_.push_back(0.0);
  hot_copies_.push_back(0);
  return h;
}

MessageArena::Handle MessageArena::alloc(Message&& m) {
  DTN_REQUIRE(m.size > 0, "MessageArena: message size must be positive");
  const Handle h = take_slot();
  Message& slot = get(h);
  // Keep the retired tenant's spray_times capacity when the newcomer has
  // no lineage of its own (fresh traffic) — spray appends later in the
  // run then reuse it instead of growing a new vector.
  std::vector<SimTime> recycled = std::move(slot.spray_times);
  slot = std::move(m);
  if (slot.spray_times.capacity() < recycled.capacity()) {
    recycled.clear();
    for (SimTime t : slot.spray_times) recycled.push_back(t);
    slot.spray_times = std::move(recycled);
  }
  live_[h] = 1;
  hot_dest_[h] = slot.destination;
  hot_expiry_[h] = slot.expiry();
  hot_copies_[h] = slot.copies;
  ++live_count_;
  live_bytes_ += slot.size;
  ++total_allocs_;
  return h;
}

Message MessageArena::release(Handle h) {
  DTN_REQUIRE(is_live(h), "MessageArena: release of dead handle");
  Message& slot = get(h);
  Message out = std::move(slot);
  live_[h] = 0;
  --live_count_;
  live_bytes_ -= out.size;
  ++total_frees_;
  free_list_.push_back(h);
  return out;
}

void MessageArena::free(Handle h) {
  DTN_REQUIRE(is_live(h), "MessageArena: free of dead handle");
  Message& slot = get(h);
  slot.spray_times.clear();  // keep capacity for the next tenant
  live_[h] = 0;
  --live_count_;
  live_bytes_ -= slot.size;
  ++total_frees_;
  free_list_.push_back(h);
}

void MessageArena::reserve(std::size_t n) {
  const std::size_t slabs = (n + kSlabMask) >> kSlabShift;
  while (slabs_.size() < slabs) {
    slabs_.push_back(std::make_unique<Message[]>(kSlabMask + 1u));
  }
  if (live_.capacity() < n) live_.reserve(n);
  if (free_list_.capacity() < n) free_list_.reserve(n);
  if (hot_dest_.capacity() < n) hot_dest_.reserve(n);
  if (hot_expiry_.capacity() < n) hot_expiry_.reserve(n);
  if (hot_copies_.capacity() < n) hot_copies_.reserve(n);
}

}  // namespace dtn
