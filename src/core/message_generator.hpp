// MessageGenerator: periodic traffic source matching the paper's setup —
// a new message every U[interval_min, interval_max] seconds with uniformly
// random distinct source and destination, fixed size, TTL and copy budget.
#pragma once

#include <limits>
#include <vector>

#include "src/core/message.hpp"
#include "src/core/types.hpp"
#include "src/util/rng.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

struct MessageGenConfig {
  double interval_min = 25.0;  ///< s between creations (lower bound)
  double interval_max = 35.0;  ///< s between creations (upper bound)
  std::int64_t size = 500'000;  ///< bytes (paper: 0.5 MB)
  /// When > size, message sizes are uniform in [size, size_max]
  /// (heterogeneous-payload experiments; the paper uses a fixed size).
  std::int64_t size_max = 0;
  double ttl = 18000.0;         ///< s (paper: 300 min)
  int initial_copies = 32;      ///< L, the Spray-and-Wait budget
  SimTime start = 0.0;
  SimTime stop = std::numeric_limits<double>::infinity();
};

class MessageGenerator {
 public:
  MessageGenerator(const MessageGenConfig& cfg, std::size_t n_nodes, Rng rng);

  /// All messages due at or before `now` (each call advances the schedule).
  std::vector<Message> poll(SimTime now);

  /// Allocation-free variant for the step hot path: clears `out` and fills
  /// it with the due messages, reusing its capacity across steps.
  void poll(SimTime now, std::vector<Message>& out);

  /// Next creation time (for tests).
  SimTime next_due() const { return next_time_; }

  MessageId next_id() const { return next_id_; }

  const MessageGenConfig& config() const { return cfg_; }

  /// Snapshot/restore of the traffic schedule (rng stream, next creation
  /// time and next message id); the config is verified-by-construction.
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  Message make_message(SimTime t);

  MessageGenConfig cfg_;
  std::size_t n_nodes_;
  Rng rng_;
  SimTime next_time_;
  MessageId next_id_ = 1;
};

}  // namespace dtn
