#include "src/net/contact_tracker.hpp"

#include <cmath>
#include <iterator>
#include <limits>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

namespace {
/// Full passes are sized so that, at the advertised bound, roughly this
/// many updates can be skipped between passes (budget slack / 2·bound).
constexpr double kSlackSteps = 32.0;
/// Minimum work items per shard; below this the dispatch overhead
/// dominates and the update runs as one shard. Determinism never depends
/// on the shard count, so this is a pure tuning knob.
constexpr std::size_t kMinShardItems = 64;
}  // namespace

ContactTracker::ContactTracker(double range) : range_(range), grid_(range) {
  DTN_REQUIRE(range > 0.0, "ContactTracker: range must be positive");
  // Preallocated dispatch kernel for update(): for_each hands contiguous
  // shard ranges; stage_positions_ carries the frame's positions without
  // a per-call capture allocation.
  shard_kernel_ = [this](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) run_shard(s, *stage_positions_);
  };
}

void ContactTracker::set_motion_bound(double bound) {
  // Record the advertised bound first: quiet-batch sizing reads it even
  // when the derived slack (and thus the budget) is unchanged.
  bound_ = std::isfinite(bound) && bound >= 0.0 ? bound : -1.0;
  double slack = 0.0;
  if (bound_ >= 0.0) {
    slack = bound_ == 0.0 ? range_ : std::min(range_, kSlackSteps * bound_);
  }
  if (slack == slack_) return;  // unchanged: keep any (restored) budget
  slack_ = slack;
  grid_.set_cell(range_ + slack_);
  budget_ = 0.0;  // the next update must run a full pass
}

const ContactChurn& ContactTracker::update(const std::vector<Vec2>& positions) {
  double max_d2 = 0.0;
  if (wants_displacement(positions.size())) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      max_d2 = std::max(max_d2, distance2(prev_[i], positions[i]));
    }
  }
  plan_update(positions, max_d2);
  if (exec_ != nullptr && exec_->lanes() > 1 && stage_shards_ > 1) {
    stage_positions_ = &positions;
    exec_->for_each(stage_shards_, 1, shard_kernel_);
    stage_positions_ = nullptr;
  } else {
    for (std::size_t s = 0; s < stage_shards_; ++s) run_shard(s, positions);
  }
  return finish_update();
}

std::size_t ContactTracker::shard_count(std::size_t n) const {
  if (exec_ == nullptr || exec_->lanes() <= 1) return 1;
  // At least kMinShardItems of work per shard, at most 2 shards per
  // lane (a little imbalance slack without flooding the queue).
  return std::min(exec_->lanes() * 2,
                  std::max<std::size_t>(1, n / kMinShardItems));
}

void ContactTracker::plan_update(const std::vector<Vec2>& positions,
                                 double max_d2) {
  ++updates_;
  churn_.went_up.clear();
  churn_.went_down.clear();
  stage_skip_ = false;
  if (wants_displacement(positions.size())) {
    // No pairwise distance can change by more than twice the largest
    // single-node displacement. Charging the *observed* displacement (not
    // the advertised bound) keeps skipping correct under teleports.
    const double spent = 2.0 * std::sqrt(max_d2);
    if (spent + kBudgetEps <= budget_) {
      budget_ -= spent;
      stage_skip_ = true;  // only watch pairs can have changed status
    }
  }
  prev_ = positions;
  have_prev_ = true;
  std::size_t items;
  if (stage_skip_) {
    items = watch_.size();
  } else {
    ++full_passes_;
    grid_.rebuild(positions);
    next_.clear();
    watch_.clear();
    items = positions.size();
  }
  stage_shards_ = shard_count(items);
  if (shards_.size() < stage_shards_) shards_.resize(stage_shards_);
}

void ContactTracker::run_shard(std::size_t s,
                               const std::vector<Vec2>& positions) {
  const double r2 = range_ * range_;
  Shard& sh = shards_[s];
  if (stage_skip_) {
    // Each shard owns a contiguous slice of watch_ (sorted by (i, j)):
    // its status writes touch disjoint elements and its churn comes out
    // locally sorted, so concatenating shards in order reproduces the
    // serial churn exactly.
    sh.ups.clear();
    sh.downs.clear();
    const std::size_t begin = s * watch_.size() / stage_shards_;
    const std::size_t end = (s + 1) * watch_.size() / stage_shards_;
    for (std::size_t w = begin; w < end; ++w) {
      WatchPair& wp = watch_[w];
      const bool in = distance2(positions[wp.i], positions[wp.j]) <= r2;
      if (in == wp.in_contact) continue;
      wp.in_contact = in;
      (in ? sh.ups : sh.downs).emplace_back(wp.i, wp.j);
    }
    return;
  }
  // Full pass: enumerate a contiguous range of the outer node index i.
  // Each shard's pairs are locally (i, j)-sorted and shards cover
  // ascending disjoint i ranges, so concatenation reproduces the serial
  // enumeration order; min/max margin reductions are exact (order-free),
  // so the resulting kinetic budget is bit-identical at any shard count.
  //
  // Pairs within ±slack/2 of the range boundary become watch pairs (exact
  // per-step recheck); the motion budget certifies everyone else: how
  // close the nearest non-watch non-contact pair is to entering range and
  // the farthest non-watch contact to leaving it. Excluding the band
  // keeps both margins >= slack/2, so skipping engages even when some
  // pair sits right at the boundary. Pairs beyond `reach` are not
  // enumerated; `reach` bounds the non-contact margin.
  const double reach = range_ + slack_;
  const double band = slack_ * 0.5;
  const double lo2 = (range_ - band) * (range_ - band);
  const double hi2 = (range_ + band) * (range_ + band);
  sh.hits.clear();
  sh.contacts.clear();
  sh.watch.clear();
  sh.min_nc2 = reach * reach;
  sh.max_c2 = 0.0;
  const std::size_t begin = s * positions.size() / stage_shards_;
  const std::size_t end = (s + 1) * positions.size() / stage_shards_;
  // collect_pairs_within rather than the std::function visitor: the
  // capture list would not fit std::function's inline buffer, and a
  // heap-allocated callback per pass breaks the zero-steady-state-
  // allocation property the parallel-step tests pin.
  grid_.collect_pairs_within(reach, begin, end, sh.hits);
  for (const SpatialGrid::PairHit& h : sh.hits) {
    const bool in = h.d2 <= r2;
    if (in) sh.contacts.emplace_back(h.i, h.j);
    if (slack_ > 0.0 && h.d2 >= lo2 && h.d2 <= hi2) {
      sh.watch.push_back({h.i, h.j, in});
    } else if (in) {
      sh.max_c2 = std::max(sh.max_c2, h.d2);
    } else {
      sh.min_nc2 = std::min(sh.min_nc2, h.d2);
    }
  }
}

const ContactChurn& ContactTracker::finish_update() {
  if (stage_skip_) {
    for (std::size_t s = 0; s < stage_shards_; ++s) {
      churn_.went_up.insert(churn_.went_up.end(), shards_[s].ups.begin(),
                            shards_[s].ups.end());
      churn_.went_down.insert(churn_.went_down.end(), shards_[s].downs.begin(),
                              shards_[s].downs.end());
    }
    if (churn_.went_up.empty() && churn_.went_down.empty()) return churn_;
    next_.clear();
    std::set_difference(current_.begin(), current_.end(),
                        churn_.went_down.begin(), churn_.went_down.end(),
                        std::back_inserter(next_));
    const auto mid = static_cast<std::ptrdiff_t>(next_.size());
    next_.insert(next_.end(), churn_.went_up.begin(), churn_.went_up.end());
    std::inplace_merge(next_.begin(), next_.begin() + mid, next_.end());
    current_.swap(next_);
    return churn_;
  }
  const double reach = range_ + slack_;
  double min_nc2 = reach * reach;
  double max_c2 = 0.0;
  for (std::size_t s = 0; s < stage_shards_; ++s) {
    const Shard& sh = shards_[s];
    next_.insert(next_.end(), sh.contacts.begin(), sh.contacts.end());
    watch_.insert(watch_.end(), sh.watch.begin(), sh.watch.end());
    min_nc2 = std::min(min_nc2, sh.min_nc2);
    max_c2 = std::max(max_c2, sh.max_c2);
  }
  std::set_difference(next_.begin(), next_.end(), current_.begin(),
                      current_.end(), std::back_inserter(churn_.went_up));
  std::set_difference(current_.begin(), current_.end(), next_.begin(),
                      next_.end(), std::back_inserter(churn_.went_down));
  current_.swap(next_);
  budget_ =
      slack_ > 0.0
          ? std::max(0.0, std::min(std::sqrt(min_nc2) - range_,
                                   range_ - std::sqrt(max_c2)))
          : 0.0;
  return churn_;
}

void ContactTracker::charge_quiet_step(double max_d2) {
  ++updates_;
  const double spent = 2.0 * std::sqrt(max_d2);
  DTN_REQUIRE(spent + kBudgetEps <= budget_,
              "quiet step: observed motion exceeds the kinetic budget "
              "(mobility model moved faster than its advertised bound)");
  budget_ -= spent;
}

void ContactTracker::commit_positions(const std::vector<Vec2>& positions) {
  prev_ = positions;
  have_prev_ = true;
}

void ContactTracker::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("contacts");
  out.u64(current_.size());
  for (const NodePair& p : current_) {
    out.u64(p.first);
    out.u64(p.second);
  }
  // Kinetic bookkeeping is derived-but-deterministic state: skipped in
  // digests (the legacy and event-driven paths must hash identically),
  // carried in checkpoints so a restored run skips the same steps.
  if (!out.digest_only()) {
    out.f64(slack_);
    out.f64(budget_);
    out.boolean(have_prev_);
    out.u64(prev_.size());
    for (const Vec2& p : prev_) {
      out.f64(p.x);
      out.f64(p.y);
    }
    out.u64(watch_.size());
    for (const WatchPair& wp : watch_) {
      out.u32(wp.i);
      out.u32(wp.j);
      out.boolean(wp.in_contact);
    }
  }
  out.end_section();
}

void ContactTracker::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("contacts");
  current_.clear();
  const std::uint64_t n = in.u64();
  current_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto a = static_cast<std::size_t>(in.u64());
    const auto b = static_cast<std::size_t>(in.u64());
    current_.emplace_back(a, b);
  }
  DTN_REQUIRE(std::is_sorted(current_.begin(), current_.end()),
              "contacts: snapshot pair set not sorted");
  if (in.version() >= 3) {
    slack_ = in.f64();
    budget_ = in.f64();
    have_prev_ = in.boolean();
    prev_.clear();
    const std::uint64_t np = in.u64();
    prev_.reserve(np);
    for (std::uint64_t i = 0; i < np; ++i) {
      const double x = in.f64();
      const double y = in.f64();
      prev_.push_back({x, y});
    }
    watch_.clear();
    const std::uint64_t nw = in.u64();
    watch_.reserve(nw);
    for (std::uint64_t i = 0; i < nw; ++i) {
      WatchPair wp;
      wp.i = in.u32();
      wp.j = in.u32();
      wp.in_contact = in.boolean();
      watch_.push_back(wp);
    }
  } else {
    // Pre-kinetic archive: no bookkeeping to resume. Spend the budget so
    // the next update runs a full pass and re-certifies everything.
    slack_ = 0.0;
    budget_ = 0.0;
    have_prev_ = false;
    prev_.clear();
    watch_.clear();
  }
  grid_.set_cell(range_ + slack_);
  in.end_section();
}

}  // namespace dtn
