#include "src/net/contact_tracker.hpp"

#include <algorithm>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

ContactTracker::ContactTracker(double range) : range_(range), grid_(range) {
  DTN_REQUIRE(range > 0.0, "ContactTracker: range must be positive");
}

ContactChurn ContactTracker::update(const std::vector<Vec2>& positions) {
  grid_.rebuild(positions);
  std::set<NodePair> next;
  grid_.for_each_pair_within(range_, [&next](std::size_t i, std::size_t j) {
    next.emplace(i, j);
  });

  ContactChurn churn;
  std::set_difference(next.begin(), next.end(), current_.begin(),
                      current_.end(), std::back_inserter(churn.went_up));
  std::set_difference(current_.begin(), current_.end(), next.begin(),
                      next.end(), std::back_inserter(churn.went_down));
  current_ = std::move(next);
  return churn;
}

void ContactTracker::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("contacts");
  out.u64(current_.size());
  for (const NodePair& p : current_) {
    out.u64(p.first);
    out.u64(p.second);
  }
  out.end_section();
}

void ContactTracker::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("contacts");
  current_.clear();
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto a = static_cast<std::size_t>(in.u64());
    const auto b = static_cast<std::size_t>(in.u64());
    current_.emplace(a, b);
  }
  in.end_section();
}

}  // namespace dtn
