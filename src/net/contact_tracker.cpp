#include "src/net/contact_tracker.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace dtn {

ContactTracker::ContactTracker(double range) : range_(range), grid_(range) {
  DTN_REQUIRE(range > 0.0, "ContactTracker: range must be positive");
}

ContactChurn ContactTracker::update(const std::vector<Vec2>& positions) {
  grid_.rebuild(positions);
  std::set<NodePair> next;
  grid_.for_each_pair_within(range_, [&next](std::size_t i, std::size_t j) {
    next.emplace(i, j);
  });

  ContactChurn churn;
  std::set_difference(next.begin(), next.end(), current_.begin(),
                      current_.end(), std::back_inserter(churn.went_up));
  std::set_difference(current_.begin(), current_.end(), next.begin(),
                      next.end(), std::back_inserter(churn.went_down));
  current_ = std::move(next);
  return churn;
}

}  // namespace dtn
