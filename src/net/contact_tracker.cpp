#include "src/net/contact_tracker.hpp"

#include <cmath>
#include <iterator>
#include <limits>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

namespace {
/// Full passes are sized so that, at the advertised bound, roughly this
/// many updates can be skipped between passes (budget slack / 2·bound).
constexpr double kSlackSteps = 32.0;
/// Safety margin absorbing floating-point rounding in the budget math.
constexpr double kBudgetEps = 1e-9;
}  // namespace

ContactTracker::ContactTracker(double range) : range_(range), grid_(range) {
  DTN_REQUIRE(range > 0.0, "ContactTracker: range must be positive");
}

void ContactTracker::set_motion_bound(double bound) {
  double slack = 0.0;
  if (std::isfinite(bound) && bound >= 0.0) {
    slack = bound == 0.0 ? range_ : std::min(range_, kSlackSteps * bound);
  }
  if (slack == slack_) return;  // unchanged: keep any (restored) budget
  slack_ = slack;
  grid_.set_cell(range_ + slack_);
  budget_ = 0.0;  // the next update must run a full pass
}

const ContactChurn& ContactTracker::update(const std::vector<Vec2>& positions) {
  ++updates_;
  churn_.went_up.clear();
  churn_.went_down.clear();
  bool skip = false;
  if (slack_ > 0.0 && have_prev_ && prev_.size() == positions.size() &&
      budget_ > 0.0) {
    // No pairwise distance can change by more than twice the largest
    // single-node displacement. Charging the *observed* displacement (not
    // the advertised bound) keeps skipping correct under teleports.
    double max_d2 = 0.0;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      max_d2 = std::max(max_d2, distance2(prev_[i], positions[i]));
    }
    const double spent = 2.0 * std::sqrt(max_d2);
    if (spent + kBudgetEps <= budget_) {
      budget_ -= spent;
      skip = true;  // only watch pairs can have changed status
    }
  }
  prev_ = positions;
  have_prev_ = true;
  if (skip) {
    recheck_watch_pairs(positions);
  } else {
    full_pass(positions);
  }
  return churn_;
}

void ContactTracker::recheck_watch_pairs(const std::vector<Vec2>& positions) {
  const double r2 = range_ * range_;
  for (WatchPair& wp : watch_) {
    const bool in = distance2(positions[wp.i], positions[wp.j]) <= r2;
    if (in == wp.in_contact) continue;
    wp.in_contact = in;
    // watch_ is sorted by (i, j), so the churn lists come out sorted.
    (in ? churn_.went_up : churn_.went_down).emplace_back(wp.i, wp.j);
  }
  if (churn_.went_up.empty() && churn_.went_down.empty()) return;
  next_.clear();
  std::set_difference(current_.begin(), current_.end(),
                      churn_.went_down.begin(), churn_.went_down.end(),
                      std::back_inserter(next_));
  const auto mid = static_cast<std::ptrdiff_t>(next_.size());
  next_.insert(next_.end(), churn_.went_up.begin(), churn_.went_up.end());
  std::inplace_merge(next_.begin(), next_.begin() + mid, next_.end());
  current_.swap(next_);
}

void ContactTracker::full_pass(const std::vector<Vec2>& positions) {
  ++full_passes_;
  grid_.rebuild(positions);
  const double reach = range_ + slack_;
  const double r2 = range_ * range_;
  // Pairs within ±slack/2 of the range boundary become watch pairs (exact
  // per-step recheck); the motion budget certifies everyone else: how
  // close the nearest non-watch non-contact pair is to entering range and
  // the farthest non-watch contact to leaving it. Excluding the band
  // keeps both margins >= slack/2, so skipping engages even when some
  // pair sits right at the boundary. Pairs beyond `reach` are not
  // enumerated; `reach` bounds the non-contact margin.
  const double band = slack_ * 0.5;
  const double lo2 = (range_ - band) * (range_ - band);
  const double hi2 = (range_ + band) * (range_ + band);
  double min_nc2 = reach * reach;
  double max_c2 = 0.0;
  next_.clear();
  watch_.clear();
  grid_.for_each_pair_within(
      reach, [&](std::size_t i, std::size_t j, double d2) {
        const bool in = d2 <= r2;
        if (in) next_.emplace_back(i, j);  // emitted in sorted (i, j) order
        if (slack_ > 0.0 && d2 >= lo2 && d2 <= hi2) {
          watch_.push_back({static_cast<std::uint32_t>(i),
                            static_cast<std::uint32_t>(j), in});
        } else if (in) {
          max_c2 = std::max(max_c2, d2);
        } else {
          min_nc2 = std::min(min_nc2, d2);
        }
      });
  std::set_difference(next_.begin(), next_.end(), current_.begin(),
                      current_.end(), std::back_inserter(churn_.went_up));
  std::set_difference(current_.begin(), current_.end(), next_.begin(),
                      next_.end(), std::back_inserter(churn_.went_down));
  current_.swap(next_);
  budget_ =
      slack_ > 0.0
          ? std::max(0.0, std::min(std::sqrt(min_nc2) - range_,
                                   range_ - std::sqrt(max_c2)))
          : 0.0;
}

void ContactTracker::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("contacts");
  out.u64(current_.size());
  for (const NodePair& p : current_) {
    out.u64(p.first);
    out.u64(p.second);
  }
  // Kinetic bookkeeping is derived-but-deterministic state: skipped in
  // digests (the legacy and event-driven paths must hash identically),
  // carried in checkpoints so a restored run skips the same steps.
  if (!out.digest_only()) {
    out.f64(slack_);
    out.f64(budget_);
    out.boolean(have_prev_);
    out.u64(prev_.size());
    for (const Vec2& p : prev_) {
      out.f64(p.x);
      out.f64(p.y);
    }
    out.u64(watch_.size());
    for (const WatchPair& wp : watch_) {
      out.u32(wp.i);
      out.u32(wp.j);
      out.boolean(wp.in_contact);
    }
  }
  out.end_section();
}

void ContactTracker::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("contacts");
  current_.clear();
  const std::uint64_t n = in.u64();
  current_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto a = static_cast<std::size_t>(in.u64());
    const auto b = static_cast<std::size_t>(in.u64());
    current_.emplace_back(a, b);
  }
  DTN_REQUIRE(std::is_sorted(current_.begin(), current_.end()),
              "contacts: snapshot pair set not sorted");
  if (in.version() >= 3) {
    slack_ = in.f64();
    budget_ = in.f64();
    have_prev_ = in.boolean();
    prev_.clear();
    const std::uint64_t np = in.u64();
    prev_.reserve(np);
    for (std::uint64_t i = 0; i < np; ++i) {
      const double x = in.f64();
      const double y = in.f64();
      prev_.push_back({x, y});
    }
    watch_.clear();
    const std::uint64_t nw = in.u64();
    watch_.reserve(nw);
    for (std::uint64_t i = 0; i < nw; ++i) {
      WatchPair wp;
      wp.i = in.u32();
      wp.j = in.u32();
      wp.in_contact = in.boolean();
      watch_.push_back(wp);
    }
  } else {
    // Pre-kinetic archive: no bookkeeping to resume. Spend the budget so
    // the next update runs a full pass and re-certifies everything.
    slack_ = 0.0;
    budget_ = 0.0;
    have_prev_ = false;
    prev_.clear();
    watch_.clear();
  }
  grid_.set_cell(range_ + slack_);
  in.end_section();
}

}  // namespace dtn
