// Contact tracking: turns per-step node positions into link up/down events.
//
// Two nodes are "in contact" while their distance is within the radio
// range. The tracker diffs the in-range pair set between steps and reports
// the churn; the simulation kernel reacts by establishing/tearing links.
//
// Hot-path design (DESIGN.md §9): the pair sets are flat sorted vectors
// diffed with std::set_difference into reusable buffers, so a steady-state
// update performs no heap allocation. When a per-step motion bound is
// configured (`set_motion_bound`), the tracker additionally skips the grid
// rebuild on steps where the contact set is provably reproducible without
// one. Each full grid pass runs at radius `range + slack` and splits the
// enumerated pairs in two:
//   * pairs within `±slack/2` of the range boundary become *watch pairs*
//     — few in practice — whose exact contact predicate is re-evaluated
//     against current positions every skipped step;
//   * every other pair is at least `slack/2` (and, measured exactly, at
//     least `budget`) away from the boundary, so it cannot change status
//     until pairwise distances have moved by that margin. Distances move
//     at most twice the largest single-node displacement per step; each
//     skipped step charges that *observed* displacement (not the
//     advertised bound — teleports self-invalidate) against the budget,
//     and a full pass re-certifies everything once it is spent.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/geo/spatial_grid.hpp"
#include "src/geo/vec2.hpp"
#include "src/util/task_graph.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

/// Unordered node pair, stored normalized (first < second).
using NodePair = std::pair<std::size_t, std::size_t>;

inline NodePair make_pair_sorted(std::size_t a, std::size_t b) {
  return a < b ? NodePair{a, b} : NodePair{b, a};
}

struct ContactChurn {
  std::vector<NodePair> went_up;    ///< pairs that entered range this step
  std::vector<NodePair> went_down;  ///< pairs that left range this step
};

class ContactTracker {
 public:
  /// `range`: radio range in meters (also the default grid cell size).
  explicit ContactTracker(double range);

  /// Configures kinetic contact skipping from a fleet-wide per-step
  /// motion bound (meters a node can move in one update):
  ///   * bound < 0 or non-finite — skipping disabled; every update runs a
  ///     full grid pass at exactly `range` (the legacy behavior);
  ///   * bound == 0 — stationary fleet; slack is `range` (maximal);
  ///   * bound > 0 — slack is min(range, 32 * bound), i.e. full passes
  ///     are at least ~16 steps apart while the geometry allows it.
  /// Changing the slack invalidates the current budget (the next update
  /// runs a full pass); calling with an unchanged bound is a no-op, so a
  /// restored tracker keeps its checkpointed budget.
  void set_motion_bound(double bound);

  /// Optional intra-update parallelism (DESIGN.md §11/§16). When an
  /// executor with helper lanes is attached, the candidate-pair
  /// enumeration of a full pass and the exact recheck of the watch set
  /// are sharded over contiguous index ranges; every shard's output is
  /// locally sorted and the shards partition an ascending range, so
  /// concatenating them reproduces the serial enumeration order
  /// bit-for-bit. The returned churn, the current() set and the kinetic
  /// budget are therefore identical at any lane count, including no
  /// executor at all (the reference serial path). Pass nullptr to detach.
  void set_executor(TaskExecutor* exec) { exec_ = exec; }

  /// Processes one movement step; returns the link churn. Pair lists are
  /// sorted, so downstream processing is deterministic. The returned
  /// reference and the `current()` view stay valid until the next update.
  /// Equivalent to plan_update + every run_shard + finish_update.
  const ContactChurn& update(const std::vector<Vec2>& positions);

  // --- staged update (task-graph integration, DESIGN.md §16) ---
  // World::step drives the same update as three dependency nodes so the
  // parallel middle stage overlaps other step phases instead of
  // barriering on a nested dispatch:
  //   plan_update (serial)  — charges the kinetic budget, rebuilds the
  //                           grid when a full pass is due, sizes shards;
  //   run_shard   (parallel)— one call per shard in [0, stage_shards());
  //                           shards touch disjoint state;
  //   finish_update (serial)— concatenates shard output in shard order
  //                           and diffs against the current pair set.
  // `max_d2` is the squared maximum single-node displacement since the
  // previous update; it is only read when wants_displacement() — pass
  // 0.0 otherwise.

  /// True when the next plan_update needs the fleet's max displacement
  /// to decide between a skip and a full pass (lets the caller fuse that
  /// reduction into its mobility phase instead of a separate sweep).
  bool wants_displacement(std::size_t n_nodes) const {
    return slack_ > 0.0 && have_prev_ && prev_.size() == n_nodes &&
           budget_ > 0.0;
  }

  void plan_update(const std::vector<Vec2>& positions, double max_d2);
  /// Shards to run after plan_update (>= 1; 1 means serial-sized work).
  std::size_t stage_shards() const { return stage_shards_; }
  void run_shard(std::size_t s, const std::vector<Vec2>& positions);
  const ContactChurn& finish_update();

  // --- quiet-step support (batched stepping, DESIGN.md §16) ---
  // When the watch set is empty and the budget covers several steps of
  // worst-case motion, no pair can change status for k steps: the caller
  // may advance mobility k times without any tracker pass, charging each
  // step's observed displacement. commit_positions replaces the
  // reference snapshot at the end of the batch.

  /// True when update() would provably produce empty churn for any step
  /// whose displacement fits the budget: skipping is armed and there are
  /// no boundary pairs to recheck.
  bool quiet_ready(std::size_t n_nodes) const {
    return wants_displacement(n_nodes) && watch_.empty();
  }
  /// Remaining kinetic budget in meters of pairwise-distance motion.
  double kinetic_budget() const { return budget_; }
  /// The advertised per-step motion bound (< 0: skipping disabled).
  double motion_bound() const { return bound_; }
  /// Books one skipped-without-recheck step: charges the observed
  /// displacement against the budget exactly like update() would.
  /// Precondition: the charge fits (caller sized the batch from
  /// kinetic_budget() / motion_bound()).
  void charge_quiet_step(double max_d2);
  /// Replaces the reference positions after a quiet batch.
  void commit_positions(const std::vector<Vec2>& positions);

  /// Positions at the previous update — the displacement reference for
  /// wants_displacement()/quiet batches. Valid when have_prev (i.e.
  /// wants_displacement/quiet_ready returned true); unlike the caller's
  /// own position buffer it survives checkpoints, so batch sizing reads
  /// it rather than a possibly-stale working copy.
  const std::vector<Vec2>& prev_positions() const { return prev_; }

  /// FP guard margin used in budget comparisons (callers sizing quiet
  /// batches must leave the same headroom).
  static constexpr double kBudgetEps = 1e-9;

  /// Pairs currently in contact (sorted ascending).
  const std::vector<NodePair>& current() const { return current_; }

  bool in_contact(std::size_t a, std::size_t b) const {
    const NodePair p = make_pair_sorted(a, b);
    return std::binary_search(current_.begin(), current_.end(), p);
  }

  double range() const { return range_; }

  /// The spatial index backing full passes (introspection for tests).
  const SpatialGrid& grid() const { return grid_; }

  /// Pre-sizes the grid and position/pair buffers for an `n`-node fleet
  /// so the first full passes do not grow them inside the step loop.
  void reserve_nodes(std::size_t n) {
    grid_.reserve_nodes(n);
    prev_.reserve(n);
    next_.reserve(n);
    current_.reserve(n);
  }

  /// Diagnostics: how many updates ran a full grid pass vs. were skipped
  /// on the kinetic bound.
  std::size_t update_count() const { return updates_; }
  std::size_t full_pass_count() const { return full_passes_; }

  /// Snapshot/restore. The in-contact pair set is semantic state (hashed
  /// into digests); the kinetic bookkeeping (slack, remaining budget,
  /// last-seen positions) is derived-but-deterministic and is carried
  /// only in buffered checkpoints so a restored run skips the same steps
  /// an uninterrupted one does.
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  /// A pair near the range boundary, re-checked exactly on skip steps.
  struct WatchPair {
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    bool in_contact = false;  ///< classification as of the last update
  };

  /// Per-shard scratch for the parallel paths; reused between updates so
  /// a steady-state parallel update allocates nothing once warm.
  struct Shard {
    std::vector<SpatialGrid::PairHit> hits;  ///< full pass: candidate pairs
    std::vector<NodePair> contacts;          ///< full pass: in-range pairs
    std::vector<WatchPair> watch;            ///< full pass: boundary band
    std::vector<NodePair> ups;               ///< recheck: entered range
    std::vector<NodePair> downs;             ///< recheck: left range
    double min_nc2 = 0.0;                    ///< full pass: margin reduce
    double max_c2 = 0.0;
  };

  /// Number of shards to split `n` work items into, or 1 for serial.
  std::size_t shard_count(std::size_t n) const;

  double range_;
  double slack_ = 0.0;    ///< extra grid radius; 0 = skipping disabled
  double budget_ = 0.0;   ///< remaining motion (m) before a pass is due
  double bound_ = -1.0;   ///< advertised per-step motion bound (< 0: off)
  bool have_prev_ = false;
  SpatialGrid grid_;
  std::vector<NodePair> current_;  ///< sorted
  std::vector<NodePair> next_;     ///< scratch (full pass / churn apply)
  ContactChurn churn_;             ///< reused between updates
  std::vector<Vec2> prev_;         ///< positions at the previous update
  std::vector<WatchPair> watch_;   ///< sorted by (i, j)
  std::size_t updates_ = 0;
  std::size_t full_passes_ = 0;
  TaskExecutor* exec_ = nullptr;   ///< non-owning; nullptr = serial
  std::vector<Shard> shards_;      ///< parallel scratch, reused
  // In-flight staged update (between plan_update and finish_update).
  bool stage_skip_ = false;        ///< recheck (true) vs full pass
  std::size_t stage_shards_ = 1;
  const std::vector<Vec2>* stage_positions_ = nullptr;  ///< update() only
  TaskKernel shard_kernel_;        ///< preallocated for update()'s dispatch
};

}  // namespace dtn
