// Contact tracking: turns per-step node positions into link up/down events.
//
// Two nodes are "in contact" while their distance is within the radio
// range. The tracker diffs the in-range pair set between steps and reports
// the churn; the simulation kernel reacts by establishing/tearing links.
//
// Hot-path design (DESIGN.md §9): the pair sets are flat sorted vectors
// diffed with std::set_difference into reusable buffers, so a steady-state
// update performs no heap allocation. When a per-step motion bound is
// configured (`set_motion_bound`), the tracker additionally skips the grid
// rebuild on steps where the contact set is provably reproducible without
// one. Each full grid pass runs at radius `range + slack` and splits the
// enumerated pairs in two:
//   * pairs within `±slack/2` of the range boundary become *watch pairs*
//     — few in practice — whose exact contact predicate is re-evaluated
//     against current positions every skipped step;
//   * every other pair is at least `slack/2` (and, measured exactly, at
//     least `budget`) away from the boundary, so it cannot change status
//     until pairwise distances have moved by that margin. Distances move
//     at most twice the largest single-node displacement per step; each
//     skipped step charges that *observed* displacement (not the
//     advertised bound — teleports self-invalidate) against the budget,
//     and a full pass re-certifies everything once it is spent.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/geo/spatial_grid.hpp"
#include "src/geo/vec2.hpp"

namespace dtn {

class ThreadPool;

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

/// Unordered node pair, stored normalized (first < second).
using NodePair = std::pair<std::size_t, std::size_t>;

inline NodePair make_pair_sorted(std::size_t a, std::size_t b) {
  return a < b ? NodePair{a, b} : NodePair{b, a};
}

struct ContactChurn {
  std::vector<NodePair> went_up;    ///< pairs that entered range this step
  std::vector<NodePair> went_down;  ///< pairs that left range this step
};

class ContactTracker {
 public:
  /// `range`: radio range in meters (also the default grid cell size).
  explicit ContactTracker(double range);

  /// Configures kinetic contact skipping from a fleet-wide per-step
  /// motion bound (meters a node can move in one update):
  ///   * bound < 0 or non-finite — skipping disabled; every update runs a
  ///     full grid pass at exactly `range` (the legacy behavior);
  ///   * bound == 0 — stationary fleet; slack is `range` (maximal);
  ///   * bound > 0 — slack is min(range, 32 * bound), i.e. full passes
  ///     are at least ~16 steps apart while the geometry allows it.
  /// Changing the slack invalidates the current budget (the next update
  /// runs a full pass); calling with an unchanged bound is a no-op, so a
  /// restored tracker keeps its checkpointed budget.
  void set_motion_bound(double bound);

  /// Optional intra-update parallelism (DESIGN.md §11). When a pool with
  /// more than one worker is attached, the candidate-pair enumeration of
  /// a full pass and the exact recheck of the watch set are sharded over
  /// contiguous index ranges; every shard's output is locally sorted and
  /// the shards partition an ascending range, so concatenating them
  /// reproduces the serial enumeration order bit-for-bit. The returned
  /// churn, the current() set and the kinetic budget are therefore
  /// identical at any worker count, including no pool at all (the
  /// reference serial path). Pass nullptr to detach.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Processes one movement step; returns the link churn. Pair lists are
  /// sorted, so downstream processing is deterministic. The returned
  /// reference and the `current()` view stay valid until the next update.
  const ContactChurn& update(const std::vector<Vec2>& positions);

  /// Pairs currently in contact (sorted ascending).
  const std::vector<NodePair>& current() const { return current_; }

  bool in_contact(std::size_t a, std::size_t b) const {
    const NodePair p = make_pair_sorted(a, b);
    return std::binary_search(current_.begin(), current_.end(), p);
  }

  double range() const { return range_; }

  /// The spatial index backing full passes (introspection for tests).
  const SpatialGrid& grid() const { return grid_; }

  /// Pre-sizes the grid and position/pair buffers for an `n`-node fleet
  /// so the first full passes do not grow them inside the step loop.
  void reserve_nodes(std::size_t n) {
    grid_.reserve_nodes(n);
    prev_.reserve(n);
    next_.reserve(n);
    current_.reserve(n);
  }

  /// Diagnostics: how many updates ran a full grid pass vs. were skipped
  /// on the kinetic bound.
  std::size_t update_count() const { return updates_; }
  std::size_t full_pass_count() const { return full_passes_; }

  /// Snapshot/restore. The in-contact pair set is semantic state (hashed
  /// into digests); the kinetic bookkeeping (slack, remaining budget,
  /// last-seen positions) is derived-but-deterministic and is carried
  /// only in buffered checkpoints so a restored run skips the same steps
  /// an uninterrupted one does.
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  /// A pair near the range boundary, re-checked exactly on skip steps.
  struct WatchPair {
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    bool in_contact = false;  ///< classification as of the last update
  };

  /// Per-shard scratch for the parallel paths; reused between updates so
  /// a steady-state parallel update allocates nothing once warm.
  struct Shard {
    std::vector<SpatialGrid::PairHit> hits;  ///< full pass: candidate pairs
    std::vector<NodePair> contacts;          ///< full pass: in-range pairs
    std::vector<WatchPair> watch;            ///< full pass: boundary band
    std::vector<NodePair> ups;               ///< recheck: entered range
    std::vector<NodePair> downs;             ///< recheck: left range
    double min_nc2 = 0.0;                    ///< full pass: margin reduce
    double max_c2 = 0.0;
  };

  void full_pass(const std::vector<Vec2>& positions);
  void recheck_watch_pairs(const std::vector<Vec2>& positions);
  /// Number of shards to split `n` work items into, or 1 for serial.
  std::size_t shard_count(std::size_t n) const;

  double range_;
  double slack_ = 0.0;    ///< extra grid radius; 0 = skipping disabled
  double budget_ = 0.0;   ///< remaining motion (m) before a pass is due
  bool have_prev_ = false;
  SpatialGrid grid_;
  std::vector<NodePair> current_;  ///< sorted
  std::vector<NodePair> next_;     ///< scratch (full pass / churn apply)
  ContactChurn churn_;             ///< reused between updates
  std::vector<Vec2> prev_;         ///< positions at the previous update
  std::vector<WatchPair> watch_;   ///< sorted by (i, j)
  std::size_t updates_ = 0;
  std::size_t full_passes_ = 0;
  ThreadPool* pool_ = nullptr;     ///< non-owning; nullptr = serial
  std::vector<Shard> shards_;      ///< parallel scratch, reused
  std::vector<SpatialGrid::PairHit> hits_;  ///< serial full-pass scratch
};

}  // namespace dtn
