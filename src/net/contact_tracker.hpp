// Contact tracking: turns per-step node positions into link up/down events.
//
// Two nodes are "in contact" while their distance is within the radio
// range. The tracker diffs the in-range pair set between steps and reports
// the churn; the simulation kernel reacts by establishing/tearing links.
#pragma once

#include <cstddef>
#include <set>
#include <utility>
#include <vector>

#include "src/geo/spatial_grid.hpp"
#include "src/geo/vec2.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

/// Unordered node pair, stored normalized (first < second).
using NodePair = std::pair<std::size_t, std::size_t>;

inline NodePair make_pair_sorted(std::size_t a, std::size_t b) {
  return a < b ? NodePair{a, b} : NodePair{b, a};
}

struct ContactChurn {
  std::vector<NodePair> went_up;    ///< pairs that entered range this step
  std::vector<NodePair> went_down;  ///< pairs that left range this step
};

class ContactTracker {
 public:
  /// `range`: radio range in meters (also used as the grid cell size).
  explicit ContactTracker(double range);

  /// Processes one movement step; returns the link churn. Pair lists are
  /// sorted, so downstream processing is deterministic.
  ContactChurn update(const std::vector<Vec2>& positions);

  /// Pairs currently in contact (sorted).
  const std::set<NodePair>& current() const { return current_; }

  bool in_contact(std::size_t a, std::size_t b) const {
    return current_.count(make_pair_sorted(a, b)) > 0;
  }

  double range() const { return range_; }

  /// Snapshot/restore of the in-contact pair set. The spatial grid is
  /// rebuilt from scratch on the next update(), so it carries no state.
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  double range_;
  SpatialGrid grid_;
  std::set<NodePair> current_;
};

}  // namespace dtn
