// FIFO buffer management — the paper's plain "Spray and Wait" comparison
// subject: messages are scheduled in arrival order and the oldest resident
// is dropped on overflow (drop-head). Also provides the drop-tail variant
// (reject newcomers) used in ablations.
#pragma once

#include "src/core/buffer_policy.hpp"

namespace dtn {

class FifoPolicy final : public BufferPolicy {
 public:
  const char* name() const override { return "fifo"; }
  // Arrival order is total and set-independent: send-order snapshots are
  // sound (there are no scalar priorities to memoize).
  bool cache_safe() const override { return true; }

  void order_for_sending(std::vector<const Message*>& msgs,
                         const PolicyContext& ctx) const override;

  /// Drops the longest-resident droppable message; the newcomer is only
  /// chosen when no resident can be evicted.
  const Message* choose_drop(const std::vector<const Message*>& droppable,
                             const Message* newcomer,
                             const PolicyContext& ctx) const override;
};

/// Drop-tail: FIFO scheduling, but overflow rejects the incoming message
/// instead of evicting residents.
class DropTailPolicy final : public BufferPolicy {
 public:
  const char* name() const override { return "drop-tail"; }
  bool cache_safe() const override { return true; }

  void order_for_sending(std::vector<const Message*>& msgs,
                         const PolicyContext& ctx) const override;

  const Message* choose_drop(const std::vector<const Message*>& droppable,
                             const Message* newcomer,
                             const PolicyContext& ctx) const override;
};

/// Drop-largest: evicts the biggest message first (classic queueing-policy
/// baseline from Lindgren & Phanse's evaluation). FIFO scheduling order.
class DropLargestPolicy final : public BufferPolicy {
 public:
  const char* name() const override { return "drop-largest"; }
  bool cache_safe() const override { return true; }

  void order_for_sending(std::vector<const Message*>& msgs,
                         const PolicyContext& ctx) const override;

  const Message* choose_drop(const std::vector<const Message*>& droppable,
                             const Message* newcomer,
                             const PolicyContext& ctx) const override;
};

}  // namespace dtn
