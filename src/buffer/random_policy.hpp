// Random buffer management: uniformly random send order and drop victim.
// The "no information" baseline the paper argues Spray-and-Wait-C
// degenerates to when copy counts are all equal.
#pragma once

#include "src/core/buffer_policy.hpp"
#include "src/util/rng.hpp"

namespace dtn {

class RandomPolicy final : public BufferPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 0xC0FFEE) : rng_(seed) {}

  const char* name() const override { return "random"; }

  void order_for_sending(std::vector<const Message*>& msgs,
                         const PolicyContext& ctx) const override;

  const Message* choose_drop(const std::vector<const Message*>& droppable,
                             const Message* newcomer,
                             const PolicyContext& ctx) const override;

  void save_state(snapshot::ArchiveWriter& out) const override;
  void load_state(snapshot::ArchiveReader& in) override;

 private:
  // The policy object is shared across nodes of one single-threaded World;
  // the stream is part of the simulation's seeded determinism.
  mutable Rng rng_;
};

}  // namespace dtn
