// SdsrpPolicy — the paper's contribution, assembled from the src/sdsrp
// building blocks:
//
//   priority U_i = Eq. 10, computed per message from
//     λ      <- the node's distributed intermeeting estimator,
//     m̂_i   <- the spray-timestamp lineage (Eq. 15),
//     d̂_i   <- the gossiped dropped-list records (Fig. 5),
//     n̂_i   <- m̂_i + 1 - d̂_i (Eq. 14).
//
// Scheduling sends the highest-U message first; overflow drops the
// lowest-U message among residents and the newcomer (Algorithm 1).
//
// SdsrpOraclePolicy computes the same U_i from the simulator's global
// registry (the "centralized control channel" the paper argues is
// impractical) — the upper bound the estimator ablation compares against.
#pragma once

#include "src/core/buffer_policy.hpp"

namespace dtn {

struct SdsrpParams {
  /// 0 = closed form (Eq. 10); k > 0 = Taylor approximation with k terms
  /// (Eq. 13). The ablation bench sweeps this.
  std::size_t taylor_terms = 0;
  /// Eq. 15 branch ages anchored at the last spray time (paper-literal)
  /// vs. the current time (branches keep growing between contacts).
  bool anchor_at_last_spray = true;
  /// Algorithm 1 admission semantics. `true`: the newcomer competes in
  /// the drop decision and is refused when its priority is the lowest
  /// (the literal "Priority_m < Priority_l" test). `false`: GBSD-style
  /// always-make-room — the lowest-priority *resident* is evicted and the
  /// newcomer is only refused when nothing is evictable. The mechanics
  /// ablation compares both; see DESIGN.md §4.
  bool reject_low_priority_newcomer = true;
  /// "Nodes reject receiving the message already in their dropped lists"
  /// (paper Fig. 5 discussion). Disable to measure the rule's cost in the
  /// mechanics ablation.
  bool reject_previously_dropped = true;
};

class SdsrpPolicy final : public ScalarBufferPolicy {
 public:
  explicit SdsrpPolicy(const SdsrpParams& params = {}) : params_(params) {}

  const char* name() const override { return "sdsrp"; }
  // U_i is pure in (message, node estimators, now); every estimator
  // change reaches the node's PriorityCache as an epoch bump or a
  // per-message invalidation, so memoized values are never silently
  // stale beyond the refresh quantum. The oracle variant below is NOT
  // cache-safe: registry updates carry no node-local signal.
  bool cache_safe() const override { return true; }
  // U_i (spray-tree recursion + censored λ) is the expensive priority in
  // the codebase — exactly what the parallel prewarm exists for. The
  // computation reads only node-local state (estimator, dropped list,
  // the message's spray lineage), so per-node prewarm shards are
  // race-free.
  bool prewarm_worthwhile() const override { return true; }
  bool uses_dropped_list() const override { return true; }
  bool rejects_previously_dropped() const override {
    return params_.reject_previously_dropped;
  }

  double priority(const Message& m, const PolicyContext& ctx) const override;

  const Message* choose_drop(const std::vector<const Message*>& droppable,
                             const Message* newcomer,
                             const PolicyContext& ctx) const override;

  /// Exposed for ablation: the m̂/n̂ the policy would use for `m` at
  /// `ctx.node`.
  struct Estimates {
    double m_seen = 0.0;
    double n_holding = 0.0;
    double d_dropped = 0.0;
    double lambda = 0.0;
  };
  Estimates estimates(const Message& m, const PolicyContext& ctx) const;

 private:
  SdsrpParams params_;
};

class SdsrpOraclePolicy final : public ScalarBufferPolicy {
 public:
  explicit SdsrpOraclePolicy(const SdsrpParams& params = {})
      : params_(params) {}

  const char* name() const override { return "sdsrp-oracle"; }

  double priority(const Message& m, const PolicyContext& ctx) const override;

 private:
  SdsrpParams params_;
};

}  // namespace dtn
