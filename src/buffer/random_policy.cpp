#include "src/buffer/random_policy.hpp"

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

void RandomPolicy::order_for_sending(std::vector<const Message*>& msgs,
                                     const PolicyContext& /*ctx*/) const {
  rng_.shuffle(msgs);
}

const Message* RandomPolicy::choose_drop(
    const std::vector<const Message*>& droppable, const Message* newcomer,
    const PolicyContext& /*ctx*/) const {
  DTN_REQUIRE(!droppable.empty() || newcomer != nullptr,
              "choose_drop: no candidates");
  const auto total = droppable.size() + (newcomer != nullptr ? 1u : 0u);
  const auto pick = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(total) - 1));
  if (pick < droppable.size()) return droppable[pick];
  return newcomer;
}

void RandomPolicy::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("random-policy");
  snapshot::write_rng(out, rng_);
  out.end_section();
}

void RandomPolicy::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("random-policy");
  snapshot::read_rng(in, rng_);
  in.end_section();
}

}  // namespace dtn
