#include "src/buffer/knapsack_policy.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace dtn {

double KnapsackSdsrpPolicy::density(const Message& m, const PolicyContext& ctx,
                                    bool resident) const {
  DTN_REQUIRE(m.size > 0, "knapsack: message size must be positive");
  const double u =
      resident ? inner_.cached_priority(m, ctx) : inner_.priority(m, ctx);
  return u / static_cast<double>(m.size);
}

void KnapsackSdsrpPolicy::order_for_sending(
    std::vector<const Message*>& msgs, const PolicyContext& ctx) const {
  std::vector<std::pair<double, const Message*>> keyed;
  keyed.reserve(msgs.size());
  for (const Message* m : msgs) {
    keyed.emplace_back(density(*m, ctx, /*resident=*/true), m);
  }
  std::sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second->id < b.second->id;
  });
  for (std::size_t i = 0; i < keyed.size(); ++i) msgs[i] = keyed[i].second;
}

const Message* KnapsackSdsrpPolicy::choose_drop(
    const std::vector<const Message*>& droppable, const Message* newcomer,
    const PolicyContext& ctx) const {
  DTN_REQUIRE(!droppable.empty() || newcomer != nullptr,
              "choose_drop: no candidates");
  const Message* victim = nullptr;
  double victim_density = 0.0;
  for (const Message* m : droppable) {
    const double d = density(*m, ctx, /*resident=*/true);
    if (victim == nullptr || d < victim_density ||
        (d == victim_density && m->id > victim->id)) {
      victim = m;
      victim_density = d;
    }
  }
  if (newcomer != nullptr) {
    // Algorithm-1-style strict test, in density space.
    const double d = density(*newcomer, ctx);
    if (victim == nullptr || d < victim_density) victim = newcomer;
  }
  return victim;
}

}  // namespace dtn
