#include "src/buffer/fifo.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace dtn {

namespace {
void sort_by_arrival(std::vector<const Message*>& msgs) {
  std::sort(msgs.begin(), msgs.end(), [](const Message* a, const Message* b) {
    if (a->received != b->received) return a->received < b->received;
    return a->id < b->id;
  });
}
}  // namespace

void FifoPolicy::order_for_sending(std::vector<const Message*>& msgs,
                                   const PolicyContext& /*ctx*/) const {
  sort_by_arrival(msgs);
}

const Message* FifoPolicy::choose_drop(
    const std::vector<const Message*>& droppable, const Message* newcomer,
    const PolicyContext& /*ctx*/) const {
  DTN_REQUIRE(!droppable.empty() || newcomer != nullptr,
              "choose_drop: no candidates");
  if (droppable.empty()) return newcomer;
  const Message* oldest = droppable.front();
  for (const Message* m : droppable) {
    if (m->received < oldest->received ||
        (m->received == oldest->received && m->id < oldest->id)) {
      oldest = m;
    }
  }
  return oldest;
}

void DropTailPolicy::order_for_sending(std::vector<const Message*>& msgs,
                                       const PolicyContext& /*ctx*/) const {
  sort_by_arrival(msgs);
}

const Message* DropTailPolicy::choose_drop(
    const std::vector<const Message*>& droppable, const Message* newcomer,
    const PolicyContext& /*ctx*/) const {
  DTN_REQUIRE(!droppable.empty() || newcomer != nullptr,
              "choose_drop: no candidates");
  if (newcomer != nullptr) return newcomer;
  // Forced eviction without a newcomer falls back to drop-head.
  return droppable.front();
}

void DropLargestPolicy::order_for_sending(std::vector<const Message*>& msgs,
                                          const PolicyContext& /*ctx*/) const {
  sort_by_arrival(msgs);
}

const Message* DropLargestPolicy::choose_drop(
    const std::vector<const Message*>& droppable, const Message* newcomer,
    const PolicyContext& /*ctx*/) const {
  DTN_REQUIRE(!droppable.empty() || newcomer != nullptr,
              "choose_drop: no candidates");
  const Message* victim = nullptr;
  auto consider = [&victim](const Message* m) {
    if (victim == nullptr || m->size > victim->size ||
        (m->size == victim->size && m->id > victim->id)) {
      victim = m;
    }
  };
  for (const Message* m : droppable) consider(m);
  if (newcomer != nullptr && victim == nullptr) victim = newcomer;
  // Note: the newcomer is only dropped when strictly largest.
  if (newcomer != nullptr && victim != nullptr &&
      newcomer->size > victim->size) {
    victim = newcomer;
  }
  return victim;
}

}  // namespace dtn
