// Knapsack-based scheduling and drop (Wang, Yang & Wu, EWSN 2015 — the
// paper's reference [11] and the authors' precursor to SDSRP): buffer
// space is a knapsack and each message a candidate item whose value is
// its SDSRP utility U_i. With heterogeneous message sizes the right
// eviction order is by *utility density* U_i/size rather than plain U_i
// (a large low-density message frees more room per utility lost);
// scheduling likewise sends the densest messages first. With the paper's
// uniform 0.5 MB messages this reduces exactly to SDSRP.
#pragma once

#include "src/buffer/sdsrp_policy.hpp"

namespace dtn {

class KnapsackSdsrpPolicy final : public BufferPolicy {
 public:
  explicit KnapsackSdsrpPolicy(const SdsrpParams& params = {})
      : inner_(params) {}

  const char* name() const override { return "knapsack-sdsrp"; }
  // Density inherits SDSRP's cache-safety: it divides the inner U_i by
  // the (immutable) message size.
  bool cache_safe() const override { return true; }
  // Density consumes the inner SDSRP memo, so prewarm routes through the
  // inner policy's warm buffer.
  bool prewarm_worthwhile() const override { return true; }
  void prewarm_node(const PolicyContext& ctx) const override {
    inner_.prewarm_node(ctx);
  }
  bool uses_dropped_list() const override { return true; }
  bool rejects_previously_dropped() const override {
    return inner_.rejects_previously_dropped();
  }

  void order_for_sending(std::vector<const Message*>& msgs,
                         const PolicyContext& ctx) const override;

  const Message* choose_drop(const std::vector<const Message*>& droppable,
                             const Message* newcomer,
                             const PolicyContext& ctx) const override;

  /// Utility density U_i / size of one message. `resident` routes the
  /// inner priority through the node's memo — only valid for messages in
  /// ctx.node's buffer (newcomers must be rated fresh).
  double density(const Message& m, const PolicyContext& ctx,
                 bool resident = false) const;

 private:
  SdsrpPolicy inner_;
};

}  // namespace dtn
