// GBSD — Global-knowledge-Based Scheduling and Drop (Krifa & Barakat,
// refs [15]-[17] of the paper): the optimal buffer policy for *Epidemic*
// routing when maximizing delivery ratio. The per-copy utility is the
// marginal delivery-probability derivative
//
//   U_i = (1 - m_i/(N-1)) · λ · R_i · e^{-λ n_i R_i}
//
// — i.e. SDSRP's Eq. 10 with no spray-budget term (epidemic copies carry
// no token counter, so A_i degenerates to R_i). m_i and n_i are read from
// the simulator's global registry, which plays the role of GBSD's oracle
// ("global knowledge"). Scheduling sends the highest-utility message
// first; overflow drops the lowest-utility one.
//
// Implemented as the related-work baseline the paper positions SDSRP
// against: GBSD is only appropriate for Epidemic routing (Section II).
#pragma once

#include "src/core/buffer_policy.hpp"

namespace dtn {

class GbsdPolicy final : public ScalarBufferPolicy {
 public:
  const char* name() const override { return "gbsd"; }

  double priority(const Message& m, const PolicyContext& ctx) const override;
};

/// GBD — the companion *delay*-optimal utility from the same papers:
/// minimizing expected delivery delay weights a copy by
///
///   U_i = (1 - m_i/(N-1)) / n_i²
///
/// (the marginal reduction of the expected meeting time 1/(λ n_i) for a
/// not-yet-delivered message; λ is a common factor and drops out of the
/// ordering). Included for the delay-vs-ratio tradeoff experiments.
class GbsdDelayPolicy final : public ScalarBufferPolicy {
 public:
  const char* name() const override { return "gbsd-delay"; }

  double priority(const Message& m, const PolicyContext& ctx) const override;
};

}  // namespace dtn
