#include "src/buffer/gbsd_policy.hpp"

#include <algorithm>

#include "src/core/node.hpp"
#include "src/core/oracle.hpp"
#include "src/sdsrp/priority_model.hpp"
#include "src/util/error.hpp"

namespace dtn {

double GbsdPolicy::priority(const Message& m, const PolicyContext& ctx) const {
  DTN_REQUIRE(ctx.node != nullptr, "gbsd: context without node");
  DTN_REQUIRE(ctx.oracle != nullptr, "gbsd: registry unavailable");
  DTN_REQUIRE(ctx.n_nodes >= 2, "gbsd: need at least two nodes");

  sdsrp::PriorityInputs in;
  in.n_nodes = ctx.n_nodes;
  in.lambda =
      1.0 / (ctx.hot != nullptr
                 ? hot_mean_intermeeting(*ctx.hot, ctx.node->id(), ctx.now)
                 : ctx.node->intermeeting().mean_intermeeting(ctx.now));
  in.copies = 1.0;  // epidemic: no spray tokens, A_i = R_i
  in.remaining_ttl = std::max(m.remaining_ttl(ctx.now), 0.0);
  in.m_seen = ctx.oracle->m_seen(m.id);
  in.n_holding = std::max(1.0, ctx.oracle->n_holding(m.id));
  return sdsrp::priority_eq10(in);
}

double GbsdDelayPolicy::priority(const Message& m,
                                 const PolicyContext& ctx) const {
  DTN_REQUIRE(ctx.oracle != nullptr, "gbsd-delay: registry unavailable");
  DTN_REQUIRE(ctx.n_nodes >= 2, "gbsd-delay: need at least two nodes");
  const double m_seen =
      std::min(ctx.oracle->m_seen(m.id),
               static_cast<double>(ctx.n_nodes - 1));
  const double n = std::max(1.0, ctx.oracle->n_holding(m.id));
  const double p_undelivered =
      1.0 - m_seen / static_cast<double>(ctx.n_nodes - 1);
  return p_undelivered / (n * n);
}

}  // namespace dtn
