// Scalar-priority policies from the paper's comparison and related work:
//   * TtlRatioPolicy  = "Spray and Wait-O": priority = R_i / TTL_i
//   * CopiesRatioPolicy = "Spray and Wait-C": priority = C_i / C
//   * MofoPolicy: drop the most-forwarded copy first (Lindgren & Phanse)
//   * LifoPolicy: newest-arrival-first scheduling, drop the newest
#pragma once

#include "src/core/buffer_policy.hpp"

namespace dtn {

/// "Spray and Wait-O" (paper Section IV-A): the ratio between remaining
/// TTL and initial TTL is the priority — fresher messages are replicated
/// first and near-expiry messages are dropped first.
class TtlRatioPolicy final : public ScalarBufferPolicy {
 public:
  const char* name() const override { return "ttl-ratio"; }
  // Pure in (message, now): the refresh quantum alone bounds staleness.
  bool cache_safe() const override { return true; }
  double priority(const Message& m, const PolicyContext& ctx) const override {
    return m.ttl > 0.0 ? m.remaining_ttl(ctx.now) / m.ttl : 0.0;
  }
};

/// "Spray and Wait-C" (paper Section IV-A): the ratio between current
/// copy tokens and the initial budget is the priority — copy-rich messages
/// are replicated first, copy-poor ones are dropped first.
class CopiesRatioPolicy final : public ScalarBufferPolicy {
 public:
  const char* name() const override { return "copies-ratio"; }
  bool cache_safe() const override { return true; }
  double priority(const Message& m, const PolicyContext& /*ctx*/) const override {
    return m.initial_copies > 0
               ? static_cast<double>(m.copies) /
                     static_cast<double>(m.initial_copies)
               : 0.0;
  }
};

/// MOFO ("evict most forwarded first"): a copy that was already forwarded
/// many times has had its chance; drop it before fresher ones.
class MofoPolicy final : public ScalarBufferPolicy {
 public:
  const char* name() const override { return "mofo"; }
  bool cache_safe() const override { return true; }
  double priority(const Message& m, const PolicyContext& /*ctx*/) const override {
    return -static_cast<double>(m.forwards);
  }
};

/// LIFO: newest arrival has the highest priority; oldest is sent last and
/// the *newest* resident is dropped on overflow.
class LifoPolicy final : public ScalarBufferPolicy {
 public:
  const char* name() const override { return "lifo"; }
  bool cache_safe() const override { return true; }
  double priority(const Message& m, const PolicyContext& /*ctx*/) const override {
    return m.received;
  }
};

}  // namespace dtn
