#include "src/buffer/sdsrp_policy.hpp"

#include <algorithm>

#include "src/core/node.hpp"
#include "src/core/oracle.hpp"
#include "src/sdsrp/priority_model.hpp"
#include "src/sdsrp/spray_tree.hpp"
#include "src/util/error.hpp"

namespace dtn {

namespace {
double priority_from_inputs(const sdsrp::PriorityInputs& in,
                            std::size_t taylor_terms) {
  if (taylor_terms == 0) return sdsrp::priority_eq10(in);
  const double pt = sdsrp::prob_already_delivered(in);
  const double pr =
      std::min(sdsrp::prob_deliver_in_remaining(in), 1.0 - 1e-12);
  return sdsrp::priority_taylor(pt, pr, in.n_holding, taylor_terms);
}
}  // namespace

SdsrpPolicy::Estimates SdsrpPolicy::estimates(const Message& m,
                                              const PolicyContext& ctx) const {
  DTN_REQUIRE(ctx.node != nullptr, "sdsrp: context without node");
  DTN_REQUIRE(ctx.n_nodes >= 2, "sdsrp: need at least two nodes");
  const Node& node = *ctx.node;

  Estimates e;
  // SoA fast path: stream the World's estimator mirrors (bit-identical
  // to the member function) instead of dereferencing the estimator.
  const double ei =
      ctx.hot != nullptr
          ? hot_mean_intermeeting(*ctx.hot, node.id(), ctx.now)
          : node.intermeeting().mean_intermeeting(ctx.now);
  e.lambda = 1.0 / ei;

  sdsrp::SprayTreeInputs sti;
  sti.spray_times = m.spray_times;
  sti.now = ctx.now;
  sti.mean_min_imt = ei / static_cast<double>(ctx.n_nodes - 1);
  sti.initial_copies = static_cast<double>(m.initial_copies);
  sti.n_nodes = ctx.n_nodes;
  sti.anchor_at_last_spray = params_.anchor_at_last_spray;
  e.m_seen = sdsrp::estimate_m_seen(sti);
  e.d_dropped = node.dropped_list().count_drops(m.id);
  e.n_holding = sdsrp::estimate_n_holding(e.m_seen, e.d_dropped);
  return e;
}

const Message* SdsrpPolicy::choose_drop(
    const std::vector<const Message*>& droppable, const Message* newcomer,
    const PolicyContext& ctx) const {
  if (params_.reject_low_priority_newcomer) {
    return ScalarBufferPolicy::choose_drop(droppable, newcomer, ctx);
  }
  // Always-make-room: evict the lowest-priority resident; the newcomer is
  // only the victim when no resident can be evicted.
  if (droppable.empty()) return newcomer;
  return ScalarBufferPolicy::choose_drop(droppable, nullptr, ctx);
}

double SdsrpPolicy::priority(const Message& m, const PolicyContext& ctx) const {
  const Estimates e = estimates(m, ctx);
  sdsrp::PriorityInputs in;
  in.n_nodes = ctx.n_nodes;
  in.lambda = e.lambda;
  in.copies = static_cast<double>(m.copies);
  in.remaining_ttl = std::max(m.remaining_ttl(ctx.now), 0.0);
  in.m_seen = e.m_seen;
  in.n_holding = e.n_holding;
  return priority_from_inputs(in, params_.taylor_terms);
}

double SdsrpOraclePolicy::priority(const Message& m,
                                   const PolicyContext& ctx) const {
  DTN_REQUIRE(ctx.node != nullptr, "sdsrp-oracle: context without node");
  DTN_REQUIRE(ctx.oracle != nullptr, "sdsrp-oracle: registry unavailable");
  DTN_REQUIRE(ctx.n_nodes >= 2, "sdsrp-oracle: need at least two nodes");

  sdsrp::PriorityInputs in;
  in.n_nodes = ctx.n_nodes;
  // The oracle still uses the node's λ estimate: global knowledge in the
  // paper concerns m_i and n_i, not the mobility statistics.
  in.lambda =
      1.0 / (ctx.hot != nullptr
                 ? hot_mean_intermeeting(*ctx.hot, ctx.node->id(), ctx.now)
                 : ctx.node->intermeeting().mean_intermeeting(ctx.now));
  in.copies = static_cast<double>(m.copies);
  in.remaining_ttl = std::max(m.remaining_ttl(ctx.now), 0.0);
  in.m_seen = ctx.oracle->m_seen(m.id);
  in.n_holding = std::max(1.0, ctx.oracle->n_holding(m.id));
  return priority_from_inputs(in, params_.taylor_terms);
}

}  // namespace dtn
