// Mobility model interface.
//
// The simulation kernel samples movement in fixed steps: it calls
// advance(dt) once per step and then reads position(). Implementations own
// their RNG stream, so a node's trajectory is a pure function of its seed.
#pragma once

#include <limits>
#include <memory>

#include "src/geo/vec2.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Moves the node forward by dt seconds (dt >= 0).
  virtual void advance(double dt) = 0;

  /// Current position in meters.
  virtual Vec2 position() const = 0;

  /// Human-readable model name (for reports).
  virtual const char* name() const = 0;

  /// Upper bound on this node's speed (m/s) over the whole run. The
  /// contact tracker uses the fleet-wide bound to size its kinetic
  /// contact-skipping slack (DESIGN.md §9); an unknown bound (the
  /// default, +infinity) disables skipping but is always safe — skip
  /// decisions are additionally validated against the actually observed
  /// per-step displacement, so a model that momentarily exceeds its
  /// reported bound (e.g. a scripted teleport) cannot cause a missed
  /// contact event.
  virtual double max_speed() const {
    return std::numeric_limits<double>::infinity();
  }

  /// Snapshot hooks: serialize/restore the model's dynamic state (position,
  /// trip target, RNG stream, ...). load_state assumes a model of the same
  /// type and configuration — restore rebuilds the structure first and
  /// replays state into it. Models without dynamic state keep the no-ops.
  virtual void save_state(snapshot::ArchiveWriter& out) const { (void)out; }
  virtual void load_state(snapshot::ArchiveReader& in) { (void)in; }
};

using MobilityPtr = std::unique_ptr<MobilityModel>;

}  // namespace dtn
