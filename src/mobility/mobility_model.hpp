// Mobility model interface.
//
// The simulation kernel samples movement in fixed steps: it calls
// advance(dt) once per step and then reads position(). Implementations own
// their RNG stream, so a node's trajectory is a pure function of its seed.
#pragma once

#include <memory>

#include "src/geo/vec2.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Moves the node forward by dt seconds (dt >= 0).
  virtual void advance(double dt) = 0;

  /// Current position in meters.
  virtual Vec2 position() const = 0;

  /// Human-readable model name (for reports).
  virtual const char* name() const = 0;

  /// Snapshot hooks: serialize/restore the model's dynamic state (position,
  /// trip target, RNG stream, ...). load_state assumes a model of the same
  /// type and configuration — restore rebuilds the structure first and
  /// replays state into it. Models without dynamic state keep the no-ops.
  virtual void save_state(snapshot::ArchiveWriter& out) const { (void)out; }
  virtual void load_state(snapshot::ArchiveReader& in) { (void)in; }
};

using MobilityPtr = std::unique_ptr<MobilityModel>;

}  // namespace dtn
