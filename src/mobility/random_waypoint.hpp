// Random-waypoint mobility (the paper's synthetic scenario, Table II):
// pick a uniform destination in the area, move toward it in a straight
// line at a trip speed drawn from [v_min, v_max], pause for a time drawn
// from [pause_min, pause_max], repeat.
#pragma once

#include "src/geo/rect.hpp"
#include "src/mobility/mobility_model.hpp"
#include "src/util/rng.hpp"

namespace dtn {

struct RandomWaypointConfig {
  Rect area = Rect::sized(4500.0, 3400.0);
  double v_min = 2.0;      ///< m/s (paper: fixed 2 m/s)
  double v_max = 2.0;
  double pause_min = 0.0;  ///< s
  double pause_max = 0.0;
};

class RandomWaypointModel final : public MobilityModel {
 public:
  RandomWaypointModel(const RandomWaypointConfig& cfg, Rng rng);

  void advance(double dt) override;
  Vec2 position() const override { return pos_; }
  const char* name() const override { return "random-waypoint"; }
  double max_speed() const override { return cfg_.v_max; }

  void save_state(snapshot::ArchiveWriter& out) const override;
  void load_state(snapshot::ArchiveReader& in) override;

 private:
  void start_new_trip();

  RandomWaypointConfig cfg_;
  Rng rng_;
  Vec2 pos_;
  Vec2 dest_;
  double speed_ = 0.0;
  double pause_left_ = 0.0;
};

}  // namespace dtn
