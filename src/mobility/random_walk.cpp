#include "src/mobility/random_walk.hpp"

#include <cmath>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

RandomWalkModel::RandomWalkModel(const RandomWalkConfig& cfg, Rng rng)
    : cfg_(cfg), rng_(rng) {
  DTN_REQUIRE(cfg.v_min > 0.0 && cfg.v_max >= cfg.v_min,
              "random-walk: bad speed range");
  DTN_REQUIRE(cfg.epoch > 0.0, "random-walk: epoch must be positive");
  pos_ = cfg_.area.sample(rng_);
  new_epoch();
}

void RandomWalkModel::new_epoch() {
  const double theta = rng_.uniform(0.0, 2.0 * 3.14159265358979323846);
  const double speed = rng_.uniform(cfg_.v_min, cfg_.v_max);
  velocity_ = {speed * std::cos(theta), speed * std::sin(theta)};
  epoch_left_ = cfg_.epoch;
}

void RandomWalkModel::advance(double dt) {
  DTN_REQUIRE(dt >= 0.0, "advance: negative dt");
  while (dt > 0.0) {
    const double step = std::min(dt, epoch_left_);
    Vec2 next = pos_ + velocity_ * step;
    if (!cfg_.area.contains(next)) {
      // Reflect position and flip the velocity component(s) that crossed.
      if (next.x < cfg_.area.min.x || next.x > cfg_.area.max.x) {
        velocity_.x = -velocity_.x;
      }
      if (next.y < cfg_.area.min.y || next.y > cfg_.area.max.y) {
        velocity_.y = -velocity_.y;
      }
      next = cfg_.area.reflect(next);
    }
    pos_ = next;
    epoch_left_ -= step;
    dt -= step;
    if (epoch_left_ <= 0.0) new_epoch();
  }
}


void RandomWalkModel::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("walk");
  snapshot::write_rng(out, rng_);
  out.f64(pos_.x);
  out.f64(pos_.y);
  out.f64(velocity_.x);
  out.f64(velocity_.y);
  out.f64(epoch_left_);
  out.end_section();
}

void RandomWalkModel::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("walk");
  snapshot::read_rng(in, rng_);
  pos_.x = in.f64();
  pos_.y = in.f64();
  velocity_.x = in.f64();
  velocity_.y = in.f64();
  epoch_left_ = in.f64();
  in.end_section();
}

}  // namespace dtn
