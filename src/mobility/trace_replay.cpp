#include "src/mobility/trace_replay.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"
#include "src/util/settings.hpp"

namespace dtn {

Vec2 NodeTrace::at(double t) const {
  if (times.empty()) return {};
  if (t <= times.front()) return points.front();
  if (t >= times.back()) return points.back();
  const auto it = std::upper_bound(times.begin(), times.end(), t);
  const auto hi = static_cast<std::size_t>(it - times.begin());
  const std::size_t lo = hi - 1;
  const double span = times[hi] - times[lo];
  const double f = span > 0.0 ? (t - times[lo]) / span : 0.0;
  return lerp(points[lo], points[hi], f);
}

TraceSet TraceSet::parse(const std::string& text) {
  TraceSet set;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    std::istringstream ls(line);
    double t, x, y;
    std::size_t id;
    DTN_REQUIRE(static_cast<bool>(ls >> t >> id >> x >> y),
                "trace line " + std::to_string(lineno) + ": expected 't id x y'");
    auto& nt = set.nodes[id];
    DTN_REQUIRE(nt.times.empty() || t >= nt.times.back(),
                "trace line " + std::to_string(lineno) +
                    ": timestamps must be nondecreasing per node");
    nt.times.push_back(t);
    nt.points.push_back({x, y});
  }
  return set;
}

TraceSet TraceSet::load(const std::string& path) {
  std::ifstream f(path);
  DTN_REQUIRE(static_cast<bool>(f), "cannot open trace file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse(buf.str());
}

TraceReplayModel::TraceReplayModel(NodeTrace trace) : trace_(std::move(trace)) {
  DTN_REQUIRE(!trace_.times.empty(), "trace replay: empty trace");
  pos_ = trace_.at(0.0);
  for (std::size_t i = 1; i < trace_.times.size(); ++i) {
    const double span = trace_.times[i] - trace_.times[i - 1];
    if (span <= 0.0) continue;  // instantaneous jump: not a sustained speed
    const double d =
        std::sqrt(distance2(trace_.points[i], trace_.points[i - 1]));
    max_speed_ = std::max(max_speed_, d / span);
  }
}

void TraceReplayModel::advance(double dt) {
  DTN_REQUIRE(dt >= 0.0, "advance: negative dt");
  now_ += dt;
  pos_ = trace_.at(now_);
}


void TraceReplayModel::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("trace-replay");
  out.f64(now_);
  out.f64(pos_.x);
  out.f64(pos_.y);
  out.end_section();
}

void TraceReplayModel::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("trace-replay");
  now_ = in.f64();
  pos_.x = in.f64();
  pos_.y = in.f64();
  in.end_section();
}

}  // namespace dtn
