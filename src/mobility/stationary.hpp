// Stationary "mobility": nodes pinned at fixed positions. Used by unit and
// integration tests to build deterministic contact topologies.
#pragma once

#include "src/mobility/mobility_model.hpp"
#include "src/snapshot/archive.hpp"

namespace dtn {

class StationaryModel final : public MobilityModel {
 public:
  explicit StationaryModel(Vec2 pos) : pos_(pos) {}

  void advance(double /*dt*/) override {}
  Vec2 position() const override { return pos_; }
  const char* name() const override { return "stationary"; }
  /// Stationary between scripted teleports; `move_to` jumps register as
  /// observed displacement in the contact tracker, which forces a full
  /// contact pass regardless of this bound.
  double max_speed() const override { return 0.0; }

  /// Teleports the node (tests use this to script contact sequences).
  void move_to(Vec2 p) { pos_ = p; }

  void save_state(snapshot::ArchiveWriter& out) const override {
    out.begin_section("stationary");
    out.f64(pos_.x);
    out.f64(pos_.y);
    out.end_section();
  }
  void load_state(snapshot::ArchiveReader& in) override {
    in.begin_section("stationary");
    pos_.x = in.f64();
    pos_.y = in.f64();
    in.end_section();
  }

 private:
  Vec2 pos_;
};

}  // namespace dtn
