#include "src/mobility/manhattan_grid.hpp"

#include <algorithm>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

ManhattanGridModel::ManhattanGridModel(const ManhattanGridConfig& cfg,
                                       Rng rng)
    : cfg_(cfg), rng_(rng) {
  DTN_REQUIRE(cfg.blocks_x >= 1 && cfg.blocks_y >= 1,
              "manhattan-grid: need at least one block each way");
  DTN_REQUIRE(cfg.v_min > 0.0 && cfg.v_max >= cfg.v_min,
              "manhattan-grid: bad speed range");
  DTN_REQUIRE(cfg.p_turn >= 0.0 && cfg.p_turn <= 1.0,
              "manhattan-grid: p_turn out of [0,1]");
  // Start at a random intersection heading in a random street direction.
  tx_ = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(cfg_.blocks_x)));
  ty_ = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(cfg_.blocks_y)));
  pos_ = intersection(tx_, ty_);
  speed_ = rng_.uniform(cfg_.v_min, cfg_.v_max);
  choose_next_target();
}

Vec2 ManhattanGridModel::intersection(std::size_t ix, std::size_t iy) const {
  const double sx = cfg_.area.width() / static_cast<double>(cfg_.blocks_x);
  const double sy = cfg_.area.height() / static_cast<double>(cfg_.blocks_y);
  return {cfg_.area.min.x + sx * static_cast<double>(ix),
          cfg_.area.min.y + sy * static_cast<double>(iy)};
}

void ManhattanGridModel::choose_next_target() {
  // Candidate moves: straight continues (dir unchanged), or turn.
  const bool had_heading = (dir_x_ != 0 || dir_y_ != 0);
  bool turn = !had_heading || rng_.bernoulli(cfg_.p_turn);
  if (turn) {
    // Perpendicular (or initial random) direction.
    if (!had_heading || dir_x_ != 0) {
      dir_x_ = 0;
      dir_y_ = rng_.bernoulli(0.5) ? 1 : -1;
    } else {
      dir_y_ = 0;
      dir_x_ = rng_.bernoulli(0.5) ? 1 : -1;
    }
  }
  // Reflect at the grid boundary.
  auto next_x = static_cast<std::int64_t>(tx_) + dir_x_;
  auto next_y = static_cast<std::int64_t>(ty_) + dir_y_;
  if (next_x < 0 || next_x > static_cast<std::int64_t>(cfg_.blocks_x)) {
    dir_x_ = -dir_x_;
    next_x = static_cast<std::int64_t>(tx_) + dir_x_;
  }
  if (next_y < 0 || next_y > static_cast<std::int64_t>(cfg_.blocks_y)) {
    dir_y_ = -dir_y_;
    next_y = static_cast<std::int64_t>(ty_) + dir_y_;
  }
  tx_ = static_cast<std::size_t>(next_x);
  ty_ = static_cast<std::size_t>(next_y);
  speed_ = rng_.uniform(cfg_.v_min, cfg_.v_max);
}

void ManhattanGridModel::advance(double dt) {
  DTN_REQUIRE(dt >= 0.0, "advance: negative dt");
  while (dt > 0.0) {
    if (pause_left_ > 0.0) {
      const double p = std::min(pause_left_, dt);
      pause_left_ -= p;
      dt -= p;
      continue;
    }
    const Vec2 target = intersection(tx_, ty_);
    const Vec2 to_target = target - pos_;
    const double dist = to_target.norm();
    const double step = speed_ * dt;
    if (step < dist) {
      pos_ += to_target.normalized() * step;
      return;
    }
    pos_ = target;
    dt -= (speed_ > 0.0) ? dist / speed_ : dt;
    pause_left_ = rng_.uniform(cfg_.pause_min, cfg_.pause_max);
    choose_next_target();
  }
}


void ManhattanGridModel::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("manhattan");
  snapshot::write_rng(out, rng_);
  out.f64(pos_.x);
  out.f64(pos_.y);
  out.u64(tx_);
  out.u64(ty_);
  out.i64(dir_x_);
  out.i64(dir_y_);
  out.f64(speed_);
  out.f64(pause_left_);
  out.end_section();
}

void ManhattanGridModel::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("manhattan");
  snapshot::read_rng(in, rng_);
  pos_.x = in.f64();
  pos_.y = in.f64();
  tx_ = static_cast<std::size_t>(in.u64());
  ty_ = static_cast<std::size_t>(in.u64());
  dir_x_ = static_cast<int>(in.i64());
  dir_y_ = static_cast<int>(in.i64());
  speed_ = in.f64();
  pause_left_ = in.f64();
  in.end_section();
}

}  // namespace dtn
