#include "src/mobility/random_waypoint.hpp"

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

RandomWaypointModel::RandomWaypointModel(const RandomWaypointConfig& cfg,
                                         Rng rng)
    : cfg_(cfg), rng_(rng) {
  DTN_REQUIRE(cfg.v_min > 0.0 && cfg.v_max >= cfg.v_min,
              "random-waypoint: bad speed range");
  DTN_REQUIRE(cfg.pause_min >= 0.0 && cfg.pause_max >= cfg.pause_min,
              "random-waypoint: bad pause range");
  pos_ = cfg_.area.sample(rng_);
  start_new_trip();
}

void RandomWaypointModel::start_new_trip() {
  dest_ = cfg_.area.sample(rng_);
  speed_ = rng_.uniform(cfg_.v_min, cfg_.v_max);
  if (speed_ <= 0.0) speed_ = cfg_.v_min;
}

void RandomWaypointModel::advance(double dt) {
  DTN_REQUIRE(dt >= 0.0, "advance: negative dt");
  while (dt > 0.0) {
    if (pause_left_ > 0.0) {
      const double p = std::min(pause_left_, dt);
      pause_left_ -= p;
      dt -= p;
      continue;
    }
    const Vec2 to_dest = dest_ - pos_;
    const double dist = to_dest.norm();
    const double step = speed_ * dt;
    if (step < dist) {
      // Same arithmetic as normalized() * step (component / dist, then
      // * step) but reusing the norm already computed — this runs once
      // per moving node per step, and the second sqrt was measurable at
      // 100k nodes. dist > step >= 0 here, so no zero guard is needed.
      pos_ += Vec2{to_dest.x / dist, to_dest.y / dist} * step;
      return;
    }
    // Reach the waypoint, consume the travel time, pause, pick the next.
    pos_ = dest_;
    dt -= (speed_ > 0.0) ? dist / speed_ : dt;
    pause_left_ = rng_.uniform(cfg_.pause_min, cfg_.pause_max);
    start_new_trip();
  }
}


void RandomWaypointModel::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("rwp");
  snapshot::write_rng(out, rng_);
  out.f64(pos_.x);
  out.f64(pos_.y);
  out.f64(dest_.x);
  out.f64(dest_.y);
  out.f64(speed_);
  out.f64(pause_left_);
  out.end_section();
}

void RandomWaypointModel::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("rwp");
  snapshot::read_rng(in, rng_);
  pos_.x = in.f64();
  pos_.y = in.f64();
  dest_.x = in.f64();
  dest_.y = in.f64();
  speed_ = in.f64();
  pause_left_ = in.f64();
  in.end_section();
}

}  // namespace dtn
