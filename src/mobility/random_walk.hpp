// Random-walk mobility: repeatedly pick a uniformly random heading, walk
// for a fixed epoch duration at a sampled speed, reflecting off area
// borders. One of the mobility families for which intermeeting times are
// known to tail off exponentially (paper Section III-A, [22]).
#pragma once

#include "src/geo/rect.hpp"
#include "src/mobility/mobility_model.hpp"
#include "src/util/rng.hpp"

namespace dtn {

struct RandomWalkConfig {
  Rect area = Rect::sized(4500.0, 3400.0);
  double v_min = 2.0;        ///< m/s
  double v_max = 2.0;
  double epoch = 60.0;       ///< seconds per heading
};

class RandomWalkModel final : public MobilityModel {
 public:
  RandomWalkModel(const RandomWalkConfig& cfg, Rng rng);

  void advance(double dt) override;
  Vec2 position() const override { return pos_; }
  const char* name() const override { return "random-walk"; }
  double max_speed() const override { return cfg_.v_max; }

  void save_state(snapshot::ArchiveWriter& out) const override;
  void load_state(snapshot::ArchiveReader& in) override;

 private:
  void new_epoch();

  RandomWalkConfig cfg_;
  Rng rng_;
  Vec2 pos_;
  Vec2 velocity_;
  double epoch_left_ = 0.0;
};

}  // namespace dtn
