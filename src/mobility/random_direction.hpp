// Random-direction mobility: pick a heading, travel until the area border
// is reached, pause, pick a new heading. Third mobility family cited by the
// paper as having exponential intermeeting tails.
#pragma once

#include "src/geo/rect.hpp"
#include "src/mobility/mobility_model.hpp"
#include "src/util/rng.hpp"

namespace dtn {

struct RandomDirectionConfig {
  Rect area = Rect::sized(4500.0, 3400.0);
  double v_min = 2.0;
  double v_max = 2.0;
  double pause_min = 0.0;
  double pause_max = 0.0;
};

class RandomDirectionModel final : public MobilityModel {
 public:
  RandomDirectionModel(const RandomDirectionConfig& cfg, Rng rng);

  void advance(double dt) override;
  Vec2 position() const override { return pos_; }
  const char* name() const override { return "random-direction"; }
  double max_speed() const override { return cfg_.v_max; }

  void save_state(snapshot::ArchiveWriter& out) const override;
  void load_state(snapshot::ArchiveReader& in) override;

 private:
  void new_leg();

  RandomDirectionConfig cfg_;
  Rng rng_;
  Vec2 pos_;
  Vec2 dir_;            ///< unit heading
  double speed_ = 0.0;
  double leg_left_ = 0.0;    ///< distance until the border on this leg
  double pause_left_ = 0.0;
};

}  // namespace dtn
