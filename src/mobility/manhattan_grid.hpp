// Manhattan-grid mobility: nodes move along a regular street grid,
// continuing straight through intersections with high probability and
// occasionally turning. A standard urban mobility model in the DTN
// literature — between random-waypoint's uniformity and the taxi fleet's
// hotspot heterogeneity; useful for sensitivity studies of the
// intermeeting-time assumption (paper Section III-A).
#pragma once

#include <cstddef>

#include "src/geo/rect.hpp"
#include "src/mobility/mobility_model.hpp"
#include "src/util/rng.hpp"

namespace dtn {

struct ManhattanGridConfig {
  Rect area = Rect::sized(4500.0, 3400.0);
  std::size_t blocks_x = 9;  ///< number of street cells horizontally
  std::size_t blocks_y = 7;  ///< vertically
  double v_min = 2.0;        ///< m/s
  double v_max = 2.0;
  double p_turn = 0.25;      ///< per-intersection probability of turning
                             ///< (split evenly between left and right)
  double pause_min = 0.0;    ///< pause at intersections (s)
  double pause_max = 0.0;
};

class ManhattanGridModel final : public MobilityModel {
 public:
  ManhattanGridModel(const ManhattanGridConfig& cfg, Rng rng);

  void advance(double dt) override;
  Vec2 position() const override { return pos_; }
  const char* name() const override { return "manhattan-grid"; }
  double max_speed() const override { return cfg_.v_max; }

  /// The intersection grid coordinates the node is heading to.
  std::size_t target_ix() const { return tx_; }
  std::size_t target_iy() const { return ty_; }

  void save_state(snapshot::ArchiveWriter& out) const override;
  void load_state(snapshot::ArchiveReader& in) override;

 private:
  Vec2 intersection(std::size_t ix, std::size_t iy) const;
  void choose_next_target();

  ManhattanGridConfig cfg_;
  Rng rng_;
  Vec2 pos_;
  std::size_t tx_ = 0, ty_ = 0;   ///< target intersection indices
  int dir_x_ = 0, dir_y_ = 0;     ///< current heading in grid steps
  double speed_ = 1.0;
  double pause_left_ = 0.0;
};

}  // namespace dtn
