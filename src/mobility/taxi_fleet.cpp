#include "src/mobility/taxi_fleet.hpp"

#include <algorithm>
#include <cmath>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

std::vector<Hotspot> TaxiFleetConfig::default_hotspots(const Rect& area) {
  const double w = area.width(), h = area.height();
  const Vec2 o = area.min;
  // Fractions of the area, mimicking SF: dense north-east downtown core,
  // airport far south-east, districts in between.
  return {
      {{o.x + 0.70 * w, o.y + 0.82 * h}, 10.0, 220.0},  // financial district
      {{o.x + 0.62 * w, o.y + 0.74 * h}, 7.0, 250.0},   // SoMa / Market
      {{o.x + 0.50 * w, o.y + 0.80 * h}, 4.0, 220.0},   // Western Addition
      {{o.x + 0.38 * w, o.y + 0.86 * h}, 3.0, 260.0},   // Richmond
      {{o.x + 0.42 * w, o.y + 0.55 * h}, 3.0, 260.0},   // Sunset / Twin Peaks
      {{o.x + 0.66 * w, o.y + 0.48 * h}, 2.5, 240.0},   // Mission
      {{o.x + 0.78 * w, o.y + 0.30 * h}, 2.0, 260.0},   // Bayview
      {{o.x + 0.85 * w, o.y + 0.08 * h}, 6.0, 300.0},   // airport
      {{o.x + 0.20 * w, o.y + 0.30 * h}, 1.5, 300.0},   // lakeside
  };
}

TaxiFleetModel::TaxiFleetModel(const TaxiFleetConfig& cfg, Rng rng,
                               std::size_t home)
    : cfg_(cfg), rng_(rng) {
  DTN_REQUIRE(cfg_.v_min > 0.0 && cfg_.v_max >= cfg_.v_min,
              "taxi-fleet: bad speed range");
  DTN_REQUIRE(cfg_.pause_xm > 0.0 && cfg_.pause_alpha > 0.0,
              "taxi-fleet: bad pause distribution");
  DTN_REQUIRE(cfg_.cruise_prob >= 0.0 && cfg_.cruise_prob <= 1.0,
              "taxi-fleet: cruise_prob out of [0,1]");
  if (cfg_.hotspots.empty()) {
    cfg_.hotspots = TaxiFleetConfig::default_hotspots(cfg_.area);
  }
  if (home == SIZE_MAX) {
    std::vector<double> weights;
    weights.reserve(cfg_.hotspots.size());
    for (const auto& hs : cfg_.hotspots) weights.push_back(hs.weight);
    home_ = rng_.weighted_index(weights);
  } else {
    DTN_REQUIRE(home < cfg_.hotspots.size(), "taxi-fleet: home out of range");
    home_ = home;
  }
  // Start idling near home — fleets begin the day at their district.
  pos_ = sample_hotspot_point(home_);
  dest_ = pos_;
  pause_left_ = rng_.pareto(cfg_.pause_xm, cfg_.pause_alpha);
}

Vec2 TaxiFleetModel::sample_hotspot_point(std::size_t idx) {
  const Hotspot& hs = cfg_.hotspots[idx];
  // Gaussian scatter around the hotspot center, clamped to the area.
  const Vec2 p{hs.center.x + rng_.normal(0.0, hs.radius),
               hs.center.y + rng_.normal(0.0, hs.radius)};
  return cfg_.area.clamp(p);
}

void TaxiFleetModel::start_new_trip() {
  if (rng_.bernoulli(cfg_.cruise_prob)) {
    dest_ = cfg_.area.sample(rng_);  // street hail at a random point
  } else {
    // Gravity destination choice: weight attenuated by distance, with a
    // bias toward the taxi's home district.
    std::vector<double> weights;
    weights.reserve(cfg_.hotspots.size());
    for (std::size_t i = 0; i < cfg_.hotspots.size(); ++i) {
      const Hotspot& hs = cfg_.hotspots[i];
      double w = hs.weight * std::exp(-distance(pos_, hs.center) /
                                      cfg_.gravity_scale);
      if (i == home_) w *= cfg_.home_bias;
      weights.push_back(w);
    }
    dest_ = sample_hotspot_point(rng_.weighted_index(weights));
  }
  speed_ = rng_.uniform(cfg_.v_min, cfg_.v_max);
}

void TaxiFleetModel::advance(double dt) {
  DTN_REQUIRE(dt >= 0.0, "advance: negative dt");
  while (dt > 0.0) {
    if (pause_left_ > 0.0) {
      const double p = std::min(pause_left_, dt);
      pause_left_ -= p;
      dt -= p;
      if (pause_left_ <= 0.0) start_new_trip();
      continue;
    }
    const Vec2 to_dest = dest_ - pos_;
    const double dist = to_dest.norm();
    const double step = speed_ * dt;
    if (step < dist) {
      pos_ += to_dest.normalized() * step;
      return;
    }
    pos_ = dest_;
    dt -= (speed_ > 0.0) ? dist / speed_ : dt;
    pause_left_ =
        std::min(rng_.pareto(cfg_.pause_xm, cfg_.pause_alpha), cfg_.pause_cap);
  }
}


void TaxiFleetModel::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("taxi");
  snapshot::write_rng(out, rng_);
  out.u64(home_);
  out.f64(pos_.x);
  out.f64(pos_.y);
  out.f64(dest_.x);
  out.f64(dest_.y);
  out.f64(speed_);
  out.f64(pause_left_);
  out.end_section();
}

void TaxiFleetModel::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("taxi");
  snapshot::read_rng(in, rng_);
  home_ = static_cast<std::size_t>(in.u64());
  pos_.x = in.f64();
  pos_.y = in.f64();
  dest_.x = in.f64();
  dest_.y = in.f64();
  speed_ = in.f64();
  pause_left_ = in.f64();
  in.end_section();
}

}  // namespace dtn
