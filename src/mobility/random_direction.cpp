#include "src/mobility/random_direction.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

RandomDirectionModel::RandomDirectionModel(const RandomDirectionConfig& cfg,
                                           Rng rng)
    : cfg_(cfg), rng_(rng) {
  DTN_REQUIRE(cfg.v_min > 0.0 && cfg.v_max >= cfg.v_min,
              "random-direction: bad speed range");
  pos_ = cfg_.area.sample(rng_);
  new_leg();
}

void RandomDirectionModel::new_leg() {
  const double theta = rng_.uniform(0.0, 2.0 * 3.14159265358979323846);
  dir_ = {std::cos(theta), std::sin(theta)};
  speed_ = rng_.uniform(cfg_.v_min, cfg_.v_max);
  // Distance to the border along dir_.
  double t = std::numeric_limits<double>::infinity();
  if (dir_.x > 0) t = std::min(t, (cfg_.area.max.x - pos_.x) / dir_.x);
  if (dir_.x < 0) t = std::min(t, (cfg_.area.min.x - pos_.x) / dir_.x);
  if (dir_.y > 0) t = std::min(t, (cfg_.area.max.y - pos_.y) / dir_.y);
  if (dir_.y < 0) t = std::min(t, (cfg_.area.min.y - pos_.y) / dir_.y);
  leg_left_ = std::max(0.0, std::isfinite(t) ? t : 0.0);
}

void RandomDirectionModel::advance(double dt) {
  DTN_REQUIRE(dt >= 0.0, "advance: negative dt");
  while (dt > 0.0) {
    if (pause_left_ > 0.0) {
      const double p = std::min(pause_left_, dt);
      pause_left_ -= p;
      dt -= p;
      continue;
    }
    const double step = speed_ * dt;
    if (step < leg_left_) {
      pos_ += dir_ * step;
      leg_left_ -= step;
      return;
    }
    pos_ = cfg_.area.clamp(pos_ + dir_ * leg_left_);
    dt -= (speed_ > 0.0) ? leg_left_ / speed_ : dt;
    pause_left_ = rng_.uniform(cfg_.pause_min, cfg_.pause_max);
    new_leg();
  }
}


void RandomDirectionModel::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("direction");
  snapshot::write_rng(out, rng_);
  out.f64(pos_.x);
  out.f64(pos_.y);
  out.f64(dir_.x);
  out.f64(dir_.y);
  out.f64(speed_);
  out.f64(leg_left_);
  out.f64(pause_left_);
  out.end_section();
}

void RandomDirectionModel::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("direction");
  snapshot::read_rng(in, rng_);
  pos_.x = in.f64();
  pos_.y = in.f64();
  dir_.x = in.f64();
  dir_.y = in.f64();
  speed_ = in.f64();
  leg_left_ = in.f64();
  pause_left_ = in.f64();
  in.end_section();
}

}  // namespace dtn
