// TaxiFleetModel: synthetic substitute for the EPFL/CRAWDAD San Francisco
// taxi GPS trace used in the paper's Fig. 9 experiments (the real dataset
// cannot be redistributed and is unavailable offline).
//
// What the paper's evaluation actually relies on from that trace:
//   * irregular, non-uniform movement ("the movement of the taxis in the
//     real trace lacks regularity"),
//   * fewer contacts than random-waypoint at equal density,
//   * a pronounced spatial aggregation phenomenon (downtown clustering),
//   * intermeeting times that still tail off exponentially (their Fig. 3b).
//
// The model reproduces those properties mechanistically: taxis run trips
// between demand hotspots chosen by a gravity rule (hotspot weight
// attenuated by distance), drive at road-like trip speeds, idle at the
// destination with a Pareto-distributed pause (heavy-ish tail: cab ranks),
// and occasionally cruise to a uniformly random point (fares hailed in the
// street). Each taxi has a "home district" bias, giving persistent
// pairwise heterogeneity in encounter rates.
//
// Real traces can still be replayed bit-for-bit through TraceReplayModel.
#pragma once

#include <vector>

#include "src/geo/rect.hpp"
#include "src/mobility/mobility_model.hpp"
#include "src/util/rng.hpp"

namespace dtn {

/// A demand hotspot (cab rank / district center).
struct Hotspot {
  Vec2 center;
  double weight = 1.0;   ///< relative demand
  double radius = 150.0; ///< scatter of actual pick-up points (m)
};

struct TaxiFleetConfig {
  Rect area = Rect::sized(5700.0, 6600.0);  ///< ~ SF peninsula extent
  std::vector<Hotspot> hotspots;            ///< empty -> default SF-like set
  double v_min = 5.0;            ///< m/s; urban driving
  double v_max = 15.0;
  double pause_xm = 30.0;        ///< Pareto scale (s) of idle at destination
  double pause_alpha = 1.5;      ///< Pareto shape (heavy-ish tail)
  double pause_cap = 1800.0;     ///< cap idle so taxis keep circulating (s)
  double cruise_prob = 0.15;     ///< chance a trip goes to a uniform point
  double gravity_scale = 2500.0; ///< distance attenuation L in w*exp(-d/L)
  double home_bias = 2.5;        ///< weight multiplier for the home hotspot

  /// Default hotspot layout: one dominant downtown cluster, an airport far
  /// south, and mid-weight district centers — shaped after the SF cabspotting
  /// demand pattern the paper's trace exhibits.
  static std::vector<Hotspot> default_hotspots(const Rect& area);
};

class TaxiFleetModel final : public MobilityModel {
 public:
  /// `home` selects this taxi's home hotspot (index into cfg.hotspots after
  /// defaulting); pass SIZE_MAX to sample it from the hotspot weights.
  TaxiFleetModel(const TaxiFleetConfig& cfg, Rng rng,
                 std::size_t home = SIZE_MAX);

  void advance(double dt) override;
  Vec2 position() const override { return pos_; }
  const char* name() const override { return "taxi-fleet"; }
  double max_speed() const override { return cfg_.v_max; }

  std::size_t home() const { return home_; }

  void save_state(snapshot::ArchiveWriter& out) const override;
  void load_state(snapshot::ArchiveReader& in) override;

 private:
  void start_new_trip();
  Vec2 sample_hotspot_point(std::size_t idx);

  TaxiFleetConfig cfg_;
  Rng rng_;
  std::size_t home_ = 0;
  Vec2 pos_;
  Vec2 dest_;
  double speed_ = 1.0;
  double pause_left_ = 0.0;
};

}  // namespace dtn
