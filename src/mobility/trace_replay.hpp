// Trace replay: drives a node along externally recorded waypoints with
// linear interpolation. This is the hook for plugging in the real
// EPFL/CRAWDAD San-Francisco taxi GPS trace if it is available; the
// bundled experiments use the synthetic TaxiFleetModel substitute.
//
// Trace text format (one sample per line, '#' comments allowed):
//   <time_s> <node_id> <x_m> <y_m>
// Samples for one node must be in nondecreasing time order. Before its
// first sample / after its last one, the node sits at that endpoint.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/geo/vec2.hpp"
#include "src/mobility/mobility_model.hpp"

namespace dtn {

/// One node's timestamped waypoint list.
struct NodeTrace {
  std::vector<double> times;
  std::vector<Vec2> points;

  /// Position at absolute time t (clamped interpolation).
  Vec2 at(double t) const;
};

/// A parsed multi-node trace.
struct TraceSet {
  std::map<std::size_t, NodeTrace> nodes;

  /// Parses trace text; throws PreconditionError on malformed input.
  static TraceSet parse(const std::string& text);
  /// Loads a trace file.
  static TraceSet load(const std::string& path);

  std::size_t node_count() const { return nodes.size(); }
};

/// Mobility model replaying one node's trace.
class TraceReplayModel final : public MobilityModel {
 public:
  /// `trace` is copied; replay starts at time 0.
  explicit TraceReplayModel(NodeTrace trace);

  void advance(double dt) override;
  Vec2 position() const override { return pos_; }
  const char* name() const override { return "trace-replay"; }
  /// Max interpolation speed over the trace's segments (computed once at
  /// construction). Zero-duration jumps are excluded: they show up as
  /// observed displacement in the contact tracker and force a full pass.
  double max_speed() const override { return max_speed_; }

  void save_state(snapshot::ArchiveWriter& out) const override;
  void load_state(snapshot::ArchiveReader& in) override;

 private:
  NodeTrace trace_;
  double now_ = 0.0;
  Vec2 pos_;
  double max_speed_ = 0.0;
};

}  // namespace dtn
