#include "src/sdsrp/intermeeting_estimator.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn::sdsrp {

IntermeetingEstimator::IntermeetingEstimator(double prior_mean,
                                             std::size_t min_samples,
                                             ImtEstimatorMode mode)
    : prior_mean_(prior_mean), min_samples_(min_samples), mode_(mode) {
  DTN_REQUIRE(prior_mean > 0.0, "intermeeting: prior mean must be positive");
}

void IntermeetingEstimator::on_contact_start(std::size_t peer, double now) {
  const auto it = last_end_.find(peer);
  if (it != last_end_.end()) {
    if (now > it->second) stats_.add(now - it->second);
    closed_exposure_ += std::max(0.0, now - it->second);
    // The open interval for this peer closes.
    --open_count_;
    open_since_sum_ -= it->second;
    last_end_.erase(it);
  }
  last_seen_[peer] = now;
  sync_hot();
}

void IntermeetingEstimator::on_contact_end(std::size_t peer, double now) {
  const auto it = last_end_.find(peer);
  if (it != last_end_.end()) {
    // Consecutive end without an intervening recorded start (should not
    // happen with a well-behaved kernel): restart the open interval.
    open_since_sum_ += now - it->second;
    it->second = now;
  } else {
    last_end_.emplace(peer, now);
    ++open_count_;
    open_since_sum_ += now;
  }
  last_seen_[peer] = now;
  sync_hot();
}

void IntermeetingEstimator::bind_hot(NodeHotState* hot, std::size_t id) {
  hot_ = hot;
  hot_id_ = id;
  if (hot_ == nullptr) return;
  hot_->imt_prior[hot_id_] = prior_mean_;
  hot_->imt_min_samples[hot_id_] = min_samples_;
  hot_->imt_naive[hot_id_] = mode_ == ImtEstimatorMode::kNaiveMean ? 1 : 0;
  sync_hot();
}

void IntermeetingEstimator::sync_hot() {
  if (hot_ == nullptr) return;
  hot_->imt_events[hot_id_] = stats_.count();
  hot_->imt_naive_mean[hot_id_] = stats_.mean();
  hot_->imt_closed_exposure[hot_id_] = closed_exposure_;
  hot_->imt_open_count[hot_id_] = open_count_;
  hot_->imt_open_since_sum[hot_id_] = open_since_sum_;
}

double IntermeetingEstimator::mean_intermeeting(double now) const {
  if (stats_.count() < min_samples_) return prior_mean_;
  if (mode_ == ImtEstimatorMode::kNaiveMean) {
    const double m = stats_.mean();
    return m > 0.0 ? m : prior_mean_;
  }
  // Censored MLE: exposure / events. Open intervals contribute the time
  // each not-yet-re-met peer has been waiting since its last contact end.
  const double open_exposure =
      static_cast<double>(open_count_) * now - open_since_sum_;
  const double exposure = closed_exposure_ + std::max(0.0, open_exposure);
  const double events = static_cast<double>(stats_.count());
  const double mean = exposure / events;
  return mean > 0.0 ? mean : prior_mean_;
}

double IntermeetingEstimator::lambda_min(double now,
                                         std::size_t n_nodes) const {
  DTN_REQUIRE(n_nodes >= 2, "lambda_min: need at least two nodes");
  return static_cast<double>(n_nodes - 1) * lambda(now);
}

double IntermeetingEstimator::mean_min_intermeeting(
    double now, std::size_t n_nodes) const {
  return 1.0 / lambda_min(now, n_nodes);
}

double IntermeetingEstimator::last_contact(std::size_t peer) const {
  const auto it = last_seen_.find(peer);
  return it != last_seen_.end() ? it->second
                                : -std::numeric_limits<double>::infinity();
}

namespace {

void write_sorted_map(snapshot::ArchiveWriter& out,
                      const std::unordered_map<std::size_t, double>& m) {
  std::vector<std::size_t> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  out.u64(keys.size());
  for (std::size_t k : keys) {
    out.u64(k);
    out.f64(m.at(k));
  }
}

void read_map(snapshot::ArchiveReader& in,
              std::unordered_map<std::size_t, double>& m) {
  m.clear();
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(in.u64());
    m[k] = in.f64();
  }
}

}  // namespace

void IntermeetingEstimator::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("imt-estimator");
  snapshot::write_running_stats(out, stats_);
  out.f64(closed_exposure_);
  out.u64(open_count_);
  out.f64(open_since_sum_);
  write_sorted_map(out, last_end_);
  write_sorted_map(out, last_seen_);
  out.end_section();
}

void IntermeetingEstimator::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("imt-estimator");
  snapshot::read_running_stats(in, stats_);
  closed_exposure_ = in.f64();
  open_count_ = static_cast<std::size_t>(in.u64());
  open_since_sum_ = in.f64();
  read_map(in, last_end_);
  read_map(in, last_seen_);
  in.end_section();
  sync_hot();
}

}  // namespace dtn::sdsrp
