#include "src/sdsrp/spray_tree.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace dtn::sdsrp {

double estimate_m_seen(const SprayTreeInputs& in) {
  DTN_REQUIRE(in.mean_min_imt > 0.0, "spray_tree: E(I_min) must be positive");
  DTN_REQUIRE(in.n_nodes >= 2, "spray_tree: need at least two nodes");
  const std::size_t n = in.spray_times.size();
  if (n == 0) return 0.0;  // source never sprayed: nobody else has seen it

  const double cap_total = static_cast<double>(in.n_nodes - 1);
  const double t_n =
      in.anchor_at_last_spray ? in.spray_times.back() : in.now;
  double m = 1.0;  // the "+1" of Eq. 15: the most recent branch counterpart
  // Eq. 15 sums k = 1 .. n-1 over the older branches.
  for (std::size_t k = 1; k < n; ++k) {
    const double age = t_n - in.spray_times[k - 1];
    const double doublings = std::floor(std::max(age, 0.0) / in.mean_min_imt);
    // Subtree budget: the branch at split k received C/2^k copies.
    const double budget =
        std::max(1.0, in.initial_copies / std::pow(2.0, static_cast<double>(k)));
    const double grown = std::pow(2.0, std::min(doublings, 60.0));
    m += std::min(grown, budget);
    if (m >= cap_total) return cap_total;
  }
  return std::min(m, cap_total);
}

double estimate_n_holding(double m_seen, double d_dropped) {
  return std::max(1.0, m_seen + 1.0 - std::max(0.0, d_dropped));
}

}  // namespace dtn::sdsrp
