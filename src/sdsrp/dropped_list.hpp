// Dropped-list gossip (paper Fig. 5): the distributed structure from which
// d_i(T_i) — the number of nodes that have dropped message i — is estimated.
//
// Every node maintains one *own* record {node id, set of dropped message
// ids, record time}; only the owning node may modify it, stamping the
// record time whenever a new drop occurs in its buffer. Nodes exchange all
// records they carry when they meet, and resolve conflicts by keeping the
// record with the newest record time per owner. A node also rejects
// re-receiving a message that is in its own dropped record, which prevents
// the same node's drop being counted twice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace dtn::snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace dtn::snapshot

namespace dtn::sdsrp {

/// One node's drop record as gossiped through the network.
struct DropRecord {
  std::unordered_set<std::uint64_t> dropped;  ///< message ids
  double record_time = -1.0;                  ///< stamped by the owner only
};

class DroppedList {
 public:
  explicit DroppedList(std::size_t owner) : owner_(owner) {}

  std::size_t owner() const { return owner_; }

  /// The owner dropped `msg` at time `now`: updates the own record and its
  /// record time (the only mutation allowed on the own record).
  void record_local_drop(std::uint64_t msg, double now);

  /// True if this node itself dropped `msg` before (receive-rejection).
  bool has_own_drop(std::uint64_t msg) const;

  /// Gossip merge: adopt every record of `other` that is newer than the
  /// local copy of the same owner's record. The own record is never
  /// overwritten by gossip (only the owner modifies it, and its local copy
  /// is by construction the newest). Returns true if any record was
  /// adopted — i.e. d̂ estimates may have changed and priority memos
  /// keyed on them must be invalidated.
  bool merge_from(const DroppedList& other);

  /// d̂_i: number of known node records containing `msg`.
  double count_drops(std::uint64_t msg) const;

  /// Forgets `msg` from all records (e.g. after TTL expiry, the drop no
  /// longer needs tracking). Does not bump record times.
  void forget_message(std::uint64_t msg);

  std::size_t known_records() const { return records_.size(); }

  /// Snapshot/restore: serializes all known records in canonical (sorted)
  /// order; the counts_ index is rebuilt on load.
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  void index_add(const DropRecord& rec);
  void index_remove(const DropRecord& rec);

  std::size_t owner_;
  std::unordered_map<std::size_t, DropRecord> records_;  ///< by owner node id
  /// Aggregated index: message id -> number of records containing it.
  /// Kept in sync by record/merge/forget so count_drops is O(1) — it is
  /// evaluated once per priority computation, which is the simulator's
  /// hottest path under SDSRP.
  std::unordered_map<std::uint64_t, int> counts_;
};

}  // namespace dtn::sdsrp
