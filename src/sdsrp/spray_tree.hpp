// Estimation of m_i(T_i) — how many nodes have seen message i — from the
// binary-spray timestamp history carried with each copy (paper Fig. 6 and
// Eq. 15):
//
//   m_i(T_i) = Σ_{k=1}^{n-1} 2^{⌊(t_n - t_k)/E(I_min)⌋} + 1
//
// where t_1..t_n are the times this copy's lineage was binary-sprayed and
// n = log2(C / C_i) is the spray-tree depth. Each subtree that branched off
// at split k is assumed to have kept doubling every E(I_min).
//
// Two physical clamps the paper leaves implicit (see DESIGN.md §4):
//   * a subtree that branched at split k received at most C/2^k copies, so
//     its infection count cannot exceed that budget;
//   * the total cannot exceed N-1 (every node but the source).
#pragma once

#include <cstddef>
#include <vector>

namespace dtn::sdsrp {

struct SprayTreeInputs {
  /// Times this lineage was binary-sprayed, oldest first.
  std::vector<double> spray_times;
  double now = 0.0;            ///< current time (fallback t_n)
  double mean_min_imt = 1.0;   ///< E(I_min)
  double initial_copies = 1.0; ///< C
  std::size_t n_nodes = 2;     ///< N (for the N-1 cap)
  /// Eq. 15 evaluates branch ages against t_n, the time of the most recent
  /// spray ("assuming that the current time is t_3"). When false, ages are
  /// measured against `now` instead — branches keep growing between
  /// contacts. The estimator-accuracy ablation compares both.
  bool anchor_at_last_spray = true;
};

/// m̂_i(T_i): estimated number of nodes (excluding the source) that have
/// seen the message. Returns 0 when the copy was never sprayed.
double estimate_m_seen(const SprayTreeInputs& in);

/// n̂_i(T_i) = m̂_i + 1 - d_i (Eq. 14), clamped to >= 1 (the evaluating
/// node itself holds a copy).
double estimate_n_holding(double m_seen, double d_dropped);

}  // namespace dtn::sdsrp
