#include "src/sdsrp/spray_wait_delay_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/util/error.hpp"

namespace dtn::sdsrp {

SprayWaitDelayModel::SprayWaitDelayModel(std::size_t n_nodes, int copies,
                                         double lambda)
    : n_(n_nodes), l_(copies), lambda_(lambda) {
  DTN_REQUIRE(n_nodes >= 2, "delay model: need at least two nodes");
  DTN_REQUIRE(copies >= 1, "delay model: copy budget must be positive");
  DTN_REQUIRE(lambda > 0.0, "delay model: meeting rate must be positive");
  build_states();
}

void SprayWaitDelayModel::build_states() {
  // BFS from {L}; splitting strictly grows the carrier count, so the
  // discovery order is topological.
  std::map<std::vector<int>, std::size_t> index;
  states_.push_back(State{{l_}, 0.0, {}});
  index.emplace(states_.front().parts, 0);
  for (std::size_t s = 0; s < states_.size(); ++s) {
    // states_ may reallocate while we append; work on a copy of parts.
    const std::vector<int> parts = states_[s].parts;
    const auto n = parts.size();
    const double non_carriers =
        static_cast<double>(n_ >= 1 + n ? n_ - 1 - n : 0);
    double exit = static_cast<double>(n) * lambda_;  // absorption
    if (non_carriers > 0.0) {
      int prev = 0;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        const int c = parts[i];
        if (c < 2 || c == prev) {  // wait phase / duplicate part value
          prev = c;
          continue;
        }
        prev = c;
        const auto multiplicity = static_cast<double>(
            std::count(parts.begin(), parts.end(), c));
        std::vector<int> next = parts;
        next[i] = (c + 1) / 2;         // sender keeps the ceiling half
        next.push_back(c / 2);         // receiver gets the floor half
        std::sort(next.begin(), next.end(), std::greater<int>());
        auto [it, inserted] = index.emplace(next, states_.size());
        if (inserted) states_.push_back(State{next, 0.0, {}});
        const double rate = multiplicity * non_carriers * lambda_;
        states_[s].splits.emplace_back(it->second, rate);
        exit += rate;
      }
    }
    states_[s].exit_rate = exit;
  }
}

std::vector<double> SprayWaitDelayModel::cdf(
    const std::vector<double>& ts) const {
  std::vector<double> out;
  out.reserve(ts.size());
  if (ts.empty()) return out;
  DTN_REQUIRE(ts.front() >= 0.0, "delay model cdf: negative time");
  for (std::size_t i = 1; i < ts.size(); ++i) {
    DTN_REQUIRE(ts[i] >= ts[i - 1], "delay model cdf: times must ascend");
  }

  // RK4 over dp/dt = Q p on the transient states; F(t) = 1 − Σ p_s(t).
  // The step targets max_rate·dt ≈ 0.05, so stiffness is never an issue
  // and the O(dt⁴) error is far below the oracle tolerances.
  double max_rate = lambda_;
  for (const State& s : states_) max_rate = std::max(max_rate, s.exit_rate);
  const double dt = 0.05 / max_rate;

  std::vector<double> p(states_.size(), 0.0), dp(states_.size(), 0.0);
  std::vector<double> k(states_.size(), 0.0), tmp(states_.size(), 0.0);
  p[0] = 1.0;

  auto derivative = [this](const std::vector<double>& q,
                           std::vector<double>& d) {
    std::fill(d.begin(), d.end(), 0.0);
    for (std::size_t s = 0; s < states_.size(); ++s) {
      const double mass = q[s];
      if (mass == 0.0) continue;
      d[s] -= states_[s].exit_rate * mass;
      for (const auto& [to, rate] : states_[s].splits) {
        d[to] += rate * mass;
      }
    }
  };

  auto rk4_step = [&](double h) {
    // tmp accumulates p + h/6·(k1 + 2k2 + 2k3 + k4) via the classic
    // staged evaluation; dp holds the stage input, k the stage slope.
    derivative(p, k);  // k1
    for (std::size_t i = 0; i < p.size(); ++i) {
      tmp[i] = p[i] + h / 6.0 * k[i];
      dp[i] = p[i] + h / 2.0 * k[i];
    }
    derivative(dp, k);  // k2
    for (std::size_t i = 0; i < p.size(); ++i) {
      tmp[i] += h / 3.0 * k[i];
      dp[i] = p[i] + h / 2.0 * k[i];
    }
    derivative(dp, k);  // k3
    for (std::size_t i = 0; i < p.size(); ++i) {
      tmp[i] += h / 3.0 * k[i];
      dp[i] = p[i] + h * k[i];
    }
    derivative(dp, k);  // k4
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] = tmp[i] + h / 6.0 * k[i];
    }
  };

  double now = 0.0;
  for (double t : ts) {
    while (now < t) {
      const double h = std::min(dt, t - now);
      rk4_step(h);
      now += h;
    }
    double transient = 0.0;
    for (double q : p) transient += q;
    out.push_back(std::clamp(1.0 - transient, 0.0, 1.0));
  }
  return out;
}

double SprayWaitDelayModel::cdf(double t) const {
  return cdf(std::vector<double>{t}).front();
}

double SprayWaitDelayModel::mean_delay() const {
  // First-passage times, exact: E_s = (1 + Σ rate·E_to) / exit_rate.
  // Splits only point forward in the (topological) state order, so a
  // single reverse sweep resolves every state.
  std::vector<double> e(states_.size(), 0.0);
  for (std::size_t s = states_.size(); s-- > 0;) {
    double acc = 1.0;
    for (const auto& [to, rate] : states_[s].splits) acc += rate * e[to];
    e[s] = acc / states_[s].exit_rate;
  }
  return e[0];
}

double SprayWaitDelayModel::quantile(double q) const {
  DTN_REQUIRE(q > 0.0 && q < 1.0, "delay model quantile: q out of (0,1)");
  // Bracket: grow until F(hi) ≥ q, then bisect on a fresh grid. The mean
  // bounds the scale, so the bracket converges in a few doublings.
  double hi = mean_delay();
  while (cdf(hi) < q) hi *= 2.0;
  double lo = 0.0;
  for (int iter = 0; iter < 60 && (hi - lo) > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace dtn::sdsrp
