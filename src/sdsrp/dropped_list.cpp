#include "src/sdsrp/dropped_list.hpp"

#include <algorithm>
#include <vector>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn::sdsrp {

void DroppedList::index_add(const DropRecord& rec) {
  for (std::uint64_t msg : rec.dropped) ++counts_[msg];
}

void DroppedList::index_remove(const DropRecord& rec) {
  for (std::uint64_t msg : rec.dropped) {
    auto it = counts_.find(msg);
    if (it != counts_.end() && --it->second <= 0) counts_.erase(it);
  }
}

void DroppedList::record_local_drop(std::uint64_t msg, double now) {
  DropRecord& own = records_[owner_];
  if (own.dropped.insert(msg).second) ++counts_[msg];
  own.record_time = now;
}

bool DroppedList::has_own_drop(std::uint64_t msg) const {
  const auto it = records_.find(owner_);
  return it != records_.end() && it->second.dropped.count(msg) > 0;
}

bool DroppedList::merge_from(const DroppedList& other) {
  bool changed = false;
  for (const auto& [node, rec] : other.records_) {
    if (node == owner_) continue;  // only the owner writes the own record
    auto it = records_.find(node);
    if (it == records_.end()) {
      records_.emplace(node, rec);
      index_add(rec);
      changed = true;
    } else if (rec.record_time > it->second.record_time) {
      index_remove(it->second);
      it->second = rec;
      index_add(rec);
      changed = true;
    }
  }
  return changed;
}

double DroppedList::count_drops(std::uint64_t msg) const {
  const auto it = counts_.find(msg);
  return it != counts_.end() ? static_cast<double>(it->second) : 0.0;
}

void DroppedList::forget_message(std::uint64_t msg) {
  for (auto& [node, rec] : records_) rec.dropped.erase(msg);
  counts_.erase(msg);
}

void DroppedList::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("dropped-list");
  out.u64(owner_);
  std::vector<std::size_t> owners;
  owners.reserve(records_.size());
  for (const auto& [node, rec] : records_) owners.push_back(node);
  std::sort(owners.begin(), owners.end());
  out.u64(owners.size());
  for (std::size_t node : owners) {
    const DropRecord& rec = records_.at(node);
    out.u64(node);
    out.f64(rec.record_time);
    std::vector<std::uint64_t> msgs(rec.dropped.begin(), rec.dropped.end());
    std::sort(msgs.begin(), msgs.end());
    out.u64(msgs.size());
    for (std::uint64_t m : msgs) out.u64(m);
  }
  out.end_section();
}

void DroppedList::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("dropped-list");
  const auto owner = static_cast<std::size_t>(in.u64());
  DTN_REQUIRE(owner == owner_, "dropped-list: snapshot belongs to another node");
  records_.clear();
  counts_.clear();
  const std::uint64_t n_records = in.u64();
  for (std::uint64_t i = 0; i < n_records; ++i) {
    const auto node = static_cast<std::size_t>(in.u64());
    DropRecord rec;
    rec.record_time = in.f64();
    const std::uint64_t n_msgs = in.u64();
    for (std::uint64_t j = 0; j < n_msgs; ++j) rec.dropped.insert(in.u64());
    index_add(rec);
    records_.emplace(node, std::move(rec));
  }
  in.end_section();
}

}  // namespace dtn::sdsrp
