#include "src/sdsrp/dropped_list.hpp"

namespace dtn::sdsrp {

void DroppedList::index_add(const DropRecord& rec) {
  for (std::uint64_t msg : rec.dropped) ++counts_[msg];
}

void DroppedList::index_remove(const DropRecord& rec) {
  for (std::uint64_t msg : rec.dropped) {
    auto it = counts_.find(msg);
    if (it != counts_.end() && --it->second <= 0) counts_.erase(it);
  }
}

void DroppedList::record_local_drop(std::uint64_t msg, double now) {
  DropRecord& own = records_[owner_];
  if (own.dropped.insert(msg).second) ++counts_[msg];
  own.record_time = now;
}

bool DroppedList::has_own_drop(std::uint64_t msg) const {
  const auto it = records_.find(owner_);
  return it != records_.end() && it->second.dropped.count(msg) > 0;
}

void DroppedList::merge_from(const DroppedList& other) {
  for (const auto& [node, rec] : other.records_) {
    if (node == owner_) continue;  // only the owner writes the own record
    auto it = records_.find(node);
    if (it == records_.end()) {
      records_.emplace(node, rec);
      index_add(rec);
    } else if (rec.record_time > it->second.record_time) {
      index_remove(it->second);
      it->second = rec;
      index_add(rec);
    }
  }
}

double DroppedList::count_drops(std::uint64_t msg) const {
  const auto it = counts_.find(msg);
  return it != counts_.end() ? static_cast<double>(it->second) : 0.0;
}

void DroppedList::forget_message(std::uint64_t msg) {
  for (auto& [node, rec] : records_) rec.dropped.erase(msg);
  counts_.erase(msg);
}

}  // namespace dtn::sdsrp
