// Online estimation of the pairwise intermeeting-time mean E(I) and rate
// λ = 1/E(I) (paper Definitions 1-2 and Eq. 3).
//
// Each node keeps, per peer, the end time of the last contact; when a new
// contact with that peer starts, the elapsed gap is one intermeeting
// event. The estimator is distributed — it only uses contacts the node
// itself observed.
//
// Estimation mode (see DESIGN.md §4):
//   * kCensoredMle (default): the exponential-MLE with right-censoring,
//     λ̂ = events / total exposure, where exposure includes the *open*
//     intervals of peers that have not re-met yet. A plain average of
//     observed gaps is biased low — long intermeeting times do not
//     complete within the observation window, so only short gaps are
//     sampled ("length-biased sampling"). In the paper's Table II scenario
//     the naive mean underestimates E(I) several-fold, which saturates the
//     exp term of Eq. 10 and inverts the priority ordering; the MLE
//     removes the bias (the estimator ablation quantifies this).
//   * kNaiveMean: the plain average of completed gaps, matching a literal
//     reading of the paper's Fig. 3 fit.
//
// Before `min_samples` completed events the estimator falls back to a
// configurable prior.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "src/core/hot_state.hpp"
#include "src/util/stats.hpp"

namespace dtn::snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace dtn::snapshot

namespace dtn::sdsrp {

enum class ImtEstimatorMode {
  kCensoredMle,
  kNaiveMean,
};

class IntermeetingEstimator {
 public:
  /// `prior_mean`: E(I) assumed until min_samples completed events exist.
  explicit IntermeetingEstimator(double prior_mean = 30000.0,
                                 std::size_t min_samples = 4,
                                 ImtEstimatorMode mode =
                                     ImtEstimatorMode::kCensoredMle);

  /// Records that a contact with `peer` began at `now`; harvests an
  /// intermeeting event if a previous contact end is known.
  void on_contact_start(std::size_t peer, double now);

  /// Records that the current contact with `peer` ended at `now`.
  void on_contact_end(std::size_t peer, double now);

  /// E(I): estimated mean pairwise intermeeting time at time `now`
  /// (`now` only matters in censored-MLE mode, where open intervals
  /// accrue exposure).
  double mean_intermeeting(double now) const;

  /// λ = 1 / E(I).
  double lambda(double now) const { return 1.0 / mean_intermeeting(now); }

  /// λ_min = (N-1) λ (Eq. 3); E(I_min) = E(I)/(N-1).
  double lambda_min(double now, std::size_t n_nodes) const;
  double mean_min_intermeeting(double now, std::size_t n_nodes) const;

  /// Time of the most recent contact (start or end) with `peer`;
  /// negative infinity if the peer was never met. Used by Spray-and-Focus.
  double last_contact(std::size_t peer) const;

  std::size_t samples() const { return stats_.count(); }
  bool warmed_up() const { return stats_.count() >= min_samples_; }
  ImtEstimatorMode mode() const { return mode_; }

  /// Snapshot/restore of the full estimator state (configuration fields
  /// are construction parameters and are verified, not overwritten).
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

  /// Binds this estimator to row `id` of the World's SoA block: every
  /// contact event (and every restore) writes the scalars that
  /// hot_mean_intermeeting reads, so priority evaluation can stream
  /// parallel arrays instead of chasing this object. The configuration
  /// mirrors are written once here.
  void bind_hot(NodeHotState* hot, std::size_t id);

 private:
  void sync_hot();

  NodeHotState* hot_ = nullptr;  ///< non-owning; nullptr = unmirrored
  std::size_t hot_id_ = 0;
  double prior_mean_;
  std::size_t min_samples_;
  ImtEstimatorMode mode_;
  dtn::RunningStats stats_;          ///< completed intermeeting gaps
  double closed_exposure_ = 0.0;     ///< sum of completed gaps
  std::size_t open_count_ = 0;       ///< peers waiting to re-meet
  double open_since_sum_ = 0.0;      ///< Σ last_end over open intervals
  std::unordered_map<std::size_t, double> last_end_;
  std::unordered_map<std::size_t, double> last_seen_;
};

}  // namespace dtn::sdsrp
