// Analytical delivery-delay distribution of *binary* Spray-and-Wait under
// the stochastic model of Diana & Lochin (arXiv 1111.6860): N nodes whose
// pairwise meeting times are i.i.d. exponential with rate λ, instantaneous
// transfers, unconstrained buffers, a single message with copy budget L
// and a uniformly random destination.
//
// The spreading process is a continuous-time Markov chain whose state is
// the multiset of per-carrier copy counts (a partition of L reachable by
// ⌊c/2⌋/⌈c/2⌉ splits), plus one absorbing "delivered" state:
//
//   * a carrier holding c ≥ 2 copies meets one of the N−1−n non-carriers
//     (the destination excluded) at rate (N−1−n)·λ and splits c into
//     ⌊c/2⌋ + ⌈c/2⌉ — one new carrier;
//   * any of the n carriers meets the destination at rate λ, absorbing
//     the chain — delivery always preempts replication, exactly as the
//     simulator's "deliveries trump replication" rule.
//
// The delivery-delay CDF F(t) is the absorption probability by time t,
// obtained by integrating the Kolmogorov forward equations (RK4 on the
// tiny state space — partitions of L into halving parts, e.g. 36 states
// for L = 16). The expected delay comes from the exact first-passage
// recursion over the same (acyclic) chain.
//
// This is the repo's correctness oracle for the spray tree: a silently
// biased copy-budget split, meeting process or delivery path shifts the
// simulated CDF away from F and is caught by a KS-distance gate
// (src/report/delay_oracle, bench/abl_spray_delay_oracle), which no
// digest-determinism test can do.
#pragma once

#include <cstddef>
#include <vector>

namespace dtn::sdsrp {

class SprayWaitDelayModel {
 public:
  /// Requires n_nodes ≥ 2, copies ≥ 1, lambda > 0. The copy budget may
  /// exceed N−1; spraying simply stops when every non-destination node
  /// carries a copy, as in the simulator.
  SprayWaitDelayModel(std::size_t n_nodes, int copies, double lambda);

  std::size_t n_nodes() const { return n_; }
  int copies() const { return l_; }
  double lambda() const { return lambda_; }

  /// Number of transient CTMC states (partitions of L reachable by
  /// binary splits, capped at N−1 carriers).
  std::size_t state_count() const { return states_.size(); }

  /// F(t) = P(delivery delay ≤ t) for every abscissa in `ts`, which must
  /// be non-negative and ascending. One forward integration pass.
  std::vector<double> cdf(const std::vector<double>& ts) const;

  /// Convenience single-point evaluation.
  double cdf(double t) const;

  /// Exact expected delivery delay E[T] (first-passage recursion; no
  /// numerical integration).
  double mean_delay() const;

  /// Smallest t with F(t) ≥ q (bisection over the integrated CDF).
  /// Requires 0 < q < 1.
  double quantile(double q) const;

 private:
  /// One transient state: partition parts in descending order.
  struct State {
    std::vector<int> parts;       ///< per-carrier copy counts, ≥ 1
    double exit_rate = 0.0;       ///< total outflow (splits + n·λ absorption)
    /// (target state, rate) for each distinct splittable part value.
    std::vector<std::pair<std::size_t, double>> splits;
  };

  void build_states();

  std::size_t n_;
  int l_;
  double lambda_;
  std::vector<State> states_;  ///< index 0 = initial state {L}; the order
                               ///< is topological (splits only go forward)
};

}  // namespace dtn::sdsrp
