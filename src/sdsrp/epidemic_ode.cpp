#include "src/sdsrp/epidemic_ode.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace dtn::sdsrp {

double epidemic_infected(double n_nodes, double lambda, double i0,
                         double t) {
  DTN_REQUIRE(n_nodes >= 2.0, "epidemic_infected: need N >= 2");
  DTN_REQUIRE(lambda > 0.0, "epidemic_infected: lambda must be positive");
  DTN_REQUIRE(i0 >= 1.0 && i0 <= n_nodes, "epidemic_infected: bad I0");
  DTN_REQUIRE(t >= 0.0, "epidemic_infected: negative time");
  // Clamp the exponent to avoid overflow at large t; the solution has
  // already saturated at N there.
  const double x = std::min(lambda * n_nodes * t, 700.0);
  const double e = std::exp(x);
  return n_nodes * i0 * e / (n_nodes - i0 + i0 * e);
}

double epidemic_delivery_cdf(double n_nodes, double lambda, double i0,
                             double t, std::size_t steps) {
  DTN_REQUIRE(steps >= 2, "epidemic_delivery_cdf: need >= 2 steps");
  if (t <= 0.0) return 0.0;
  // Trapezoid integration of I(s) over [0, t].
  const double h = t / static_cast<double>(steps);
  double integral = 0.5 * (epidemic_infected(n_nodes, lambda, i0, 0.0) +
                           epidemic_infected(n_nodes, lambda, i0, t));
  for (std::size_t k = 1; k < steps; ++k) {
    integral +=
        epidemic_infected(n_nodes, lambda, i0, h * static_cast<double>(k));
  }
  integral *= h;
  return 1.0 - std::exp(-lambda * integral);
}

std::vector<double> epidemic_trajectory(double n_nodes, double lambda,
                                        double i0, double horizon,
                                        std::size_t points) {
  DTN_REQUIRE(points >= 2, "epidemic_trajectory: need >= 2 points");
  DTN_REQUIRE(horizon > 0.0, "epidemic_trajectory: bad horizon");
  std::vector<double> out;
  out.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    const double t = horizon * static_cast<double>(k) /
                     static_cast<double>(points - 1);
    out.push_back(epidemic_infected(n_nodes, lambda, i0, t));
  }
  return out;
}

}  // namespace dtn::sdsrp
