// SDSRP priority model — the paper's analytical core (Section III-B).
//
// The priority of a message is the marginal effect of one extra copy on the
// global delivery ratio, U_i = ∂P/∂n_i (Eq. 10), derived from:
//   P(T_i) = m_i/(N-1)                                  (Eq. 5)
//   P(R_i) = 1 - exp(-λ n_i A_i)                        (Eq. 6)
//   A_i    = (log2 C_i + 1) R_i
//            - log2 C_i (log2 C_i + 1) / (2 (N-1) λ)
//   U_i    = (1 - P(T_i)) λ A_i exp(-λ n_i A_i)         (Eq. 10)
// equivalently, in probability space (Eq. 11):
//   U_i = (1 - P(T_i)) (P(R_i) - 1) ln(1 - P(R_i)) / n_i
// with the Taylor form (Eq. 13) truncating ln(1-x) = -Σ x^k/k.
//
// All functions are pure; estimation of m_i/n_i/λ lives in the sibling
// headers, and the buffer policy glues them together.
#pragma once

#include <cstddef>

namespace dtn::sdsrp {

/// Inputs to the priority computation for one message at one node.
struct PriorityInputs {
  std::size_t n_nodes = 0;  ///< N, total nodes in the network
  double lambda = 0.0;      ///< pairwise intermeeting rate λ = 1/E(I)
  double copies = 1.0;      ///< C_i, copies held by the current node
  double remaining_ttl = 0.0;  ///< R_i, seconds
  double m_seen = 0.0;      ///< m_i(T_i), nodes that have seen i (excl. src)
  double n_holding = 1.0;   ///< n_i(T_i), nodes currently holding a copy
};

/// A_i: the bracketed spray-time term shared by Eqs. 6-10. May be negative
/// when the remaining TTL is too short to spray the held copies; a negative
/// A_i yields a negative utility, i.e. drop-first — the desired behavior.
double spray_term(const PriorityInputs& in);

/// P(T_i): probability the message has already been delivered (Eq. 5).
/// Clamped into [0, 1].
double prob_already_delivered(const PriorityInputs& in);

/// P(R_i): probability an undelivered message reaches the destination
/// within the remaining TTL (Eq. 6). Clamped into [0, 1].
double prob_deliver_in_remaining(const PriorityInputs& in);

/// P_i: total delivery probability of the message (Eq. 4/7).
double delivery_probability(const PriorityInputs& in);

/// U_i by the closed form, Eq. 10. This is the priority SDSRP sorts by.
double priority_eq10(const PriorityInputs& in);

/// U_i expressed with probabilities, Eq. 11: equals priority_eq10 up to
/// floating-point error; exposed for tests and for the Fig. 4 curve.
double priority_eq11(double p_t, double p_r, double n_holding);

/// Eq. 13: Taylor-series approximation of Eq. 11 with `terms` terms of
/// ln(1-x) = -Σ_{k>=1} x^k / k. Converges to Eq. 11 as terms -> ∞.
double priority_taylor(double p_t, double p_r, double n_holding,
                       std::size_t terms);

/// The P(R_i) value that maximizes U_i for fixed P(T_i) and n_i:
/// 1 - 1/e (the "peak point" of the paper's Fig. 4).
double peak_prob_remaining();

}  // namespace dtn::sdsrp
