// Epidemic-spreading ODE model (Zhang, Neglia & Kurose — the paper's
// ref [13]): with pairwise exponential intermeeting rate λ and
// unconstrained buffers, the number of infected nodes I(t) for a single
// message follows the logistic SI dynamics
//
//   dI/dt = λ I (N − I),   I(0) = I₀
//
// with the closed form
//
//   I(t) = N I₀ e^{λNt} / (N − I₀ + I₀ e^{λNt}).
//
// A uniformly random destination is infected at hazard rate λ·I(t), so
// the delivery CDF is P(t) = 1 − exp(−λ ∫₀ᵗ I(s) ds), provided here by
// numerical integration.
//
// Used by bench/abl_ode_validation to check that the simulator's contact
// process reproduces the theory the paper's analysis builds on.
#pragma once

#include <cstddef>
#include <vector>

namespace dtn::sdsrp {

/// Closed-form logistic solution I(t) of dI/dt = λ I (N − I).
double epidemic_infected(double n_nodes, double lambda, double i0, double t);

/// Numerical delivery CDF for a uniformly random destination: the
/// destination is infected at hazard rate λ·I(t), so
///   P(t) = 1 − exp(−λ ∫₀ᵗ I(s) ds),
/// integrated with the trapezoid rule at `steps` points.
double epidemic_delivery_cdf(double n_nodes, double lambda, double i0,
                             double t, std::size_t steps = 2000);

/// Samples I(t) on a uniform grid [0, horizon] (inclusive endpoints).
std::vector<double> epidemic_trajectory(double n_nodes, double lambda,
                                        double i0, double horizon,
                                        std::size_t points);

}  // namespace dtn::sdsrp
