#include "src/sdsrp/priority_model.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace dtn::sdsrp {

namespace {
// log2 C_i, with C_i clamped to >= 1 (a node always holds >= 1 copy of a
// message it stores; the wait phase has C_i = 1, log2 = 0).
double log2_copies(double copies) {
  return std::log2(std::max(copies, 1.0));
}

// Exponent λ n A clamped so exp() never overflows/underflows to inf/0*inf.
double safe_exp(double x) { return std::exp(std::clamp(x, -700.0, 700.0)); }
}  // namespace

double spray_term(const PriorityInputs& in) {
  DTN_REQUIRE(in.n_nodes >= 2, "spray_term: need at least two nodes");
  DTN_REQUIRE(in.lambda > 0.0, "spray_term: lambda must be positive");
  const double lc = log2_copies(in.copies);
  return (lc + 1.0) * in.remaining_ttl -
         lc * (lc + 1.0) /
             (2.0 * static_cast<double>(in.n_nodes - 1) * in.lambda);
}

double prob_already_delivered(const PriorityInputs& in) {
  DTN_REQUIRE(in.n_nodes >= 2, "prob_already_delivered: need >= 2 nodes");
  const double p = in.m_seen / static_cast<double>(in.n_nodes - 1);
  return std::clamp(p, 0.0, 1.0);
}

double prob_deliver_in_remaining(const PriorityInputs& in) {
  const double a = spray_term(in);
  const double p = 1.0 - safe_exp(-in.lambda * in.n_holding * a);
  return std::clamp(p, 0.0, 1.0);
}

double delivery_probability(const PriorityInputs& in) {
  const double pt = prob_already_delivered(in);
  const double pr = prob_deliver_in_remaining(in);
  return pt + (1.0 - pt) * pr;  // Eq. 4
}

double priority_eq10(const PriorityInputs& in) {
  const double pt = prob_already_delivered(in);
  const double a = spray_term(in);
  const double u =
      (1.0 - pt) * in.lambda * a * safe_exp(-in.lambda * in.n_holding * a);
  // Keep pathological inputs (hugely negative A) totally ordered and
  // finite rather than overflowing to -inf.
  return std::clamp(u, -1e300, 1e300);
}

double priority_eq11(double p_t, double p_r, double n_holding) {
  DTN_REQUIRE(n_holding > 0.0, "priority_eq11: n must be positive");
  DTN_REQUIRE(p_r >= 0.0 && p_r < 1.0, "priority_eq11: P(R) must be in [0,1)");
  // (1 - PT)(PR - 1) ln(1 - PR) / n. At PR -> 0 the limit is 0.
  if (p_r == 0.0) return 0.0;
  return (1.0 - p_t) * (p_r - 1.0) * std::log(1.0 - p_r) / n_holding;
}

double priority_taylor(double p_t, double p_r, double n_holding,
                       std::size_t terms) {
  DTN_REQUIRE(n_holding > 0.0, "priority_taylor: n must be positive");
  DTN_REQUIRE(p_r >= 0.0 && p_r < 1.0, "priority_taylor: P(R) must be in [0,1)");
  double sum = 0.0;
  double power = 1.0;
  for (std::size_t k = 1; k <= terms; ++k) {
    power *= p_r;  // p_r^k
    sum += power / static_cast<double>(k);
  }
  return (1.0 - p_t) * (1.0 - p_r) * sum / n_holding;
}

double peak_prob_remaining() { return 1.0 - 1.0 / 2.718281828459045235360287; }

}  // namespace dtn::sdsrp
