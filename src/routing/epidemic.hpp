// Epidemic routing (Vahdat & Becker, 2000): replicate every message to
// every encountered node that lacks it. The classic flooding baseline the
// paper's related work optimizes (GBSD etc.).
#pragma once

#include "src/core/router.hpp"

namespace dtn {

class EpidemicRouter final : public Router {
 public:
  const char* name() const override { return "epidemic"; }

  std::optional<MessageId> next_to_send(
      const Node& self, const Node& peer,
      const PolicyContext& ctx) const override;

  bool on_sent(Message& copy, bool delivered, SimTime now) const override;

  Message make_relay_copy(const Message& sender_copy,
                          SimTime now) const override;
};

}  // namespace dtn
