// Spray-and-Wait routing (Spyropoulos et al., WDTN 2005) — the protocol
// the paper builds on.
//
// Spray phase: while a node holds more than one copy token of a message,
// it replicates to encountered nodes; in *binary* mode it hands over half
// its tokens (the receiver gets ⌊C_i/2⌋, the sender keeps ⌈C_i/2⌉); in
// *source* mode only the source sprays, one token at a time.
// Wait phase: with a single token left, the copy is only transmitted
// directly to the destination.
//
// Every binary split appends the current time to both copies'
// `spray_times` lineage — the raw material of SDSRP's m_i estimator
// (paper Fig. 6 / Eq. 15).
#pragma once

#include "src/core/router.hpp"

namespace dtn {

struct SprayAndWaitConfig {
  bool binary = true;  ///< binary splitting (paper) vs source spray
  /// When true (default), the sender checks — as part of the contact
  /// handshake — that the receiver's buffer policy would admit the copy,
  /// and skips candidates that would be refused (ONE's DENIED mechanic).
  /// When false the transfer always proceeds and rejection happens only on
  /// arrival, wasting the contact's bandwidth (no-handshake protocol).
  bool precheck_admission = true;
  /// Rate an arriving spray by the sender's pre-split copy state in the
  /// receiver's Algorithm-1 drop decision (see Router docs).
  bool presplit_admission_view = false;
};

class SprayAndWaitRouter final : public Router {
 public:
  explicit SprayAndWaitRouter(const SprayAndWaitConfig& cfg = {})
      : cfg_(cfg) {}

  const char* name() const override {
    return cfg_.binary ? "spray-and-wait-binary" : "spray-and-wait-source";
  }

  std::optional<MessageId> next_to_send(
      const Node& self, const Node& peer,
      const PolicyContext& ctx) const override;

  bool on_sent(Message& copy, bool delivered, SimTime now) const override;

  Message make_relay_copy(const Message& sender_copy,
                          SimTime now) const override;

  bool rate_newcomer_as_sender_copy() const override {
    return cfg_.presplit_admission_view;
  }

 private:
  bool can_spray(const Message& m, const Node& self) const;

  SprayAndWaitConfig cfg_;
};

}  // namespace dtn
