#include "src/routing/prophet.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/node.hpp"
#include "src/routing/routing_common.hpp"
#include "src/snapshot/archive.hpp"

namespace dtn {

void ProphetTable::age(const ProphetConfig& cfg, SimTime now) {
  if (now <= last_age_) return;
  const double steps = (now - last_age_) / cfg.aging_unit;
  const double factor = std::pow(cfg.gamma, steps);
  for (auto& [dest, p] : p_) p *= factor;
  last_age_ = now;
}

void ProphetTable::on_encounter(
    const ProphetConfig& cfg, NodeId peer,
    const std::unordered_map<NodeId, double>& peer_snapshot, SimTime now) {
  age(cfg, now);
  double& p_peer = p_[peer];
  p_peer += (1.0 - p_peer) * cfg.p_init;
  for (const auto& [dest, p_bc] : peer_snapshot) {
    if (dest == peer) continue;
    double& p_ac = p_[dest];
    p_ac += (1.0 - p_ac) * p_peer * p_bc * cfg.beta;
  }
}

double ProphetTable::predictability(NodeId dest) const {
  const auto it = p_.find(dest);
  return it != p_.end() ? it->second : 0.0;
}

void ProphetTable::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("prophet-table");
  std::vector<NodeId> dests;
  dests.reserve(p_.size());
  for (const auto& [dest, p] : p_) dests.push_back(dest);
  std::sort(dests.begin(), dests.end());
  out.u64(dests.size());
  for (NodeId dest : dests) {
    out.u32(dest);
    out.f64(p_.at(dest));
  }
  out.f64(last_age_);
  out.end_section();
}

void ProphetTable::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("prophet-table");
  p_.clear();
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const NodeId dest = in.u32();
    p_[dest] = in.f64();
  }
  last_age_ = in.f64();
  in.end_section();
}

void ProphetRouter::on_link_up(const Node& a, const Node& b,
                               SimTime now) const {
  ProphetTable& ta = tables_[a.id()];
  ProphetTable& tb = tables_[b.id()];
  ta.age(cfg_, now);
  tb.age(cfg_, now);
  // Snapshot both sides before mutating so the update is symmetric.
  const auto snap_a = ta.entries();
  const auto snap_b = tb.entries();
  ta.on_encounter(cfg_, b.id(), snap_b, now);
  tb.on_encounter(cfg_, a.id(), snap_a, now);
}

double ProphetRouter::predictability(NodeId owner, NodeId dest,
                                     SimTime now) const {
  ProphetTable& t = tables_[owner];
  t.age(cfg_, now);
  return t.predictability(dest);
}

std::optional<MessageId> ProphetRouter::next_to_send(
    const Node& self, const Node& peer, const PolicyContext& ctx) const {
  const auto deliverable = routing::deliverable_messages(self, peer, ctx);
  if (!deliverable.empty()) return deliverable.front()->id;

  std::vector<const Message*> candidates;
  for (const Message& m : self.buffer().messages()) {
    if (m.expired(ctx.now)) continue;
    if (m.destination == peer.id()) continue;
    if (!routing::peer_can_receive(peer, m)) continue;
    // Replicate only toward higher delivery predictability.
    if (predictability(peer.id(), m.destination, ctx.now) <=
        predictability(self.id(), m.destination, ctx.now)) {
      continue;
    }
    candidates.push_back(&m);
  }
  self.policy().order_for_sending(candidates, ctx);
  return routing::first_admittable(
      candidates, peer, ctx,
      [this, &ctx](const Message& m) { return make_relay_copy(m, ctx.now); });
}

bool ProphetRouter::on_sent(Message& copy, bool /*delivered*/,
                            SimTime /*now*/) const {
  ++copy.forwards;
  return true;  // PRoPHET replicates; the sender keeps its copy
}

Message ProphetRouter::make_relay_copy(const Message& sender_copy,
                                       SimTime now) const {
  Message relay = sender_copy;
  relay.hops = sender_copy.hops + 1;
  relay.forwards = 0;
  relay.received = now;
  return relay;
}

void ProphetRouter::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("prophet");
  std::vector<NodeId> owners;
  owners.reserve(tables_.size());
  for (const auto& [owner, table] : tables_) owners.push_back(owner);
  std::sort(owners.begin(), owners.end());
  out.u64(owners.size());
  for (NodeId owner : owners) {
    out.u32(owner);
    tables_.at(owner).save_state(out);
  }
  out.end_section();
}

void ProphetRouter::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("prophet");
  tables_.clear();
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const NodeId owner = in.u32();
    tables_[owner].load_state(in);
  }
  in.end_section();
}

}  // namespace dtn
