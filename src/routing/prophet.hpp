// PRoPHET routing (Lindgren et al., "Probabilistic routing in
// intermittently connected networks"): each node maintains a delivery
// predictability P(a,b) per destination, updated on encounters
// (P += (1-P)·P_init), aged over time (P *= γ^(Δt/unit)) and propagated
// transitively (P(a,c) += (1-P(a,c))·P(a,b)·P(b,c)·β). A message is
// replicated to a peer whose predictability for its destination exceeds
// the sender's.
//
// Included as the probabilistic-forwarding baseline of the paper's
// related work (its refs [19], [20] build Spray-and-Wait variants on
// delivery predictability).
#pragma once

#include <unordered_map>

#include "src/core/router.hpp"

namespace dtn {

struct ProphetConfig {
  double p_init = 0.75;      ///< encounter bump
  double beta = 0.25;        ///< transitivity weight
  double gamma = 0.98;       ///< aging factor per aging unit
  double aging_unit = 30.0;  ///< seconds per aging step
};

/// One node's predictability table.
class ProphetTable {
 public:
  ProphetTable() = default;

  /// Ages every entry from the last update time to `now`.
  void age(const ProphetConfig& cfg, SimTime now);

  /// Encounter update for `peer` plus transitive update through the
  /// peer's (pre-encounter) table snapshot.
  void on_encounter(const ProphetConfig& cfg, NodeId peer,
                    const std::unordered_map<NodeId, double>& peer_snapshot,
                    SimTime now);

  double predictability(NodeId dest) const;
  const std::unordered_map<NodeId, double>& entries() const { return p_; }

  /// Snapshot/restore of the table (entries sorted by destination id).
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  std::unordered_map<NodeId, double> p_;
  SimTime last_age_ = 0.0;
};

class ProphetRouter final : public Router {
 public:
  explicit ProphetRouter(const ProphetConfig& cfg = {}) : cfg_(cfg) {}

  const char* name() const override { return "prophet"; }

  /// Encounter bookkeeping: symmetric table updates, exactly once per
  /// established contact.
  void on_link_up(const Node& a, const Node& b, SimTime now) const override;

  std::optional<MessageId> next_to_send(
      const Node& self, const Node& peer,
      const PolicyContext& ctx) const override;

  bool on_sent(Message& copy, bool delivered, SimTime now) const override;

  Message make_relay_copy(const Message& sender_copy,
                          SimTime now) const override;

  /// Current (aged) predictability of node `owner` for `dest`.
  double predictability(NodeId owner, NodeId dest, SimTime now) const;

  void save_state(snapshot::ArchiveWriter& out) const override;
  void load_state(snapshot::ArchiveReader& in) override;

 private:
  ProphetConfig cfg_;
  /// Router-owned per-node tables (Node stays routing-agnostic). The
  /// router object belongs to exactly one single-threaded World.
  mutable std::unordered_map<NodeId, ProphetTable> tables_;
};

}  // namespace dtn
