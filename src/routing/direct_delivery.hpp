// Direct delivery: the source holds its single copy until it meets the
// destination. Lower bound for delivery ratio, minimum possible overhead.
#pragma once

#include "src/core/router.hpp"

namespace dtn {

class DirectDeliveryRouter final : public Router {
 public:
  const char* name() const override { return "direct-delivery"; }

  std::optional<MessageId> next_to_send(
      const Node& self, const Node& peer,
      const PolicyContext& ctx) const override;

  bool on_sent(Message& copy, bool delivered, SimTime now) const override;

  Message make_relay_copy(const Message& sender_copy,
                          SimTime now) const override;
};

}  // namespace dtn
