// Candidate-selection helpers shared by the router implementations.
#pragma once

#include <optional>
#include <vector>

#include "src/core/buffer_policy.hpp"
#include "src/core/message.hpp"
#include "src/core/node.hpp"
#include "src/core/router.hpp"

namespace dtn::routing {

/// Non-expired messages in `self`'s buffer destined for `peer` that the
/// peer has not already received, ordered by `self`'s policy (deliveries
/// always go out before replications, as in ONE).
std::vector<const Message*> deliverable_messages(const Node& self,
                                                 const Node& peer,
                                                 const PolicyContext& ctx);

/// True if `peer` is a viable relay target for `m`: it does not hold or
/// has not delivered the message, and (when its policy maintains a
/// dropped list) has not previously dropped it.
bool peer_can_receive(const Node& peer, const Message& m);

/// Walks `candidates` in order and returns the first whose relay copy the
/// peer would admit. `make_copy` mints the hypothetical receiver copy;
/// `sender_view` rates the newcomer by the sender-side copy instead
/// (Router::rate_newcomer_as_sender_copy).
template <typename MakeCopy>
std::optional<MessageId> first_admittable(
    const std::vector<const Message*>& candidates, const Node& peer,
    const PolicyContext& ctx, MakeCopy&& make_copy,
    bool sender_view = false) {
  const PolicyContext peer_ctx = ctx.viewed_from(peer);
  for (const Message* m : candidates) {
    if (peer.would_admit(make_copy(*m), peer_ctx, sender_view ? m : nullptr)) {
      return m->id;
    }
  }
  return std::nullopt;
}

}  // namespace dtn::routing
