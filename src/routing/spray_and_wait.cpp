#include "src/routing/spray_and_wait.hpp"

#include "src/core/node.hpp"
#include "src/routing/routing_common.hpp"
#include "src/util/error.hpp"

namespace dtn {

bool SprayAndWaitRouter::can_spray(const Message& m, const Node& self) const {
  if (m.copies < 2) return false;  // wait phase
  if (!cfg_.binary && m.source != self.id()) return false;  // source spray
  return true;
}

std::optional<MessageId> SprayAndWaitRouter::next_to_send(
    const Node& self, const Node& peer, const PolicyContext& ctx) const {
  // Deliveries always trump replication.
  const auto deliverable = routing::deliverable_messages(self, peer, ctx);
  if (!deliverable.empty()) return deliverable.front()->id;

  std::vector<const Message*> spray;
  for (const Message& m : self.buffer().messages()) {
    if (m.expired(ctx.now)) continue;
    if (!can_spray(m, self)) continue;
    if (!routing::peer_can_receive(peer, m)) continue;
    spray.push_back(&m);
  }
  self.policy().order_for_sending(spray, ctx);
  if (!cfg_.precheck_admission) {
    return spray.empty() ? std::nullopt
                         : std::make_optional(spray.front()->id);
  }
  return routing::first_admittable(
      spray, peer, ctx,
      [this, &ctx](const Message& m) { return make_relay_copy(m, ctx.now); },
      cfg_.presplit_admission_view);
}

bool SprayAndWaitRouter::on_sent(Message& copy, bool delivered,
                                 SimTime now) const {
  if (delivered) return true;  // no acknowledgment scheme: keep the copy
  DTN_REQUIRE(copy.copies >= 2, "spray from wait phase");
  if (cfg_.binary) {
    copy.copies -= copy.copies / 2;  // keep the ceiling half
    copy.spray_times.push_back(now);
  } else {
    copy.copies -= 1;
  }
  ++copy.forwards;
  return true;
}

Message SprayAndWaitRouter::make_relay_copy(const Message& sender_copy,
                                            SimTime now) const {
  DTN_REQUIRE(sender_copy.copies >= 2, "relay copy from wait phase");
  Message relay = sender_copy;
  relay.copies = cfg_.binary ? sender_copy.copies / 2 : 1;  // floor half
  relay.hops = sender_copy.hops + 1;
  relay.forwards = 0;
  relay.received = now;
  if (cfg_.binary) relay.spray_times.push_back(now);
  return relay;
}

}  // namespace dtn
