#include "src/routing/spray_and_wait.hpp"

#include "src/core/node.hpp"
#include "src/routing/routing_common.hpp"
#include "src/util/error.hpp"

namespace dtn {

bool SprayAndWaitRouter::can_spray(const Message& m, const Node& self) const {
  if (m.copies < 2) return false;  // wait phase
  if (!cfg_.binary && m.source != self.id()) return false;  // source spray
  return true;
}

std::optional<MessageId> SprayAndWaitRouter::next_to_send(
    const Node& self, const Node& peer, const PolicyContext& ctx) const {
  // Deliveries always trump replication.
  const auto deliverable = routing::deliverable_messages(self, peer, ctx);
  if (!deliverable.empty()) return deliverable.front()->id;

  // The expensive part of candidate selection — filtering by spray
  // eligibility and sorting by policy priority — is peer-independent, so
  // under a cache-safe policy (total, set-independent ordering) the
  // ranked list is memoized per node and reused across every try_start
  // of the step; only the cheap peer filter runs per pair. The snapshot
  // dies with the buffer revision, any priority invalidation, or the
  // refresh quantum (priority_cache.hpp).
  const bool memoize = ctx.cache_enabled && self.policy().cache_safe();
  std::vector<const Message*> spray;
  const std::vector<MessageId>* order =
      memoize ? self.priority_cache().send_order(
                    ctx.now, ctx.priority_refresh_s, self.buffer().revision())
              : nullptr;
  if (order != nullptr) {
    spray.reserve(order->size());
    for (MessageId id : *order) {
      const Message* m = self.buffer().find(id);
      DTN_REQUIRE(m != nullptr, "send-order snapshot out of sync");
      if (routing::peer_can_receive(peer, *m)) spray.push_back(m);
    }
  } else if (memoize) {
    // Rank first (peer-independent), memoize, then peer-filter. For a
    // total ordering this commutes with the filter-then-rank order below.
    // The expiry/copies gates stream the arena's hot columns; the full
    // Message is only resolved for survivors (source check + ranking).
    std::vector<const Message*> ranked;
    const Buffer& buf = self.buffer();
    const MessageArena& arena = buf.arena();
    for (Buffer::Handle h : buf.handles()) {
      if (ctx.now >= arena.expiry_of(h)) continue;  // == Message::expired
      if (arena.copies_of(h) < 2) continue;         // wait phase
      const Message& m = arena.get(h);
      if (!cfg_.binary && m.source != self.id()) continue;  // source spray
      ranked.push_back(&m);
    }
    self.policy().order_for_sending(ranked, ctx);
    std::vector<MessageId> ids;
    ids.reserve(ranked.size());
    for (const Message* m : ranked) ids.push_back(m->id);
    self.priority_cache().store_send_order(std::move(ids), ctx.now,
                                           self.buffer().revision());
    spray.reserve(ranked.size());
    for (const Message* m : ranked) {
      if (routing::peer_can_receive(peer, *m)) spray.push_back(m);
    }
  } else {
    // Uncached path: unchanged from the pre-cache kernel (non-total
    // orderings like RandomPolicy must see the peer-filtered list).
    const Buffer& buf = self.buffer();
    const MessageArena& arena = buf.arena();
    for (Buffer::Handle h : buf.handles()) {
      if (ctx.now >= arena.expiry_of(h)) continue;  // == Message::expired
      if (arena.copies_of(h) < 2) continue;         // wait phase
      const Message& m = arena.get(h);
      if (!cfg_.binary && m.source != self.id()) continue;  // source spray
      if (!routing::peer_can_receive(peer, m)) continue;
      spray.push_back(&m);
    }
    self.policy().order_for_sending(spray, ctx);
  }
  if (!cfg_.precheck_admission) {
    return spray.empty() ? std::nullopt
                         : std::make_optional(spray.front()->id);
  }
  return routing::first_admittable(
      spray, peer, ctx,
      [this, &ctx](const Message& m) { return make_relay_copy(m, ctx.now); },
      cfg_.presplit_admission_view);
}

bool SprayAndWaitRouter::on_sent(Message& copy, bool delivered,
                                 SimTime now) const {
  if (delivered) return true;  // no acknowledgment scheme: keep the copy
  DTN_REQUIRE(copy.copies >= 2, "spray from wait phase");
  if (cfg_.binary) {
    copy.copies -= copy.copies / 2;  // keep the ceiling half
    copy.spray_times.push_back(now);
  } else {
    copy.copies -= 1;
  }
  ++copy.forwards;
  return true;
}

Message SprayAndWaitRouter::make_relay_copy(const Message& sender_copy,
                                            SimTime now) const {
  DTN_REQUIRE(sender_copy.copies >= 2, "relay copy from wait phase");
  Message relay = sender_copy;
  relay.copies = cfg_.binary ? sender_copy.copies / 2 : 1;  // floor half
  relay.hops = sender_copy.hops + 1;
  relay.forwards = 0;
  relay.received = now;
  if (cfg_.binary) relay.spray_times.push_back(now);
  return relay;
}

}  // namespace dtn
