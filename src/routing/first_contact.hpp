// First contact: single-copy custody transfer — hand the message to the
// first encountered node that can take it. Cheap but erratic baseline.
#pragma once

#include "src/core/router.hpp"

namespace dtn {

class FirstContactRouter final : public Router {
 public:
  const char* name() const override { return "first-contact"; }

  std::optional<MessageId> next_to_send(
      const Node& self, const Node& peer,
      const PolicyContext& ctx) const override;

  bool on_sent(Message& copy, bool delivered, SimTime now) const override;

  Message make_relay_copy(const Message& sender_copy,
                          SimTime now) const override;
};

}  // namespace dtn
