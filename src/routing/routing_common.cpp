#include "src/routing/routing_common.hpp"

namespace dtn::routing {

std::vector<const Message*> deliverable_messages(const Node& self,
                                                 const Node& peer,
                                                 const PolicyContext& ctx) {
  std::vector<const Message*> out;
  // Stream the arena's hot columns (dest/expiry) and only resolve the
  // full Message for the rare handles that pass both gates — on a relay
  // node almost nothing is addressed to this particular peer.
  const Buffer& buf = self.buffer();
  const MessageArena& arena = buf.arena();
  for (Buffer::Handle h : buf.handles()) {
    if (arena.dest_of(h) != peer.id()) continue;
    if (ctx.now >= arena.expiry_of(h)) continue;  // == Message::expired
    const Message& m = arena.get(h);
    if (peer.has_delivered(m.id)) continue;
    out.push_back(&m);
  }
  self.policy().order_for_sending(out, ctx);
  return out;
}

bool peer_can_receive(const Node& peer, const Message& m) {
  if (peer.buffer().has(m.id)) return false;
  if (peer.has_delivered(m.id)) return false;
  if (peer.knows_delivered(m.id)) return false;  // ACK-gossip immunity
  if (peer.policy().rejects_previously_dropped() && peer.has_dropped(m.id)) {
    return false;
  }
  return true;
}

}  // namespace dtn::routing
