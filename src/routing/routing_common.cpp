#include "src/routing/routing_common.hpp"

namespace dtn::routing {

std::vector<const Message*> deliverable_messages(const Node& self,
                                                 const Node& peer,
                                                 const PolicyContext& ctx) {
  std::vector<const Message*> out;
  for (const Message& m : self.buffer().messages()) {
    if (m.destination == peer.id() && !peer.has_delivered(m.id) &&
        !m.expired(ctx.now)) {
      out.push_back(&m);
    }
  }
  self.policy().order_for_sending(out, ctx);
  return out;
}

bool peer_can_receive(const Node& peer, const Message& m) {
  if (peer.buffer().has(m.id)) return false;
  if (peer.has_delivered(m.id)) return false;
  if (peer.knows_delivered(m.id)) return false;  // ACK-gossip immunity
  if (peer.policy().rejects_previously_dropped() && peer.has_dropped(m.id)) {
    return false;
  }
  return true;
}

}  // namespace dtn::routing
