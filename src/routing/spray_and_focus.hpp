// Spray-and-Focus (Spyropoulos et al., PerCom-W 2007): identical spray
// phase to binary Spray-and-Wait, but the passive wait phase is replaced
// by a *focus* phase — a node holding its last copy hands custody to an
// encountered relay whose last contact with the destination is
// sufficiently fresher than its own. Implemented here as the paper's
// related-work extension (Section II).
#pragma once

#include "src/core/router.hpp"

namespace dtn {

struct SprayAndFocusConfig {
  /// Custody moves when peer.last_contact(dest) exceeds ours by at least
  /// this many seconds (the "utility threshold").
  double focus_threshold = 60.0;
};

class SprayAndFocusRouter final : public Router {
 public:
  explicit SprayAndFocusRouter(const SprayAndFocusConfig& cfg = {})
      : cfg_(cfg) {}

  const char* name() const override { return "spray-and-focus"; }

  std::optional<MessageId> next_to_send(
      const Node& self, const Node& peer,
      const PolicyContext& ctx) const override;

  bool on_sent(Message& copy, bool delivered, SimTime now) const override;

  Message make_relay_copy(const Message& sender_copy,
                          SimTime now) const override;

 private:
  SprayAndFocusConfig cfg_;
};

}  // namespace dtn
