#include "src/routing/epidemic.hpp"

#include "src/core/node.hpp"
#include "src/routing/routing_common.hpp"

namespace dtn {

std::optional<MessageId> EpidemicRouter::next_to_send(
    const Node& self, const Node& peer, const PolicyContext& ctx) const {
  const auto deliverable = routing::deliverable_messages(self, peer, ctx);
  if (!deliverable.empty()) return deliverable.front()->id;

  std::vector<const Message*> candidates;
  for (const Message& m : self.buffer().messages()) {
    if (m.expired(ctx.now)) continue;
    if (m.destination == peer.id()) continue;  // handled as deliverable
    if (!routing::peer_can_receive(peer, m)) continue;
    candidates.push_back(&m);
  }
  self.policy().order_for_sending(candidates, ctx);
  return routing::first_admittable(
      candidates, peer, ctx,
      [this, &ctx](const Message& m) { return make_relay_copy(m, ctx.now); });
}

bool EpidemicRouter::on_sent(Message& copy, bool /*delivered*/,
                             SimTime /*now*/) const {
  ++copy.forwards;
  return true;  // flooding: the sender always keeps its copy
}

Message EpidemicRouter::make_relay_copy(const Message& sender_copy,
                                        SimTime now) const {
  Message relay = sender_copy;
  relay.hops = sender_copy.hops + 1;
  relay.forwards = 0;
  relay.received = now;
  return relay;
}

}  // namespace dtn
