#include "src/routing/direct_delivery.hpp"

#include "src/core/node.hpp"
#include "src/routing/routing_common.hpp"
#include "src/util/error.hpp"

namespace dtn {

std::optional<MessageId> DirectDeliveryRouter::next_to_send(
    const Node& self, const Node& peer, const PolicyContext& ctx) const {
  const auto deliverable = routing::deliverable_messages(self, peer, ctx);
  if (!deliverable.empty()) return deliverable.front()->id;
  return std::nullopt;
}

bool DirectDeliveryRouter::on_sent(Message& copy, bool delivered,
                                   SimTime /*now*/) const {
  DTN_REQUIRE(delivered, "direct delivery only transmits to destinations");
  ++copy.forwards;
  return false;  // the job is done; free the buffer slot
}

Message DirectDeliveryRouter::make_relay_copy(const Message& /*sender*/,
                                              SimTime /*now*/) const {
  DTN_REQUIRE(false, "direct delivery never relays");
  return {};
}

}  // namespace dtn
