#include "src/routing/spray_and_focus.hpp"

#include "src/core/node.hpp"
#include "src/routing/routing_common.hpp"
#include "src/util/error.hpp"

namespace dtn {

std::optional<MessageId> SprayAndFocusRouter::next_to_send(
    const Node& self, const Node& peer, const PolicyContext& ctx) const {
  const auto deliverable = routing::deliverable_messages(self, peer, ctx);
  if (!deliverable.empty()) return deliverable.front()->id;

  std::vector<const Message*> candidates;
  // The expiry gate streams the arena's hot column before resolving the
  // Message (the peer/focus checks need the full record anyway).
  const Buffer& buf = self.buffer();
  const MessageArena& arena = buf.arena();
  for (Buffer::Handle h : buf.handles()) {
    if (ctx.now >= arena.expiry_of(h)) continue;  // == Message::expired
    const Message& m = arena.get(h);
    if (!routing::peer_can_receive(peer, m)) continue;
    if (m.copies >= 2) {
      candidates.push_back(&m);  // spray phase
      continue;
    }
    // Focus phase: move custody toward fresher knowledge of the
    // destination (last-encounter utility, exchanged at contact setup).
    const double mine = self.intermeeting().last_contact(m.destination);
    const double theirs = peer.intermeeting().last_contact(m.destination);
    if (theirs > mine + cfg_.focus_threshold) candidates.push_back(&m);
  }
  self.policy().order_for_sending(candidates, ctx);
  return routing::first_admittable(
      candidates, peer, ctx,
      [this, &ctx](const Message& m) { return make_relay_copy(m, ctx.now); });
}

bool SprayAndFocusRouter::on_sent(Message& copy, bool delivered,
                                  SimTime now) const {
  if (delivered) return true;
  ++copy.forwards;
  if (copy.copies >= 2) {  // spray: binary split
    copy.copies -= copy.copies / 2;
    copy.spray_times.push_back(now);
    return true;
  }
  return false;  // focus: custody moved to the better relay
}

Message SprayAndFocusRouter::make_relay_copy(const Message& sender_copy,
                                             SimTime now) const {
  Message relay = sender_copy;
  relay.hops = sender_copy.hops + 1;
  relay.forwards = 0;
  relay.received = now;
  if (sender_copy.copies >= 2) {
    relay.copies = sender_copy.copies / 2;
    relay.spray_times.push_back(now);
  } else {
    relay.copies = 1;
  }
  return relay;
}

}  // namespace dtn
