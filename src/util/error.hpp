// Lightweight precondition/invariant checking for the DTN simulator.
//
// DTN_REQUIRE is used for checks that must hold in release builds too
// (configuration validation, API misuse). Violations throw std::logic_error
// with file:line context so callers and tests can observe them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dtn {

/// Thrown when a DTN_REQUIRE precondition fails.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace dtn

#define DTN_REQUIRE(expr, msg)                                       \
  do {                                                               \
    if (!(expr)) ::dtn::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
